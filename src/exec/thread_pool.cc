#include "exec/thread_pool.h"

#include "obs/obs.h"

namespace tms::exec {

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  TMS_OBS_GAUGE_SET("exec.pool.threads", num_workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int64_t ThreadPool::DrainBatch(Batch* batch) {
  // Work items run under the opener's query scope (a no-op for the opener
  // itself, whose thread state already matches the captured context).
  obs::ScopeAdoption adopt(batch->obs_ctx);
  int64_t ran = 0;
  for (;;) {
    int64_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->n) break;
    (*batch->fn)(i);
    ++ran;
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch->n) {
      // Last item overall: wake the opener. The lock pairs with the
      // opener's wait so the notify cannot be lost between its predicate
      // check and its sleep.
      std::lock_guard<std::mutex> lock(batch->mu);
      batch->all_done.notify_all();
    }
  }
  return ran;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to help with
      batch = queue_.front();
      // Leave the batch at the front so other idle workers can still join
      // it; it is removed once its index space is exhausted.
      if (batch->next.load(std::memory_order_relaxed) >= batch->n) {
        queue_.pop_front();
        continue;
      }
    }
    int64_t ran = DrainBatch(batch.get());
    if (ran > 0) TMS_OBS_COUNT("exec.pool.worker_items", ran);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (!queue_.empty() && queue_.front() == batch &&
          batch->next.load(std::memory_order_relaxed) >= batch->n) {
        queue_.pop_front();
      }
    }
  }
}

void ThreadPool::ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  TMS_OBS_COUNT("exec.pool.batches", 1);
  TMS_OBS_COUNT("exec.pool.items", n);
  TMS_OBS_HISTOGRAM("exec.pool.batch_items", n);
  if (workers_.empty() || n == 1) {
    // Sequential fallback: same iteration order a 1-thread run observes.
    for (int64_t i = 0; i < n; ++i) fn(i);
    TMS_OBS_COUNT("exec.pool.caller_items", n);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  batch->obs_ctx = obs::CurrentTraceContext();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(batch);
    TMS_OBS_GAUGE_SET("exec.pool.queue_depth",
                      static_cast<int64_t>(queue_.size()));
  }
  queue_cv_.notify_all();
  // The caller drains the same index space as the workers, so the batch
  // completes even if every worker is busy inside a nested ParallelFor.
  int64_t ran = DrainBatch(batch.get());
  if (ran > 0) TMS_OBS_COUNT("exec.pool.caller_items", ran);
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->all_done.wait(lock, [&batch] {
      return batch->done.load(std::memory_order_acquire) >= batch->n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!queue_.empty() && queue_.front() == batch) queue_.pop_front();
    TMS_OBS_GAUGE_SET("exec.pool.queue_depth",
                      static_cast<int64_t>(queue_.size()));
  }
}

}  // namespace tms::exec
