#include "exec/fault.h"

#if TMS_FAULTS_ACTIVE

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/obs.h"

namespace tms::exec {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

bool FaultInjector::HitSlow(const char* point) {
  // Select the firing actions under the lock, run them outside it: a delay
  // must not serialize unrelated points (or a caller's own lock, e.g. the
  // composition cache's) and a callback may legitimately re-enter Hit.
  std::vector<Action> fired;
  int64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point& p = points_[point];
    hit = ++p.hits;
    for (const Action& action : p.actions) {
      if (action.nth_hit == 0 || action.nth_hit == hit) {
        fired.push_back(action);
      }
    }
  }
  TMS_OBS_COUNT("exec.fault.hits", 1);
  bool fail = false;
  for (const Action& action : fired) {
    switch (action.kind) {
      case Action::Kind::kDelay:
        TMS_OBS_COUNT("exec.fault.delays", 1);
        std::this_thread::sleep_for(action.delay);
        break;
      case Action::Kind::kCancel:
        TMS_OBS_COUNT("exec.fault.cancels", 1);
        action.token.Cancel();
        break;
      case Action::Kind::kFail:
        TMS_OBS_COUNT("exec.fault.failures", 1);
        fail = true;
        break;
      case Action::Kind::kCallback:
        action.fn(hit);
        break;
    }
  }
  return fail;
}

void FaultInjector::AddAction(const std::string& point, Action action) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    points_[point].actions.push_back(std::move(action));
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ScheduleDelay(const std::string& point, int64_t nth_hit,
                                  std::chrono::nanoseconds delay) {
  Action a;
  a.kind = Action::Kind::kDelay;
  a.nth_hit = nth_hit;
  a.delay = delay;
  AddAction(point, std::move(a));
}

void FaultInjector::ScheduleCancel(const std::string& point, int64_t nth_hit,
                                   CancelToken token) {
  Action a;
  a.kind = Action::Kind::kCancel;
  a.nth_hit = nth_hit;
  a.token = std::move(token);
  AddAction(point, std::move(a));
}

void FaultInjector::ScheduleFailure(const std::string& point,
                                    int64_t nth_hit) {
  Action a;
  a.kind = Action::Kind::kFail;
  a.nth_hit = nth_hit;
  AddAction(point, std::move(a));
}

void FaultInjector::ScheduleCallback(const std::string& point,
                                     int64_t nth_hit,
                                     std::function<void(int64_t)> fn) {
  Action a;
  a.kind = Action::Kind::kCallback;
  a.nth_hit = nth_hit;
  a.fn = std::move(fn);
  AddAction(point, std::move(a));
}

Status FaultInjector::ArmFromSpec(std::string_view spec) {
  while (!spec.empty()) {
    const size_t semi = spec.find(';');
    std::string_view clause =
        semi == std::string_view::npos ? spec : spec.substr(0, semi);
    spec = semi == std::string_view::npos ? std::string_view()
                                          : spec.substr(semi + 1);
    if (clause.empty()) continue;
    const size_t c1 = clause.find(':');
    const size_t c2 = c1 == std::string_view::npos
                          ? std::string_view::npos
                          : clause.find(':', c1 + 1);
    if (c2 == std::string_view::npos) {
      return Status::InvalidArgument("fault spec clause needs point:kind:nth: '" +
                                     std::string(clause) + "'");
    }
    const std::string point(clause.substr(0, c1));
    const std::string_view kind = clause.substr(c1 + 1, c2 - c1 - 1);
    const std::string_view nth_text = clause.substr(c2 + 1);
    int64_t nth = 0;
    if (nth_text.empty()) {
      return Status::InvalidArgument("fault spec clause missing nth: '" +
                                     std::string(clause) + "'");
    }
    for (char c : nth_text) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad nth in fault spec clause '" +
                                       std::string(clause) + "'");
      }
      nth = nth * 10 + (c - '0');
    }
    if (point.empty()) {
      return Status::InvalidArgument("empty point in fault spec clause '" +
                                     std::string(clause) + "'");
    }
    if (kind == "fail") {
      ScheduleFailure(point, nth);
    } else if (kind == "exit") {
      // A worker "crash": no atexit, no stream flush — whatever chunk was
      // in flight is simply cut. Exit code 17 so harnesses can tell an
      // injected crash from a real one.
      ScheduleCallback(point, nth, [](int64_t) { std::_Exit(17); });
    } else if (kind.substr(0, 5) == "delay" && kind.size() > 7 &&
               kind.substr(kind.size() - 2) == "ms") {
      int64_t ms = 0;
      for (char c : kind.substr(5, kind.size() - 7)) {
        if (c < '0' || c > '9') {
          return Status::InvalidArgument("bad delay in fault spec clause '" +
                                         std::string(clause) + "'");
        }
        ms = ms * 10 + (c - '0');
      }
      ScheduleDelay(point, nth, std::chrono::milliseconds(ms));
    } else {
      return Status::InvalidArgument("unknown kind in fault spec clause '" +
                                     std::string(clause) + "'");
    }
  }
  return Status::Ok();
}

void FaultInjector::ArmFromEnv() {
  const char* spec = std::getenv("TMS_FAULT_INJECT");
  if (spec == nullptr || *spec == '\0') return;
  Status armed = ArmFromSpec(spec);
  if (!armed.ok()) {
    std::fprintf(stderr, "TMS_FAULT_INJECT ignored: %s\n",
                 armed.ToString().c_str());
  }
}

void FaultInjector::Arm() { armed_.store(true, std::memory_order_release); }

void FaultInjector::Reset() {
  armed_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

int64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FaultInjector::SeenPoints() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, point] : points_) {
    if (point.hits > 0) out.push_back(name);
  }
  return out;
}

}  // namespace tms::exec

#endif  // TMS_FAULTS_ACTIVE
