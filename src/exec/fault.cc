#include "exec/fault.h"

#if TMS_FAULTS_ACTIVE

#include <thread>

#include "obs/obs.h"

namespace tms::exec {

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

bool FaultInjector::HitSlow(const char* point) {
  // Select the firing actions under the lock, run them outside it: a delay
  // must not serialize unrelated points (or a caller's own lock, e.g. the
  // composition cache's) and a callback may legitimately re-enter Hit.
  std::vector<Action> fired;
  int64_t hit = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Point& p = points_[point];
    hit = ++p.hits;
    for (const Action& action : p.actions) {
      if (action.nth_hit == 0 || action.nth_hit == hit) {
        fired.push_back(action);
      }
    }
  }
  TMS_OBS_COUNT("exec.fault.hits", 1);
  bool fail = false;
  for (const Action& action : fired) {
    switch (action.kind) {
      case Action::Kind::kDelay:
        TMS_OBS_COUNT("exec.fault.delays", 1);
        std::this_thread::sleep_for(action.delay);
        break;
      case Action::Kind::kCancel:
        TMS_OBS_COUNT("exec.fault.cancels", 1);
        action.token.Cancel();
        break;
      case Action::Kind::kFail:
        TMS_OBS_COUNT("exec.fault.failures", 1);
        fail = true;
        break;
      case Action::Kind::kCallback:
        action.fn(hit);
        break;
    }
  }
  return fail;
}

void FaultInjector::AddAction(const std::string& point, Action action) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    points_[point].actions.push_back(std::move(action));
  }
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::ScheduleDelay(const std::string& point, int64_t nth_hit,
                                  std::chrono::nanoseconds delay) {
  Action a;
  a.kind = Action::Kind::kDelay;
  a.nth_hit = nth_hit;
  a.delay = delay;
  AddAction(point, std::move(a));
}

void FaultInjector::ScheduleCancel(const std::string& point, int64_t nth_hit,
                                   CancelToken token) {
  Action a;
  a.kind = Action::Kind::kCancel;
  a.nth_hit = nth_hit;
  a.token = std::move(token);
  AddAction(point, std::move(a));
}

void FaultInjector::ScheduleFailure(const std::string& point,
                                    int64_t nth_hit) {
  Action a;
  a.kind = Action::Kind::kFail;
  a.nth_hit = nth_hit;
  AddAction(point, std::move(a));
}

void FaultInjector::ScheduleCallback(const std::string& point,
                                     int64_t nth_hit,
                                     std::function<void(int64_t)> fn) {
  Action a;
  a.kind = Action::Kind::kCallback;
  a.nth_hit = nth_hit;
  a.fn = std::move(fn);
  AddAction(point, std::move(a));
}

void FaultInjector::Arm() { armed_.store(true, std::memory_order_release); }

void FaultInjector::Reset() {
  armed_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

int64_t FaultInjector::HitCount(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FaultInjector::SeenPoints() const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, point] : points_) {
    if (point.hits > 0) out.push_back(name);
  }
  return out;
}

}  // namespace tms::exec

#endif  // TMS_FAULTS_ACTIVE
