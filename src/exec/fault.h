// Deterministic fault injection for robustness tests.
//
// The engines expose named FAULT POINTS (`TMS_FAULT_POINT("lawler.pre_solve")`)
// at the places where a production run can actually be hurt: just before a
// subspace solve, before a heap push, before a cache insert, before an
// emptiness-oracle call, before a batch item. A test arms the global
// FaultInjector to fire at the Nth hit of a point:
//
//   * a DELAY (sleep) — widens race windows for the TSan suites,
//   * a CANCELLATION (flips a CancelToken) — the cancellation fuzz test
//     drives every enumerator through randomized cancellation points,
//   * a simulated RESOURCE FAILURE — Hit() returns true and the engine
//     takes its allocation-failure path (stop the run via
//     RunContext::InjectFault, or skip a cache insert),
//   * an arbitrary CALLBACK.
//
// Zero-overhead switch, exactly like src/obs/config.h: the CMake option
// TMS_FAULTS (default ON) defines TMS_FAULTS_ENABLED; with it 0 the macro
// compiles to the constant `false` and not even the point-name literal
// survives. A TU may define TMS_FAULTS_FORCE_DISABLE before including
// this header to get the compiled-out surface in an instrumented build.
// Even when compiled in, an unarmed injector costs one relaxed atomic
// load per hit.
//
// Fault-point catalog: docs/ROBUSTNESS.md. Observability: counters
// `exec.fault.hits`, `.delays`, `.cancels`, `.failures`.

#ifndef TMS_EXEC_FAULT_H_
#define TMS_EXEC_FAULT_H_

#ifndef TMS_FAULTS_ENABLED
#define TMS_FAULTS_ENABLED 1
#endif

#if defined(TMS_FAULTS_FORCE_DISABLE)
#define TMS_FAULTS_ACTIVE 0
#else
#define TMS_FAULTS_ACTIVE TMS_FAULTS_ENABLED
#endif

#if TMS_FAULTS_ACTIVE

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "exec/run_context.h"

/// True iff an armed injector scheduled a simulated resource failure for
/// this hit; the engine then takes its failure path.
#define TMS_FAULT_POINT(name) (::tms::exec::FaultInjector::Global().Hit(name))

namespace tms::exec {

/// Process-global registry of scheduled faults. Thread-safe: Hit() may be
/// called concurrently from pool workers while a test thread cancels.
/// Disarmed (the default and the state after Reset) it is a single relaxed
/// load.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Every fault point passes through here. Returns true when a scheduled
  /// failure fires at this hit.
  bool Hit(const char* point) {
    if (!armed_.load(std::memory_order_relaxed)) return false;
    return HitSlow(point);
  }

  // -- test-side scheduling (each call arms the injector) ----------------
  // `nth_hit` is 1-based; 0 means "every hit".

  void ScheduleDelay(const std::string& point, int64_t nth_hit,
                     std::chrono::nanoseconds delay);
  void ScheduleCancel(const std::string& point, int64_t nth_hit,
                      CancelToken token);
  void ScheduleFailure(const std::string& point, int64_t nth_hit);
  void ScheduleCallback(const std::string& point, int64_t nth_hit,
                        std::function<void(int64_t)> fn);

  /// Schedules faults from a spec string — `point:kind:nth` clauses
  /// separated by ';', with kind one of
  ///   * `fail`       — a simulated resource failure (ScheduleFailure),
  ///   * `exit`       — std::_Exit(17) at the hit: the process dies like
  ///                    a crashed worker, atexit/flush skipped, so an
  ///                    in-flight chunked stream is cut mid-answer
  ///                    (tools/dist_smoke.sh kills a shard this way),
  ///   * `delay<ms>ms`— sleep, e.g. `delay50ms`.
  /// `nth` is the 1-based hit number (0 = every hit). Example:
  ///   "dist.mid_stream:exit:2;batch.pre_sequence:fail:1"
  Status ArmFromSpec(std::string_view spec);

  /// ArmFromSpec(getenv("TMS_FAULT_INJECT")) — a no-op when the variable
  /// is unset or empty; a bad spec is reported on stderr and otherwise
  /// ignored. Long-lived processes (tms_server) call this at startup so
  /// end-to-end fault drills need no test hook.
  void ArmFromEnv();

  /// Arms hit counting without scheduling anything — used to discover
  /// which points a workload passes (the fault-point catalog test).
  void Arm();

  /// Disarms and forgets every schedule and counter.
  void Reset();

  /// Hits observed at `point` since the last Reset (0 when never hit or
  /// the injector was disarmed).
  int64_t HitCount(const std::string& point) const;

  /// Every point name observed since the last Reset, sorted.
  std::vector<std::string> SeenPoints() const;

 private:
  struct Action {
    enum class Kind { kDelay, kCancel, kFail, kCallback };
    Kind kind;
    int64_t nth_hit = 0;
    std::chrono::nanoseconds delay{0};
    CancelToken token;
    std::function<void(int64_t)> fn;
  };
  struct Point {
    int64_t hits = 0;
    std::vector<Action> actions;
  };

  FaultInjector() = default;
  bool HitSlow(const char* point);
  void AddAction(const std::string& point, Action action);

  std::atomic<bool> armed_{false};
  mutable std::mutex mu_;
  std::map<std::string, Point> points_;
};

}  // namespace tms::exec

#else  // !TMS_FAULTS_ACTIVE

#define TMS_FAULT_POINT(name) (false)

#endif  // TMS_FAULTS_ACTIVE

#endif  // TMS_EXEC_FAULT_H_
