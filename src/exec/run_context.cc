#include "exec/run_context.h"

#include "obs/obs.h"

namespace tms::exec {

RunContext::RunContext()
    : shared_(std::make_shared<SharedState>()),
      stream_(std::make_shared<StreamState>()) {
  stream_->obs_query_id = obs::CurrentQueryId();
}

void RunContext::set_deadline(Clock::time_point deadline) {
  shared_->deadline = deadline;
  shared_->has_deadline = true;
}

void RunContext::set_deadline_after_ms(int64_t ms) {
  set_deadline(Clock::now() + std::chrono::milliseconds(ms));
}

void RunContext::set_max_answers(int64_t max_answers) {
  stream_->max_answers = max_answers;
}

void RunContext::set_work_budget(int64_t units) {
  shared_->budget_remaining.store(units, std::memory_order_relaxed);
  shared_->budget_configured = units;
}

void RunContext::set_cancel_token(CancelToken token) {
  shared_->cancel = std::move(token);
}

CancelToken RunContext::cancel_token() const { return shared_->cancel; }

void RunContext::RequestCancel() const { shared_->cancel.Cancel(); }

RunContext RunContext::Child(int64_t max_answers) const {
  RunContext child;
  child.shared_ = shared_;
  child.stream_->max_answers = max_answers;
  // A child created on a thread with no current scope still belongs to the
  // query that owns its parent stream (batch fan-out).
  if (child.stream_->obs_query_id == 0) {
    child.stream_->obs_query_id = stream_->obs_query_id;
  }
  return child;
}

void RunContext::Latch(StopReason reason, const std::string* fault_point) {
  int expected = 0;
  if (!stream_->stop_reason.compare_exchange_strong(
          expected, static_cast<int>(reason), std::memory_order_acq_rel)) {
    return;  // an earlier reason already stopped this stream
  }
  // Only the CAS winner ever touches the string, and readers gate on the
  // release store below — a losing InjectFault never writes, so there is
  // no check-then-write window for OnTruncation / status() to race with.
  if (reason == StopReason::kFault) {
    if (fault_point != nullptr) stream_->fault_point = *fault_point;
    stream_->fault_point_set.store(true, std::memory_order_release);
  }
  // Hard-limit truncations trigger the flight recorder (answer cap is a
  // client-requested stop, not a failure). The query id was captured at
  // stream creation, so a limit observed on a worker thread still
  // attributes to the right query.
  const char* flight_reason = nullptr;
  switch (reason) {
    case StopReason::kAnswerCap:
      TMS_OBS_COUNT("exec.budget.answer_capped", 1);
      break;
    case StopReason::kBudget:
      TMS_OBS_COUNT("exec.budget.budget_exhausted", 1);
      flight_reason = "BUDGET_EXHAUSTED";
      break;
    case StopReason::kDeadline:
      TMS_OBS_COUNT("exec.budget.deadline_exceeded", 1);
      flight_reason = "DEADLINE_EXCEEDED";
      break;
    case StopReason::kCancelled:
      TMS_OBS_COUNT("exec.budget.cancelled", 1);
      flight_reason = "CANCELLED";
      break;
    case StopReason::kFault:
      TMS_OBS_COUNT("exec.budget.faults", 1);
      flight_reason = "FAULT";
      break;
    case StopReason::kNone:
      break;
  }
  if (flight_reason != nullptr) {
    obs::FlightRecorder::Global().OnTruncation(
        flight_reason, stream_->obs_query_id, this->fault_point());
  }
}

std::string RunContext::fault_point() const {
  if (!stream_->fault_point_set.load(std::memory_order_acquire)) return "";
  return stream_->fault_point;
}

bool RunContext::CheckSharedLimits() {
  if (shared_->cancel.cancelled()) {
    Latch(StopReason::kCancelled);
    return true;
  }
  if (shared_->has_deadline && Clock::now() >= shared_->deadline) {
    Latch(StopReason::kDeadline);
    return true;
  }
  if (shared_->budget_remaining.load(std::memory_order_relaxed) <= 0) {
    Latch(StopReason::kBudget);
    return true;
  }
  return false;
}

bool RunContext::ChargeWork(int64_t units) {
  if (stop_reason() != StopReason::kNone) return false;
  if (CheckSharedLimits()) return false;
  // fetch_sub may briefly drive the pool negative under concurrent
  // charges; every losing thread observes a non-positive result and
  // latches, so at most `budget` units of work are ever *started* beyond
  // the pop in flight (see the prefix-consistency argument in
  // docs/ROBUSTNESS.md).
  int64_t before = shared_->budget_remaining.load(std::memory_order_relaxed);
  if (before != kUnlimited) {
    before = shared_->budget_remaining.fetch_sub(units,
                                                 std::memory_order_relaxed);
    if (before < units) {
      Latch(StopReason::kBudget);
      return false;
    }
  }
  shared_->work_charged.fetch_add(units, std::memory_order_relaxed);
  TMS_OBS_COUNT("exec.budget.work_charged", units);
  return true;
}

bool RunContext::StopRequested() {
  if (stop_reason() != StopReason::kNone) return true;
  return CheckSharedLimits();
}

bool RunContext::BeforeAnswer() {
  if (StopRequested()) return false;
  if (stream_->answers.load(std::memory_order_relaxed) >=
      stream_->max_answers) {
    Latch(StopReason::kAnswerCap);
    return false;
  }
  return true;
}

void RunContext::CountAnswer() {
  stream_->answers.fetch_add(1, std::memory_order_relaxed);
}

void RunContext::InjectFault(const std::string& point) {
  Latch(StopReason::kFault, &point);
}

StopReason RunContext::stop_reason() const {
  return static_cast<StopReason>(
      stream_->stop_reason.load(std::memory_order_acquire));
}

Status RunContext::status() const {
  switch (stop_reason()) {
    case StopReason::kNone:
    case StopReason::kAnswerCap:
      return Status::Ok();
    case StopReason::kBudget:
      return Status::BudgetExhausted("work budget exhausted after " +
                                     std::to_string(work_charged()) +
                                     " units");
    case StopReason::kDeadline:
      return Status::DeadlineExceeded("deadline exceeded after " +
                                      std::to_string(answers_emitted()) +
                                      " answer(s)");
    case StopReason::kCancelled:
      return Status::Cancelled("run cancelled");
    case StopReason::kFault:
      return Status::Internal("injected resource failure at " +
                              fault_point());
  }
  return Status::Internal("unknown stop reason");
}

int64_t RunContext::answers_emitted() const {
  return stream_->answers.load(std::memory_order_relaxed);
}

int64_t RunContext::work_charged() const {
  return shared_->work_charged.load(std::memory_order_relaxed);
}

}  // namespace tms::exec
