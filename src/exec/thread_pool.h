// Fixed-size thread pool with a fork-join ParallelFor / ParallelMap API.
//
// The pool is the execution substrate for the parallel enumeration and
// batch-evaluation paths (ranking::LawlerEnumerator child-subspace solving,
// db::BatchEvaluator): a caller partitions independent work into indexed
// items, the pool's workers and the *calling thread itself* race through
// the index space, and results are merged back in index order so the
// parallel path is deterministic whenever the per-item function is.
//
// Design notes (see docs/CONCURRENCY.md):
//   * Caller participation makes ParallelFor deadlock-free under nesting:
//     the thread that opened a batch drains its own index space, so forward
//     progress never depends on a worker picking the batch up. Workers only
//     ever *help*.
//   * A pool with zero workers is valid and degrades to a plain sequential
//     loop on the calling thread — `ThreadPool(0)` and a null pool behave
//     identically, which is what the 1-thread configurations of the
//     benches/CLI use.
//   * Item functions must not throw (the codebase reports errors through
//     Status); an escaping exception terminates the process.
//
// Observability (docs/OBSERVABILITY.md): `exec.pool.threads` gauge,
// `exec.pool.batches` / `exec.pool.items` / `exec.pool.worker_items` /
// `exec.pool.caller_items` counters, and the `exec.pool.batch_items`
// histogram (fan-out distribution per ParallelFor).

#ifndef TMS_EXEC_THREAD_POOL_H_
#define TMS_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/query_scope.h"

namespace tms::exec {

/// A fixed set of worker threads plus fork-join helpers. Thread-safe:
/// ParallelFor/ParallelMap may be called concurrently from any thread,
/// including from inside another ParallelFor item running on this pool.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (clamped at 0). The total
  /// concurrency of a ParallelFor is `num_workers + 1` because the calling
  /// thread participates.
  explicit ThreadPool(int num_workers);

  /// Joins all workers; outstanding helper tasks finish first. The pool
  /// must outlive every object holding a pointer to it.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) exactly once for every i in [0, n), possibly concurrently,
  /// and returns when all items finished. Items are claimed through a
  /// shared counter, so the assignment of items to threads is
  /// nondeterministic — any output the caller assembles must be indexed by
  /// i (as ParallelMap does), never by completion order. `fn` must be
  /// safe to invoke concurrently from multiple threads.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// ParallelFor that collects fn(i) into slot i of the result — output
  /// order is index order regardless of scheduling. R must be
  /// default-constructible.
  template <typename R>
  std::vector<R> ParallelMap(int64_t n,
                             const std::function<R(int64_t)>& fn) {
    std::vector<R> out(static_cast<size_t>(n));
    ParallelFor(n, [&out, &fn](int64_t i) {
      out[static_cast<size_t>(i)] = fn(i);
    });
    return out;
  }

 private:
  // One fork-join batch. Lives on the opening thread's stack; workers
  // reference it only between `next` publication and the final `done`
  // increment, both of which the opener awaits before returning.
  struct Batch {
    const std::function<void(int64_t)>* fn = nullptr;
    int64_t n = 0;
    // The opener's trace context at submission: every thread draining the
    // batch adopts it, so items attribute their metrics/spans to the
    // opener's query no matter which thread runs them.
    obs::TraceContext obs_ctx;
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable all_done;
  };

  // Claims items from `batch` until the index space is exhausted; returns
  // the number of items this thread ran.
  static int64_t DrainBatch(Batch* batch);

  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stopping_ = false;
};

}  // namespace tms::exec

#endif  // TMS_EXEC_THREAD_POOL_H_
