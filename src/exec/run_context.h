// Deadline/budget-aware execution context for the enumeration engines.
//
// The paper's enumeration guarantees are polynomial *delay* bounds between
// answers (§4, §6), but a delay bound alone does not bound a run: on
// adversarial instances the answer set is exponential and an unbounded
// enumeration simply never returns. A RunContext makes every engine
// interruptible without giving up its correctness story:
//
//   * a wall-clock DEADLINE (steady clock),
//   * an ANSWER CAP (stop after k emitted answers),
//   * a WORK BUDGET (a shared pool of work units; every subspace solve /
//     emptiness-oracle call charges one),
//   * a cooperative CANCELLATION token (thread-safe, callable from any
//     thread, e.g. a signal handler or a serving timeout),
//   * an injected-fault channel (exec/fault.h) for simulated resource
//     failure.
//
// THE TRUNCATION CONTRACT (docs/ROBUSTNESS.md): when any limit fires, the
// engine stops at the next answer boundary and the answers already emitted
// are a byte-identical prefix of the unbounded stream — at every thread
// count. The context then reports *why* through status() (kCancelled /
// kDeadlineExceeded / kBudgetExhausted / kInternal for injected faults)
// and truncated(); an engine never crashes, never silently short-reads,
// and overruns a deadline by at most one answer-delay.
//
// A RunContext is a cheap copyable HANDLE: copies alias the same stream
// state. Child() creates a new stream (its own answer cap, stop reason and
// counters) that shares the deadline, budget pool and cancel flag —
// db::BatchEvaluator gives each sequence a child so one global budget
// bounds the whole batch while truncation is reported per sequence.
// Configure limits before handing the context to an engine; the
// engine-side methods (ChargeWork / BeforeAnswer / CountAnswer) are
// thread-safe, the setters are not.
//
// Observability: counters `exec.budget.work_charged`, `.answer_capped`,
// `.budget_exhausted`, `.deadline_exceeded`, `.cancelled`, `.faults`
// (docs/OBSERVABILITY.md).

#ifndef TMS_EXEC_RUN_CONTEXT_H_
#define TMS_EXEC_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "common/status.h"

namespace tms::exec {

/// A thread-safe cancellation flag shared by copy. Cancel() may be called
/// from any thread (and more than once); every RunContext built from this
/// token observes it at the next answer boundary.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Why a bounded run stopped early. kNone means no limit has fired (the
/// run is live, or it exhausted its answer space naturally).
enum class StopReason {
  kNone = 0,
  kAnswerCap,   // client-requested cap — maps to an OK status
  kBudget,      // shared work-unit pool drained
  kDeadline,    // wall clock passed the deadline
  kCancelled,   // CancelToken fired
  kFault,       // injected resource failure (exec/fault.h)
};

/// See the file comment. Engines take a `RunContext*` (null = unbounded).
class RunContext {
 public:
  static constexpr int64_t kUnlimited = std::numeric_limits<int64_t>::max();

  using Clock = std::chrono::steady_clock;

  /// An unbounded context: nothing ever fires until a limit is set or the
  /// token is cancelled.
  RunContext();

  // -- configuration (call before running; not thread-safe) --------------

  /// Absolute deadline. A deadline already in the past stops the run
  /// before its first answer.
  void set_deadline(Clock::time_point deadline);
  /// Relative convenience: now + ms.
  void set_deadline_after_ms(int64_t ms);
  /// Stop after this many emitted answers (per stream; 0 = none at all).
  void set_max_answers(int64_t max_answers);
  /// Shared pool of work units (subspace solves / oracle calls) across
  /// this context and all its children.
  void set_work_budget(int64_t units);
  /// Binds an external cancellation token (replacing the built-in one).
  void set_cancel_token(CancelToken token);

  CancelToken cancel_token() const;
  /// Shorthand for cancel_token().Cancel().
  void RequestCancel() const;

  /// A new stream sharing this context's deadline, budget pool and cancel
  /// flag but with its own answer cap, stop reason and answer counter.
  RunContext Child(int64_t max_answers = kUnlimited) const;

  // -- engine side (thread-safe) -----------------------------------------

  /// Charges `units` from the shared budget, first checking cancellation
  /// and the deadline. Returns false — and latches the stop reason — when
  /// the run must stop; the caller abandons the work item. Sticky: once
  /// stopped, every later call returns false.
  bool ChargeWork(int64_t units = 1);

  /// True while no stop reason is latched and neither cancellation, the
  /// deadline, nor the (already drained) budget demands one. Charges
  /// nothing — for cheap checks inside long work items.
  bool StopRequested();

  /// Gate before emitting the next answer: false when the run must stop
  /// (including when the answer cap is reached). Engines call this at the
  /// top of Next() so a stopped stream returns nullopt forever after.
  bool BeforeAnswer();

  /// Counts one emitted answer on this stream.
  void CountAnswer();

  /// Latches an injected-fault stop (exec/fault.h fires these at named
  /// points). The run winds down exactly like a cancellation.
  void InjectFault(const std::string& point);

  // -- outcome ------------------------------------------------------------

  StopReason stop_reason() const;
  /// True iff any limit fired (the emitted stream may be shorter than the
  /// unbounded one). Reaching the answer cap counts as truncation even
  /// when the stream would have ended there anyway — the engine cannot
  /// know without doing more work.
  bool truncated() const { return stop_reason() != StopReason::kNone; }
  /// OK while live or stopped by the answer cap; otherwise the structured
  /// stop status (kCancelled / kDeadlineExceeded / kBudgetExhausted, or
  /// kInternal for an injected fault).
  Status status() const;

  int64_t answers_emitted() const;
  /// Work units charged across this context and all children.
  int64_t work_charged() const;
  int64_t max_answers() const { return stream_->max_answers; }
  bool has_deadline() const { return shared_->has_deadline; }
  Clock::time_point deadline() const { return shared_->deadline; }
  /// Budget units configured at set_work_budget time (kUnlimited = none).
  int64_t budget_configured() const { return shared_->budget_configured; }
  /// The obs::QueryScope id this stream was created under (0 = none).
  /// Hard-limit truncations are attributed to this query in the flight
  /// recorder (docs/OBSERVABILITY.md).
  uint64_t obs_query_id() const { return stream_->obs_query_id; }

 private:
  // Limits + pooled counters shared across Child() streams.
  struct SharedState {
    std::atomic<int64_t> budget_remaining{kUnlimited};
    std::atomic<int64_t> work_charged{0};
    int64_t budget_configured = kUnlimited;
    Clock::time_point deadline{};
    bool has_deadline = false;
    CancelToken cancel;
  };
  // Per-stream truncation state.
  struct StreamState {
    std::atomic<int> stop_reason{0};
    std::atomic<int64_t> answers{0};
    int64_t max_answers = kUnlimited;
    uint64_t obs_query_id = 0;  // owning QueryScope at stream creation
    // Written only by the thread whose kFault CAS won in Latch(); readers
    // must observe fault_point_set (acquire) before touching the string.
    // Concurrent InjectFault calls would otherwise race both against each
    // other and against FlightRecorder::OnTruncation / status() readers.
    std::string fault_point;
    std::atomic<bool> fault_point_set{false};
  };

  // Latches `reason` if none is set yet (first reason wins) and bumps the
  // matching exec.budget.* counter. For kFault, the CAS winner publishes
  // `*fault_point` (losers' strings are dropped — their reason lost too).
  void Latch(StopReason reason, const std::string* fault_point = nullptr);
  // The published fault point, or "" when none is visible yet.
  std::string fault_point() const;
  // Checks cancel / deadline / drained budget and latches; true = stop.
  bool CheckSharedLimits();

  std::shared_ptr<SharedState> shared_;
  std::shared_ptr<StreamState> stream_;
};

}  // namespace tms::exec

#endif  // TMS_EXEC_RUN_CONTEXT_H_
