// The one options struct every enumeration engine takes.
//
// EmaxEnumerator, UnrankedEnumerator, ImaxEnumerator and LawlerEnumerator
// each grew an ad-hoc options surface (a private struct, loose trailing
// parameters, or nothing); EngineOptions collapses them into a single
// shape shared by query::MakeEnumerator, query::Evaluator,
// db::BatchEvaluator and tms_cli. The per-engine spellings survive as
// thin aliases (e.g. EmaxEnumerator::Options, Evaluator::Execution) so
// out-of-tree callers keep compiling; field order is part of that
// compatibility (aggregate initializers written against the old
// {pool, cache, run} structs still mean the same thing).
//
// Every pointer is non-owning and optional: the pointee must outlive the
// engine, and null selects the default behavior documented per field.
// Engines ignore the fields that do not apply to them (the unranked
// enumerator has no subspaces to parallelize, the s-projector path
// composes nothing) — passing one fully-populated EngineOptions to every
// engine of a batch is the intended use.

#ifndef TMS_EXEC_ENGINE_OPTIONS_H_
#define TMS_EXEC_ENGINE_OPTIONS_H_

#include "kernels/backend.h"
#include "optimize/level.h"

namespace tms::transducer {
class CompositionCache;
}  // namespace tms::transducer

namespace tms::exec {

class ThreadPool;
class RunContext;

struct EngineOptions {
  /// Solves independent engine sub-tasks (e.g. the child subspaces of a
  /// Lawler pop) concurrently. Non-owning; must outlive the engine.
  /// Null = sequential. Output is byte-identical at any thread count.
  ThreadPool* pool = nullptr;

  /// Shared transducer-composition cache, e.g. one cache across the many
  /// enumerations of a db::BatchEvaluator run. Non-owning (must outlive
  /// the engine) and must be bound to the engine's transducer. Null = the
  /// engine keeps a private cache (engines that compose nothing ignore
  /// it).
  transducer::CompositionCache* cache = nullptr;

  /// Bounded execution (deadline / answer cap / work budget /
  /// cancellation; see exec/run_context.h). Non-owning; null = unbounded.
  /// On truncation the emitted answers are an exact prefix of the
  /// unbounded stream and `run->status()` says why.
  RunContext* run = nullptr;

  /// Kernel backend for the DP hot paths (see kernels/backend.h and
  /// docs/SPARSE.md). kAuto resolves per instance from the measured
  /// transition density; dense and sparse produce byte-identical answer
  /// streams either way, so this is a performance knob only.
  kernels::BackendChoice backend = kernels::BackendChoice::kAuto;

  /// Offline optimization of the query transducer and the composed
  /// products (optimize/transducer_opt.h). The engine path runs only the
  /// stream-byte-exact prune, so — like `backend` — this is a performance
  /// knob: answer streams are identical at every level. kAuto lets the
  /// engine decide per query (see optimize::ShouldOptimize). Appended
  /// after `backend` so aggregate initializers written against the older
  /// struct keep their meaning.
  optimize::Level optimize = optimize::Level::kAuto;
};

}  // namespace tms::exec

#endif  // TMS_EXEC_ENGINE_OPTIONS_H_
