#include "query/emax.h"

#include <cmath>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "kernels/arena.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/sparse.h"
#include "numeric/log_prob.h"

namespace tms::query {
namespace {

using numeric::LogProb;

constexpr int32_t kNoBack = -1;

// Looks up the (unique) emission of the transition (q, s, q2).
const Str& EmissionOf(const transducer::Transducer& t, automata::StateId q,
                      Symbol s, automata::StateId q2) {
  for (const transducer::Edge& e : t.Next(q, s)) {
    if (e.target == q2) return e.output;
  }
  TMS_CHECK(false);  // transition must exist when called from backtracking
  static const Str kEmpty;
  return kEmpty;
}

}  // namespace

EmaxContext::EmaxContext(const markov::MarkovSequence& mu,
                         kernels::BackendChoice backend)
    : mu_(&mu),
      n_(mu.length()),
      sigma_(mu.nodes().size()),
      backend_(kernels::ChooseBackend(backend, mu.TransitionDensity(), sigma_,
                                      mu.HasSparseTransitions())),
      init_(sigma_) {
  for (size_t s = 0; s < sigma_; ++s) {
    init_[s] = LogProb::FromLinear(mu.Initial(static_cast<Symbol>(s))).log();
  }
  // One log tensor per distinct transition matrix: a homogeneous μ (or a
  // run of equal matrices) shares a single LogStep across its layers.
  std::unordered_map<const void*, std::shared_ptr<const LogStep>> built;
  steps_.reserve(static_cast<size_t>(n_ > 1 ? n_ - 1 : 0));
  for (int i = 2; i <= n_; ++i) {
    const void* id = mu.TransitionStepIdentity(i - 1);
    auto it = built.find(id);
    if (it != built.end()) {
      steps_.push_back(it->second);
      continue;
    }
    kernels::MatrixRef view = mu.TransitionView(i - 1);
    auto step = std::make_shared<LogStep>();
    step->dense.resize(sigma_ * sigma_);
    for (size_t c = 0; c < sigma_ * sigma_; ++c) {
      step->dense[c] = LogProb::FromLinear(view.dense.data()[c]).log();
    }
    if (backend_ == kernels::Backend::kSparse && view.has_sparse) {
      // The finite log entries are exactly μ's positive entries, so the
      // CSR-transpose pattern carries over with log-mapped values.
      const size_t nnz = view.csr_t.nnz;
      step->t_off.assign(view.csr_t.row_off, view.csr_t.row_off + sigma_ + 1);
      step->t_idx.assign(view.csr_t.col_idx, view.csr_t.col_idx + nnz);
      step->t_val.resize(nnz);
      for (size_t e = 0; e < nnz; ++e) {
        step->t_val[e] = LogProb::FromLinear(view.csr_t.val[e]).log();
      }
      step->has_sparse = true;
    }
    built.emplace(id, step);
    steps_.push_back(std::move(step));
  }
}

std::optional<Evidence> EmaxContext::TopAnswer(
    const transducer::Transducer& t) const {
  TMS_CHECK(mu_->nodes() == t.input_alphabet());
  const int n = n_;
  const size_t sigma = sigma_;
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t cells = sigma * nq;
  const double ninf = -std::numeric_limits<double>::infinity();
  auto idx = [&](size_t s, size_t q) { return s * nq + q; };

  // best[(s,q)] = max log-prob of a world prefix of length i ending in node
  // s with some run reaching q. The layer update factors into
  //   (1) a dense branchless max-plus gemm over the step tensor:
  //       tmp(s2, q) = max_s prev[(s,q)] + step[s][s2]  (kernels::GemmTN),
  //   (2) a sparse scatter along the transducer edges q --s2--> q2, which
  //       maxes that mass into the (s2, q2) cells of the next layer.
  // The forward pass stores *every* score layer (n * cells doubles) and
  // keeps no backpointers at all: the hot loop stays pure max-plus (no
  // data-dependent stores), and the single winning chain is recovered
  // afterwards by scanning predecessors for exact score equality — the
  // arithmetic is replayed with the same operands, so the comparison is
  // exact, and scanning in ascending (s, q) order reproduces the
  // first-strict-max tie-break of the scalar DP. Answer streams must stay
  // byte-identical to that DP, because witness worlds seed the Lawler
  // subspace splits.
  //
  // Scratch lives in a thread-local arena so concurrent subspace solves of
  // a parallel enumeration never share buffers and reuse one allocation.
  static thread_local kernels::Arena arena;
  arena.Reset();
  double* layers = arena.Alloc<double>(static_cast<size_t>(n) * cells);
  kernels::Matrix<double> tmp(&arena, sigma, nq);
  auto layer = [&](int i) {  // valid for i = 1..n
    return layers + (static_cast<size_t>(i) - 1) * cells;
  };

  // Flatten the transducer into CSR keyed by (s2, q): targets q2 of the
  // edges q --s2--> q2, built once per solve instead of t.Next() per step.
  int32_t* csr_off = arena.Alloc<int32_t>(cells + 1);
  size_t num_edges = 0;
  for (size_t s2 = 0; s2 < sigma; ++s2) {
    for (size_t q = 0; q < nq; ++q) {
      csr_off[s2 * nq + q] = static_cast<int32_t>(num_edges);
      num_edges += t.Next(static_cast<automata::StateId>(q),
                          static_cast<Symbol>(s2))
                       .size();
    }
  }
  csr_off[cells] = static_cast<int32_t>(num_edges);
  int32_t* csr_tgt = arena.Alloc<int32_t>(num_edges);
  {
    size_t pos = 0;
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      for (size_t q = 0; q < nq; ++q) {
        for (const transducer::Edge& e :
             t.Next(static_cast<automata::StateId>(q),
                    static_cast<Symbol>(s2))) {
          csr_tgt[pos++] = static_cast<int32_t>(e.target);
        }
      }
    }
  }

  double* first = layer(1);
  for (size_t c = 0; c < cells; ++c) first[c] = ninf;
  for (size_t s = 0; s < sigma; ++s) {
    double p0 = init_[s];
    if (p0 == ninf) continue;
    for (const transducer::Edge& e :
         t.Next(t.initial(), static_cast<Symbol>(s))) {
      size_t cell = idx(s, static_cast<size_t>(e.target));
      if (p0 > first[cell]) first[cell] = p0;
    }
  }
  for (int i = 2; i <= n; ++i) {
    const LogStep& ls = *steps_[static_cast<size_t>(i) - 2];
    kernels::Matrix<double> prev_m(layer(i - 1), sigma, nq);
    // Stage (1): tmp(s2, q) = max_s step[s][s2] + prev[(s,q)]. On the
    // sparse backend the max runs over only the finite step entries via
    // the CSR transpose (rows = s2, ascending s) — the skipped terms are
    // -inf, the max-plus identity, so tmp is bitwise the dense result.
    if (ls.has_sparse) {
      kernels::CsrView<double> at{ls.t_off.data(), ls.t_idx.data(),
                                  ls.t_val.data(), sigma, sigma,
                                  ls.t_val.size()};
      kernels::SpGemm<kernels::MaxPlus>(at, prev_m, &tmp);
    } else {
      // ls.dense is logically const here; the view never writes it.
      kernels::Matrix<double> step_m(const_cast<double*>(ls.dense.data()),
                                     sigma, sigma);
      kernels::GemmTN<kernels::MaxPlus>(step_m, prev_m, &tmp);
    }
    // Stage (2): scatter along the transducer edges into layer i.
    kernels::Matrix<double> next_m(layer(i), sigma, nq);
    kernels::MaxPlusEdgeScatter(tmp, csr_off, csr_tgt, &next_m);
  }
  const double* prev = layer(n);

  // Pick the best accepting cell in the last layer (now in `prev`).
  double best_val = ninf;
  int32_t best_cell = kNoBack;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (!t.IsAccepting(static_cast<automata::StateId>(q))) continue;
      if (prev[idx(s, q)] > best_val) {
        best_val = prev[idx(s, q)];
        best_cell = static_cast<int32_t>(idx(s, q));
      }
    }
  }
  if (best_cell == kNoBack || best_val == ninf) return std::nullopt;

  // Backtrack the (node, state) chain by replaying each layer update in
  // reverse. Reverse CSR keyed by (s2, q2): source states q of the edges
  // q --s2--> q2, in ascending q (built from the q-ascending forward
  // lists), so the ascending (s, q) equality scan below lands on exactly
  // the predecessor the scalar DP's first-strict-max rule kept.
  int32_t* rev_off = arena.Alloc<int32_t>(cells + 1);
  int32_t* rev_src = arena.Alloc<int32_t>(num_edges);
  {
    for (size_t c = 0; c <= cells; ++c) rev_off[c] = 0;
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      const int32_t* off = csr_off + s2 * nq;
      for (size_t q = 0; q < nq; ++q) {
        for (int32_t e = off[q]; e < off[q + 1]; ++e) {
          ++rev_off[s2 * nq + static_cast<size_t>(csr_tgt[e]) + 1];
        }
      }
    }
    for (size_t c = 0; c < cells; ++c) rev_off[c + 1] += rev_off[c];
    int32_t* fill = arena.Alloc<int32_t>(cells);
    for (size_t c = 0; c < cells; ++c) fill[c] = rev_off[c];
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      const int32_t* off = csr_off + s2 * nq;
      for (size_t q = 0; q < nq; ++q) {
        for (int32_t e = off[q]; e < off[q + 1]; ++e) {
          size_t key = s2 * nq + static_cast<size_t>(csr_tgt[e]);
          rev_src[fill[key]++] = static_cast<int32_t>(q);
        }
      }
    }
  }
  std::vector<size_t> chain(static_cast<size_t>(n) + 1);
  chain[static_cast<size_t>(n)] = static_cast<size_t>(best_cell);
  for (int i = n; i >= 2; --i) {
    size_t cell = chain[static_cast<size_t>(i)];
    size_t s2 = cell / nq;
    double target = layer(i)[cell];
    const double* prev_l = layer(i - 1);
    // Backtracking replays the dense log values; the sparse forward left
    // the layers bitwise unchanged, so the equality scan is still exact.
    const double* step_i = steps_[static_cast<size_t>(i) - 2]->dense.data();
    int32_t p = kNoBack;
    for (size_t s = 0; s < sigma && p == kNoBack; ++s) {
      double st = step_i[s * sigma + s2];
      if (st == ninf) continue;
      for (int32_t e = rev_off[cell]; e < rev_off[cell + 1]; ++e) {
        size_t q = static_cast<size_t>(rev_src[e]);
        // Same operands as the forward max, so equality is exact.
        if (prev_l[idx(s, q)] + st == target) {
          p = static_cast<int32_t>(idx(s, q));
          break;
        }
      }
    }
    TMS_CHECK(p != kNoBack);
    chain[static_cast<size_t>(i - 1)] = static_cast<size_t>(p);
  }
  Evidence out;
  out.world.resize(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) {
    out.world[static_cast<size_t>(i - 1)] =
        static_cast<Symbol>(chain[static_cast<size_t>(i)] / nq);
  }
  // Reconstruct the output along the run.
  automata::StateId prev_q = t.initial();
  for (int i = 1; i <= n; ++i) {
    automata::StateId q =
        static_cast<automata::StateId>(chain[static_cast<size_t>(i)] % nq);
    const Str& w =
        EmissionOf(t, prev_q, out.world[static_cast<size_t>(i - 1)], q);
    out.output.insert(out.output.end(), w.begin(), w.end());
    prev_q = q;
  }
  out.prob = std::exp(best_val);
  return out;
}

std::optional<Evidence> TopAnswerByEmax(const markov::MarkovSequence& mu,
                                        const transducer::Transducer& t) {
  return EmaxContext(mu).TopAnswer(t);
}

std::optional<Evidence> EmaxOfAnswer(const markov::MarkovSequence& mu,
                                     const transducer::Transducer& t,
                                     const Str& o) {
  TMS_CHECK(mu.nodes() == t.input_alphabet());
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t jdim = o.size() + 1;
  auto idx = [&](size_t s, size_t q, size_t j) {
    return (s * nq + q) * jdim + j;
  };
  auto advance = [&o](int j, const Str& w) -> int {
    for (Symbol c : w) {
      if (j >= static_cast<int>(o.size()) || o[static_cast<size_t>(j)] != c) {
        return -1;
      }
      ++j;
    }
    return j;
  };

  std::vector<std::vector<LogProb>> best(
      static_cast<size_t>(n) + 1,
      std::vector<LogProb>(sigma * nq * jdim, LogProb::Zero()));
  std::vector<std::vector<int32_t>> back(
      static_cast<size_t>(n) + 1,
      std::vector<int32_t>(sigma * nq * jdim, kNoBack));

  for (size_t s = 0; s < sigma; ++s) {
    LogProb p0 = LogProb::FromLinear(mu.Initial(static_cast<Symbol>(s)));
    if (p0.IsZero()) continue;
    for (const transducer::Edge& e :
         t.Next(t.initial(), static_cast<Symbol>(s))) {
      int j = advance(0, e.output);
      if (j < 0) continue;
      size_t cell = idx(s, static_cast<size_t>(e.target),
                        static_cast<size_t>(j));
      if (p0 > best[1][cell]) best[1][cell] = p0;
    }
  }
  // Positive successors (s2, log step) of the current (i, s), gathered
  // once per source row through the TransitionView instead of a scalar
  // Transition() probe per (s, q, j, s2). The CSR pattern is exactly the
  // set the step.IsZero() test used to keep, in the same ascending order.
  std::vector<std::pair<size_t, LogProb>> successors;
  for (int i = 2; i <= n; ++i) {
    kernels::MatrixRef view = mu.TransitionView(i - 1);
    for (size_t s = 0; s < sigma; ++s) {
      successors.clear();
      if (view.has_sparse) {
        for (int32_t e = view.csr.row_off[s]; e < view.csr.row_off[s + 1];
             ++e) {
          successors.emplace_back(
              static_cast<size_t>(view.csr.col_idx[e]),
              LogProb::FromLinear(view.csr.val[e]));
        }
      } else {
        const double* row = view.dense.row(s);
        for (size_t s2 = 0; s2 < sigma; ++s2) {
          if (row[s2] > 0.0) {
            successors.emplace_back(s2, LogProb::FromLinear(row[s2]));
          }
        }
      }
      for (size_t q = 0; q < nq; ++q) {
        for (size_t j = 0; j < jdim; ++j) {
          LogProb mass = best[static_cast<size_t>(i - 1)][idx(s, q, j)];
          if (mass.IsZero()) continue;
          for (const auto& [s2, step] : successors) {
            LogProb cand = mass * step;
            for (const transducer::Edge& e :
                 t.Next(static_cast<automata::StateId>(q),
                        static_cast<Symbol>(s2))) {
              int j2 = advance(static_cast<int>(j), e.output);
              if (j2 < 0) continue;
              size_t cell = idx(s2, static_cast<size_t>(e.target),
                                static_cast<size_t>(j2));
              if (cand > best[static_cast<size_t>(i)][cell]) {
                best[static_cast<size_t>(i)][cell] = cand;
                back[static_cast<size_t>(i)][cell] =
                    static_cast<int32_t>(idx(s, q, j));
              }
            }
          }
        }
      }
    }
  }

  LogProb best_val = LogProb::Zero();
  int32_t best_cell = kNoBack;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (!t.IsAccepting(static_cast<automata::StateId>(q))) continue;
      size_t cell = idx(s, q, o.size());
      if (best[static_cast<size_t>(n)][cell] > best_val) {
        best_val = best[static_cast<size_t>(n)][cell];
        best_cell = static_cast<int32_t>(cell);
      }
    }
  }
  if (best_cell == kNoBack) return std::nullopt;

  std::vector<size_t> cells(static_cast<size_t>(n) + 1);
  cells[static_cast<size_t>(n)] = static_cast<size_t>(best_cell);
  for (int i = n; i >= 2; --i) {
    int32_t prev = back[static_cast<size_t>(i)][cells[static_cast<size_t>(i)]];
    TMS_CHECK(prev != kNoBack);
    cells[static_cast<size_t>(i - 1)] = static_cast<size_t>(prev);
  }
  Evidence out;
  out.world.resize(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) {
    out.world[static_cast<size_t>(i - 1)] =
        static_cast<Symbol>(cells[static_cast<size_t>(i)] / (nq * jdim));
  }
  out.output = o;
  out.prob = best_val.ToLinear();
  return out;
}

}  // namespace tms::query
