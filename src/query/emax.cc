#include "query/emax.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "numeric/log_prob.h"

namespace tms::query {
namespace {

using numeric::LogProb;

constexpr int32_t kNoBack = -1;

// Looks up the (unique) emission of the transition (q, s, q2).
const Str& EmissionOf(const transducer::Transducer& t, automata::StateId q,
                      Symbol s, automata::StateId q2) {
  for (const transducer::Edge& e : t.Next(q, s)) {
    if (e.target == q2) return e.output;
  }
  TMS_CHECK(false);  // transition must exist when called from backtracking
  static const Str kEmpty;
  return kEmpty;
}

}  // namespace

EmaxContext::EmaxContext(const markov::MarkovSequence& mu)
    : mu_(&mu),
      n_(mu.length()),
      sigma_(mu.nodes().size()),
      init_(sigma_),
      step_(static_cast<size_t>(n_) * sigma_ * sigma_) {
  for (size_t s = 0; s < sigma_; ++s) {
    init_[s] = LogProb::FromLinear(mu.Initial(static_cast<Symbol>(s))).log();
  }
  for (int i = 2; i <= n_; ++i) {
    double* row = step_.data() + (static_cast<size_t>(i) - 2) * sigma_ * sigma_;
    for (size_t s = 0; s < sigma_; ++s) {
      for (size_t s2 = 0; s2 < sigma_; ++s2) {
        row[s * sigma_ + s2] =
            LogProb::FromLinear(
                mu.Transition(i - 1, static_cast<Symbol>(s),
                              static_cast<Symbol>(s2)))
                .log();
      }
    }
  }
}

std::optional<Evidence> EmaxContext::TopAnswer(
    const transducer::Transducer& t) const {
  TMS_CHECK(mu_->nodes() == t.input_alphabet());
  const int n = n_;
  const size_t sigma = sigma_;
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t cells = sigma * nq;
  const double ninf = -std::numeric_limits<double>::infinity();
  auto idx = [&](size_t s, size_t q) { return s * nq + q; };

  // best[(s,q)] = max log-prob of a world prefix of length i ending in node
  // s with some run reaching q. Only two rolling score layers are live, but
  // all n back layers (packed (s', q') predecessors) are kept for the
  // backtrack. Scratch is thread-local so concurrent subspace solves of a
  // parallel enumeration never share buffers.
  static thread_local std::vector<double> prev_scratch;
  static thread_local std::vector<double> cur_scratch;
  static thread_local std::vector<int32_t> back_scratch;
  prev_scratch.assign(cells, ninf);
  cur_scratch.assign(cells, ninf);
  back_scratch.resize((static_cast<size_t>(n) + 1) * cells);
  double* prev = prev_scratch.data();
  double* cur = cur_scratch.data();
  int32_t* back = back_scratch.data();

  for (size_t s = 0; s < sigma; ++s) {
    double p0 = init_[s];
    if (p0 == ninf) continue;
    for (const transducer::Edge& e :
         t.Next(t.initial(), static_cast<Symbol>(s))) {
      size_t cell = idx(s, static_cast<size_t>(e.target));
      if (p0 > prev[cell]) prev[cell] = p0;
    }
  }
  for (int i = 2; i <= n; ++i) {
    int32_t* back_i = back + static_cast<size_t>(i) * cells;
    const double* step_i =
        step_.data() + (static_cast<size_t>(i) - 2) * sigma * sigma;
    for (size_t c = 0; c < cells; ++c) cur[c] = ninf;
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        double mass = prev[idx(s, q)];
        if (mass == ninf) continue;
        for (size_t s2 = 0; s2 < sigma; ++s2) {
          double step = step_i[s * sigma + s2];
          if (step == ninf) continue;
          double cand = mass + step;
          for (const transducer::Edge& e :
               t.Next(static_cast<automata::StateId>(q),
                      static_cast<Symbol>(s2))) {
            size_t cell = idx(s2, static_cast<size_t>(e.target));
            if (cand > cur[cell]) {
              cur[cell] = cand;
              back_i[cell] = static_cast<int32_t>(idx(s, q));
            }
          }
        }
      }
    }
    std::swap(prev, cur);
  }

  // Pick the best accepting cell in the last layer (now in `prev`).
  double best_val = ninf;
  int32_t best_cell = kNoBack;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (!t.IsAccepting(static_cast<automata::StateId>(q))) continue;
      if (prev[idx(s, q)] > best_val) {
        best_val = prev[idx(s, q)];
        best_cell = static_cast<int32_t>(idx(s, q));
      }
    }
  }
  if (best_cell == kNoBack || best_val == ninf) return std::nullopt;

  // Backtrack the (node, state) chain.
  std::vector<size_t> chain(static_cast<size_t>(n) + 1);
  chain[static_cast<size_t>(n)] = static_cast<size_t>(best_cell);
  for (int i = n; i >= 2; --i) {
    int32_t p = back[static_cast<size_t>(i) * cells +
                     chain[static_cast<size_t>(i)]];
    TMS_CHECK(p != kNoBack);
    chain[static_cast<size_t>(i - 1)] = static_cast<size_t>(p);
  }
  Evidence out;
  out.world.resize(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) {
    out.world[static_cast<size_t>(i - 1)] =
        static_cast<Symbol>(chain[static_cast<size_t>(i)] / nq);
  }
  // Reconstruct the output along the run.
  automata::StateId prev_q = t.initial();
  for (int i = 1; i <= n; ++i) {
    automata::StateId q =
        static_cast<automata::StateId>(chain[static_cast<size_t>(i)] % nq);
    const Str& w =
        EmissionOf(t, prev_q, out.world[static_cast<size_t>(i - 1)], q);
    out.output.insert(out.output.end(), w.begin(), w.end());
    prev_q = q;
  }
  out.prob = std::exp(best_val);
  return out;
}

std::optional<Evidence> TopAnswerByEmax(const markov::MarkovSequence& mu,
                                        const transducer::Transducer& t) {
  return EmaxContext(mu).TopAnswer(t);
}

std::optional<Evidence> EmaxOfAnswer(const markov::MarkovSequence& mu,
                                     const transducer::Transducer& t,
                                     const Str& o) {
  TMS_CHECK(mu.nodes() == t.input_alphabet());
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t jdim = o.size() + 1;
  auto idx = [&](size_t s, size_t q, size_t j) {
    return (s * nq + q) * jdim + j;
  };
  auto advance = [&o](int j, const Str& w) -> int {
    for (Symbol c : w) {
      if (j >= static_cast<int>(o.size()) || o[static_cast<size_t>(j)] != c) {
        return -1;
      }
      ++j;
    }
    return j;
  };

  std::vector<std::vector<LogProb>> best(
      static_cast<size_t>(n) + 1,
      std::vector<LogProb>(sigma * nq * jdim, LogProb::Zero()));
  std::vector<std::vector<int32_t>> back(
      static_cast<size_t>(n) + 1,
      std::vector<int32_t>(sigma * nq * jdim, kNoBack));

  for (size_t s = 0; s < sigma; ++s) {
    LogProb p0 = LogProb::FromLinear(mu.Initial(static_cast<Symbol>(s)));
    if (p0.IsZero()) continue;
    for (const transducer::Edge& e :
         t.Next(t.initial(), static_cast<Symbol>(s))) {
      int j = advance(0, e.output);
      if (j < 0) continue;
      size_t cell = idx(s, static_cast<size_t>(e.target),
                        static_cast<size_t>(j));
      if (p0 > best[1][cell]) best[1][cell] = p0;
    }
  }
  for (int i = 2; i <= n; ++i) {
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        for (size_t j = 0; j < jdim; ++j) {
          LogProb mass = best[static_cast<size_t>(i - 1)][idx(s, q, j)];
          if (mass.IsZero()) continue;
          for (size_t s2 = 0; s2 < sigma; ++s2) {
            LogProb step = LogProb::FromLinear(mu.Transition(
                i - 1, static_cast<Symbol>(s), static_cast<Symbol>(s2)));
            if (step.IsZero()) continue;
            LogProb cand = mass * step;
            for (const transducer::Edge& e :
                 t.Next(static_cast<automata::StateId>(q),
                        static_cast<Symbol>(s2))) {
              int j2 = advance(static_cast<int>(j), e.output);
              if (j2 < 0) continue;
              size_t cell = idx(s2, static_cast<size_t>(e.target),
                                static_cast<size_t>(j2));
              if (cand > best[static_cast<size_t>(i)][cell]) {
                best[static_cast<size_t>(i)][cell] = cand;
                back[static_cast<size_t>(i)][cell] =
                    static_cast<int32_t>(idx(s, q, j));
              }
            }
          }
        }
      }
    }
  }

  LogProb best_val = LogProb::Zero();
  int32_t best_cell = kNoBack;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (!t.IsAccepting(static_cast<automata::StateId>(q))) continue;
      size_t cell = idx(s, q, o.size());
      if (best[static_cast<size_t>(n)][cell] > best_val) {
        best_val = best[static_cast<size_t>(n)][cell];
        best_cell = static_cast<int32_t>(cell);
      }
    }
  }
  if (best_cell == kNoBack) return std::nullopt;

  std::vector<size_t> cells(static_cast<size_t>(n) + 1);
  cells[static_cast<size_t>(n)] = static_cast<size_t>(best_cell);
  for (int i = n; i >= 2; --i) {
    int32_t prev = back[static_cast<size_t>(i)][cells[static_cast<size_t>(i)]];
    TMS_CHECK(prev != kNoBack);
    cells[static_cast<size_t>(i - 1)] = static_cast<size_t>(prev);
  }
  Evidence out;
  out.world.resize(static_cast<size_t>(n));
  for (int i = 1; i <= n; ++i) {
    out.world[static_cast<size_t>(i - 1)] =
        static_cast<Symbol>(cells[static_cast<size_t>(i)] / (nq * jdim));
  }
  out.output = o;
  out.prob = best_val.ToLinear();
  return out;
}

}  // namespace tms::query
