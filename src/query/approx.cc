#include "query/approx.h"

#include <cmath>

#include "common/check.h"
#include "markov/world_iter.h"

namespace tms::query {

MonteCarloEstimate ConfidenceMonteCarlo(const markov::MarkovSequence& mu,
                                        const transducer::Transducer& t,
                                        const Str& o, int64_t samples,
                                        Rng& rng) {
  TMS_CHECK(samples > 0);
  TMS_CHECK(mu.nodes() == t.input_alphabet());
  MonteCarloEstimate out;
  out.samples = samples;
  for (int64_t i = 0; i < samples; ++i) {
    Str world = markov::SampleWorld(mu, rng);
    if (t.Transduces(world, o)) ++out.hits;
  }
  out.estimate =
      static_cast<double>(out.hits) / static_cast<double>(samples);
  out.error_bound95 =
      std::sqrt(std::log(2.0 / 0.05) / (2.0 * static_cast<double>(samples)));
  return out;
}

}  // namespace tms::query
