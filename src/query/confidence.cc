#include "query/confidence.h"

#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "kernels/arena.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"
#include "kernels/sparse.h"
#include "obs/obs.h"
#include "query/confidence_exact.h"

namespace tms::query {
namespace {

// Traits that let one DP implementation serve doubles and exact rationals.
struct DoubleProb {
  using Value = double;
  static Value Zero() { return 0.0; }
  static bool IsZero(const Value& v) { return v == 0.0; }
  static Value Initial(const markov::MarkovSequence& mu, Symbol s) {
    return mu.Initial(s);
  }
  static Value Transition(const markov::MarkovSequence& mu, int i, Symbol s,
                          Symbol t) {
    return mu.Transition(i, s, t);
  }
};

struct RationalProb {
  using Value = numeric::Rational;
  static Value Zero() { return numeric::Rational(); }
  static bool IsZero(const Value& v) { return v.IsZero(); }
  static Value Initial(const markov::MarkovSequence& mu, Symbol s) {
    return mu.InitialExact(s);
  }
  static Value Transition(const markov::MarkovSequence& mu, int i, Symbol s,
                          Symbol t) {
    return mu.TransitionExact(i, s, t);
  }
};

// Advances the matched length j by emission w against exact target o.
// Returns -1 on mismatch or overshoot.
int AdvanceExact(const Str& o, int j, const Str& w) {
  for (Symbol c : w) {
    if (j >= static_cast<int>(o.size()) || o[static_cast<size_t>(j)] != c) {
      return -1;
    }
    ++j;
  }
  return j;
}

Status RequireSameAlphabet(const markov::MarkovSequence& mu,
                           const transducer::Transducer& t) {
  if (!(mu.nodes() == t.input_alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and transducer input alphabet differ");
  }
  return Status::Ok();
}

// --- Theorem 4.6 ------------------------------------------------------

// Dense double-precision path for the deterministic DP: layers are
// σ × (|Q|·(|o|+1)) matrices; each step is a Real-semiring gemm against
// the step's transition matrix followed by a deterministic-edge scatter.
// The transducer successor and j-advance depend only on (q, s2, j), so
// they are tabulated once per call. The gemm collapses the predecessor-
// node sum first (the scalar loop interleaves it with the scatter), so
// results can differ from the scalar path by reassociation error — within
// the kernel layer's documented Real tolerance. The sparse path skips
// only exact-zero transition entries of that nonnegative sum in the same
// ascending order, so it is bitwise identical to the dense path.
double DetConfidenceDense(const markov::MarkovSequence& mu,
                          const transducer::Transducer& t, const Str& o,
                          kernels::BackendChoice backend) {
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const kernels::Backend resolved = kernels::ChooseBackend(
      backend, mu.TransitionDensity(), sigma, mu.HasSparseTransitions());
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t jdim = o.size() + 1;
  const size_t cols = nq * jdim;

  // Deterministic transducers carry exactly one edge per (state, input).
  std::vector<int32_t> tgt_q(nq * sigma);
  std::vector<int32_t> tgt_j(nq * sigma * jdim);
  for (size_t q = 0; q < nq; ++q) {
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      const transducer::Edge& e = t.Next(static_cast<automata::StateId>(q),
                                         static_cast<Symbol>(s2))[0];
      tgt_q[q * sigma + s2] = e.target;
      for (size_t j = 0; j < jdim; ++j) {
        tgt_j[(q * sigma + s2) * jdim + j] =
            AdvanceExact(o, static_cast<int>(j), e.output);
      }
    }
  }

  thread_local kernels::Arena arena;
  arena.Reset();
  kernels::Matrix<double> cur(&arena, sigma, cols);
  kernels::Matrix<double> next(&arena, sigma, cols);
  kernels::Matrix<double> tmp(&arena, sigma, cols);

  cur.Fill(0.0);
  for (size_t s = 0; s < sigma; ++s) {
    double p0 = mu.Initial(static_cast<Symbol>(s));
    if (p0 == 0.0) continue;
    const size_t base = static_cast<size_t>(t.initial()) * sigma + s;
    int32_t j = tgt_j[base * jdim];
    if (j < 0) continue;
    cur(s, static_cast<size_t>(tgt_q[base]) * jdim +
               static_cast<size_t>(j)) += p0;
  }

  for (int i = 2; i <= n; ++i) {
    // tmp(s2, q·jdim + j) = Σ_s μ_i(s, s2)·cur(s, q·jdim + j): the mass
    // arriving at node s2 from every live (s, q, j) cell. The step matrix
    // is read in place from the Markov sequence (no per-step σ² copy).
    kernels::MatrixRef view = mu.TransitionView(i - 1);
    if (resolved == kernels::Backend::kSparse && view.has_sparse) {
      kernels::SpGemm<kernels::Real>(view.csr_t, cur, &tmp);
    } else {
      kernels::GemmTN<kernels::Real>(view.dense, cur, &tmp);
    }
    next.Fill(0.0);
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      const double* trow = tmp.row(s2);
      double* nrow = next.row(s2);
      for (size_t q = 0; q < nq; ++q) {
        const size_t base = q * sigma + s2;
        const size_t q2 = static_cast<size_t>(tgt_q[base]);
        for (size_t j = 0; j < jdim; ++j) {
          int32_t j2 = tgt_j[base * jdim + j];
          if (j2 < 0) continue;
          nrow[q2 * jdim + static_cast<size_t>(j2)] += trow[q * jdim + j];
        }
      }
    }
    std::swap(cur, next);
  }

  double total = 0.0;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (t.IsAccepting(static_cast<automata::StateId>(q))) {
        total += cur(s, q * jdim + o.size());
      }
    }
  }
  return total;
}

template <typename P>
StatusOr<typename P::Value> DetConfidenceImpl(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o,
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto) {
  TMS_RETURN_IF_ERROR(RequireSameAlphabet(mu, t));
  if (!t.IsDeterministic()) {
    return Status::FailedPrecondition(
        "ConfidenceDeterministic requires a deterministic transducer");
  }
  using Value = typename P::Value;
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t jdim = o.size() + 1;
  auto idx = [&](size_t s, size_t q, size_t j) {
    return (s * nq + q) * jdim + j;
  };

  TMS_OBS_SPAN("query.confidence.det_dp");
  TMS_OBS_COUNT("query.confidence.det_calls", 1);
  // One DP layer holds σ·|Q|·(|o|+1) cells; n layers are materialized
  // (Theorem 4.6's polynomial bound, reported as scanned cell count).
  TMS_OBS_COUNT("query.confidence.dp_cells",
                static_cast<int64_t>(sigma * nq * jdim) * n);

  if constexpr (std::is_same_v<P, DoubleProb>) {
    // Doubles take the kernel path; Rational keeps the scalar loop
    // below (exact arithmetic has no dense representation here).
    return DetConfidenceDense(mu, t, o, backend);
  }

  std::vector<Value> cur(sigma * nq * jdim, P::Zero());
  for (size_t s = 0; s < sigma; ++s) {
    Value p0 = P::Initial(mu, static_cast<Symbol>(s));
    if (P::IsZero(p0)) continue;
    const transducer::Edge& e =
        t.Next(t.initial(), static_cast<Symbol>(s))[0];
    int j = AdvanceExact(o, 0, e.output);
    if (j < 0) continue;
    cur[idx(s, static_cast<size_t>(e.target), static_cast<size_t>(j))] += p0;
  }

  for (int i = 2; i <= n; ++i) {
    std::vector<Value> next(sigma * nq * jdim, P::Zero());
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        for (size_t j = 0; j < jdim; ++j) {
          const Value& mass = cur[idx(s, q, j)];
          if (P::IsZero(mass)) continue;
          for (size_t s2 = 0; s2 < sigma; ++s2) {
            Value step = P::Transition(mu, i - 1, static_cast<Symbol>(s),
                                       static_cast<Symbol>(s2));
            if (P::IsZero(step)) continue;
            const transducer::Edge& e =
                t.Next(static_cast<automata::StateId>(q),
                       static_cast<Symbol>(s2))[0];
            int j2 = AdvanceExact(o, static_cast<int>(j), e.output);
            if (j2 < 0) continue;
            next[idx(s2, static_cast<size_t>(e.target),
                     static_cast<size_t>(j2))] += mass * step;
          }
        }
      }
    }
    cur = std::move(next);
  }

  Value total = P::Zero();
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (t.IsAccepting(static_cast<automata::StateId>(q))) {
        total += cur[idx(s, q, o.size())];
      }
    }
  }
  return total;
}

// --- Theorem 4.8 ------------------------------------------------------

template <typename P>
StatusOr<typename P::Value> UniformSubsetImpl(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o) {
  TMS_RETURN_IF_ERROR(RequireSameAlphabet(mu, t));
  std::optional<int> k = t.UniformEmissionLength();
  if (!k.has_value()) {
    return Status::FailedPrecondition(
        "ConfidenceUniformSubset requires uniform emission");
  }
  if (t.num_states() > 63) {
    return Status::OutOfRange(
        "ConfidenceUniformSubset supports at most 63 states");
  }
  using Value = typename P::Value;
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  // With k-uniform emission every accepting run on an n-world emits k·n
  // symbols, so a mismatched |o| means confidence 0.
  if (static_cast<int64_t>(o.size()) !=
      static_cast<int64_t>(*k) * static_cast<int64_t>(n)) {
    return P::Zero();
  }

  // Checks ω(q, s, q') == o[k(i-1) .. k·i) for input position i (1-based).
  auto emission_matches = [&](const Str& w, int i) {
    const size_t off = static_cast<size_t>(*k) * static_cast<size_t>(i - 1);
    for (size_t d = 0; d < w.size(); ++d) {
      if (o[off + d] != w[d]) return false;
    }
    return true;
  };

  TMS_OBS_SPAN("query.confidence.subset_dp");
  TMS_OBS_COUNT("query.confidence.uniform_subset_calls", 1);
  int64_t masks_scanned = 0;

  // dp[s] : mask -> probability mass of length-i prefixes ending in node s
  // whose "consistent-run state set" equals mask (empty masks dropped).
  std::vector<std::unordered_map<uint64_t, Value>> cur(sigma);
  for (size_t s = 0; s < sigma; ++s) {
    Value p0 = P::Initial(mu, static_cast<Symbol>(s));
    if (P::IsZero(p0)) continue;
    uint64_t mask = 0;
    for (const transducer::Edge& e :
         t.Next(t.initial(), static_cast<Symbol>(s))) {
      if (emission_matches(e.output, 1)) {
        mask |= (1ULL << static_cast<uint64_t>(e.target));
      }
    }
    if (mask != 0) cur[s][mask] += p0;
  }

  for (int i = 2; i <= n; ++i) {
    std::vector<std::unordered_map<uint64_t, Value>> next(sigma);
    // successor_mask[q][s2] is loop-invariant per i; compute lazily per
    // (q, s2) pair outside the mask loop.
    std::vector<std::vector<uint64_t>> step_mask(
        static_cast<size_t>(t.num_states()), std::vector<uint64_t>(sigma, 0));
    for (int q = 0; q < t.num_states(); ++q) {
      for (size_t s2 = 0; s2 < sigma; ++s2) {
        uint64_t m = 0;
        for (const transducer::Edge& e :
             t.Next(q, static_cast<Symbol>(s2))) {
          if (emission_matches(e.output, i)) {
            m |= (1ULL << static_cast<uint64_t>(e.target));
          }
        }
        step_mask[static_cast<size_t>(q)][s2] = m;
      }
    }
    for (size_t s = 0; s < sigma; ++s) {
      masks_scanned += static_cast<int64_t>(cur[s].size());
      for (const auto& [mask, mass] : cur[s]) {
        for (size_t s2 = 0; s2 < sigma; ++s2) {
          Value step = P::Transition(mu, i - 1, static_cast<Symbol>(s),
                                     static_cast<Symbol>(s2));
          if (P::IsZero(step)) continue;
          uint64_t mask2 = 0;
          uint64_t rest = mask;
          while (rest != 0) {
            int q = __builtin_ctzll(rest);
            rest &= rest - 1;
            mask2 |= step_mask[static_cast<size_t>(q)][s2];
          }
          if (mask2 == 0) continue;
          next[s2][mask2] += mass * step;
        }
      }
    }
    cur = std::move(next);
  }

  uint64_t accept_mask = 0;
  for (int q = 0; q < t.num_states(); ++q) {
    if (t.IsAccepting(q)) accept_mask |= (1ULL << static_cast<uint64_t>(q));
  }
  Value total = P::Zero();
  for (size_t s = 0; s < sigma; ++s) {
    for (const auto& [mask, mass] : cur[s]) {
      if ((mask & accept_mask) != 0) total += mass;
    }
  }
  TMS_OBS_COUNT("query.confidence.subset_masks", masks_scanned);
  (void)masks_scanned;  // only read by instrumentation
  return total;
}

}  // namespace

StatusOr<double> ConfidenceDeterministic(const markov::MarkovSequence& mu,
                                         const transducer::Transducer& t,
                                         const Str& o,
                                         kernels::BackendChoice backend) {
  return DetConfidenceImpl<DoubleProb>(mu, t, o, backend);
}

StatusOr<numeric::Rational> ConfidenceDeterministicExact(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o) {
  if (!mu.has_exact()) {
    return Status::FailedPrecondition(
        "exact confidence requires exact probabilities on the Markov "
        "sequence");
  }
  return DetConfidenceImpl<RationalProb>(mu, t, o);
}

StatusOr<double> ConfidenceDeterministicUniform(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o) {
  if (!t.IsDeterministic()) {
    return Status::FailedPrecondition(
        "ConfidenceDeterministicUniform requires a deterministic transducer");
  }
  if (!t.UniformEmissionLength().has_value()) {
    return Status::FailedPrecondition(
        "ConfidenceDeterministicUniform requires uniform emission");
  }
  // A deterministic transducer is a special case of the subset DP (all
  // masks are singletons), which already has no output dimension.
  return UniformSubsetImpl<DoubleProb>(mu, t, o);
}

StatusOr<double> ConfidenceUniformSubset(const markov::MarkovSequence& mu,
                                         const transducer::Transducer& t,
                                         const Str& o) {
  return UniformSubsetImpl<DoubleProb>(mu, t, o);
}

StatusOr<numeric::Rational> ConfidenceUniformSubsetExact(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o) {
  if (!mu.has_exact()) {
    return Status::FailedPrecondition(
        "exact confidence requires exact probabilities on the Markov "
        "sequence");
  }
  return UniformSubsetImpl<RationalProb>(mu, t, o);
}

StatusOr<double> Confidence(const markov::MarkovSequence& mu,
                            const transducer::Transducer& t, const Str& o,
                            kernels::BackendChoice backend) {
  TMS_OBS_COUNT("query.confidence.calls", 1);
  if (t.IsDeterministic()) {
    if (t.UniformEmissionLength().has_value()) {
      return ConfidenceDeterministicUniform(mu, t, o);
    }
    return ConfidenceDeterministic(mu, t, o, backend);
  }
  if (t.UniformEmissionLength().has_value() && t.num_states() <= 63) {
    return ConfidenceUniformSubset(mu, t, o);
  }
  TMS_OBS_COUNT("query.confidence.exact_calls", 1);
  return ConfidenceExact(mu, t, o);
}

}  // namespace tms::query
