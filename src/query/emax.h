// E_max — the best-evidence score (paper §4.2).
//
// For an answer o, E_max(o) is the maximal probability of a possible world
// s with s →[A^ω]→ o (the answer's best *evidence*). The paper's heuristic
// ranked enumeration (Theorem 4.3) orders answers by decreasing E_max; as
// an approximation of decreasing confidence its worst-case ratio is
// |Σ|^n — and Theorem 4.4 shows that is essentially optimal.
//
// Both computations are Viterbi-style max-product dynamic programs run in
// the log domain (underflow-safe for long sequences).

#ifndef TMS_QUERY_EMAX_H_
#define TMS_QUERY_EMAX_H_

#include <optional>

#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::query {

/// A witness world together with the answer it transduces into.
struct Evidence {
  Str world;    ///< s ∈ Σ^n with p(s) = prob
  Str output;   ///< o with s →[A^ω]→ o
  double prob;  ///< p(s) — the E_max value it certifies
};

/// An answer maximizing E_max over all of A^ω(μ): the most probable world
/// accepted by A, together with the output of its best accepting run.
/// Returns nullopt iff A^ω(μ) = ∅. Time O(n · |Σ|² · |Q|²).
std::optional<Evidence> TopAnswerByEmax(const markov::MarkovSequence& mu,
                                        const transducer::Transducer& t);

/// E_max(o) with its witness world, or nullopt if o ∉ A^ω(μ)
/// (Example 4.2 computes E_max(12) = 0.3969 this way).
/// Time O(n · |Σ|² · |Q|² · (|o|+1)).
std::optional<Evidence> EmaxOfAnswer(const markov::MarkovSequence& mu,
                                     const transducer::Transducer& t,
                                     const Str& o);

}  // namespace tms::query

#endif  // TMS_QUERY_EMAX_H_
