// E_max — the best-evidence score (paper §4.2).
//
// For an answer o, E_max(o) is the maximal probability of a possible world
// s with s →[A^ω]→ o (the answer's best *evidence*). The paper's heuristic
// ranked enumeration (Theorem 4.3) orders answers by decreasing E_max; as
// an approximation of decreasing confidence its worst-case ratio is
// |Σ|^n — and Theorem 4.4 shows that is essentially optimal.
//
// Both computations are Viterbi-style max-product dynamic programs run in
// the log domain (underflow-safe for long sequences).

#ifndef TMS_QUERY_EMAX_H_
#define TMS_QUERY_EMAX_H_

#include <memory>
#include <optional>
#include <vector>

#include "kernels/backend.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::query {

/// A witness world together with the answer it transduces into.
struct Evidence {
  Str world;    ///< s ∈ Σ^n with p(s) = prob
  Str output;   ///< o with s →[A^ω]→ o
  double prob;  ///< p(s) — the E_max value it certifies
};

/// Precomputed log-domain view of one Markov sequence, shared across the
/// many Viterbi solves a ranked enumeration performs on it. The per-call
/// DP needs log(μ.Transition(...)) for every (i, s, s') in its inner loop;
/// hoisting those std::log calls into construction roughly halves the
/// solve time, and the tensors are reused by every subspace solve of the
/// same enumeration (and by every thread of a parallel one).
///
/// One log tensor is kept per *distinct* transition matrix (keyed on
/// μ's shared step storage, markov::MarkovSequence::TransitionStepIdentity),
/// so a homogeneous length-n sequence costs one σ² tensor instead of n-1.
/// The kernel backend for the forward pass is resolved once at
/// construction via kernels::ChooseBackend (see docs/SPARSE.md); when it
/// resolves to sparse, each distinct step additionally carries a CSR of
/// the finite log entries (= the positive probabilities) and the layer
/// update runs through kernels::SpGemm — byte-identical layers either
/// way, because max-plus skips of -inf terms are exact.
///
/// Immutable after construction, so a single context may be shared by
/// concurrent TopAnswer calls. Holds `mu` by non-owning pointer: the
/// Markov sequence must outlive the context.
class EmaxContext {
 public:
  explicit EmaxContext(
      const markov::MarkovSequence& mu,
      kernels::BackendChoice backend = kernels::BackendChoice::kAuto);

  const markov::MarkovSequence& mu() const { return *mu_; }

  /// The backend the construction-time policy resolved to.
  kernels::Backend backend() const { return backend_; }

  /// TopAnswerByEmax(mu, t) computed against the precomputed tensors.
  /// Bit-identical to the naive DP (same witness, same output, same prob)
  /// on either backend. Thread-safe; scratch buffers are thread-local.
  std::optional<Evidence> TopAnswer(const transducer::Transducer& t) const;

 private:
  /// Log-domain image of one distinct transition matrix.
  struct LogStep {
    std::vector<double> dense;  ///< [s·σ + s'] = log μ_i→(s, s')
    // CSR of the *transpose* over the finite entries (row = successor
    // s', columns = predecessors s, ascending) — the SpGemm operand of
    // the layer update. Built iff has_sparse.
    std::vector<int32_t> t_off, t_idx;
    std::vector<double> t_val;
    bool has_sparse = false;
  };

  const markov::MarkovSequence* mu_;
  int n_;
  size_t sigma_;
  kernels::Backend backend_;
  std::vector<double> init_;  ///< [s] = log μ.Initial(s)
  /// steps_[i-2] covers layer i ∈ 2..n (i.e. μ_{i-1}→); shared between
  /// indices whose matrices share storage in μ.
  std::vector<std::shared_ptr<const LogStep>> steps_;
};

/// An answer maximizing E_max over all of A^ω(μ): the most probable world
/// accepted by A, together with the output of its best accepting run.
/// Returns nullopt iff A^ω(μ) = ∅. Time O(n · |Σ|² · |Q|²) dense,
/// O(n · nnz · |Q|) sparse.
/// One-shot wrapper over EmaxContext::TopAnswer; callers solving many
/// transducers against the same μ should build the context once.
std::optional<Evidence> TopAnswerByEmax(const markov::MarkovSequence& mu,
                                        const transducer::Transducer& t);

/// E_max(o) with its witness world, or nullopt if o ∉ A^ω(μ)
/// (Example 4.2 computes E_max(12) = 0.3969 this way).
/// Time O(n · |Σ|² · |Q|² · (|o|+1)).
std::optional<Evidence> EmaxOfAnswer(const markov::MarkovSequence& mu,
                                     const transducer::Transducer& t,
                                     const Str& o);

}  // namespace tms::query

#endif  // TMS_QUERY_EMAX_H_
