#include "query/membership.h"

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "kernels/arena.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"
#include "kernels/sparse.h"

namespace tms::query {
namespace {

enum class MatchMode { kExact, kPrefix };

// Advances the matched-output position j by emission `w`.
// kExact: every emitted symbol must match target[j]; overshoot fails.
// kPrefix: symbols must match while j < |target|; afterwards anything goes
// (j saturates at |target|).
// Returns the new j, or -1 on mismatch.
int AdvanceMatch(const Str& target, int j, const Str& w, MatchMode mode) {
  for (Symbol c : w) {
    if (j < static_cast<int>(target.size())) {
      if (target[static_cast<size_t>(j)] != c) return -1;
      ++j;
    } else if (mode == MatchMode::kExact) {
      return -1;  // emitted past the end of o
    }
  }
  return j;
}

// Reachability DP over layers i = 1..n of triples (node, state, j).
//
// Layers are σ × (nq·jdim) boolean matrices (row = node, column =
// state·jdim + j). Each step is a BoolOr gemm against the step's
// transition mask (which nodes can follow which) followed by a sparse
// scatter through the transducer edges. AdvanceMatch depends only on an
// edge's output and j — not on the layer — so its results are tabulated
// once per call and the hot loop is pure index arithmetic. BoolOr is
// reordering-free, so the oracle's verdicts are identical to the scalar
// triple-loop this replaces.
bool ReachDp(const markov::MarkovSequence& mu, const transducer::Transducer& t,
             const Str& target, MatchMode mode,
             kernels::BackendChoice backend) {
  TMS_CHECK(mu.nodes() == t.input_alphabet());
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const kernels::Backend resolved = kernels::ChooseBackend(
      backend, mu.TransitionDensity(), sigma, mu.HasSparseTransitions());
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t jdim = target.size() + 1;
  const size_t cols = nq * jdim;

  // Flatten the transducer: edges grouped by (source state q, input s2),
  // with the j-advance precomputed for every matched position.
  std::vector<int32_t> ed_off(nq * sigma + 1, 0);
  std::vector<int32_t> ed_tgt;
  std::vector<int32_t> jmap;  // jmap[e*jdim + j] = new j, or -1
  for (size_t q = 0; q < nq; ++q) {
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      for (const transducer::Edge& e :
           t.Next(static_cast<automata::StateId>(q),
                  static_cast<Symbol>(s2))) {
        ed_tgt.push_back(e.target);
        for (size_t j = 0; j < jdim; ++j) {
          jmap.push_back(
              AdvanceMatch(target, static_cast<int>(j), e.output, mode));
        }
      }
      ed_off[q * sigma + s2 + 1] = static_cast<int32_t>(ed_tgt.size());
    }
  }

  thread_local kernels::Arena arena;
  arena.Reset();
  kernels::Matrix<uint8_t> cur(&arena, sigma, cols);
  kernels::Matrix<uint8_t> next(&arena, sigma, cols);
  kernels::Matrix<uint8_t> tmp(&arena, sigma, cols);
  kernels::Matrix<uint8_t> tmask(&arena, sigma, sigma);

  cur.Fill(0);
  for (size_t s = 0; s < sigma; ++s) {
    if (mu.Initial(static_cast<Symbol>(s)) <= 0) continue;
    const size_t base = static_cast<size_t>(t.initial()) * sigma + s;
    for (int32_t e = ed_off[base]; e < ed_off[base + 1]; ++e) {
      int32_t j = jmap[static_cast<size_t>(e) * jdim];
      if (j < 0) continue;
      cur(s, static_cast<size_t>(ed_tgt[static_cast<size_t>(e)]) * jdim +
             static_cast<size_t>(j)) = 1;
    }
  }

  for (int i = 2; i <= n; ++i) {
    // tmp(s2, q·jdim + j) = OR_s [μ(s,s2) > 0] & cur(s, q·jdim + j):
    // "some live (s, q, j) triple can step to node s2". The CSR pattern
    // of the step *is* the > 0 mask, so the sparse path gathers only the
    // supported predecessors — same verdicts, O(nnz) instead of O(σ²).
    kernels::MatrixRef view = mu.TransitionView(i - 1);
    if (resolved == kernels::Backend::kSparse && view.has_sparse) {
      kernels::SpMaskOr(view.csr_t, cur, &tmp);
    } else {
      for (size_t s = 0; s < sigma; ++s) {
        const double* mrow = view.dense.row(s);
        uint8_t* trow = tmask.row(s);
        for (size_t s2 = 0; s2 < sigma; ++s2) trow[s2] = mrow[s2] > 0 ? 1 : 0;
      }
      kernels::GemmTN<kernels::BoolOr>(tmask, cur, &tmp);
    }
    next.Fill(0);
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      const uint8_t* trow = tmp.row(s2);
      uint8_t* nrow = next.row(s2);
      for (size_t q = 0; q < nq; ++q) {
        const size_t base = q * sigma + s2;
        for (size_t j = 0; j < jdim; ++j) {
          if (!trow[q * jdim + j]) continue;
          for (int32_t e = ed_off[base]; e < ed_off[base + 1]; ++e) {
            int32_t j2 = jmap[static_cast<size_t>(e) * jdim + j];
            if (j2 < 0) continue;
            nrow[static_cast<size_t>(ed_tgt[static_cast<size_t>(e)]) * jdim +
                 static_cast<size_t>(j2)] = 1;
          }
        }
      }
    }
    std::swap(cur, next);
  }

  const size_t jfinal = target.size();
  for (size_t q = 0; q < nq; ++q) {
    if (!t.IsAccepting(static_cast<automata::StateId>(q))) continue;
    for (size_t s = 0; s < sigma; ++s) {
      if (cur(s, q * jdim + jfinal)) return true;
    }
  }
  return false;
}

}  // namespace

bool IsPossibleAnswer(const markov::MarkovSequence& mu,
                      const transducer::Transducer& t, const Str& o,
                      kernels::BackendChoice backend) {
  return ReachDp(mu, t, o, MatchMode::kExact, backend);
}

bool HasAnyAnswer(const markov::MarkovSequence& mu,
                  const transducer::Transducer& t,
                  kernels::BackendChoice backend) {
  return ReachDp(mu, t, {}, MatchMode::kPrefix, backend);
}

bool HasAnswerWithPrefix(const markov::MarkovSequence& mu,
                         const transducer::Transducer& t, const Str& prefix,
                         kernels::BackendChoice backend) {
  return ReachDp(mu, t, prefix, MatchMode::kPrefix, backend);
}

}  // namespace tms::query
