#include "query/membership.h"

#include <vector>

#include "common/check.h"

namespace tms::query {
namespace {

enum class MatchMode { kExact, kPrefix };

// Advances the matched-output position j by emission `w`.
// kExact: every emitted symbol must match target[j]; overshoot fails.
// kPrefix: symbols must match while j < |target|; afterwards anything goes
// (j saturates at |target|).
// Returns the new j, or -1 on mismatch.
int AdvanceMatch(const Str& target, int j, const Str& w, MatchMode mode) {
  for (Symbol c : w) {
    if (j < static_cast<int>(target.size())) {
      if (target[static_cast<size_t>(j)] != c) return -1;
      ++j;
    } else if (mode == MatchMode::kExact) {
      return -1;  // emitted past the end of o
    }
  }
  return j;
}

// Reachability DP over layers i = 1..n of triples (node, state, j).
bool ReachDp(const markov::MarkovSequence& mu, const transducer::Transducer& t,
             const Str& target, MatchMode mode) {
  TMS_CHECK(mu.nodes() == t.input_alphabet());
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(t.num_states());
  const size_t jdim = target.size() + 1;
  auto idx = [&](size_t s, size_t q, size_t j) {
    return (s * nq + q) * jdim + j;
  };

  std::vector<char> cur(sigma * nq * jdim, 0);
  for (size_t s = 0; s < sigma; ++s) {
    if (mu.Initial(static_cast<Symbol>(s)) <= 0) continue;
    for (const transducer::Edge& e :
         t.Next(t.initial(), static_cast<Symbol>(s))) {
      int j = AdvanceMatch(target, 0, e.output, mode);
      if (j < 0) continue;
      cur[idx(s, static_cast<size_t>(e.target), static_cast<size_t>(j))] = 1;
    }
  }

  for (int i = 2; i <= n; ++i) {
    std::vector<char> next(sigma * nq * jdim, 0);
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        for (size_t j = 0; j < jdim; ++j) {
          if (!cur[idx(s, q, j)]) continue;
          for (size_t s2 = 0; s2 < sigma; ++s2) {
            if (mu.Transition(i - 1, static_cast<Symbol>(s),
                              static_cast<Symbol>(s2)) <= 0) {
              continue;
            }
            for (const transducer::Edge& e :
                 t.Next(static_cast<automata::StateId>(q),
                        static_cast<Symbol>(s2))) {
              int j2 = AdvanceMatch(target, static_cast<int>(j), e.output,
                                    mode);
              if (j2 < 0) continue;
              next[idx(s2, static_cast<size_t>(e.target),
                       static_cast<size_t>(j2))] = 1;
            }
          }
        }
      }
    }
    cur = std::move(next);
  }

  const size_t jfinal = target.size();
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (cur[idx(s, q, jfinal)] &&
          t.IsAccepting(static_cast<automata::StateId>(q))) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace

bool IsPossibleAnswer(const markov::MarkovSequence& mu,
                      const transducer::Transducer& t, const Str& o) {
  return ReachDp(mu, t, o, MatchMode::kExact);
}

bool HasAnyAnswer(const markov::MarkovSequence& mu,
                  const transducer::Transducer& t) {
  return ReachDp(mu, t, {}, MatchMode::kPrefix);
}

bool HasAnswerWithPrefix(const markov::MarkovSequence& mu,
                         const transducer::Transducer& t, const Str& prefix) {
  return ReachDp(mu, t, prefix, MatchMode::kPrefix);
}

}  // namespace tms::query
