#include "query/unranked_enum.h"

#include "common/check.h"
#include "exec/fault.h"
#include "obs/obs.h"
#include "optimize/transducer_opt.h"
#include "query/membership.h"

namespace tms::query {

UnrankedEnumerator::UnrankedEnumerator(const markov::MarkovSequence& mu,
                                       const transducer::Transducer& t,
                                       const exec::EngineOptions& options)
    : mu_(&mu), t_(&t), run_(options.run), backend_(options.backend) {
  if (optimize::ShouldOptimize(options.optimize, t)) {
    // The prune preserves the transduction relation, so every oracle
    // verdict — and therefore the emitted stream — is unchanged; the
    // oracle just runs on fewer states.
    opt_t_ = std::make_shared<const transducer::Transducer>(
        optimize::PruneTransducer(t));
    t_ = opt_t_.get();
  }
  max_output_len_ = static_cast<size_t>(mu.length()) *
                    static_cast<size_t>(t_->MaxEmissionLength());
}

UnrankedEnumerator::UnrankedEnumerator(const markov::MarkovSequence& mu,
                                       const transducer::Transducer& t,
                                       exec::RunContext* run)
    : UnrankedEnumerator(mu, t, [run] {
        exec::EngineOptions options;
        options.run = run;
        return options;
      }()) {}

UnrankedEnumerator UnrankedEnumerator::WithOwnedInputs(
    markov::MarkovSequence mu, transducer::Transducer t,
    const exec::EngineOptions& options) {
  auto owned_mu =
      std::make_shared<const markov::MarkovSequence>(std::move(mu));
  auto owned_t = std::make_shared<const transducer::Transducer>(std::move(t));
  UnrankedEnumerator out(*owned_mu, *owned_t, options);
  out.owned_mu_ = std::move(owned_mu);
  out.owned_t_ = std::move(owned_t);
  return out;
}

bool UnrankedEnumerator::StopBeforeOracleCall() {
  if (TMS_FAULT_POINT("unranked.pre_oracle")) {
    if (run_ != nullptr) {
      run_->InjectFault("unranked.pre_oracle");
      return true;
    }
    // No context to report through: ignore the injected failure rather
    // than silently truncating an unbounded enumeration.
  }
  return run_ != nullptr && !run_->ChargeWork();
}

std::optional<ranking::ScoredAnswer> UnrankedEnumerator::Next() {
  obs::ScopeAdoption adopt(obs_ctx_);
  TMS_OBS_SPAN("query.unranked_enum.next");
  if (done_) return std::nullopt;
  // Answer boundary: once any limit fires the stream is over for good,
  // leaving an exact prefix of the unbounded enumeration.
  if (run_ != nullptr && !run_->BeforeAnswer()) return std::nullopt;
  const size_t delta = t_->output_alphabet().size();
  const int64_t calls_before = oracle_calls_;
  (void)calls_before;  // only read by instrumentation
  // Timed oracle wrappers: `query.unranked_enum.oracle_ns` is this
  // engine's solve phase in the explain report.
  auto has_answer = [&](const Str& p) {
#if TMS_OBS_ACTIVE
    const int64_t oracle_start_ns = obs::MonotonicNanos();
#endif
    bool r = HasAnswerWithPrefix(*mu_, *t_, p, backend_);
    TMS_OBS_HISTOGRAM("query.unranked_enum.oracle_ns",
                      obs::MonotonicNanos() - oracle_start_ns);
    return r;
  };
  auto is_possible = [&](const Str& p) {
#if TMS_OBS_ACTIVE
    const int64_t oracle_start_ns = obs::MonotonicNanos();
#endif
    bool r = IsPossibleAnswer(*mu_, *t_, p, backend_);
    TMS_OBS_HISTOGRAM("query.unranked_enum.oracle_ns",
                      obs::MonotonicNanos() - oracle_start_ns);
    return r;
  };
  // Counts the oracle calls made for this answer into the registry and
  // records the inter-answer delay on emission.
  auto emit = [&](const Str& answer) {
    TMS_OBS_COUNT("query.unranked_enum.oracle_calls",
                  oracle_calls_ - calls_before);
    TMS_OBS_COUNT("query.unranked_enum.answers", 1);
    TMS_OBS_HISTOGRAM("query.unranked_enum.delay_oracle_calls",
                      oracle_calls_ - calls_before);
    if (run_ != nullptr) run_->CountAnswer();
    delay_.RecordAnswer();
    return ranking::ScoredAnswer{answer, 0.0};
  };

  if (!started_) {
    started_ = true;
    if (StopBeforeOracleCall()) return std::nullopt;
    ++oracle_calls_;
    if (!has_answer(prefix_)) {
      done_ = true;
      TMS_OBS_COUNT("query.unranked_enum.oracle_calls",
                    oracle_calls_ - calls_before);
      return std::nullopt;
    }
    next_symbol_.push_back(0);
    if (StopBeforeOracleCall()) return std::nullopt;
    ++oracle_calls_;
    if (is_possible(prefix_)) return emit(prefix_);
  }

  // Resume the DFS: extend the current prefix (or backtrack) until the
  // next answer node is entered.
  while (!next_symbol_.empty()) {
    bool descended = false;
    if (prefix_.size() < max_output_len_) {
      for (Symbol d = next_symbol_.back();
           static_cast<size_t>(d) < delta; ++d) {
        prefix_.push_back(d);
        if (StopBeforeOracleCall()) return std::nullopt;
        ++oracle_calls_;
        if (has_answer(prefix_)) {
          next_symbol_.back() = d + 1;
          next_symbol_.push_back(0);
          descended = true;
          break;
        }
        prefix_.pop_back();
      }
    }
    if (descended) {
      if (StopBeforeOracleCall()) return std::nullopt;
      ++oracle_calls_;
      if (is_possible(prefix_)) return emit(prefix_);
      continue;
    }
    // Subtree exhausted: backtrack.
    next_symbol_.pop_back();
    if (!prefix_.empty()) prefix_.pop_back();
  }
  done_ = true;
  TMS_OBS_COUNT("query.unranked_enum.oracle_calls",
                oracle_calls_ - calls_before);
  return std::nullopt;
}

std::vector<Str> AllAnswers(const markov::MarkovSequence& mu,
                            const transducer::Transducer& t) {
  UnrankedEnumerator it(mu, t);
  std::vector<Str> out;
  while (auto answer = it.Next()) out.push_back(std::move(answer->output));
  return out;
}

}  // namespace tms::query
