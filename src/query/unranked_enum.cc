#include "query/unranked_enum.h"

#include "common/check.h"
#include "query/membership.h"

namespace tms::query {

UnrankedEnumerator::UnrankedEnumerator(const markov::MarkovSequence& mu,
                                       const transducer::Transducer& t)
    : mu_(mu), t_(t) {
  max_output_len_ = static_cast<size_t>(mu.length()) *
                    static_cast<size_t>(t.MaxEmissionLength());
}

std::optional<Str> UnrankedEnumerator::Next() {
  if (done_) return std::nullopt;
  const size_t delta = t_.output_alphabet().size();

  if (!started_) {
    started_ = true;
    ++oracle_calls_;
    if (!HasAnswerWithPrefix(mu_, t_, prefix_)) {
      done_ = true;
      return std::nullopt;
    }
    next_symbol_.push_back(0);
    ++oracle_calls_;
    if (IsPossibleAnswer(mu_, t_, prefix_)) return prefix_;
  }

  // Resume the DFS: extend the current prefix (or backtrack) until the
  // next answer node is entered.
  while (!next_symbol_.empty()) {
    bool descended = false;
    if (prefix_.size() < max_output_len_) {
      for (Symbol d = next_symbol_.back();
           static_cast<size_t>(d) < delta; ++d) {
        prefix_.push_back(d);
        ++oracle_calls_;
        if (HasAnswerWithPrefix(mu_, t_, prefix_)) {
          next_symbol_.back() = d + 1;
          next_symbol_.push_back(0);
          descended = true;
          break;
        }
        prefix_.pop_back();
      }
    }
    if (descended) {
      ++oracle_calls_;
      if (IsPossibleAnswer(mu_, t_, prefix_)) return prefix_;
      continue;
    }
    // Subtree exhausted: backtrack.
    next_symbol_.pop_back();
    if (!prefix_.empty()) prefix_.pop_back();
  }
  done_ = true;
  return std::nullopt;
}

std::vector<Str> AllAnswers(const markov::MarkovSequence& mu,
                            const transducer::Transducer& t) {
  UnrankedEnumerator it(mu, t);
  std::vector<Str> out;
  while (auto answer = it.Next()) out.push_back(std::move(*answer));
  return out;
}

}  // namespace tms::query
