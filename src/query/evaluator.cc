#include "query/evaluator.h"

#include "obs/obs.h"
#include "query/confidence.h"
#include "query/emax.h"
#include "query/engine_factory.h"

namespace tms::query {

StatusOr<Evaluator> Evaluator::Create(const markov::MarkovSequence* mu,
                                      const transducer::Transducer* t) {
  if (mu == nullptr || t == nullptr) {
    return Status::InvalidArgument("Evaluator requires non-null mu and t");
  }
  if (!(mu->nodes() == t->input_alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and transducer input alphabet differ");
  }
  TMS_RETURN_IF_ERROR(t->Validate());
  return Evaluator(mu, t);
}

StatusOr<std::vector<AnswerInfo>> Evaluator::TopK(int k,
                                                  bool with_confidence) const {
  TMS_OBS_SPAN("query.evaluator.topk");
  std::vector<AnswerInfo> out;
  auto it = MakeEnumerator(EnumeratorKind::kEmax, *mu_, *t_, execution_);
  if (!it.ok()) return it.status();
  // End-to-end per-answer delay, including the confidence computation —
  // what a top-k client actually waits between answers.
  obs::DelayRecorder delay("query.topk");
  for (int i = 0; i < k; ++i) {
    auto answer = (*it)->Next();
    if (!answer.has_value()) break;
    AnswerInfo info;
    info.output = std::move(answer->output);
    info.emax = answer->score;
    if (with_confidence) {
#if TMS_OBS_ACTIVE
      const int64_t conf_start_ns = obs::MonotonicNanos();
#endif
      auto conf =
          query::Confidence(*mu_, *t_, info.output, execution_.backend);
      if (!conf.ok()) return conf.status();
      info.confidence = *conf;
      TMS_OBS_COUNT("query.topk.confidence_calls", 1);
      TMS_OBS_HISTOGRAM("query.topk.confidence_ns",
                        obs::MonotonicNanos() - conf_start_ns);
    }
    TMS_OBS_COUNT("query.topk.answers", 1);
    delay.RecordAnswer();
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<std::vector<AnswerInfo>> Evaluator::EvaluateTwoStep(
    bool with_confidence) const {
  TMS_OBS_SPAN("query.evaluator.two_step");
  std::vector<AnswerInfo> out;
  auto it = MakeEnumerator(EnumeratorKind::kUnranked, *mu_, *t_, execution_);
  if (!it.ok()) return it.status();
  while (auto answer = (*it)->Next()) {
    AnswerInfo info;
    info.output = std::move(answer->output);
    if (with_confidence) {
      auto conf =
          query::Confidence(*mu_, *t_, info.output, execution_.backend);
      if (!conf.ok()) return conf.status();
      info.confidence = *conf;
      TMS_OBS_COUNT("query.twostep.confidence_calls", 1);
    }
    TMS_OBS_COUNT("query.twostep.answers", 1);
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<double> Evaluator::Confidence(const Str& o) const {
  return query::Confidence(*mu_, *t_, o, execution_.backend);
}

std::optional<double> Evaluator::Emax(const Str& o) const {
  auto ev = EmaxOfAnswer(*mu_, *t_, o);
  if (!ev.has_value()) return std::nullopt;
  return ev->prob;
}

}  // namespace tms::query
