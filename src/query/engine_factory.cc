#include "query/engine_factory.h"

#include <utility>

#include "projector/imax_enum.h"
#include "query/emax_enum.h"
#include "query/unranked_enum.h"

namespace tms::query {
namespace {

Status ValidatePair(const markov::MarkovSequence& mu,
                    const transducer::Transducer& t) {
  if (!(mu.nodes() == t.input_alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and transducer input alphabet differ");
  }
  return t.Validate();
}

}  // namespace

const char* EnumeratorKindName(EnumeratorKind kind) {
  switch (kind) {
    case EnumeratorKind::kEmax:
      return "emax";
    case EnumeratorKind::kUnranked:
      return "unranked";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumerator(
    EnumeratorKind kind, const markov::MarkovSequence& mu,
    const transducer::Transducer& t, const exec::EngineOptions& options) {
  TMS_RETURN_IF_ERROR(ValidatePair(mu, t));
  switch (kind) {
    case EnumeratorKind::kEmax:
      return std::unique_ptr<ranking::AnswerStream>(
          std::make_unique<EmaxEnumerator>(mu, t, options));
    case EnumeratorKind::kUnranked:
      return std::unique_ptr<ranking::AnswerStream>(
          std::make_unique<UnrankedEnumerator>(mu, t, options));
  }
  return Status::InvalidArgument("unknown enumerator kind");
}

StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumeratorWithOwnedInputs(
    EnumeratorKind kind, markov::MarkovSequence mu, transducer::Transducer t,
    const exec::EngineOptions& options) {
  TMS_RETURN_IF_ERROR(ValidatePair(mu, t));
  switch (kind) {
    case EnumeratorKind::kEmax:
      return std::unique_ptr<ranking::AnswerStream>(
          std::make_unique<EmaxEnumerator>(EmaxEnumerator::WithOwnedInputs(
              std::move(mu), std::move(t), options)));
    case EnumeratorKind::kUnranked:
      return std::unique_ptr<ranking::AnswerStream>(
          std::make_unique<UnrankedEnumerator>(
              UnrankedEnumerator::WithOwnedInputs(std::move(mu), std::move(t),
                                                  options)));
  }
  return Status::InvalidArgument("unknown enumerator kind");
}

StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumerator(
    const markov::MarkovSequence& mu, const projector::SProjector& p,
    const exec::EngineOptions& options) {
  auto it = projector::ImaxEnumerator::Create(&mu, &p, options);
  if (!it.ok()) return it.status();
  return std::unique_ptr<ranking::AnswerStream>(
      std::make_unique<projector::ImaxEnumerator>(std::move(it).value()));
}

StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumeratorWithOwnedInputs(
    markov::MarkovSequence mu, projector::SProjector p,
    const exec::EngineOptions& options) {
  auto it = projector::ImaxEnumerator::WithOwnedInputs(std::move(mu),
                                                       std::move(p), options);
  if (!it.ok()) return it.status();
  return std::unique_ptr<ranking::AnswerStream>(
      std::make_unique<projector::ImaxEnumerator>(std::move(it).value()));
}

}  // namespace tms::query
