// Ranked enumeration by decreasing E_max — Theorem 4.3.
//
// Lawler–Murty over output-prefix constraints: each subspace is solved by
// composing the transducer with the constraint DFA
// (transducer/compose.h) and running the Viterbi of query/emax.h on the
// composed machine. Emits answers in exactly nonincreasing E_max with
// polynomial delay; as an ordering by *confidence* this is a
// |Σ|^n-approximation (the paper shows no sub-exponential ratio is
// tractable, Theorem 4.4 — so this heuristic is worst-case optimal).

#ifndef TMS_QUERY_EMAX_ENUM_H_
#define TMS_QUERY_EMAX_ENUM_H_

#include <optional>

#include "markov/markov_sequence.h"
#include "obs/delay.h"
#include "ranking/lawler.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Streams A^ω(μ) in nonincreasing E_max. The Markov sequence and the
/// transducer must outlive the enumerator.
class EmaxEnumerator {
 public:
  EmaxEnumerator(const markov::MarkovSequence& mu,
                 const transducer::Transducer& t);

  /// The next answer (score = its E_max), or nullopt when exhausted.
  std::optional<ranking::ScoredAnswer> Next();

 private:
  ranking::LawlerEnumerator lawler_;
  obs::DelayRecorder delay_{"query.emax_enum"};
};

/// Convenience: the k answers with the highest E_max.
std::vector<ranking::ScoredAnswer> TopKByEmax(
    const markov::MarkovSequence& mu, const transducer::Transducer& t, int k);

}  // namespace tms::query

#endif  // TMS_QUERY_EMAX_ENUM_H_
