// Ranked enumeration by decreasing E_max — Theorem 4.3.
//
// Lawler–Murty over output-prefix constraints: each subspace is solved by
// composing the transducer with the constraint DFA (memoized by
// transducer/composition_cache.h) and running the Viterbi of query/emax.h
// on the composed machine. Emits answers in exactly nonincreasing E_max
// with polynomial delay; as an ordering by *confidence* this is a
// |Σ|^n-approximation (the paper shows no sub-exponential ratio is
// tractable, Theorem 4.4 — so this heuristic is worst-case optimal).

#ifndef TMS_QUERY_EMAX_ENUM_H_
#define TMS_QUERY_EMAX_ENUM_H_

#include <memory>
#include <optional>
#include <utility>

#include "exec/engine_options.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "markov/markov_sequence.h"
#include "obs/delay.h"
#include "obs/query_scope.h"
#include "ranking/answer_stream.h"
#include "ranking/lawler.h"
#include "transducer/composition_cache.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Streams A^ω(μ) in nonincreasing E_max.
///
/// The subspace-solver state (inputs, precomputed E_max tensors, the
/// composition cache) lives in a shared block captured by value, so the
/// enumerator can be moved freely and — via WithOwnedInputs — can outlive
/// the arguments it was built from. The solver only reads immutable state
/// and the thread-safe cache, so child subspaces may be solved in parallel
/// (Options::pool) with output byte-identical to the sequential engine.
class EmaxEnumerator : public ranking::AnswerStream {
 public:
  /// Deprecated alias — EmaxEnumerator::Options *was* a bespoke struct
  /// with fields {pool, cache, run}; exec::EngineOptions keeps that field
  /// order (plus `backend`), so existing aggregate initializers compile
  /// unchanged. New code should spell it exec::EngineOptions.
  using Options = exec::EngineOptions;

  /// Borrows `mu` and `t`: both must outlive the enumerator. (Use
  /// WithOwnedInputs when that is hard to guarantee.)
  EmaxEnumerator(const markov::MarkovSequence& mu,
                 const transducer::Transducer& t, Options options);
  EmaxEnumerator(const markov::MarkovSequence& mu,
                 const transducer::Transducer& t)
      : EmaxEnumerator(mu, t, Options()) {}

  /// Takes ownership of copies of the inputs — safe even when the caller's
  /// originals are temporaries or die before the enumerator does.
  static EmaxEnumerator WithOwnedInputs(markov::MarkovSequence mu,
                                        transducer::Transducer t,
                                        Options options);
  static EmaxEnumerator WithOwnedInputs(markov::MarkovSequence mu,
                                        transducer::Transducer t) {
    return WithOwnedInputs(std::move(mu), std::move(t), Options());
  }

  /// The next answer (score = its E_max), or nullopt when exhausted.
  std::optional<ranking::ScoredAnswer> Next() override;

 private:
  struct State;
  EmaxEnumerator(std::shared_ptr<State> state, const Options& options);

  std::shared_ptr<State> state_;
  std::unique_ptr<ranking::LawlerEnumerator> lawler_;
  obs::TraceContext obs_ctx_{obs::CurrentTraceContext()};
  obs::DelayRecorder delay_{"query.emax_enum"};
};

/// Convenience: the k answers with the highest E_max.
std::vector<ranking::ScoredAnswer> TopKByEmax(
    const markov::MarkovSequence& mu, const transducer::Transducer& t, int k);

}  // namespace tms::query

#endif  // TMS_QUERY_EMAX_ENUM_H_
