#include "query/top_confidence.h"

#include <limits>

#include "query/confidence.h"
#include "query/emax_enum.h"

namespace tms::query {

StatusOr<TopConfidenceResult> TopAnswerByConfidence(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    int64_t max_candidates) {
  if (!(mu.nodes() == t.input_alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and transducer input alphabet differ");
  }
  // W = |support(μ)|, saturated into double space; conf(o) ≤ W · E_max(o).
  double support = mu.CountSupportWorlds().ToDouble();
  if (!(support > 0)) {
    support = std::numeric_limits<double>::infinity();
  }

  EmaxEnumerator stream(mu, t);
  TopConfidenceResult result;
  bool any = false;
  while (true) {
    if (max_candidates > 0 && result.answers_explored >= max_candidates) {
      break;  // budget exhausted; result is best-so-far, uncertified
    }
    auto answer = stream.Next();
    if (!answer.has_value()) {
      // Stream exhausted: best-so-far is the true optimum.
      result.certified_optimal = any;
      break;
    }
    ++result.answers_explored;
    any = true;
    auto conf = Confidence(mu, t, answer->output);
    if (!conf.ok()) return conf.status();
    if (*conf > result.confidence) {
      result.confidence = *conf;
      result.output = std::move(answer->output);
    }
    // Every remaining answer o' has E_max(o') ≤ answer->score, hence
    // conf(o') ≤ W · answer->score.
    if (result.confidence >= support * answer->score) {
      result.certified_optimal = true;
      break;
    }
  }
  if (!any) {
    return Status::NotFound("the transducer has no answers on this sequence");
  }
  return result;
}

}  // namespace tms::query
