// Confidence computation — Pr(S →[A^ω]→ o) (paper §4.3).
//
// Three polynomial algorithms, matching the paper's upper bounds:
//
//  * ConfidenceDeterministic       Theorem 4.6, O(|o|·n·|Σ|²·|Q|²):
//      forward DP over (node, state, matched-output-length); valid for any
//      deterministic transducer (each world has a unique run, so
//      aggregating world mass by DP cell cannot double count).
//  * ConfidenceDeterministicUniform Theorem 4.6 fast path,
//      O(k·n·|Σ|²·|Q|²): with k-uniform emission the matched length is
//      forced to k·i, so the output dimension disappears.
//  * ConfidenceUniformSubset       Theorem 4.8, O(n·k·|Σ|²·4^{|Q|}):
//      nondeterministic but k-uniform; DP over (node, set-of-states), the
//      set being all states reachable by runs that emitted exactly the
//      right output prefix — a subset construction interleaved with the
//      probability DP. A world counts iff its final set meets F.
//
// For nondeterministic non-uniform transducers confidence is
// FP^{#P}-complete (Prop. 4.7 / Thm 4.9); see confidence_exact.h for the
// exact exponential algorithm, and Confidence() below for the dispatching
// facade.
//
// Exact-rational variants (ground truth for tests; require
// mu.has_exact()) are provided alongside the double versions.

#ifndef TMS_QUERY_CONFIDENCE_H_
#define TMS_QUERY_CONFIDENCE_H_

#include "common/status.h"
#include "kernels/backend.h"
#include "markov/markov_sequence.h"
#include "numeric/rational.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Theorem 4.6: confidence for a deterministic transducer.
/// Fails if t is not deterministic. `backend` selects the kernel path of
/// the dense double DP (kernels/backend.h); the sparse path skips only
/// exact zeros of a nonnegative sum in the same order, so the result is
/// bitwise identical on either backend.
StatusOr<double> ConfidenceDeterministic(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o,
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto);

/// Exact-rational version of ConfidenceDeterministic.
StatusOr<numeric::Rational> ConfidenceDeterministicExact(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o);

/// Theorem 4.6 (fast path): confidence for a deterministic transducer with
/// k-uniform emission. Fails if t is not deterministic or not uniform.
StatusOr<double> ConfidenceDeterministicUniform(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o);

/// Theorem 4.8: confidence for a (possibly nondeterministic) transducer
/// with k-uniform emission, via subset construction. Fails if t is not
/// uniform or has more than 63 states (state sets are bitmasks).
StatusOr<double> ConfidenceUniformSubset(const markov::MarkovSequence& mu,
                                         const transducer::Transducer& t,
                                         const Str& o);

/// Exact-rational version of ConfidenceUniformSubset.
StatusOr<numeric::Rational> ConfidenceUniformSubsetExact(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o);

/// Dispatching facade: picks the best applicable algorithm —
/// deterministic → Theorem 4.6 (uniform fast path when possible),
/// nondeterministic uniform → Theorem 4.8, otherwise the exact exponential
/// algorithm of confidence_exact.h. `backend` reaches whichever algorithm
/// has a kernel path (currently the non-uniform deterministic DP); the
/// others ignore it.
StatusOr<double> Confidence(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o,
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto);

}  // namespace tms::query

#endif  // TMS_QUERY_CONFIDENCE_H_
