#include "query/emax_enum.h"

#include <utility>

#include "common/stopwatch.h"
#include "obs/obs.h"
#include "optimize/transducer_opt.h"
#include "query/emax.h"

namespace tms::query {

// Everything the subspace solver touches. The solver lambda holds this via
// shared_ptr, so it stays valid however the enumerator is moved; with
// owned inputs it also pins the Markov sequence and transducer themselves
// (the pre-State solver captured the constructor arguments by reference
// and dangled as soon as a caller passed temporaries).
struct EmaxEnumerator::State {
  // Set only by WithOwnedInputs; `mu` / `t` point here in that case.
  std::optional<markov::MarkovSequence> owned_mu;
  std::optional<transducer::Transducer> owned_t;

  const markov::MarkovSequence* mu = nullptr;
  const transducer::Transducer* t = nullptr;

  // Built after mu/t are fixed (Init).
  std::optional<EmaxContext> ctx;
  std::optional<transducer::CompositionCache> owned_cache;
  transducer::CompositionCache* cache = nullptr;
  bool optimized = false;

  void Init(const Options& options) {
    ctx.emplace(*mu, options.backend);
    optimized = optimize::ShouldOptimize(options.optimize, *t);
    if (options.cache != nullptr) {
      cache = options.cache;
    } else {
      owned_cache.emplace(t);
      cache = &*owned_cache;
    }
  }
};

EmaxEnumerator::EmaxEnumerator(std::shared_ptr<State> state,
                               const Options& options)
    : state_(std::move(state)) {
  std::shared_ptr<State> s = state_;
  lawler_ = std::make_unique<ranking::LawlerEnumerator>(
      [s](const ranking::OutputConstraint& c)
          -> std::optional<ranking::ScoredAnswer> {
        TMS_OBS_SPAN("query.emax_enum.subspace_solve");
        Stopwatch sw;
        std::shared_ptr<const transducer::Transducer> composed =
            s->cache->Compose(c, s->optimized);
        TMS_OBS_HISTOGRAM("query.emax_enum.compose_ns", sw.Lap());
        TMS_OBS_HISTOGRAM("query.emax_enum.composed_states",
                          composed->num_states());
        auto best = s->ctx->TopAnswer(*composed);
        TMS_OBS_HISTOGRAM("query.emax_enum.solve_ns", sw.Lap());
        if (!best.has_value()) return std::nullopt;
        return ranking::ScoredAnswer{std::move(best->output), best->prob};
      },
      options.pool, options.run);
}

EmaxEnumerator::EmaxEnumerator(const markov::MarkovSequence& mu,
                               const transducer::Transducer& t,
                               Options options)
    : EmaxEnumerator(
          [&mu, &t, &options] {
            auto state = std::make_shared<State>();
            state->mu = &mu;
            state->t = &t;
            state->Init(options);
            return state;
          }(),
          options) {}

EmaxEnumerator EmaxEnumerator::WithOwnedInputs(markov::MarkovSequence mu,
                                               transducer::Transducer t,
                                               Options options) {
  auto state = std::make_shared<State>();
  state->owned_mu.emplace(std::move(mu));
  state->owned_t.emplace(std::move(t));
  state->mu = &*state->owned_mu;
  state->t = &*state->owned_t;
  state->Init(options);
  return EmaxEnumerator(std::move(state), options);
}

std::optional<ranking::ScoredAnswer> EmaxEnumerator::Next() {
  obs::ScopeAdoption adopt(obs_ctx_);
  auto answer = lawler_->Next();
  if (answer.has_value()) {
    TMS_OBS_COUNT("query.emax_enum.answers", 1);
    delay_.RecordAnswer();
  }
  return answer;
}

std::vector<ranking::ScoredAnswer> TopKByEmax(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    int k) {
  EmaxEnumerator it(mu, t);
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < k; ++i) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

}  // namespace tms::query
