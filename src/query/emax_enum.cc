#include "query/emax_enum.h"

#include "obs/obs.h"
#include "query/emax.h"
#include "transducer/compose.h"

namespace tms::query {

EmaxEnumerator::EmaxEnumerator(const markov::MarkovSequence& mu,
                               const transducer::Transducer& t)
    : lawler_([&mu, &t](const ranking::OutputConstraint& c)
                  -> std::optional<ranking::ScoredAnswer> {
        TMS_OBS_SPAN("query.emax_enum.subspace_solve");
        transducer::Transducer composed =
            transducer::ComposeWithOutputConstraint(t, c);
        TMS_OBS_HISTOGRAM("query.emax_enum.composed_states",
                          composed.num_states());
        auto best = TopAnswerByEmax(mu, composed);
        if (!best.has_value()) return std::nullopt;
        return ranking::ScoredAnswer{std::move(best->output), best->prob};
      }) {}

std::optional<ranking::ScoredAnswer> EmaxEnumerator::Next() {
  auto answer = lawler_.Next();
  if (answer.has_value()) {
    TMS_OBS_COUNT("query.emax_enum.answers", 1);
    delay_.RecordAnswer();
  }
  return answer;
}

std::vector<ranking::ScoredAnswer> TopKByEmax(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    int k) {
  EmaxEnumerator it(mu, t);
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < k; ++i) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

}  // namespace tms::query
