#include "query/confidence_exact.h"

#include <algorithm>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "kernels/sparse.h"

namespace tms::query {
namespace {

// A pair-set is a sorted vector of packed (state, j) pairs.
using PairSet = std::vector<uint32_t>;

struct PairSetHash {
  size_t operator()(const PairSet& v) const {
    size_t h = 1469598103934665603ULL;
    for (uint32_t x : v) {
      h ^= x + 0x9e3779b97f4a7c15ULL;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

struct DoubleProb {
  using Value = double;
  static Value Zero() { return 0.0; }
  static bool IsZero(const Value& v) { return v == 0.0; }
  static Value Initial(const markov::MarkovSequence& mu, Symbol s) {
    return mu.Initial(s);
  }
  static Value Transition(const markov::MarkovSequence& mu, int i, Symbol s,
                          Symbol t) {
    return mu.Transition(i, s, t);
  }
};

struct RationalProb {
  using Value = numeric::Rational;
  static Value Zero() { return numeric::Rational(); }
  static bool IsZero(const Value& v) { return v.IsZero(); }
  static Value Initial(const markov::MarkovSequence& mu, Symbol s) {
    return mu.InitialExact(s);
  }
  static Value Transition(const markov::MarkovSequence& mu, int i, Symbol s,
                          Symbol t) {
    return mu.TransitionExact(i, s, t);
  }
};

int AdvanceExact(const Str& o, int j, const Str& w) {
  for (Symbol c : w) {
    if (j >= static_cast<int>(o.size()) || o[static_cast<size_t>(j)] != c) {
      return -1;
    }
    ++j;
  }
  return j;
}

template <typename P>
StatusOr<typename P::Value> ExactImpl(const markov::MarkovSequence& mu,
                                      const transducer::Transducer& t,
                                      const Str& o,
                                      ExactConfidenceStats* stats,
                                      int64_t max_layer_width) {
  if (!(mu.nodes() == t.input_alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and transducer input alphabet differ");
  }
  using Value = typename P::Value;
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const uint32_t jdim = static_cast<uint32_t>(o.size()) + 1;
  auto pack = [jdim](automata::StateId q, int j) {
    return static_cast<uint32_t>(q) * jdim + static_cast<uint32_t>(j);
  };

  ExactConfidenceStats local_stats;

  auto canonicalize = [](PairSet* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };

  // Successor pair-sets of each single (q, j) on each input symbol,
  // tabulated once: the edge walk and AdvanceExact depend only on
  // (packed, s2), not on the DP layer, so the per-layer loop below
  // reduces to concatenating precomputed vectors (the canonicalize pass
  // makes the result set identical to walking edges in place).
  const size_t npacked = static_cast<size_t>(t.num_states()) * jdim;
  std::vector<PairSet> succ(npacked * sigma);
  for (size_t packed = 0; packed < npacked; ++packed) {
    automata::StateId q =
        static_cast<automata::StateId>(packed / jdim);
    int j = static_cast<int>(packed % jdim);
    for (size_t s2 = 0; s2 < sigma; ++s2) {
      PairSet& out = succ[packed * sigma + s2];
      for (const transducer::Edge& e :
           t.Next(q, static_cast<Symbol>(s2))) {
        int j2 = AdvanceExact(o, j, e.output);
        if (j2 >= 0) out.push_back(pack(e.target, j2));
      }
    }
  }
  auto step_pair = [&](uint32_t packed, Symbol s2, PairSet* out) {
    const PairSet& pre =
        succ[static_cast<size_t>(packed) * sigma + static_cast<size_t>(s2)];
    out->insert(out->end(), pre.begin(), pre.end());
  };

  // cur[s] : pair-set -> probability mass.
  std::vector<std::unordered_map<PairSet, Value, PairSetHash>> cur(sigma);
  for (size_t s = 0; s < sigma; ++s) {
    Value p0 = P::Initial(mu, static_cast<Symbol>(s));
    if (P::IsZero(p0)) continue;
    PairSet set;
    step_pair(pack(t.initial(), 0), static_cast<Symbol>(s), &set);
    canonicalize(&set);
    if (!set.empty()) cur[s][std::move(set)] += p0;
  }

  auto account_layer = [&](const auto& layer) -> Status {
    int64_t width = 0;
    for (const auto& by_node : layer) {
      width += static_cast<int64_t>(by_node.size());
    }
    local_stats.max_layer_width =
        std::max(local_stats.max_layer_width, width);
    local_stats.total_entries += width;
    if (max_layer_width > 0 && width > max_layer_width) {
      return Status::OutOfRange(
          "ConfidenceExact exceeded the layer-width budget (" +
          std::to_string(width) + " > " + std::to_string(max_layer_width) +
          "); the instance exhibits the FP^#P blowup");
    }
    return Status::Ok();
  };
  TMS_RETURN_IF_ERROR(account_layer(cur));

  // Per-(layer, source-node) nonzero successor rows, hoisted out of the
  // pair-set loop: the transition row depends only on (i, s), never on the
  // DP set, so it is gathered once per layer instead of probed per live
  // set × σ. For doubles the CSR row of the step (when present) *is* the
  // nonzero pattern; Rational keeps a scalar scan because its support must
  // come from the exact values themselves.
  std::vector<std::pair<size_t, Value>> successors;
  for (int i = 2; i <= n; ++i) {
    std::vector<std::unordered_map<PairSet, Value, PairSetHash>> next(sigma);
    for (size_t s = 0; s < sigma; ++s) {
      if (cur[s].empty()) continue;
      successors.clear();
      if constexpr (std::is_same_v<P, DoubleProb>) {
        kernels::MatrixRef view = mu.TransitionView(i - 1);
        if (view.has_sparse) {
          for (int32_t e = view.csr.row_off[s]; e < view.csr.row_off[s + 1];
               ++e) {
            successors.emplace_back(
                static_cast<size_t>(view.csr.col_idx[e]),
                view.csr.val[e]);
          }
        } else {
          const double* row = view.dense.row(s);
          for (size_t s2 = 0; s2 < sigma; ++s2) {
            if (row[s2] > 0.0) successors.emplace_back(s2, row[s2]);
          }
        }
      } else {
        for (size_t s2 = 0; s2 < sigma; ++s2) {
          Value step = P::Transition(mu, i - 1, static_cast<Symbol>(s),
                                     static_cast<Symbol>(s2));
          if (!P::IsZero(step)) successors.emplace_back(s2, std::move(step));
        }
      }
      for (const auto& [set, mass] : cur[s]) {
        for (const auto& [s2, step] : successors) {
          PairSet set2;
          for (uint32_t packed : set) {
            step_pair(packed, static_cast<Symbol>(s2), &set2);
          }
          canonicalize(&set2);
          if (set2.empty()) continue;
          next[s2][std::move(set2)] += mass * step;
        }
      }
    }
    cur = std::move(next);
    TMS_RETURN_IF_ERROR(account_layer(cur));
  }

  Value total = P::Zero();
  const uint32_t jfinal = static_cast<uint32_t>(o.size());
  for (size_t s = 0; s < sigma; ++s) {
    for (const auto& [set, mass] : cur[s]) {
      bool accepted = false;
      for (uint32_t packed : set) {
        if (packed % jdim == jfinal &&
            t.IsAccepting(static_cast<automata::StateId>(packed / jdim))) {
          accepted = true;
          break;
        }
      }
      if (accepted) total += mass;
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return total;
}

}  // namespace

StatusOr<double> ConfidenceExact(const markov::MarkovSequence& mu,
                                 const transducer::Transducer& t, const Str& o,
                                 ExactConfidenceStats* stats,
                                 int64_t max_layer_width) {
  return ExactImpl<DoubleProb>(mu, t, o, stats, max_layer_width);
}

StatusOr<numeric::Rational> ConfidenceExactRational(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o, ExactConfidenceStats* stats, int64_t max_layer_width) {
  if (!mu.has_exact()) {
    return Status::FailedPrecondition(
        "exact confidence requires exact probabilities on the Markov "
        "sequence");
  }
  return ExactImpl<RationalProb>(mu, t, o, stats, max_layer_width);
}

}  // namespace tms::query
