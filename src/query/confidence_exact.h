// Exact confidence for arbitrary transducers (the FP^{#P}-hard case).
//
// For nondeterministic transducers with non-uniform emission, computing
// Pr(S →[A^ω]→ o) is FP^{#P}-complete (Prop. 4.7, Thm 4.9), so no
// polynomial algorithm is expected. This module implements the principled
// exact algorithm: a *generalized subset construction* whose DP state is
// the set of (transducer state, matched-output-position) pairs reachable
// by runs that have emitted exactly a prefix of o. That set is a
// deterministic function of the world prefix, so aggregating probability
// mass per (last node, pair-set) never double counts, and a world
// contributes iff its final pair-set contains an accepting state paired
// with position |o|.
//
// The running time is polynomial in the number of *distinct reachable
// pair-sets* — at most 2^{|Q|·(|o|+1)} (the hardness manifests as blowup on
// adversarial instances such as the Theorem 4.9 reduction family) but
// frequently small on benign inputs. bench_confidence_hardness measures
// exactly this blowup.

#ifndef TMS_QUERY_CONFIDENCE_EXACT_H_
#define TMS_QUERY_CONFIDENCE_EXACT_H_

#include <cstdint>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "numeric/rational.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Statistics of one ConfidenceExact run (exposed for the hardness bench).
struct ExactConfidenceStats {
  /// The largest number of distinct (node, pair-set) DP entries over all
  /// layers — the effective width of the generalized subset construction.
  int64_t max_layer_width = 0;
  /// Total DP entries processed.
  int64_t total_entries = 0;
};

/// Exact confidence for any transducer. `max_layer_width`, when positive,
/// aborts with an OutOfRange error once a layer exceeds that many DP
/// entries (a resource guard for adversarial instances).
StatusOr<double> ConfidenceExact(const markov::MarkovSequence& mu,
                                 const transducer::Transducer& t, const Str& o,
                                 ExactConfidenceStats* stats = nullptr,
                                 int64_t max_layer_width = 0);

/// Exact-rational version; requires mu.has_exact().
StatusOr<numeric::Rational> ConfidenceExactRational(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o, ExactConfidenceStats* stats = nullptr,
    int64_t max_layer_width = 0);

}  // namespace tms::query

#endif  // TMS_QUERY_CONFIDENCE_EXACT_H_
