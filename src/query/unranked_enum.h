// Unranked enumeration of A^ω(μ) — Theorem 4.1.
//
// Enumerates every answer (string with nonzero probability of being
// transduced) with polynomial delay and polynomial space, ignoring
// confidence. The algorithm is the paper's constraint-partitioning
// technique [34] instantiated with prefix constraints: a depth-first
// "flashlight" search over the output prefix tree that descends into a
// prefix w·d only after the oracle HasAnswerWithPrefix(w·d) certifies that
// some answer lies below — so every visited node leads to an unemitted
// answer, bounding the delay by O(L · |Δ|) oracle calls (L = maximum
// answer length ≤ n · max-emission). Answers appear in lexicographic
// order of output-symbol ids.

#ifndef TMS_QUERY_UNRANKED_ENUM_H_
#define TMS_QUERY_UNRANKED_ENUM_H_

#include <optional>
#include <vector>

#include "exec/run_context.h"
#include "markov/markov_sequence.h"
#include "obs/delay.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Streams A^ω(μ) with polynomial delay and polynomial space. The Markov
/// sequence and the transducer must outlive the enumerator.
///
/// With a RunContext (non-owning; null = unbounded) every emptiness-oracle
/// call charges one work unit and the DFS checks for cancellation and the
/// deadline between oracle calls, so a stop request is honored within one
/// oracle call — well inside the one-answer-delay truncation contract
/// (docs/ROBUSTNESS.md). A stopped run returns nullopt forever after; the
/// answers already emitted are an exact prefix of the unbounded stream.
class UnrankedEnumerator {
 public:
  UnrankedEnumerator(const markov::MarkovSequence& mu,
                     const transducer::Transducer& t,
                     exec::RunContext* run = nullptr);

  /// The next answer in lexicographic order, or nullopt when exhausted.
  std::optional<Str> Next();

  /// Number of emptiness-oracle calls made so far (delay instrumentation
  /// for the Theorem 4.1 bench).
  int64_t oracle_calls() const { return oracle_calls_; }

 private:
  // True (and latching the context's stop reason) when the run must stop;
  // also the home of the per-oracle-call budget charge.
  bool StopBeforeOracleCall();

  const markov::MarkovSequence& mu_;
  const transducer::Transducer& t_;
  exec::RunContext* run_;
  Str prefix_;
  // One frame per prefix level: the next output symbol to try there.
  std::vector<Symbol> next_symbol_;
  size_t max_output_len_;
  bool started_ = false;
  bool done_ = false;
  int64_t oracle_calls_ = 0;
  obs::DelayRecorder delay_{"query.unranked_enum"};
};

/// Convenience: materializes all answers (exponential in the worst case).
std::vector<Str> AllAnswers(const markov::MarkovSequence& mu,
                            const transducer::Transducer& t);

}  // namespace tms::query

#endif  // TMS_QUERY_UNRANKED_ENUM_H_
