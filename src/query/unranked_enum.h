// Unranked enumeration of A^ω(μ) — Theorem 4.1.
//
// Enumerates every answer (string with nonzero probability of being
// transduced) with polynomial delay and polynomial space, ignoring
// confidence. The algorithm is the paper's constraint-partitioning
// technique [34] instantiated with prefix constraints: a depth-first
// "flashlight" search over the output prefix tree that descends into a
// prefix w·d only after the oracle HasAnswerWithPrefix(w·d) certifies that
// some answer lies below — so every visited node leads to an unemitted
// answer, bounding the delay by O(L · |Δ|) oracle calls (L = maximum
// answer length ≤ n · max-emission). Answers appear in lexicographic
// order of output-symbol ids.

#ifndef TMS_QUERY_UNRANKED_ENUM_H_
#define TMS_QUERY_UNRANKED_ENUM_H_

#include <memory>
#include <optional>
#include <vector>

#include "exec/engine_options.h"
#include "exec/run_context.h"
#include "markov/markov_sequence.h"
#include "obs/delay.h"
#include "obs/query_scope.h"
#include "ranking/answer_stream.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Streams A^ω(μ) with polynomial delay and polynomial space. Scores are
/// 0.0 (this engine makes no ranking claim; see ranking/answer_stream.h).
/// Construction follows the uniform borrow-vs-own contract documented
/// there: the plain constructors borrow μ and the transducer,
/// WithOwnedInputs moves copies in.
///
/// Of EngineOptions this engine uses `run` and `backend`: with a
/// RunContext (non-owning; null = unbounded) every emptiness-oracle
/// call charges one work unit and the DFS checks for cancellation and the
/// deadline between oracle calls, so a stop request is honored within one
/// oracle call — well inside the one-answer-delay truncation contract
/// (docs/ROBUSTNESS.md). A stopped run returns nullopt forever after; the
/// answers already emitted are an exact prefix of the unbounded stream.
/// `backend` selects the kernel path of the membership oracle (identical
/// verdicts either way, see query/membership.h). `optimize` (at its
/// engine-policy discretion) swaps in the pruned transducer for every
/// oracle call — the prune preserves the transduction relation exactly,
/// so the lexicographic answer stream is identical; only oracle cost
/// changes (optimize/transducer_opt.h).
class UnrankedEnumerator : public ranking::AnswerStream {
 public:
  UnrankedEnumerator(const markov::MarkovSequence& mu,
                     const transducer::Transducer& t,
                     const exec::EngineOptions& options);

  /// Deprecated borrow spelling predating EngineOptions.
  UnrankedEnumerator(const markov::MarkovSequence& mu,
                     const transducer::Transducer& t,
                     exec::RunContext* run = nullptr);

  /// Takes ownership of copies of the inputs — safe even when the caller's
  /// originals are temporaries or die before the enumerator does.
  static UnrankedEnumerator WithOwnedInputs(
      markov::MarkovSequence mu, transducer::Transducer t,
      const exec::EngineOptions& options = {});

  /// The next answer in lexicographic order (score = 0.0), or nullopt
  /// when exhausted.
  std::optional<ranking::ScoredAnswer> Next() override;

  /// Number of emptiness-oracle calls made so far (delay instrumentation
  /// for the Theorem 4.1 bench).
  int64_t oracle_calls() const { return oracle_calls_; }

 private:
  // True (and latching the context's stop reason) when the run must stop;
  // also the home of the per-oracle-call budget charge.
  bool StopBeforeOracleCall();

  // Set only by WithOwnedInputs; mu_/t_ point into them then. shared_ptr
  // so moving the enumerator cannot relocate the pointees.
  std::shared_ptr<const markov::MarkovSequence> owned_mu_;
  std::shared_ptr<const transducer::Transducer> owned_t_;
  // The pruned copy when the optimize knob fires; t_ points here then
  // (kept separate from owned_t_ so WithOwnedInputs can pin the caller's
  // original without dropping the pruned machine).
  std::shared_ptr<const transducer::Transducer> opt_t_;
  const markov::MarkovSequence* mu_;
  const transducer::Transducer* t_;
  exec::RunContext* run_;
  kernels::BackendChoice backend_;
  Str prefix_;
  // One frame per prefix level: the next output symbol to try there.
  std::vector<Symbol> next_symbol_;
  size_t max_output_len_;
  bool started_ = false;
  bool done_ = false;
  int64_t oracle_calls_ = 0;
  obs::TraceContext obs_ctx_{obs::CurrentTraceContext()};
  obs::DelayRecorder delay_{"query.unranked_enum"};
};

/// Convenience: materializes all answers (exponential in the worst case).
std::vector<Str> AllAnswers(const markov::MarkovSequence& mu,
                            const transducer::Transducer& t);

}  // namespace tms::query

#endif  // TMS_QUERY_UNRANKED_ENUM_H_
