// The one place enumeration engines are constructed.
//
// Every ranked/unranked answer stream in the system — the E_max Lawler
// engine (Theorem 4.3), the unranked flashlight DFS (Theorem 4.1), and the
// s-projector I_max engine (Theorem 5.2) — is built here from a model, a
// query, and one exec::EngineOptions. Callers receive the uniform
// ranking::AnswerStream interface and never name a concrete engine class,
// so execution resources (pool / cache / run / backend) are threaded
// through one door and input validation returns Status instead of
// crashing.
//
// db::BatchEvaluator, query::Evaluator and tools/tms_cli all construct
// their enumerators through this factory.

#ifndef TMS_QUERY_ENGINE_FACTORY_H_
#define TMS_QUERY_ENGINE_FACTORY_H_

#include <memory>

#include "common/status.h"
#include "exec/engine_options.h"
#include "markov/markov_sequence.h"
#include "projector/sprojector.h"
#include "ranking/answer_stream.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Which enumeration engine to build for a (μ, transducer) pair.
enum class EnumeratorKind {
  kEmax,      ///< ranked by decreasing E_max (EmaxEnumerator)
  kUnranked,  ///< lexicographic, score 0.0 (UnrankedEnumerator)
};

/// Returns the engine's display name ("emax" / "unranked").
const char* EnumeratorKindName(EnumeratorKind kind);

/// Builds an answer stream over A^ω(μ). Borrows `mu` and `t` — both must
/// outlive the stream (see the borrow-vs-own contract in
/// ranking/answer_stream.h). Fails if the node set of `mu` differs from
/// the input alphabet of `t`, or `t` is invalid.
StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumerator(
    EnumeratorKind kind, const markov::MarkovSequence& mu,
    const transducer::Transducer& t, const exec::EngineOptions& options = {});

/// As MakeEnumerator, but the stream owns copies of the inputs — safe when
/// the caller's originals are temporaries.
StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumeratorWithOwnedInputs(
    EnumeratorKind kind, markov::MarkovSequence mu, transducer::Transducer t,
    const exec::EngineOptions& options = {});

/// Builds the I_max-ranked stream of an s-projector query (the
/// n-approximate confidence order of Theorem 5.2). Borrows `mu` and `p`.
/// Fails on alphabet mismatch.
StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumerator(
    const markov::MarkovSequence& mu, const projector::SProjector& p,
    const exec::EngineOptions& options = {});

/// As the s-projector MakeEnumerator, but owning copies of the inputs.
StatusOr<std::unique_ptr<ranking::AnswerStream>> MakeEnumeratorWithOwnedInputs(
    markov::MarkovSequence mu, projector::SProjector p,
    const exec::EngineOptions& options = {});

}  // namespace tms::query

#endif  // TMS_QUERY_ENGINE_FACTORY_H_
