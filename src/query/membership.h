// Possible-answer tests (reachability dynamic programs).
//
// The paper (§3.2) notes that "whether a string o ∈ Δ* is an answer (i.e.,
// has a nonzero probability) can be decided efficiently"; these DPs are
// that decision procedure, plus the primitives the Theorem 4.1 flashlight
// enumerator needs: nonemptiness (Pr(S ∈ L(A)) > 0) and the prefix test
// "does some answer extend w".

#ifndef TMS_QUERY_MEMBERSHIP_H_
#define TMS_QUERY_MEMBERSHIP_H_

#include "kernels/backend.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::query {

// All three tests run the same boolean reachability DP; `backend` selects
// its kernel path (kernels/backend.h). The DP is over the *support* of μ,
// which the CSR pattern represents exactly, so the answer is identical on
// either backend; sparse replaces the per-step O(|Σ|²) mask tabulation
// with O(nnz) work.

/// True iff Pr(S →[A^ω]→ o) > 0, i.e. o ∈ A^ω(μ).
/// Time O(n · |Σ|² · |Q|² · (|o|+1)) dense.
bool IsPossibleAnswer(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& o,
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto);

/// True iff A^ω(μ) ≠ ∅, i.e. Pr(S ∈ L(A)) > 0.
/// Time O(n · |Σ|² · |Q|²) dense.
bool HasAnyAnswer(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto);

/// True iff some answer o ∈ A^ω(μ) has `prefix` as a (not necessarily
/// proper) prefix. Time O(n · |Σ|² · |Q|² · (|prefix|+1)) dense.
bool HasAnswerWithPrefix(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    const Str& prefix,
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto);

}  // namespace tms::query

#endif  // TMS_QUERY_MEMBERSHIP_H_
