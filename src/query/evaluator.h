// Query-evaluation facade.
//
// Binds a Markov sequence and a transducer and exposes the paper's
// evaluation modes behind one interface:
//   * ranked evaluation by E_max (Theorem 4.3) with confidences attached,
//   * unranked enumeration (Theorem 4.1),
//   * the naive two-step strategy the paper argues against (§1, §3.2):
//     enumerate every answer, then compute each confidence — the baseline
//     bench_twostep_vs_ranked measures against ranked top-k.

#ifndef TMS_QUERY_EVALUATOR_H_
#define TMS_QUERY_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "exec/engine_options.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "markov/markov_sequence.h"
#include "transducer/composition_cache.h"
#include "transducer/transducer.h"

namespace tms::query {

/// One evaluated answer.
struct AnswerInfo {
  Str output;
  double emax = 0.0;        ///< best-evidence score (0 when not computed)
  double confidence = 0.0;  ///< Pr(S →[A^ω]→ o) (0 when not computed)
};

/// Facade over the §4 algorithms for one (μ, A^ω) pair.
class Evaluator {
 public:
  /// Optional execution resources, all non-owning (they must outlive the
  /// evaluator). `pool` parallelizes the subspace solves inside TopK;
  /// `cache` shares composed transducers across evaluators of the same
  /// transducer (db::BatchEvaluator passes one cache for a whole
  /// collection) and must be bound to the evaluator's `t`. `run` bounds
  /// TopK / EvaluateTwoStep (deadline, answer cap, work budget,
  /// cancellation): on truncation they return the partial result with an
  /// OK StatusOr — a valid prefix of the unbounded result — and
  /// `run->status()` / `run->truncated()` carry the structured reason
  /// (docs/ROBUSTNESS.md). `backend` selects the kernel path of every DP
  /// underneath (kernels/backend.h).
  ///
  /// Deprecated alias: this used to be a per-evaluator struct with fields
  /// {pool, cache, run}; exec::EngineOptions preserves that field order,
  /// so existing aggregate initializations keep compiling.
  using Execution = exec::EngineOptions;

  /// Fails if the node set of `mu` differs from the input alphabet of `t`.
  static StatusOr<Evaluator> Create(const markov::MarkovSequence* mu,
                                    const transducer::Transducer* t);

  void set_execution(const Execution& execution) { execution_ = execution; }

  /// Top-k answers by decreasing E_max; confidences attached when
  /// `with_confidence` (using the best applicable algorithm per
  /// Confidence()).
  StatusOr<std::vector<AnswerInfo>> TopK(int k,
                                         bool with_confidence = true) const;

  /// All answers, unranked (lexicographic), optionally with confidence.
  /// This is the naive two-step evaluation; it may produce exponentially
  /// many answers.
  StatusOr<std::vector<AnswerInfo>> EvaluateTwoStep(
      bool with_confidence = true) const;

  /// Confidence of one answer (dispatching facade).
  StatusOr<double> Confidence(const Str& o) const;

  /// E_max of one answer, or nullopt if o is not an answer.
  std::optional<double> Emax(const Str& o) const;

  const markov::MarkovSequence& mu() const { return *mu_; }
  const transducer::Transducer& transducer() const { return *t_; }

 private:
  Evaluator(const markov::MarkovSequence* mu, const transducer::Transducer* t)
      : mu_(mu), t_(t) {}

  const markov::MarkovSequence* mu_;
  const transducer::Transducer* t_;
  Execution execution_;
};

}  // namespace tms::query

#endif  // TMS_QUERY_EVALUATOR_H_
