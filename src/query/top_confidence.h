// Exact top answer by CONFIDENCE via branch-and-bound over the E_max
// stream.
//
// Finding the confidence-optimal answer is NP-hard to even approximate
// (Theorems 4.4/4.5), so no polynomial algorithm exists — but the paper's
// own machinery yields a correct *anytime* procedure: enumerate answers in
// decreasing E_max (Theorem 4.3); every answer satisfies
//     conf(o) ≤ W · E_max(o),
// where W = |support(μ)| (at most |Σ|^n — the ratio behind the paper's
// |Σ|^n approximation bound, instantiated with the instance's actual
// support size). Once the best confidence found so far reaches
// W · (current E_max level), no later answer can win and the result is
// certified optimal. On concentrated instances (e.g. HMM posteriors) the
// certificate often fires after a handful of answers; on adversarial
// instances it degenerates to full enumeration — as it must.

#ifndef TMS_QUERY_TOP_CONFIDENCE_H_
#define TMS_QUERY_TOP_CONFIDENCE_H_

#include <cstdint>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Result of the branch-and-bound search.
struct TopConfidenceResult {
  Str output;                     ///< best answer found
  double confidence = 0.0;        ///< its confidence
  bool certified_optimal = false; ///< true iff provably the optimum
  int64_t answers_explored = 0;   ///< E_max-stream answers consumed
};

/// Searches for the confidence-optimal answer. Explores at most
/// `max_candidates` answers (0 = unlimited — guaranteed exact since the
/// E_max stream is exhaustive, but potentially exponential). Fails only if
/// A^ω(μ) is empty or on alphabet mismatch.
StatusOr<TopConfidenceResult> TopAnswerByConfidence(
    const markov::MarkovSequence& mu, const transducer::Transducer& t,
    int64_t max_candidates = 0);

}  // namespace tms::query

#endif  // TMS_QUERY_TOP_CONFIDENCE_H_
