// Monte-Carlo confidence estimation.
//
// The paper leaves "approximating the confidence of an answer" as future
// work and notes that an FPRAS for the general case would resolve a
// long-standing open problem (it would yield an FPRAS for
// |L(A) ∩ Σ^n|-counting). This module provides the natural unbiased
// estimator: sample possible worlds from μ and test s →[A^ω]→ o. It is an
// additive-error scheme (Hoeffding: ε ≤ sqrt(ln(2/δ)/2m)), NOT an FPRAS —
// relative error on tiny confidences requires prohibitively many samples,
// which is exactly the gap the paper describes. Useful in practice when
// answers of interest have non-negligible confidence, and as the baseline
// for the E4 ablation bench.

#ifndef TMS_QUERY_APPROX_H_
#define TMS_QUERY_APPROX_H_

#include <cstdint>

#include "common/rng.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::query {

/// Result of a Monte-Carlo confidence estimate.
struct MonteCarloEstimate {
  double estimate = 0.0;     ///< hit fraction — unbiased for conf(o)
  int64_t samples = 0;
  int64_t hits = 0;
  /// Half-width of the 95% Hoeffding confidence interval.
  double error_bound95 = 0.0;
};

/// Estimates Pr(S →[A^ω]→ o) from `samples` sampled worlds.
/// Time O(samples · n · |Q| · (|o|+1)) (each sample runs the membership
/// check against the sampled world).
MonteCarloEstimate ConfidenceMonteCarlo(const markov::MarkovSequence& mu,
                                        const transducer::Transducer& t,
                                        const Str& o, int64_t samples,
                                        Rng& rng);

}  // namespace tms::query

#endif  // TMS_QUERY_APPROX_H_
