// Seeded random-number utilities shared by the workload generators,
// the randomized property tests, and HMM sampling.

#ifndef TMS_COMMON_RNG_H_
#define TMS_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "common/check.h"

namespace tms {

/// A deterministic PRNG wrapper (mt19937_64) with convenience samplers.
/// All randomized code in tms takes an Rng& so runs are reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL) : gen_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    TMS_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(gen_);
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(gen_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Samples an index according to the given nonnegative weights.
  /// Weights need not sum to 1; at least one must be positive.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    TMS_CHECK(total > 0);
    double u = UniformDouble() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Generates a random probability vector of the given size with exactly
  /// `support` nonzero entries (Dirichlet-like via normalized exponentials).
  std::vector<double> RandomDistribution(size_t size, size_t support);

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

inline std::vector<double> Rng::RandomDistribution(size_t size,
                                                   size_t support) {
  TMS_CHECK(support >= 1 && support <= size);
  std::vector<double> out(size, 0.0);
  // Choose `support` distinct positions.
  std::vector<size_t> idx(size);
  for (size_t i = 0; i < size; ++i) idx[i] = i;
  for (size_t i = 0; i < support; ++i) {
    size_t j = static_cast<size_t>(UniformInt(static_cast<int64_t>(i),
                                              static_cast<int64_t>(size - 1)));
    std::swap(idx[i], idx[j]);
  }
  double total = 0;
  std::vector<double> mass(support);
  for (size_t i = 0; i < support; ++i) {
    mass[i] = -std::log(1.0 - UniformDouble());
    total += mass[i];
  }
  for (size_t i = 0; i < support; ++i) out[idx[i]] = mass[i] / total;
  return out;
}

}  // namespace tms

#endif  // TMS_COMMON_RNG_H_
