#include "common/stopwatch.h"

namespace tms {

int64_t Stopwatch::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
      .count();
}

}  // namespace tms
