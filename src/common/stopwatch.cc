#include "common/stopwatch.h"

namespace tms {

int64_t Stopwatch::ElapsedNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start_)
      .count();
}

int64_t Stopwatch::Lap() {
  Clock::time_point now = Clock::now();
  int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - lap_).count();
  lap_ = now;
  return ns;
}

}  // namespace tms
