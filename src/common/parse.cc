#include "common/parse.h"

#include <limits>

namespace tms {

bool ParseNonNegInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  int64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    const int digit = c - '0';
    if (value > (kMax - digit) / 10) return false;  // would overflow
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

bool ParsePositiveInt(std::string_view s, int* out) {
  int64_t value = 0;
  if (!ParseNonNegInt64(s, &value)) return false;
  if (value <= 0 || value > std::numeric_limits<int>::max()) return false;
  *out = static_cast<int>(value);
  return true;
}

}  // namespace tms
