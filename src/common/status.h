// Lightweight Status / StatusOr error-handling primitives.
//
// tms reports recoverable errors (malformed models, mismatched alphabets,
// unparsable regexes) through Status values rather than exceptions, in the
// style of large database codebases. Programmer errors (violated internal
// invariants) use the TMS_CHECK macros from common/check.h instead.

#ifndef TMS_COMMON_STATUS_H_
#define TMS_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace tms {

/// Error category of a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kUnimplemented,
  kInternal,
  // Bounded-execution outcomes (exec/run_context.h): the run stopped at an
  // answer boundary because a limit fired, not because of bad input. The
  // partial result already produced is valid (a prefix of the unbounded
  // stream); see docs/ROBUSTNESS.md for the truncation contract.
  kCancelled,
  kDeadlineExceeded,
  kBudgetExhausted,
};

/// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result carrying a code and a message.
///
/// Functions that can fail on user input return Status (or StatusOr<T>).
/// A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value of type T or an error Status. Accessing value() on an error
/// aborts the process (it is a programmer error; check ok() first).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
[[noreturn]] void DieOnBadStatusAccess(const Status& status);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!status_.ok()) internal::DieOnBadStatusAccess(status_);
}

/// Propagates an error Status out of the current function.
#define TMS_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::tms::Status _tms_status = (expr);          \
    if (!_tms_status.ok()) return _tms_status;   \
  } while (0)

}  // namespace tms

#endif  // TMS_COMMON_STATUS_H_
