#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace tms {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kBudgetExhausted:
      return "BUDGET_EXHAUSTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnBadStatusAccess(const Status& status) {
  std::fprintf(stderr, "StatusOr::value() called on error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace tms
