// Wall-clock stopwatch used by the benchmark harness and the
// polynomial-delay measurements.

#ifndef TMS_COMMON_STOPWATCH_H_
#define TMS_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace tms {

/// Measures elapsed wall time with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the origin (and the lap origin) to now.
  void Restart() { start_ = lap_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const;

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

  /// Nanoseconds elapsed since the last Lap() (or construction/Restart()),
  /// and advances the lap origin to now — interval timing for the
  /// per-answer delay recorder and enumeration instrumentation.
  int64_t Lap();

  /// Seconds variant of Lap().
  double LapSeconds() { return static_cast<double>(Lap()) * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point lap_;
};

}  // namespace tms

#endif  // TMS_COMMON_STOPWATCH_H_
