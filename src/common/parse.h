// Checked numeric parsing for user-supplied input (CLI flags, positional
// arguments, HTTP query parameters).
//
// std::atoi / std::atoll silently read garbage as 0 — "--threads=abc"
// becomes zero concurrency and a typo'd top-k becomes zero answers — and
// overflow is undefined behavior. These parsers accept exactly the
// decimal-digit spellings, reject everything else (empty input, signs,
// whitespace, trailing bytes, overflow), and report failure instead of
// guessing.

#ifndef TMS_COMMON_PARSE_H_
#define TMS_COMMON_PARSE_H_

#include <cstdint>
#include <string_view>

namespace tms {

/// Parses `s` as a base-10 nonnegative integer into `*out`. False (and
/// `*out` untouched) on empty input, any non-digit byte (signs and
/// whitespace included), or a value that overflows int64_t.
bool ParseNonNegInt64(std::string_view s, int64_t* out);

/// As ParseNonNegInt64, but additionally rejects 0 and values that do not
/// fit an int — the shape of `k` / `limit` / `--threads` arguments.
bool ParsePositiveInt(std::string_view s, int* out);

}  // namespace tms

#endif  // TMS_COMMON_PARSE_H_
