// CHECK-style assertion macros for internal invariants.
//
// These abort the process with a diagnostic; they are for programmer errors
// only. Recoverable, input-dependent failures use Status (common/status.h).

#ifndef TMS_COMMON_CHECK_H_
#define TMS_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace tms::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "%s:%d: TMS_CHECK failed: %s\n", file, line, expr);
  std::abort();
}

}  // namespace tms::internal

/// Aborts if `cond` is false. Always enabled (not compiled out in release
/// builds); use only on cold paths or where correctness trumps speed.
#define TMS_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) ::tms::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

#define TMS_CHECK_EQ(a, b) TMS_CHECK((a) == (b))
#define TMS_CHECK_NE(a, b) TMS_CHECK((a) != (b))
#define TMS_CHECK_LT(a, b) TMS_CHECK((a) < (b))
#define TMS_CHECK_LE(a, b) TMS_CHECK((a) <= (b))
#define TMS_CHECK_GT(a, b) TMS_CHECK((a) > (b))
#define TMS_CHECK_GE(a, b) TMS_CHECK((a) >= (b))

/// Debug-only check; compiled out when NDEBUG is defined.
#ifdef NDEBUG
#define TMS_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define TMS_DCHECK(cond) TMS_CHECK(cond)
#endif

#endif  // TMS_COMMON_CHECK_H_
