#include "serve/wire.h"

#include "obs/export.h"

namespace tms::serve {

const char* StopReasonName(exec::StopReason reason) {
  switch (reason) {
    case exec::StopReason::kNone: return "NONE";
    case exec::StopReason::kAnswerCap: return "ANSWER_CAP";
    case exec::StopReason::kBudget: return "BUDGET";
    case exec::StopReason::kDeadline: return "DEADLINE";
    case exec::StopReason::kCancelled: return "CANCELLED";
    case exec::StopReason::kFault: return "FAULT";
  }
  return "NONE";
}

std::string ExecJson(const Status& status, exec::StopReason reason,
                     int64_t answers, int64_t work) {
  std::string doc = "{\"status\":\"";
  obs::AppendJsonEscaped(StatusCodeName(status.code()), &doc);
  doc += "\",\"reason\":\"";
  doc += StopReasonName(reason);
  doc += "\",\"truncated\":";
  doc += reason != exec::StopReason::kNone ? "true" : "false";
  doc += ",\"answers\":";
  doc += std::to_string(answers);
  doc += ",\"work\":";
  doc += std::to_string(work);
  doc += '}';
  return doc;
}

void AppendAnswerJson(const std::string& answer, const char* score_key,
                      double score, double confidence, std::string* out) {
  *out += "{\"answer\":\"";
  obs::AppendJsonEscaped(answer, out);
  *out += "\",\"";
  *out += score_key;
  *out += "\":";
  obs::AppendJsonNumber(score, out);
  *out += ",\"confidence\":";
  obs::AppendJsonNumber(confidence, out);
  *out += '}';
}

void AppendBatchRowJson(const std::string& key, const std::string& answer,
                        double emax, double confidence, std::string* out) {
  *out += "{\"key\":\"";
  obs::AppendJsonEscaped(key, out);
  *out += "\",";
  std::string answer_json;
  AppendAnswerJson(answer, "emax", emax, confidence, &answer_json);
  out->append(answer_json, 1, std::string::npos);  // splice past its '{'
}

}  // namespace tms::serve
