#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "common/parse.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "dist/sharded_batch.h"
#include "exec/fault.h"
#include "io/text_format.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "projector/sprojector.h"
#include "projector/sprojector_confidence.h"
#include "query/confidence.h"
#include "query/engine_factory.h"
#include "serve/wire.h"
#include "strings/str.h"
#include "transducer/transducer.h"

namespace tms::serve {

namespace {

// One JSON error body per non-200 response, always newline-terminated so
// line-oriented clients never block on a partial line.
std::string JsonError(const std::string& message) {
  std::string body = "{\"error\":\"";
  obs::AppendJsonEscaped(message, &body);
  body += "\"}\n";
  return body;
}

void SendJsonError(int fd, int code, const std::string& message,
                   std::string_view extra_headers = {}) {
  // Runtime-named counter: the TMS_OBS_COUNT macro caches its metric in a
  // function-local static, so it is only correct for literal names.
  obs::Registry::Global()
      .counter("serve.http." + std::to_string(code))
      .Add(1);
  SendAll(fd, SimpleResponse(code, "application/json", JsonError(message),
                             extra_headers));
}

// Per-request execution parameters, parsed from the URL query string.
// Every numeric value goes through the checked parsers in common/parse.h
// — garbage is a 400, never a silently-zero limit.
struct QueryParams {
  int k = 0;  // 0 = default by mode (10 ranked, 100 enum)
  int64_t deadline_ms = -1;
  int64_t max_answers = -1;
  int64_t budget = -1;
  bool enum_mode = false;
  kernels::BackendChoice backend = kernels::BackendChoice::kAuto;
  optimize::Level optimize = optimize::Level::kAuto;
  std::string precompiled;  // registry-precompiled query name; "" = body
  int64_t shard = 0;        // shard label; only /batch reads it
};

// Returns a 400 message, or "" on success.
std::string ParseParams(const std::string& query,
                        kernels::BackendChoice default_backend,
                        optimize::Level default_optimize, QueryParams* out) {
  out->backend = default_backend;
  out->optimize = default_optimize;
  for (const auto& [name, value] : ParseQueryParams(query)) {
    if (name == "k") {
      if (!ParsePositiveInt(value, &out->k)) {
        return "k must be a positive integer, got '" + value + "'";
      }
    } else if (name == "deadline_ms") {
      if (!ParseNonNegInt64(value, &out->deadline_ms)) {
        return "deadline_ms must be a nonnegative integer, got '" + value +
               "'";
      }
    } else if (name == "max_answers") {
      if (!ParseNonNegInt64(value, &out->max_answers)) {
        return "max_answers must be a nonnegative integer, got '" + value +
               "'";
      }
    } else if (name == "budget") {
      if (!ParseNonNegInt64(value, &out->budget)) {
        return "budget must be a nonnegative integer, got '" + value + "'";
      }
    } else if (name == "backend") {
      auto choice = kernels::ParseBackendChoice(value);
      if (!choice.has_value()) {
        return "backend must be dense|sparse|auto, got '" + value + "'";
      }
      out->backend = *choice;
    } else if (name == "optimize") {
      auto level = optimize::ParseLevel(value);
      if (!level.has_value()) {
        return "optimize must be off|auto|on, got '" + value + "'";
      }
      out->optimize = *level;
    } else if (name == "precompiled") {
      if (value.empty()) return "precompiled must name a query";
      out->precompiled = value;
    } else if (name == "shard") {
      if (!ParseNonNegInt64(value, &out->shard)) {
        return "shard must be a nonnegative integer, got '" + value + "'";
      }
    } else if (name == "mode") {
      if (value == "enum") {
        out->enum_mode = true;
      } else if (value != "ranked") {
        return "mode must be ranked|enum, got '" + value + "'";
      }
    } else {
      return "unknown parameter '" + name + "'";
    }
  }
  if (out->k == 0) out->k = out->enum_mode ? 100 : 10;
  return "";
}

// The parsed request body: exactly one of the two query classes.
struct ParsedQuery {
  std::optional<transducer::Transducer> transducer;
  std::optional<projector::SProjector> sprojector;
};

// Returns a 400 message, or "" on success.
std::string ParseQueryBody(const std::string& body, ParsedQuery* out) {
  auto format = io::DetectFormat(body);
  if (!format.ok()) return format.status().message();
  if (*format == "transducer") {
    auto t = io::ParseTransducer(body);
    if (!t.ok()) return t.status().ToString();
    out->transducer = std::move(t).value();
    return "";
  }
  if (*format == "s-projector") {
    auto p = io::ParseSProjector(body);
    if (!p.ok()) return p.status().ToString();
    out->sprojector = std::move(p).value();
    return "";
  }
  return "query body must be a transducer or an s-projector, got: " + *format;
}

}  // namespace

HttpServer::HttpServer(ModelRegistry registry, ServerOptions options)
    : registry_(std::move(registry)),
      options_(std::move(options)),
      gate_(options_.max_inflight) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad host address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Status::Internal(std::string("bind: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (listen(listen_fd_, 64) < 0) {
    Status st =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  if (options_.threads > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(options_.threads - 1);
  }
  TMS_OBS_GAUGE_SET("serve.models", static_cast<double>(registry_.size()));
  started_ = true;
  accept_thread_ = std::thread(&HttpServer::AcceptLoop, this);
  return Status::Ok();
}

void HttpServer::AcceptLoop() {
  while (!stopping()) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, options_.limits.poll_interval_ms);
    if (ready <= 0) continue;  // timeout slice or EINTR: re-check stopping
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stopping()) {
      close(fd);
      break;
    }
    ReapFinished();
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (static_cast<int>(connections_.size()) >= options_.max_connections) {
      // Refused before a thread exists; the body is small enough that the
      // blocking send cannot stall the accept loop.
      SendJsonError(fd, 503, "too many open connections");
      close(fd);
      continue;
    }
    const uint64_t id = next_connection_id_++;
    connections_.emplace(id, std::thread([this, id, fd] {
                           HandleConnection(fd);
                           close(fd);
                           std::lock_guard<std::mutex> done(conn_mu_);
                           finished_.push_back(id);
                         }));
  }
}

void HttpServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(conn_mu_);
  for (uint64_t id : finished_) {
    auto it = connections_.find(id);
    if (it != connections_.end()) {
      it->second.join();
      connections_.erase(it);
    }
  }
  finished_.clear();
}

void HttpServer::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  if (!started_ || shut_down_) return;
  stopping_.store(true, std::memory_order_release);
  // Every in-flight RunContext carries this token: live streams stop at
  // their next answer boundary and report CANCELLED in the footer.
  drain_.Cancel();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
  std::map<uint64_t, std::thread> remaining;
  {
    std::lock_guard<std::mutex> conns(conn_mu_);
    remaining.swap(connections_);
  }
  for (auto& [id, thread] : remaining) thread.join();
  {
    std::lock_guard<std::mutex> conns(conn_mu_);
    finished_.clear();
  }
  shut_down_ = true;
}

void HttpServer::HandleConnection(int fd) {
  RequestReader reader(fd, [this] { return stopping(); }, options_.limits);
  HttpRequest request;
  Status st = reader.ReadHead(&request);
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) {
      SendJsonError(fd, 400, st.message());
    } else if (st.code() == StatusCode::kOutOfRange) {
      SendJsonError(fd, 431, st.message());
    }
    // Cancelled (server stopping), NotFound (client closed), Internal
    // (socket error): nothing useful to say on this socket.
    return;
  }
  TMS_OBS_COUNT("serve.requests", 1);

  if (request.path == "/healthz") {
    if (request.method != "GET") {
      SendJsonError(fd, 405, "healthz is GET-only");
      return;
    }
    TMS_OBS_COUNT("serve.http.200", 1);
    SendAll(fd, SimpleResponse(200, "text/plain", "ok\n"));
    return;
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") {
      SendJsonError(fd, 405, "metrics is GET-only");
      return;
    }
    TMS_OBS_COUNT("serve.http.200", 1);
    const std::string text =
        obs::PrometheusText(obs::Registry::Global().Snapshot());
    SendAll(fd, SimpleResponse(
                    200, "text/plain; version=0.0.4; charset=utf-8", text));
    return;
  }
  if (request.path == "/models") {
    if (request.method != "GET") {
      SendJsonError(fd, 405, "models is GET-only");
      return;
    }
    std::string body = "{\"models\":[";
    bool first = true;
    for (const std::string& name : registry_.Names()) {
      if (!first) body += ',';
      first = false;
      body += '"';
      obs::AppendJsonEscaped(name, &body);
      body += '"';
    }
    body += "]}\n";
    TMS_OBS_COUNT("serve.http.200", 1);
    SendAll(fd, SimpleResponse(200, "application/json", body));
    return;
  }
  constexpr std::string_view kQueryPrefix = "/query/";
  if (request.path.rfind(kQueryPrefix, 0) == 0) {
    if (request.method != "POST") {
      SendJsonError(fd, 405, "query is POST-only");
      return;
    }
    HandleQuery(fd, &reader, request,
                request.path.substr(kQueryPrefix.size()));
    return;
  }
  if (request.path == "/batch") {
    if (request.method != "POST") {
      SendJsonError(fd, 405, "batch is POST-only");
      return;
    }
    HandleBatch(fd, &reader, request);
    return;
  }
  SendJsonError(fd, 404, "no such endpoint: " + request.path);
}

void HttpServer::HandleQuery(int fd, RequestReader* reader,
                             const HttpRequest& request,
                             const std::string& model_name) {
  const markov::MarkovSequence* mu = registry_.Find(model_name);
  if (mu == nullptr) {
    SendJsonError(fd, 404, "unknown model '" + model_name + "'");
    return;
  }
  // Admission is decided on the request head, BEFORE buffering the body:
  // a client trickling a large body holds only its own gate slot, and an
  // overloaded server refuses with the cheapest possible work.
  GateGuard gate(&gate_);
  if (!gate.admitted()) {
    SendJsonError(fd, 429,
                  "query rejected: " + std::to_string(gate_.max_inflight()) +
                      " queries already in flight",
                  "Retry-After: 1\r\n");
    return;
  }

  HttpRequest req = request;
  Status st = reader->ReadBody(&req);
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) {
      SendJsonError(fd, 400, st.message());
    } else if (st.code() == StatusCode::kOutOfRange) {
      SendJsonError(fd, 413, st.message());
    }
    return;
  }

  QueryParams params;
  std::string error = ParseParams(req.query, options_.backend,
                                  options_.optimize, &params);
  if (!error.empty()) {
    SendJsonError(fd, 400, error);
    return;
  }
  ParsedQuery query;
  if (!params.precompiled.empty()) {
    // A precompiled query IS the request: the body stays empty and the
    // stored transducer — already optimized at registry load — runs with
    // the pass off (re-optimizing an optimized machine is pure waste).
    if (!req.body.empty()) {
      SendJsonError(fd, 400,
                    "precompiled queries take an empty body; got " +
                        std::to_string(req.body.size()) + " bytes");
      return;
    }
    const transducer::Transducer* stored =
        registry_.FindPrecompiled(model_name, params.precompiled);
    if (stored == nullptr) {
      SendJsonError(fd, 404, "unknown precompiled query '" +
                                 params.precompiled + "' for model '" +
                                 model_name + "'");
      return;
    }
    query.transducer = *stored;
    params.optimize = optimize::Level::kOff;
    TMS_OBS_COUNT("serve.precompiled_queries", 1);
  } else {
    error = ParseQueryBody(req.body, &query);
    if (!error.empty()) {
      SendJsonError(fd, 400, error);
      return;
    }
  }

  // Request-scoped observability: every metric and span of this query —
  // including parallel engine work adopted onto shared-pool workers —
  // attributes to this scope, disjoint from concurrent requests.
  obs::QueryScope scope("serve.query");

  // The per-request execution contract: limits map onto the same
  // RunContext truncation contract the CLI flags use, and the server-wide
  // drain token makes SIGTERM stop this stream at its next answer
  // boundary.
  exec::RunContext run;
  run.set_cancel_token(drain_);
  if (params.deadline_ms >= 0) run.set_deadline_after_ms(params.deadline_ms);
  if (params.max_answers >= 0) run.set_max_answers(params.max_answers);
  if (params.budget >= 0) run.set_work_budget(params.budget);

  exec::EngineOptions engine;
  engine.pool = pool_.get();
  engine.run = &run;
  engine.backend = params.backend;
  engine.optimize = params.optimize;

  // Keep borrowed inputs alive for the whole stream.
  std::optional<transducer::Transducer> enum_transducer;
  StatusOr<std::unique_ptr<ranking::AnswerStream>> stream =
      Status::Internal("unreachable");
  if (params.enum_mode) {
    enum_transducer = query.transducer.has_value()
                          ? std::move(*query.transducer)
                          : query.sprojector->ToTransducer();
    stream = query::MakeEnumerator(query::EnumeratorKind::kUnranked, *mu,
                                   *enum_transducer, engine);
  } else if (query.transducer.has_value()) {
    stream = query::MakeEnumerator(query::EnumeratorKind::kEmax, *mu,
                                   *query.transducer, engine);
  } else {
    stream = query::MakeEnumerator(*mu, *query.sprojector, engine);
  }
  if (!stream.ok()) {
    // Alphabet mismatch, invalid transducer, ...: the query never ran, so
    // this is still a clean HTTP error, not a mid-stream footer.
    SendJsonError(fd, 400, stream.status().ToString());
    return;
  }

  TMS_OBS_COUNT("serve.http.200", 1);
  TMS_OBS_COUNT("serve.queries", 1);
  std::string head = ChunkedResponseHead(
      200, "application/x-ndjson",
      "X-Query-Id: " + std::to_string(scope.query_id()) + "\r\n");
  if (!SendAll(fd, head)) return;
  ChunkedWriter writer(fd);
  bool client_alive = true;
  std::string stream_error;

  obs::DelayRecorder delay("serve.query");
  for (int i = 0; i < params.k && client_alive; ++i) {
    auto answer = (*stream)->Next();
    if (!answer.has_value()) break;
    std::string line;
    if (params.enum_mode) {
      line += '"';
      obs::AppendJsonEscaped(
          FormatStr(enum_transducer->output_alphabet(), answer->output),
          &line);
      line += '"';
    } else if (query.transducer.has_value()) {
      // Same score+confidence computation as query::Evaluator::TopK, same
      // serializer as the CLI's --stats=json results — answer lines are
      // byte-identical to one-shot output by construction.
      auto conf = query::Confidence(*mu, *query.transducer, answer->output,
                                    params.backend);
      if (!conf.ok()) {
        stream_error = conf.status().ToString();
        break;
      }
      AppendAnswerJson(
          FormatStr(query.transducer->output_alphabet(), answer->output),
          "emax", answer->score, *conf, &line);
    } else {
      auto conf = projector::SProjectorConfidence(*mu, *query.sprojector,
                                                  answer->output);
      if (!conf.ok()) {
        stream_error = conf.status().ToString();
        break;
      }
      AppendAnswerJson(FormatStr(query.sprojector->alphabet(),
                                 answer->output),
                       "imax", answer->score, *conf, &line);
    }
    line += '\n';
    client_alive = writer.WriteChunk(line);
    if (client_alive) {
      TMS_OBS_COUNT("serve.answers_streamed", 1);
      delay.RecordAnswer();
    }
  }
  if (!client_alive) {
    TMS_OBS_COUNT("serve.client_disconnects", 1);
    return;
  }

  // The footer: a truncated stream is a clean prefix plus this structured
  // stop reason (same ExecJson the CLI emits), so clients distinguish
  // "done" from "deadline fired" without guessing.
  std::string footer = "{\"done\":true,";
  if (!stream_error.empty()) {
    footer += "\"error\":\"";
    obs::AppendJsonEscaped(stream_error, &footer);
    footer += "\",";
  }
  footer += "\"exec\":";
  footer += ExecJson(run.status(), run.stop_reason(), run.answers_emitted(),
                     run.work_charged());
  footer += "}\n";
  if (writer.WriteChunk(footer)) writer.Finish();
}

void HttpServer::HandleBatch(int fd, RequestReader* reader,
                             const HttpRequest& request) {
  // The worker half of the dist protocol (docs/DISTRIBUTED.md): this
  // server's registry IS its shard of the collection. Admission shares
  // the /query gate — a batch counts as one in-flight query.
  GateGuard gate(&gate_);
  if (!gate.admitted()) {
    SendJsonError(fd, 429,
                  "batch rejected: " + std::to_string(gate_.max_inflight()) +
                      " queries already in flight",
                  "Retry-After: 1\r\n");
    return;
  }

  HttpRequest req = request;
  Status st = reader->ReadBody(&req);
  if (!st.ok()) {
    if (st.code() == StatusCode::kInvalidArgument) {
      SendJsonError(fd, 400, st.message());
    } else if (st.code() == StatusCode::kOutOfRange) {
      SendJsonError(fd, 413, st.message());
    }
    return;
  }

  QueryParams params;
  std::string error = ParseParams(req.query, options_.backend,
                                  options_.optimize, &params);
  if (!error.empty()) {
    SendJsonError(fd, 400, error);
    return;
  }
  if (params.enum_mode) {
    SendJsonError(fd, 400, "batch is ranked-only (mode=enum unsupported)");
    return;
  }
  if (!params.precompiled.empty()) {
    SendJsonError(fd, 400, "batch does not take precompiled queries");
    return;
  }
  ParsedQuery query;
  error = ParseQueryBody(req.body, &query);
  if (!error.empty()) {
    SendJsonError(fd, 400, error);
    return;
  }
  transducer::Transducer t = query.transducer.has_value()
                                 ? std::move(*query.transducer)
                                 : query.sprojector->ToTransducer();

  // The shard: every registered model, keyed by model name. The batch
  // layer requires one common alphabet; a mixed registry is a 400, not a
  // crash.
  const std::vector<std::string> names = registry_.Names();
  db::SequenceCollection collection(
      names.empty() ? t.input_alphabet()
                    : registry_.Find(names.front())->nodes());
  for (const std::string& name : names) {
    Status inserted = collection.Insert(name, *registry_.Find(name));
    if (!inserted.ok()) {
      SendJsonError(fd, 400, "model '" + name + "': " + inserted.ToString());
      return;
    }
  }

  obs::QueryScope scope("serve.batch");
  exec::RunContext run;
  run.set_cancel_token(drain_);
  if (params.deadline_ms >= 0) run.set_deadline_after_ms(params.deadline_ms);
  if (params.max_answers >= 0) run.set_max_answers(params.max_answers);
  if (params.budget >= 0) run.set_work_budget(params.budget);

  db::BatchEvaluator::Options batch_options;
  batch_options.pool = pool_.get();
  batch_options.run = &run;
  batch_options.backend = params.backend;
  batch_options.optimize = params.optimize;
  auto batch = db::BatchEvaluator::Create(&collection, &t, batch_options);
  if (!batch.ok()) {
    SendJsonError(fd, 400, batch.status().ToString());
    return;
  }
  std::vector<db::BatchEvaluator::SequenceResult> results =
      batch->EvaluateAll(params.k);

  // Per-shard coverage, the shard's own account for the merged footer.
  int64_t failed_sequences = 0;
  bool truncated = false;
  exec::StopReason reason = exec::StopReason::kNone;
  for (const db::BatchEvaluator::SequenceResult& r : results) {
    if (!r.status.ok()) ++failed_sequences;
    if (r.truncated && !truncated) {
      truncated = true;
      reason = r.reason;
    }
  }

  TMS_OBS_COUNT("serve.http.200", 1);
  TMS_OBS_COUNT("dist.worker.batches", 1);
  std::string head = ChunkedResponseHead(
      200, "application/x-ndjson",
      "X-Query-Id: " + std::to_string(scope.query_id()) + "\r\n");
  if (!SendAll(fd, head)) return;
  ChunkedWriter writer(fd);

  // Batch-then-stream: ranking is global over the shard, so the first
  // row can only be known once every sequence has evaluated. Rows are
  // byte-identical to `tms_cli batch --shards` by shared serializer.
  bool client_alive = true;
  for (const dist::RankedRow& row : dist::RankedReferenceRows(results)) {
    if (TMS_FAULT_POINT("dist.mid_stream")) {
      // An armed `exit` action never returns; a `fail` action simulates
      // the worker dying here — cut the stream without a footer, exactly
      // what the coordinator's straggler path expects.
      TMS_OBS_COUNT("dist.worker.stream_faults", 1);
      return;
    }
    std::string line;
    AppendBatchRowJson(row.key,
                       FormatStr(t.output_alphabet(), row.answer.output),
                       row.answer.emax, row.answer.confidence, &line);
    line += '\n';
    client_alive = writer.WriteChunk(line);
    if (!client_alive) break;
    TMS_OBS_COUNT("dist.worker.rows_streamed", 1);
  }
  if (!client_alive) {
    TMS_OBS_COUNT("serve.client_disconnects", 1);
    return;
  }

  // Fold any shared limit that fired inside sequence children into the
  // parent run before reporting it.
  (void)run.StopRequested();
  std::string footer = "{\"done\":true,\"shard\":";
  footer += std::to_string(params.shard);
  footer += ",\"coverage\":{\"sequences\":";
  footer += std::to_string(results.size());
  footer += ",\"failed_sequences\":";
  footer += std::to_string(failed_sequences);
  footer += ",\"truncated\":";
  footer += truncated ? "true" : "false";
  footer += ",\"reason\":\"";
  footer += StopReasonName(reason);
  footer += "\"},\"exec\":";
  footer += ExecJson(run.status(), run.stop_reason(), run.answers_emitted(),
                     run.work_charged());
  footer += "}\n";
  if (writer.WriteChunk(footer)) writer.Finish();
}

}  // namespace tms::serve
