// The model registry a tms_server loads once at startup.
//
// The expensive part of answering a query is per-model state (the Markov
// sequence itself, and everything the engines derive from it); a one-shot
// CLI re-parses the model on every invocation, a server loads it exactly
// once and answers every subsequent request against the in-memory copy.
// Models are registered as `name=path` pairs; the name is the URL segment
// of POST /query/<name>. The registry is immutable after Load, so
// concurrent request threads read it without locks.

#ifndef TMS_SERVE_REGISTRY_H_
#define TMS_SERVE_REGISTRY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "markov/markov_sequence.h"

namespace tms::serve {

/// Immutable name -> MarkovSequence map shared by all request threads.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Loads every `(name, path)` spec; each path must parse as a
  /// `markov-sequence` text file. Duplicate names and empty names fail.
  static StatusOr<ModelRegistry> Load(
      const std::vector<std::pair<std::string, std::string>>& specs);

  /// Registers an in-memory model (tests; programmatic embedding).
  Status Insert(const std::string& name, markov::MarkovSequence mu);

  /// The model under `name`, or nullptr.
  const markov::MarkovSequence* Find(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const { return models_.size(); }

 private:
  std::map<std::string, markov::MarkovSequence> models_;
};

}  // namespace tms::serve

#endif  // TMS_SERVE_REGISTRY_H_
