// The model registry a tms_server loads once at startup.
//
// The expensive part of answering a query is per-model state (the Markov
// sequence itself, and everything the engines derive from it); a one-shot
// CLI re-parses the model on every invocation, a server loads it exactly
// once and answers every subsequent request against the in-memory copy.
// Models are registered as `name=path` pairs; the name is the URL segment
// of POST /query/<name>. The registry is immutable after Load, so
// concurrent request threads read it without locks.
//
// Alongside the models the registry can hold PRECOMPILED queries:
// transducers optimized offline (optimize/transducer_opt.h) at startup and
// served by name via `precompiled=<name>` with an empty request body, so
// hot queries skip both the body parse and the optimization pass. The
// precompile step persists its result as a fingerprinted artifact next to
// the query file (optimize/artifact.h) and loads it back on later cold
// starts; a corrupted or stale artifact is rejected loudly
// (`optimize.artifact_rejected`) and the query is recompiled on the fly —
// never served from the bad file.

#ifndef TMS_SERVE_REGISTRY_H_
#define TMS_SERVE_REGISTRY_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "optimize/level.h"
#include "transducer/transducer.h"

namespace tms::serve {

/// Immutable name -> MarkovSequence map shared by all request threads.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Loads every `(name, path)` spec; each path must parse as a
  /// `markov-sequence` text file. Duplicate names and empty names fail.
  static StatusOr<ModelRegistry> Load(
      const std::vector<std::pair<std::string, std::string>>& specs);

  /// Registers an in-memory model (tests; programmatic embedding).
  Status Insert(const std::string& name, markov::MarkovSequence mu);

  /// The model under `name`, or nullptr.
  const markov::MarkovSequence* Find(const std::string& name) const;

  std::vector<std::string> Names() const;
  size_t size() const { return models_.size(); }

  /// Precompiles the transducer query at `query_path` for model `model`
  /// (which must already be registered and share the query's input
  /// alphabet) and registers it under `(model, name)`.
  ///
  /// With `level` kOff the query is registered as parsed — no pass, no
  /// artifact. Otherwise the artifact `<query_path>.opt` is tried first
  /// (fingerprint-validated against the parsed query); on NotFound or
  /// rejection the query is optimized on the fly with
  /// optimize::MinimizeTransducer and the artifact is rewritten
  /// best-effort (a read-only query directory only costs the persistence,
  /// not the precompile).
  Status Precompile(const std::string& model, const std::string& name,
                    const std::string& query_path, optimize::Level level);

  /// Registers an in-memory precompiled query (tests; programmatic
  /// embedding). Same name rules as Insert, scoped per model.
  Status InsertPrecompiled(const std::string& model, const std::string& name,
                           transducer::Transducer t);

  /// The precompiled query under `(model, name)`, or nullptr.
  const transducer::Transducer* FindPrecompiled(
      const std::string& model, const std::string& name) const;

  /// "model:name" keys, sorted (startup log / introspection).
  std::vector<std::string> PrecompiledNames() const;

 private:
  std::map<std::string, markov::MarkovSequence> models_;
  std::map<std::pair<std::string, std::string>, transducer::Transducer>
      precompiled_;
};

}  // namespace tms::serve

#endif  // TMS_SERVE_REGISTRY_H_
