#include "serve/admission.h"

#include "obs/obs.h"

namespace tms::serve {

bool AdmissionGate::TryEnter() {
  // Optimistic increment: claim a slot, then check the bound. The losing
  // decrement below cannot admit a concurrent caller past the limit —
  // every admitted caller observed its own post-increment value within
  // bounds.
  const int now = inflight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (now > max_inflight_) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    TMS_OBS_COUNT("serve.admission.rejected", 1);
    return false;
  }
  TMS_OBS_COUNT("serve.admission.admitted", 1);
  TMS_OBS_GAUGE_SET("serve.admission.inflight", now);
  return true;
}

void AdmissionGate::Exit() {
  const int now = inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  TMS_OBS_GAUGE_SET("serve.admission.inflight", now);
  (void)now;
}

}  // namespace tms::serve
