#include "serve/http.h"

#include <poll.h>
#include <sys/socket.h>

#include <cctype>
#include <cerrno>
#include <cstdio>

#include "common/parse.h"

namespace tms::serve {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view StripSpaces(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  while (!query.empty()) {
    const size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        params.emplace_back(std::string(pair), "");
      } else {
        params.emplace_back(std::string(pair.substr(0, eq)),
                            std::string(pair.substr(eq + 1)));
      }
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return params;
}

const std::string* FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view name) {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

Status ParseRequestHead(std::string_view head, HttpRequest* out) {
  // Request line: METHOD SP TARGET SP VERSION
  size_t line_end = head.find("\r\n");
  std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed request line");
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  if (method.empty() || target.empty() || target.front() != '/') {
    return Status::InvalidArgument("malformed request line");
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Status::InvalidArgument("unsupported HTTP version");
  }
  out->method = std::string(method);
  const size_t qmark = target.find('?');
  out->path = std::string(target.substr(0, qmark));
  out->query = qmark == std::string_view::npos
                   ? ""
                   : std::string(target.substr(qmark + 1));

  // Header lines until the end of the head.
  out->headers.clear();
  while (line_end != std::string_view::npos) {
    head.remove_prefix(line_end + 2);
    if (head.empty()) break;
    line_end = head.find("\r\n");
    line = line_end == std::string_view::npos ? head : head.substr(0, line_end);
    if (line.empty()) continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Status::InvalidArgument("malformed header line");
    }
    out->headers.emplace_back(
        ToLower(StripSpaces(line.substr(0, colon))),
        std::string(StripSpaces(line.substr(colon + 1))));
  }
  return Status::Ok();
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string SimpleResponse(int code, std::string_view content_type,
                           std::string_view body,
                           std::string_view extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    HttpStatusText(code) + "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size()) +
         "\r\nConnection: close\r\n";
  out += extra_headers;
  out += "\r\n";
  out += body;
  return out;
}

std::string ChunkedResponseHead(int code, std::string_view content_type,
                                std::string_view extra_headers) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    HttpStatusText(code) + "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n";
  out += extra_headers;
  out += "\r\n";
  return out;
}

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data.remove_prefix(static_cast<size_t>(n));
  }
  return true;
}

bool ChunkedWriter::WriteChunk(std::string_view data) {
  if (data.empty()) return true;
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n", data.size());
  if (!SendAll(fd_, size_line)) return false;
  if (!SendAll(fd_, data)) return false;
  return SendAll(fd_, "\r\n");
}

bool ChunkedWriter::Finish() { return SendAll(fd_, "0\r\n\r\n"); }

RequestReader::RequestReader(int fd, std::function<bool()> should_stop)
    : RequestReader(fd, std::move(should_stop), Limits()) {}

RequestReader::RequestReader(int fd, std::function<bool()> should_stop,
                             Limits limits)
    : fd_(fd), should_stop_(std::move(should_stop)), limits_(limits) {}

Status RequestReader::FillSome() {
  while (true) {
    if (should_stop_ && should_stop_()) {
      return Status::Cancelled("server stopping");
    }
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, limits_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("poll failed");
    }
    if (ready == 0) continue;  // timeout slice: re-check should_stop
    char chunk[4096];
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("recv failed");
    }
    if (n == 0) return Status::NotFound("client closed connection");
    buffer_.append(chunk, static_cast<size_t>(n));
    return Status::Ok();
  }
}

Status RequestReader::ReadHead(HttpRequest* req) {
  size_t scanned = 0;
  while (true) {
    // Resume the terminator scan 3 bytes back: the "\r\n\r\n" may span the
    // boundary of two recv()s.
    const size_t from = scanned > 3 ? scanned - 3 : 0;
    const size_t end = buffer_.find("\r\n\r\n", from);
    if (end != std::string::npos) {
      // The limit applies even when the whole head arrived in one recv.
      if (end > limits_.max_head_bytes) {
        return Status::OutOfRange("request head too large");
      }
      Status st = ParseRequestHead(std::string_view(buffer_).substr(0, end),
                                   req);
      if (!st.ok()) return st;
      buffer_.erase(0, end + 4);  // keep any body bytes already received
      return Status::Ok();
    }
    if (buffer_.size() > limits_.max_head_bytes) {
      return Status::OutOfRange("request head too large");
    }
    scanned = buffer_.size();
    TMS_RETURN_IF_ERROR(FillSome());
  }
}

Status RequestReader::ReadBody(HttpRequest* req) {
  req->body.clear();
  const std::string* length_header = req->FindHeader("content-length");
  if (length_header == nullptr) return Status::Ok();
  int64_t length = 0;
  if (!ParseNonNegInt64(*length_header, &length)) {
    return Status::InvalidArgument("malformed Content-Length");
  }
  if (static_cast<size_t>(length) > limits_.max_body_bytes) {
    return Status::OutOfRange("request body too large");
  }
  while (buffer_.size() < static_cast<size_t>(length)) {
    TMS_RETURN_IF_ERROR(FillSome());
  }
  req->body = buffer_.substr(0, static_cast<size_t>(length));
  buffer_.erase(0, static_cast<size_t>(length));
  return Status::Ok();
}

}  // namespace tms::serve
