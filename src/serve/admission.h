// Admission control for the serving layer.
//
// A long-lived server must bound the number of concurrently executing
// queries: each one holds composed-automaton state and competes for the
// shared exec::ThreadPool, and admitting an unbounded number turns
// overload into latency collapse for everyone. The gate is a simple
// counting limiter — TryEnter() either admits (and must be paired with
// Exit()) or refuses, and a refused request is answered 429 so the client
// can retry against an explicit signal instead of a hung connection.
//
// The server enters the gate after parsing the request head but BEFORE
// buffering the request body: admission is decided on the cheap bytes,
// and a client that trickles its body holds only its own slot.
//
// Observability: serve.admission.admitted / .rejected counters and the
// serve.admission.inflight gauge (docs/OBSERVABILITY.md).

#ifndef TMS_SERVE_ADMISSION_H_
#define TMS_SERVE_ADMISSION_H_

#include <atomic>

namespace tms::serve {

/// Thread-safe counting admission gate. `max_inflight` <= 0 refuses every
/// request (useful for tests and drain mode).
class AdmissionGate {
 public:
  explicit AdmissionGate(int max_inflight) : max_inflight_(max_inflight) {}

  /// True = admitted; the caller MUST call Exit() when the query ends
  /// (GateGuard does). False = refuse with 429.
  bool TryEnter();
  void Exit();

  int inflight() const { return inflight_.load(std::memory_order_relaxed); }
  int max_inflight() const { return max_inflight_; }

 private:
  const int max_inflight_;
  std::atomic<int> inflight_{0};
};

/// RAII pairing for TryEnter/Exit.
class GateGuard {
 public:
  explicit GateGuard(AdmissionGate* gate)
      : gate_(gate), admitted_(gate->TryEnter()) {}
  ~GateGuard() {
    if (admitted_) gate_->Exit();
  }
  GateGuard(const GateGuard&) = delete;
  GateGuard& operator=(const GateGuard&) = delete;

  bool admitted() const { return admitted_; }

 private:
  AdmissionGate* gate_;
  bool admitted_;
};

}  // namespace tms::serve

#endif  // TMS_SERVE_ADMISSION_H_
