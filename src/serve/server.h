// Long-lived HTTP server streaming ranked answers incrementally.
//
// The paper's headline result is polynomial-DELAY enumeration: answer i+1
// arrives a bounded time after answer i, independent of how many answers
// remain. That shape is tailor-made for server-streaming — a client
// should see answer 1 at answer-1 delay, not after the full top-k — and
// this server is the library→service line: it loads a ModelRegistry once,
// accepts concurrent requests, and writes each ranked answer as one
// NDJSON line of a chunked HTTP response the moment the enumerator emits
// it.
//
// Endpoints (docs/SERVING.md):
//   GET  /healthz           -> 200 "ok\n"
//   GET  /metrics           -> Prometheus text exposition of the global
//                              metrics registry (obs/export.h)
//   GET  /models            -> {"models":[...]} the registry's names
//   POST /query/<model>     -> body: a transducer or s-projector in the
//                              io/ text format; response: one NDJSON line
//                              per ranked answer, then a footer line
//                              {"done":true,"exec":{...}} carrying the
//                              structured stop reason.
//     parameters: k, mode=ranked|enum, deadline_ms, max_answers, budget,
//                 backend=dense|sparse|auto, optimize=off|auto|on,
//                 precompiled=<name> (registry-precompiled query, body
//                 must be empty; see serve/registry.h)
//   POST /batch             -> the worker half of the dist protocol
//                              (docs/DISTRIBUTED.md): evaluates the body
//                              query against EVERY registered model (this
//                              worker's shard) and streams the globally
//                              ranked rows — one key-tagged NDJSON line
//                              per answer (serve::AppendBatchRowJson),
//                              nonincreasing in emax — then a footer
//                              {"done":true,"shard":S,"coverage":{...},
//                              "exec":{...}}. Same parameters as /query
//                              (k and max_answers apply per sequence;
//                              deadline/budget bound the whole shard)
//                              plus shard=<id>, echoed in the footer.
//
// Execution model: every admitted query runs on its own connection thread
// under its own obs::QueryScope (request-scoped metrics, trace
// propagation) and its own exec::RunContext (per-request deadline /
// answer cap / budget mapped onto the existing truncation contract — a
// truncated response is a clean prefix plus the footer's stop reason).
// The engines' parallel work multiplexes over ONE shared exec::ThreadPool
// for the whole server. Admission control (serve/admission.h) bounds
// in-flight queries and refuses the rest with 429.
//
// Shutdown: Shutdown() (the tool calls it on SIGINT/SIGTERM) stops
// accepting, fires the server-wide CancelToken bound into every
// in-flight RunContext, and joins every connection thread — each live
// stream ends at its next answer boundary with a CANCELLED footer, so
// clients always see a well-formed (if short) response.

#ifndef TMS_SERVE_SERVER_H_
#define TMS_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "kernels/backend.h"
#include "optimize/level.h"
#include "serve/admission.h"
#include "serve/http.h"
#include "serve/registry.h"

namespace tms::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  int port = 0;
  /// Total engine concurrency shared by ALL queries: the server's
  /// exec::ThreadPool gets threads-1 workers (the request thread is the
  /// extra lane, exec::ThreadPool semantics). 1 = fully sequential.
  int threads = 1;
  /// Admission gate: maximum concurrently executing queries; further
  /// /query requests get 429. <= 0 refuses every query (drain mode).
  int max_inflight = 8;
  /// Hard cap on simultaneously open connections; beyond it new
  /// connections are answered 503 without spawning a thread.
  int max_connections = 64;
  /// Kernel backend for every query unless overridden per request.
  kernels::BackendChoice backend = kernels::BackendChoice::kAuto;
  /// Query-automaton optimization level for every query unless overridden
  /// per request (docs/OPTIMIZE.md; byte-identical streams at any level).
  optimize::Level optimize = optimize::Level::kAuto;
  /// Request size limits / shutdown poll granularity.
  RequestReader::Limits limits;
};

/// See the file comment. Construct, Start(), and eventually Shutdown()
/// (the destructor calls it too). Thread-safe after Start: every public
/// accessor may be called from any thread.
class HttpServer {
 public:
  HttpServer(ModelRegistry registry, ServerOptions options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept thread. Fails if the address
  /// is unavailable.
  Status Start();

  /// The bound port (after a successful Start).
  int port() const { return port_; }

  /// The token Shutdown fires; external code may bind it into its own
  /// contexts or cancel it to drain the server remotely.
  exec::CancelToken cancel_token() const { return drain_; }

  /// Graceful drain: stop accepting, cancel every in-flight stream, join
  /// all threads. Idempotent; safe from any thread except a connection
  /// thread.
  void Shutdown();

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  void HandleQuery(int fd, RequestReader* reader, const HttpRequest& request,
                   const std::string& model_name);
  void HandleBatch(int fd, RequestReader* reader, const HttpRequest& request);
  // Joins connection threads that have announced completion.
  void ReapFinished();
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  ModelRegistry registry_;
  ServerOptions options_;
  AdmissionGate gate_;
  std::unique_ptr<exec::ThreadPool> pool_;  // null when threads <= 1
  exec::CancelToken drain_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::map<uint64_t, std::thread> connections_;
  std::vector<uint64_t> finished_;
  uint64_t next_connection_id_ = 0;

  // Serializes Shutdown() callers; shut_down_ makes it idempotent after
  // the joins complete.
  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace tms::serve

#endif  // TMS_SERVE_SERVER_H_
