#include "serve/registry.h"

#include "io/text_format.h"

namespace tms::serve {

StatusOr<ModelRegistry> ModelRegistry::Load(
    const std::vector<std::pair<std::string, std::string>>& specs) {
  ModelRegistry registry;
  for (const auto& [name, path] : specs) {
    auto text = io::ReadFile(path);
    if (!text.ok()) return text.status();
    auto mu = io::ParseMarkovSequence(*text);
    if (!mu.ok()) {
      return Status::InvalidArgument("model '" + name + "' (" + path +
                                     "): " + mu.status().ToString());
    }
    TMS_RETURN_IF_ERROR(registry.Insert(name, std::move(*mu)));
  }
  return registry;
}

Status ModelRegistry::Insert(const std::string& name,
                             markov::MarkovSequence mu) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (models_.count(name) != 0) {
    return Status::InvalidArgument("duplicate model name '" + name + "'");
  }
  models_.emplace(name, std::move(mu));
  return Status::Ok();
}

const markov::MarkovSequence* ModelRegistry::Find(
    const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : &it->second;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, mu] : models_) names.push_back(name);
  return names;
}

}  // namespace tms::serve
