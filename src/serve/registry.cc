#include "serve/registry.h"

#include "io/binary_format.h"
#include "io/text_format.h"
#include "optimize/artifact.h"
#include "optimize/transducer_opt.h"

namespace tms::serve {

StatusOr<ModelRegistry> ModelRegistry::Load(
    const std::vector<std::pair<std::string, std::string>>& specs) {
  ModelRegistry registry;
  for (const auto& [name, path] : specs) {
    // Cold-start fast path: a fingerprint-valid `<path>.tmsb` snapshot
    // skips the text parse; anything stale or corrupt is rejected loudly
    // and the text file stays authoritative (io/binary_format.h).
    auto mu = io::LoadMarkovSequenceFile(path, /*refresh_snapshot=*/true);
    if (!mu.ok()) {
      return Status::InvalidArgument("model '" + name + "' (" + path +
                                     "): " + mu.status().ToString());
    }
    TMS_RETURN_IF_ERROR(registry.Insert(name, std::move(*mu)));
  }
  return registry;
}

Status ModelRegistry::Insert(const std::string& name,
                             markov::MarkovSequence mu) {
  if (name.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (models_.count(name) != 0) {
    return Status::InvalidArgument("duplicate model name '" + name + "'");
  }
  models_.emplace(name, std::move(mu));
  return Status::Ok();
}

const markov::MarkovSequence* ModelRegistry::Find(
    const std::string& name) const {
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : &it->second;
}

Status ModelRegistry::Precompile(const std::string& model,
                                 const std::string& name,
                                 const std::string& query_path,
                                 optimize::Level level) {
  const std::string context =
      "precompile '" + model + ":" + name + "' (" + query_path + "): ";
  const markov::MarkovSequence* mu = Find(model);
  if (mu == nullptr) {
    return Status::InvalidArgument(context + "unknown model");
  }
  auto text = io::ReadFile(query_path);
  if (!text.ok()) return text.status();
  auto parsed = io::ParseTransducer(*text);
  if (!parsed.ok()) {
    return Status::InvalidArgument(context + parsed.status().ToString());
  }
  if (!(mu->nodes() == parsed->input_alphabet())) {
    return Status::InvalidArgument(
        context + "query input alphabet does not match the model alphabet");
  }
  if (!optimize::ShouldOptimize(level, *parsed)) {
    return InsertPrecompiled(model, name, std::move(*parsed));
  }
  // Cold-start fast path: a fingerprint-valid persisted artifact is the
  // optimized transducer; anything else (missing, stale, corrupted) falls
  // back to the on-the-fly pass. Rejections are already counted loudly by
  // the artifact layer — the server keeps serving correct answers either
  // way.
  const std::string artifact_path = query_path + ".opt";
  StatusOr<transducer::Transducer> optimized =
      optimize::LoadArtifactFile(artifact_path, *parsed);
  if (!optimized.ok()) {
    optimized = optimize::MinimizeTransducer(*parsed);
    // Best-effort persistence: a read-only query directory costs future
    // cold starts the pass, never the precompile itself.
    (void)optimize::SaveArtifactFile(artifact_path, *parsed, *optimized);
  }
  return InsertPrecompiled(model, name, std::move(*optimized));
}

Status ModelRegistry::InsertPrecompiled(const std::string& model,
                                        const std::string& name,
                                        transducer::Transducer t) {
  if (name.empty()) {
    return Status::InvalidArgument("precompiled name must be non-empty");
  }
  if (models_.count(model) == 0) {
    return Status::InvalidArgument("precompiled query '" + name +
                                   "' names unknown model '" + model + "'");
  }
  auto key = std::make_pair(model, name);
  if (precompiled_.count(key) != 0) {
    return Status::InvalidArgument("duplicate precompiled name '" + model +
                                   ":" + name + "'");
  }
  precompiled_.emplace(std::move(key), std::move(t));
  return Status::Ok();
}

const transducer::Transducer* ModelRegistry::FindPrecompiled(
    const std::string& model, const std::string& name) const {
  auto it = precompiled_.find(std::make_pair(model, name));
  return it == precompiled_.end() ? nullptr : &it->second;
}

std::vector<std::string> ModelRegistry::PrecompiledNames() const {
  std::vector<std::string> names;
  names.reserve(precompiled_.size());
  for (const auto& [key, t] : precompiled_) {
    names.push_back(key.first + ":" + key.second);
  }
  return names;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, mu] : models_) names.push_back(name);
  return names;
}

}  // namespace tms::serve
