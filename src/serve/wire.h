// The wire spellings shared by tms_cli and tms_server.
//
// A streamed /query response must be byte-identical (answer lines, in
// order) to what `tms_cli --stats=json` prints for the same model and
// query — the acceptance contract of the serving layer. The only way that
// stays true under refactors is if both binaries call the same
// serializers, so the answer-object and exec-outcome JSON builders (and
// the StopReason spelling they share) live here rather than in either
// tool.

#ifndef TMS_SERVE_WIRE_H_
#define TMS_SERVE_WIRE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "exec/run_context.h"

namespace tms::serve {

/// The stable wire spelling of a StopReason ("NONE", "ANSWER_CAP",
/// "BUDGET", "DEADLINE", "CANCELLED", "FAULT").
const char* StopReasonName(exec::StopReason reason);

/// Builds {"status":...,"reason":...,"truncated":...,"answers":N,"work":N}
/// for a bounded stream: the "exec" field of `tms_cli --stats=json` and
/// the `exec` member of a tms_server stream footer. An answer-cap stop is
/// status OK + reason ANSWER_CAP.
std::string ExecJson(const Status& status, exec::StopReason reason,
                     int64_t answers, int64_t work);

/// Appends {"answer":"...","<score_key>":s,"confidence":c} to *out — one
/// ranked answer, as one element of the CLI results array or one NDJSON
/// line of a server stream.
void AppendAnswerJson(const std::string& answer, const char* score_key,
                      double score, double confidence, std::string* out);

/// Appends {"key":"...","answer":"...","emax":s,"confidence":c} — one
/// globally ranked row of a sharded batch stream (docs/DISTRIBUTED.md).
/// Everything after the key reuses AppendAnswerJson's exact bytes, so a
/// batch row is a key-tagged answer line; `tms_cli batch --shards`, the
/// worker `/batch` endpoint, and the dist coordinator all emit rows
/// through here (the scores stay strtod-round-trippable — %.17g — which
/// is what lets the coordinator re-rank worker lines without reprinting
/// them).
void AppendBatchRowJson(const std::string& key, const std::string& answer,
                        double emax, double confidence, std::string* out);

}  // namespace tms::serve

#endif  // TMS_SERVE_WIRE_H_
