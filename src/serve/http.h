// Minimal HTTP/1.1 plumbing for tms_server: request parsing, response
// formatting, and chunked-transfer streaming over a raw socket.
//
// This is deliberately not a general HTTP implementation — it is the
// smallest self-contained subset (no external dependencies) that lets a
// long-lived server stream ranked answers incrementally:
//
//   * requests: one request line + headers + an optional Content-Length
//     body; no pipelining (every response carries Connection: close), no
//     percent-decoding (the server's parameters are plain integers and
//     identifiers), no Transfer-Encoding on the request side;
//   * responses: either a fixed body with Content-Length, or a chunked
//     stream where every chunk the server writes is one NDJSON line — a
//     client sees answer 1 at answer-1 delay, not after the full top-k;
//   * blocking socket I/O with a poll() loop on the read side so a
//     connection parked in "waiting for a request" still observes server
//     shutdown, and MSG_NOSIGNAL on the write side so a vanished client
//     is an error return, not SIGPIPE.
//
// The pure-parsing pieces (ParseRequestHead, ParseQueryParams) are
// separated from the fd-bound pieces (RequestReader, SendAll,
// ChunkedWriter) so they unit-test without sockets.

#ifndef TMS_SERVE_HTTP_H_
#define TMS_SERVE_HTTP_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace tms::serve {

/// One parsed request. Header names are lowercased at parse time; values
/// keep their bytes (leading/trailing whitespace stripped).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent)
  std::string path;    ///< target before '?', e.g. "/query/hospital"
  std::string query;   ///< raw query string after '?', or ""
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// The value of header `name` (lowercase), or nullptr.
  const std::string* FindHeader(std::string_view name) const;
};

/// Parses "k=5&deadline_ms=100" into (name, value) pairs, in order.
/// Pairs without '=' get an empty value. No percent-decoding.
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query);

/// The value of the first parameter named `name`, or nullptr.
const std::string* FindParam(
    const std::vector<std::pair<std::string, std::string>>& params,
    std::string_view name);

/// Parses the request head (request line + header lines, WITHOUT the
/// terminating blank line) into *out. InvalidArgument on malformed input;
/// only HTTP/1.0 and HTTP/1.1 are accepted.
Status ParseRequestHead(std::string_view head, HttpRequest* out);

/// Reason phrase for the status codes the server emits ("OK", "Bad
/// Request", ...); "Unknown" otherwise.
const char* HttpStatusText(int code);

/// A complete non-streaming response: status line, Content-Type,
/// Content-Length, Connection: close, optional extra raw header lines
/// (each "Name: value\r\n"), blank line, body.
std::string SimpleResponse(int code, std::string_view content_type,
                           std::string_view body,
                           std::string_view extra_headers = {});

/// The header block of a chunked streaming response (no body bytes).
std::string ChunkedResponseHead(int code, std::string_view content_type,
                                std::string_view extra_headers = {});

/// Writes all of `data` to `fd`, retrying short writes, MSG_NOSIGNAL.
/// False on any send error (client gone).
bool SendAll(int fd, std::string_view data);

/// Writes chunked-transfer chunks to a socket. The caller writes the
/// ChunkedResponseHead first, then one WriteChunk per NDJSON line, then
/// Finish(). Any false return means the client is gone; stop streaming.
class ChunkedWriter {
 public:
  explicit ChunkedWriter(int fd) : fd_(fd) {}

  /// One chunk (never call with empty data — an empty chunk terminates
  /// the stream in the chunked encoding).
  bool WriteChunk(std::string_view data);
  /// The terminal zero-length chunk.
  bool Finish();

 private:
  int fd_;
};

/// Reads one request from a connected socket in two stages, so the server
/// can make admission decisions after the head but before buffering the
/// body. poll()s in `poll_interval_ms` slices and consults `should_stop`
/// between slices, so a parked connection observes server shutdown.
///
/// Status vocabulary (mapped to responses by the server):
///   InvalidArgument  -> 400   malformed request
///   OutOfRange       -> 431/413  head or body over the size limit
///   Cancelled        -> server stopping; close without a response
///   NotFound         -> client closed the connection cleanly
///   Internal         -> socket error
class RequestReader {
 public:
  struct Limits {
    size_t max_head_bytes = 16 * 1024;
    size_t max_body_bytes = 1 << 20;
    int poll_interval_ms = 50;
  };

  // Two-arg overload uses default Limits (defined out of line: a default
  // argument would need Limits' member initializers before RequestReader
  // is complete).
  RequestReader(int fd, std::function<bool()> should_stop);
  RequestReader(int fd, std::function<bool()> should_stop, Limits limits);

  /// Reads and parses the request line + headers into *req.
  Status ReadHead(HttpRequest* req);
  /// Reads the Content-Length body (if any) into req->body. Call after
  /// ReadHead on the same reader — leftover bytes are carried over.
  Status ReadBody(HttpRequest* req);

 private:
  // Appends up to one recv() of bytes to buffer_; same Status vocabulary.
  Status FillSome();

  int fd_;
  std::function<bool()> should_stop_;
  Limits limits_;
  std::string buffer_;
};

}  // namespace tms::serve

#endif  // TMS_SERVE_HTTP_H_
