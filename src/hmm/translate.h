// HMM + observations → posterior Markov sequence (the paper's translation).
//
// Given an HMM and an observation string o_1…o_n, the conditional
// distribution of the hidden trajectory X_1…X_n given O = o is itself a
// (time-inhomogeneous) Markov chain — precisely a Markov sequence:
//
//   μ_0→(s)    = Pr(X_1 = s | O = o)
//   μ_i→(s, t) = Pr(X_{i+1} = t | X_i = s, O = o)
//
// computed here by the scaled forward–backward recursions. This is the
// step the paper assumes "has already taken place" (§1): tms queries the
// resulting Markov sequence, never the raw observations.

#ifndef TMS_HMM_TRANSLATE_H_
#define TMS_HMM_TRANSLATE_H_

#include "common/status.h"
#include "hmm/hmm.h"
#include "markov/markov_sequence.h"

namespace tms::hmm {

/// The posterior Markov sequence of `hmm` given `observations` (length n ≥
/// 1). Fails if the observation sequence has probability zero under the
/// model. Node set = the HMM's hidden-state alphabet.
StatusOr<markov::MarkovSequence> PosteriorMarkovSequence(
    const Hmm& hmm, const Str& observations);

/// log Pr(O = observations) under the HMM (−inf if impossible).
double ObservationLogLikelihood(const Hmm& hmm, const Str& observations);

}  // namespace tms::hmm

#endif  // TMS_HMM_TRANSLATE_H_
