#include "hmm/hmm.h"

#include <cmath>

#include "common/check.h"

namespace tms::hmm {
namespace {

constexpr double kTol = 1e-9;

Status CheckRows(const std::vector<double>& data, size_t rows, size_t cols,
                 const char* what) {
  if (data.size() != rows * cols) {
    return Status::InvalidArgument(std::string(what) + " has wrong size");
  }
  for (size_t r = 0; r < rows; ++r) {
    double sum = 0;
    for (size_t c = 0; c < cols; ++c) {
      double p = data[r * cols + c];
      if (!(p >= 0.0)) {
        return Status::InvalidArgument(std::string(what) +
                                       " has a negative probability");
      }
      sum += p;
    }
    if (std::abs(sum - 1.0) > kTol) {
      return Status::InvalidArgument(std::string(what) + " row " +
                                     std::to_string(r) +
                                     " does not sum to 1");
    }
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Hmm> Hmm::Create(Alphabet states, Alphabet observations,
                          std::vector<double> initial,
                          std::vector<double> transition,
                          std::vector<double> emission) {
  const size_t ns = states.size();
  const size_t no = observations.size();
  if (ns == 0 || no == 0) {
    return Status::InvalidArgument("HMM needs states and observations");
  }
  TMS_RETURN_IF_ERROR(CheckRows(initial, 1, ns, "initial distribution"));
  TMS_RETURN_IF_ERROR(CheckRows(transition, ns, ns, "transition matrix"));
  TMS_RETURN_IF_ERROR(CheckRows(emission, ns, no, "emission matrix"));
  Hmm out;
  out.states_ = std::move(states);
  out.observations_ = std::move(observations);
  out.initial_ = std::move(initial);
  out.transition_ = std::move(transition);
  out.emission_ = std::move(emission);
  return out;
}

double Hmm::Initial(Symbol state) const {
  TMS_DCHECK(states_.IsValid(state));
  return initial_[static_cast<size_t>(state)];
}

double Hmm::Transition(Symbol from, Symbol to) const {
  TMS_DCHECK(states_.IsValid(from) && states_.IsValid(to));
  return transition_[static_cast<size_t>(from) * states_.size() +
                     static_cast<size_t>(to)];
}

double Hmm::Emission(Symbol state, Symbol obs) const {
  TMS_DCHECK(states_.IsValid(state) && observations_.IsValid(obs));
  return emission_[static_cast<size_t>(state) * observations_.size() +
                   static_cast<size_t>(obs)];
}

std::pair<Str, Str> Hmm::Sample(int n, Rng& rng) const {
  TMS_CHECK(n >= 1);
  Str hidden, observed;
  hidden.reserve(static_cast<size_t>(n));
  observed.reserve(static_cast<size_t>(n));
  std::vector<double> weights(states_.size());
  std::vector<double> obs_weights(observations_.size());
  for (int t = 0; t < n; ++t) {
    for (size_t s = 0; s < states_.size(); ++s) {
      weights[s] = (t == 0) ? Initial(static_cast<Symbol>(s))
                            : Transition(hidden.back(),
                                         static_cast<Symbol>(s));
    }
    Symbol x = static_cast<Symbol>(rng.Categorical(weights));
    hidden.push_back(x);
    for (size_t o = 0; o < observations_.size(); ++o) {
      obs_weights[o] = Emission(x, static_cast<Symbol>(o));
    }
    observed.push_back(static_cast<Symbol>(rng.Categorical(obs_weights)));
  }
  return {hidden, observed};
}

}  // namespace tms::hmm
