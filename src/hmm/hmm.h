// Hidden Markov models.
//
// The paper's data model (Markov sequences) "represent[s] the output of
// statistical models such as HMMs; in particular, the distribution encoded
// by an HMM and a sequence of observations can be efficiently translated
// into a Markov sequence" (§1, footnote 1; Example 3.1 derives the
// hospital-RFID Markov sequence this way). This module provides the HMM
// substrate; hmm/translate.h implements the translation.

#ifndef TMS_HMM_HMM_H_
#define TMS_HMM_HMM_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::hmm {

/// A time-homogeneous HMM: hidden states X_t over `states`, observations
/// O_t over `observations`, with initial distribution π, transition matrix
/// T and emission matrix Ω (row = hidden state).
class Hmm {
 public:
  /// Validates and builds. `transition` and `emission` are row-major with
  /// |states| rows; rows must sum to 1 (tolerance 1e-9).
  static StatusOr<Hmm> Create(Alphabet states, Alphabet observations,
                              std::vector<double> initial,
                              std::vector<double> transition,
                              std::vector<double> emission);

  const Alphabet& states() const { return states_; }
  const Alphabet& observations() const { return observations_; }

  double Initial(Symbol state) const;
  double Transition(Symbol from, Symbol to) const;
  double Emission(Symbol state, Symbol obs) const;

  /// Raw row-major |S|×|S| transition matrix — contiguous access for the
  /// dense kernel layer (hmm/translate.cc forward–backward).
  const std::vector<double>& transition_matrix() const { return transition_; }
  /// Raw row-major |S|×|O| emission matrix.
  const std::vector<double>& emission_matrix() const { return emission_; }

  /// Samples a length-n trajectory: (hidden states, observations).
  std::pair<Str, Str> Sample(int n, Rng& rng) const;

 private:
  Hmm() = default;

  Alphabet states_;
  Alphabet observations_;
  std::vector<double> initial_;
  std::vector<double> transition_;  // row-major |S|×|S|
  std::vector<double> emission_;    // row-major |S|×|O|
};

}  // namespace tms::hmm

#endif  // TMS_HMM_HMM_H_
