#include "hmm/translate.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "kernels/backend.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"
#include "kernels/sparse.h"

namespace tms::hmm {
namespace {

struct ForwardBackward {
  // alpha[t][s] = Pr(X_{t+1} = s | o_1..o_{t+1}) (filtered, normalized);
  // c[t] = per-step normalizer; beta[t][s] = scaled backward variable with
  // beta[n-1][s] = 1 and
  //   beta[t][s] = (1/c[t+1]) Σ_u T[s][u] Ω[u](o_{t+2}) beta[t+1][u].
  std::vector<std::vector<double>> alpha;
  std::vector<std::vector<double>> beta;
  std::vector<double> c;
  bool possible = true;
};

ForwardBackward RunForwardBackward(const Hmm& hmm, const Str& o) {
  const int n = static_cast<int>(o.size());
  const size_t ns = hmm.states().size();
  ForwardBackward fb;
  fb.alpha.assign(static_cast<size_t>(n), std::vector<double>(ns, 0.0));
  fb.beta.assign(static_cast<size_t>(n), std::vector<double>(ns, 0.0));
  fb.c.assign(static_cast<size_t>(n), 0.0);

  for (size_t s = 0; s < ns; ++s) {
    fb.alpha[0][s] = hmm.Initial(static_cast<Symbol>(s)) *
                     hmm.Emission(static_cast<Symbol>(s), o[0]);
    fb.c[0] += fb.alpha[0][s];
  }
  if (fb.c[0] <= 0) {
    fb.possible = false;
    return fb;
  }
  for (size_t s = 0; s < ns; ++s) fb.alpha[0][s] /= fb.c[0];

  // A sparse HMM transition matrix (the auto policy of kernels/backend.h
  // decides) runs both recurrences over its CSR form. The skipped entries
  // are exact zeros of nonnegative sums taken in the same order, so the
  // posterior is bitwise identical on either path.
  const double* tdata = hmm.transition_matrix().data();
  size_t nnz = 0;
  for (size_t e = 0; e < ns * ns; ++e) nnz += tdata[e] > 0.0 ? 1 : 0;
  const double density =
      ns == 0 ? 1.0
              : static_cast<double>(nnz) / static_cast<double>(ns * ns);
  const bool sparse =
      kernels::ChooseBackend(kernels::BackendChoice::kAuto, density, ns,
                             /*has_sparse=*/true) ==
      kernels::Backend::kSparse;
  std::vector<int32_t> t_off, t_idx, tt_off, tt_idx;
  std::vector<double> t_val, tt_val;
  kernels::CsrView<double> t_csr, tt_csr;
  if (sparse) {
    kernels::BuildCsr(tdata, ns, ns, &t_off, &t_idx, &t_val);
    t_csr = {t_off.data(), t_idx.data(), t_val.data(), ns, ns, t_val.size()};
    kernels::BuildCsrTranspose(tdata, ns, ns, &tt_off, &tt_idx, &tt_val);
    tt_csr = {tt_off.data(), tt_idx.data(), tt_val.data(), ns, ns,
              tt_val.size()};
  }

  // α recurrence as a transposed gemv over the raw transition matrix:
  // cur[u] = Σ_s prev[s]·T(s,u). GemvT accumulates in ascending s — the
  // same order as the scalar loop this replaces, so results are
  // bit-identical (the hospital workload's Markov sequence, and hence the
  // max-plus answer streams derived from it, depend on that). SpGemvT is
  // s-outer ascending too, skipping only the zero terms.
  kernels::Matrix<double> t_m(const_cast<double*>(tdata), ns, ns);
  for (int t = 1; t < n; ++t) {
    auto& cur = fb.alpha[static_cast<size_t>(t)];
    const auto& prev = fb.alpha[static_cast<size_t>(t - 1)];
    kernels::Vector<double> prev_v(const_cast<double*>(prev.data()), ns);
    kernels::Vector<double> cur_v(cur.data(), ns);
    if (sparse) {
      kernels::SpGemvT<kernels::Real>(t_csr, prev_v, &cur_v);
    } else {
      kernels::GemvT<kernels::Real>(t_m, prev_v, &cur_v);
    }
    for (size_t u = 0; u < ns; ++u) {
      cur[u] *= hmm.Emission(static_cast<Symbol>(u),
                             o[static_cast<size_t>(t)]);
      fb.c[static_cast<size_t>(t)] += cur[u];
    }
    if (fb.c[static_cast<size_t>(t)] <= 0) {
      fb.possible = false;
      return fb;
    }
    for (size_t u = 0; u < ns; ++u) cur[u] /= fb.c[static_cast<size_t>(t)];
  }

  // β recurrence: cur[s] = Σ_u (T(s,u)·Ω(u,o_{t+2}))·next[u]. Staging
  // Mt(u,s) = T(s,u)·Ω(u,·) keeps the original association (T·Ω)·next and
  // the ascending-u order under GemvT — again bit-identical. The sparse
  // path scatters the stored (u,s) entries of the CSR transpose with the
  // same u-outer order and association, skipping only zero terms.
  std::vector<double> mt(sparse ? 0 : ns * ns);
  kernels::Matrix<double> mt_m(mt.data(), sparse ? 0 : ns, ns);
  for (size_t s = 0; s < ns; ++s) fb.beta[static_cast<size_t>(n - 1)][s] = 1.0;
  for (int t = n - 2; t >= 0; --t) {
    auto& cur = fb.beta[static_cast<size_t>(t)];
    const auto& next = fb.beta[static_cast<size_t>(t + 1)];
    if (sparse) {
      std::fill(cur.begin(), cur.end(), 0.0);
      for (size_t u = 0; u < ns; ++u) {
        const double em = hmm.Emission(static_cast<Symbol>(u),
                                       o[static_cast<size_t>(t + 1)]);
        for (int32_t e = tt_csr.row_off[u]; e < tt_csr.row_off[u + 1]; ++e) {
          const size_t s = static_cast<size_t>(tt_csr.col_idx[e]);
          cur[s] += (tt_csr.val[e] * em) * next[u];
        }
      }
    } else {
      for (size_t u = 0; u < ns; ++u) {
        const double em = hmm.Emission(static_cast<Symbol>(u),
                                       o[static_cast<size_t>(t + 1)]);
        double* mrow = mt_m.row(u);
        for (size_t s = 0; s < ns; ++s) {
          mrow[s] =
              hmm.Transition(static_cast<Symbol>(s), static_cast<Symbol>(u)) *
              em;
        }
      }
      kernels::Vector<double> next_v(const_cast<double*>(next.data()), ns);
      kernels::Vector<double> cur_v(cur.data(), ns);
      kernels::GemvT<kernels::Real>(mt_m, next_v, &cur_v);
    }
    const double cn = fb.c[static_cast<size_t>(t + 1)];
    for (size_t s = 0; s < ns; ++s) cur[s] /= cn;
  }
  return fb;
}

}  // namespace

StatusOr<markov::MarkovSequence> PosteriorMarkovSequence(
    const Hmm& hmm, const Str& observations) {
  if (observations.empty()) {
    return Status::InvalidArgument("observation sequence must be nonempty");
  }
  const int n = static_cast<int>(observations.size());
  const size_t ns = hmm.states().size();
  ForwardBackward fb = RunForwardBackward(hmm, observations);
  if (!fb.possible) {
    return Status::InvalidArgument(
        "observation sequence has probability zero under the HMM");
  }

  // Initial posterior: γ_1(s) = α̂_1(s)·β̂_1(s) (already normalized).
  std::vector<double> initial(ns, 0.0);
  double norm = 0;
  for (size_t s = 0; s < ns; ++s) {
    initial[s] = fb.alpha[0][s] * fb.beta[0][s];
    norm += initial[s];
  }
  TMS_CHECK(norm > 0);
  for (size_t s = 0; s < ns; ++s) initial[s] /= norm;

  // Posterior transitions:
  //   μ_t→(s,u) = T[s][u]·Ω[u](o_{t+1})·β̂_{t+1}(u) / (c_{t+1}·β̂_t(s)).
  std::vector<std::vector<double>> transitions(static_cast<size_t>(n - 1));
  for (int t = 1; t < n; ++t) {
    auto& matrix = transitions[static_cast<size_t>(t - 1)];
    matrix.assign(ns * ns, 0.0);
    for (size_t s = 0; s < ns; ++s) {
      double denom = fb.c[static_cast<size_t>(t)] *
                     fb.beta[static_cast<size_t>(t - 1)][s];
      double row_sum = 0;
      if (denom > 0) {
        for (size_t u = 0; u < ns; ++u) {
          double val =
              hmm.Transition(static_cast<Symbol>(s), static_cast<Symbol>(u)) *
              hmm.Emission(static_cast<Symbol>(u),
                           observations[static_cast<size_t>(t)]) *
              fb.beta[static_cast<size_t>(t)][u] / denom;
          matrix[s * ns + u] = val;
          row_sum += val;
        }
      }
      if (row_sum > 0) {
        // Re-normalize away floating-point drift.
        for (size_t u = 0; u < ns; ++u) matrix[s * ns + u] /= row_sum;
      } else {
        // State s is unreachable at time t given the observations; give it
        // an arbitrary valid row (it carries zero posterior mass).
        matrix[s * ns + s] = 1.0;
      }
    }
  }
  return markov::MarkovSequence::Create(hmm.states(), std::move(initial),
                                        std::move(transitions));
}

double ObservationLogLikelihood(const Hmm& hmm, const Str& observations) {
  if (observations.empty()) return 0.0;
  ForwardBackward fb = RunForwardBackward(hmm, observations);
  if (!fb.possible) return -std::numeric_limits<double>::infinity();
  double log_likelihood = 0;
  for (double c : fb.c) log_likelihood += std::log(c);
  return log_likelihood;
}

}  // namespace tms::hmm
