#include "dist/sharded_batch.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "dist/shard_plan.h"
#include "exec/fault.h"
#include "obs/obs.h"

namespace tms::dist {

std::vector<RankedRow> RankedReferenceRows(
    const std::vector<db::BatchEvaluator::SequenceResult>& results) {
  std::vector<RankedRow> rows;
  for (const db::BatchEvaluator::SequenceResult& r : results) {
    for (const query::AnswerInfo& info : r.answers) {
      rows.push_back(RankedRow{r.key, info});
    }
  }
  // Stable: the input is key-major with per-sequence rank order inside,
  // so rows tying on (score, key) — necessarily the same sequence — keep
  // their rank order.
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RankedRow& a, const RankedRow& b) {
                     if (a.answer.emax != b.answer.emax) {
                       return a.answer.emax > b.answer.emax;
                     }
                     return a.key < b.key;
                   });
  return rows;
}

bool ShardedBatchResult::complete() const {
  for (const ShardCoverage& c : coverage) {
    if (c.failed || c.truncated) return false;
  }
  return true;
}

StatusOr<ShardedBatchResult> EvaluateSharded(
    const db::SequenceCollection& collection, const transducer::Transducer& t,
    int k, const ShardedBatchOptions& options, bool with_confidence) {
  TMS_OBS_COUNT("dist.batches", 1);
  const std::vector<ShardRange> plan =
      PlanShards(collection.Keys(), options.shards);
  std::vector<std::unique_ptr<ShardSource>> sources;
  sources.reserve(plan.size());
  for (const ShardRange& range : plan) {
    ShardCoverage coverage;
    coverage.shard_id = range.shard_id;
    if (TMS_FAULT_POINT("dist.pre_shard")) {
      // The whole shard is gone before it evaluated anything — the
      // merged batch carries on without it.
      coverage.failed = true;
      coverage.status = Status::Internal("injected fault at dist.pre_shard");
      sources.push_back(
          std::make_unique<VectorShardSource>(std::vector<MergeEntry>(),
                                              std::move(coverage)));
      continue;
    }
    auto shard = BuildShard(collection, range);
    if (!shard.ok()) return shard.status();
    db::BatchEvaluator::Options batch_options;
    batch_options.threads = options.threads;
    batch_options.run = options.run;
    batch_options.backend = options.backend;
    batch_options.optimize = options.optimize;
    batch_options.cache_max_bytes = options.cache_max_bytes;
    auto batch = db::BatchEvaluator::Create(&*shard, &t, batch_options);
    if (!batch.ok()) return batch.status();
    std::vector<db::BatchEvaluator::SequenceResult> results =
        batch->EvaluateAll(k, with_confidence);
    coverage.sequences = static_cast<int64_t>(results.size());
    for (const db::BatchEvaluator::SequenceResult& r : results) {
      if (!r.status.ok()) ++coverage.failed_sequences;
      if (r.truncated) {
        coverage.truncated = true;
        if (coverage.reason == exec::StopReason::kNone) {
          coverage.reason = r.reason;
        }
      }
    }
    std::vector<MergeEntry> entries;
    for (RankedRow& row : RankedReferenceRows(results)) {
      MergeEntry entry;
      entry.key = std::move(row.key);
      entry.score = row.answer.emax;
      entry.answer = std::move(row.answer);
      entries.push_back(std::move(entry));
    }
    sources.push_back(std::make_unique<VectorShardSource>(
        std::move(entries), std::move(coverage)));
  }

  MergeStream merge(std::move(sources));
  ShardedBatchResult result;
  while (std::optional<MergeEntry> entry = merge.Next()) {
    result.rows.push_back(
        RankedRow{std::move(entry->key), std::move(entry->answer)});
  }
  result.coverage = merge.Coverage();
  return result;
}

}  // namespace tms::dist
