// Ranked k-way merge of per-shard answer streams (docs/DISTRIBUTED.md).
//
// Every per-shard stream obeys the paper's enumeration invariant: scores
// are nonincreasing. That is what makes a *bounded-lookahead* merge
// rank-preserving — the coordinator holds exactly one head entry per
// live stream in a heap, and the popped sequence is globally sorted
// under the total order
//
//     (score desc, key asc, per-source arrival order)
//
// which is byte-identical to the single-process BatchEvaluator ranking
// (keys are unique per shard and range sharding keeps them contiguous,
// so no cross-shard tie ever needs a shard id — see shard_plan.h).
//
// Failure semantics reuse the truncation contract (docs/ROBUSTNESS.md):
// a source that dies mid-stream (worker killed, connection dropped,
// injected fault) contributes the clean prefix it already produced; the
// merge keeps going with the survivors and reports per-shard coverage
// instead of aborting. A source that *violates* the nonincreasing-score
// invariant (a lying or corrupted worker) is closed at the first
// out-of-order entry — its prefix up to that point is still clean.

#ifndef TMS_DIST_MERGE_STREAM_H_
#define TMS_DIST_MERGE_STREAM_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/run_context.h"
#include "query/evaluator.h"

namespace tms::dist {

/// One ranked answer from one shard. `answer` carries the in-process
/// payload; remote sources additionally keep the worker's verbatim NDJSON
/// row in `line` so the coordinator can forward bytes untouched.
struct MergeEntry {
  std::string key;           // sequence key (unique across shards)
  double score = 0.0;        // the ranking score (E_max)
  query::AnswerInfo answer;  // in-process payload
  std::string line;          // remote payload: one NDJSON row, no '\n'
};

/// Per-shard outcome of a merged batch.
struct ShardCoverage {
  int shard_id = 0;
  int64_t sequences = 0;         // sequences this shard evaluated
  int64_t failed_sequences = 0;  // of those, ones with a non-OK Status
  int64_t answers = 0;           // entries that made it into the merge
  bool failed = false;     // stream died; its entries are a clean prefix
  bool truncated = false;  // shard self-reported truncation (RunContext)
  exec::StopReason reason = exec::StopReason::kNone;
  Status status;           // failure detail when failed
};

/// Serializes coverage as one JSON array — the "shards" member of the
/// merged stream's footer, shared byte-for-byte by `tms_cli batch
/// --shards`, `tms_cli dist`, and the coordinator:
///   [{"shard":0,"sequences":2,"failed_sequences":0,"answers":5,
///     "complete":true,"truncated":false,"reason":"NONE"[,"error":"…"]},…]
/// `complete` is `!failed && !truncated` — true iff this shard's answers
/// are its full ranked stream rather than a clean prefix.
std::string CoverageJson(const std::vector<ShardCoverage>& coverage);

/// A ranked entry stream from one shard. Implementations: the in-process
/// VectorShardSource below, and dist::RemoteShardSource (client.h).
class ShardSource {
 public:
  virtual ~ShardSource() = default;

  /// The next entry, or nullopt when the stream is over — cleanly or not;
  /// Coverage() tells which.
  virtual std::optional<MergeEntry> Next() = 0;

  /// The shard's outcome. Complete once Next() has returned nullopt;
  /// before that it reflects the stream so far.
  virtual ShardCoverage Coverage() const = 0;
};

/// An in-memory source over pre-ranked entries — the in-process sharded
/// path and the merge property tests. Honors the `dist.mid_stream` fault
/// point: an injected fault ends the stream early with failed coverage,
/// exactly like a worker killed mid-stream.
class VectorShardSource : public ShardSource {
 public:
  VectorShardSource(std::vector<MergeEntry> entries, ShardCoverage coverage)
      : entries_(std::move(entries)), coverage_(std::move(coverage)) {}

  std::optional<MergeEntry> Next() override;
  ShardCoverage Coverage() const override { return coverage_; }

 private:
  std::vector<MergeEntry> entries_;
  size_t next_ = 0;
  ShardCoverage coverage_;
};

/// The bounded-lookahead heap merge. Pull entries with Next() until
/// nullopt, then read the per-shard outcome from Coverage().
class MergeStream {
 public:
  explicit MergeStream(std::vector<std::unique_ptr<ShardSource>> sources);

  /// The globally best remaining entry, or nullopt when every stream is
  /// drained (or closed by failure).
  std::optional<MergeEntry> Next();

  /// Per-shard coverage, indexed by source order. Final once Next() has
  /// returned nullopt.
  std::vector<ShardCoverage> Coverage() const;

  /// Total entries merged so far.
  int64_t answers() const { return answers_; }

  /// A heap element: one stream's current head (public for the order
  /// functor in merge_stream.cc).
  struct Head {
    MergeEntry entry;
    size_t source;
  };

 private:
  struct PerSource {
    bool done = false;
    bool has_prev = false;
    double prev_score = 0.0;
    std::string prev_key;
    int64_t answers = 0;
    // Set when the merge itself closes the stream (order violation).
    std::optional<Status> forced_failure;
  };

  /// Fetches the next head from source `i`, enforcing the nonincreasing
  /// invariant; on violation closes the stream with a clean prefix.
  void Pull(size_t i);
  void PushHead(Head head);
  void Finish();

  std::vector<std::unique_ptr<ShardSource>> sources_;
  std::vector<PerSource> state_;
  std::vector<Head> heap_;
  int64_t answers_ = 0;
  int64_t start_ns_ = 0;
  bool finished_ = false;
};

}  // namespace tms::dist

#endif  // TMS_DIST_MERGE_STREAM_H_
