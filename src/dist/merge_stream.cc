#include "dist/merge_stream.h"

#include <algorithm>
#include <utility>

#include "exec/fault.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "serve/wire.h"

namespace tms::dist {

namespace {

// std::*_heap keeps the *greatest* element (under the comparator) at the
// front, so "less" here means "merges later": lower score, then greater
// key, then greater source index (the source index is unreachable for
// honest range-sharded inputs — keys are unique — but keeps the order
// total and deterministic against misbehaving workers).
struct HeadOrder {
  bool operator()(const MergeStream::Head& a,
                  const MergeStream::Head& b) const {
    if (a.entry.score != b.entry.score) return a.entry.score < b.entry.score;
    if (a.entry.key != b.entry.key) return a.entry.key > b.entry.key;
    return a.source > b.source;
  }
};

}  // namespace

std::optional<MergeEntry> VectorShardSource::Next() {
  if (next_ >= entries_.size()) return std::nullopt;
  if (TMS_FAULT_POINT("dist.mid_stream")) {
    // The stream dies here, mid-flight: everything already emitted is a
    // clean prefix, everything else is lost — same contract as a worker
    // process killed between two chunks.
    coverage_.failed = true;
    coverage_.status =
        Status::Internal("injected fault at dist.mid_stream");
    next_ = entries_.size();
    return std::nullopt;
  }
  return entries_[next_++];
}

MergeStream::MergeStream(std::vector<std::unique_ptr<ShardSource>> sources)
    : sources_(std::move(sources)), state_(sources_.size()) {
  start_ns_ = obs::MonotonicNanos();
  TMS_OBS_COUNT("dist.merge.streams", static_cast<int64_t>(sources_.size()));
  heap_.reserve(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) Pull(i);
}

void MergeStream::PushHead(Head head) {
  heap_.push_back(std::move(head));
  std::push_heap(heap_.begin(), heap_.end(), HeadOrder());
}

void MergeStream::Pull(size_t i) {
  PerSource& st = state_[i];
  std::optional<MergeEntry> entry = sources_[i]->Next();
  if (!entry) {
    st.done = true;
    return;
  }
  if (st.has_prev &&
      (entry->score > st.prev_score ||
       (entry->score == st.prev_score && entry->key < st.prev_key))) {
    // The shard broke the nonincreasing-score invariant. Trusting it
    // further could reorder the global stream, so close it here: the
    // prefix already merged is still correctly ranked.
    TMS_OBS_COUNT("dist.merge.order_violations", 1);
    st.done = true;
    st.forced_failure = Status::InvalidArgument(
        "shard stream out of order: score " + std::to_string(entry->score) +
        " for key '" + entry->key + "' after " +
        std::to_string(st.prev_score) + " for key '" + st.prev_key + "'");
    return;
  }
  st.has_prev = true;
  st.prev_score = entry->score;
  st.prev_key = entry->key;
  PushHead(Head{*std::move(entry), i});
}

std::optional<MergeEntry> MergeStream::Next() {
  if (heap_.empty()) {
    Finish();
    return std::nullopt;
  }
  std::pop_heap(heap_.begin(), heap_.end(), HeadOrder());
  Head best = std::move(heap_.back());
  heap_.pop_back();
  state_[best.source].answers++;
  ++answers_;
  TMS_OBS_COUNT("dist.merge.answers", 1);
  Pull(best.source);
  return std::move(best.entry);
}

void MergeStream::Finish() {
  if (finished_) return;
  finished_ = true;
  TMS_OBS_HISTOGRAM("dist.merge.merge_ns",
                    obs::MonotonicNanos() - start_ns_);
#if TMS_OBS_ACTIVE
  for (const ShardCoverage& c : Coverage()) {
    if (c.failed) TMS_OBS_COUNT("dist.merge.failed_shards", 1);
    if (c.truncated) TMS_OBS_COUNT("dist.merge.truncated_shards", 1);
  }
#endif
}

std::string CoverageJson(const std::vector<ShardCoverage>& coverage) {
  std::string out = "[";
  bool first = true;
  for (const ShardCoverage& c : coverage) {
    if (!first) out += ',';
    first = false;
    out += "{\"shard\":";
    out += std::to_string(c.shard_id);
    out += ",\"sequences\":";
    out += std::to_string(c.sequences);
    out += ",\"failed_sequences\":";
    out += std::to_string(c.failed_sequences);
    out += ",\"answers\":";
    out += std::to_string(c.answers);
    out += ",\"complete\":";
    out += (!c.failed && !c.truncated) ? "true" : "false";
    out += ",\"truncated\":";
    out += c.truncated ? "true" : "false";
    out += ",\"reason\":\"";
    out += serve::StopReasonName(c.reason);
    out += '"';
    if (c.failed) {
      out += ",\"error\":\"";
      obs::AppendJsonEscaped(c.status.ToString(), &out);
      out += '"';
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::vector<ShardCoverage> MergeStream::Coverage() const {
  std::vector<ShardCoverage> coverage;
  coverage.reserve(sources_.size());
  for (size_t i = 0; i < sources_.size(); ++i) {
    ShardCoverage c = sources_[i]->Coverage();
    c.answers = state_[i].answers;
    if (state_[i].forced_failure) {
      c.failed = true;
      c.status = *state_[i].forced_failure;
    }
    coverage.push_back(std::move(c));
  }
  return coverage;
}

}  // namespace tms::dist
