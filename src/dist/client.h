// The coordinator's client side of the worker protocol
// (docs/DISTRIBUTED.md): a minimal blocking HTTP/1.1 client that streams
// one chunked NDJSON response line by line, and the ShardSource that
// adapts a worker's `/batch` stream to the k-way merge.
//
// serve/http.h is deliberately server-side only; this is the one place
// in the tree that speaks the client half, and it only needs the subset
// tms_server emits: status line + headers, then either a Content-Length
// body or chunked transfer encoding.
//
// Failure mapping (the straggler contract): a connection that cannot be
// opened, times out, or hits EOF *before the terminal chunk* marks the
// shard failed — everything already received is a clean prefix and the
// merge keeps the survivors. A worker killed with SIGKILL mid-stream is
// indistinguishable from a mid-stream EOF, which is exactly the point.

#ifndef TMS_DIST_CLIENT_H_
#define TMS_DIST_CLIENT_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dist/merge_stream.h"

namespace tms::dist {

/// One worker endpoint.
struct WorkerAddress {
  std::string host;
  int port = 0;
};

/// Parses "host:port[,host:port...]" (the `--workers=` flag).
StatusOr<std::vector<WorkerAddress>> ParseWorkerList(std::string_view csv);

/// One streaming HTTP request. Construction sends the request and reads
/// the response head; NextLine() then yields body lines.
class HttpStream {
 public:
  struct Options {
    int connect_timeout_ms = 5000;
    /// Per-read timeout — bounds how long a silent worker can stall the
    /// merge before it is declared a straggler.
    int read_timeout_ms = 30000;
  };

  ~HttpStream();
  HttpStream(const HttpStream&) = delete;
  HttpStream& operator=(const HttpStream&) = delete;

  /// POSTs `body` to http://host:port<target> and reads the response
  /// head. A non-2xx status is returned as an error (with the response
  /// body in the message when small).
  static StatusOr<std::unique_ptr<HttpStream>> Post(
      const WorkerAddress& worker, const std::string& target,
      const std::string& body, const Options& options);

  int status_code() const { return status_code_; }

  /// The next body line (without '\n'); nullopt at the clean end of the
  /// stream (terminal chunk, or Content-Length exhausted). EOF or a
  /// timeout before that is an error: the worker died mid-stream.
  StatusOr<std::optional<std::string>> NextLine();

 private:
  HttpStream() = default;

  /// Refills buf_ from the socket. False at EOF; error via *status.
  bool Fill(Status* status);
  /// Appends up to `max` decoded body bytes to body_, honoring the
  /// transfer encoding. Sets body_done_ at the clean end.
  Status Decode();

  int fd_ = -1;
  int status_code_ = 0;
  bool chunked_ = false;
  long long content_left_ = 0;  // when !chunked_
  long long chunk_left_ = 0;    // bytes left in the current chunk
  bool body_done_ = false;
  bool saw_eof_ = false;
  std::string buf_;    // raw bytes from the socket, not yet decoded
  std::string body_;   // decoded body bytes, not yet returned as lines
};

/// Adapts one worker's `/batch` NDJSON stream to the merge. Rows pass
/// through with their verbatim bytes in MergeEntry::line (the merge key
/// and score are extracted, never re-serialized); the trailing
/// {"done":true,...} footer becomes the shard's coverage.
class RemoteShardSource : public ShardSource {
 public:
  /// `stream` may be an error (connection refused, non-2xx): the source
  /// is then born failed and empty — the batch continues without it.
  RemoteShardSource(int shard_id,
                    StatusOr<std::unique_ptr<HttpStream>> stream);

  std::optional<MergeEntry> Next() override;
  ShardCoverage Coverage() const override { return coverage_; }

 private:
  void Fail(Status status);

  std::unique_ptr<HttpStream> stream_;
  ShardCoverage coverage_;
  bool done_ = false;
};

}  // namespace tms::dist

#endif  // TMS_DIST_CLIENT_H_
