// In-process sharded batch evaluation (docs/DISTRIBUTED.md).
//
// The single-process reference and the sharded path live side by side so
// the differential suite can pin them against each other:
//
//   * RankedReferenceRows() turns db::BatchEvaluator::EvaluateAll output
//     (key order) into the *globally ranked* stream — the order every
//     sharded merge must reproduce byte for byte;
//   * EvaluateSharded() partitions the collection with shard_plan.h,
//     evaluates each shard with its own BatchEvaluator (own composition
//     cache — mimicking process isolation; the cache never changes
//     results, so equivalence holds), and k-way-merges the per-shard
//     ranked streams with MergeStream.
//
// Fault points (exec/fault.h): `dist.pre_shard` fails a whole shard
// before it evaluates; `dist.mid_stream` (in VectorShardSource) kills a
// shard's stream between two entries. Either way the merged output keeps
// the survivors' answers in correct global order and the coverage vector
// says exactly what was lost.

#ifndef TMS_DIST_SHARDED_BATCH_H_
#define TMS_DIST_SHARDED_BATCH_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "dist/merge_stream.h"
#include "exec/run_context.h"
#include "kernels/backend.h"
#include "optimize/level.h"
#include "transducer/composition_cache.h"
#include "transducer/transducer.h"

namespace tms::dist {

/// One globally ranked row: a (sequence, answer) pair.
struct RankedRow {
  std::string key;
  query::AnswerInfo answer;
};

/// Flattens per-sequence batch results (key order, per-sequence rank
/// order) into the globally ranked order:
///     (E_max desc, key asc, per-sequence rank asc).
/// This is the single-process reference stream of the shard-equivalence
/// contract. Failed sequences contribute no rows (their isolation is
/// per-sequence — see BatchEvaluator::EvaluateAll).
std::vector<RankedRow> RankedReferenceRows(
    const std::vector<db::BatchEvaluator::SequenceResult>& results);

struct ShardedBatchOptions {
  int shards = 1;
  /// Per-shard evaluation concurrency (BatchEvaluator::Options::threads).
  int threads = 1;
  /// Optional, non-owning: bounds the whole sharded batch (shared
  /// deadline / budget / cancel, per-sequence answer cap) exactly like
  /// BatchEvaluator::Options::run.
  exec::RunContext* run = nullptr;
  kernels::BackendChoice backend = kernels::BackendChoice::kAuto;
  optimize::Level optimize = optimize::Level::kAuto;
  /// Per-shard composition-cache budget.
  size_t cache_max_bytes = transducer::CompositionCache::kDefaultMaxBytes;
};

struct ShardedBatchResult {
  std::vector<RankedRow> rows;          // globally ranked
  std::vector<ShardCoverage> coverage;  // one entry per shard
  /// True iff every shard delivered its full stream (no failure, no
  /// truncation) — when true, `rows` equals the single-process reference.
  bool complete() const;
};

/// Evaluates `t` against every sequence of `collection`, split across
/// `options.shards` shards, and merges the per-shard ranked streams.
/// With no faults and no limits the row stream is byte-identical to
/// RankedReferenceRows() of a single-process EvaluateAll at any shard
/// count, thread count, and backend.
StatusOr<ShardedBatchResult> EvaluateSharded(
    const db::SequenceCollection& collection, const transducer::Transducer& t,
    int k, const ShardedBatchOptions& options, bool with_confidence = true);

}  // namespace tms::dist

#endif  // TMS_DIST_SHARDED_BATCH_H_
