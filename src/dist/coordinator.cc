#include "dist/coordinator.h"

#include <memory>
#include <optional>
#include <utility>

#include "obs/obs.h"

namespace tms::dist {

bool DistOutcome::complete() const {
  for (const ShardCoverage& c : coverage) {
    if (c.failed || c.truncated) return false;
  }
  return true;
}

DistOutcome ScatterGather(
    const std::vector<WorkerAddress>& workers, const std::string& query_body,
    const CoordinatorOptions& options,
    const std::function<bool(const std::string&)>& emit) {
  TMS_OBS_COUNT("dist.coordinator.batches", 1);
  // Scatter first, merge second: every worker is evaluating while the
  // coordinator is still opening connections to the rest.
  std::string target = "/batch";
  if (!options.params.empty()) target += "?" + options.params;
  std::vector<std::unique_ptr<ShardSource>> sources;
  sources.reserve(workers.size());
  for (size_t i = 0; i < workers.size(); ++i) {
    sources.push_back(std::make_unique<RemoteShardSource>(
        static_cast<int>(i),
        HttpStream::Post(workers[i], target, query_body, options.client)));
  }

  MergeStream merge(std::move(sources));
  DistOutcome outcome;
  while (std::optional<MergeEntry> entry = merge.Next()) {
    ++outcome.answers;
    if (!emit(entry->line)) break;
  }
  outcome.coverage = merge.Coverage();
  return outcome;
}

}  // namespace tms::dist
