// The scatter/gather coordinator (docs/DISTRIBUTED.md): one query goes
// out to every worker's `POST /batch` endpoint, the per-shard ranked
// NDJSON streams come back, and a MergeStream folds them into a single
// globally ranked stream.
//
// The coordinator never re-serializes an answer: merged rows are the
// workers' verbatim line bytes (byte-identical to what a single-process
// `tms_cli batch --shards` prints), and the trailing footer carries the
// per-shard coverage. A worker that cannot be reached, dies mid-stream,
// or reports truncation degrades coverage — it never fails the batch.

#ifndef TMS_DIST_COORDINATOR_H_
#define TMS_DIST_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/client.h"
#include "dist/merge_stream.h"

namespace tms::dist {

struct CoordinatorOptions {
  /// Raw query-string forwarded to every worker ("k=3&deadline_ms=100");
  /// may be empty.
  std::string params;
  HttpStream::Options client;
};

/// Outcome of one scattered batch.
struct DistOutcome {
  std::vector<ShardCoverage> coverage;  // one per worker, in worker order
  int64_t answers = 0;                  // merged rows emitted
  /// True iff every worker delivered its complete stream.
  bool complete() const;
};

/// Scatters `query_body` to `workers` (worker i is shard i), merges the
/// ranked streams, and calls `emit` once per merged row with the worker's
/// verbatim NDJSON line (no trailing '\n'). If `emit` returns false the
/// merge stops early (client went away); coverage then reflects what was
/// merged so far.
DistOutcome ScatterGather(const std::vector<WorkerAddress>& workers,
                          const std::string& query_body,
                          const CoordinatorOptions& options,
                          const std::function<bool(const std::string&)>& emit);

}  // namespace tms::dist

#endif  // TMS_DIST_COORDINATOR_H_
