#include "dist/client.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/obs.h"

namespace tms::dist {

namespace {

constexpr size_t kReadChunk = 16 * 1024;
constexpr size_t kMaxHead = 16 * 1024;

// ---- tiny JSON field extraction -----------------------------------------
//
// The worker stream is our own wire format (serve/wire.cc), so a
// field-marker scan is enough — but the values still get a real string
// unescape so a key like `a"b` round-trips.

bool UnescapeJsonString(std::string_view raw, std::string* out) {
  out->clear();
  for (size_t i = 0; i < raw.size(); ++i) {
    char c = raw[i];
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= raw.size()) return false;
    switch (raw[i]) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (i + 4 >= raw.size()) return false;
        unsigned value = 0;
        for (int k = 0; k < 4; ++k) {
          char h = raw[i + 1 + k];
          value <<= 4;
          if (h >= '0' && h <= '9') value |= h - '0';
          else if (h >= 'a' && h <= 'f') value |= h - 'a' + 10;
          else if (h >= 'A' && h <= 'F') value |= h - 'A' + 10;
          else return false;
        }
        i += 4;
        // Our escaper only emits \u00XX (control bytes).
        if (value > 0xff) return false;
        out->push_back(static_cast<char>(value));
        break;
      }
      default: return false;
    }
  }
  return true;
}

/// Finds `"name":"<value>"` and unescapes the value.
bool FindStringField(std::string_view line, std::string_view name,
                     std::string* out) {
  std::string marker = "\"" + std::string(name) + "\":\"";
  const size_t at = line.find(marker);
  if (at == std::string_view::npos) return false;
  size_t i = at + marker.size();
  const size_t start = i;
  while (i < line.size()) {
    if (line[i] == '\\') {
      i += 2;
      continue;
    }
    if (line[i] == '"') break;
    ++i;
  }
  if (i >= line.size()) return false;
  return UnescapeJsonString(line.substr(start, i - start), out);
}

bool FindNumberField(std::string_view line, std::string_view name,
                     double* out) {
  std::string marker = "\"" + std::string(name) + "\":";
  const size_t at = line.find(marker);
  if (at == std::string_view::npos) return false;
  // %.17g doubles round-trip exactly through strtod, so the score the
  // merge orders by is bit-identical to the one the worker ranked by.
  const std::string tail(line.substr(at + marker.size()));
  char* end = nullptr;
  errno = 0;
  double value = std::strtod(tail.c_str(), &end);
  if (end == tail.c_str() || errno == ERANGE) return false;
  *out = value;
  return true;
}

bool FindIntField(std::string_view line, std::string_view name,
                  int64_t* out) {
  double value;
  if (!FindNumberField(line, name, &value)) return false;
  *out = static_cast<int64_t>(value);
  return true;
}

bool FindBoolField(std::string_view line, std::string_view name, bool* out) {
  std::string marker = "\"" + std::string(name) + "\":";
  const size_t at = line.find(marker);
  if (at == std::string_view::npos) return false;
  *out = line.substr(at + marker.size(), 4) == "true";
  return true;
}

}  // namespace

StatusOr<std::vector<WorkerAddress>> ParseWorkerList(std::string_view csv) {
  std::vector<WorkerAddress> workers;
  while (!csv.empty()) {
    const size_t comma = csv.find(',');
    std::string_view item =
        comma == std::string_view::npos ? csv : csv.substr(0, comma);
    csv = comma == std::string_view::npos ? std::string_view()
                                          : csv.substr(comma + 1);
    const size_t colon = item.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 >= item.size()) {
      return Status::InvalidArgument("worker must be host:port: '" +
                                     std::string(item) + "'");
    }
    WorkerAddress w;
    w.host = std::string(item.substr(0, colon));
    for (char c : item.substr(colon + 1)) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("bad worker port in '" +
                                       std::string(item) + "'");
      }
      w.port = w.port * 10 + (c - '0');
    }
    if (w.port <= 0 || w.port > 65535) {
      return Status::InvalidArgument("bad worker port in '" +
                                     std::string(item) + "'");
    }
    workers.push_back(std::move(w));
  }
  if (workers.empty()) {
    return Status::InvalidArgument("empty worker list");
  }
  return workers;
}

HttpStream::~HttpStream() {
  if (fd_ >= 0) ::close(fd_);
}

bool HttpStream::Fill(Status* status) {
  if (saw_eof_) return false;
  char tmp[kReadChunk];
  const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
  if (n > 0) {
    buf_.append(tmp, static_cast<size_t>(n));
    return true;
  }
  if (n == 0) {
    saw_eof_ = true;
    return false;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    *status = Status::DeadlineExceeded("worker read timed out");
  } else {
    *status = Status::Internal(std::string("worker read failed: ") +
                               std::strerror(errno));
  }
  return false;
}

Status HttpStream::Decode() {
  // Moves bytes buf_ → body_ according to the transfer encoding; sets
  // body_done_ when the body has cleanly ended.
  if (!chunked_) {
    if (content_left_ > 0 && !buf_.empty()) {
      const size_t take =
          std::min<long long>(content_left_, static_cast<long long>(buf_.size()));
      body_.append(buf_, 0, take);
      buf_.erase(0, take);
      content_left_ -= static_cast<long long>(take);
    }
    if (content_left_ == 0) body_done_ = true;
    return Status::Ok();
  }
  for (;;) {
    if (chunk_left_ > 0) {
      if (buf_.empty()) return Status::Ok();
      const size_t take =
          std::min<long long>(chunk_left_, static_cast<long long>(buf_.size()));
      body_.append(buf_, 0, take);
      buf_.erase(0, take);
      chunk_left_ -= static_cast<long long>(take);
      continue;
    }
    // Between chunks: expect [\r\n] <hex-size> \r\n. The first chunk has
    // no leading CRLF; later ones do (the previous chunk's trailer).
    size_t start = 0;
    if (buf_.substr(0, 2) == "\r\n") start = 2;
    const size_t eol = buf_.find("\r\n", start);
    if (eol == std::string::npos) {
      if (buf_.size() > kMaxHead) {
        return Status::Internal("oversized chunk header from worker");
      }
      return Status::Ok();  // need more bytes
    }
    const std::string size_line = buf_.substr(start, eol - start);
    char* end = nullptr;
    const long long size = std::strtoll(size_line.c_str(), &end, 16);
    if (end == size_line.c_str() || size < 0) {
      return Status::Internal("bad chunk size from worker: '" + size_line +
                              "'");
    }
    buf_.erase(0, eol + 2);
    if (size == 0) {
      body_done_ = true;  // terminal chunk; trailing CRLF ignored
      return Status::Ok();
    }
    chunk_left_ = size;
  }
}

StatusOr<std::optional<std::string>> HttpStream::NextLine() {
  for (;;) {
    const size_t nl = body_.find('\n');
    if (nl != std::string::npos) {
      std::string line = body_.substr(0, nl);
      body_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return std::optional<std::string>(std::move(line));
    }
    if (body_done_) {
      if (!body_.empty()) {
        // A final unterminated fragment — the worker never writes one,
        // so this is a cut stream.
        return Status::Internal("worker stream ended mid-line");
      }
      return std::optional<std::string>();
    }
    if (saw_eof_) {
      // EOF from the peer before the clean end of the body, and no
      // complete line left in the decoded buffer: the worker died
      // mid-stream. (Complete lines received before the cut were already
      // emitted above — they are part of the clean prefix.)
      return Status::Internal("worker closed connection mid-stream");
    }
    Status status = Status::Ok();
    if (!Fill(&status)) {
      if (!status.ok()) return status;
      // EOF: decode whatever is buffered and loop — any fully received
      // line still counts.
    }
    Status decoded = Decode();
    if (!decoded.ok()) return decoded;
  }
}

StatusOr<std::unique_ptr<HttpStream>> HttpStream::Post(
    const WorkerAddress& worker, const std::string& target,
    const std::string& body, const Options& options) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* result = nullptr;
  const std::string port_text = std::to_string(worker.port);
  const int rc = ::getaddrinfo(worker.host.c_str(), port_text.c_str(), &hints,
                               &result);
  if (rc != 0) {
    return Status::Internal("resolve " + worker.host + ": " +
                               gai_strerror(rc));
  }
  int fd = -1;
  std::string connect_error = "no addresses";
  for (struct addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    struct timeval tv;
    tv.tv_sec = options.connect_timeout_ms / 1000;
    tv.tv_usec = (options.connect_timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    connect_error = std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    return Status::Internal("connect " + worker.host + ":" + port_text +
                               ": " + connect_error);
  }

  auto stream = std::unique_ptr<HttpStream>(new HttpStream());
  stream->fd_ = fd;
  struct timeval tv;
  tv.tv_sec = options.read_timeout_ms / 1000;
  tv.tv_usec = (options.read_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string request = "POST " + target + " HTTP/1.1\r\nHost: " +
                        worker.host + ":" + port_text +
                        "\r\nContent-Type: text/plain\r\nContent-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      return Status::Internal(std::string("send to worker failed: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  // Response head: status line + headers, terminated by CRLFCRLF.
  size_t head_end;
  for (;;) {
    head_end = stream->buf_.find("\r\n\r\n");
    if (head_end != std::string::npos) break;
    if (stream->buf_.size() > kMaxHead) {
      return Status::Internal("oversized response head from worker");
    }
    Status status = Status::Ok();
    if (!stream->Fill(&status)) {
      if (!status.ok()) return status;
      return Status::Internal("worker closed connection before response");
    }
  }
  const std::string head = stream->buf_.substr(0, head_end);
  stream->buf_.erase(0, head_end + 4);

  const size_t sp = head.find(' ');
  if (head.substr(0, 5) != "HTTP/" || sp == std::string::npos) {
    return Status::Internal("bad status line from worker: '" +
                            head.substr(0, head.find("\r\n")) + "'");
  }
  stream->status_code_ = std::atoi(head.c_str() + sp + 1);

  // Case-insensitive header scan for the two fields we care about.
  std::string lower = head;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  stream->chunked_ = lower.find("transfer-encoding: chunked") !=
                     std::string::npos;
  if (!stream->chunked_) {
    const size_t cl = lower.find("content-length:");
    stream->content_left_ =
        cl == std::string::npos ? 0 : std::atoll(head.c_str() + cl + 15);
  }

  if (stream->status_code_ < 200 || stream->status_code_ > 299) {
    std::string detail;
    // Best effort: drain a little of the error body for the message.
    for (int i = 0; i < 4 && !stream->body_done_; ++i) {
      Status status = Status::Ok();
      Status decoded = stream->Decode();
      if (!decoded.ok()) break;
      if (stream->body_done_ || stream->body_.size() > 256) break;
      if (!stream->Fill(&status)) break;
    }
    (void)stream->Decode();
    detail = stream->body_.substr(0, 256);
    while (!detail.empty() && (detail.back() == '\n' || detail.back() == '\r')) {
      detail.pop_back();
    }
    return Status::Internal(
        "worker answered HTTP " + std::to_string(stream->status_code_) +
        (detail.empty() ? "" : ": " + detail));
  }
  return stream;
}

RemoteShardSource::RemoteShardSource(
    int shard_id, StatusOr<std::unique_ptr<HttpStream>> stream) {
  coverage_.shard_id = shard_id;
  if (!stream.ok()) {
    Fail(stream.status());
    return;
  }
  stream_ = std::move(stream).value();
}

void RemoteShardSource::Fail(Status status) {
  TMS_OBS_COUNT("dist.client.shard_failures", 1);
  coverage_.failed = true;
  coverage_.status = std::move(status);
  done_ = true;
  stream_.reset();
}

std::optional<MergeEntry> RemoteShardSource::Next() {
  if (done_) return std::nullopt;
  auto line = stream_->NextLine();
  if (!line.ok()) {
    Fail(line.status());
    return std::nullopt;
  }
  if (!line->has_value()) {
    Fail(Status::Internal("worker stream ended without a footer"));
    return std::nullopt;
  }
  std::string row = **std::move(line);
  if (row.compare(0, 13, "{\"done\":true,") == 0 || row == "{\"done\":true}") {
    // The footer: the shard's own account of what it evaluated.
    (void)FindIntField(row, "sequences", &coverage_.sequences);
    (void)FindIntField(row, "failed_sequences", &coverage_.failed_sequences);
    bool truncated = false;
    if (FindBoolField(row, "truncated", &truncated)) {
      coverage_.truncated = truncated;
    }
    std::string reason;
    if (FindStringField(row, "reason", &reason)) {
      if (reason == "ANSWER_CAP") coverage_.reason = exec::StopReason::kAnswerCap;
      else if (reason == "BUDGET") coverage_.reason = exec::StopReason::kBudget;
      else if (reason == "DEADLINE") coverage_.reason = exec::StopReason::kDeadline;
      else if (reason == "CANCELLED") coverage_.reason = exec::StopReason::kCancelled;
      else if (reason == "FAULT") coverage_.reason = exec::StopReason::kFault;
    }
    done_ = true;
    stream_.reset();
    return std::nullopt;
  }
  MergeEntry entry;
  if (!FindStringField(row, "key", &entry.key) ||
      !FindNumberField(row, "emax", &entry.score)) {
    Fail(Status::Internal("unparseable row from worker: '" +
                          row.substr(0, 128) + "'"));
    return std::nullopt;
  }
  TMS_OBS_COUNT("dist.client.rows", 1);
  entry.line = std::move(row);
  return entry;
}

}  // namespace tms::dist
