// Shard planning — how a SequenceCollection is split across workers
// (docs/DISTRIBUTED.md).
//
// Shards are contiguous ranges of the collection's sorted key order
// (range sharding): shard 0 gets the lexicographically smallest keys.
// Sizes are balanced to within one key — the first size % shards shards
// get one extra. Contiguity is what makes the sharded merge order
// independent of the shard count: keys are unique across shards, so the
// global comparator (score desc, key asc) never needs a shard id to
// break a tie, and the merged stream is byte-identical for any N.

#ifndef TMS_DIST_SHARD_PLAN_H_
#define TMS_DIST_SHARD_PLAN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "db/collection.h"

namespace tms::dist {

/// One shard's contiguous slice of the sorted key order.
struct ShardRange {
  int shard_id = 0;
  std::vector<std::string> keys;  // sorted, possibly empty
};

/// Splits `keys` (already sorted — SequenceCollection::Keys() order) into
/// `shards` contiguous balanced ranges. Empty ranges are legal (more
/// shards than keys). `shards` must be >= 1.
std::vector<ShardRange> PlanShards(const std::vector<std::string>& keys,
                                   int shards);

/// Materializes one shard as its own SequenceCollection (sequences are
/// copied; transition steps are shared, so this is cheap). Keys missing
/// from `collection` are an error.
StatusOr<db::SequenceCollection> BuildShard(
    const db::SequenceCollection& collection, const ShardRange& range);

}  // namespace tms::dist

#endif  // TMS_DIST_SHARD_PLAN_H_
