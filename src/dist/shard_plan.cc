#include "dist/shard_plan.h"

#include <utility>

namespace tms::dist {

std::vector<ShardRange> PlanShards(const std::vector<std::string>& keys,
                                   int shards) {
  if (shards < 1) shards = 1;
  std::vector<ShardRange> plan(shards);
  const size_t base = keys.size() / shards;
  const size_t extra = keys.size() % shards;
  size_t next = 0;
  for (int s = 0; s < shards; ++s) {
    plan[s].shard_id = s;
    const size_t take = base + (static_cast<size_t>(s) < extra ? 1 : 0);
    for (size_t i = 0; i < take; ++i) plan[s].keys.push_back(keys[next++]);
  }
  return plan;
}

StatusOr<db::SequenceCollection> BuildShard(
    const db::SequenceCollection& collection, const ShardRange& range) {
  db::SequenceCollection shard(collection.nodes());
  for (const std::string& key : range.keys) {
    auto mu = collection.Get(key);
    if (!mu.ok()) return mu.status();
    Status inserted = shard.Insert(key, **mu);
    if (!inserted.ok()) return inserted;
  }
  return shard;
}

}  // namespace tms::dist
