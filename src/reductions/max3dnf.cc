#include "reductions/max3dnf.h"

#include <algorithm>

#include "common/check.h"
#include "numeric/rational.h"

namespace tms::reductions {

using numeric::Rational;

int Dnf3Formula::CountSatisfied(const std::vector<bool>& assignment) const {
  TMS_CHECK_EQ(static_cast<int>(assignment.size()), num_vars);
  int count = 0;
  for (const Dnf3Clause& c : clauses) {
    bool sat = true;
    for (int l = 0; l < 3; ++l) {
      if (assignment[static_cast<size_t>(c.var[l])] != c.positive[l]) {
        sat = false;
        break;
      }
    }
    if (sat) ++count;
  }
  return count;
}

int Dnf3Formula::BruteForceOptimum() const {
  TMS_CHECK(num_vars <= 25);
  int best = 0;
  for (uint32_t bits = 0; bits < (1u << num_vars); ++bits) {
    std::vector<bool> assignment(static_cast<size_t>(num_vars));
    for (int v = 0; v < num_vars; ++v) {
      assignment[static_cast<size_t>(v)] = (bits >> v) & 1u;
    }
    best = std::max(best, CountSatisfied(assignment));
  }
  return best;
}

Dnf3Formula Dnf3Formula::Random(int num_vars, int num_clauses, Rng& rng) {
  TMS_CHECK(num_vars >= 3);
  Dnf3Formula out;
  out.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    Dnf3Clause clause;
    // Three distinct variables.
    int v0 = static_cast<int>(rng.UniformInt(0, num_vars - 1));
    int v1 = v0;
    while (v1 == v0) v1 = static_cast<int>(rng.UniformInt(0, num_vars - 1));
    int v2 = v0;
    while (v2 == v0 || v2 == v1) {
      v2 = static_cast<int>(rng.UniformInt(0, num_vars - 1));
    }
    clause.var[0] = v0;
    clause.var[1] = v1;
    clause.var[2] = v2;
    for (int l = 0; l < 3; ++l) clause.positive[l] = rng.Bernoulli(0.5);
    out.clauses.push_back(clause);
  }
  return out;
}

namespace {

Status ValidateFormula(const Dnf3Formula& formula) {
  if (formula.num_vars < 3) {
    return Status::InvalidArgument("formula needs at least 3 variables");
  }
  if (formula.clauses.empty()) {
    return Status::InvalidArgument("formula needs at least one clause");
  }
  for (const Dnf3Clause& c : formula.clauses) {
    for (int l = 0; l < 3; ++l) {
      if (c.var[l] < 0 || c.var[l] >= formula.num_vars) {
        return Status::InvalidArgument("clause variable out of range");
      }
      for (int l2 = l + 1; l2 < 3; ++l2) {
        if (c.var[l] == c.var[l2]) {
          return Status::InvalidArgument(
              "clause variables must be distinct");
        }
      }
    }
  }
  return Status::Ok();
}

// P_j(v, bit): probability that clause j's forced walk assigns `bit` to
// variable v — 1 or 0 when v occurs in clause j, 1/2 otherwise.
Rational ForcedProb(const Dnf3Clause& c, int v, bool bit) {
  for (int l = 0; l < 3; ++l) {
    if (c.var[l] == v) {
      return c.positive[l] == bit ? Rational(1) : Rational(0);
    }
  }
  return Rational(1, 2);
}

double BaseMass(const Dnf3Formula& formula) {
  double mass = 1.0 / static_cast<double>(formula.clauses.size());
  for (int v = 0; v < formula.num_vars - 3; ++v) mass *= 0.5;
  return mass;
}

}  // namespace

StatusOr<Max3DnfInstance> Max3DnfToMealy(const Dnf3Formula& formula,
                                         int copies) {
  TMS_RETURN_IF_ERROR(ValidateFormula(formula));
  if (copies < 1) return Status::InvalidArgument("copies must be >= 1");
  const int m = formula.num_vars;
  const int k = static_cast<int>(formula.clauses.size());
  const int n = m * copies;

  // Input symbols (j, v, bit); outputs {0, 1}.
  Alphabet input;
  for (int j = 0; j < k; ++j) {
    for (int v = 0; v < m; ++v) {
      input.Intern("c" + std::to_string(j) + "v" + std::to_string(v) + "b0");
      input.Intern("c" + std::to_string(j) + "v" + std::to_string(v) + "b1");
    }
  }
  auto sym = [m](int j, int v, bool bit) {
    return static_cast<Symbol>(((j * m + v) << 1) | (bit ? 1 : 0));
  };
  Alphabet output;
  output.Intern("0");
  output.Intern("1");

  const size_t sigma = input.size();
  const Rational inv_k(1, k);
  std::vector<Rational> initial(sigma);
  for (int j = 0; j < k; ++j) {
    for (int bit = 0; bit < 2; ++bit) {
      initial[static_cast<size_t>(sym(j, 0, bit != 0))] =
          inv_k * ForcedProb(formula.clauses[static_cast<size_t>(j)], 0,
                             bit != 0);
    }
  }
  std::vector<std::vector<Rational>> transitions(
      static_cast<size_t>(n - 1), std::vector<Rational>(sigma * sigma));
  for (int pos = 1; pos < n; ++pos) {
    auto& matrix = transitions[static_cast<size_t>(pos - 1)];
    const int v_next = pos % m;  // 0-based variable at position pos+1
    const bool copy_boundary = (v_next == 0);
    for (int j = 0; j < k; ++j) {
      for (int bit = 0; bit < 2; ++bit) {
        const size_t row =
            static_cast<size_t>(sym(j, (pos - 1) % m, bit != 0)) * sigma;
        if (copy_boundary) {
          // Fresh clause choice for the next copy.
          for (int j2 = 0; j2 < k; ++j2) {
            for (int bit2 = 0; bit2 < 2; ++bit2) {
              matrix[row + static_cast<size_t>(sym(j2, 0, bit2 != 0))] =
                  inv_k *
                  ForcedProb(formula.clauses[static_cast<size_t>(j2)], 0,
                             bit2 != 0);
            }
          }
        } else {
          for (int bit2 = 0; bit2 < 2; ++bit2) {
            matrix[row + static_cast<size_t>(sym(j, v_next, bit2 != 0))] =
                ForcedProb(formula.clauses[static_cast<size_t>(j)], v_next,
                           bit2 != 0);
          }
        }
      }
    }
    // Rows for symbols of the wrong position never carry mass; give them a
    // valid arbitrary distribution (self-loop).
    for (size_t s = 0; s < sigma; ++s) {
      Rational sum;
      for (size_t t = 0; t < sigma; ++t) sum += matrix[s * sigma + t];
      if (sum.IsZero()) matrix[s * sigma + s] = Rational(1);
    }
  }

  auto mu = markov::MarkovSequence::CreateExact(input, std::move(initial),
                                                std::move(transitions));
  if (!mu.ok()) return mu.status();

  // One-state Mealy machine: ω((j, v, bit)) = bit.
  transducer::Transducer t(input, output, 1);
  t.SetAccepting(0, true);
  for (int j = 0; j < k; ++j) {
    for (int v = 0; v < m; ++v) {
      for (int bit = 0; bit < 2; ++bit) {
        TMS_RETURN_IF_ERROR(t.AddTransition(
            0, sym(j, v, bit != 0), 0, Str{static_cast<Symbol>(bit)}));
      }
    }
  }
  TMS_CHECK(t.IsMealy());

  Max3DnfInstance out{std::move(mu).value(), std::move(t),
                      BaseMass(formula), copies};
  return out;
}

StatusOr<Max3DnfInstance> Max3DnfToProjector(const Dnf3Formula& formula,
                                             int copies) {
  TMS_RETURN_IF_ERROR(ValidateFormula(formula));
  if (copies < 1) return Status::InvalidArgument("copies must be >= 1");
  const int m = formula.num_vars;
  const int k = static_cast<int>(formula.clauses.size());
  const int span = k * m;       // positions per copy
  const int n = span * copies;  // total length

  // Σ = {0, 1, a, b}: bits are emitted, a/b are dropped.
  Alphabet sigma_ab;
  const Symbol kBit0 = sigma_ab.Intern("0");
  const Symbol kBit1 = sigma_ab.Intern("1");
  const Symbol kPadA = sigma_ab.Intern("a");
  const Symbol kPadB = sigma_ab.Intern("b");
  const size_t sigma = sigma_ab.size();
  auto bit_sym = [&](bool bit) { return bit ? kBit1 : kBit0; };

  // Window-entry distribution at the start of window j (0-based): entering
  // worlds emit variable 0's bit under clause j's forcing.
  auto entry_prob = [&](int j, bool bit) {
    return ForcedProb(formula.clauses[static_cast<size_t>(j)], 0, bit);
  };
  // q_j = 1 / (k - j): the conditional entry probability that equalizes
  // all clause branches at 1/k (0-based j).
  auto q = [&](int j) { return Rational(1, k - j); };

  std::vector<Rational> initial(sigma);
  initial[static_cast<size_t>(bit_sym(false))] = q(0) * entry_prob(0, false);
  initial[static_cast<size_t>(bit_sym(true))] = q(0) * entry_prob(0, true);
  initial[static_cast<size_t>(kPadA)] = Rational(1) - q(0);

  std::vector<std::vector<Rational>> transitions(
      static_cast<size_t>(n - 1), std::vector<Rational>(sigma * sigma));
  for (int pos = 1; pos < n; ++pos) {
    auto& matrix = transitions[static_cast<size_t>(pos - 1)];
    auto set = [&](Symbol from, Symbol to, Rational p) {
      matrix[static_cast<size_t>(from) * sigma + static_cast<size_t>(to)] = p;
    };
    const int in_copy = pos % span;        // 0-based position of pos+1
    const int prev_in_copy = (pos - 1) % span;
    const bool copy_boundary = (in_copy == 0);
    const int j_next = in_copy / m;        // window of position pos+1
    const int v_next = in_copy % m;        // variable index at pos+1
    const int j_prev = prev_in_copy / m;

    if (copy_boundary) {
      // Restart: previous copy ended (either inside window k-1's last
      // bit, or in pad b). Fresh entry decision for window 0.
      for (Symbol from : {kBit0, kBit1, kPadB, kPadA}) {
        set(from, bit_sym(false), q(0) * entry_prob(0, false));
        set(from, bit_sym(true), q(0) * entry_prob(0, true));
        set(from, kPadA, Rational(1) - q(0));
      }
    } else {
      if (v_next == 0) {
        // Window j_next starts at pos+1: from pad a, enter or keep padding.
        Rational qq = q(j_next);
        set(kPadA, bit_sym(false),
            qq * ForcedProb(formula.clauses[static_cast<size_t>(j_next)], 0,
                            false));
        set(kPadA, bit_sym(true),
            qq * ForcedProb(formula.clauses[static_cast<size_t>(j_next)], 0,
                            true));
        if (j_next < k - 1) set(kPadA, kPadA, Rational(1) - qq);
        // A bit at the previous position means window j_prev just ended.
        set(kBit0, kPadB, Rational(1));
        set(kBit1, kPadB, Rational(1));
      } else {
        // Inside a window: bits advance to the next variable.
        for (int bit2 = 0; bit2 < 2; ++bit2) {
          Rational p = ForcedProb(
              formula.clauses[static_cast<size_t>(j_prev)], v_next,
              bit2 != 0);
          set(kBit0, bit_sym(bit2 != 0), p);
          set(kBit1, bit_sym(bit2 != 0), p);
        }
        set(kPadA, kPadA, Rational(1));
      }
      set(kPadB, kPadB, Rational(1));
    }
    // Unreachable rows get a valid self-loop.
    for (size_t s = 0; s < sigma; ++s) {
      Rational sum;
      for (size_t u = 0; u < sigma; ++u) sum += matrix[s * sigma + u];
      if (sum.IsZero()) matrix[s * sigma + s] = Rational(1);
    }
  }

  auto mu = markov::MarkovSequence::CreateExact(sigma_ab, std::move(initial),
                                                std::move(transitions));
  if (!mu.ok()) return mu.status();

  // Fixed one-state deterministic projector: emit bits, drop pads.
  transducer::Transducer t(sigma_ab, sigma_ab, 1);
  t.SetAccepting(0, true);
  TMS_RETURN_IF_ERROR(t.AddTransition(0, kBit0, 0, Str{kBit0}));
  TMS_RETURN_IF_ERROR(t.AddTransition(0, kBit1, 0, Str{kBit1}));
  TMS_RETURN_IF_ERROR(t.AddTransition(0, kPadA, 0, {}));
  TMS_RETURN_IF_ERROR(t.AddTransition(0, kPadB, 0, {}));
  TMS_CHECK(t.IsProjector());
  TMS_CHECK(t.IsDeterministic());

  Max3DnfInstance out{std::move(mu).value(), std::move(t),
                      BaseMass(formula), copies};
  return out;
}

StatusOr<std::vector<std::vector<bool>>> DecodeAssignments(
    const Max3DnfInstance& instance, const Str& output, int num_vars) {
  const size_t expected =
      static_cast<size_t>(num_vars) * static_cast<size_t>(instance.copies);
  if (output.size() != expected) {
    return Status::InvalidArgument("output has wrong length for decoding");
  }
  const Alphabet& delta = instance.t.output_alphabet();
  std::vector<std::vector<bool>> out(static_cast<size_t>(instance.copies));
  for (size_t i = 0; i < output.size(); ++i) {
    const std::string& name = delta.Name(output[i]);
    if (name != "0" && name != "1") {
      return Status::InvalidArgument("output contains a non-bit symbol");
    }
    out[i / static_cast<size_t>(num_vars)].push_back(name == "1");
  }
  return out;
}

}  // namespace tms::reductions
