// Independent-set family for s-projector top-answer hardness — Theorem 5.3.
//
// Theorem 5.3 reduces maximum independent set (inapproximable within
// |V|^{1-δ}, Håstad [19]) to (n^{1/2-δ})-approximating the top answer of a
// fixed simple s-projector. This module provides the instance family we
// use to exercise that regime:
//
//  * The Markov sequence walks over Σ = V ∪ {#}. A vertex symbol may be
//    followed (without an intervening #) only by a LARGER, NON-ADJACENT
//    vertex, so every maximal #-free run spells an increasing sequence of
//    pairwise-consecutively-nonadjacent vertices.
//  * The fixed simple s-projector [*]A[*] with A = "one or more vertex
//    symbols" extracts those runs.
//
// When the graph's non-adjacency is transitive along the vertex order
// (IsOrderTransitive()), a #-free run is exactly an independent set, so
// top answers encode independent sets faithfully. For general graphs the
// family still yields the adversarial many-occurrences-vs-high-mass
// instances on which the I_max/conf gap of Proposition 5.9 opens up; the
// bench (E11) measures that gap. We do not reproduce the paper's verbatim
// amplification (its proof is only sketched in the extended abstract); see
// DESIGN.md §5.

#ifndef TMS_REDUCTIONS_INDEPENDENT_SET_H_
#define TMS_REDUCTIONS_INDEPENDENT_SET_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "projector/sprojector.h"

namespace tms::reductions {

/// A simple undirected graph on vertices 0..num_vertices-1.
struct Graph {
  int num_vertices = 0;
  std::vector<bool> adj;  ///< row-major adjacency matrix

  bool HasEdge(int u, int v) const {
    return adj[static_cast<size_t>(u) * static_cast<size_t>(num_vertices) +
               static_cast<size_t>(v)];
  }
  void AddEdge(int u, int v);

  /// Largest independent set size by brute force (≤ 25 vertices).
  int BruteForceMaxIndependentSet() const;

  /// True iff for all u < v < w: ¬E(u,v) ∧ ¬E(v,w) ⇒ ¬E(u,w) — the
  /// condition under which chain runs encode independent sets exactly.
  bool IsOrderTransitive() const;

  /// Erdős–Rényi graph with edge probability p.
  static Graph Random(int num_vertices, double edge_prob, Rng& rng);
};

/// A generated s-projector hardness instance.
struct IndependentSetInstance {
  markov::MarkovSequence mu;
  projector::SProjector p;  ///< fixed simple s-projector [*]vertex+[*]
};

/// Builds the instance over a length-n walk. `stay_prob` is the chance of
/// emitting # (resetting the run) at each step.
StatusOr<IndependentSetInstance> IndependentSetToSProjector(const Graph& g,
                                                            int n,
                                                            double stay_prob);

}  // namespace tms::reductions

#endif  // TMS_REDUCTIONS_INDEPENDENT_SET_H_
