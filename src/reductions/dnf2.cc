#include "reductions/dnf2.h"

#include <set>

#include "common/check.h"
#include "numeric/rational.h"

namespace tms::reductions {

using numeric::BigInt;
using numeric::Rational;

BigInt Dnf2Formula::BruteForceCount() const {
  TMS_CHECK(num_x + num_y <= 25);
  const int total = num_x + num_y;
  int64_t count = 0;
  for (uint32_t bits = 0; bits < (1u << total); ++bits) {
    bool sat = false;
    for (const auto& [i, j] : terms) {
      if (((bits >> i) & 1u) != 0 && ((bits >> (num_x + j)) & 1u) != 0) {
        sat = true;
        break;
      }
    }
    if (sat) ++count;
  }
  return BigInt(count);
}

Dnf2Formula Dnf2Formula::Random(int num_x, int num_y, int num_terms,
                                Rng& rng) {
  TMS_CHECK(num_x >= 1 && num_y >= 1);
  TMS_CHECK(num_terms <= num_x * num_y);
  Dnf2Formula out;
  out.num_x = num_x;
  out.num_y = num_y;
  std::set<std::pair<int, int>> seen;
  while (static_cast<int>(seen.size()) < num_terms) {
    int i = static_cast<int>(rng.UniformInt(0, num_x - 1));
    int j = static_cast<int>(rng.UniformInt(0, num_y - 1));
    if (seen.insert({i, j}).second) out.terms.push_back({i, j});
  }
  return out;
}

StatusOr<automata::Nfa> Dnf2ToNfa(const Dnf2Formula& formula) {
  if (formula.num_x < 1 || formula.num_y < 1) {
    return Status::InvalidArgument("formula needs x and y variables");
  }
  if (formula.terms.empty()) {
    return Status::InvalidArgument("formula needs at least one term");
  }
  for (const auto& [i, j] : formula.terms) {
    if (i < 0 || i >= formula.num_x || j < 0 || j >= formula.num_y) {
      return Status::InvalidArgument("term variable out of range");
    }
  }
  Alphabet bits;
  const Symbol zero = bits.Intern("0");
  const Symbol one = bits.Intern("1");
  const int p = formula.num_x;
  const int q = formula.num_y;
  const int total = p + q;
  const int terms = static_cast<int>(formula.terms.size());

  // States: a position counter 0..total per term branch, plus a shared
  // start. Branch e at position c is state 1 + e*(total+1) + c; the branch
  // requires a_{i_e} = 1 and b_{j_e} = 1 and accepts at position total.
  automata::Nfa nfa(bits, 1 + terms * (total + 1));
  const automata::StateId start = 0;
  nfa.SetInitial(start);
  auto state = [total](int e, int c) {
    return static_cast<automata::StateId>(1 + e * (total + 1) + c);
  };
  for (int e = 0; e < terms; ++e) {
    const auto [ti, tj] = formula.terms[static_cast<size_t>(e)];
    for (int c = 0; c < total; ++c) {
      const bool must_one = (c == ti) || (c == p + tj);
      const automata::StateId from = (c == 0) ? start : state(e, c);
      nfa.AddTransition(from, one, state(e, c + 1));
      if (!must_one) nfa.AddTransition(from, zero, state(e, c + 1));
    }
    nfa.SetAccepting(state(e, total), true);
  }
  return nfa;
}

StatusOr<CountingInstanceResult> CountingInstance(const automata::Nfa& nfa,
                                                  int n) {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  TMS_RETURN_IF_ERROR(nfa.Validate());
  const Alphabet& sigma = nfa.alphabet();
  const size_t k = sigma.size();

  // Uniform iid Markov sequence over Σ.
  std::vector<Rational> initial(k, Rational(1, static_cast<int64_t>(k)));
  std::vector<std::vector<Rational>> transitions(
      static_cast<size_t>(n - 1),
      std::vector<Rational>(k * k, Rational(1, static_cast<int64_t>(k))));
  auto mu = markov::MarkovSequence::CreateExact(sigma, std::move(initial),
                                                std::move(transitions));
  if (!mu.ok()) return mu.status();

  // The transducer is the NFA with every transition emitting z.
  Alphabet output;
  const Symbol z = output.Intern("z");
  transducer::Transducer t(sigma, output, nfa.num_states());
  t.SetInitial(nfa.initial());
  for (automata::StateId q = 0; q < nfa.num_states(); ++q) {
    t.SetAccepting(q, nfa.IsAccepting(q));
    for (size_t s = 0; s < k; ++s) {
      for (automata::StateId q2 : nfa.Next(q, static_cast<Symbol>(s))) {
        TMS_RETURN_IF_ERROR(
            t.AddTransition(q, static_cast<Symbol>(s), q2, Str{z}));
      }
    }
  }
  CountingInstanceResult out{std::move(mu).value(), std::move(t),
                             Str(static_cast<size_t>(n), z)};
  return out;
}

StatusOr<CountingInstanceResult> Dnf2CountingInstance(
    const Dnf2Formula& formula) {
  auto nfa = Dnf2ToNfa(formula);
  if (!nfa.ok()) return nfa.status();
  return CountingInstance(*nfa, formula.num_x + formula.num_y);
}

}  // namespace tms::reductions
