// Counting-hardness families for confidence computation —
// Proposition 4.7 and Theorem 4.9.
//
// Proposition 4.7 derives FP^{#P}-hardness of confidence from the
// #P-completeness of computing |L(A) ∩ Σ^n| for an NFA A (Kannan et al.
// [28]): over the uniform iid Markov sequence, a transducer whose NFA is A
// and whose every transition emits the same symbol z satisfies
//
//     conf(z^n) = |L(A) ∩ Σ^n| / |Σ|^n .
//
// CountingInstance() builds exactly that pair (μ, A^ω). Theorem 4.9's
// source problem — counting satisfying assignments of a monotone bipartite
// 2-DNF formula (Provan–Ball [45]) — plugs in through Dnf2ToNfa(): the NFA
// guesses a term (x_i ∧ y_j) and accepts the 0/1 assignment strings that
// satisfy it, so #SAT(φ) = |L(A_φ) ∩ {0,1}^{p+q}| and the confidence of
// z^{p+q} recovers #SAT(φ)/2^{p+q}. (The paper's Theorem 4.9 sharpens this
// to a single *fixed* 3-state transducer; our family lets the machine grow
// with φ and demonstrates the same blowup — see DESIGN.md §5.)

#ifndef TMS_REDUCTIONS_DNF2_H_
#define TMS_REDUCTIONS_DNF2_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "automata/nfa.h"
#include "common/rng.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "numeric/bigint.h"
#include "transducer/transducer.h"

namespace tms::reductions {

/// A monotone bipartite 2-DNF formula ⋁_{(i,j) ∈ terms} (x_i ∧ y_j) over
/// variables x_0..x_{p-1}, y_0..y_{q-1}.
struct Dnf2Formula {
  int num_x = 0;
  int num_y = 0;
  std::vector<std::pair<int, int>> terms;

  /// #satisfying assignments by brute force (2^{p+q} work; ground truth).
  numeric::BigInt BruteForceCount() const;

  /// A random formula with `num_terms` distinct terms.
  static Dnf2Formula Random(int num_x, int num_y, int num_terms, Rng& rng);
};

/// An NFA over {0, 1} accepting exactly the assignment strings
/// a_0…a_{p-1} b_0…b_{q-1} (of length p+q) that satisfy φ.
StatusOr<automata::Nfa> Dnf2ToNfa(const Dnf2Formula& formula);

/// A confidence-hardness instance: over `mu`, conf of `answer` under `t`
/// equals |L(A) ∩ Σ^n| / |Σ|^n.
struct CountingInstanceResult {
  markov::MarkovSequence mu;
  transducer::Transducer t;
  Str answer;  ///< z^n
};

/// Builds the Proposition 4.7 instance for an arbitrary NFA and length n.
StatusOr<CountingInstanceResult> CountingInstance(const automata::Nfa& nfa,
                                                  int n);

/// Convenience: the full Theorem 4.9-style pipeline — monotone bipartite
/// 2-DNF φ → counting instance whose confidence is #SAT(φ)/2^{p+q}.
StatusOr<CountingInstanceResult> Dnf2CountingInstance(
    const Dnf2Formula& formula);

}  // namespace tms::reductions

#endif  // TMS_REDUCTIONS_DNF2_H_
