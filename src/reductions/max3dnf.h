// max-3-DNF hardness families — Theorems 4.4 and 4.5.
//
// max-3-DNF: given a 3-DNF formula (a disjunction of 3-literal
// conjunctions), find an assignment maximizing the number of satisfied
// conjunctive clauses. The paper reduces max-3-DNF to finding a
// (2^{n^{1-δ}}-approximate) top answer, for Mealy machines with one state
// (Theorem 4.4) and for a fixed deterministic projector with |Σ|=4,
// |Δ|=2, |Q|=1 (Theorem 4.5).
//
// Both generators here realize the same clause-branch device: the Markov
// sequence picks a clause uniformly at random (a hidden choice), then
// emits an assignment in which that clause's literals are forced true and
// every other variable is a fair coin. The transducer's output exposes
// the assignment but hides the clause choice, so
//
//   conf(o_x)  =  #satisfied-clauses(x) · (1/k) · 2^{-(m-3)},
//   E_max(o_x) =  (1/k) · 2^{-(m-3)}          (whenever x satisfies ≥ 1),
//
// i.e. the top answer by confidence solves max-3-DNF while E_max is blind
// to the count — exactly the gap the paper's lower bounds formalize.
// Concatenating `copies` independent repetitions of the chain raises both
// sides to the power T and makes the confidence gap exponential in T (the
// paper's amplification step).
//
//  * Max3DnfToMealy (Thm 4.4): one-state Mealy machine; input symbols are
//    (clause, variable, bit) triples, the emitted symbol is the bit — the
//    alphabet grows with the formula, matching the theorem's "unbounded
//    alphabet" proviso.
//  * Max3DnfToProjector (Thm 4.5): a FIXED one-state deterministic
//    projector over Σ = {0, 1, a, b} that emits 0/1 and drops a/b. The
//    clause windows are laid out consecutively; a world pads with `a`
//    until its (hidden) clause window, emits the assignment bits, then
//    pads with `b` — entry probabilities are position-tuned so every
//    clause branch has probability exactly 1/k.

#ifndef TMS_REDUCTIONS_MAX3DNF_H_
#define TMS_REDUCTIONS_MAX3DNF_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::reductions {

/// One conjunctive clause l1 ∧ l2 ∧ l3: variable indices (0-based) and the
/// polarity each literal requires.
struct Dnf3Clause {
  int var[3];
  bool positive[3];
};

/// A 3-DNF formula over `num_vars` variables.
struct Dnf3Formula {
  int num_vars = 0;
  std::vector<Dnf3Clause> clauses;

  /// Number of clauses satisfied by the given assignment.
  int CountSatisfied(const std::vector<bool>& assignment) const;

  /// Exhaustive max-3-DNF optimum (2^num_vars work; ground truth).
  int BruteForceOptimum() const;

  /// A random formula with distinct variables per clause.
  static Dnf3Formula Random(int num_vars, int num_clauses, Rng& rng);
};

/// A generated hardness instance.
struct Max3DnfInstance {
  markov::MarkovSequence mu;
  transducer::Transducer t;
  /// Per-copy base mass (1/k)·2^{-(m-3)}: conf(o_x) =
  /// (Π over copies of #sat) · base^copies for assignment outputs.
  double base_mass = 0.0;
  int copies = 1;
};

/// Theorem 4.4 instance (one-state Mealy machine, growing alphabet).
StatusOr<Max3DnfInstance> Max3DnfToMealy(const Dnf3Formula& formula,
                                         int copies = 1);

/// Theorem 4.5 instance (fixed one-state projector, Σ = {0,1,a,b}).
StatusOr<Max3DnfInstance> Max3DnfToProjector(const Dnf3Formula& formula,
                                             int copies = 1);

/// Decodes an assignment-output of either instance back into assignment
/// blocks of `num_vars` bits each (one per copy). Fails if the output is
/// not a 0/1 string of the right length.
StatusOr<std::vector<std::vector<bool>>> DecodeAssignments(
    const Max3DnfInstance& instance, const Str& output, int num_vars);

}  // namespace tms::reductions

#endif  // TMS_REDUCTIONS_MAX3DNF_H_
