#include "reductions/independent_set.h"

#include <string>

#include "automata/regex.h"
#include "common/check.h"

namespace tms::reductions {

void Graph::AddEdge(int u, int v) {
  TMS_CHECK(u >= 0 && u < num_vertices && v >= 0 && v < num_vertices);
  TMS_CHECK(u != v);
  adj[static_cast<size_t>(u) * static_cast<size_t>(num_vertices) +
      static_cast<size_t>(v)] = true;
  adj[static_cast<size_t>(v) * static_cast<size_t>(num_vertices) +
      static_cast<size_t>(u)] = true;
}

int Graph::BruteForceMaxIndependentSet() const {
  TMS_CHECK(num_vertices <= 25);
  int best = 0;
  for (uint32_t set = 0; set < (1u << num_vertices); ++set) {
    bool independent = true;
    int size = 0;
    for (int u = 0; u < num_vertices && independent; ++u) {
      if (((set >> u) & 1u) == 0) continue;
      ++size;
      for (int v = u + 1; v < num_vertices; ++v) {
        if (((set >> v) & 1u) != 0 && HasEdge(u, v)) {
          independent = false;
          break;
        }
      }
    }
    if (independent && size > best) best = size;
  }
  return best;
}

bool Graph::IsOrderTransitive() const {
  for (int u = 0; u < num_vertices; ++u) {
    for (int v = u + 1; v < num_vertices; ++v) {
      if (HasEdge(u, v)) continue;
      for (int w = v + 1; w < num_vertices; ++w) {
        if (!HasEdge(v, w) && HasEdge(u, w)) return false;
      }
    }
  }
  return true;
}

Graph Graph::Random(int num_vertices, double edge_prob, Rng& rng) {
  Graph out;
  out.num_vertices = num_vertices;
  out.adj.assign(
      static_cast<size_t>(num_vertices) * static_cast<size_t>(num_vertices),
      false);
  for (int u = 0; u < num_vertices; ++u) {
    for (int v = u + 1; v < num_vertices; ++v) {
      if (rng.Bernoulli(edge_prob)) out.AddEdge(u, v);
    }
  }
  return out;
}

StatusOr<IndependentSetInstance> IndependentSetToSProjector(const Graph& g,
                                                            int n,
                                                            double stay_prob) {
  if (g.num_vertices < 1) {
    return Status::InvalidArgument("graph needs at least one vertex");
  }
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (!(stay_prob > 0.0 && stay_prob < 1.0)) {
    return Status::InvalidArgument("stay_prob must be in (0,1)");
  }
  const int v_count = g.num_vertices;
  Alphabet sigma;
  for (int v = 0; v < v_count; ++v) sigma.Intern("v" + std::to_string(v));
  const Symbol hash = sigma.Intern("#");
  const size_t k = sigma.size();

  // Initial: # with stay_prob, otherwise uniform over vertices.
  std::vector<double> initial(k, 0.0);
  initial[static_cast<size_t>(hash)] = stay_prob;
  for (int v = 0; v < v_count; ++v) {
    initial[static_cast<size_t>(v)] = (1.0 - stay_prob) / v_count;
  }

  // Homogeneous transition matrix:
  //  * from #: as the initial distribution;
  //  * from vertex u: # with stay_prob, otherwise uniform over the
  //    admissible successors {w > u : ¬E(u, w)} (all mass on # if none).
  std::vector<double> matrix(k * k, 0.0);
  for (size_t row = 0; row < k; ++row) {
    if (static_cast<Symbol>(row) == hash) {
      for (size_t col = 0; col < k; ++col) matrix[row * k + col] = initial[col];
      continue;
    }
    const int u = static_cast<int>(row);
    std::vector<int> successors;
    for (int w = u + 1; w < v_count; ++w) {
      if (!g.HasEdge(u, w)) successors.push_back(w);
    }
    if (successors.empty()) {
      matrix[row * k + static_cast<size_t>(hash)] = 1.0;
    } else {
      matrix[row * k + static_cast<size_t>(hash)] = stay_prob;
      for (int w : successors) {
        matrix[row * k + static_cast<size_t>(w)] =
            (1.0 - stay_prob) / static_cast<double>(successors.size());
      }
    }
  }
  std::vector<std::vector<double>> transitions(static_cast<size_t>(n - 1),
                                               matrix);
  auto mu = markov::MarkovSequence::Create(sigma, std::move(initial),
                                           std::move(transitions));
  if (!mu.ok()) return mu.status();

  // Fixed simple s-projector: extract nonempty runs of vertex symbols.
  auto pattern = automata::CompileRegexToDfa(sigma, "[^ '#' ] +");
  if (!pattern.ok()) return pattern.status();
  auto p = projector::SProjector::Simple(std::move(pattern).value());
  if (!p.ok()) return p.status();

  IndependentSetInstance out{std::move(mu).value(), std::move(p).value()};
  return out;
}

}  // namespace tms::reductions
