#include "transducer/compose.h"

#include "common/check.h"
#include "obs/obs.h"

namespace tms::transducer {

Transducer ComposeWithOutputDfa(const Transducer& t,
                                const automata::Dfa& output_dfa) {
  TMS_CHECK(output_dfa.alphabet() == t.output_alphabet());
  const int nc = output_dfa.num_states();
  TMS_OBS_COUNT("transducer.compose.calls", 1);
  TMS_OBS_HISTOGRAM("transducer.compose.states", t.num_states() * nc);
  Transducer out(t.input_alphabet(), t.output_alphabet(),
                 t.num_states() * nc);
  auto id = [nc](StateId q, automata::StateId c) {
    return static_cast<StateId>(q * nc + c);
  };
  out.SetInitial(id(t.initial(), output_dfa.initial()));
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (automata::StateId c = 0; c < nc; ++c) {
      if (t.IsAccepting(q) && output_dfa.IsAccepting(c)) {
        out.SetAccepting(id(q, c), true);
      }
      for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
        for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
          automata::StateId c2 = output_dfa.Run(c, e.output);
          Status st = out.AddTransition(id(q, c), static_cast<Symbol>(s),
                                        id(e.target, c2), e.output);
          TMS_CHECK(st.ok());
        }
      }
    }
  }
  return out;
}

Transducer ComposeWithOutputConstraint(
    const Transducer& t, const ranking::OutputConstraint& constraint) {
  return ComposeWithOutputDfa(t, constraint.ToDfa(t.output_alphabet()));
}

Transducer ComposeWithInputDfa(const Transducer& t,
                               const automata::Dfa& input_dfa) {
  TMS_CHECK(input_dfa.alphabet() == t.input_alphabet());
  const int nc = input_dfa.num_states();
  Transducer out(t.input_alphabet(), t.output_alphabet(),
                 t.num_states() * nc);
  auto id = [nc](StateId q, automata::StateId c) {
    return static_cast<StateId>(q * nc + c);
  };
  out.SetInitial(id(t.initial(), input_dfa.initial()));
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (automata::StateId c = 0; c < nc; ++c) {
      if (t.IsAccepting(q) && input_dfa.IsAccepting(c)) {
        out.SetAccepting(id(q, c), true);
      }
      for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
        automata::StateId c2 = input_dfa.Next(c, static_cast<Symbol>(s));
        for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
          Status st = out.AddTransition(id(q, c), static_cast<Symbol>(s),
                                        id(e.target, c2), e.output);
          TMS_CHECK(st.ok());
        }
      }
    }
  }
  return out;
}

}  // namespace tms::transducer
