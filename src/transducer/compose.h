// Output-side composition: enforcing a prefix constraint on a transducer.
//
// Given A^ω and an output constraint C, build a transducer whose answers on
// any input are exactly the answers of A^ω that satisfy C. This realizes
// the paper's observation (§4.1) that "a prefix constraint can be enforced
// by efficiently transforming the input transducer into a new one". States
// of the result are pairs (q, c) of an A-state and a constraint-DFA state;
// each emission string advances the constraint DFA by |ω(q,s,q')| symbols.
//
// The composition preserves determinism (the constraint DFA is complete and
// its dead state is kept).

#ifndef TMS_TRANSDUCER_COMPOSE_H_
#define TMS_TRANSDUCER_COMPOSE_H_

#include "automata/dfa.h"
#include "ranking/prefix_constraint.h"
#include "transducer/transducer.h"

namespace tms::transducer {

/// A^ω restricted to outputs satisfying `constraint`. |Q| grows by a factor
/// of |w|+3.
Transducer ComposeWithOutputConstraint(
    const Transducer& t, const ranking::OutputConstraint& constraint);

/// General form: A^ω restricted to outputs in L(output_dfa); `output_dfa`
/// must be a complete DFA over the transducer's output alphabet.
Transducer ComposeWithOutputDfa(const Transducer& t,
                                const automata::Dfa& output_dfa);

/// A^ω restricted to *inputs* in L(input_dfa) (product on the input side);
/// `input_dfa` must be a complete DFA over the transducer's input alphabet.
Transducer ComposeWithInputDfa(const Transducer& t,
                               const automata::Dfa& input_dfa);

}  // namespace tms::transducer

#endif  // TMS_TRANSDUCER_COMPOSE_H_
