// Finite-state transducers with deterministic emission (Section 3.1.1).
//
// A transducer A^ω is an NFA A together with an output function
// ω : Q × Σ × Q → Δ*. Emission is deterministic: the emitted string is
// completely determined by the (possibly nondeterministic) state
// transition, and there are no ε-moves. A^ω transduces s into o
// (s →[A^ω]→ o) iff some accepting run ρ on s exists with
// o = ω(q0, s1, ρ(1)) · ω(ρ(1), s2, ρ(2)) ⋯ ω(ρ(n-1), sn, ρ(n)).

#ifndef TMS_TRANSDUCER_TRANSDUCER_H_
#define TMS_TRANSDUCER_TRANSDUCER_H_

#include <optional>
#include <set>
#include <vector>

#include "automata/nfa.h"
#include "common/status.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::transducer {

using automata::StateId;

/// One transition of a transducer: on the current input symbol, move to
/// `target` and emit `output` (a string over Δ, possibly empty).
struct Edge {
  StateId target;
  Str output;
};

/// A finite-state transducer A^ω with deterministic emission.
class Transducer {
 public:
  /// A transducer with the given input alphabet Σ and output alphabet Δ,
  /// `num_states` states, initial state 0, no accepting states, and no
  /// transitions.
  Transducer(Alphabet input, Alphabet output, int num_states = 0);

  /// Adds a state and returns its id.
  StateId AddState();

  /// Adds q' to δ(q, symbol) with emission ω(q, symbol, q') = output.
  /// Deterministic emission requires at most one output per (q, symbol, q')
  /// triple; re-adding a triple with a different output is rejected.
  Status AddTransition(StateId q, Symbol symbol, StateId q2, Str output);

  void SetInitial(StateId q);
  void SetAccepting(StateId q, bool accepting = true);
  /// Marks every state accepting (makes the transducer non-selective).
  void SetAllAccepting();

  const Alphabet& input_alphabet() const { return input_; }
  const Alphabet& output_alphabet() const { return output_; }
  int num_states() const { return static_cast<int>(accepting_.size()); }
  StateId initial() const { return initial_; }
  bool IsAccepting(StateId q) const;

  /// The transitions from q on `symbol` (sorted by target id).
  const std::vector<Edge>& Next(StateId q, Symbol symbol) const;

  /// True iff the underlying NFA is a (complete) DFA.
  bool IsDeterministic() const;

  /// True iff F ≠ Q (paper: a transducer is selective unless F = Q).
  bool IsSelective() const;

  /// If ω is k-uniform (every emission has length exactly k), returns k;
  /// otherwise nullopt. A transducer with no transitions is vacuously
  /// 0-uniform.
  std::optional<int> UniformEmissionLength() const;

  /// True iff deterministic, non-selective, and 1-uniform.
  bool IsMealy() const;

  /// True iff each ω(q, s, q') is either the input symbol s or ε and the
  /// output alphabet equals the input alphabet.
  bool IsProjector() const;

  /// Length of the longest single emission (0 if no transitions).
  int MaxEmissionLength() const { return max_emission_; }

  /// All distinct outputs o with s →[A^ω]→ o (nondeterministic transducers
  /// can transduce one string into several outputs). Exponential in the
  /// worst case; intended for tests and ground truth.
  std::vector<Str> TransduceAll(const Str& s) const;

  /// The unique output for a deterministic transducer, or nullopt if A
  /// rejects s. Requires IsDeterministic().
  std::optional<Str> TransduceDeterministic(const Str& s) const;

  /// True iff s →[A^ω]→ o for some accepting run.
  bool Transduces(const Str& s, const Str& o) const;

  /// The input-side NFA A (projection that drops outputs).
  automata::Nfa InputNfa() const;

  /// Checks structural consistency (state ids, alphabet ids in range).
  Status Validate() const;

 private:
  size_t Index(StateId q, Symbol symbol) const;

  Alphabet input_;
  Alphabet output_;
  StateId initial_ = 0;
  std::vector<bool> accepting_;
  std::vector<std::vector<Edge>> delta_;  // delta_[q * |Σ| + s]
  int max_emission_ = 0;
};

}  // namespace tms::transducer

#endif  // TMS_TRANSDUCER_TRANSDUCER_H_
