// Transducer class taxonomy (Section 3.1.1 and Table 2 of the paper) and
// constructors for the restricted classes.

#ifndef TMS_TRANSDUCER_CLASSES_H_
#define TMS_TRANSDUCER_CLASSES_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "common/status.h"
#include "transducer/transducer.h"

namespace tms::transducer {

/// The transducer classes distinguished by the paper's complexity results
/// (columns of Table 2, except the s-projector classes which live in
/// projector/).
enum class TransducerClass {
  kGeneral,            ///< nondeterministic, arbitrary emission
  kUniformEmission,    ///< nondeterministic, k-uniform emission
  kDeterministic,      ///< A is a DFA
  kMealy,              ///< deterministic + non-selective + 1-uniform
};

/// Structural classification of a transducer.
struct ClassInfo {
  bool deterministic = false;
  bool selective = false;
  std::optional<int> uniform_k;  ///< emission length if uniform
  bool mealy = false;
  bool projector = false;

  /// The finest class of Table 2 the transducer belongs to.
  TransducerClass FinestClass() const;

  /// Human-readable summary, e.g. "deterministic selective (non-uniform)".
  std::string ToString() const;
};

/// Computes the classification of `t`.
ClassInfo Classify(const Transducer& t);

/// Builds a Mealy machine from per-(state, symbol) transitions: for each
/// state q and input symbol s, `next[q][s]` is the target state and
/// `emit[q][s]` the emitted output symbol. All states accepting.
StatusOr<Transducer> MakeMealy(
    Alphabet input, Alphabet output,
    const std::vector<std::vector<StateId>>& next,
    const std::vector<std::vector<Symbol>>& emit);

/// Builds a deterministic projector from a DFA: each transition emits its
/// input symbol when `emit_symbol(q, s)` is true and ε otherwise.
Transducer MakeProjector(const automata::Dfa& dfa,
                         const std::function<bool(StateId, Symbol)>& emit_symbol);

}  // namespace tms::transducer

#endif  // TMS_TRANSDUCER_CLASSES_H_
