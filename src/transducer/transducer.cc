#include "transducer/transducer.h"

#include <algorithm>
#include <functional>
#include <unordered_set>

#include "common/check.h"

namespace tms::transducer {

Transducer::Transducer(Alphabet input, Alphabet output, int num_states)
    : input_(std::move(input)), output_(std::move(output)) {
  TMS_CHECK(num_states >= 0);
  accepting_.assign(static_cast<size_t>(num_states), false);
  delta_.assign(static_cast<size_t>(num_states) * input_.size(), {});
}

StateId Transducer::AddState() {
  StateId id = static_cast<StateId>(accepting_.size());
  accepting_.push_back(false);
  delta_.resize(delta_.size() + input_.size());
  return id;
}

size_t Transducer::Index(StateId q, Symbol symbol) const {
  TMS_DCHECK(q >= 0 && q < num_states());
  TMS_DCHECK(input_.IsValid(symbol));
  return static_cast<size_t>(q) * input_.size() + static_cast<size_t>(symbol);
}

Status Transducer::AddTransition(StateId q, Symbol symbol, StateId q2,
                                 Str output) {
  if (q < 0 || q >= num_states() || q2 < 0 || q2 >= num_states()) {
    return Status::InvalidArgument("transition state out of range");
  }
  if (!input_.IsValid(symbol)) {
    return Status::InvalidArgument("transition input symbol out of range");
  }
  for (Symbol d : output) {
    if (!output_.IsValid(d)) {
      return Status::InvalidArgument("emission symbol out of range");
    }
  }
  std::vector<Edge>& edges = delta_[Index(q, symbol)];
  auto it = std::lower_bound(
      edges.begin(), edges.end(), q2,
      [](const Edge& e, StateId target) { return e.target < target; });
  if (it != edges.end() && it->target == q2) {
    if (it->output != output) {
      return Status::InvalidArgument(
          "deterministic emission violated: (q, s, q') already has a "
          "different output");
    }
    return Status::Ok();  // duplicate add, same output
  }
  max_emission_ = std::max(max_emission_, static_cast<int>(output.size()));
  edges.insert(it, Edge{q2, std::move(output)});
  return Status::Ok();
}

void Transducer::SetInitial(StateId q) {
  TMS_CHECK(q >= 0 && q < num_states());
  initial_ = q;
}

void Transducer::SetAccepting(StateId q, bool accepting) {
  TMS_CHECK(q >= 0 && q < num_states());
  accepting_[static_cast<size_t>(q)] = accepting;
}

void Transducer::SetAllAccepting() {
  for (size_t q = 0; q < accepting_.size(); ++q) accepting_[q] = true;
}

bool Transducer::IsAccepting(StateId q) const {
  TMS_CHECK(q >= 0 && q < num_states());
  return accepting_[static_cast<size_t>(q)];
}

const std::vector<Edge>& Transducer::Next(StateId q, Symbol symbol) const {
  return delta_[Index(q, symbol)];
}

bool Transducer::IsDeterministic() const {
  for (const std::vector<Edge>& edges : delta_) {
    if (edges.size() != 1) return false;
  }
  return true;
}

bool Transducer::IsSelective() const {
  for (size_t q = 0; q < accepting_.size(); ++q) {
    if (!accepting_[q]) return true;
  }
  return false;
}

std::optional<int> Transducer::UniformEmissionLength() const {
  std::optional<int> k;
  for (const std::vector<Edge>& edges : delta_) {
    for (const Edge& e : edges) {
      int len = static_cast<int>(e.output.size());
      if (!k.has_value()) {
        k = len;
      } else if (*k != len) {
        return std::nullopt;
      }
    }
  }
  return k.has_value() ? k : std::optional<int>(0);
}

bool Transducer::IsMealy() const {
  return IsDeterministic() && !IsSelective() &&
         UniformEmissionLength() == std::optional<int>(1);
}

bool Transducer::IsProjector() const {
  if (input_ != output_) return false;
  for (StateId q = 0; q < num_states(); ++q) {
    for (size_t s = 0; s < input_.size(); ++s) {
      for (const Edge& e : Next(q, static_cast<Symbol>(s))) {
        if (!e.output.empty() &&
            (e.output.size() != 1 || e.output[0] != static_cast<Symbol>(s))) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<Str> Transducer::TransduceAll(const Str& s) const {
  // DFS over runs; collect outputs of accepting runs.
  std::unordered_set<Str, StrHash> seen;
  std::vector<Str> out;
  Str emitted;
  std::function<void(StateId, size_t)> rec = [&](StateId q, size_t i) {
    if (i == s.size()) {
      if (IsAccepting(q) && seen.insert(emitted).second) {
        out.push_back(emitted);
      }
      return;
    }
    for (const Edge& e : Next(q, s[i])) {
      size_t old = emitted.size();
      emitted.insert(emitted.end(), e.output.begin(), e.output.end());
      rec(e.target, i + 1);
      emitted.resize(old);
    }
  };
  rec(initial_, 0);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<Str> Transducer::TransduceDeterministic(const Str& s) const {
  TMS_CHECK(IsDeterministic());
  StateId q = initial_;
  Str out;
  for (Symbol symbol : s) {
    const Edge& e = Next(q, symbol)[0];
    out.insert(out.end(), e.output.begin(), e.output.end());
    q = e.target;
  }
  if (!IsAccepting(q)) return std::nullopt;
  return out;
}

bool Transducer::Transduces(const Str& s, const Str& o) const {
  // DFS with pruning on the emitted prefix.
  std::function<bool(StateId, size_t, size_t)> rec = [&](StateId q, size_t i,
                                                         size_t j) -> bool {
    if (i == s.size()) return j == o.size() && IsAccepting(q);
    for (const Edge& e : Next(q, s[i])) {
      size_t len = e.output.size();
      if (j + len > o.size()) continue;
      bool match = true;
      for (size_t t = 0; t < len; ++t) {
        if (o[j + t] != e.output[t]) {
          match = false;
          break;
        }
      }
      if (match && rec(e.target, i + 1, j + len)) return true;
    }
    return false;
  };
  return rec(initial_, 0, 0);
}

automata::Nfa Transducer::InputNfa() const {
  automata::Nfa out(input_, num_states());
  out.SetInitial(initial_);
  for (StateId q = 0; q < num_states(); ++q) {
    out.SetAccepting(q, IsAccepting(q));
    for (size_t s = 0; s < input_.size(); ++s) {
      for (const Edge& e : Next(q, static_cast<Symbol>(s))) {
        out.AddTransition(q, static_cast<Symbol>(s), e.target);
      }
    }
  }
  return out;
}

Status Transducer::Validate() const {
  if (num_states() == 0) {
    return Status::InvalidArgument("transducer has no states");
  }
  if (initial_ < 0 || initial_ >= num_states()) {
    return Status::InvalidArgument("initial state out of range");
  }
  for (const std::vector<Edge>& edges : delta_) {
    for (const Edge& e : edges) {
      if (e.target < 0 || e.target >= num_states()) {
        return Status::InvalidArgument("transition target out of range");
      }
      for (Symbol d : e.output) {
        if (!output_.IsValid(d)) {
          return Status::InvalidArgument("emission symbol out of range");
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace tms::transducer
