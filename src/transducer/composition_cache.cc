#include "transducer/composition_cache.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "exec/fault.h"
#include "obs/obs.h"

namespace tms::transducer {
namespace {

std::string PrefixKey(const Str& prefix) {
  std::string key = "w:";
  for (Symbol s : prefix) {
    key += std::to_string(s);
    key += ',';
  }
  return key;
}

std::string ConstraintKey(const ranking::OutputConstraint& c) {
  std::string key = "c:";
  for (Symbol s : c.prefix) {
    key += std::to_string(s);
    key += ',';
  }
  key += '|';
  for (Symbol s : c.excluded_next) {  // std::set: already sorted
    key += std::to_string(s);
    key += ',';
  }
  key += c.allow_equal ? "|1" : "|0";
  return key;
}

size_t EstimateTransducerBytes(const Transducer& t) {
  size_t bytes = sizeof(Transducer) +
                 static_cast<size_t>(t.num_states()) *
                     (1 + t.input_alphabet().size() * sizeof(std::vector<Edge>));
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
      for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
        bytes += sizeof(Edge) + e.output.size() * sizeof(Symbol);
      }
    }
  }
  return bytes;
}

}  // namespace

// The prefix-skeleton product: ComposeWithOutputDfa against the constraint
// DFA for (prefix, X = ∅, eq = true), with each edge carrying the output
// symbol it consumes at position |w| (the only place X acts). Edges are
// stored in the exact order the direct composition inserts them, so
// Specialize replays an identical AddTransition sequence.
struct CompositionCache::Base {
  enum Accept : uint8_t { kNever = 0, kAlways = 1, kIfEqual = 2 };

  struct ProductEdge {
    StateId source;
    Symbol symbol;
    StateId target;    // target under X = ∅
    Symbol crossing;   // output symbol consumed at position |w|, or -1
    Str output;
  };

  int nc = 0;          // constraint-DFA states: |w| + 3
  int num_states = 0;  // t.num_states() * nc
  StateId initial = 0;
  std::vector<uint8_t> accept;     // per product state
  std::vector<ProductEdge> edges;  // direct-compose insertion order
  size_t bytes = 0;
};

CompositionCache::CompositionCache(const Transducer* t, size_t max_bytes)
    : t_(t), max_bytes_(max_bytes) {
  TMS_CHECK(t != nullptr);
}

std::shared_ptr<const CompositionCache::Base> CompositionCache::BuildBase(
    const Str& prefix) const {
  const Transducer& t = *t_;
  const int w = static_cast<int>(prefix.size());
  auto base = std::make_shared<Base>();
  base->nc = w + 3;
  const int nc = base->nc;
  const int free_c = w + 1;
  const int dead_c = w + 2;
  base->num_states = t.num_states() * nc;
  base->initial = static_cast<StateId>(t.initial() * nc);
  base->accept.assign(static_cast<size_t>(base->num_states), Base::kNever);
  for (StateId q = 0; q < t.num_states(); ++q) {
    if (!t.IsAccepting(q)) continue;
    base->accept[static_cast<size_t>(q * nc + w)] = Base::kIfEqual;
    base->accept[static_cast<size_t>(q * nc + free_c)] = Base::kAlways;
  }
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (int c = 0; c < nc; ++c) {
      for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
        for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
          // Run the emission through the X = ∅ constraint DFA by hand,
          // recording the symbol consumed at progress |w| (after which the
          // DFA is in `free` and can never return).
          int cc = c;
          Symbol crossing = -1;
          for (Symbol d : e.output) {
            if (cc == dead_c || cc == free_c) continue;
            if (cc == w) {
              crossing = d;
              cc = free_c;
              continue;
            }
            cc = (d == prefix[static_cast<size_t>(cc)]) ? cc + 1 : dead_c;
          }
          base->edges.push_back(Base::ProductEdge{
              static_cast<StateId>(q * nc + c), static_cast<Symbol>(s),
              static_cast<StateId>(e.target * nc + cc), crossing, e.output});
          base->bytes +=
              sizeof(Base::ProductEdge) + e.output.size() * sizeof(Symbol);
        }
      }
    }
  }
  base->bytes += sizeof(Base) + base->accept.size();
  return base;
}

std::shared_ptr<const Transducer> CompositionCache::Specialize(
    const Base& base, const ranking::OutputConstraint& constraint) const {
  auto out = std::make_shared<Transducer>(
      t_->input_alphabet(), t_->output_alphabet(), base.num_states);
  out->SetInitial(base.initial);
  for (size_t state = 0; state < base.accept.size(); ++state) {
    if (base.accept[state] == Base::kAlways ||
        (base.accept[state] == Base::kIfEqual && constraint.allow_equal)) {
      out->SetAccepting(static_cast<StateId>(state), true);
    }
  }
  const StateId dead_c = static_cast<StateId>(base.nc - 1);
  for (const Base::ProductEdge& e : base.edges) {
    StateId target = e.target;
    if (e.crossing >= 0 &&
        constraint.excluded_next.find(e.crossing) !=
            constraint.excluded_next.end()) {
      target = (target / base.nc) * base.nc + dead_c;
    }
    Status st = out->AddTransition(e.source, e.symbol, target, e.output);
    TMS_CHECK(st.ok());
  }
  return out;
}

std::shared_ptr<const CompositionCache::Base> CompositionCache::GetBase(
    const Str& prefix) {
  std::string key = PrefixKey(prefix);
  {
    std::lock_guard<std::mutex> lock(lock_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      TouchLocked(it->second);
      ++stats_.hits;
      TMS_OBS_COUNT("cache.hits", 1);
      return it->second.base;
    }
    ++stats_.misses;
    TMS_OBS_COUNT("cache.misses", 1);
  }
  std::shared_ptr<const Base> base = BuildBase(prefix);
  // Simulated allocation failure (exec/fault.h): the build is served
  // uncached and the cache stays consistent — graceful degradation, not
  // an error.
  if (TMS_FAULT_POINT("cache.insert")) return base;
  std::lock_guard<std::mutex> lock(lock_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second.base;  // lost a build race
  Slot slot;
  slot.base = base;
  slot.bytes = base->bytes;
  InsertLocked(std::move(key), std::move(slot));
  return base;
}

std::shared_ptr<const Transducer> CompositionCache::Compose(
    const ranking::OutputConstraint& constraint) {
  std::string key = ConstraintKey(constraint);
  {
    std::lock_guard<std::mutex> lock(lock_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      TouchLocked(it->second);
      ++stats_.hits;
      TMS_OBS_COUNT("cache.hits", 1);
      return it->second.spec;
    }
    ++stats_.misses;
    TMS_OBS_COUNT("cache.misses", 1);
  }
  std::shared_ptr<const Base> base = GetBase(constraint.prefix);
  std::shared_ptr<const Transducer> spec = Specialize(*base, constraint);
  if (TMS_FAULT_POINT("cache.insert")) return spec;  // see GetBase
  std::lock_guard<std::mutex> lock(lock_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second.spec;  // lost a build race
  Slot slot;
  slot.spec = spec;
  slot.bytes = EstimateTransducerBytes(*spec);
  InsertLocked(std::move(key), std::move(slot));
  return spec;
}

CompositionCache::Stats CompositionCache::stats() const {
  std::lock_guard<std::mutex> lock(lock_);
  return stats_;
}

void CompositionCache::TouchLocked(Slot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_it);
}

void CompositionCache::InsertLocked(std::string key, Slot slot) {
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
  stats_.bytes += slot.bytes;
  map_.emplace(std::move(key), std::move(slot));
  // Evict from the cold end until the budget holds; the entry just
  // inserted (at the front) is never the victim while anything older
  // remains, and is allowed to stay even if it alone exceeds the budget.
  while (stats_.bytes > max_bytes_ && lru_.size() > 1) {
    auto victim = map_.find(lru_.back());
    TMS_CHECK(victim != map_.end());
    stats_.bytes -= victim->second.bytes;
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
    TMS_OBS_COUNT("cache.evictions", 1);
  }
  TMS_OBS_GAUGE_SET("cache.bytes", static_cast<int64_t>(stats_.bytes));
}

}  // namespace tms::transducer
