#include "transducer/composition_cache.h"

#include <deque>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "exec/fault.h"
#include "obs/obs.h"

namespace tms::transducer {
namespace {

// Optimized entries live under "O"-prefixed keys: the pruned product is
// answer-stream-identical but not the same object graph, so a knob change
// must never be served from the other knob's entry.
std::string PrefixKey(const Str& prefix, bool optimized) {
  std::string key = optimized ? "Ow:" : "w:";
  for (Symbol s : prefix) {
    key += std::to_string(s);
    key += ',';
  }
  return key;
}

std::string ConstraintKey(const ranking::OutputConstraint& c,
                          bool optimized) {
  std::string key = optimized ? "Oc:" : "c:";
  for (Symbol s : c.prefix) {
    key += std::to_string(s);
    key += ',';
  }
  key += '|';
  for (Symbol s : c.excluded_next) {  // std::set: already sorted
    key += std::to_string(s);
    key += ',';
  }
  key += c.allow_equal ? "|1" : "|0";
  return key;
}

size_t EstimateTransducerBytes(const Transducer& t) {
  size_t bytes = sizeof(Transducer) +
                 static_cast<size_t>(t.num_states()) *
                     (1 + t.input_alphabet().size() * sizeof(std::vector<Edge>));
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
      for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
        bytes += sizeof(Edge) + e.output.size() * sizeof(Symbol);
      }
    }
  }
  return bytes;
}

}  // namespace

// The prefix-skeleton product: ComposeWithOutputDfa against the constraint
// DFA for (prefix, X = ∅, eq = true), with each edge carrying the output
// symbol it consumes at position |w| (the only place X acts). Edges are
// stored in the exact order the direct composition inserts them, so
// Specialize replays an identical AddTransition sequence.
struct CompositionCache::Base {
  enum Accept : uint8_t { kNever = 0, kAlways = 1, kIfEqual = 2 };

  struct ProductEdge {
    StateId source;
    Symbol symbol;
    StateId target;    // target under X = ∅
    Symbol crossing;   // output symbol consumed at position |w|, or -1
    Str output;
  };

  int nc = 0;          // constraint-DFA states: |w| + 3
  int num_states = 0;  // t.num_states() * nc
  StateId initial = 0;
  std::vector<uint8_t> accept;     // per product state
  std::vector<ProductEdge> edges;  // direct-compose insertion order
  size_t bytes = 0;
};

CompositionCache::CompositionCache(const Transducer* t, size_t max_bytes)
    : t_(t), max_bytes_(max_bytes) {
  TMS_CHECK(t != nullptr);
}

std::shared_ptr<const CompositionCache::Base> CompositionCache::BuildBase(
    const Str& prefix, const Transducer& t) const {
  const int w = static_cast<int>(prefix.size());
  auto base = std::make_shared<Base>();
  base->nc = w + 3;
  const int nc = base->nc;
  const int free_c = w + 1;
  const int dead_c = w + 2;
  base->num_states = t.num_states() * nc;
  base->initial = static_cast<StateId>(t.initial() * nc);
  base->accept.assign(static_cast<size_t>(base->num_states), Base::kNever);
  for (StateId q = 0; q < t.num_states(); ++q) {
    if (!t.IsAccepting(q)) continue;
    base->accept[static_cast<size_t>(q * nc + w)] = Base::kIfEqual;
    base->accept[static_cast<size_t>(q * nc + free_c)] = Base::kAlways;
  }
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (int c = 0; c < nc; ++c) {
      for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
        for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
          // Run the emission through the X = ∅ constraint DFA by hand,
          // recording the symbol consumed at progress |w| (after which the
          // DFA is in `free` and can never return).
          int cc = c;
          Symbol crossing = -1;
          for (Symbol d : e.output) {
            if (cc == dead_c || cc == free_c) continue;
            if (cc == w) {
              crossing = d;
              cc = free_c;
              continue;
            }
            cc = (d == prefix[static_cast<size_t>(cc)]) ? cc + 1 : dead_c;
          }
          base->edges.push_back(Base::ProductEdge{
              static_cast<StateId>(q * nc + c), static_cast<Symbol>(s),
              static_cast<StateId>(e.target * nc + cc), crossing, e.output});
          base->bytes +=
              sizeof(Base::ProductEdge) + e.output.size() * sizeof(Symbol);
        }
      }
    }
  }
  base->bytes += sizeof(Base) + base->accept.size();
  return base;
}

std::shared_ptr<const Transducer> CompositionCache::Specialize(
    const Base& base, const ranking::OutputConstraint& constraint,
    bool optimized) const {
  if (optimized) return SpecializePruned(base, constraint);
  auto out = std::make_shared<Transducer>(
      t_->input_alphabet(), t_->output_alphabet(), base.num_states);
  out->SetInitial(base.initial);
  for (size_t state = 0; state < base.accept.size(); ++state) {
    if (base.accept[state] == Base::kAlways ||
        (base.accept[state] == Base::kIfEqual && constraint.allow_equal)) {
      out->SetAccepting(static_cast<StateId>(state), true);
    }
  }
  const StateId dead_c = static_cast<StateId>(base.nc - 1);
  for (const Base::ProductEdge& e : base.edges) {
    StateId target = e.target;
    if (e.crossing >= 0 &&
        constraint.excluded_next.find(e.crossing) !=
            constraint.excluded_next.end()) {
      target = (target / base.nc) * base.nc + dead_c;
    }
    Status st = out->AddTransition(e.source, e.symbol, target, e.output);
    TMS_CHECK(st.ok());
  }
  return out;
}

std::shared_ptr<const Transducer> CompositionCache::SpecializePruned(
    const Base& base, const ranking::OutputConstraint& constraint) const {
  Stopwatch sw;
  const int n = base.num_states;
  const StateId dead_c = static_cast<StateId>(base.nc - 1);
  const size_t ne = base.edges.size();

  // Per-constraint resolved target of every base edge: crossing symbols
  // in the excluded set divert into the dead column, exactly as the
  // unfused specialization redirects them.
  std::vector<StateId> target(ne);
  for (size_t i = 0; i < ne; ++i) {
    const Base::ProductEdge& e = base.edges[i];
    StateId tgt = e.target;
    if (e.crossing >= 0 &&
        constraint.excluded_next.find(e.crossing) !=
            constraint.excluded_next.end()) {
      tgt = (tgt / base.nc) * base.nc + dead_c;
    }
    target[i] = tgt;
  }

  // CSR out-edge index by source (counting sort, stable: within a source
  // the base insertion order — the AddTransition order of the unfused
  // product — is preserved).
  std::vector<int> off(static_cast<size_t>(n) + 1, 0);
  for (const Base::ProductEdge& e : base.edges) {
    ++off[static_cast<size_t>(e.source) + 1];
  }
  for (int q = 0; q < n; ++q) off[static_cast<size_t>(q) + 1] += off[static_cast<size_t>(q)];
  std::vector<int> by_source(ne);
  {
    std::vector<int> cursor(off.begin(), off.end() - 1);
    for (size_t i = 0; i < ne; ++i) {
      by_source[static_cast<size_t>(
          cursor[static_cast<size_t>(base.edges[i].source)]++)] =
          static_cast<int>(i);
    }
  }

  // Forward reachability from the initial product state over the resolved
  // edges (dead-column states included, so the unreachable/dead stats
  // split matches what PruneTransducer reports on the full product).
  std::vector<bool> reachable(static_cast<size_t>(n), false);
  std::deque<StateId> frontier{base.initial};
  reachable[static_cast<size_t>(base.initial)] = true;
  while (!frontier.empty()) {
    const StateId q = frontier.front();
    frontier.pop_front();
    for (int c = off[static_cast<size_t>(q)]; c < off[static_cast<size_t>(q) + 1]; ++c) {
      const StateId tgt = target[static_cast<size_t>(by_source[static_cast<size_t>(c)])];
      if (!reachable[static_cast<size_t>(tgt)]) {
        reachable[static_cast<size_t>(tgt)] = true;
        frontier.push_back(tgt);
      }
    }
  }

  // Per-constraint acceptance (the allow_equal resolution of the unfused
  // specialization).
  auto accepts = [&](size_t s) {
    return base.accept[s] == Base::kAlways ||
           (base.accept[s] == Base::kIfEqual && constraint.allow_equal);
  };

  // Co-accessibility: reverse CSR over the resolved targets, BFS from the
  // accepting states.
  std::vector<int> roff(static_cast<size_t>(n) + 1, 0);
  for (size_t i = 0; i < ne; ++i) ++roff[static_cast<size_t>(target[i]) + 1];
  for (int q = 0; q < n; ++q) roff[static_cast<size_t>(q) + 1] += roff[static_cast<size_t>(q)];
  std::vector<int> by_target(ne);
  {
    std::vector<int> cursor(roff.begin(), roff.end() - 1);
    for (size_t i = 0; i < ne; ++i) {
      by_target[static_cast<size_t>(
          cursor[static_cast<size_t>(target[i])]++)] = static_cast<int>(i);
    }
  }
  std::vector<bool> coacc(static_cast<size_t>(n), false);
  for (size_t s = 0; s < static_cast<size_t>(n); ++s) {
    if (accepts(s)) {
      coacc[s] = true;
      frontier.push_back(static_cast<StateId>(s));
    }
  }
  while (!frontier.empty()) {
    const StateId q = frontier.front();
    frontier.pop_front();
    for (int c = roff[static_cast<size_t>(q)]; c < roff[static_cast<size_t>(q) + 1]; ++c) {
      const StateId src =
          base.edges[static_cast<size_t>(by_target[static_cast<size_t>(c)])].source;
      if (!coacc[static_cast<size_t>(src)]) {
        coacc[static_cast<size_t>(src)] = true;
        frontier.push_back(src);
      }
    }
  }

  // Keep reachable ∧ co-accessible, renumbered monotonically — the exact
  // cut and numbering of optimize::PruneTransducer, whose byte-exactness
  // argument (docs/OPTIMIZE.md) this path inherits.
  std::vector<StateId> new_id(static_cast<size_t>(n), -1);
  int kept = 0;
  optimize::OptimizeStats st;
  st.states_before = n;
  st.edges_before = static_cast<int>(ne);
  for (size_t q = 0; q < static_cast<size_t>(n); ++q) {
    if (reachable[q] && coacc[q]) {
      new_id[q] = kept++;
    } else if (!reachable[q]) {
      ++st.states_unreachable;
    } else {
      ++st.states_dead;
    }
  }

  std::shared_ptr<Transducer> out;
  if (kept == 0) {
    // Canonical empty transducer, as PruneTransducer builds it: one
    // non-accepting state, no edges.
    out = std::make_shared<Transducer>(t_->input_alphabet(),
                                       t_->output_alphabet(), 1);
    st.states_after = 1;
    st.edges_after = 0;
  } else {
    out = std::make_shared<Transducer>(t_->input_alphabet(),
                                       t_->output_alphabet(), kept);
    out->SetInitial(new_id[static_cast<size_t>(base.initial)]);
    int emitted = 0;
    for (size_t q = 0; q < static_cast<size_t>(n); ++q) {
      if (new_id[q] < 0) continue;
      out->SetAccepting(new_id[q], accepts(q));
      for (int c = off[q]; c < off[q + 1]; ++c) {
        const size_t i = static_cast<size_t>(by_source[static_cast<size_t>(c)]);
        if (new_id[static_cast<size_t>(target[i])] < 0) continue;  // dead arc
        const Base::ProductEdge& e = base.edges[i];
        Status status = out->AddTransition(
            new_id[q], e.symbol, new_id[static_cast<size_t>(target[i])],
            e.output);
        TMS_CHECK(status.ok());
        ++emitted;
      }
    }
    st.states_after = kept;
    st.edges_after = emitted;
  }
  optimize::RecordPrunePass(st, sw.ElapsedNanos());
  TMS_OBS_COUNT("optimize.product_states_pruned",
                st.states_unreachable + st.states_dead);
  return out;
}

const Transducer& CompositionCache::OptimizedTransducer() {
  std::call_once(opt_once_, [this] {
    opt_t_ = std::make_shared<const Transducer>(optimize::PruneTransducer(*t_));
  });
  return *opt_t_;
}

std::shared_ptr<const CompositionCache::Base> CompositionCache::GetBase(
    const Str& prefix, bool optimized) {
  std::string key = PrefixKey(prefix, optimized);
  {
    std::lock_guard<std::mutex> lock(lock_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      TouchLocked(it->second);
      ++stats_.hits;
      TMS_OBS_COUNT("cache.hits", 1);
      return it->second.base;
    }
    ++stats_.misses;
    TMS_OBS_COUNT("cache.misses", 1);
  }
  std::shared_ptr<const Base> base =
      BuildBase(prefix, optimized ? OptimizedTransducer() : *t_);
  // Simulated allocation failure (exec/fault.h): the build is served
  // uncached and the cache stays consistent — graceful degradation, not
  // an error.
  if (TMS_FAULT_POINT("cache.insert")) return base;
  std::lock_guard<std::mutex> lock(lock_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second.base;  // lost a build race
  Slot slot;
  slot.base = base;
  slot.bytes = base->bytes;
  InsertLocked(std::move(key), std::move(slot));
  return base;
}

std::shared_ptr<const Transducer> CompositionCache::Compose(
    const ranking::OutputConstraint& constraint, bool optimized) {
  std::string key = ConstraintKey(constraint, optimized);
  {
    std::lock_guard<std::mutex> lock(lock_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      TouchLocked(it->second);
      ++stats_.hits;
      TMS_OBS_COUNT("cache.hits", 1);
      return it->second.spec;
    }
    ++stats_.misses;
    TMS_OBS_COUNT("cache.misses", 1);
  }
  std::shared_ptr<const Base> base = GetBase(constraint.prefix, optimized);
  std::shared_ptr<const Transducer> spec =
      Specialize(*base, constraint, optimized);
  if (TMS_FAULT_POINT("cache.insert")) return spec;  // see GetBase
  std::lock_guard<std::mutex> lock(lock_);
  auto it = map_.find(key);
  if (it != map_.end()) return it->second.spec;  // lost a build race
  Slot slot;
  slot.spec = spec;
  slot.bytes = EstimateTransducerBytes(*spec);
  InsertLocked(std::move(key), std::move(slot));
  return spec;
}

CompositionCache::Stats CompositionCache::stats() const {
  std::lock_guard<std::mutex> lock(lock_);
  return stats_;
}

void CompositionCache::TouchLocked(Slot& slot) {
  lru_.splice(lru_.begin(), lru_, slot.lru_it);
}

void CompositionCache::InsertLocked(std::string key, Slot slot) {
  lru_.push_front(key);
  slot.lru_it = lru_.begin();
  stats_.bytes += slot.bytes;
  map_.emplace(std::move(key), std::move(slot));
  // Evict from the cold end until the budget holds; the entry just
  // inserted (at the front) is never the victim while anything older
  // remains, and is allowed to stay even if it alone exceeds the budget.
  while (stats_.bytes > max_bytes_ && lru_.size() > 1) {
    auto victim = map_.find(lru_.back());
    TMS_CHECK(victim != map_.end());
    stats_.bytes -= victim->second.bytes;
    map_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
    TMS_OBS_COUNT("cache.evictions", 1);
  }
  TMS_OBS_GAUGE_SET("cache.bytes", static_cast<int64_t>(stats_.bytes));
}

}  // namespace tms::transducer
