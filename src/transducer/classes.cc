#include "transducer/classes.h"

#include <functional>

#include "common/check.h"

namespace tms::transducer {

TransducerClass ClassInfo::FinestClass() const {
  if (mealy) return TransducerClass::kMealy;
  if (deterministic) return TransducerClass::kDeterministic;
  if (uniform_k.has_value()) return TransducerClass::kUniformEmission;
  return TransducerClass::kGeneral;
}

std::string ClassInfo::ToString() const {
  std::string out = deterministic ? "deterministic" : "nondeterministic";
  out += selective ? " selective" : " non-selective";
  if (uniform_k.has_value()) {
    out += " (" + std::to_string(*uniform_k) + "-uniform)";
  } else {
    out += " (non-uniform)";
  }
  if (mealy) out += " [Mealy]";
  if (projector) out += " [projector]";
  return out;
}

ClassInfo Classify(const Transducer& t) {
  ClassInfo info;
  info.deterministic = t.IsDeterministic();
  info.selective = t.IsSelective();
  info.uniform_k = t.UniformEmissionLength();
  info.mealy = t.IsMealy();
  info.projector = t.IsProjector();
  return info;
}

StatusOr<Transducer> MakeMealy(
    Alphabet input, Alphabet output,
    const std::vector<std::vector<StateId>>& next,
    const std::vector<std::vector<Symbol>>& emit) {
  const size_t nq = next.size();
  if (nq == 0) return Status::InvalidArgument("Mealy machine needs states");
  if (emit.size() != nq) {
    return Status::InvalidArgument("next/emit size mismatch");
  }
  Transducer out(input, std::move(output), static_cast<int>(nq));
  for (size_t q = 0; q < nq; ++q) {
    if (next[q].size() != input.size() || emit[q].size() != input.size()) {
      return Status::InvalidArgument("Mealy row has wrong arity");
    }
    out.SetAccepting(static_cast<StateId>(q), true);
    for (size_t s = 0; s < input.size(); ++s) {
      TMS_RETURN_IF_ERROR(out.AddTransition(static_cast<StateId>(q),
                                            static_cast<Symbol>(s), next[q][s],
                                            Str{emit[q][s]}));
    }
  }
  TMS_CHECK(out.IsMealy());
  return out;
}

Transducer MakeProjector(
    const automata::Dfa& dfa,
    const std::function<bool(StateId, Symbol)>& emit_symbol) {
  Transducer out(dfa.alphabet(), dfa.alphabet(), dfa.num_states());
  out.SetInitial(dfa.initial());
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    out.SetAccepting(q, dfa.IsAccepting(q));
    for (size_t s = 0; s < dfa.alphabet().size(); ++s) {
      Symbol sym = static_cast<Symbol>(s);
      Str emission = emit_symbol(q, sym) ? Str{sym} : Str{};
      Status st =
          out.AddTransition(q, sym, dfa.Next(q, sym), std::move(emission));
      TMS_CHECK(st.ok());
    }
  }
  return out;
}

}  // namespace tms::transducer
