// Memoized output-constraint composition (see transducer/compose.h).
//
// Ranked enumeration (ranking/lawler.h driving query/emax_enum.h) composes
// the same transducer with one constraint DFA per subspace solve, and the
// constraints are highly related: every child of a Lawler partition either
// keeps its parent's prefix (with a grown excluded set) or uses a prefix of
// the winning answer that later pops will partition again. Batched
// evaluation (db/batch_evaluator.h) goes further — the composed transducer
// depends only on (transducer, constraint), not on the Markov sequence, so
// every sequence in a collection replays the same compositions.
//
// The cache is two-level:
//   * level 1, keyed by the constraint *prefix* w: the product of the
//     transducer with the prefix-tracking skeleton of the constraint DFA
//     (states 0..|w|, free, dead), with each edge annotated by its
//     "crossing symbol" — the output symbol consumed at position |w|, the
//     only place the excluded set X can act;
//   * level 2, keyed by the full constraint (w, X, allow_equal): the
//     specialized Transducer, derived from the level-1 base by redirecting
//     edges whose crossing symbol is in X to the dead layer and resolving
//     the allow_equal accepting bit.
//
// Specialization reproduces ComposeWithOutputConstraint exactly — same
// state numbering, same edges, same accepting set — so cached and uncached
// enumerations are bit-identical (tests/composition_cache_test.cc checks
// this differentially).
//
// Both levels share one LRU byte budget. Thread-safe: lookups and
// insertions take an internal mutex, but builds run outside it, so
// concurrent subspace solves (ranking/lawler.h's parallel children) only
// serialize on the map, not on composition work. Results are returned as
// shared_ptr, so an entry evicted while a solver still uses it stays alive.
//
// Observability: counters `cache.hits` / `cache.misses` / `cache.evictions`
// and gauge `cache.bytes` (see docs/OBSERVABILITY.md).

#ifndef TMS_TRANSDUCER_COMPOSITION_CACHE_H_
#define TMS_TRANSDUCER_COMPOSITION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "optimize/transducer_opt.h"
#include "ranking/prefix_constraint.h"
#include "transducer/transducer.h"

namespace tms::transducer {

/// Memoizes ComposeWithOutputConstraint for one transducer. The transducer
/// is held by non-owning pointer and must outlive the cache.
class CompositionCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    size_t bytes = 0;
  };

  static constexpr size_t kDefaultMaxBytes = size_t{64} << 20;  // 64 MiB

  explicit CompositionCache(const Transducer* t,
                            size_t max_bytes = kDefaultMaxBytes);

  CompositionCache(const CompositionCache&) = delete;
  CompositionCache& operator=(const CompositionCache&) = delete;

  /// The composed transducer for (transducer(), constraint) —
  /// bit-identical to ComposeWithOutputConstraint(transducer(), constraint).
  ///
  /// With `optimized` set, both sides of the composition are pruned: the
  /// query transducer through optimize::PruneTransducer once (lazily,
  /// shared by all optimized compositions of this cache) before the
  /// product is built, and the product itself by a FUSED prune — the
  /// reachable ∧ co-accessible cut is computed on the cached base
  /// skeleton and only the surviving sub-product is ever materialized, so
  /// the optimized compose does strictly less allocation work than the
  /// unoptimized one while returning exactly the transducer
  /// optimize::PruneTransducer would have produced from the full product
  /// (tests/optimize_equivalence_test.cc checks this differentially).
  /// The pruned product yields byte-identical answer streams (the prune
  /// is stream-exact, see optimize/transducer_opt.h) but is NOT the same
  /// Transducer object graph, so optimized and unoptimized compositions
  /// are cached under DISTINCT keys — a lookup can never cross the knob
  /// (the regression in tests/optimize_equivalence_test.cc pins this).
  std::shared_ptr<const Transducer> Compose(
      const ranking::OutputConstraint& constraint, bool optimized = false);

  const Transducer& transducer() const { return *t_; }

  Stats stats() const;

 private:
  // Level-1 entry: the prefix-skeleton product (X = ∅ targets plus
  // crossing-symbol annotations); see the file comment.
  struct Base;

  struct Slot {
    std::shared_ptr<const Base> base;         // level 1 (exactly one of
    std::shared_ptr<const Transducer> spec;   // these two is set)
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  std::shared_ptr<const Base> GetBase(const Str& prefix, bool optimized);
  std::shared_ptr<const Base> BuildBase(const Str& prefix,
                                        const Transducer& t) const;
  std::shared_ptr<const Transducer> Specialize(
      const Base& base, const ranking::OutputConstraint& constraint,
      bool optimized) const;

  /// The optimized-path specialization: resolves every base edge under
  /// `constraint`, computes the reachable ∧ co-accessible cut over the
  /// resolved graph, and materializes ONLY the live sub-product —
  /// Transducer-identical to running optimize::PruneTransducer over the
  /// full specialized product, without ever building that product.
  std::shared_ptr<const Transducer> SpecializePruned(
      const Base& base, const ranking::OutputConstraint& constraint) const;

  /// The pruned copy of transducer(), built once on first optimized
  /// composition (never built when the knob stays off).
  const Transducer& OptimizedTransducer();

  // Map maintenance (all require lock_ held). Touch moves a hit to the
  // LRU front; Insert adds a slot (first writer wins on races) and evicts
  // from the tail until the budget holds.
  void TouchLocked(Slot& slot);
  void InsertLocked(std::string key, Slot slot);

  const Transducer* t_;
  const size_t max_bytes_;

  std::once_flag opt_once_;
  std::shared_ptr<const Transducer> opt_t_;

  mutable std::mutex lock_;
  std::unordered_map<std::string, Slot> map_;
  std::list<std::string> lru_;  // front = most recently used
  Stats stats_;
};

}  // namespace tms::transducer

#endif  // TMS_TRANSDUCER_COMPOSITION_CACHE_H_
