// Standard automata constructions: determinization, minimization, boolean
// combinations, concatenation, reversal, emptiness, equivalence, counting.
//
// These are the substrate for the paper's constructions: subset
// construction (Theorems 4.8 and 5.5), DFA concatenation with its
// exponential state complexity in the second operand (Theorem 5.5, citing
// Jirásková), and product automata used to enforce prefix constraints.

#ifndef TMS_AUTOMATA_OPS_H_
#define TMS_AUTOMATA_OPS_H_

#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "numeric/bigint.h"

namespace tms::automata {

/// Boolean combinator for Product().
enum class BoolOp { kAnd, kOr, kDiff };

/// Subset construction. The result is a complete DFA with at most 2^|Q|
/// states (only reachable subsets are materialized).
Dfa Determinize(const Nfa& nfa);

/// Hopcroft minimization of a complete DFA (unreachable states are dropped
/// first). The result accepts the same language with the minimum number of
/// states.
Dfa Minimize(const Dfa& dfa);

/// Product automaton computing L(a) op L(b). Alphabets must be equal.
Dfa Product(const Dfa& a, const Dfa& b, BoolOp op);

/// DFA for the complement language Σ* \ L(a).
Dfa Complement(const Dfa& a);

/// NFA accepting L(a) ∪ L(b). Alphabets must be equal.
Nfa NfaUnion(const Nfa& a, const Nfa& b);

/// NFA accepting L(a)·L(b) (concatenation). Alphabets must be equal.
/// Determinizing this exhibits the 2^|Q_b| state complexity used by
/// Theorem 5.5.
Nfa NfaConcat(const Nfa& a, const Nfa& b);

/// NFA accepting the reversal of L(a).
Nfa Reverse(const Nfa& a);

/// True iff L(a) = ∅.
bool IsEmpty(const Nfa& a);

/// True iff L(a) = L(b) (both complete DFAs over equal alphabets).
bool Equivalent(const Dfa& a, const Dfa& b);

/// |L(a) ∩ Σ^n| — the count the paper cites from Kannan et al. [28]
/// (easy for DFAs, #P-complete for NFAs; this is the DFA dynamic program).
numeric::BigInt CountAcceptedStrings(const Dfa& a, int n);

/// A shortest accepted string (BFS), or nullopt if L(a) = ∅. Ties broken
/// by smallest symbol ids.
std::optional<Str> ShortestAccepted(const Nfa& a);

/// True iff L(a) = Σ* (the complete DFA accepts everything).
bool IsUniversal(const Dfa& a);

/// All strings of length exactly n accepted by `a`, in lexicographic
/// order of symbol ids. Exponential; test/bench helper for small n.
std::vector<Str> EnumerateAcceptedStrings(const Nfa& a, int n);

}  // namespace tms::automata

#endif  // TMS_AUTOMATA_OPS_H_
