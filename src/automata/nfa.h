// Nondeterministic finite automata (Section 2.1 of the paper).
//
// An Nfa has no ε-transitions (the paper's NFAs read one symbol per step);
// the regex compiler builds Thompson automata with ε-edges internally and
// eliminates them before returning an Nfa.

#ifndef TMS_AUTOMATA_NFA_H_
#define TMS_AUTOMATA_NFA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::automata {

/// Dense automaton state id.
using StateId = int32_t;

/// A nondeterministic finite automaton ⟨Σ, Q, q0, F, δ⟩ over an interned
/// alphabet. δ(q, s) is a (possibly empty) set of states, so an Nfa may
/// reject by getting stuck.
class Nfa {
 public:
  /// An automaton over `alphabet` with `num_states` states, initial state 0,
  /// and no accepting states or transitions.
  explicit Nfa(Alphabet alphabet, int num_states = 0);

  /// Adds a state and returns its id.
  StateId AddState();

  /// Adds q' to δ(q, symbol). Duplicate additions are ignored.
  void AddTransition(StateId q, Symbol symbol, StateId q2);

  void SetInitial(StateId q);
  void SetAccepting(StateId q, bool accepting = true);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_states() const { return static_cast<int>(accepting_.size()); }
  StateId initial() const { return initial_; }
  bool IsAccepting(StateId q) const;

  /// δ(q, symbol) as a sorted vector.
  const std::vector<StateId>& Next(StateId q, Symbol symbol) const;

  /// True iff |δ(q, s)| == 1 for all q, s (the paper's DFA condition).
  bool IsDeterministic() const;

  /// True iff some accepting run on `s` exists (s ∈ L(A)).
  bool Accepts(const Str& s) const;

  /// The set of states reachable from `from` by reading `s` (any run).
  std::vector<StateId> ReachableSet(const std::vector<StateId>& from,
                                    const Str& s) const;

  /// Checks internal consistency (state ids in range, initial valid).
  Status Validate() const;

 private:
  Alphabet alphabet_;
  StateId initial_ = 0;
  std::vector<bool> accepting_;
  // delta_[q * |Σ| + s] = sorted set of next states.
  std::vector<std::vector<StateId>> delta_;

  size_t Index(StateId q, Symbol symbol) const;
};

}  // namespace tms::automata

#endif  // TMS_AUTOMATA_NFA_H_
