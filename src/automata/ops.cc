#include "automata/ops.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "common/check.h"
#include "obs/obs.h"

namespace tms::automata {

Dfa Determinize(const Nfa& nfa) {
  const size_t sigma = nfa.alphabet().size();
  std::map<std::vector<StateId>, StateId> subset_id;
  std::vector<std::vector<StateId>> subsets;

  auto intern = [&](std::vector<StateId> subset) -> StateId {
    auto it = subset_id.find(subset);
    if (it != subset_id.end()) return it->second;
    StateId id = static_cast<StateId>(subsets.size());
    subset_id.emplace(subset, id);
    subsets.push_back(std::move(subset));
    return id;
  };

  StateId start = intern({nfa.initial()});
  std::queue<StateId> work;
  work.push(start);
  // next_of[q][s] for interned subsets, filled lazily.
  std::vector<std::vector<StateId>> next_of;

  while (!work.empty()) {
    StateId id = work.front();
    work.pop();
    if (static_cast<size_t>(id) < next_of.size()) continue;
    // Subsets are interned in BFS order, so ids arrive in order here.
    TMS_CHECK_EQ(static_cast<size_t>(id), next_of.size());
    std::vector<StateId> row(sigma);
    for (size_t s = 0; s < sigma; ++s) {
      std::set<StateId> next;
      for (StateId q : subsets[static_cast<size_t>(id)]) {
        for (StateId q2 : nfa.Next(q, static_cast<Symbol>(s))) {
          next.insert(q2);
        }
      }
      StateId nid = intern(std::vector<StateId>(next.begin(), next.end()));
      row[s] = nid;
      if (static_cast<size_t>(nid) >= next_of.size()) work.push(nid);
    }
    next_of.push_back(std::move(row));
  }

  // next_of may still miss subsets discovered in the last rounds.
  while (next_of.size() < subsets.size()) {
    StateId id = static_cast<StateId>(next_of.size());
    std::vector<StateId> row(sigma);
    for (size_t s = 0; s < sigma; ++s) {
      std::set<StateId> next;
      for (StateId q : subsets[static_cast<size_t>(id)]) {
        for (StateId q2 : nfa.Next(q, static_cast<Symbol>(s))) {
          next.insert(q2);
        }
      }
      row[s] = intern(std::vector<StateId>(next.begin(), next.end()));
    }
    next_of.push_back(std::move(row));
  }

  TMS_OBS_COUNT("automata.determinize.calls", 1);
  TMS_OBS_HISTOGRAM("automata.determinize.states", subsets.size());
  Dfa out(nfa.alphabet(), static_cast<int>(subsets.size()));
  out.SetInitial(start);
  for (StateId id = 0; id < out.num_states(); ++id) {
    bool acc = false;
    for (StateId q : subsets[static_cast<size_t>(id)]) {
      if (nfa.IsAccepting(q)) acc = true;
    }
    out.SetAccepting(id, acc);
    for (size_t s = 0; s < sigma; ++s) {
      out.SetTransition(id, static_cast<Symbol>(s),
                        next_of[static_cast<size_t>(id)][s]);
    }
  }
  return out;
}

namespace {

// States of `dfa` reachable from the initial state.
std::vector<StateId> ReachableStates(const Dfa& dfa) {
  std::vector<bool> seen(static_cast<size_t>(dfa.num_states()), false);
  std::queue<StateId> work;
  seen[static_cast<size_t>(dfa.initial())] = true;
  work.push(dfa.initial());
  while (!work.empty()) {
    StateId q = work.front();
    work.pop();
    for (size_t s = 0; s < dfa.alphabet().size(); ++s) {
      StateId q2 = dfa.Next(q, static_cast<Symbol>(s));
      if (!seen[static_cast<size_t>(q2)]) {
        seen[static_cast<size_t>(q2)] = true;
        work.push(q2);
      }
    }
  }
  std::vector<StateId> out;
  for (StateId q = 0; q < dfa.num_states(); ++q) {
    if (seen[static_cast<size_t>(q)]) out.push_back(q);
  }
  return out;
}

}  // namespace

Dfa Minimize(const Dfa& dfa) {
  const size_t sigma = dfa.alphabet().size();
  std::vector<StateId> reachable = ReachableStates(dfa);

  // Moore's partition refinement restricted to reachable states. (Hopcroft
  // is asymptotically better; Moore is simpler and quadratic in the small
  // automata tms manipulates.)
  std::vector<int> block(static_cast<size_t>(dfa.num_states()), -1);
  for (StateId q : reachable) block[static_cast<size_t>(q)] = dfa.IsAccepting(q) ? 1 : 0;

  int num_blocks = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature of each reachable state: (block, block of successors...).
    std::map<std::vector<int>, int> sig_to_block;
    std::vector<int> new_block(static_cast<size_t>(dfa.num_states()), -1);
    for (StateId q : reachable) {
      std::vector<int> sig;
      sig.reserve(sigma + 1);
      sig.push_back(block[static_cast<size_t>(q)]);
      for (size_t s = 0; s < sigma; ++s) {
        sig.push_back(
            block[static_cast<size_t>(dfa.Next(q, static_cast<Symbol>(s)))]);
      }
      auto it = sig_to_block.find(sig);
      if (it == sig_to_block.end()) {
        it = sig_to_block.emplace(std::move(sig),
                                  static_cast<int>(sig_to_block.size()))
                 .first;
      }
      new_block[static_cast<size_t>(q)] = it->second;
    }
    if (static_cast<int>(sig_to_block.size()) != num_blocks) changed = true;
    num_blocks = static_cast<int>(sig_to_block.size());
    block = std::move(new_block);
  }

  TMS_OBS_COUNT("automata.minimize.calls", 1);
  TMS_OBS_HISTOGRAM("automata.minimize.blocks", num_blocks);
  Dfa out(dfa.alphabet(), num_blocks);
  out.SetInitial(block[static_cast<size_t>(dfa.initial())]);
  for (StateId q : reachable) {
    StateId b = block[static_cast<size_t>(q)];
    out.SetAccepting(b, dfa.IsAccepting(q));
    for (size_t s = 0; s < sigma; ++s) {
      out.SetTransition(
          b, static_cast<Symbol>(s),
          block[static_cast<size_t>(dfa.Next(q, static_cast<Symbol>(s)))]);
    }
  }
  return out;
}

Dfa Product(const Dfa& a, const Dfa& b, BoolOp op) {
  TMS_CHECK(a.alphabet() == b.alphabet());
  const size_t sigma = a.alphabet().size();
  const int nb = b.num_states();
  TMS_OBS_COUNT("automata.product.calls", 1);
  TMS_OBS_HISTOGRAM("automata.product.states", a.num_states() * nb);
  Dfa out(a.alphabet(), a.num_states() * nb);
  auto id = [nb](StateId qa, StateId qb) {
    return static_cast<StateId>(qa * nb + qb);
  };
  out.SetInitial(id(a.initial(), b.initial()));
  for (StateId qa = 0; qa < a.num_states(); ++qa) {
    for (StateId qb = 0; qb < nb; ++qb) {
      bool acc = false;
      switch (op) {
        case BoolOp::kAnd:
          acc = a.IsAccepting(qa) && b.IsAccepting(qb);
          break;
        case BoolOp::kOr:
          acc = a.IsAccepting(qa) || b.IsAccepting(qb);
          break;
        case BoolOp::kDiff:
          acc = a.IsAccepting(qa) && !b.IsAccepting(qb);
          break;
      }
      out.SetAccepting(id(qa, qb), acc);
      for (size_t s = 0; s < sigma; ++s) {
        out.SetTransition(id(qa, qb), static_cast<Symbol>(s),
                          id(a.Next(qa, static_cast<Symbol>(s)),
                             b.Next(qb, static_cast<Symbol>(s))));
      }
    }
  }
  return out;
}

Dfa Complement(const Dfa& a) {
  Dfa out = a;
  for (StateId q = 0; q < out.num_states(); ++q) {
    out.SetAccepting(q, !a.IsAccepting(q));
  }
  return out;
}

Nfa NfaUnion(const Nfa& a, const Nfa& b) {
  TMS_CHECK(a.alphabet() == b.alphabet());
  // New initial state that mimics both initial states' outgoing behavior.
  Nfa out(a.alphabet(), a.num_states() + b.num_states() + 1);
  const StateId init = static_cast<StateId>(a.num_states() + b.num_states());
  const StateId boff = static_cast<StateId>(a.num_states());
  out.SetInitial(init);
  const size_t sigma = a.alphabet().size();
  for (StateId q = 0; q < a.num_states(); ++q) {
    out.SetAccepting(q, a.IsAccepting(q));
    for (size_t s = 0; s < sigma; ++s) {
      for (StateId q2 : a.Next(q, static_cast<Symbol>(s))) {
        out.AddTransition(q, static_cast<Symbol>(s), q2);
      }
    }
  }
  for (StateId q = 0; q < b.num_states(); ++q) {
    out.SetAccepting(boff + q, b.IsAccepting(q));
    for (size_t s = 0; s < sigma; ++s) {
      for (StateId q2 : b.Next(q, static_cast<Symbol>(s))) {
        out.AddTransition(boff + q, static_cast<Symbol>(s), boff + q2);
      }
    }
  }
  for (size_t s = 0; s < sigma; ++s) {
    for (StateId q2 : a.Next(a.initial(), static_cast<Symbol>(s))) {
      out.AddTransition(init, static_cast<Symbol>(s), q2);
    }
    for (StateId q2 : b.Next(b.initial(), static_cast<Symbol>(s))) {
      out.AddTransition(init, static_cast<Symbol>(s), boff + q2);
    }
  }
  if (a.IsAccepting(a.initial()) || b.IsAccepting(b.initial())) {
    out.SetAccepting(init, true);
  }
  return out;
}

Nfa NfaConcat(const Nfa& a, const Nfa& b) {
  TMS_CHECK(a.alphabet() == b.alphabet());
  Nfa out(a.alphabet(), a.num_states() + b.num_states());
  const StateId boff = static_cast<StateId>(a.num_states());
  const size_t sigma = a.alphabet().size();
  out.SetInitial(a.initial());
  // Copy a's transitions; whenever a transition would land in an accepting
  // state of a, also branch into b "as if b's initial had just been entered"
  // — i.e. add the edges of b's initial state from that point. Simpler and
  // ε-free: accepting states of a additionally carry b-initial's outgoing
  // edges.
  for (StateId q = 0; q < a.num_states(); ++q) {
    for (size_t s = 0; s < sigma; ++s) {
      for (StateId q2 : a.Next(q, static_cast<Symbol>(s))) {
        out.AddTransition(q, static_cast<Symbol>(s), q2);
      }
    }
  }
  for (StateId q = 0; q < b.num_states(); ++q) {
    out.SetAccepting(boff + q, b.IsAccepting(q));
    for (size_t s = 0; s < sigma; ++s) {
      for (StateId q2 : b.Next(q, static_cast<Symbol>(s))) {
        out.AddTransition(boff + q, static_cast<Symbol>(s), boff + q2);
      }
    }
  }
  for (StateId q = 0; q < a.num_states(); ++q) {
    if (!a.IsAccepting(q)) continue;
    for (size_t s = 0; s < sigma; ++s) {
      for (StateId q2 : b.Next(b.initial(), static_cast<Symbol>(s))) {
        out.AddTransition(q, static_cast<Symbol>(s), boff + q2);
      }
    }
  }
  // ε ∈ L(b) means accepting states of a are accepting in the result.
  if (b.IsAccepting(b.initial())) {
    for (StateId q = 0; q < a.num_states(); ++q) {
      if (a.IsAccepting(q)) out.SetAccepting(q, true);
    }
  }
  return out;
}

Nfa Reverse(const Nfa& a) {
  // Collapse all accepting states into a fresh initial state; the old
  // initial state becomes accepting.
  Nfa out(a.alphabet(), a.num_states() + 1);
  const StateId init = static_cast<StateId>(a.num_states());
  out.SetInitial(init);
  out.SetAccepting(a.initial(), true);
  const size_t sigma = a.alphabet().size();
  for (StateId q = 0; q < a.num_states(); ++q) {
    for (size_t s = 0; s < sigma; ++s) {
      for (StateId q2 : a.Next(q, static_cast<Symbol>(s))) {
        out.AddTransition(q2, static_cast<Symbol>(s), q);
        if (a.IsAccepting(q2)) {
          out.AddTransition(init, static_cast<Symbol>(s), q);
        }
      }
    }
  }
  // ε handling: if the original initial state is accepting, the reversal
  // also accepts ε.
  if (a.IsAccepting(a.initial())) out.SetAccepting(init, true);
  return out;
}

bool IsEmpty(const Nfa& a) {
  std::vector<bool> seen(static_cast<size_t>(a.num_states()), false);
  std::queue<StateId> work;
  seen[static_cast<size_t>(a.initial())] = true;
  work.push(a.initial());
  while (!work.empty()) {
    StateId q = work.front();
    work.pop();
    if (a.IsAccepting(q)) return false;
    for (size_t s = 0; s < a.alphabet().size(); ++s) {
      for (StateId q2 : a.Next(q, static_cast<Symbol>(s))) {
        if (!seen[static_cast<size_t>(q2)]) {
          seen[static_cast<size_t>(q2)] = true;
          work.push(q2);
        }
      }
    }
  }
  return true;
}

bool Equivalent(const Dfa& a, const Dfa& b) {
  Dfa sym_diff = Product(Product(a, b, BoolOp::kDiff),
                         Product(b, a, BoolOp::kDiff), BoolOp::kOr);
  return IsEmpty(sym_diff.ToNfa());
}

numeric::BigInt CountAcceptedStrings(const Dfa& a, int n) {
  TMS_CHECK(n >= 0);
  std::vector<numeric::BigInt> count(static_cast<size_t>(a.num_states()));
  count[static_cast<size_t>(a.initial())] = numeric::BigInt(1);
  for (int i = 0; i < n; ++i) {
    std::vector<numeric::BigInt> next(static_cast<size_t>(a.num_states()));
    for (StateId q = 0; q < a.num_states(); ++q) {
      if (count[static_cast<size_t>(q)].IsZero()) continue;
      for (size_t s = 0; s < a.alphabet().size(); ++s) {
        StateId q2 = a.Next(q, static_cast<Symbol>(s));
        next[static_cast<size_t>(q2)] += count[static_cast<size_t>(q)];
      }
    }
    count = std::move(next);
  }
  numeric::BigInt total;
  for (StateId q = 0; q < a.num_states(); ++q) {
    if (a.IsAccepting(q)) total += count[static_cast<size_t>(q)];
  }
  return total;
}

std::optional<Str> ShortestAccepted(const Nfa& a) {
  // BFS over subsets is exponential; BFS over single states suffices for
  // shortest-string existence since any accepting run visits single
  // states. Track the predecessor (state, symbol) for reconstruction.
  const int n = a.num_states();
  std::vector<int> pred_state(static_cast<size_t>(n), -1);
  std::vector<Symbol> pred_symbol(static_cast<size_t>(n), -1);
  std::vector<bool> seen(static_cast<size_t>(n), false);
  std::queue<StateId> work;
  seen[static_cast<size_t>(a.initial())] = true;
  work.push(a.initial());
  StateId goal = -1;
  if (a.IsAccepting(a.initial())) goal = a.initial();
  while (goal < 0 && !work.empty()) {
    StateId q = work.front();
    work.pop();
    for (size_t s = 0; s < a.alphabet().size() && goal < 0; ++s) {
      for (StateId q2 : a.Next(q, static_cast<Symbol>(s))) {
        if (seen[static_cast<size_t>(q2)]) continue;
        seen[static_cast<size_t>(q2)] = true;
        pred_state[static_cast<size_t>(q2)] = q;
        pred_symbol[static_cast<size_t>(q2)] = static_cast<Symbol>(s);
        if (a.IsAccepting(q2)) {
          goal = q2;
          break;
        }
        work.push(q2);
      }
    }
  }
  if (goal < 0) return std::nullopt;
  Str out;
  for (StateId q = goal; pred_state[static_cast<size_t>(q)] >= 0;
       q = pred_state[static_cast<size_t>(q)]) {
    out.push_back(pred_symbol[static_cast<size_t>(q)]);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

bool IsUniversal(const Dfa& a) { return IsEmpty(Complement(a).ToNfa()); }

namespace {

void EnumerateRec(const Nfa& a, int remaining, std::vector<StateId>* current,
                  Str* prefix, std::vector<Str>* out) {
  if (remaining == 0) {
    for (StateId q : *current) {
      if (a.IsAccepting(q)) {
        out->push_back(*prefix);
        return;
      }
    }
    return;
  }
  for (size_t s = 0; s < a.alphabet().size(); ++s) {
    std::set<StateId> next;
    for (StateId q : *current) {
      for (StateId q2 : a.Next(q, static_cast<Symbol>(s))) next.insert(q2);
    }
    if (next.empty()) continue;
    std::vector<StateId> next_vec(next.begin(), next.end());
    prefix->push_back(static_cast<Symbol>(s));
    EnumerateRec(a, remaining - 1, &next_vec, prefix, out);
    prefix->pop_back();
  }
}

}  // namespace

std::vector<Str> EnumerateAcceptedStrings(const Nfa& a, int n) {
  TMS_CHECK(n >= 0);
  std::vector<Str> out;
  std::vector<StateId> start = {a.initial()};
  Str prefix;
  EnumerateRec(a, n, &start, &prefix, &out);
  return out;
}

}  // namespace tms::automata
