// Deterministic finite automata.
//
// A Dfa is *complete*: δ(q, s) is defined for every state and symbol, as
// the paper requires (|δ_A(q,s)| = 1 for all q, s). Rejection happens by
// ending a run in a non-accepting (possibly dead) state.

#ifndef TMS_AUTOMATA_DFA_H_
#define TMS_AUTOMATA_DFA_H_

#include <vector>

#include "automata/nfa.h"
#include "common/status.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::automata {

/// A complete deterministic finite automaton.
class Dfa {
 public:
  /// A DFA over `alphabet` with `num_states` states, initial state 0, no
  /// accepting states, and every transition pointing at state 0 (callers
  /// are expected to set all transitions they care about).
  explicit Dfa(Alphabet alphabet, int num_states = 1);

  /// Adds a state (all its transitions initially self-loop) and returns it.
  StateId AddState();

  /// Sets δ(q, symbol) = q2.
  void SetTransition(StateId q, Symbol symbol, StateId q2);

  void SetInitial(StateId q);
  void SetAccepting(StateId q, bool accepting = true);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_states() const { return static_cast<int>(accepting_.size()); }
  StateId initial() const { return initial_; }
  bool IsAccepting(StateId q) const;

  /// δ(q, symbol).
  StateId Next(StateId q, Symbol symbol) const;

  /// The state reached from `from` after reading `s`.
  StateId Run(StateId from, const Str& s) const;

  /// True iff s ∈ L(A).
  bool Accepts(const Str& s) const { return IsAccepting(Run(initial_, s)); }

  /// True iff L(A) contains the empty string.
  bool AcceptsEmpty() const { return IsAccepting(initial_); }

  /// View of this DFA as an Nfa (singleton transition sets).
  Nfa ToNfa() const;

  /// Checks internal consistency.
  Status Validate() const;

  // --- Constructors for common languages -----------------------------

  /// DFA accepting every string of alphabet* (including ε).
  static Dfa AcceptAll(Alphabet alphabet);

  /// DFA accepting nothing.
  static Dfa AcceptNone(Alphabet alphabet);

  /// DFA accepting exactly {w}.
  static Dfa ExactString(Alphabet alphabet, const Str& w);

  /// DFA accepting exactly {ε}.
  static Dfa EmptyStringOnly(Alphabet alphabet) {
    return ExactString(std::move(alphabet), {});
  }

 private:
  Alphabet alphabet_;
  StateId initial_ = 0;
  std::vector<bool> accepting_;
  std::vector<StateId> delta_;  // delta_[q * |Σ| + s]

  size_t Index(StateId q, Symbol symbol) const;
};

}  // namespace tms::automata

#endif  // TMS_AUTOMATA_DFA_H_
