#include "automata/regex.h"

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "automata/ops.h"
#include "common/check.h"

namespace tms::automata {
namespace {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokType {
  kSymbol,   // one alphabet symbol
  kLParen,
  kRParen,
  kBar,
  kStar,
  kPlus,
  kQuestion,
  kDot,
  kLBracket,
  kRBracket,
  kCaret,
  kDash,
  kEnd,
};

struct Token {
  TokType type;
  Symbol symbol = -1;       // for kSymbol
  std::string text;         // for diagnostics
};

bool IsBarewordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == ',';
}

// Tokenizes in name mode: barewords and 'quoted' names are symbols.
Status TokenizeNames(const Alphabet& alphabet, std::string_view pattern,
                     std::vector<Token>* out) {
  size_t i = 0;
  while (i < pattern.size()) {
    char c = pattern[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    switch (c) {
      case '(':
        out->push_back({TokType::kLParen, -1, "("});
        ++i;
        continue;
      case ')':
        out->push_back({TokType::kRParen, -1, ")"});
        ++i;
        continue;
      case '|':
        out->push_back({TokType::kBar, -1, "|"});
        ++i;
        continue;
      case '*':
        out->push_back({TokType::kStar, -1, "*"});
        ++i;
        continue;
      case '+':
        out->push_back({TokType::kPlus, -1, "+"});
        ++i;
        continue;
      case '?':
        out->push_back({TokType::kQuestion, -1, "?"});
        ++i;
        continue;
      case '.':
        out->push_back({TokType::kDot, -1, "."});
        ++i;
        continue;
      case '[':
        out->push_back({TokType::kLBracket, -1, "["});
        ++i;
        continue;
      case ']':
        out->push_back({TokType::kRBracket, -1, "]"});
        ++i;
        continue;
      case '^':
        out->push_back({TokType::kCaret, -1, "^"});
        ++i;
        continue;
      case '-':
        out->push_back({TokType::kDash, -1, "-"});
        ++i;
        continue;
      default:
        break;
    }
    std::string name;
    if (c == '\'') {
      size_t end = pattern.find('\'', i + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted symbol");
      }
      name = std::string(pattern.substr(i + 1, end - i - 1));
      i = end + 1;
    } else if (IsBarewordChar(c)) {
      size_t end = i;
      while (end < pattern.size() && IsBarewordChar(pattern[end])) ++end;
      name = std::string(pattern.substr(i, end - i));
      i = end;
    } else {
      return Status::InvalidArgument(std::string("unexpected character '") +
                                     c + "' in pattern");
    }
    auto sym = alphabet.Find(name);
    if (!sym.ok()) return sym.status();
    out->push_back({TokType::kSymbol, *sym, name});
  }
  out->push_back({TokType::kEnd, -1, "<end>"});
  return Status::Ok();
}

// Tokenizes in character mode: every non-operator character is a symbol;
// '\' escapes the next character to a literal symbol.
Status TokenizeChars(const Alphabet& alphabet, std::string_view pattern,
                     std::vector<Token>* out) {
  size_t i = 0;
  while (i < pattern.size()) {
    char c = pattern[i];
    TokType op = TokType::kEnd;
    switch (c) {
      case '(': op = TokType::kLParen; break;
      case ')': op = TokType::kRParen; break;
      case '|': op = TokType::kBar; break;
      case '*': op = TokType::kStar; break;
      case '+': op = TokType::kPlus; break;
      case '?': op = TokType::kQuestion; break;
      case '.': op = TokType::kDot; break;
      case '[': op = TokType::kLBracket; break;
      case ']': op = TokType::kRBracket; break;
      case '^': op = TokType::kCaret; break;
      case '-': op = TokType::kDash; break;
      default: break;
    }
    if (op != TokType::kEnd) {
      out->push_back({op, -1, std::string(1, c)});
      ++i;
      continue;
    }
    if (c == '\\') {
      if (i + 1 >= pattern.size()) {
        return Status::InvalidArgument("trailing backslash in pattern");
      }
      c = pattern[i + 1];
      i += 2;
    } else {
      ++i;
    }
    auto sym = alphabet.Find(std::string(1, c));
    if (!sym.ok()) return sym.status();
    out->push_back({TokType::kSymbol, *sym, std::string(1, c)});
  }
  out->push_back({TokType::kEnd, -1, "<end>"});
  return Status::Ok();
}

// ---------------------------------------------------------------------
// Thompson construction over an ε-NFA
// ---------------------------------------------------------------------

struct EpsNfa {
  // eps[q] = ε-successors; sym[q] = list of (symbol, successor).
  std::vector<std::vector<int>> eps;
  std::vector<std::vector<std::pair<Symbol, int>>> sym;

  int AddState() {
    eps.emplace_back();
    sym.emplace_back();
    return static_cast<int>(eps.size()) - 1;
  }
};

// A fragment with one entry and one exit state.
struct Frag {
  int start;
  int accept;
};

class Parser {
 public:
  Parser(const Alphabet& alphabet, std::vector<Token> tokens)
      : alphabet_(alphabet), tokens_(std::move(tokens)) {}

  StatusOr<Frag> Parse() {
    auto frag = ParseAlt();
    if (!frag.ok()) return frag.status();
    if (Peek().type != TokType::kEnd) {
      return Status::InvalidArgument("unexpected token '" + Peek().text +
                                     "' in pattern");
    }
    return frag;
  }

  EpsNfa& graph() { return graph_; }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  Frag MakeSymbolSet(const std::set<Symbol>& symbols) {
    Frag f{graph_.AddState(), graph_.AddState()};
    for (Symbol s : symbols) graph_.sym[static_cast<size_t>(f.start)].push_back({s, f.accept});
    return f;
  }

  StatusOr<Frag> ParseAlt() {
    auto lhs = ParseConcat();
    if (!lhs.ok()) return lhs.status();
    Frag result = *lhs;
    while (Peek().type == TokType::kBar) {
      Take();
      auto rhs = ParseConcat();
      if (!rhs.ok()) return rhs.status();
      Frag merged{graph_.AddState(), graph_.AddState()};
      graph_.eps[static_cast<size_t>(merged.start)].push_back(result.start);
      graph_.eps[static_cast<size_t>(merged.start)].push_back(rhs->start);
      graph_.eps[static_cast<size_t>(result.accept)].push_back(merged.accept);
      graph_.eps[static_cast<size_t>(rhs->accept)].push_back(merged.accept);
      result = merged;
    }
    return result;
  }

  bool StartsAtom(TokType t) const {
    return t == TokType::kSymbol || t == TokType::kLParen ||
           t == TokType::kDot || t == TokType::kLBracket;
  }

  StatusOr<Frag> ParseConcat() {
    // An empty concatenation matches ε.
    Frag result{graph_.AddState(), graph_.AddState()};
    graph_.eps[static_cast<size_t>(result.start)].push_back(result.accept);
    bool first = true;
    while (StartsAtom(Peek().type)) {
      auto piece = ParseRepeat();
      if (!piece.ok()) return piece.status();
      if (first) {
        result = *piece;
        first = false;
      } else {
        graph_.eps[static_cast<size_t>(result.accept)].push_back(piece->start);
        result.accept = piece->accept;
      }
    }
    return result;
  }

  StatusOr<Frag> ParseRepeat() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom.status();
    Frag result = *atom;
    while (Peek().type == TokType::kStar || Peek().type == TokType::kPlus ||
           Peek().type == TokType::kQuestion) {
      TokType op = Take().type;
      Frag wrapped{graph_.AddState(), graph_.AddState()};
      graph_.eps[static_cast<size_t>(wrapped.start)].push_back(result.start);
      graph_.eps[static_cast<size_t>(result.accept)].push_back(wrapped.accept);
      if (op == TokType::kStar || op == TokType::kQuestion) {
        graph_.eps[static_cast<size_t>(wrapped.start)].push_back(
            wrapped.accept);
      }
      if (op == TokType::kStar || op == TokType::kPlus) {
        graph_.eps[static_cast<size_t>(result.accept)].push_back(result.start);
      }
      result = wrapped;
    }
    return result;
  }

  StatusOr<Frag> ParseAtom() {
    const Token tok = Take();
    switch (tok.type) {
      case TokType::kSymbol:
        return MakeSymbolSet({tok.symbol});
      case TokType::kDot: {
        std::set<Symbol> all;
        for (size_t s = 0; s < alphabet_.size(); ++s) {
          all.insert(static_cast<Symbol>(s));
        }
        return MakeSymbolSet(all);
      }
      case TokType::kLParen: {
        auto inner = ParseAlt();
        if (!inner.ok()) return inner.status();
        if (Peek().type != TokType::kRParen) {
          return Status::InvalidArgument("expected ')' in pattern");
        }
        Take();
        return inner;
      }
      case TokType::kLBracket:
        return ParseClass();
      default:
        return Status::InvalidArgument("unexpected token '" + tok.text +
                                       "' in pattern");
    }
  }

  StatusOr<Frag> ParseClass() {
    bool negated = false;
    if (Peek().type == TokType::kCaret) {
      Take();
      negated = true;
    }
    std::set<Symbol> members;
    while (Peek().type != TokType::kRBracket) {
      if (Peek().type == TokType::kEnd) {
        return Status::InvalidArgument("unterminated character class");
      }
      Token tok = Take();
      if (tok.type != TokType::kSymbol) {
        return Status::InvalidArgument("unexpected token '" + tok.text +
                                       "' in character class");
      }
      if (Peek().type == TokType::kDash) {
        Take();
        Token hi = Take();
        if (hi.type != TokType::kSymbol) {
          return Status::InvalidArgument("malformed range in character class");
        }
        if (tok.text.size() != 1 || hi.text.size() != 1) {
          return Status::InvalidArgument(
              "ranges require single-character symbol names");
        }
        for (char c = tok.text[0]; c <= hi.text[0]; ++c) {
          auto sym = alphabet_.Find(std::string(1, c));
          if (sym.ok()) members.insert(*sym);
        }
      } else {
        members.insert(tok.symbol);
      }
    }
    Take();  // ']'
    if (negated) {
      std::set<Symbol> inverted;
      for (size_t s = 0; s < alphabet_.size(); ++s) {
        if (!members.count(static_cast<Symbol>(s))) {
          inverted.insert(static_cast<Symbol>(s));
        }
      }
      members = std::move(inverted);
    }
    if (members.empty()) {
      return Status::InvalidArgument("empty character class matches nothing");
    }
    return MakeSymbolSet(members);
  }

  const Alphabet& alphabet_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  EpsNfa graph_;
};

// ε-closure of a single state.
std::vector<int> EpsClosure(const EpsNfa& g, int q) {
  std::vector<bool> seen(g.eps.size(), false);
  std::vector<int> stack = {q};
  seen[static_cast<size_t>(q)] = true;
  std::vector<int> out;
  while (!stack.empty()) {
    int cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    for (int next : g.eps[static_cast<size_t>(cur)]) {
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        stack.push_back(next);
      }
    }
  }
  return out;
}

// Converts the Thompson ε-NFA fragment into an ε-free Nfa.
Nfa EliminateEpsilon(const Alphabet& alphabet, const EpsNfa& g, Frag frag) {
  const int n = static_cast<int>(g.eps.size());
  Nfa out(alphabet, n);
  out.SetInitial(frag.start);
  for (int q = 0; q < n; ++q) {
    std::vector<int> closure = EpsClosure(g, q);
    bool accepting = false;
    for (int p : closure) {
      if (p == frag.accept) accepting = true;
      for (const auto& [symbol, next] : g.sym[static_cast<size_t>(p)]) {
        out.AddTransition(q, symbol, next);
      }
    }
    out.SetAccepting(q, accepting);
  }
  return out;
}

StatusOr<Nfa> CompileTokens(const Alphabet& alphabet,
                            std::vector<Token> tokens) {
  Parser parser(alphabet, std::move(tokens));
  auto frag = parser.Parse();
  if (!frag.ok()) return frag.status();
  return EliminateEpsilon(alphabet, parser.graph(), *frag);
}

}  // namespace

StatusOr<Nfa> CompileRegex(const Alphabet& alphabet,
                           std::string_view pattern) {
  std::vector<Token> tokens;
  TMS_RETURN_IF_ERROR(TokenizeNames(alphabet, pattern, &tokens));
  return CompileTokens(alphabet, std::move(tokens));
}

StatusOr<Nfa> CompileCharRegex(const Alphabet& alphabet,
                               std::string_view pattern) {
  for (const std::string& name : alphabet.names()) {
    if (name.size() != 1) {
      return Status::InvalidArgument(
          "CompileCharRegex requires single-character symbol names; got: " +
          name);
    }
  }
  std::vector<Token> tokens;
  TMS_RETURN_IF_ERROR(TokenizeChars(alphabet, pattern, &tokens));
  return CompileTokens(alphabet, std::move(tokens));
}

StatusOr<Dfa> CompileRegexToDfa(const Alphabet& alphabet,
                                std::string_view pattern) {
  auto nfa = CompileRegex(alphabet, pattern);
  if (!nfa.ok()) return nfa.status();
  return Minimize(Determinize(*nfa));
}

StatusOr<Dfa> CompileCharRegexToDfa(const Alphabet& alphabet,
                                    std::string_view pattern) {
  auto nfa = CompileCharRegex(alphabet, pattern);
  if (!nfa.ok()) return nfa.status();
  return Minimize(Determinize(*nfa));
}

}  // namespace tms::automata
