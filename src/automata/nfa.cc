#include "automata/nfa.h"

#include <algorithm>

#include "common/check.h"

namespace tms::automata {

Nfa::Nfa(Alphabet alphabet, int num_states) : alphabet_(std::move(alphabet)) {
  TMS_CHECK(num_states >= 0);
  accepting_.assign(static_cast<size_t>(num_states), false);
  delta_.assign(static_cast<size_t>(num_states) * alphabet_.size(), {});
}

StateId Nfa::AddState() {
  StateId id = static_cast<StateId>(accepting_.size());
  accepting_.push_back(false);
  delta_.resize(delta_.size() + alphabet_.size());
  return id;
}

size_t Nfa::Index(StateId q, Symbol symbol) const {
  TMS_DCHECK(q >= 0 && q < num_states());
  TMS_DCHECK(alphabet_.IsValid(symbol));
  return static_cast<size_t>(q) * alphabet_.size() +
         static_cast<size_t>(symbol);
}

void Nfa::AddTransition(StateId q, Symbol symbol, StateId q2) {
  TMS_CHECK(q2 >= 0 && q2 < num_states());
  std::vector<StateId>& set = delta_[Index(q, symbol)];
  auto it = std::lower_bound(set.begin(), set.end(), q2);
  if (it == set.end() || *it != q2) set.insert(it, q2);
}

void Nfa::SetInitial(StateId q) {
  TMS_CHECK(q >= 0 && q < num_states());
  initial_ = q;
}

void Nfa::SetAccepting(StateId q, bool accepting) {
  TMS_CHECK(q >= 0 && q < num_states());
  accepting_[static_cast<size_t>(q)] = accepting;
}

bool Nfa::IsAccepting(StateId q) const {
  TMS_CHECK(q >= 0 && q < num_states());
  return accepting_[static_cast<size_t>(q)];
}

const std::vector<StateId>& Nfa::Next(StateId q, Symbol symbol) const {
  return delta_[Index(q, symbol)];
}

bool Nfa::IsDeterministic() const {
  for (const std::vector<StateId>& set : delta_) {
    if (set.size() != 1) return false;
  }
  return true;
}

std::vector<StateId> Nfa::ReachableSet(const std::vector<StateId>& from,
                                       const Str& s) const {
  std::vector<bool> cur(static_cast<size_t>(num_states()), false);
  for (StateId q : from) {
    TMS_CHECK(q >= 0 && q < num_states());
    cur[static_cast<size_t>(q)] = true;
  }
  for (Symbol symbol : s) {
    std::vector<bool> next(static_cast<size_t>(num_states()), false);
    for (StateId q = 0; q < num_states(); ++q) {
      if (!cur[static_cast<size_t>(q)]) continue;
      for (StateId q2 : Next(q, symbol)) next[static_cast<size_t>(q2)] = true;
    }
    cur = std::move(next);
  }
  std::vector<StateId> out;
  for (StateId q = 0; q < num_states(); ++q) {
    if (cur[static_cast<size_t>(q)]) out.push_back(q);
  }
  return out;
}

bool Nfa::Accepts(const Str& s) const {
  for (StateId q : ReachableSet({initial_}, s)) {
    if (IsAccepting(q)) return true;
  }
  return false;
}

Status Nfa::Validate() const {
  if (num_states() == 0) {
    return Status::InvalidArgument("automaton has no states");
  }
  if (initial_ < 0 || initial_ >= num_states()) {
    return Status::InvalidArgument("initial state out of range");
  }
  for (const std::vector<StateId>& set : delta_) {
    for (StateId q : set) {
      if (q < 0 || q >= num_states()) {
        return Status::InvalidArgument("transition target out of range");
      }
    }
  }
  return Status::Ok();
}

}  // namespace tms::automata
