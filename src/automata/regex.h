// Regular-expression compiler.
//
// The paper specifies s-projector components as regular expressions over
// the node alphabet (Example 5.1 uses Perl-style expressions such as
// ".*Name:" and "[a-zA-Z,]+"). This compiler turns such patterns into
// ε-free NFAs (Thompson construction followed by ε-elimination); callers
// then Determinize() to obtain the DFAs the s-projector definition needs.
//
// Two token modes are supported:
//
//  * Compile(): atoms are whitespace-separated symbol *names* (barewords of
//    [A-Za-z0-9_:,] or 'single-quoted' strings), suitable for alphabets
//    with multi-character names such as the running example's r_1a.
//        "( r1a | r1b ) * la"
//  * CompileChars(): every non-operator character is one symbol, suitable
//    for character alphabets:  ".*Name:" , "[a-zA-Z,]+".
//
// Operators in both modes: concatenation (juxtaposition), alternation '|',
// grouping '(...)', postfix '*' '+' '?', wildcard '.', classes
// '[...]' / '[^...]' with 'a-z' ranges between single-character names.

#ifndef TMS_AUTOMATA_REGEX_H_
#define TMS_AUTOMATA_REGEX_H_

#include <string_view>

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "common/status.h"
#include "strings/alphabet.h"

namespace tms::automata {

/// Compiles a pattern whose atoms are symbol names. Fails on syntax errors
/// or names not in `alphabet`.
StatusOr<Nfa> CompileRegex(const Alphabet& alphabet, std::string_view pattern);

/// Compiles a pattern whose atoms are single characters. Fails on syntax
/// errors or characters not in `alphabet` (every symbol name in `alphabet`
/// must be a single character).
StatusOr<Nfa> CompileCharRegex(const Alphabet& alphabet,
                               std::string_view pattern);

/// Convenience: compile (name-token mode), determinize, and minimize.
StatusOr<Dfa> CompileRegexToDfa(const Alphabet& alphabet,
                                std::string_view pattern);

/// Convenience: compile (character mode), determinize, and minimize.
StatusOr<Dfa> CompileCharRegexToDfa(const Alphabet& alphabet,
                                    std::string_view pattern);

}  // namespace tms::automata

#endif  // TMS_AUTOMATA_REGEX_H_
