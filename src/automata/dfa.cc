#include "automata/dfa.h"

#include "common/check.h"

namespace tms::automata {

Dfa::Dfa(Alphabet alphabet, int num_states) : alphabet_(std::move(alphabet)) {
  TMS_CHECK(num_states >= 1);
  accepting_.assign(static_cast<size_t>(num_states), false);
  delta_.assign(static_cast<size_t>(num_states) * alphabet_.size(), 0);
}

StateId Dfa::AddState() {
  StateId id = static_cast<StateId>(accepting_.size());
  accepting_.push_back(false);
  delta_.resize(delta_.size() + alphabet_.size(), id);  // self-loops
  for (size_t s = 0; s < alphabet_.size(); ++s) {
    delta_[static_cast<size_t>(id) * alphabet_.size() + s] = id;
  }
  return id;
}

size_t Dfa::Index(StateId q, Symbol symbol) const {
  TMS_DCHECK(q >= 0 && q < num_states());
  TMS_DCHECK(alphabet_.IsValid(symbol));
  return static_cast<size_t>(q) * alphabet_.size() +
         static_cast<size_t>(symbol);
}

void Dfa::SetTransition(StateId q, Symbol symbol, StateId q2) {
  TMS_CHECK(q2 >= 0 && q2 < num_states());
  delta_[Index(q, symbol)] = q2;
}

void Dfa::SetInitial(StateId q) {
  TMS_CHECK(q >= 0 && q < num_states());
  initial_ = q;
}

void Dfa::SetAccepting(StateId q, bool accepting) {
  TMS_CHECK(q >= 0 && q < num_states());
  accepting_[static_cast<size_t>(q)] = accepting;
}

bool Dfa::IsAccepting(StateId q) const {
  TMS_CHECK(q >= 0 && q < num_states());
  return accepting_[static_cast<size_t>(q)];
}

StateId Dfa::Next(StateId q, Symbol symbol) const {
  return delta_[Index(q, symbol)];
}

StateId Dfa::Run(StateId from, const Str& s) const {
  StateId q = from;
  for (Symbol symbol : s) q = Next(q, symbol);
  return q;
}

Nfa Dfa::ToNfa() const {
  Nfa out(alphabet_, num_states());
  out.SetInitial(initial_);
  for (StateId q = 0; q < num_states(); ++q) {
    out.SetAccepting(q, IsAccepting(q));
    for (size_t s = 0; s < alphabet_.size(); ++s) {
      out.AddTransition(q, static_cast<Symbol>(s),
                        Next(q, static_cast<Symbol>(s)));
    }
  }
  return out;
}

Status Dfa::Validate() const {
  if (num_states() == 0) {
    return Status::InvalidArgument("DFA has no states");
  }
  if (initial_ < 0 || initial_ >= num_states()) {
    return Status::InvalidArgument("initial state out of range");
  }
  for (StateId q : delta_) {
    if (q < 0 || q >= num_states()) {
      return Status::InvalidArgument("transition target out of range");
    }
  }
  return Status::Ok();
}

Dfa Dfa::AcceptAll(Alphabet alphabet) {
  Dfa out(std::move(alphabet), 1);
  out.SetAccepting(0, true);
  return out;
}

Dfa Dfa::AcceptNone(Alphabet alphabet) { return Dfa(std::move(alphabet), 1); }

Dfa Dfa::ExactString(Alphabet alphabet, const Str& w) {
  // States 0..|w| along the spine plus a dead state.
  int n = static_cast<int>(w.size());
  Dfa out(std::move(alphabet), n + 2);
  const StateId dead = static_cast<StateId>(n + 1);
  for (StateId q = 0; q <= static_cast<StateId>(n + 1); ++q) {
    for (size_t s = 0; s < out.alphabet().size(); ++s) {
      out.SetTransition(q, static_cast<Symbol>(s), dead);
    }
  }
  for (int i = 0; i < n; ++i) {
    out.SetTransition(static_cast<StateId>(i), w[static_cast<size_t>(i)],
                      static_cast<StateId>(i + 1));
  }
  out.SetAccepting(static_cast<StateId>(n), true);
  return out;
}

}  // namespace tms::automata
