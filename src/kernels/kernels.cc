#include "kernels/kernels.h"

#include <cmath>

#include "obs/obs.h"

namespace tms::kernels {

bool HasNaN(const double* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(p[i])) return true;
  }
  return false;
}

namespace internal {

void CountGemv(size_t cells) {
  TMS_OBS_COUNT("kernels.gemv.calls", 1);
  TMS_OBS_COUNT("kernels.gemv.cells", static_cast<int64_t>(cells));
  (void)cells;
}

void CountGemm(size_t cells) {
  TMS_OBS_COUNT("kernels.gemm.calls", 1);
  TMS_OBS_COUNT("kernels.gemm.cells", static_cast<int64_t>(cells));
  (void)cells;
}

void CountArgmax(size_t cells) {
  TMS_OBS_COUNT("kernels.argmax.calls", 1);
  TMS_OBS_COUNT("kernels.argmax.cells", static_cast<int64_t>(cells));
  (void)cells;
}

}  // namespace internal

namespace ref {

void MaxPlusGemvArgmax(const Matrix<double>& A, const Vector<double>& x,
                       Vector<double>* y, Vector<int32_t>* arg) {
  TMS_DCHECK(A.cols() == x.size() && A.rows() == y->size() &&
             A.rows() == arg->size());
  for (size_t i = 0; i < A.rows(); ++i) {
    double best = MaxPlus::Zero();
    int32_t best_j = 0;
    for (size_t j = 0; j < A.cols(); ++j) {
      double v = A(i, j) + x[j];
      if (v > best) {
        best = v;
        best_j = static_cast<int32_t>(j);
      }
    }
    (*y)[i] = best;
    (*arg)[i] = best_j;
  }
}

void MaxPlusGemmTNArgmax(const Matrix<double>& A, const Matrix<double>& B,
                         Matrix<double>* C, Matrix<int32_t>* Arg) {
  TMS_DCHECK(A.rows() == B.rows() && A.cols() == C->rows() &&
             B.cols() == C->cols() && Arg->rows() == C->rows() &&
             Arg->cols() == C->cols());
  for (size_t i = 0; i < C->rows(); ++i) {
    for (size_t j = 0; j < C->cols(); ++j) {
      double best = MaxPlus::Zero();
      int32_t best_k = 0;
      for (size_t k = 0; k < A.rows(); ++k) {
        double v = A(k, i) + B(k, j);
        if (v > best) {
          best = v;
          best_k = static_cast<int32_t>(k);
        }
      }
      (*C)(i, j) = best;
      (*Arg)(i, j) = best_k;
    }
  }
}

}  // namespace ref

void MaxPlusEdgeScatter(const Matrix<double>& src, const int32_t* off,
                        const int32_t* tgt, Matrix<double>* dst) {
  TMS_DCHECK(src.rows() == dst->rows());
  const size_t rows = src.rows(), cols = src.cols();
  dst->Fill(MaxPlus::Zero());
  for (size_t r = 0; r < rows; ++r) {
    const double* TMS_RESTRICT srow = src.row(r);
    double* TMS_RESTRICT drow = dst->row(r);
    const int32_t* TMS_RESTRICT o = off + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      const double v = srow[c];
      for (int32_t e = o[c]; e < o[c + 1]; ++e) {
        const int32_t t = tgt[e];
        drow[t] = v > drow[t] ? v : drow[t];
      }
    }
  }
}

void MaxPlusGemvArgmax(const Matrix<double>& A, const Vector<double>& x,
                       Vector<double>* y, Vector<int32_t>* arg) {
  TMS_DCHECK(A.cols() == x.size() && A.rows() == y->size() &&
             A.rows() == arg->size());
  const size_t m = A.rows(), n = A.cols();
  const double* TMS_RESTRICT xp = x.data();
  double* TMS_RESTRICT yp = y->data();
  int32_t* TMS_RESTRICT ap = arg->data();
  for (size_t i = 0; i < m; ++i) {
    const double* TMS_RESTRICT a = A.row(i);
    double best = MaxPlus::Zero();
    int32_t best_j = 0;
    // Strict > with ascending j keeps the smallest maximizing index —
    // the select-compress pattern GCC turns into masked compares.
    for (size_t j = 0; j < n; ++j) {
      double v = a[j] + xp[j];
      if (v > best) {
        best = v;
        best_j = static_cast<int32_t>(j);
      }
    }
    yp[i] = best;
    ap[i] = best_j;
  }
  internal::CountArgmax(m * n);
}

void MaxPlusGemmTNArgmax(const Matrix<double>& A, const Matrix<double>& B,
                         Matrix<double>* C, Matrix<int32_t>* Arg) {
  TMS_DCHECK(A.rows() == B.rows() && A.cols() == C->rows() &&
             B.cols() == C->cols() && Arg->rows() == C->rows() &&
             Arg->cols() == C->cols());
  const size_t K = A.rows(), m = C->rows(), n = C->cols();
  C->Fill(MaxPlus::Zero());
  Arg->Fill(0);
  // k-outer: each (k,i) broadcasts one A score across contiguous B/C/Arg
  // rows. Strict > with k ascending preserves the smallest-k tie-break of
  // the scalar reference exactly — the Viterbi backpointer contract.
  for (size_t k = 0; k < K; ++k) {
    const double* TMS_RESTRICT arow = A.row(k);
    const double* TMS_RESTRICT brow = B.row(k);
    for (size_t i = 0; i < m; ++i) {
      const double a = arow[i];
      double* TMS_RESTRICT crow = C->row(i);
      int32_t* TMS_RESTRICT grow = Arg->row(i);
      const int32_t kk = static_cast<int32_t>(k);
      for (size_t j = 0; j < n; ++j) {
        double v = a + brow[j];
        if (v > crow[j]) {
          crow[j] = v;
          grow[j] = kk;
        }
      }
    }
  }
  internal::CountArgmax(K * m * n);
}

// Hot-path instantiations, compiled here under this file's vectorization
// flags (see src/CMakeLists.txt) and declared extern in kernels.h.
#define TMS_KERNELS_INSTANTIATE_SR(SR)                                   \
  template void Gemv<SR>(const Matrix<SR::Value>&,                       \
                         const Vector<SR::Value>&, Vector<SR::Value>*);  \
  template void GemvT<SR>(const Matrix<SR::Value>&,                      \
                          const Vector<SR::Value>&, Vector<SR::Value>*); \
  template void GemmTN<SR>(const Matrix<SR::Value>&,                     \
                           const Matrix<SR::Value>&, Matrix<SR::Value>*); \
  template void RowReduce<SR>(const Matrix<SR::Value>&,                  \
                              Vector<SR::Value>*)
TMS_KERNELS_INSTANTIATE_SR(MaxPlus);
TMS_KERNELS_INSTANTIATE_SR(LogSumExp);
TMS_KERNELS_INSTANTIATE_SR(Real);
TMS_KERNELS_INSTANTIATE_SR(BoolOr);
#undef TMS_KERNELS_INSTANTIATE_SR

}  // namespace tms::kernels
