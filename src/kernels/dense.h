// Contiguous row-major Matrix / Vector handles for the kernel layer.
//
// These are lightweight views: a pointer plus dimensions, 16 bytes of
// state, trivially copyable. They either wrap caller-owned contiguous
// storage (e.g. the flat std::vector behind a precomputed log tensor) or
// carve uninitialized backing out of an Arena for per-evaluation scratch.
// They never own memory and never free it; arena-backed views die with
// the next Arena::Reset().
//
// Layout is strictly row-major with leading dimension == cols (no pitch),
// which is what lets the kernels run unit-stride inner loops the compiler
// can vectorize.

#ifndef TMS_KERNELS_DENSE_H_
#define TMS_KERNELS_DENSE_H_

#include <algorithm>
#include <cstddef>

#include "common/check.h"
#include "kernels/arena.h"

namespace tms::kernels {

template <typename T>
class Vector {
 public:
  Vector() : data_(nullptr), size_(0) {}
  /// Wraps caller-owned contiguous storage.
  Vector(T* data, size_t size) : data_(data), size_(size) {}
  /// Carves uninitialized storage out of `arena`.
  Vector(Arena* arena, size_t size)
      : data_(arena->Alloc<T>(size)), size_(size) {}

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  void Fill(T v) { std::fill(data_, data_ + size_, v); }

 private:
  T* data_;
  size_t size_;
};

template <typename T>
class Matrix {
 public:
  Matrix() : data_(nullptr), rows_(0), cols_(0) {}
  /// Wraps caller-owned row-major storage of shape rows × cols.
  Matrix(T* data, size_t rows, size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  /// Carves uninitialized rows × cols storage out of `arena`.
  Matrix(Arena* arena, size_t rows, size_t cols)
      : data_(arena->Alloc<T>(rows * cols)), rows_(rows), cols_(cols) {}

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return rows_ * cols_; }

  T* row(size_t r) { return data_ + r * cols_; }
  const T* row(size_t r) const { return data_ + r * cols_; }

  T& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(size_t r, size_t c) const {
    return data_[r * cols_ + c];
  }

  void Fill(T v) { std::fill(data_, data_ + rows_ * cols_, v); }

 private:
  T* data_;
  size_t rows_;
  size_t cols_;
};

}  // namespace tms::kernels

#endif  // TMS_KERNELS_DENSE_H_
