// Per-evaluation bump allocator for kernel scratch memory.
//
// Every DP solve in the hot paths (Viterbi, confidence, the membership
// oracle) needs a handful of short-lived dense buffers whose sizes depend
// on the instance. Allocating them through the general heap puts malloc on
// the per-solve path and scatters the layers across the address space; an
// Arena hands out 64-byte-aligned slices of one contiguous block, and
// Reset() recycles the whole block for the next evaluation in O(1).
//
// An Arena is single-threaded by design: hot paths keep one thread_local
// instance, so concurrent subspace solves never share scratch. Memory
// handed out by Alloc() is uninitialized and is invalidated by the next
// Reset() — kernel buffers, not long-lived state.

#ifndef TMS_KERNELS_ARENA_H_
#define TMS_KERNELS_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "common/check.h"

namespace tms::kernels {

class Arena {
 public:
  explicit Arena(size_t initial_bytes = 1 << 14)
      : reserve_bytes_(initial_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns an uninitialized, 64-byte-aligned array of `count` T.
  /// Valid until the next Reset(). count == 0 returns a non-null,
  /// dereference-free pointer so empty views stay well-formed.
  template <typename T>
  T* Alloc(size_t count) {
    static_assert(alignof(T) <= kAlign, "over-aligned kernel element type");
    size_t bytes = (count * sizeof(T) + kAlign - 1) & ~(kAlign - 1);
    if (used_ + bytes > block_bytes_) Grow(bytes);
    T* out = reinterpret_cast<T*>(
        reinterpret_cast<char*>(block_.get()) + used_);
    used_ += bytes;
    high_water_ = used_ > high_water_ ? used_ : high_water_;
    return out;
  }

  /// Recycles every allocation; capacity is retained. If the previous
  /// evaluation overflowed into a larger block, the next allocations come
  /// from that block directly (no further growth for same-shape solves).
  void Reset() { used_ = 0; }

  size_t bytes_in_use() const { return used_; }
  size_t capacity() const { return block_bytes_; }
  /// Largest bytes_in_use observed since construction (exported by the
  /// kernels.arena.* gauges at the call sites).
  size_t high_water() const { return high_water_; }

 private:
  static constexpr size_t kAlign = 64;

  // The block is an array of alignas(64) chunks rather than raw bytes via
  // placement-aligned new: unique_ptr's default deleter then pairs the
  // aligned operator new[]/delete[] correctly.
  struct alignas(kAlign) Chunk {
    char bytes[kAlign];
  };

  void Grow(size_t need_bytes) {
    // Geometric growth; the old block is kept alive until Reset-free
    // allocations from it are dead (i.e. forever — blocks are only
    // retired by replacing `block_`, and outstanding pointers from the
    // current evaluation may still reference it), so stash it.
    size_t next = block_bytes_ * 2 > reserve_bytes_ ? block_bytes_ * 2
                                                    : reserve_bytes_;
    while (next < used_ + need_bytes) next *= 2;
    size_t chunks = (next + kAlign - 1) / kAlign;
    std::unique_ptr<Chunk[]> fresh(new Chunk[chunks]);
    if (block_ != nullptr) retired_.push_back(std::move(block_));
    block_ = std::move(fresh);
    block_bytes_ = chunks * kAlign;
    // Allocations made before the growth stay valid in the retired block;
    // new ones start at the head of the fresh block.
    used_ = 0;
  }

  size_t reserve_bytes_;
  std::unique_ptr<Chunk[]> block_;
  size_t block_bytes_ = 0;
  size_t used_ = 0;
  size_t high_water_ = 0;
  // Blocks superseded mid-evaluation; freed on destruction. Reset() does
  // not free them (pointers from the current evaluation may still point
  // in), but after a Reset the next Grow cycle replaces block_ only, so
  // the list stays bounded by the number of growth steps.
  std::vector<std::unique_ptr<Chunk[]>> retired_;
};

}  // namespace tms::kernels

#endif  // TMS_KERNELS_ARENA_H_
