#include "kernels/sparse.h"

#include <string>

#include "obs/obs.h"

namespace tms::kernels {

Backend ChooseBackend(BackendChoice choice, double density, size_t dim,
                      bool has_sparse) {
  Backend picked = Backend::kDense;
  bool fallback = false;
  switch (choice) {
    case BackendChoice::kDense:
      break;
    case BackendChoice::kSparse:
      if (has_sparse) {
        picked = Backend::kSparse;
      } else {
        fallback = true;  // no CSR views were built; dense is all we have
      }
      break;
    case BackendChoice::kAuto:
      if (has_sparse && density <= kAutoSparseMaxDensity &&
          dim >= kAutoSparseMinDim) {
        picked = Backend::kSparse;
      }
      break;
  }
  if (picked == Backend::kSparse) {
    TMS_OBS_COUNT("kernels.sparse.chosen", 1);
  } else if (fallback) {
    TMS_OBS_COUNT("kernels.sparse.fallback", 1);
  } else {
    TMS_OBS_COUNT("kernels.sparse.rejected", 1);
  }
  return picked;
}

const char* BackendName(Backend backend) {
  return backend == Backend::kSparse ? "sparse" : "dense";
}

const char* BackendChoiceName(BackendChoice choice) {
  switch (choice) {
    case BackendChoice::kDense:
      return "dense";
    case BackendChoice::kSparse:
      return "sparse";
    case BackendChoice::kAuto:
      break;
  }
  return "auto";
}

std::optional<BackendChoice> ParseBackendChoice(const std::string& name) {
  if (name == "dense") return BackendChoice::kDense;
  if (name == "sparse") return BackendChoice::kSparse;
  if (name == "auto") return BackendChoice::kAuto;
  return std::nullopt;
}

size_t BuildCsr(const double* dense, size_t rows, size_t cols,
                std::vector<int32_t>* off, std::vector<int32_t>* idx,
                std::vector<double>* out_val) {
  off->clear();
  idx->clear();
  out_val->clear();
  off->reserve(rows + 1);
  off->push_back(0);
  for (size_t r = 0; r < rows; ++r) {
    const double* row = dense + r * cols;
    for (size_t c = 0; c < cols; ++c) {
      if (row[c] > 0.0) {
        idx->push_back(static_cast<int32_t>(c));
        out_val->push_back(row[c]);
      }
    }
    off->push_back(static_cast<int32_t>(idx->size()));
  }
  return idx->size();
}

size_t BuildCsrTranspose(const double* dense, size_t rows, size_t cols,
                         std::vector<int32_t>* off, std::vector<int32_t>* idx,
                         std::vector<double>* out_val) {
  // Column-outer scan keeps the output rows (= input columns) ascending
  // in the inner index, i.e. a valid CSR of the transpose.
  off->clear();
  idx->clear();
  out_val->clear();
  off->reserve(cols + 1);
  off->push_back(0);
  for (size_t c = 0; c < cols; ++c) {
    for (size_t r = 0; r < rows; ++r) {
      const double v = dense[r * cols + c];
      if (v > 0.0) {
        idx->push_back(static_cast<int32_t>(r));
        out_val->push_back(v);
      }
    }
    off->push_back(static_cast<int32_t>(idx->size()));
  }
  return idx->size();
}

namespace internal {

void CountSpGemv(size_t nnz) {
  TMS_OBS_COUNT("kernels.sparse.gemv.calls", 1);
  TMS_OBS_COUNT("kernels.sparse.gemv.nnz", static_cast<int64_t>(nnz));
  (void)nnz;
}

void CountSpGemm(size_t cells) {
  TMS_OBS_COUNT("kernels.sparse.gemm.calls", 1);
  TMS_OBS_COUNT("kernels.sparse.gemm.cells", static_cast<int64_t>(cells));
  (void)cells;
}

void CountSpMaskOr(size_t nnz) {
  TMS_OBS_COUNT("kernels.sparse.maskor.calls", 1);
  TMS_OBS_COUNT("kernels.sparse.maskor.nnz", static_cast<int64_t>(nnz));
  (void)nnz;
}

}  // namespace internal

namespace ref {

void SpMaxPlusGemvArgmax(const CsrView<double>& A, const Vector<double>& x,
                         Vector<double>* y, Vector<int32_t>* arg) {
  TMS_DCHECK(A.cols == x.size() && A.rows == y->size() &&
             A.rows == arg->size());
  for (size_t i = 0; i < A.rows; ++i) {
    double best = MaxPlus::Zero();
    int32_t best_j = 0;
    for (int32_t e = A.row_off[i]; e < A.row_off[i + 1]; ++e) {
      double v = A.val[e] + x[A.col_idx[e]];
      if (v > best) {
        best = v;
        best_j = A.col_idx[e];
      }
    }
    (*y)[i] = best;
    (*arg)[i] = best_j;
  }
}

void SpMaskOr(const CsrView<double>& A, const Matrix<uint8_t>& B,
              Matrix<uint8_t>* C) {
  TMS_DCHECK(A.cols == B.rows() && A.rows == C->rows() &&
             B.cols() == C->cols());
  for (size_t i = 0; i < A.rows; ++i) {
    for (size_t j = 0; j < B.cols(); ++j) {
      uint8_t acc = 0;
      for (int32_t e = A.row_off[i]; e < A.row_off[i + 1]; ++e) {
        acc |= B(A.col_idx[e], j);
      }
      (*C)(i, j) = acc;
    }
  }
}

}  // namespace ref

void SpMaxPlusGemvArgmax(const CsrView<double>& A, const Vector<double>& x,
                         Vector<double>* y, Vector<int32_t>* arg) {
  TMS_DCHECK(A.cols == x.size() && A.rows == y->size() &&
             A.rows == arg->size());
  const int32_t* TMS_RESTRICT off = A.row_off;
  const int32_t* TMS_RESTRICT col = A.col_idx;
  const double* TMS_RESTRICT av = A.val;
  const double* TMS_RESTRICT xp = x.data();
  double* TMS_RESTRICT yp = y->data();
  int32_t* TMS_RESTRICT ap = arg->data();
  for (size_t i = 0; i < A.rows; ++i) {
    double best = MaxPlus::Zero();
    int32_t best_j = 0;
    // Strict > over ascending stored columns: smallest maximizing index,
    // the kernels.h argmax tie-break.
    for (int32_t e = off[i]; e < off[i + 1]; ++e) {
      double v = av[e] + xp[col[e]];
      if (v > best) {
        best = v;
        best_j = col[e];
      }
    }
    yp[i] = best;
    ap[i] = best_j;
  }
  internal::CountSpGemv(A.nnz);
}

void SpMaskOr(const CsrView<double>& A, const Matrix<uint8_t>& B,
              Matrix<uint8_t>* C) {
  TMS_DCHECK(A.cols == B.rows() && A.rows == C->rows() &&
             B.cols() == C->cols());
  const size_t n = B.cols();
  const int32_t* TMS_RESTRICT off = A.row_off;
  const int32_t* TMS_RESTRICT col = A.col_idx;
  for (size_t i = 0; i < A.rows; ++i) {
    uint8_t* TMS_RESTRICT crow = C->row(i);
    for (size_t j = 0; j < n; ++j) crow[j] = 0;
    for (int32_t e = off[i]; e < off[i + 1]; ++e) {
      const uint8_t* TMS_RESTRICT brow = B.row(col[e]);
      for (size_t j = 0; j < n; ++j) crow[j] |= brow[j];
    }
  }
  internal::CountSpMaskOr(A.nnz);
}

// Hot-path instantiations, compiled here under this file's vectorization
// flags (see src/CMakeLists.txt) and declared extern in sparse.h.
#define TMS_SPARSE_INSTANTIATE_SR(SR)                                     \
  template void SpGemv<SR>(const CsrView<SR::Value>&,                     \
                           const Vector<SR::Value>&, Vector<SR::Value>*); \
  template void SpGemvT<SR>(const CsrView<SR::Value>&,                    \
                            const Vector<SR::Value>&,                     \
                            Vector<SR::Value>*);                          \
  template void SpGemm<SR>(const CsrView<SR::Value>&,                     \
                           const Matrix<SR::Value>&, Matrix<SR::Value>*); \
  template void SpRowReduce<SR>(const CsrView<SR::Value>&,                \
                                Vector<SR::Value>*)
TMS_SPARSE_INSTANTIATE_SR(MaxPlus);
TMS_SPARSE_INSTANTIATE_SR(LogSumExp);
TMS_SPARSE_INSTANTIATE_SR(Real);
TMS_SPARSE_INSTANTIATE_SR(BoolOr);
#undef TMS_SPARSE_INSTANTIATE_SR

}  // namespace tms::kernels
