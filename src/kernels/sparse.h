// CSR sparse kernels over semirings, the companion of kernels/kernels.h
// for the large-alphabet regime (|Σ| in the hundreds, a few percent of
// transition entries nonzero).
//
// Layout: standard compressed sparse rows with int32 indices —
//
//   row_off : rows+1 offsets into col_idx/val; row r owns the segment
//             [row_off[r], row_off[r+1])
//   col_idx : column of each stored entry, strictly ascending within a
//             row (duplicate-free by contract)
//   val     : the entry values
//
// CsrView never owns storage (the dense.h convention): it wraps arrays
// held by the caller — a MarkovSequence TransitionStep, an Arena carve,
// or plain vectors in tests.
//
// Two complete implementations again:
//
//   kernels::ref::Sp*  — scalar loops in storage order, the differential
//                        oracle for tests/sparse_kernels_test.cc.
//   kernels::Sp*       — restrict-qualified production loops.
//
// Reduction-order contract (stronger than the dense layer's): BOTH tiers
// evaluate every output cell's ⊕-reduction in CSR storage order, i.e. in
// ascending column index. Production is therefore bit-identical to ref::
// for every semiring, not just the reorder-exact ones. Against the
// *dense* kernels, a sparse reduction differs only by skipping entries
// absent from the CSR; when those entries are ⊕-identities (the only
// thing the engines ever omit: true zeros of Real/BoolOr, -inf of
// MaxPlus/LogSumExp) skipping is exact, so the DP hot paths produce
// byte-identical layers — and hence byte-identical ranked answer
// streams — on either backend. NaN inputs are rejected by contract as in
// the dense layer (HasNaN is the hook); -inf is a first-class value.
//
// Index conventions mirror kernels.h:
//   SpGemv:      y[i]   = ⊕_j A(i,j) ⊗ x[j]       over stored (i,j)
//   SpGemvT:     y[j]   = ⊕_i A(i,j) ⊗ x[i]       i-outer ascending, so
//                per-j contributions arrive in ascending i — the dense
//                GemvT / ref order; rounding semirings match bit-for-bit
//                when the skipped entries are exact zeros.
//   SpGemm:      C(i,·) = ⊕_k A(i,k) ⊗ B(k,·)     row-broadcast; feeding
//                the CSR *transpose* of a step matrix makes this exactly
//                the dense GemmTN layer step (ascending k per cell).
//   SpRowReduce: y[i]   = ⊕_j A(i,j)              over stored entries
//
// The fused max-plus argmax variant reports the smallest maximizing
// stored column (strict >, ascending scan — the kernels.h tie-break);
// rows with no stored entry, or all entries -inf, yield Zero with arg 0,
// matching what the dense argmax reports for an all--inf row.

#ifndef TMS_KERNELS_SPARSE_H_
#define TMS_KERNELS_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "kernels/backend.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"

namespace tms::kernels {

/// Non-owning CSR view; pointer-plus-shape, trivially copyable.
template <typename T>
struct CsrView {
  const int32_t* row_off = nullptr;  // rows + 1 offsets
  const int32_t* col_idx = nullptr;  // nnz columns, ascending per row
  const T* val = nullptr;            // nnz values
  size_t rows = 0;
  size_t cols = 0;
  size_t nnz = 0;

  bool empty() const { return row_off == nullptr; }
};

/// One transition matrix behind a single dispatch point: the dense
/// row-major view always present, plus CSR views of the matrix and of its
/// transpose when the owner built them (density <= kSparseBuildMaxDensity;
/// see backend.h). The CSR pattern holds exactly the strictly positive
/// entries of `dense` (for probability matrices) — engines rely on that
/// equivalence to skip work without changing results.
struct MatrixRef {
  Matrix<double> dense;      // always valid
  CsrView<double> csr;       // rows = source states; valid iff has_sparse
  CsrView<double> csr_t;     // transpose, rows = target states
  double density = 1.0;      // nnz / (rows*cols)
  bool has_sparse = false;

  size_t rows() const { return dense.rows(); }
  size_t cols() const { return dense.cols(); }
};

/// Fills `off`/`idx`/`out_val` with the CSR form of the strictly positive
/// entries of the rows×cols row-major matrix `dense` (ascending columns
/// per row). Returns nnz.
size_t BuildCsr(const double* dense, size_t rows, size_t cols,
                std::vector<int32_t>* off, std::vector<int32_t>* idx,
                std::vector<double>* out_val);

/// Same, for the transpose pattern (rows of the output index columns of
/// `dense`); ascending per row.
size_t BuildCsrTranspose(const double* dense, size_t rows, size_t cols,
                         std::vector<int32_t>* off, std::vector<int32_t>* idx,
                         std::vector<double>* out_val);

namespace internal {
// kernels.sparse.<op>.calls / .nnz counters, defined in sparse.cc.
void CountSpGemv(size_t nnz);
void CountSpGemm(size_t cells);
void CountSpMaskOr(size_t nnz);
}  // namespace internal

// ---------------------------------------------------------------------------
// Scalar reference implementations (the differential-testing oracle).
// ---------------------------------------------------------------------------

namespace ref {

template <typename SR>
void SpGemv(const CsrView<typename SR::Value>& A,
            const Vector<typename SR::Value>& x,
            Vector<typename SR::Value>* y) {
  TMS_DCHECK(A.cols == x.size() && A.rows == y->size());
  for (size_t i = 0; i < A.rows; ++i) {
    typename SR::Value acc = SR::Zero();
    for (int32_t e = A.row_off[i]; e < A.row_off[i + 1]; ++e) {
      acc = SR::Plus(acc, SR::Times(A.val[e], x[A.col_idx[e]]));
    }
    (*y)[i] = acc;
  }
}

template <typename SR>
void SpGemvT(const CsrView<typename SR::Value>& A,
             const Vector<typename SR::Value>& x,
             Vector<typename SR::Value>* y) {
  TMS_DCHECK(A.rows == x.size() && A.cols == y->size());
  for (size_t j = 0; j < A.cols; ++j) (*y)[j] = SR::Zero();
  for (size_t i = 0; i < A.rows; ++i) {
    for (int32_t e = A.row_off[i]; e < A.row_off[i + 1]; ++e) {
      const int32_t j = A.col_idx[e];
      (*y)[j] = SR::Plus((*y)[j], SR::Times(A.val[e], x[i]));
    }
  }
}

template <typename SR>
void SpGemm(const CsrView<typename SR::Value>& A,
            const Matrix<typename SR::Value>& B,
            Matrix<typename SR::Value>* C) {
  TMS_DCHECK(A.cols == B.rows() && A.rows == C->rows() &&
             B.cols() == C->cols());
  for (size_t i = 0; i < A.rows; ++i) {
    for (size_t j = 0; j < B.cols(); ++j) {
      typename SR::Value acc = SR::Zero();
      for (int32_t e = A.row_off[i]; e < A.row_off[i + 1]; ++e) {
        acc = SR::Plus(acc, SR::Times(A.val[e], B(A.col_idx[e], j)));
      }
      (*C)(i, j) = acc;
    }
  }
}

template <typename SR>
void SpRowReduce(const CsrView<typename SR::Value>& A,
                 Vector<typename SR::Value>* y) {
  TMS_DCHECK(A.rows == y->size());
  for (size_t i = 0; i < A.rows; ++i) {
    typename SR::Value acc = SR::Zero();
    for (int32_t e = A.row_off[i]; e < A.row_off[i + 1]; ++e) {
      acc = SR::Plus(acc, A.val[e]);
    }
    (*y)[i] = acc;
  }
}

/// Fused max-plus gemv with backpointers over stored entries:
/// y[i] = max over row i of val + x[col], arg[i] = smallest maximizing
/// stored column (0 when the row is empty or all -inf).
void SpMaxPlusGemvArgmax(const CsrView<double>& A, const Vector<double>& x,
                         Vector<double>* y, Vector<int32_t>* arg);

/// Pattern-only boolean row gather: C(i,·) = OR over stored (i,k) of
/// B(k,·). Values are ignored; presence in the pattern is truth.
void SpMaskOr(const CsrView<double>& A, const Matrix<uint8_t>& B,
              Matrix<uint8_t>* C);

}  // namespace ref

// ---------------------------------------------------------------------------
// Production kernels. Storage-order loops like ref:: (bit-identical for
// every semiring — see the header contract), restrict-qualified with
// unit-stride inner loops where a dense dimension exists.
// ---------------------------------------------------------------------------

/// y[i] = ⊕ over row i of A(i,j) ⊗ x[j].
template <typename SR>
void SpGemv(const CsrView<typename SR::Value>& A,
            const Vector<typename SR::Value>& x,
            Vector<typename SR::Value>* y) {
  using V = typename SR::Value;
  TMS_DCHECK(A.cols == x.size() && A.rows == y->size());
  const int32_t* TMS_RESTRICT off = A.row_off;
  const int32_t* TMS_RESTRICT col = A.col_idx;
  const V* TMS_RESTRICT av = A.val;
  const V* TMS_RESTRICT xp = x.data();
  V* TMS_RESTRICT yp = y->data();
  for (size_t i = 0; i < A.rows; ++i) {
    V acc = SR::Zero();
    for (int32_t e = off[i]; e < off[i + 1]; ++e) {
      acc = SR::Plus(acc, SR::Times(av[e], xp[col[e]]));
    }
    yp[i] = acc;
  }
  internal::CountSpGemv(A.nnz);
}

/// y[j] = ⊕_i A(i,j) ⊗ x[i]; i-outer ascending (the dense GemvT order).
template <typename SR>
void SpGemvT(const CsrView<typename SR::Value>& A,
             const Vector<typename SR::Value>& x,
             Vector<typename SR::Value>* y) {
  using V = typename SR::Value;
  TMS_DCHECK(A.rows == x.size() && A.cols == y->size());
  const int32_t* TMS_RESTRICT off = A.row_off;
  const int32_t* TMS_RESTRICT col = A.col_idx;
  const V* TMS_RESTRICT av = A.val;
  const V* TMS_RESTRICT xp = x.data();
  V* TMS_RESTRICT yp = y->data();
  for (size_t j = 0; j < A.cols; ++j) yp[j] = SR::Zero();
  for (size_t i = 0; i < A.rows; ++i) {
    const V xi = xp[i];
    for (int32_t e = off[i]; e < off[i + 1]; ++e) {
      const int32_t j = col[e];
      yp[j] = SR::Plus(yp[j], SR::Times(av[e], xi));
    }
  }
  internal::CountSpGemv(A.nnz);
}

/// C(i,·) = ⊕ over row i of A(i,k) ⊗ B(k,·). Row-broadcast: each stored
/// entry streams one contiguous B row into the contiguous C row, so the
/// inner loop is unit-stride and vectorizes; per-cell contributions
/// arrive in ascending k. With A = the CSR transpose of a step matrix
/// this computes the dense GemmTN layer transition over only the stored
/// (nonzero / finite) entries.
template <typename SR>
void SpGemm(const CsrView<typename SR::Value>& A,
            const Matrix<typename SR::Value>& B,
            Matrix<typename SR::Value>* C) {
  using V = typename SR::Value;
  TMS_DCHECK(A.cols == B.rows() && A.rows == C->rows() &&
             B.cols() == C->cols());
  const size_t n = B.cols();
  const int32_t* TMS_RESTRICT off = A.row_off;
  const int32_t* TMS_RESTRICT col = A.col_idx;
  const V* TMS_RESTRICT av = A.val;
  for (size_t i = 0; i < A.rows; ++i) {
    V* TMS_RESTRICT crow = C->row(i);
    for (size_t j = 0; j < n; ++j) crow[j] = SR::Zero();
    for (int32_t e = off[i]; e < off[i + 1]; ++e) {
      const V a = av[e];
      const V* TMS_RESTRICT brow = B.row(col[e]);
      for (size_t j = 0; j < n; ++j) {
        crow[j] = SR::Plus(crow[j], SR::Times(a, brow[j]));
      }
    }
  }
  internal::CountSpGemm(A.nnz * n);
}

/// y[i] = ⊕ over row i of A(i,j).
template <typename SR>
void SpRowReduce(const CsrView<typename SR::Value>& A,
                 Vector<typename SR::Value>* y) {
  using V = typename SR::Value;
  TMS_DCHECK(A.rows == y->size());
  const int32_t* TMS_RESTRICT off = A.row_off;
  const V* TMS_RESTRICT av = A.val;
  V* TMS_RESTRICT yp = y->data();
  for (size_t i = 0; i < A.rows; ++i) {
    V acc = SR::Zero();
    for (int32_t e = off[i]; e < off[i + 1]; ++e) acc = SR::Plus(acc, av[e]);
    yp[i] = acc;
  }
  internal::CountSpGemv(A.nnz);
}

/// Fused max-plus gemv with backpointers; smallest stored-column
/// tie-break, exact. Empty / all--inf rows give (Zero, 0) like the dense
/// argmax on an all--inf row.
void SpMaxPlusGemvArgmax(const CsrView<double>& A, const Vector<double>& x,
                         Vector<double>* y, Vector<int32_t>* arg);

/// Pattern-only boolean row gather (the membership reachability step):
/// C(i,·) = OR over stored (i,k) of B(k,·).
void SpMaskOr(const CsrView<double>& A, const Matrix<uint8_t>& B,
              Matrix<uint8_t>* C);

// Hot-path instantiations are compiled once in sparse.cc (built at the
// kernels.cc vectorization level, see src/CMakeLists.txt).
#define TMS_SPARSE_EXTERN_SR(SR)                                          \
  extern template void SpGemv<SR>(const CsrView<SR::Value>&,              \
                                  const Vector<SR::Value>&,               \
                                  Vector<SR::Value>*);                    \
  extern template void SpGemvT<SR>(const CsrView<SR::Value>&,             \
                                   const Vector<SR::Value>&,              \
                                   Vector<SR::Value>*);                   \
  extern template void SpGemm<SR>(const CsrView<SR::Value>&,              \
                                  const Matrix<SR::Value>&,               \
                                  Matrix<SR::Value>*);                    \
  extern template void SpRowReduce<SR>(const CsrView<SR::Value>&,         \
                                       Vector<SR::Value>*)
TMS_SPARSE_EXTERN_SR(MaxPlus);
TMS_SPARSE_EXTERN_SR(LogSumExp);
TMS_SPARSE_EXTERN_SR(Real);
TMS_SPARSE_EXTERN_SR(BoolOr);
#undef TMS_SPARSE_EXTERN_SR

}  // namespace tms::kernels

#endif  // TMS_KERNELS_SPARSE_H_
