// Kernel backend selection: dense vs CSR-sparse, per instance.
//
// Every engine that runs a layered DP over MarkovSequence transition
// matrices can execute each layer either through the dense kernels
// (kernels/kernels.h) or through the CSR kernels (kernels/sparse.h).
// The choice is uniform per engine instance and made once, up front:
//
//   BackendChoice — what the caller *asked* for (EngineOptions.backend,
//                   tms_cli --backend=dense|sparse|auto). kAuto is the
//                   default everywhere.
//   Backend       — what ChooseBackend *resolved* the request to, given
//                   the measured density of the instance.
//
// The auto policy (see docs/SPARSE.md for the selection table):
//
//   sparse  iff  CSR views exist (density <= kSparseBuildMaxDensity at
//                MarkovSequence build time) AND the mean step density is
//                <= kAutoSparseMaxDensity AND dim >= kAutoSparseMinDim.
//
// A forced kSparse request on an instance without CSR views falls back
// to dense — the sparse kernels preserve the dense reduction order, so
// either way the ranked answer stream is byte-identical; the fallback is
// only a performance matter (and is counted, see below).
//
// ChooseBackend bumps the `kernels.sparse.chosen` / `.rejected` /
// `.fallback` obs counters so `tms_cli --stats` shows which backend every
// run actually used.

#ifndef TMS_KERNELS_BACKEND_H_
#define TMS_KERNELS_BACKEND_H_

#include <cstddef>
#include <optional>
#include <string>

namespace tms::kernels {

/// What the caller requested.
enum class BackendChoice { kAuto, kDense, kSparse };

/// What the request resolved to for a concrete instance.
enum class Backend { kDense, kSparse };

/// MarkovSequence builds CSR views for a step matrix only when its
/// density (nnz / sigma^2) is at most this; denser matrices gain nothing
/// from CSR and would double the storage.
inline constexpr double kSparseBuildMaxDensity = 0.9;

/// kAuto picks sparse only below this mean density ...
inline constexpr double kAutoSparseMaxDensity = 0.25;

/// ... and only at this dimension or above (tiny alphabets fit in cache
/// either way; the dense kernels win on loop overhead).
inline constexpr size_t kAutoSparseMinDim = 16;

/// Resolves a request against a measured instance: `density` is the mean
/// nnz ratio of the transition matrices, `dim` the state-space dimension,
/// `has_sparse` whether CSR views were built. Counts the decision.
Backend ChooseBackend(BackendChoice choice, double density, size_t dim,
                      bool has_sparse);

const char* BackendName(Backend backend);
const char* BackendChoiceName(BackendChoice choice);

/// Parses "dense" | "sparse" | "auto" (the --backend= values).
std::optional<BackendChoice> ParseBackendChoice(const std::string& name);

}  // namespace tms::kernels

#endif  // TMS_KERNELS_BACKEND_H_
