// Blocked, auto-vectorization-friendly dense kernels over semirings.
//
// Two complete implementations live here:
//
//   kernels::ref::*  — straight scalar loops in a fixed, documented
//                      evaluation order. These are the semantic ground
//                      truth; tests/kernels_test.cc checks every blocked
//                      kernel against them differentially.
//   kernels::*       — the production kernels: restrict-qualified
//                      pointers, unit-stride inner loops, 4-wide
//                      accumulators, written so GCC/Clang auto-vectorize
//                      them at the project's default -O2.
//
// Accuracy contract:
//   * MaxPlus and BoolOr are reordering-free (SR::kExactReorder): blocked
//     results are bit-identical to ref:: for NaN-free inputs.
//   * Real and LogSumExp round, so blocked evaluation may differ from
//     ref:: by reassociation error. Guarantee: |blocked - ref| <=
//     8 * eps * (|reduction length| terms) relative — in practice a few
//     ulps; kernels_test pins it at 1e-12 relative.
//   * NaN inputs are rejected by contract, not laundered: callers must
//     not pass NaN (HasNaN() is the test hook; TMS_DCHECKed on entry).
//     -inf (the MaxPlus/LogSumExp Zero) is a first-class value.
//
// Index conventions (all matrices row-major, see dense.h):
//   Gemv:     y[i]   = ⊕_j A(i,j) ⊗ x[j]           (A: m×n, x: n, y: m)
//   GemvT:    y[j]   = ⊕_i A(i,j) ⊗ x[i]           (A: m×n, x: m, y: n)
//   GemmTN:   C(i,j) = ⊕_k A(k,i) ⊗ B(k,j)         (A: K×m, B: K×n, C: m×n)
//   RowReduce: y[i]  = ⊕_j A(i,j)
// The TN (transposed-A) gemm shape is what the layered DPs need: layer
// vectors keep the large state dimension unit-stride in memory.
//
// Argmax variants (MaxPlus only) additionally record *which* reduction
// index attained the ⊕-maximum, breaking ties toward the smallest index
// (strict >, ascending scan) — exactly the tie-break the scalar Viterbi
// DPs use, which keeps backpointer chains, and therefore answer streams,
// byte-identical.

#ifndef TMS_KERNELS_KERNELS_H_
#define TMS_KERNELS_KERNELS_H_

#include <cmath>
#include <cstdint>
#include <cstddef>
#include <type_traits>

#include "common/check.h"
#include "kernels/dense.h"
#include "kernels/semiring.h"

#if defined(_MSC_VER)
#define TMS_RESTRICT __restrict
#else
#define TMS_RESTRICT __restrict__
#endif

namespace tms::kernels {

/// True if any of the n doubles is NaN. Test/debug hook for the NaN
/// rejection contract; O(n), so production call sites only run it under
/// TMS_DCHECK.
bool HasNaN(const double* p, size_t n);

namespace internal {
// Fixed-name obs counters (kernels.<op>.calls / kernels.<op>.cells),
// defined in kernels.cc so header-only templates don't each re-resolve
// the registry entry.
void CountGemv(size_t cells);
void CountGemm(size_t cells);
void CountArgmax(size_t cells);
}  // namespace internal

// ---------------------------------------------------------------------------
// Scalar reference implementations (the differential-testing oracle).
// ---------------------------------------------------------------------------

namespace ref {

template <typename SR>
void Gemv(const Matrix<typename SR::Value>& A,
          const Vector<typename SR::Value>& x,
          Vector<typename SR::Value>* y) {
  TMS_DCHECK(A.cols() == x.size() && A.rows() == y->size());
  for (size_t i = 0; i < A.rows(); ++i) {
    typename SR::Value acc = SR::Zero();
    for (size_t j = 0; j < A.cols(); ++j) {
      acc = SR::Plus(acc, SR::Times(A(i, j), x[j]));
    }
    (*y)[i] = acc;
  }
}

template <typename SR>
void GemvT(const Matrix<typename SR::Value>& A,
           const Vector<typename SR::Value>& x,
           Vector<typename SR::Value>* y) {
  TMS_DCHECK(A.rows() == x.size() && A.cols() == y->size());
  for (size_t j = 0; j < A.cols(); ++j) {
    typename SR::Value acc = SR::Zero();
    for (size_t i = 0; i < A.rows(); ++i) {
      acc = SR::Plus(acc, SR::Times(A(i, j), x[i]));
    }
    (*y)[j] = acc;
  }
}

template <typename SR>
void GemmTN(const Matrix<typename SR::Value>& A,
            const Matrix<typename SR::Value>& B,
            Matrix<typename SR::Value>* C) {
  TMS_DCHECK(A.rows() == B.rows() && A.cols() == C->rows() &&
             B.cols() == C->cols());
  for (size_t i = 0; i < C->rows(); ++i) {
    for (size_t j = 0; j < C->cols(); ++j) {
      typename SR::Value acc = SR::Zero();
      for (size_t k = 0; k < A.rows(); ++k) {
        acc = SR::Plus(acc, SR::Times(A(k, i), B(k, j)));
      }
      (*C)(i, j) = acc;
    }
  }
}

template <typename SR>
void RowReduce(const Matrix<typename SR::Value>& A,
               Vector<typename SR::Value>* y) {
  TMS_DCHECK(A.rows() == y->size());
  for (size_t i = 0; i < A.rows(); ++i) {
    typename SR::Value acc = SR::Zero();
    for (size_t j = 0; j < A.cols(); ++j) acc = SR::Plus(acc, A(i, j));
    (*y)[i] = acc;
  }
}

/// Fused max-plus gemv with backpointers: y[i] = max_j A(i,j) + x[j],
/// arg[i] = smallest j attaining the max (0 when the row is all -inf).
void MaxPlusGemvArgmax(const Matrix<double>& A, const Vector<double>& x,
                       Vector<double>* y, Vector<int32_t>* arg);

/// Fused max-plus TN-gemm with backpointers:
/// C(i,j) = max_k A(k,i) + B(k,j), Arg(i,j) = smallest maximizing k.
void MaxPlusGemmTNArgmax(const Matrix<double>& A, const Matrix<double>& B,
                         Matrix<double>* C, Matrix<int32_t>* Arg);

}  // namespace ref

// ---------------------------------------------------------------------------
// Blocked production kernels.
// ---------------------------------------------------------------------------

/// y[i] = ⊕_j A(i,j) ⊗ x[j]. Four independent accumulators over j hide
/// the ⊕ latency chain and give the vectorizer a clean reduction.
/// LogSumExp uses a two-pass max/exp-sum evaluation instead (stable and
/// vectorizable where a log1p chain is neither).
template <typename SR>
void Gemv(const Matrix<typename SR::Value>& A,
          const Vector<typename SR::Value>& x,
          Vector<typename SR::Value>* y) {
  using V = typename SR::Value;
  TMS_DCHECK(A.cols() == x.size() && A.rows() == y->size());
  const size_t m = A.rows(), n = A.cols();
  const V* TMS_RESTRICT xp = x.data();
  V* TMS_RESTRICT yp = y->data();
  if constexpr (std::is_same_v<SR, LogSumExp>) {
    for (size_t i = 0; i < m; ++i) {
      const V* TMS_RESTRICT a = A.row(i);
      V mx = SR::Zero();
      for (size_t j = 0; j < n; ++j) {
        V t = a[j] + xp[j];
        mx = mx > t ? mx : t;
      }
      if (std::isinf(mx) && mx < 0) {
        yp[i] = mx;  // empty or all-Zero row: ⊕-identity
        continue;
      }
      double s = 0.0;
      for (size_t j = 0; j < n; ++j) s += std::exp(a[j] + xp[j] - mx);
      yp[i] = mx + std::log(s);
    }
    internal::CountGemv(m * n);
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const V* TMS_RESTRICT a = A.row(i);
    V acc0 = SR::Zero(), acc1 = SR::Zero(), acc2 = SR::Zero(),
      acc3 = SR::Zero();
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      acc0 = SR::Plus(acc0, SR::Times(a[j + 0], xp[j + 0]));
      acc1 = SR::Plus(acc1, SR::Times(a[j + 1], xp[j + 1]));
      acc2 = SR::Plus(acc2, SR::Times(a[j + 2], xp[j + 2]));
      acc3 = SR::Plus(acc3, SR::Times(a[j + 3], xp[j + 3]));
    }
    for (; j < n; ++j) acc0 = SR::Plus(acc0, SR::Times(a[j], xp[j]));
    yp[i] = SR::Plus(SR::Plus(acc0, acc2), SR::Plus(acc1, acc3));
  }
  internal::CountGemv(m * n);
}

/// y[j] = ⊕_i A(i,j) ⊗ x[i]. i-outer with a unit-stride j inner loop:
/// the per-j contributions arrive in ascending i, the same order as the
/// scalar reference, so even rounding semirings match ref:: here.
template <typename SR>
void GemvT(const Matrix<typename SR::Value>& A,
           const Vector<typename SR::Value>& x,
           Vector<typename SR::Value>* y) {
  using V = typename SR::Value;
  TMS_DCHECK(A.rows() == x.size() && A.cols() == y->size());
  const size_t m = A.rows(), n = A.cols();
  V* TMS_RESTRICT yp = y->data();
  for (size_t j = 0; j < n; ++j) yp[j] = SR::Zero();
  for (size_t i = 0; i < m; ++i) {
    const V* TMS_RESTRICT a = A.row(i);
    const V xi = x[i];
    for (size_t j = 0; j < n; ++j) {
      yp[j] = SR::Plus(yp[j], SR::Times(a[j], xi));
    }
  }
  internal::CountGemv(m * n);
}

/// C(i,j) = ⊕_k A(k,i) ⊗ B(k,j). k-outer / i-mid / unit-stride j inner:
/// each (k,i) pair broadcasts one A value across a contiguous B row into
/// a contiguous C row — the loop the vectorizer likes best. Per-cell
/// contributions arrive in ascending k (same order as ref::), so even
/// LogSumExp matches the reference bit-for-bit here.
template <typename SR>
void GemmTN(const Matrix<typename SR::Value>& A,
            const Matrix<typename SR::Value>& B,
            Matrix<typename SR::Value>* C) {
  using V = typename SR::Value;
  TMS_DCHECK(A.rows() == B.rows() && A.cols() == C->rows() &&
             B.cols() == C->cols());
  const size_t K = A.rows(), m = C->rows(), n = C->cols();
  C->Fill(SR::Zero());
  for (size_t k = 0; k < K; ++k) {
    const V* TMS_RESTRICT arow = A.row(k);
    const V* TMS_RESTRICT brow = B.row(k);
    for (size_t i = 0; i < m; ++i) {
      const V a = arow[i];
      V* TMS_RESTRICT crow = C->row(i);
      for (size_t j = 0; j < n; ++j) {
        crow[j] = SR::Plus(crow[j], SR::Times(a, brow[j]));
      }
    }
  }
  internal::CountGemm(K * m * n);
}

/// y[i] = ⊕_j A(i,j), 4-wide accumulators (LogSumExp two-pass as in Gemv).
template <typename SR>
void RowReduce(const Matrix<typename SR::Value>& A,
               Vector<typename SR::Value>* y) {
  using V = typename SR::Value;
  TMS_DCHECK(A.rows() == y->size());
  const size_t m = A.rows(), n = A.cols();
  V* TMS_RESTRICT yp = y->data();
  if constexpr (std::is_same_v<SR, LogSumExp>) {
    for (size_t i = 0; i < m; ++i) {
      const V* TMS_RESTRICT a = A.row(i);
      V mx = SR::Zero();
      for (size_t j = 0; j < n; ++j) mx = mx > a[j] ? mx : a[j];
      if (std::isinf(mx) && mx < 0) {
        yp[i] = mx;
        continue;
      }
      double s = 0.0;
      for (size_t j = 0; j < n; ++j) s += std::exp(a[j] - mx);
      yp[i] = mx + std::log(s);
    }
    return;
  }
  for (size_t i = 0; i < m; ++i) {
    const V* TMS_RESTRICT a = A.row(i);
    V acc0 = SR::Zero(), acc1 = SR::Zero(), acc2 = SR::Zero(),
      acc3 = SR::Zero();
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      acc0 = SR::Plus(acc0, a[j + 0]);
      acc1 = SR::Plus(acc1, a[j + 1]);
      acc2 = SR::Plus(acc2, a[j + 2]);
      acc3 = SR::Plus(acc3, a[j + 3]);
    }
    for (; j < n; ++j) acc0 = SR::Plus(acc0, a[j]);
    yp[i] = SR::Plus(SR::Plus(acc0, acc2), SR::Plus(acc1, acc3));
  }
}

/// Sparse max-plus edge scatter, the companion of GemmTN in the layered
/// Viterbi DPs: overwrites dst with Zero, then for every source cell
/// (r, c) of src maxes its value into the cells (r, tgt[e]) of dst, where
/// e ranges over the CSR segment [off[r*cols + c], off[r*cols + c + 1]).
/// off has src.rows()*src.cols() + 1 entries; dst must have src.rows()
/// rows. Exact (pure max), no tie state.
void MaxPlusEdgeScatter(const Matrix<double>& src, const int32_t* off,
                        const int32_t* tgt, Matrix<double>* dst);

/// Fused max-plus gemv with backpointers; smallest-j tie-break, exact.
void MaxPlusGemvArgmax(const Matrix<double>& A, const Vector<double>& x,
                       Vector<double>* y, Vector<int32_t>* arg);

/// Fused max-plus TN-gemm with backpointers; smallest-k tie-break, exact.
/// This is the Viterbi layer-transition kernel: A is the per-step score
/// tensor slice (K source states × m successor states), B the incoming
/// layer (K × n DP cells), C/Arg the outgoing layer and its backpointers.
void MaxPlusGemmTNArgmax(const Matrix<double>& A, const Matrix<double>& B,
                         Matrix<double>* C, Matrix<int32_t>* Arg);

// The hot-path instantiations are compiled once in kernels.cc, which is
// built with stronger vectorization flags than the rest of the library
// (see src/CMakeLists.txt); callers link against those definitions
// instead of instantiating at -O2 in their own TU.
#define TMS_KERNELS_EXTERN_SR(SR)                                        \
  extern template void Gemv<SR>(const Matrix<SR::Value>&,                \
                                const Vector<SR::Value>&,                \
                                Vector<SR::Value>*);                     \
  extern template void GemvT<SR>(const Matrix<SR::Value>&,               \
                                 const Vector<SR::Value>&,               \
                                 Vector<SR::Value>*);                    \
  extern template void GemmTN<SR>(const Matrix<SR::Value>&,              \
                                  const Matrix<SR::Value>&,              \
                                  Matrix<SR::Value>*);                   \
  extern template void RowReduce<SR>(const Matrix<SR::Value>&,           \
                                     Vector<SR::Value>*)
TMS_KERNELS_EXTERN_SR(MaxPlus);
TMS_KERNELS_EXTERN_SR(LogSumExp);
TMS_KERNELS_EXTERN_SR(Real);
TMS_KERNELS_EXTERN_SR(BoolOr);
#undef TMS_KERNELS_EXTERN_SR

}  // namespace tms::kernels

#endif  // TMS_KERNELS_KERNELS_H_
