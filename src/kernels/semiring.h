// Semiring traits for the dense kernel layer.
//
// A semiring supplies the (⊕, ⊗, 0̄, 1̄) algebra the kernels are generic
// over. The same blocked gemv/gemm code instantiates to
//
//   MaxPlus    — Viterbi scoring (⊕ = max, ⊗ = +). max is associative,
//                commutative and *reordering-free* in IEEE double (no
//                rounding), so blocked/vectorized evaluation is
//                bit-identical to the scalar reference.
//   LogSumExp  — probability accumulation in log domain (⊕ = log-add,
//                ⊗ = +). log-add rounds, so reassociation changes the
//                last ulps; kernels document a tolerance instead of
//                bit-equality (see kernels.h).
//   Real       — plain (+, ×) on linear-domain doubles. Reassociation
//                again changes ulps; same tolerance contract.
//   BoolOr     — reachability (⊕ = |, ⊗ = &) on uint8. Exact.
//
// Zero() must be the ⊕-identity and ⊗-annihilator; One() the ⊗-identity.
// All operations are static so instantiated kernels inline them.

#ifndef TMS_KERNELS_SEMIRING_H_
#define TMS_KERNELS_SEMIRING_H_

#include <cmath>
#include <cstdint>
#include <limits>

namespace tms::kernels {

struct MaxPlus {
  using Value = double;
  static constexpr const char* kName = "maxplus";
  // Reordering ⊕ never changes the result bit pattern.
  static constexpr bool kExactReorder = true;
  static constexpr Value Zero() {
    return -std::numeric_limits<double>::infinity();
  }
  static constexpr Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return a > b ? a : b; }
  static Value Times(Value a, Value b) { return a + b; }
};

struct LogSumExp {
  using Value = double;
  static constexpr const char* kName = "logsumexp";
  static constexpr bool kExactReorder = false;
  static constexpr Value Zero() {
    return -std::numeric_limits<double>::infinity();
  }
  static constexpr Value One() { return 0.0; }
  // log(e^a + e^b), stable for any mix of finite and -inf operands.
  // Mirrors numeric::LogProb::operator+ so kernel results line up with
  // the scalar code they replace.
  static Value Plus(Value a, Value b) {
    if (std::isinf(a) && a < 0) return b;
    if (std::isinf(b) && b < 0) return a;
    Value hi = a > b ? a : b;
    Value lo = a > b ? b : a;
    return hi + std::log1p(std::exp(lo - hi));
  }
  static Value Times(Value a, Value b) { return a + b; }
};

struct Real {
  using Value = double;
  static constexpr const char* kName = "real";
  static constexpr bool kExactReorder = false;
  static constexpr Value Zero() { return 0.0; }
  static constexpr Value One() { return 1.0; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
};

struct BoolOr {
  using Value = std::uint8_t;
  static constexpr const char* kName = "boolor";
  static constexpr bool kExactReorder = true;
  static constexpr Value Zero() { return 0; }
  static constexpr Value One() { return 1; }
  static Value Plus(Value a, Value b) {
    return static_cast<Value>(a | b);
  }
  static Value Times(Value a, Value b) {
    return static_cast<Value>(a & b);
  }
};

}  // namespace tms::kernels

#endif  // TMS_KERNELS_SEMIRING_H_
