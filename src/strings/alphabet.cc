#include "strings/alphabet.h"

#include "common/check.h"

namespace tms {

StatusOr<Alphabet> Alphabet::FromNames(const std::vector<std::string>& names) {
  Alphabet out;
  for (const std::string& name : names) {
    if (out.Contains(name)) {
      return Status::InvalidArgument("duplicate symbol name: " + name);
    }
    out.Intern(name);
  }
  return out;
}

Symbol Alphabet::Intern(std::string_view name) {
  std::string key(name);
  auto it = by_name_.find(key);
  if (it != by_name_.end()) return it->second;
  Symbol id = static_cast<Symbol>(names_.size());
  names_.push_back(key);
  by_name_.emplace(std::move(key), id);
  return id;
}

StatusOr<Symbol> Alphabet::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("symbol not in alphabet: " + std::string(name));
  }
  return it->second;
}

const std::string& Alphabet::Name(Symbol id) const {
  TMS_CHECK(IsValid(id));
  return names_[static_cast<size_t>(id)];
}

}  // namespace tms
