// Symbol strings and helpers.
//
// A Str is a finite string over an interned alphabet — the paper's s ∈ Σ*
// (possible worlds of a Markov sequence) and o ∈ Δ* (transducer outputs).

#ifndef TMS_STRINGS_STR_H_
#define TMS_STRINGS_STR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "strings/alphabet.h"

namespace tms {

/// A string of interned symbols; the empty Str is the paper's ε.
using Str = std::vector<Symbol>;

/// Renders a Str as space-separated symbol names ("ε" when empty).
std::string FormatStr(const Alphabet& alphabet, const Str& s);

/// Renders a Str by concatenating names without separators — readable when
/// all names are single characters (e.g. outputs "12" in the paper's
/// Table 1).
std::string FormatStrCompact(const Alphabet& alphabet, const Str& s);

/// Parses whitespace-separated symbol names into a Str; every name must be
/// in the alphabet.
StatusOr<Str> ParseStr(const Alphabet& alphabet, std::string_view text);

/// True iff `prefix` is a (not necessarily proper) prefix of `s`.
bool IsPrefixOf(const Str& prefix, const Str& s);

/// Appends `suffix` to `s` and returns the result.
Str Concat(Str s, const Str& suffix);

/// FNV-1a hash; usable as the Hash template parameter of unordered
/// containers keyed by Str.
struct StrHash {
  size_t operator()(const Str& s) const {
    size_t h = 1469598103934665603ULL;
    for (Symbol sym : s) {
      h ^= static_cast<size_t>(sym) + 0x9e3779b97f4a7c15ULL;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace tms

#endif  // TMS_STRINGS_STR_H_
