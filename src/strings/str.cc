#include "strings/str.h"

#include <sstream>

namespace tms {

std::string FormatStr(const Alphabet& alphabet, const Str& s) {
  if (s.empty()) return "ε";
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i > 0) out += ' ';
    out += alphabet.Name(s[i]);
  }
  return out;
}

std::string FormatStrCompact(const Alphabet& alphabet, const Str& s) {
  if (s.empty()) return "ε";
  std::string out;
  for (Symbol sym : s) out += alphabet.Name(sym);
  return out;
}

StatusOr<Str> ParseStr(const Alphabet& alphabet, std::string_view text) {
  Str out;
  std::istringstream in{std::string(text)};
  std::string token;
  while (in >> token) {
    auto sym = alphabet.Find(token);
    if (!sym.ok()) return sym.status();
    out.push_back(*sym);
  }
  return out;
}

bool IsPrefixOf(const Str& prefix, const Str& s) {
  if (prefix.size() > s.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (prefix[i] != s[i]) return false;
  }
  return true;
}

Str Concat(Str s, const Str& suffix) {
  s.insert(s.end(), suffix.begin(), suffix.end());
  return s;
}

}  // namespace tms
