// Interned symbol alphabets.
//
// Markov-sequence nodes, transducer input symbols, and transducer output
// symbols are all drawn from finite alphabets (the paper's Σ and Δ). tms
// interns symbol names once into dense integer ids, so every algorithm
// operates on contiguous int ranges and names only reappear at the API
// boundary (parsing and formatting).

#ifndef TMS_STRINGS_ALPHABET_H_
#define TMS_STRINGS_ALPHABET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace tms {

/// Dense id of an interned symbol; valid ids are 0..Alphabet::size()-1.
using Symbol = int32_t;

/// A bidirectional mapping between symbol names and dense ids.
///
/// Ids are assigned in insertion order. Copies are value copies; alphabets
/// are cheap to copy for the sizes tms deals with and are compared
/// structurally.
class Alphabet {
 public:
  Alphabet() = default;

  /// Builds an alphabet from a name list; names must be distinct.
  static StatusOr<Alphabet> FromNames(const std::vector<std::string>& names);

  /// Returns the id of `name`, interning it if new.
  Symbol Intern(std::string_view name);

  /// Returns the id of `name`, or an error if not present.
  StatusOr<Symbol> Find(std::string_view name) const;

  /// True iff `name` is interned.
  bool Contains(std::string_view name) const {
    return by_name_.find(std::string(name)) != by_name_.end();
  }

  /// True iff `id` is a valid symbol of this alphabet.
  bool IsValid(Symbol id) const {
    return id >= 0 && static_cast<size_t>(id) < names_.size();
  }

  /// Name of an interned id; id must be valid.
  const std::string& Name(Symbol id) const;

  /// Number of interned symbols.
  size_t size() const { return names_.size(); }

  /// All names in id order.
  const std::vector<std::string>& names() const { return names_; }

  bool operator==(const Alphabet& other) const {
    return names_ == other.names_;
  }
  bool operator!=(const Alphabet& other) const { return !(*this == other); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> by_name_;
};

}  // namespace tms

#endif  // TMS_STRINGS_ALPHABET_H_
