// Request-scoped observability: per-query metrics and cross-thread trace
// context.
//
// The paper's guarantees are *per-query* (polynomial delay per answer
// stream, Thms 4.1/4.3/5.11), but the registry in obs/metrics.h is
// process-global: two concurrent queries on a shared exec::ThreadPool
// smear their counters and delay histograms together. A QueryScope fixes
// the attribution:
//
//   * it owns a PER-QUERY Registry, layered over the global one — every
//     TMS_OBS_* mutation made while the scope is current on a thread is
//     applied to both, so process totals keep working while the scope
//     accumulates exactly this query's share;
//   * it carries a TRACE CONTEXT (query id + current span id) that
//     propagates across exec::ThreadPool tasks (the pool captures the
//     submitting thread's context per batch and every worker adopts it
//     while draining) and is captured by the enumeration engines at
//     construction, so spans opened on worker threads — parallel Lawler
//     child solves, batch fan-out — parent correctly under the query's
//     root span;
//   * on destruction it publishes a process-global summary
//     (`obs.query.count`, `obs.query.duration_ns`) and one wide
//     per-query event into the flight recorder (obs/flight_recorder.h).
//
// Threading contract: a QueryScope is created and destroyed on the same
// thread (it installs itself into that thread's trace state, stack-like —
// scopes on one thread nest and must unwind LIFO). Other threads join the
// scope through ScopeAdoption, normally via the pool or an engine, never
// by sharing the QueryScope object itself. The scope must outlive every
// engine constructed under it and every pool batch submitted under it.
//
// With -DTMS_OBS=OFF everything here compiles to nothing (same inline-
// namespace ODR discipline as the rest of obs/).

#ifndef TMS_OBS_QUERY_SCOPE_H_
#define TMS_OBS_QUERY_SCOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/config.h"
#include "obs/metrics.h"

namespace tms::obs {

#if TMS_OBS_ACTIVE

inline namespace active {

class QueryScope;

/// A capturable snapshot of a thread's trace state: which query it is
/// working for and which span its new spans should parent under. Copy it
/// at task-submission time, adopt it (ScopeAdoption) on the executing
/// thread. A default-constructed context means "no query" — adopting it
/// detaches the thread, which is the correct attribution for work that
/// belongs to no query.
struct TraceContext {
  QueryScope* scope = nullptr;  ///< non-owning; must outlive the adoption
  uint64_t query_id = 0;
  uint64_t parent_span_id = 0;
};

/// The current thread's context (scope + query id + current span).
TraceContext CurrentTraceContext();

/// The current thread's query id (0 when no scope is current). Cheap —
/// one thread-local read; exec::RunContext tags its streams with this.
uint64_t CurrentQueryId();

/// See the file comment.
class QueryScope {
 public:
  /// Opens the scope: allocates a fresh query id and root span id, and
  /// installs the scope on the calling thread (saving what was there).
  explicit QueryScope(std::string name);
  /// Restores the calling thread's previous state, publishes the global
  /// summary metrics and the wide per-query flight-recorder event.
  ~QueryScope();

  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// The scope current on this thread, or null. The returned pointer is
  /// only valid while that scope is alive.
  static QueryScope* Current();

  // -- routed mutation (used by the TMS_OBS_* macros) ---------------------
  // Applies to the CURRENT thread's scope, if any; a thread with no scope
  // pays one thread-local load and a predictable branch.

  static void AddCount(std::string_view name, int64_t delta);
  static void SetGauge(std::string_view name, double value);
  static void RecordHistogram(std::string_view name, int64_t value);

  // -- introspection ------------------------------------------------------

  uint64_t query_id() const { return query_id_; }
  const std::string& name() const { return name_; }
  /// The id every top-level span of this query parents under. The root
  /// span itself (named "obs.query") is emitted when the scope closes.
  uint64_t root_span_id() const { return root_span_id_; }
  int64_t start_ns() const { return start_ns_; }

  /// This query's private registry. Thread-safe, like the global one.
  Registry& registry() { return registry_; }
  RegistrySnapshot Snapshot() const { return registry_.Snapshot(); }

 private:
  std::string name_;
  uint64_t query_id_;
  uint64_t root_span_id_;
  int64_t start_ns_;
  Registry registry_;
  // Saved thread state, restored by the destructor (LIFO nesting).
  QueryScope* prev_scope_;
  uint64_t prev_query_id_;
  uint64_t prev_span_id_;
};

/// RAII adoption of a captured TraceContext on the executing thread.
/// exec::ThreadPool wraps every batch drain in one; the enumeration
/// engines wrap Next() in one (with the context captured at engine
/// construction), so a stream driven from any thread — or interleaved
/// with streams of other queries on the same thread — still attributes
/// its metrics and spans to its own query.
class ScopeAdoption {
 public:
  explicit ScopeAdoption(const TraceContext& context);
  ~ScopeAdoption();

  ScopeAdoption(const ScopeAdoption&) = delete;
  ScopeAdoption& operator=(const ScopeAdoption&) = delete;

 private:
  QueryScope* prev_scope_;
  uint64_t prev_query_id_;
  uint64_t prev_span_id_;
};

namespace internal {

/// Span-side access to the thread trace state (obs/span.cc only).
bool ThreadHasScope();
uint64_t CurrentSpanId();
void SetCurrentSpanId(uint64_t id);
uint64_t NextSpanId();

}  // namespace internal

}  // inline namespace active

#else  // !TMS_OBS_ACTIVE

inline namespace noop {

class QueryScope;

struct TraceContext {
  QueryScope* scope = nullptr;
  uint64_t query_id = 0;
  uint64_t parent_span_id = 0;
};

inline TraceContext CurrentTraceContext() { return {}; }
inline uint64_t CurrentQueryId() { return 0; }

class QueryScope {
 public:
  explicit QueryScope(std::string) {}
  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  static QueryScope* Current() { return nullptr; }

  static void AddCount(std::string_view, int64_t) {}
  static void SetGauge(std::string_view, double) {}
  static void RecordHistogram(std::string_view, int64_t) {}

  uint64_t query_id() const { return 0; }
  const std::string& name() const {
    static const std::string empty;
    return empty;
  }
  uint64_t root_span_id() const { return 0; }
  int64_t start_ns() const { return 0; }
  Registry& registry() { return Registry::Global(); }
  RegistrySnapshot Snapshot() const { return {}; }
};

class ScopeAdoption {
 public:
  explicit ScopeAdoption(const TraceContext&) {}
  ScopeAdoption(const ScopeAdoption&) = delete;
  ScopeAdoption& operator=(const ScopeAdoption&) = delete;
};

namespace internal {
inline bool ThreadHasScope() { return false; }
inline uint64_t CurrentSpanId() { return 0; }
inline void SetCurrentSpanId(uint64_t) {}
inline uint64_t NextSpanId() { return 0; }
}  // namespace internal

}  // inline namespace noop

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs

#endif  // TMS_OBS_QUERY_SCOPE_H_
