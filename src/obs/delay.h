// Per-answer delay recorder for the enumeration engines.
//
// The paper's headline guarantees are polynomial *delay* bounds between
// consecutive enumerated answers (Theorems 4.1, 4.3, 5.11). A
// DelayRecorder turns that claim into a measured distribution: each
// enumerator owns one, laps it on every emitted answer, and the
// inter-answer delays accumulate into a registry histogram named
// `<name>.delay_ns` (max / p50 / p99 readable from its snapshot, see
// docs/OBSERVABILITY.md).

#ifndef TMS_OBS_DELAY_H_
#define TMS_OBS_DELAY_H_

#include <string>
#include <string_view>

#include "common/stopwatch.h"
#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/query_scope.h"

namespace tms::obs {

#if TMS_OBS_ACTIVE

inline namespace active {

class DelayRecorder {
 public:
  /// Registers (or reuses) the histogram `<name>.delay_ns`. The first
  /// recorded delay is measured from construction (or the last Restart()).
  explicit DelayRecorder(std::string_view name)
      : name_(std::string(name) + ".delay_ns"),
        histogram_(&Registry::Global().histogram(name_)) {}

  /// Re-arms the interval origin without recording (e.g. when work between
  /// answers should not count toward the next delay).
  void Restart() { watch_.Restart(); }

  /// Records the delay since the previous answer (or construction) and
  /// returns it in nanoseconds. Also routed to the current thread's
  /// QueryScope, so per-query delay distributions stay separable when
  /// several streams share the process.
  int64_t RecordAnswer() {
    int64_t ns = watch_.Lap();
    histogram_->Record(ns);
    QueryScope::RecordHistogram(name_, ns);
    return ns;
  }

  /// Distribution of every delay recorded under this name process-wide.
  HistogramSnapshot Snapshot() const { return histogram_->Snapshot(); }

 private:
  std::string name_;
  Stopwatch watch_;
  Histogram* histogram_;
};

}  // inline namespace active

#else  // !TMS_OBS_ACTIVE

inline namespace noop {

class DelayRecorder {
 public:
  explicit DelayRecorder(std::string_view) {}
  void Restart() {}
  int64_t RecordAnswer() { return 0; }
  HistogramSnapshot Snapshot() const { return {}; }
};

}  // inline namespace noop

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs

#endif  // TMS_OBS_DELAY_H_
