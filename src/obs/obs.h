// Umbrella header and instrumentation macros for tms observability.
//
// Instrumented code uses the TMS_OBS_* macros below rather than touching
// the registry directly: each macro resolves its metric once (function-
// local static reference) and compiles to nothing when the build is
// configured with -DTMS_OBS=OFF (TMS_OBS_ENABLED=0), so disabled builds
// carry zero overhead — not even the string literal survives.
//
// Naming scheme: `<module>.<name>` (e.g. `ranking.lawler.pops`); see
// docs/OBSERVABILITY.md for the full catalogue.

#ifndef TMS_OBS_OBS_H_
#define TMS_OBS_OBS_H_

#include "obs/config.h"
#include "obs/delay.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/query_scope.h"
#include "obs/span.h"

#define TMS_OBS_CONCAT_INNER_(a, b) a##b
#define TMS_OBS_CONCAT_(a, b) TMS_OBS_CONCAT_INNER_(a, b)

#if TMS_OBS_ACTIVE

// Every mutation is applied twice: to the process-global metric (resolved
// once, cached in a function-local static) and — when a QueryScope is
// current on the thread — to that query's private registry, so per-query
// attribution composes with the existing process totals. A thread with no
// scope pays one thread-local load and a not-taken branch for the second
// leg.

/// Adds `delta` to the counter `name` (a string literal).
#define TMS_OBS_COUNT(name, delta)                                     \
  do {                                                                 \
    static ::tms::obs::Counter& TMS_OBS_CONCAT_(tms_obs_counter_,      \
                                                __LINE__) =            \
        ::tms::obs::Registry::Global().counter(name);                  \
    TMS_OBS_CONCAT_(tms_obs_counter_, __LINE__).Add(delta);            \
    ::tms::obs::QueryScope::AddCount(name, delta);                     \
  } while (0)

/// Sets the gauge `name` to `value`.
#define TMS_OBS_GAUGE_SET(name, value)                                 \
  do {                                                                 \
    static ::tms::obs::Gauge& TMS_OBS_CONCAT_(tms_obs_gauge_,          \
                                              __LINE__) =              \
        ::tms::obs::Registry::Global().gauge(name);                    \
    TMS_OBS_CONCAT_(tms_obs_gauge_, __LINE__)                          \
        .Set(static_cast<double>(value));                              \
    ::tms::obs::QueryScope::SetGauge(name,                             \
                                     static_cast<double>(value));      \
  } while (0)

/// Records `value` into the histogram `name`.
#define TMS_OBS_HISTOGRAM(name, value)                                 \
  do {                                                                 \
    static ::tms::obs::Histogram& TMS_OBS_CONCAT_(tms_obs_hist_,       \
                                                  __LINE__) =          \
        ::tms::obs::Registry::Global().histogram(name);                \
    TMS_OBS_CONCAT_(tms_obs_hist_, __LINE__)                           \
        .Record(static_cast<int64_t>(value));                          \
    ::tms::obs::QueryScope::RecordHistogram(                           \
        name, static_cast<int64_t>(value));                           \
  } while (0)

/// Opens an RAII trace span covering the rest of the enclosing scope.
#define TMS_OBS_SPAN(name) \
  ::tms::obs::Span TMS_OBS_CONCAT_(tms_obs_span_, __LINE__)(name)

#else  // !TMS_OBS_ACTIVE

// The macros expand to nothing at all — they do not even reference
// their operands, so a variable that exists only to feed a metric needs
// its own #if TMS_OBS_ACTIVE guard (or a (void) cast) to stay
// -Werror-clean in disabled builds.
#define TMS_OBS_COUNT(name, delta) ((void)0)
#define TMS_OBS_GAUGE_SET(name, value) ((void)0)
#define TMS_OBS_HISTOGRAM(name, value) ((void)0)
#define TMS_OBS_SPAN(name) ((void)0)

#endif  // TMS_OBS_ACTIVE

#endif  // TMS_OBS_OBS_H_
