#include "obs/flight_recorder.h"

#if TMS_OBS_ACTIVE

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <inttypes.h>

#include "obs/export.h"

namespace tms::obs {
inline namespace active {

namespace {

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* r = new FlightRecorder();  // leaked: outlives dtors
  return *r;
}

FlightRecorder::FlightRecorder() {
  // TMS_FLIGHT_DUMP overrides the initial sink: "off" disables dumping,
  // "stderr" logs, anything else is an append-target file path. Library
  // embedders default to kMemory (no I/O on truncation); tms_cli switches
  // to kStderr at startup.
  if (const char* env = std::getenv("TMS_FLIGHT_DUMP")) {
    std::string v = env;
    if (v == "off" || v == "0" || v == "none") {
      sink_ = Sink::kNone;
    } else if (v == "stderr") {
      sink_ = Sink::kStderr;
    } else if (v == "memory" || v.empty()) {
      sink_ = Sink::kMemory;
    } else {
      sink_ = Sink::kFile;
      sink_path_ = v;
    }
  }
}

void FlightRecorder::Record(const TraceEvent& event) {
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket & (kCapacity - 1)];
  // Invalidate the slot first so a concurrent snapshot never pairs old and
  // new fields under one matching stamp, then publish the new generation.
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(event.name, std::memory_order_relaxed);
  slot.tid.store(event.tid, std::memory_order_relaxed);
  slot.span_id.store(event.span_id, std::memory_order_relaxed);
  slot.parent_id.store(event.parent_id, std::memory_order_relaxed);
  slot.query_id.store(event.query_id, std::memory_order_relaxed);
  slot.start_ns.store(event.start_ns, std::memory_order_relaxed);
  slot.duration_ns.store(event.duration_ns, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

void FlightRecorder::RecordQueryEnd(QueryEndEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  recent_queries_.push_back(std::move(event));
  while (recent_queries_.size() > kMaxQueryEvents) recent_queries_.pop_front();
}

std::vector<TraceEvent> FlightRecorder::SnapshotSpans() const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t first = head > kCapacity ? head - kCapacity : 0;
  std::vector<TraceEvent> out;
  out.reserve(static_cast<size_t>(head - first));
  for (uint64_t ticket = first; ticket < head; ++ticket) {
    const Slot& slot = ring_[ticket & (kCapacity - 1)];
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    TraceEvent e;
    e.name = slot.name.load(std::memory_order_relaxed);
    e.tid = slot.tid.load(std::memory_order_relaxed);
    e.span_id = slot.span_id.load(std::memory_order_relaxed);
    e.parent_id = slot.parent_id.load(std::memory_order_relaxed);
    e.query_id = slot.query_id.load(std::memory_order_relaxed);
    e.start_ns = slot.start_ns.load(std::memory_order_relaxed);
    e.duration_ns = slot.duration_ns.load(std::memory_order_relaxed);
    // Re-check: if the slot was reused mid-copy the stamp has moved on
    // (or was zeroed) and this event is torn — skip it.
    if (slot.seq.load(std::memory_order_acquire) != ticket + 1) continue;
    if (e.name == nullptr) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<QueryEndEvent> FlightRecorder::SnapshotQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {recent_queries_.begin(), recent_queries_.end()};
}

int64_t FlightRecorder::dropped() const {
  const uint64_t head = head_.load(std::memory_order_relaxed);
  return head > kCapacity ? static_cast<int64_t>(head - kCapacity) : 0;
}

std::string FlightRecorder::DumpJson(const char* reason, uint64_t query_id,
                                     const std::string& detail) const {
  std::string out = "{\"tms_flight_dump\":{\"reason\":\"";
  AppendJsonEscaped(reason, &out);
  out += "\",\"query_id\":";
  AppendU64(query_id, &out);
  out += ",\"detail\":\"";
  AppendJsonEscaped(detail, &out);
  out += "\",\"dropped\":";
  AppendI64(dropped(), &out);

  out += ",\"queries\":[";
  bool first = true;
  for (const QueryEndEvent& q : SnapshotQueries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    AppendU64(q.query_id, &out);
    out += ",\"name\":\"";
    AppendJsonEscaped(q.name, &out);
    out += "\",\"start_ns\":";
    AppendI64(q.start_ns, &out);
    out += ",\"duration_ns\":";
    AppendI64(q.duration_ns, &out);
    out += ",\"counters\":{";
    bool cfirst = true;
    for (const auto& [name, value] : q.counters) {
      if (!cfirst) out += ',';
      cfirst = false;
      out += '"';
      AppendJsonEscaped(name, &out);
      out += "\":";
      AppendI64(value, &out);
    }
    out += "}}";
  }

  out += "],\"spans\":[";
  std::vector<TraceEvent> spans = SnapshotSpans();
  const size_t begin =
      spans.size() > kMaxDumpSpans ? spans.size() - kMaxDumpSpans : 0;
  first = true;
  for (size_t i = begin; i < spans.size(); ++i) {
    const TraceEvent& e = spans[i];
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    out += "\",\"tid\":";
    AppendI64(e.tid, &out);
    out += ",\"span\":";
    AppendU64(e.span_id, &out);
    out += ",\"parent\":";
    AppendU64(e.parent_id, &out);
    out += ",\"query\":";
    AppendU64(e.query_id, &out);
    out += ",\"start_ns\":";
    AppendI64(e.start_ns, &out);
    out += ",\"dur_ns\":";
    AppendI64(e.duration_ns, &out);
    out += '}';
  }
  out += "]}}";
  return out;
}

void FlightRecorder::OnTruncation(const char* reason, uint64_t query_id,
                                  const std::string& detail) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_ == Sink::kNone) return;
    if (query_id != 0) {
      // One dump per query: a shared deadline latching every child stream
      // of a batch must not dump once per sequence.
      for (uint64_t seen : dumped_query_ids_) {
        if (seen == query_id) return;
      }
      dumped_query_ids_.push_back(query_id);
      while (dumped_query_ids_.size() > kMaxQueryEvents) {
        dumped_query_ids_.pop_front();
      }
    }
  }
  Emit(DumpJson(reason, query_id, detail));
  dump_count_.fetch_add(1, std::memory_order_relaxed);
}

void FlightRecorder::Emit(const std::string& doc) {
  std::lock_guard<std::mutex> lock(mu_);
  last_dump_ = doc;
  switch (sink_) {
    case Sink::kNone:
    case Sink::kMemory:
      break;
    case Sink::kStderr:
      std::fprintf(stderr, "%s\n", doc.c_str());
      break;
    case Sink::kFile: {
      if (std::FILE* f = std::fopen(sink_path_.c_str(), "a")) {
        std::fprintf(f, "%s\n", doc.c_str());
        std::fclose(f);
      } else {
        std::fprintf(stderr, "tms: flight dump unwritable: %s\n",
                     sink_path_.c_str());
      }
      break;
    }
  }
}

void FlightRecorder::SetDumpSink(Sink sink, std::string path) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
  sink_path_ = std::move(path);
}

FlightRecorder::Sink FlightRecorder::sink() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sink_;
}

std::string FlightRecorder::LastDump() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_dump_;
}

void FlightRecorder::Clear() {
  // Quiesce the ring by zeroing the stamps; in-flight Record() calls may
  // rewrite a handful of slots, which is fine — Clear() is a test helper,
  // not a consistency point.
  const uint64_t head = head_.load(std::memory_order_relaxed);
  (void)head;
  for (Slot& slot : ring_) slot.seq.store(0, std::memory_order_release);
  head_.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  recent_queries_.clear();
  dumped_query_ids_.clear();
  last_dump_.clear();
  dump_count_.store(0, std::memory_order_relaxed);
}

}  // inline namespace active
}  // namespace tms::obs

#endif  // TMS_OBS_ACTIVE
