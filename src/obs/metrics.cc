#include "obs/metrics.h"

#include <bit>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace tms::obs {

// --- shared (compiled in every build flavor) ---------------------------

int64_t MonotonicNanos() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              origin)
      .count();
}

int64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the target observation (1-based, ceil).
  const int64_t rank =
      static_cast<int64_t>(q * static_cast<double>(count) + 0.5);
  int64_t seen = 0;
  for (const Bucket& b : buckets) {
    seen += b.count;
    if (seen >= rank) {
      // Log-spaced buckets: report the geometric midpoint of the bucket,
      // clamped to the exact observed envelope.
      const double upper = static_cast<double>(b.upper_bound);
      const double lower = upper / 2.0;
      int64_t mid = static_cast<int64_t>(lower + (upper - lower) / 2.0);
      if (mid < min) mid = min;
      if (mid > max) mid = max;
      return mid;
    }
  }
  return max;
}

#if TMS_OBS_ACTIVE

inline namespace active {

namespace {

bool EnabledFromEnv() {
  const char* v = std::getenv("TMS_OBS");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> flag{EnabledFromEnv()};
  return flag;
}

}  // namespace

bool Enabled() { return EnabledFlag().load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

int Histogram::BucketIndex(int64_t v) {
  if (v <= 1) return 0;
  int idx = std::bit_width(static_cast<uint64_t>(v - 1));
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

int64_t Histogram::BucketUpperBound(int index) {
  if (index >= 63) return INT64_MAX;
  return int64_t{1} << index;
}

void Histogram::Record(int64_t v) {
  if (!Enabled()) return;
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  int64_t prev = min_.load(std::memory_order_relaxed);
  while (v < prev &&
         !min_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
  prev = max_.load(std::memory_order_relaxed);
  while (v > prev &&
         !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (int i = 0; i < kNumBuckets; ++i) {
    int64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c > 0) out.buckets.push_back({BucketUpperBound(i), c});
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  if (out.count > 0) {
    out.min = min_.load(std::memory_order_relaxed);
    out.max = max_.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

Registry& Registry::Global() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

RegistrySnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  RegistrySnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->Snapshot();
  }
  return out;
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // inline namespace active

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs
