// Compile-time switch for the observability subsystem.
//
// The build defines TMS_OBS_ENABLED (CMake option TMS_OBS, default ON).
// When it is 0, every obs entry point collapses to an inline no-op — the
// instrumented code in the library compiles to exactly what it was before
// instrumentation (verified by bench_twostep_vs_ranked before/after).
//
// A translation unit may additionally define TMS_OBS_FORCE_DISABLE before
// including any obs header to get the no-op surface even in an
// instrumented build; the no-op types live in a distinct inline namespace
// so mixing both flavors in one binary is ODR-clean. tests/obs_test.cc
// uses this to cover the disabled path.

#ifndef TMS_OBS_CONFIG_H_
#define TMS_OBS_CONFIG_H_

#ifndef TMS_OBS_ENABLED
#define TMS_OBS_ENABLED 1
#endif

#if defined(TMS_OBS_FORCE_DISABLE)
#define TMS_OBS_ACTIVE 0
#else
#define TMS_OBS_ACTIVE TMS_OBS_ENABLED
#endif

#endif  // TMS_OBS_CONFIG_H_
