#include "obs/export.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace tms::obs {

namespace {

void AppendInt(int64_t v, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}


void AppendHistogramJson(const HistogramSnapshot& h, std::string* out) {
  *out += "{\"count\":";
  AppendInt(h.count, out);
  *out += ",\"sum\":";
  AppendInt(h.sum, out);
  *out += ",\"min\":";
  AppendInt(h.min, out);
  *out += ",\"max\":";
  AppendInt(h.max, out);
  *out += ",\"mean\":";
  AppendJsonNumber(h.Mean(), out);
  *out += ",\"p50\":";
  AppendInt(h.Quantile(0.50), out);
  *out += ",\"p90\":";
  AppendInt(h.Quantile(0.90), out);
  *out += ",\"p99\":";
  AppendInt(h.Quantile(0.99), out);
  *out += ",\"buckets\":[";
  bool first = true;
  for (const HistogramSnapshot::Bucket& b : h.buckets) {
    if (!first) *out += ',';
    first = false;
    *out += "{\"le\":";
    AppendInt(b.upper_bound, out);
    *out += ",\"count\":";
    AppendInt(b.count, out);
    *out += '}';
  }
  *out += "]}";
}

}  // namespace

void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {
    *out += '0';
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "tms_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

void AppendPrometheusNumber(double v, std::string* out) {
  if (std::isnan(v)) {
    *out += "NaN";
    return;
  }
  if (std::isinf(v)) {
    *out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

std::string PrometheusLabelEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string RegistryJson(const RegistrySnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":";
    AppendInt(value, &out);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":";
    AppendJsonNumber(value, &out);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(name, &out);
    out += "\":";
    AppendHistogramJson(hist, &out);
  }
  out += "}}";
  return out;
}

std::string PrometheusText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string pname = PrometheusMetricName(name);
    out += "# TYPE " + pname + " counter\n" + pname + ' ';
    AppendInt(value, &out);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string pname = PrometheusMetricName(name);
    out += "# TYPE " + pname + " gauge\n" + pname + ' ';
    // Prometheus spells non-finite samples NaN/+Inf/-Inf; flattening them
    // to 0 (as the JSON writer must) would silently fake a healthy value.
    AppendPrometheusNumber(value, &out);
    out += '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string pname = PrometheusMetricName(name);
    out += "# TYPE " + pname + " histogram\n";
    int64_t cumulative = 0;
    for (const HistogramSnapshot::Bucket& b : hist.buckets) {
      cumulative += b.count;
      // The saturated top bucket IS the +Inf bucket: emitting its raw
      // INT64_MAX bound would duplicate the +Inf boundary with a bogus
      // 9223372036854775807 label. Its counts flow into the +Inf line
      // below via hist.count.
      if (b.upper_bound == std::numeric_limits<int64_t>::max()) continue;
      out += pname + "_bucket{le=\"";
      AppendInt(b.upper_bound, &out);
      out += "\"} ";
      AppendInt(cumulative, &out);
      out += '\n';
    }
    out += pname + "_bucket{le=\"+Inf\"} ";
    AppendInt(hist.count, &out);
    out += '\n';
    out += pname + "_sum ";
    AppendInt(hist.sum, &out);
    out += '\n';
    out += pname + "_count ";
    AppendInt(hist.count, &out);
    out += '\n';
  }
  return out;
}

}  // namespace tms::obs
