// Process-wide metrics registry: counters, gauges, and latency histograms
// with fixed log-spaced (power-of-two) buckets.
//
// Metric names follow the scheme `<module>.<name>` (the `tms.` prefix is
// implicit in-process and materialized by the Prometheus exposition,
// see obs/export.h and docs/OBSERVABILITY.md). Call sites resolve a metric
// once through the TMS_OBS_* macros in obs/obs.h, so the steady-state cost
// of a counter increment is one relaxed atomic add behind one predictable
// branch on the runtime enable flag.
//
// Snapshot types (RegistrySnapshot, HistogramSnapshot) are plain data and
// exist in both the instrumented and the compiled-out build, so exporters
// and tests always link.

#ifndef TMS_OBS_METRICS_H_
#define TMS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/config.h"

namespace tms::obs {

/// Point-in-time copy of one histogram. Buckets are cumulative-free
/// (per-bucket counts) with inclusive upper bounds; only non-empty buckets
/// are materialized. Bounds are the fixed log-spaced grid 1, 2, 4, ... 2^62.
struct HistogramSnapshot {
  struct Bucket {
    int64_t upper_bound = 0;  ///< inclusive upper edge of the bucket
    int64_t count = 0;
  };
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;  ///< exact observed minimum (0 when count == 0)
  int64_t max = 0;  ///< exact observed maximum (0 when count == 0)
  std::vector<Bucket> buckets;

  /// Approximate q-quantile (q in [0, 1]) from the bucket counts, clamped
  /// to the exact [min, max] envelope. Returns 0 when empty.
  int64_t Quantile(double q) const;
  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Point-in-time copy of the whole registry, sorted by metric name.
struct RegistrySnapshot {
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Nanoseconds since an arbitrary process-local origin (steady clock);
/// the time base of trace spans.
int64_t MonotonicNanos();

#if TMS_OBS_ACTIVE

inline namespace active {

/// Runtime collection switch. Initialized from the TMS_OBS environment
/// variable ("0"/"off"/"false" disable collection); defaults to enabled.
/// When disabled, metric mutations are dropped at the call site.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotone event count.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    if (Enabled()) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) {
    if (Enabled()) value_.store(v, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Distribution of nonnegative int64 observations over the fixed
/// power-of-two bucket grid; tracks exact count/sum/min/max alongside.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  /// Bucket index holding v: bucket 0 covers (-inf, 1], bucket i >= 1
  /// covers (2^(i-1), 2^i], values beyond 2^62 land in the last bucket.
  static int BucketIndex(int64_t v);
  /// Inclusive upper bound of bucket `index` (2^index, saturated).
  static int64_t BucketUpperBound(int index);

  void Record(int64_t v);
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{INT64_MAX};
  std::atomic<int64_t> max_{INT64_MIN};
};

/// Name → metric map. Metrics are created on first use and live for the
/// process lifetime, so references returned here are stable and may be
/// cached (the TMS_OBS_* macros cache them in function-local statics).
class Registry {
 public:
  static Registry& Global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Copies every metric. Safe against concurrent mutation.
  RegistrySnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations survive). Tests use
  /// this between cases; long-running processes can use it to scope an
  /// experiment.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // inline namespace active

#else  // !TMS_OBS_ACTIVE

// No-op surface with the same API shape. Everything inlines to nothing;
// a distinct inline namespace keeps mixed builds ODR-clean.
inline namespace noop {

inline bool Enabled() { return false; }
inline void SetEnabled(bool) {}

class Counter {
 public:
  void Add(int64_t = 1) {}
  int64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(double) {}
  double value() const { return 0.0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr int kNumBuckets = 64;
  static int BucketIndex(int64_t) { return 0; }
  static int64_t BucketUpperBound(int) { return 1; }
  void Record(int64_t) {}
  int64_t count() const { return 0; }
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
};

class Registry {
 public:
  static Registry& Global() {
    static Registry r;
    return r;
  }
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  RegistrySnapshot Snapshot() const { return {}; }
  void Reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

}  // inline namespace noop

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs

#endif  // TMS_OBS_METRICS_H_
