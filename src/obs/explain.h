// EXPLAIN-ANALYZE-style per-query cost report.
//
// An ExplainInput is assembled from a finished (or finishing) query: its
// QueryScope's registry snapshot plus the exec outcome the caller already
// holds (stop reason, budget/deadline consumption). ExplainJson /
// ExplainText render it; both emit EVERY field with zero defaults so the
// JSON key set is workload-independent (tools/check_stats_schema.sh
// golden-checks it).
//
// The phase breakdown is derived from the *_ns histograms the engines
// record (optimize.optimize_ns, then compose_ns / solve_ns / oracle_ns /
// merge_ns / confidence_ns);
// whatever wall time they do not account for is reported as `other_ns`
// (answer emission, heap bookkeeping, instrumentation). Phase sums are
// CPU-time-like: with a thread pool they can exceed the wall duration.
//
// Everything here operates on plain snapshot data, so it behaves
// identically in instrumented and compiled-out builds (the latter just
// reports zeros).

#ifndef TMS_OBS_EXPLAIN_H_
#define TMS_OBS_EXPLAIN_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace tms::obs {

/// Everything the report needs. `stats` is normally the per-query
/// registry snapshot (QueryScope::Snapshot()); passing a global snapshot
/// degrades gracefully to a process-wide report.
struct ExplainInput {
  std::string query;      ///< command / engine name (e.g. "topk")
  uint64_t query_id = 0;  ///< QueryScope id (0 = no scope)
  int64_t duration_ns = 0;
  int threads = 1;
  std::string backend = "auto";  ///< requested kernel backend
  RegistrySnapshot stats;

  // Exec outcome (exec::RunContext); negative = not configured.
  std::string stop_reason = "none";
  int64_t answers = 0;
  int64_t work_charged = 0;
  int64_t budget = -1;
  double deadline_ms = -1;
};

/// The derived phase breakdown, exposed for tests.
struct ExplainPhases {
  int64_t optimize_ns = 0;    ///< optimize.optimize_ns (offline passes)
  int64_t compose_ns = 0;     ///< *.compose_ns
  int64_t solve_ns = 0;       ///< *.solve_ns + *.oracle_ns
  int64_t merge_ns = 0;       ///< *.merge_ns
  int64_t confidence_ns = 0;  ///< *.confidence_ns
  int64_t other_ns = 0;       ///< duration - accounted, clamped at 0
};
ExplainPhases DerivePhases(const ExplainInput& input);

/// One JSON object: {"explain":{"query":...,"phases":{...},"delay":{...},
/// "cache":{...},"kernels":{...},"automata":{...},"exec":{...}}}.
std::string ExplainJson(const ExplainInput& input);

/// Human-readable multi-line report (tms_cli explain default output).
std::string ExplainText(const ExplainInput& input);

}  // namespace tms::obs

#endif  // TMS_OBS_EXPLAIN_H_
