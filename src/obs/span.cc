#include "obs/span.h"

#include <atomic>
#include <cstdio>
#include <inttypes.h>

#include "obs/export.h"
#include "obs/flight_recorder.h"

namespace tms::obs {

#if TMS_OBS_ACTIVE

inline namespace active {

namespace {

std::atomic<bool> g_tracing{false};

int NextThreadIndex() {
  static std::atomic<int> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

int ThisThreadIndex() {
  thread_local int tid = NextThreadIndex();
  return tid;
}

}  // namespace

bool TracingEnabled() { return g_tracing.load(std::memory_order_relaxed); }

void SetTracingEnabled(bool enabled) {
  g_tracing.store(enabled, std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* t = new Tracer();  // leaked: outlives static dtors
  return *t;
}

void Tracer::Record(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[160];
  for (const TraceEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(e.name, &out);
    // Chrome-trace timestamps are microseconds (doubles keep sub-us).
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,"
                  "\"dur\":%.3f,\"args\":{\"span\":%" PRIu64
                  ",\"parent\":%" PRIu64 ",\"query\":%" PRIu64 "}}",
                  e.tid, static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.duration_ns) / 1e3, e.span_id,
                  e.parent_id, e.query_id);
    out += buf;
  }
  out += "]}";
  return out;
}

void Span::Finish() {
  internal::SetCurrentSpanId(parent_id_);
  TraceEvent event;
  event.name = name_;
  event.tid = ThisThreadIndex();
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.query_id = CurrentQueryId();
  event.start_ns = start_ns_;
  event.duration_ns = MonotonicNanos() - start_ns_;
  if (TracingEnabled()) Tracer::Global().Record(event);
  FlightRecorder::Global().Record(event);
}

}  // inline namespace active

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs
