#include "obs/explain.h"

#include <cstdio>

#include "obs/export.h"

namespace tms::obs {

namespace {

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int64_t CounterOr0(const RegistrySnapshot& s, const std::string& name) {
  auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

const HistogramSnapshot* FindHistogram(const RegistrySnapshot& s,
                                       const std::string& name) {
  auto it = s.histograms.find(name);
  return it == s.histograms.end() ? nullptr : &it->second;
}

/// The per-answer delay distribution: the `.delay_ns` histogram with the
/// most observations (one engine dominates a single query; ties are broken
/// by name order, deterministically).
struct DelayPick {
  std::string source;
  HistogramSnapshot hist;
};
DelayPick PickDelay(const RegistrySnapshot& s) {
  DelayPick pick;
  for (const auto& [name, hist] : s.histograms) {
    if (!EndsWith(name, ".delay_ns")) continue;
    if (hist.count > pick.hist.count) {
      pick.source = name;
      pick.hist = hist;
    }
  }
  return pick;
}

int64_t DenseKernelCalls(const RegistrySnapshot& s) {
  return CounterOr0(s, "kernels.gemv.calls") +
         CounterOr0(s, "kernels.gemm.calls") +
         CounterOr0(s, "kernels.argmax.calls");
}

int64_t SparseKernelCalls(const RegistrySnapshot& s) {
  return CounterOr0(s, "kernels.sparse.gemv.calls") +
         CounterOr0(s, "kernels.sparse.gemm.calls") +
         CounterOr0(s, "kernels.sparse.maskor.calls");
}

void AppendI64(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  *out += buf;
}

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendKeyI64(const char* key, int64_t v, std::string* out) {
  *out += '"';
  *out += key;
  *out += "\":";
  AppendI64(v, out);
}

std::string Ms(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  return buf;
}

std::string Pct(int64_t part, int64_t whole) {
  if (whole <= 0) return "-";
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.0f%%",
                100.0 * static_cast<double>(part) / static_cast<double>(whole));
  return buf;
}

}  // namespace

ExplainPhases DerivePhases(const ExplainInput& input) {
  ExplainPhases p;
  for (const auto& [name, hist] : input.stats.histograms) {
    if (name == "optimize.optimize_ns") {
      p.optimize_ns += hist.sum;
    } else if (EndsWith(name, ".compose_ns")) {
      p.compose_ns += hist.sum;
    } else if (EndsWith(name, ".solve_ns") || EndsWith(name, ".oracle_ns")) {
      p.solve_ns += hist.sum;
    } else if (EndsWith(name, ".merge_ns")) {
      p.merge_ns += hist.sum;
    } else if (EndsWith(name, ".confidence_ns")) {
      p.confidence_ns += hist.sum;
    }
  }
  const int64_t accounted = p.optimize_ns + p.compose_ns + p.solve_ns +
                            p.merge_ns + p.confidence_ns;
  p.other_ns =
      input.duration_ns > accounted ? input.duration_ns - accounted : 0;
  return p;
}

std::string ExplainJson(const ExplainInput& input) {
  const ExplainPhases phases = DerivePhases(input);
  const DelayPick delay = PickDelay(input.stats);
  const int64_t cache_hits = CounterOr0(input.stats, "cache.hits");
  const int64_t cache_misses = CounterOr0(input.stats, "cache.misses");
  const int64_t cache_lookups = cache_hits + cache_misses;
  const HistogramSnapshot* composed =
      FindHistogram(input.stats, "query.emax_enum.composed_states");
  const HistogramSnapshot* product =
      FindHistogram(input.stats, "automata.product.states");

  std::string out = "{\"explain\":{\"query\":\"";
  AppendJsonEscaped(input.query, &out);
  out += "\",\"query_id\":";
  AppendU64(input.query_id, &out);
  out += ',';
  AppendKeyI64("duration_ns", input.duration_ns, &out);
  out += ',';
  AppendKeyI64("threads", input.threads, &out);
  out += ",\"backend\":\"";
  AppendJsonEscaped(input.backend, &out);
  out += "\",\"phases\":{";
  AppendKeyI64("optimize_ns", phases.optimize_ns, &out);
  out += ',';
  AppendKeyI64("compose_ns", phases.compose_ns, &out);
  out += ',';
  AppendKeyI64("solve_ns", phases.solve_ns, &out);
  out += ',';
  AppendKeyI64("merge_ns", phases.merge_ns, &out);
  out += ',';
  AppendKeyI64("confidence_ns", phases.confidence_ns, &out);
  out += ',';
  AppendKeyI64("other_ns", phases.other_ns, &out);
  out += "},\"delay\":{\"source\":\"";
  AppendJsonEscaped(delay.source, &out);
  out += "\",";
  AppendKeyI64("count", delay.hist.count, &out);
  out += ",\"mean_ns\":";
  AppendJsonNumber(delay.hist.Mean(), &out);
  out += ',';
  AppendKeyI64("p50_ns", delay.hist.Quantile(0.50), &out);
  out += ',';
  AppendKeyI64("p90_ns", delay.hist.Quantile(0.90), &out);
  out += ',';
  AppendKeyI64("p99_ns", delay.hist.Quantile(0.99), &out);
  out += ',';
  AppendKeyI64("max_ns", delay.hist.max, &out);
  out += "},\"cache\":{";
  AppendKeyI64("hits", cache_hits, &out);
  out += ',';
  AppendKeyI64("misses", cache_misses, &out);
  out += ",\"hit_rate\":";
  AppendJsonNumber(cache_lookups == 0 ? 0.0
                                      : static_cast<double>(cache_hits) /
                                            static_cast<double>(cache_lookups),
                   &out);
  out += ',';
  AppendKeyI64("evictions", CounterOr0(input.stats, "cache.evictions"), &out);
  out += "},\"kernels\":{";
  AppendKeyI64("dense_calls", DenseKernelCalls(input.stats), &out);
  out += ',';
  AppendKeyI64("sparse_calls", SparseKernelCalls(input.stats), &out);
  out += ',';
  AppendKeyI64("sparse_chosen", CounterOr0(input.stats, "kernels.sparse.chosen"),
               &out);
  out += ',';
  AppendKeyI64("sparse_fallback",
               CounterOr0(input.stats, "kernels.sparse.fallback"), &out);
  out += ',';
  AppendKeyI64("sparse_rejected",
               CounterOr0(input.stats, "kernels.sparse.rejected"), &out);
  out += "},\"automata\":{";
  AppendKeyI64("composed_states_max", composed ? composed->max : 0, &out);
  out += ",\"composed_states_mean\":";
  AppendJsonNumber(composed ? composed->Mean() : 0.0, &out);
  out += ',';
  AppendKeyI64("product_states_max", product ? product->max : 0, &out);
  out += ',';
  AppendKeyI64("optimize_states_pruned",
               CounterOr0(input.stats, "optimize.product_states_pruned"),
               &out);
  out += "},\"exec\":{\"stop_reason\":\"";
  AppendJsonEscaped(input.stop_reason, &out);
  out += "\",";
  AppendKeyI64("answers", input.answers, &out);
  out += ',';
  AppendKeyI64("work_charged", input.work_charged, &out);
  out += ',';
  AppendKeyI64("budget", input.budget, &out);
  out += ",\"budget_used_pct\":";
  AppendJsonNumber(input.budget > 0
                       ? 100.0 * static_cast<double>(input.work_charged) /
                             static_cast<double>(input.budget)
                       : 0.0,
                   &out);
  out += ",\"deadline_ms\":";
  AppendJsonNumber(input.deadline_ms, &out);
  out += "}}}";
  return out;
}

std::string ExplainText(const ExplainInput& input) {
  const ExplainPhases phases = DerivePhases(input);
  const DelayPick delay = PickDelay(input.stats);
  const int64_t cache_hits = CounterOr0(input.stats, "cache.hits");
  const int64_t cache_misses = CounterOr0(input.stats, "cache.misses");
  const int64_t cache_lookups = cache_hits + cache_misses;
  const HistogramSnapshot* composed =
      FindHistogram(input.stats, "query.emax_enum.composed_states");
  const HistogramSnapshot* product =
      FindHistogram(input.stats, "automata.product.states");
  const int64_t accounted =
      phases.optimize_ns + phases.compose_ns + phases.solve_ns +
      phases.merge_ns + phases.confidence_ns + phases.other_ns;

  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "EXPLAIN query=%s id=%llu duration=%s threads=%d backend=%s\n",
                input.query.c_str(),
                static_cast<unsigned long long>(input.query_id),
                Ms(input.duration_ns).c_str(), input.threads,
                input.backend.c_str());
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  phases:  optimize %s (%s) | compose %s (%s) | solve %s (%s) | "
      "merge %s (%s) | confidence %s (%s) | other %s (%s)\n",
      Ms(phases.optimize_ns).c_str(),
      Pct(phases.optimize_ns, accounted).c_str(),
      Ms(phases.compose_ns).c_str(), Pct(phases.compose_ns, accounted).c_str(),
      Ms(phases.solve_ns).c_str(), Pct(phases.solve_ns, accounted).c_str(),
      Ms(phases.merge_ns).c_str(), Pct(phases.merge_ns, accounted).c_str(),
      Ms(phases.confidence_ns).c_str(),
      Pct(phases.confidence_ns, accounted).c_str(),
      Ms(phases.other_ns).c_str(), Pct(phases.other_ns, accounted).c_str());
  out += buf;
  if (delay.hist.count > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  delay:   n=%lld mean=%s p50=%s p90=%s p99=%s max=%s "
                  "(%s)\n",
                  static_cast<long long>(delay.hist.count),
                  Ms(static_cast<int64_t>(delay.hist.Mean())).c_str(),
                  Ms(delay.hist.Quantile(0.50)).c_str(),
                  Ms(delay.hist.Quantile(0.90)).c_str(),
                  Ms(delay.hist.Quantile(0.99)).c_str(),
                  Ms(delay.hist.max).c_str(), delay.source.c_str());
    out += buf;
  } else {
    out += "  delay:   no answers recorded\n";
  }
  std::snprintf(buf, sizeof(buf),
                "  cache:   hits=%lld misses=%lld hit_rate=%s evictions=%lld\n",
                static_cast<long long>(cache_hits),
                static_cast<long long>(cache_misses),
                Pct(cache_hits, cache_lookups).c_str(),
                static_cast<long long>(
                    CounterOr0(input.stats, "cache.evictions")));
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "  kernels: dense=%lld sparse=%lld calls "
      "(chosen=%lld fallback=%lld rejected=%lld)\n",
      static_cast<long long>(DenseKernelCalls(input.stats)),
      static_cast<long long>(SparseKernelCalls(input.stats)),
      static_cast<long long>(CounterOr0(input.stats, "kernels.sparse.chosen")),
      static_cast<long long>(
          CounterOr0(input.stats, "kernels.sparse.fallback")),
      static_cast<long long>(
          CounterOr0(input.stats, "kernels.sparse.rejected")));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  automata: composed_states mean=%.1f max=%lld "
                "product_states max=%lld optimize_pruned=%lld\n",
                composed ? composed->Mean() : 0.0,
                static_cast<long long>(composed ? composed->max : 0),
                static_cast<long long>(product ? product->max : 0),
                static_cast<long long>(CounterOr0(
                    input.stats, "optimize.product_states_pruned")));
  out += buf;
  std::string budget = input.budget < 0
                           ? std::string("unlimited")
                           : std::to_string(input.budget) + " (" +
                                 Pct(input.work_charged, input.budget) +
                                 " used)";
  std::string deadline =
      input.deadline_ms < 0
          ? std::string("none")
          : std::to_string(input.deadline_ms) + "ms";
  std::snprintf(buf, sizeof(buf),
                "  exec:    stop=%s answers=%lld work=%lld budget=%s "
                "deadline=%s\n",
                input.stop_reason.c_str(),
                static_cast<long long>(input.answers),
                static_cast<long long>(input.work_charged), budget.c_str(),
                deadline.c_str());
  out += buf;
  return out;
}

}  // namespace tms::obs
