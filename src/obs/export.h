// Sinks for the metrics registry: machine-readable JSON and
// Prometheus-style text exposition.
//
// Both writers operate on RegistrySnapshot, so they work identically in
// instrumented and compiled-out builds (the latter just sees an empty
// snapshot).

#ifndef TMS_OBS_EXPORT_H_
#define TMS_OBS_EXPORT_H_

#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace tms::obs {

/// Appends `s` to `*out` with JSON string escaping (quotes, backslashes,
/// control characters). Does not add surrounding quotes.
void AppendJsonEscaped(std::string_view s, std::string* out);

/// Formats a double as a JSON number (finite values only; NaN/inf are
/// emitted as 0 to keep the document valid).
void AppendJsonNumber(double v, std::string* out);

/// Maps an in-process metric name to a valid Prometheus metric name:
/// `tms_` prefix, [a-zA-Z0-9_:] charset, every other byte (dots included)
/// becomes '_'. Digits are preserved wherever they appear — a name like
/// `kernels.f64.gemv` keeps its `64` — and the fixed prefix guarantees
/// the result never starts with a digit.
std::string PrometheusMetricName(std::string_view name);

/// Appends `v` as a Prometheus sample value: `NaN`, `+Inf`, `-Inf`, or a
/// full-precision decimal. (JSON has no spelling for these; Prometheus
/// text exposition requires them.)
void AppendPrometheusNumber(double v, std::string* out);

/// Escapes a label value per the text exposition format: backslash,
/// double quote, and newline become \\, \", \n. Does not add quotes.
std::string PrometheusLabelEscape(std::string_view value);

/// The snapshot as one JSON object:
///   {"counters": {"ranking.lawler.pops": 5, ...},
///    "gauges": {...},
///    "histograms": {"query.emax_enum.delay_ns":
///        {"count":..,"sum":..,"min":..,"max":..,"mean":..,
///         "p50":..,"p90":..,"p99":..,
///         "buckets":[{"le":..,"count":..}, ...]}, ...}}
std::string RegistryJson(const RegistrySnapshot& snapshot);

/// The snapshot in Prometheus text exposition format. Metric names are
/// prefixed with `tms_` and dots become underscores; histograms emit
/// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
std::string PrometheusText(const RegistrySnapshot& snapshot);

}  // namespace tms::obs

#endif  // TMS_OBS_EXPORT_H_
