#include "obs/query_scope.h"

#if TMS_OBS_ACTIVE

#include <atomic>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/span.h"

namespace tms::obs {
inline namespace active {
namespace {

// Per-thread trace state. One POD thread_local keeps the hot-path cost of
// "is a scope current?" to a single load.
struct ThreadTraceState {
  QueryScope* scope = nullptr;
  uint64_t query_id = 0;
  uint64_t current_span = 0;
};

thread_local ThreadTraceState t_trace;

uint64_t NextQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceContext CurrentTraceContext() {
  return {t_trace.scope, t_trace.query_id, t_trace.current_span};
}

uint64_t CurrentQueryId() { return t_trace.query_id; }

QueryScope::QueryScope(std::string name)
    : name_(std::move(name)),
      query_id_(NextQueryId()),
      root_span_id_(internal::NextSpanId()),
      start_ns_(MonotonicNanos()),
      prev_scope_(t_trace.scope),
      prev_query_id_(t_trace.query_id),
      prev_span_id_(t_trace.current_span) {
  t_trace.scope = this;
  t_trace.query_id = query_id_;
  t_trace.current_span = root_span_id_;
}

QueryScope::~QueryScope() {
  t_trace.scope = prev_scope_;
  t_trace.query_id = prev_query_id_;
  t_trace.current_span = prev_span_id_;

  const int64_t duration_ns = MonotonicNanos() - start_ns_;

  // Process-global summary, so long-lived servers can watch query volume
  // and latency without retaining per-query registries.
  Registry::Global().counter("obs.query.count").Add(1);
  Registry::Global().histogram("obs.query.duration_ns").Record(duration_ns);

  // Root span: parents every top-level span of this query in the trace,
  // and anchors the query in the flight-recorder ring.
  TraceEvent root;
  root.name = "obs.query";
  root.span_id = root_span_id_;
  root.parent_id = 0;
  root.query_id = query_id_;
  root.start_ns = start_ns_;
  root.duration_ns = duration_ns;
  if (TracingEnabled()) Tracer::Global().Record(root);
  FlightRecorder::Global().Record(root);

  // Wide per-query event: identity + final counter totals.
  QueryEndEvent wide;
  wide.query_id = query_id_;
  wide.name = name_;
  wide.start_ns = start_ns_;
  wide.duration_ns = duration_ns;
  RegistrySnapshot snap = registry_.Snapshot();
  wide.counters.reserve(snap.counters.size());
  for (const auto& [counter_name, value] : snap.counters) {
    wide.counters.emplace_back(counter_name, value);
  }
  FlightRecorder::Global().RecordQueryEnd(std::move(wide));
}

QueryScope* QueryScope::Current() { return t_trace.scope; }

void QueryScope::AddCount(std::string_view name, int64_t delta) {
  if (QueryScope* s = t_trace.scope) s->registry_.counter(name).Add(delta);
}

void QueryScope::SetGauge(std::string_view name, double value) {
  if (QueryScope* s = t_trace.scope) s->registry_.gauge(name).Set(value);
}

void QueryScope::RecordHistogram(std::string_view name, int64_t value) {
  if (QueryScope* s = t_trace.scope) {
    s->registry_.histogram(name).Record(value);
  }
}

ScopeAdoption::ScopeAdoption(const TraceContext& context)
    : prev_scope_(t_trace.scope),
      prev_query_id_(t_trace.query_id),
      prev_span_id_(t_trace.current_span) {
  t_trace.scope = context.scope;
  t_trace.query_id = context.query_id;
  t_trace.current_span = context.parent_span_id;
}

ScopeAdoption::~ScopeAdoption() {
  t_trace.scope = prev_scope_;
  t_trace.query_id = prev_query_id_;
  t_trace.current_span = prev_span_id_;
}

namespace internal {

bool ThreadHasScope() { return t_trace.scope != nullptr; }

uint64_t CurrentSpanId() { return t_trace.current_span; }

void SetCurrentSpanId(uint64_t id) { t_trace.current_span = id; }

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace internal

}  // inline namespace active
}  // namespace tms::obs

#endif  // TMS_OBS_ACTIVE
