// Always-on bounded flight recorder: a lock-free ring of recent spans
// plus one wide structured event per finished query, dumped automatically
// when a run is truncated.
//
// A truncated production run (deadline, budget, cancellation, injected
// fault) is exactly the run you most want to debug and exactly the run
// that did not finish writing its normal reports. The recorder keeps the
// last ~2k finished spans in a fixed ring (every slot is a set of relaxed
// atomics, so recording is wait-free and race-free at any thread count;
// a torn read under wrap-around is detected by a per-slot sequence stamp
// and skipped) and the last few per-query summary events. When
// exec::RunContext latches kBudget / kDeadline / kCancelled / kFault —
// NOT kAnswerCap, which is a client-requested stop — it calls
// OnTruncation() here, and the recorder emits one JSON document to the
// configured sink. An answer-cap or clean completion never dumps.
//
// Sinks: kMemory (default — the dump is retained for LastDump(), no I/O),
// kStderr (one line on stderr; tms_cli's default so truncated CLI runs
// are post-mortem-debuggable), kFile (append to a path), kNone (skip dump
// entirely, the recorder still records). The TMS_FLIGHT_DUMP environment
// variable overrides the initial sink: "off", "stderr", or a file path.
// Dumps are deduplicated per query id so a batch whose shared deadline
// latches every child stream dumps once, not once per sequence.
//
// Dump format (one JSON object; see docs/OBSERVABILITY.md):
//   {"tms_flight_dump":{"reason":"DEADLINE","query_id":7,"detail":"",
//     "dropped":0,
//     "queries":[{"id":..,"name":"..","start_ns":..,"duration_ns":..,
//                 "counters":{...}}, ...],
//     "spans":[{"name":"..","tid":0,"span":9,"parent":3,"query":7,
//               "start_ns":..,"dur_ns":..}, ...]}}

#ifndef TMS_OBS_FLIGHT_RECORDER_H_
#define TMS_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/config.h"
#include "obs/span.h"

namespace tms::obs {

/// One wide per-query record: identity, wall time, and the query's
/// counter totals (from its QueryScope registry) at close.
struct QueryEndEvent {
  uint64_t query_id = 0;
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::vector<std::pair<std::string, int64_t>> counters;
};

#if TMS_OBS_ACTIVE

inline namespace active {

class FlightRecorder {
 public:
  /// Ring capacity (power of two). ~2k spans of recent history.
  static constexpr size_t kCapacity = 2048;
  /// Wide per-query events retained.
  static constexpr size_t kMaxQueryEvents = 32;
  /// Spans included in one dump (the most recent of the ring).
  static constexpr size_t kMaxDumpSpans = 256;

  enum class Sink { kNone, kMemory, kStderr, kFile };

  static FlightRecorder& Global();

  /// Appends one finished span. Wait-free; called by every Span that was
  /// active (a query scope was current or tracing was enabled).
  void Record(const TraceEvent& event);

  /// Appends the wide per-query event (QueryScope destructor).
  void RecordQueryEnd(QueryEndEvent event);

  /// Called by exec::RunContext when a hard limit latches. Emits at most
  /// one dump per query id (id 0 — no scope — is never deduplicated).
  void OnTruncation(const char* reason, uint64_t query_id,
                    const std::string& detail);

  /// Renders the dump document without emitting it.
  std::string DumpJson(const char* reason, uint64_t query_id,
                       const std::string& detail) const;

  void SetDumpSink(Sink sink, std::string path = "");
  Sink sink() const;

  /// Best-effort copy of the ring, oldest first. Slots being concurrently
  /// overwritten are skipped.
  std::vector<TraceEvent> SnapshotSpans() const;
  std::vector<QueryEndEvent> SnapshotQueries() const;

  /// The most recent dump document ("" when none since Clear()).
  std::string LastDump() const;
  int64_t dump_count() const {
    return dump_count_.load(std::memory_order_relaxed);
  }
  /// Spans overwritten before they could ever be dumped do not exist;
  /// this counts ring wrap-arounds' lost *capacity* view: total records
  /// minus kCapacity, clamped at 0.
  int64_t dropped() const;

  /// Forgets everything (tests).
  void Clear();

 private:
  FlightRecorder();

  // One ring slot. All fields are relaxed atomics so concurrent record /
  // snapshot is free of data races; `seq` stamps the generation (ticket
  // + 1) and is written last with release ordering, so a reader that sees
  // matching stamps before and after its field reads holds a consistent
  // event.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<int> tid{0};
    std::atomic<uint64_t> span_id{0};
    std::atomic<uint64_t> parent_id{0};
    std::atomic<uint64_t> query_id{0};
    std::atomic<int64_t> start_ns{0};
    std::atomic<int64_t> duration_ns{0};
  };

  void Emit(const std::string& doc);

  Slot ring_[kCapacity];
  std::atomic<uint64_t> head_{0};
  std::atomic<int64_t> dump_count_{0};

  mutable std::mutex mu_;
  std::deque<QueryEndEvent> recent_queries_;
  std::deque<uint64_t> dumped_query_ids_;  // bounded dedup window
  Sink sink_ = Sink::kMemory;
  std::string sink_path_;
  std::string last_dump_;
};

}  // inline namespace active

#else  // !TMS_OBS_ACTIVE

inline namespace noop {

class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 0;
  static constexpr size_t kMaxQueryEvents = 0;
  static constexpr size_t kMaxDumpSpans = 0;

  enum class Sink { kNone, kMemory, kStderr, kFile };

  static FlightRecorder& Global() {
    static FlightRecorder r;
    return r;
  }

  void Record(const TraceEvent&) {}
  void RecordQueryEnd(QueryEndEvent) {}
  void OnTruncation(const char*, uint64_t, const std::string&) {}
  std::string DumpJson(const char*, uint64_t, const std::string&) const {
    return "{}";
  }
  void SetDumpSink(Sink, std::string = "") {}
  Sink sink() const { return Sink::kNone; }
  std::vector<TraceEvent> SnapshotSpans() const { return {}; }
  std::vector<QueryEndEvent> SnapshotQueries() const { return {}; }
  std::string LastDump() const { return ""; }
  int64_t dump_count() const { return 0; }
  int64_t dropped() const { return 0; }
  void Clear() {}
};

}  // inline namespace noop

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs

#endif  // TMS_OBS_FLIGHT_RECORDER_H_
