// Lightweight scoped trace spans.
//
// A Span is an RAII marker around a region of work. On destruction it
// appends one complete ("ph":"X") event to the process-wide Tracer, which
// can be exported as Chrome-trace JSON (chrome://tracing, Perfetto).
// Spans carry explicit parentage: each active span allocates an id,
// parents under the thread's current span (obs/query_scope.h — propagated
// across pool tasks by ScopeAdoption), and restores its parent as current
// when it closes, so cross-thread traces nest correctly rather than only
// by same-thread timing.
//
// Tracing is off by default (SetTracingEnabled) so spans on hot paths cost
// one predictable branch. When a QueryScope is current on the thread a
// span is active even with tracing off, feeding the always-on flight
// recorder ring (obs/flight_recorder.h); a thread with neither pays only
// two relaxed loads. The event buffer is capped so a long-running process
// cannot grow without bound.

#ifndef TMS_OBS_SPAN_H_
#define TMS_OBS_SPAN_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/config.h"
#include "obs/metrics.h"
#include "obs/query_scope.h"

namespace tms::obs {

/// One finished span, in the process-local monotonic time base.
struct TraceEvent {
  const char* name = "";   ///< static string at the span site
  int tid = 0;             ///< sequential thread index (not an OS tid)
  uint64_t span_id = 0;    ///< 0 when parentage was not tracked
  uint64_t parent_id = 0;  ///< 0 = top-level (query root or orphan)
  uint64_t query_id = 0;   ///< owning QueryScope id; 0 = no scope
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
};

#if TMS_OBS_ACTIVE

inline namespace active {

/// Runtime switch for span collection; independent of metric collection.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

/// Process-wide sink for finished spans.
class Tracer {
 public:
  /// Oldest events win once the buffer is full; `dropped()` reports loss.
  static constexpr size_t kMaxEvents = 1 << 16;

  static Tracer& Global();

  void Record(const TraceEvent& event);
  std::vector<TraceEvent> Events() const;
  int64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void Clear();

  /// The collected trace as a Chrome-trace JSON document
  /// ({"traceEvents": [...]}; timestamps in microseconds).
  std::string ChromeTraceJson() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::atomic<int64_t> dropped_{0};
};

/// RAII span. `name` must be a string with static storage duration
/// (a literal at the instrumentation site).
class Span {
 public:
  explicit Span(const char* name) {
    if (TracingEnabled() || internal::ThreadHasScope()) {
      name_ = name;
      start_ns_ = MonotonicNanos();
      span_id_ = internal::NextSpanId();
      parent_id_ = internal::CurrentSpanId();
      internal::SetCurrentSpanId(span_id_);
      active_ = true;
    }
  }
  ~Span() {
    if (active_) Finish();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void Finish();

  const char* name_ = nullptr;
  int64_t start_ns_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_id_ = 0;
  bool active_ = false;
};

}  // inline namespace active

#else  // !TMS_OBS_ACTIVE

inline namespace noop {

inline bool TracingEnabled() { return false; }
inline void SetTracingEnabled(bool) {}

class Tracer {
 public:
  static constexpr size_t kMaxEvents = 0;
  static Tracer& Global() {
    static Tracer t;
    return t;
  }
  void Record(const TraceEvent&) {}
  std::vector<TraceEvent> Events() const { return {}; }
  int64_t dropped() const { return 0; }
  void Clear() {}
  std::string ChromeTraceJson() const { return "{\"traceEvents\":[]}"; }
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

}  // inline namespace noop

#endif  // TMS_OBS_ACTIVE

}  // namespace tms::obs

#endif  // TMS_OBS_SPAN_H_
