// Hospital RFID workload (the paper's motivating application).
//
// Simulates the Lahar-style deployment of Example 3.1: a floor with
// `num_rooms` rooms plus a hallway and a lab, each with `locs_per_place`
// sub-locations. A transmitter-carrying object random-walks over
// sub-locations; noisy sensors misread nearby sub-locations. The
// HMM→posterior translation (hmm/translate.h) then yields realistic
// Markov sequences whose uncertainty structure — sensor confusion, missed
// reads, sub-location ambiguity inside a place — matches the paper's
// description. This substitutes for Lahar's proprietary hospital traces
// (DESIGN.md §5).

#ifndef TMS_WORKLOAD_HOSPITAL_H_
#define TMS_WORKLOAD_HOSPITAL_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "hmm/hmm.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::workload {

/// Configuration of the simulated floor.
struct HospitalConfig {
  int num_rooms = 2;        ///< rooms (each with sub-locations a, b, …)
  int locs_per_place = 2;   ///< sub-locations per place (rooms, hallway, lab)
  double stay_prob = 0.6;   ///< chance of staying at the sub-location
  double within_place_prob = 0.25;  ///< chance of moving within the place
  double sensor_accuracy = 0.8;     ///< chance the true location is read
};

/// A generated hospital scenario: the HMM, one sampled trajectory, and the
/// posterior Markov sequence for its observations.
struct HospitalScenario {
  hmm::Hmm model;
  Str true_locations;             ///< hidden ground truth
  Str observations;               ///< noisy sensor readings
  markov::MarkovSequence mu;      ///< posterior Markov sequence
};

/// Builds the floor HMM. Hidden states and observations share the
/// location alphabet: "r<i><x>" for room i sub-location x, "h<x>" for the
/// hallway, "l<x>" for the lab (e.g. "r1a", "h b", "la"). Movement between
/// places routes through the hallway; sensors confuse sub-locations of the
/// same place and adjacent places.
StatusOr<hmm::Hmm> BuildHospitalHmm(const HospitalConfig& config);

/// Samples a trajectory of length n and translates the observations into
/// the posterior Markov sequence.
StatusOr<HospitalScenario> MakeScenario(const HospitalConfig& config, int n,
                                        Rng& rng);

/// A Figure-2-style place tracker for the scenario's alphabet: emits the
/// room number (or "L" for the lab, "H" for the hallway) whenever a place
/// is entered from a different place.
transducer::Transducer PlaceTracker(const Alphabet& locations,
                                    const HospitalConfig& config);

}  // namespace tms::workload

#endif  // TMS_WORKLOAD_HOSPITAL_H_
