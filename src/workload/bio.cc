#include "workload/bio.h"

#include "automata/regex.h"
#include "common/check.h"
#include "hmm/translate.h"

namespace tms::workload {
namespace {

Status ValidateConfig(const MotifConfig& config) {
  if (config.consensus.empty()) {
    return Status::InvalidArgument("motif consensus must be nonempty");
  }
  for (char c : config.consensus) {
    if (c != 'A' && c != 'C' && c != 'G' && c != 'T') {
      return Status::InvalidArgument(
          "motif consensus must be over ACGT, got: " +
          std::string(1, c));
    }
  }
  if (!(config.match_fidelity > 0.25 && config.match_fidelity <= 1.0)) {
    return Status::InvalidArgument("match_fidelity must be in (0.25, 1]");
  }
  if (!(config.motif_entry_prob > 0 && config.motif_entry_prob < 1)) {
    return Status::InvalidArgument("motif_entry_prob must be in (0, 1)");
  }
  return Status::Ok();
}

size_t BaseIndex(char c) {
  switch (c) {
    case 'A': return 0;
    case 'C': return 1;
    case 'G': return 2;
    default: return 3;  // 'T'
  }
}

}  // namespace

Alphabet DnaAlphabet() {
  Alphabet out;
  out.Intern("A");
  out.Intern("C");
  out.Intern("G");
  out.Intern("T");
  return out;
}

StatusOr<hmm::Hmm> BuildMotifHmm(const MotifConfig& config) {
  TMS_RETURN_IF_ERROR(ValidateConfig(config));
  const int k = static_cast<int>(config.consensus.size());
  Alphabet states;
  states.Intern("bg");
  for (int i = 1; i <= k; ++i) states.Intern("m" + std::to_string(i));
  Alphabet bases = DnaAlphabet();
  const size_t ns = states.size();

  std::vector<double> initial(ns, 0.0);
  initial[0] = 1.0;  // reads start in background

  std::vector<double> transition(ns * ns, 0.0);
  // bg: stay or enter the motif.
  transition[0 * ns + 0] = 1.0 - config.motif_entry_prob;
  transition[0 * ns + 1] = config.motif_entry_prob;
  // m_i → m_{i+1}; m_k → bg.
  for (int i = 1; i < k; ++i) {
    transition[static_cast<size_t>(i) * ns + static_cast<size_t>(i + 1)] =
        1.0;
  }
  transition[static_cast<size_t>(k) * ns + 0] = 1.0;

  std::vector<double> emission(ns * bases.size(), 0.0);
  for (size_t b = 0; b < bases.size(); ++b) {
    emission[0 * bases.size() + b] = 0.25;  // uniform background
  }
  for (int i = 1; i <= k; ++i) {
    size_t consensus_base =
        BaseIndex(config.consensus[static_cast<size_t>(i - 1)]);
    for (size_t b = 0; b < bases.size(); ++b) {
      emission[static_cast<size_t>(i) * bases.size() + b] =
          b == consensus_base ? config.match_fidelity
                              : (1.0 - config.match_fidelity) / 3.0;
    }
  }
  return hmm::Hmm::Create(states, bases, std::move(initial),
                          std::move(transition), std::move(emission));
}

StatusOr<MotifScenario> MakeMotifScenario(const MotifConfig& config, int n,
                                          Rng& rng) {
  auto model = BuildMotifHmm(config);
  if (!model.ok()) return model.status();
  if (n < static_cast<int>(config.consensus.size())) {
    return Status::InvalidArgument("read shorter than the motif");
  }
  auto [labels, bases] = model->Sample(n, rng);
  auto mu = hmm::PosteriorMarkovSequence(*model, bases);
  if (!mu.ok()) return mu.status();
  MotifScenario out{std::move(model).value(), std::move(labels),
                    std::move(bases), std::move(mu).value()};
  return out;
}

StatusOr<projector::SProjector> MotifExtractor(const MotifConfig& config) {
  auto model = BuildMotifHmm(config);
  if (!model.ok()) return model.status();
  const Alphabet& states = model->states();
  std::string pattern;
  for (size_t i = 1; i < states.size(); ++i) {
    if (i > 1) pattern += ' ';
    pattern += states.Name(static_cast<Symbol>(i));
  }
  auto dfa = automata::CompileRegexToDfa(states, pattern);
  if (!dfa.ok()) return dfa.status();
  return projector::SProjector::Simple(std::move(dfa).value());
}

}  // namespace tms::workload
