// Text-extraction workload (Example 5.1).
//
// The paper motivates s-projectors with data extraction from noisy
// textual sources (hand-written forms, OCR): the projector
// [".*Name:"]["[a-zA-Z,]+"]["\s.*"] extracts Hillary from
// "...Name:Hillary ...". This module generates character-level Markov
// sequences that model OCR output — a ground-truth string with
// per-character confusion — plus the matching s-projectors.

#ifndef TMS_WORKLOAD_TEXT_H_
#define TMS_WORKLOAD_TEXT_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "projector/sprojector.h"

namespace tms::workload {

/// Configuration of the OCR noise model.
struct OcrConfig {
  /// Probability the true character is read correctly.
  double char_accuracy = 0.9;
  /// Characters each true character can be confused with (ring neighbors
  /// in the alphabet order).
  int confusion_spread = 2;
};

/// The character alphabet used by the text workload: a-z, comma, colon,
/// and space (single-character symbol names, so char-mode regexes apply).
Alphabet TextAlphabet();

/// A character-level Markov sequence modeling an OCR read of `truth`:
/// position i is the true character with probability char_accuracy and a
/// nearby character otherwise (independent noise — the degenerate Markov
/// case the paper's model subsumes).
StatusOr<markov::MarkovSequence> OcrSequence(const std::string& truth,
                                             const OcrConfig& config);

/// Example 5.1's extractor: matches "[a-z,]+" after a "name:" prefix and
/// before whitespace — FromCharRegex(".*name:", "[a-z,]+", " .*").
StatusOr<projector::SProjector> NameExtractor();

/// A synthetic form line: "<filler> name:<name> <filler>" padded to
/// `length` characters, with the name placed mid-string.
std::string MakeFormLine(const std::string& name, int length, Rng& rng);

}  // namespace tms::workload

#endif  // TMS_WORKLOAD_TEXT_H_
