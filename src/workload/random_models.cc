#include "workload/random_models.h"

#include <algorithm>
#include <string>

#include "common/check.h"

namespace tms::workload {

Alphabet MakeSymbols(int count, const std::string& prefix) {
  TMS_CHECK(count >= 1);
  Alphabet out;
  for (int i = 0; i < count; ++i) out.Intern(prefix + std::to_string(i));
  return out;
}

markov::MarkovSequence RandomMarkovSequence(int sigma, int n, int support,
                                            Rng& rng) {
  TMS_CHECK(sigma >= 1 && n >= 1);
  support = std::clamp(support, 1, sigma);
  Alphabet nodes = MakeSymbols(sigma, "n");
  std::vector<double> initial = rng.RandomDistribution(
      static_cast<size_t>(sigma), static_cast<size_t>(support));
  std::vector<std::vector<double>> transitions(static_cast<size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    auto& matrix = transitions[static_cast<size_t>(i - 1)];
    matrix.reserve(static_cast<size_t>(sigma) * static_cast<size_t>(sigma));
    for (int s = 0; s < sigma; ++s) {
      std::vector<double> row = rng.RandomDistribution(
          static_cast<size_t>(sigma), static_cast<size_t>(support));
      matrix.insert(matrix.end(), row.begin(), row.end());
    }
  }
  auto mu = markov::MarkovSequence::Create(std::move(nodes),
                                           std::move(initial),
                                           std::move(transitions));
  TMS_CHECK(mu.ok());
  return std::move(mu).value();
}

markov::MarkovSequence RandomHomogeneousMarkovSequence(int sigma, int n,
                                                       int support, Rng& rng) {
  TMS_CHECK(sigma >= 1 && n >= 1);
  support = std::clamp(support, 1, sigma);
  Alphabet nodes = MakeSymbols(sigma, "n");
  std::vector<double> initial = rng.RandomDistribution(
      static_cast<size_t>(sigma), static_cast<size_t>(support));
  std::vector<double> transition;
  transition.reserve(static_cast<size_t>(sigma) * static_cast<size_t>(sigma));
  for (int s = 0; s < sigma; ++s) {
    std::vector<double> row = rng.RandomDistribution(
        static_cast<size_t>(sigma), static_cast<size_t>(support));
    transition.insert(transition.end(), row.begin(), row.end());
  }
  auto mu = markov::MarkovSequence::CreateHomogeneous(
      std::move(nodes), std::move(initial), std::move(transition), n);
  TMS_CHECK(mu.ok());
  return std::move(mu).value();
}

automata::Dfa RandomDfa(const Alphabet& alphabet, int num_states, Rng& rng,
                        double accept_prob) {
  TMS_CHECK(num_states >= 1);
  automata::Dfa out(alphabet, num_states);
  out.SetInitial(0);
  bool any_accepting = false;
  for (automata::StateId q = 0; q < num_states; ++q) {
    if (rng.Bernoulli(accept_prob)) {
      out.SetAccepting(q, true);
      any_accepting = true;
    }
    for (size_t s = 0; s < alphabet.size(); ++s) {
      out.SetTransition(q, static_cast<Symbol>(s),
                        static_cast<automata::StateId>(
                            rng.UniformInt(0, num_states - 1)));
    }
  }
  if (!any_accepting) out.SetAccepting(0, true);
  return out;
}

automata::Nfa RandomNfa(const Alphabet& alphabet, int num_states,
                        double density, Rng& rng, double accept_prob) {
  TMS_CHECK(num_states >= 1);
  automata::Nfa out(alphabet, num_states);
  out.SetInitial(0);
  bool any_accepting = false;
  const double per_target =
      std::min(1.0, density / static_cast<double>(num_states));
  for (automata::StateId q = 0; q < num_states; ++q) {
    if (rng.Bernoulli(accept_prob)) {
      out.SetAccepting(q, true);
      any_accepting = true;
    }
    for (size_t s = 0; s < alphabet.size(); ++s) {
      for (automata::StateId q2 = 0; q2 < num_states; ++q2) {
        if (rng.Bernoulli(per_target)) {
          out.AddTransition(q, static_cast<Symbol>(s), q2);
        }
      }
    }
  }
  if (!any_accepting) out.SetAccepting(0, true);
  return out;
}

transducer::Transducer RandomTransducer(const Alphabet& input,
                                        const RandomTransducerOptions& options,
                                        Rng& rng) {
  TMS_CHECK(options.num_states >= 1);
  TMS_CHECK(options.output_symbols >= 1);
  Alphabet output = MakeSymbols(options.output_symbols, "o");
  transducer::Transducer out(input, output, options.num_states);
  out.SetInitial(0);

  auto random_emission = [&]() {
    int len = options.uniform_k >= 0
                  ? options.uniform_k
                  : static_cast<int>(rng.UniformInt(0, options.max_emission));
    Str emission;
    for (int i = 0; i < len; ++i) {
      emission.push_back(static_cast<Symbol>(
          rng.UniformInt(0, options.output_symbols - 1)));
    }
    return emission;
  };

  bool any_accepting = false;
  for (automata::StateId q = 0; q < options.num_states; ++q) {
    if (rng.Bernoulli(options.accept_prob)) {
      out.SetAccepting(q, true);
      any_accepting = true;
    }
    for (size_t s = 0; s < input.size(); ++s) {
      if (options.deterministic) {
        automata::StateId q2 = static_cast<automata::StateId>(
            rng.UniformInt(0, options.num_states - 1));
        TMS_CHECK(out.AddTransition(q, static_cast<Symbol>(s), q2,
                                    random_emission())
                      .ok());
      } else {
        bool added = false;
        const double per_target = std::min(
            1.0, options.density / static_cast<double>(options.num_states));
        for (automata::StateId q2 = 0; q2 < options.num_states; ++q2) {
          if (rng.Bernoulli(per_target)) {
            TMS_CHECK(out.AddTransition(q, static_cast<Symbol>(s), q2,
                                        random_emission())
                          .ok());
            added = true;
          }
        }
        if (!added) {
          // Keep at least one transition so the machine is not trivially
          // stuck on this symbol.
          automata::StateId q2 = static_cast<automata::StateId>(
              rng.UniformInt(0, options.num_states - 1));
          TMS_CHECK(out.AddTransition(q, static_cast<Symbol>(s), q2,
                                      random_emission())
                        .ok());
        }
      }
    }
  }
  if (!any_accepting) out.SetAccepting(0, true);
  return out;
}

}  // namespace tms::workload
