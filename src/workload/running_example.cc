#include "workload/running_example.h"

#include "common/check.h"
#include "markov/builder.h"

namespace tms::workload {

using numeric::Rational;

Alphabet HospitalNodes() {
  Alphabet out;
  out.Intern("r1a");
  out.Intern("r1b");
  out.Intern("r2a");
  out.Intern("r2b");
  out.Intern("la");
  out.Intern("lb");
  return out;
}

markov::MarkovSequence Figure1Sequence() {
  markov::MarkovSequenceBuilder b(
      {"r1a", "r1b", "r2a", "r2b", "la", "lb"}, /*length=*/5);
  // Initial distribution (μ_0→): the paper states μ_0→(r1a) = 0.7; the
  // r1b/la masses are forced by Table 1's rows w and u.
  b.SetInitial("r1a", {7, 10});
  b.SetInitial("r1b", {28, 100});
  b.SetInitial("la", {2, 100});

  // μ_1→ (between S1 and S2).
  b.SetTransition(1, "r1a", "la", {9, 10});   // s: 0.9
  b.SetTransition(1, "r1a", "r1a", {1, 10});  // t
  b.SetTransition(1, "r1b", "r1b", {1, 1});   // w, u'
  b.SetTransition(1, "la", "r1b", {1, 1});    // u
  b.SetTransition(1, "r2a", "r2a", {1, 1});   // unreachable completion
  b.SetTransition(1, "r2b", "r2b", {1, 1});
  b.SetTransition(1, "lb", "lb", {1, 1});

  // μ_2→.
  b.SetTransition(2, "la", "la", {9, 10});    // s: 0.9
  b.SetTransition(2, "la", "r2a", {1, 10});   // v
  b.SetTransition(2, "r1a", "la", {1, 10});   // t
  b.SetTransition(2, "r1a", "r2b", {4, 10});  // x
  b.SetTransition(2, "r1a", "r1a", {5, 10});  // completion
  b.SetTransition(2, "r1b", "la", {9, 10});   // w
  b.SetTransition(2, "r1b", "r1b", {1, 10});  // u
  b.SetTransition(2, "r2a", "r2a", {1, 1});
  b.SetTransition(2, "r2b", "r2b", {1, 1});
  b.SetTransition(2, "lb", "lb", {1, 1});

  // μ_3→ (between S3 and S4; the paper states μ_3→(la, lb) = 0.1).
  b.SetTransition(3, "la", "r1a", {7, 10});   // s: 0.7
  b.SetTransition(3, "la", "lb", {1, 10});    // stated in Example 3.1
  b.SetTransition(3, "la", "la", {2, 10});    // completion
  b.SetTransition(3, "r1b", "r1a", {1, 1});   // u
  b.SetTransition(3, "r2a", "r1b", {1, 1});   // v
  b.SetTransition(3, "r2b", "r1b", {5, 10});  // x
  b.SetTransition(3, "r2b", "r2b", {5, 10});  // completion
  b.SetTransition(3, "r1a", "r1a", {1, 1});
  b.SetTransition(3, "lb", "lb", {1, 1});

  // μ_4→.
  b.SetTransition(4, "r1a", "r2a", {1, 1});   // s: 1.0
  b.SetTransition(4, "r1b", "lb", {5, 10});   // v
  b.SetTransition(4, "r1b", "r1b", {5, 10});  // x
  b.SetTransition(4, "lb", "lb", {1, 1});     // w
  b.SetTransition(4, "la", "la", {1, 1});
  b.SetTransition(4, "r2a", "r2a", {1, 1});
  b.SetTransition(4, "r2b", "r2b", {1, 1});

  auto mu = b.Build();
  TMS_CHECK(mu.ok());
  return std::move(mu).value();
}

transducer::Transducer Figure2Transducer() {
  Alphabet input = HospitalNodes();
  Alphabet output;
  const Symbol one = output.Intern("1");
  const Symbol two = output.Intern("2");
  const Symbol lambda = output.Intern("λ");

  // States: q0 = 0 (before the first lab visit), qλ = 1, q1 = 2, q2 = 3.
  transducer::Transducer t(input, output, 4);
  const automata::StateId q0 = 0, ql = 1, q1 = 2, q2 = 3;
  t.SetInitial(q0);
  t.SetAccepting(ql, true);
  t.SetAccepting(q1, true);
  t.SetAccepting(q2, true);

  auto room1 = {input.Intern("r1a"), input.Intern("r1b")};
  auto room2 = {input.Intern("r2a"), input.Intern("r2b")};
  auto lab = {input.Intern("la"), input.Intern("lb")};

  auto add = [&](automata::StateId from, std::initializer_list<Symbol> syms,
                 automata::StateId to, Str emit) {
    for (Symbol s : syms) {
      TMS_CHECK(t.AddTransition(from, s, to, emit).ok());
    }
  };
  // Before the first lab visit: read silently; the lab moves to qλ.
  add(q0, room1, q0, {});
  add(q0, room2, q0, {});
  add(q0, lab, ql, {});
  // In the lab: entering a room emits its number; staying emits nothing.
  add(ql, room1, q1, {one});
  add(ql, room2, q2, {two});
  add(ql, lab, ql, {});
  // In Room 1.
  add(q1, room1, q1, {});
  add(q1, room2, q2, {two});
  add(q1, lab, ql, {lambda});
  // In Room 2.
  add(q2, room2, q2, {});
  add(q2, room1, q1, {one});
  add(q2, lab, ql, {lambda});

  TMS_CHECK(t.IsDeterministic());
  TMS_CHECK(t.IsSelective());
  TMS_CHECK(!t.UniformEmissionLength().has_value());
  return t;
}

const std::vector<Table1Row>& Table1Rows() {
  static const std::vector<Table1Row> kRows = {
      {"s", "r1a la la r1a r2a", 0.3969, "1 2"},
      {"t", "r1a r1a la r1a r2a", 0.0049, "1 2"},
      {"u", "la r1b r1b r1a r2a", 0.0020, "1 2"},
      {"v", "r1a la r2a r1b lb", 0.0315, "2 1 λ"},
      {"w", "r1b r1b la lb lb", 0.0252, ""},
      {"x", "r1a r1a r2b r1b r1b", 0.0070, nullptr},
  };
  return kRows;
}

}  // namespace tms::workload
