#include "workload/text.h"

#include "common/check.h"

namespace tms::workload {

Alphabet TextAlphabet() {
  Alphabet out;
  for (char c = 'a'; c <= 'z'; ++c) out.Intern(std::string(1, c));
  out.Intern(",");
  out.Intern(":");
  out.Intern(" ");
  return out;
}

StatusOr<markov::MarkovSequence> OcrSequence(const std::string& truth,
                                             const OcrConfig& config) {
  if (truth.empty()) {
    return Status::InvalidArgument("truth string must be nonempty");
  }
  if (!(config.char_accuracy > 0 && config.char_accuracy <= 1)) {
    return Status::InvalidArgument("char_accuracy must be in (0,1]");
  }
  if (config.confusion_spread < 0) {
    return Status::InvalidArgument("confusion_spread must be >= 0");
  }
  Alphabet alphabet = TextAlphabet();
  const size_t k = alphabet.size();
  const int n = static_cast<int>(truth.size());

  // The per-position marginal of character c: accuracy on c, the rest on
  // its ring neighbors.
  auto char_dist = [&](char c) -> StatusOr<std::vector<double>> {
    auto sym = alphabet.Find(std::string(1, c));
    if (!sym.ok()) return sym.status();
    std::vector<double> out(k, 0.0);
    const int spread = config.confusion_spread;
    if (spread == 0 || config.char_accuracy >= 1.0) {
      out[static_cast<size_t>(*sym)] = 1.0;
      return out;
    }
    out[static_cast<size_t>(*sym)] = config.char_accuracy;
    for (int d = 1; d <= spread; ++d) {
      for (int dir : {-1, 1}) {
        size_t neighbor =
            (static_cast<size_t>(*sym) + k + static_cast<size_t>(dir * d)) % k;
        out[neighbor] += (1.0 - config.char_accuracy) /
                         static_cast<double>(2 * spread);
      }
    }
    return out;
  };

  auto initial = char_dist(truth[0]);
  if (!initial.ok()) return initial.status();
  std::vector<std::vector<double>> transitions(static_cast<size_t>(n - 1));
  for (int i = 1; i < n; ++i) {
    auto dist = char_dist(truth[static_cast<size_t>(i)]);
    if (!dist.ok()) return dist.status();
    // Independent noise: every row is the position's marginal.
    std::vector<double>& matrix = transitions[static_cast<size_t>(i - 1)];
    matrix.resize(k * k);
    for (size_t row = 0; row < k; ++row) {
      for (size_t col = 0; col < k; ++col) {
        matrix[row * k + col] = (*dist)[col];
      }
    }
  }
  return markov::MarkovSequence::Create(alphabet, std::move(initial).value(),
                                        std::move(transitions));
}

StatusOr<projector::SProjector> NameExtractor() {
  return projector::SProjector::FromCharRegex(TextAlphabet(), ".*name:",
                                              "[a-z,]+", " .*");
}

std::string MakeFormLine(const std::string& name, int length, Rng& rng) {
  const std::string marker = "name:";
  const int core = static_cast<int>(marker.size() + name.size()) + 1;
  TMS_CHECK(length >= core + 2);
  const int filler_total = length - core;
  const int before = static_cast<int>(
      rng.UniformInt(1, static_cast<int64_t>(filler_total - 1)));
  const int after = filler_total - before;
  auto filler = [&rng](int len) {
    std::string out;
    for (int i = 0; i < len; ++i) {
      out.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
    }
    return out;
  };
  return filler(before) + marker + name + " " + filler(after - 1) + "x";
}

}  // namespace tms::workload
