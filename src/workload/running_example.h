// The paper's running example: the hospital-RFID Markov sequence of
// Figure 1, the place-extraction transducer of Figure 2, and the random
// strings of Table 1.
//
// Figure 1 is reconstructed from every probability the paper states
// explicitly:
//   * Example 3.2:  p(s) = 0.7·0.9·0.9·0.7·1.0 = 0.3969 for
//     s = r1a la la r1a r2a, fixing μ_0→(r1a)=0.7, μ_1→(r1a,la)=0.9,
//     μ_2→(la,la)=0.9, μ_3→(la,r1a)=0.7, μ_4→(r1a,r2a)=1.0;
//   * Example 3.1:  μ_3→(la,lb) = 0.1;
//   * Table 1's five world probabilities (0.3969, 0.0049, 0.002, 0.0315,
//     0.0252, 0.007).
// The remaining edges are completed minimally so that every row is a
// distribution. NOTE: any completion consistent with those constraints
// necessarily also contains the world r1b r1b la r1a r2a (probability
// 0.1764 here), which transduces to "12" — so conf(12) = 0.5802 in the
// reconstruction, while the sum over the three worlds the paper lists
// (s, t, u) is exactly the paper's 0.4038. EXPERIMENTS.md E1 records both
// numbers; E_max(12) = 0.3969 matches the paper exactly.

#ifndef TMS_WORKLOAD_RUNNING_EXAMPLE_H_
#define TMS_WORKLOAD_RUNNING_EXAMPLE_H_

#include <vector>

#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::workload {

/// The node alphabet {r1a, r1b, r2a, r2b, la, lb} in Figure 1's order.
Alphabet HospitalNodes();

/// Figure 1: the length-5 Markov sequence over HospitalNodes(), built with
/// exact rational probabilities (has_exact() == true).
markov::MarkovSequence Figure1Sequence();

/// Figure 2: the deterministic selective non-uniform transducer that,
/// after the cart's first visit to the lab, emits "1"/"2" when Room 1/2 is
/// entered from another place and "λ" when the lab is re-entered.
/// Output alphabet {1, 2, λ}; states {q0, qλ, q1, q2}, F = {qλ, q1, q2}.
transducer::Transducer Figure2Transducer();

/// One row of Table 1.
struct Table1Row {
  const char* name;          ///< the paper's string name (s, t, u, v, w, x)
  const char* world;         ///< space-separated node names
  double probability;        ///< the paper's probability
  const char* output;        ///< space-separated output symbols; "" for ε,
                             ///< nullptr for N/A (string rejected)
};

/// The six rows of Table 1 (w's probability is the paper's 0.0252; the
/// printed "0.0.0252" is a typo in the original).
const std::vector<Table1Row>& Table1Rows();

}  // namespace tms::workload

#endif  // TMS_WORKLOAD_RUNNING_EXAMPLE_H_
