// Biological-sequence workload (the paper's intro cites sequence matching
// in biological data and HMMER-style profile HMMs as core applications).
//
// A profile HMM over the DNA alphabet: background states emit near-uniform
// nucleotides; a chain of match states emits a position-specific motif
// profile. Decoding a read against the profile yields a posterior Markov
// sequence over {background, match_1..match_k}; projecting to nucleotides
// instead, we build the posterior over DNA labels and extract motif
// occurrences with an s-projector — ranked motif instances with
// confidences, exactly the paper's query semantics applied to biology.

#ifndef TMS_WORKLOAD_BIO_H_
#define TMS_WORKLOAD_BIO_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "hmm/hmm.h"
#include "markov/markov_sequence.h"
#include "projector/sprojector.h"

namespace tms::workload {

/// The DNA alphabet {A, C, G, T}.
Alphabet DnaAlphabet();

/// Configuration of the motif model.
struct MotifConfig {
  /// The consensus motif (over "ACGT"); match state i strongly prefers
  /// consensus[i].
  std::string consensus = "ACGT";
  /// Probability a match state emits its consensus base (the rest is
  /// split over the other three).
  double match_fidelity = 0.85;
  /// Per-step probability of leaving the background into the motif.
  double motif_entry_prob = 0.15;
};

/// Builds the profile HMM: hidden states {bg, m1..mk} (k = |consensus|),
/// observations = DNA bases. Background emits uniformly; match state i
/// emits consensus[i] with match_fidelity; transitions run bg→m1→…→mk→bg.
StatusOr<hmm::Hmm> BuildMotifHmm(const MotifConfig& config);

/// A generated read: the true hidden labels, the observed bases, and the
/// posterior Markov sequence over the HIDDEN labels.
struct MotifScenario {
  hmm::Hmm model;
  Str true_labels;      ///< over {bg, m1..mk}
  Str observed_bases;   ///< over {A,C,G,T}
  markov::MarkovSequence mu;  ///< posterior over hidden labels
};

/// Samples a read of length n and decodes it.
StatusOr<MotifScenario> MakeMotifScenario(const MotifConfig& config, int n,
                                          Rng& rng);

/// The s-projector that extracts complete motif occurrences from the
/// posterior label sequence: pattern "m1 m2 … mk", no context constraints.
StatusOr<projector::SProjector> MotifExtractor(const MotifConfig& config);

}  // namespace tms::workload

#endif  // TMS_WORKLOAD_BIO_H_
