// Seeded random model generators — used by the property-test sweeps and
// the scaling benchmarks.

#ifndef TMS_WORKLOAD_RANDOM_MODELS_H_
#define TMS_WORKLOAD_RANDOM_MODELS_H_

#include "automata/dfa.h"
#include "automata/nfa.h"
#include "common/rng.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::workload {

/// Options for RandomTransducer.
struct RandomTransducerOptions {
  int num_states = 3;
  bool deterministic = false;
  /// Expected out-degree per (state, symbol) when nondeterministic.
  double density = 1.5;
  /// When >= 0, every emission has exactly this length (k-uniform);
  /// when < 0, emission lengths are uniform in [0, max_emission].
  int uniform_k = -1;
  int max_emission = 2;
  /// Number of output-alphabet symbols.
  int output_symbols = 2;
  /// Probability that each state is accepting (the initial state is forced
  /// accepting if the draw leaves none).
  double accept_prob = 0.5;
};

/// An alphabet {s0, s1, …} of the given size.
Alphabet MakeSymbols(int count, const std::string& prefix = "s");

/// A random Markov sequence of length n over `sigma` nodes; each
/// distribution has `support` nonzero entries (clamped to [1, sigma]).
markov::MarkovSequence RandomMarkovSequence(int sigma, int n, int support,
                                            Rng& rng);

/// A random *homogeneous* Markov sequence: one σ×σ transition matrix
/// shared by all n-1 steps (MarkovSequence::CreateHomogeneous, so storage
/// and per-step kernel tables are O(σ²) regardless of n — the
/// large-alphabet benchmark regime). Each row has `support` nonzero
/// entries, so the density is support/σ.
markov::MarkovSequence RandomHomogeneousMarkovSequence(int sigma, int n,
                                                       int support, Rng& rng);

/// A random complete DFA with the given number of states.
automata::Dfa RandomDfa(const Alphabet& alphabet, int num_states, Rng& rng,
                        double accept_prob = 0.5);

/// A random NFA with expected `density` transitions per (state, symbol).
automata::Nfa RandomNfa(const Alphabet& alphabet, int num_states,
                        double density, Rng& rng, double accept_prob = 0.5);

/// A random transducer over `input` per the options.
transducer::Transducer RandomTransducer(const Alphabet& input,
                                        const RandomTransducerOptions& options,
                                        Rng& rng);

}  // namespace tms::workload

#endif  // TMS_WORKLOAD_RANDOM_MODELS_H_
