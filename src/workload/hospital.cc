#include "workload/hospital.h"

#include <string>

#include "common/check.h"
#include "hmm/translate.h"

namespace tms::workload {
namespace {

// Place ids: 0..num_rooms-1 = rooms, num_rooms = hallway, num_rooms+1 = lab.
int NumPlaces(const HospitalConfig& c) { return c.num_rooms + 2; }

std::string LocationName(const HospitalConfig& c, int place, int subloc) {
  std::string suffix(1, static_cast<char>('a' + subloc));
  if (place < c.num_rooms) return "r" + std::to_string(place + 1) + suffix;
  if (place == c.num_rooms) return "h" + suffix;
  return "l" + suffix;
}

Status ValidateConfig(const HospitalConfig& c) {
  if (c.num_rooms < 1) {
    return Status::InvalidArgument("hospital needs at least one room");
  }
  if (c.locs_per_place < 1 || c.locs_per_place > 26) {
    return Status::InvalidArgument("locs_per_place must be in [1,26]");
  }
  if (!(c.stay_prob > 0) || !(c.within_place_prob >= 0) ||
      !(c.stay_prob + c.within_place_prob < 1.0)) {
    return Status::InvalidArgument(
        "stay_prob + within_place_prob must leave room for movement");
  }
  if (!(c.sensor_accuracy > 0 && c.sensor_accuracy <= 1)) {
    return Status::InvalidArgument("sensor_accuracy must be in (0,1]");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<hmm::Hmm> BuildHospitalHmm(const HospitalConfig& config) {
  TMS_RETURN_IF_ERROR(ValidateConfig(config));
  const int places = NumPlaces(config);
  const int k = config.locs_per_place;
  const int total = places * k;
  const int hallway = config.num_rooms;

  Alphabet locations;
  for (int p = 0; p < places; ++p) {
    for (int x = 0; x < k; ++x) locations.Intern(LocationName(config, p, x));
  }
  auto loc = [k](int place, int subloc) { return place * k + subloc; };

  // Uniform start anywhere.
  std::vector<double> initial(static_cast<size_t>(total),
                              1.0 / static_cast<double>(total));

  // Transitions: stay / move within the place / move to a reachable place
  // (rooms and the lab connect through the hallway).
  std::vector<double> transition(
      static_cast<size_t>(total) * static_cast<size_t>(total), 0.0);
  for (int p = 0; p < places; ++p) {
    std::vector<int> reachable;
    if (p == hallway) {
      for (int p2 = 0; p2 < places; ++p2) {
        if (p2 != hallway) reachable.push_back(p2);
      }
    } else {
      reachable.push_back(hallway);
    }
    for (int x = 0; x < k; ++x) {
      const size_t row =
          static_cast<size_t>(loc(p, x)) * static_cast<size_t>(total);
      transition[row + static_cast<size_t>(loc(p, x))] += config.stay_prob;
      if (k > 1) {
        for (int x2 = 0; x2 < k; ++x2) {
          if (x2 == x) continue;
          transition[row + static_cast<size_t>(loc(p, x2))] +=
              config.within_place_prob / static_cast<double>(k - 1);
        }
      } else {
        transition[row + static_cast<size_t>(loc(p, x))] +=
            config.within_place_prob;
      }
      const double move =
          1.0 - config.stay_prob - config.within_place_prob;
      const double per_target =
          move / static_cast<double>(reachable.size() * k);
      for (int p2 : reachable) {
        for (int x2 = 0; x2 < k; ++x2) {
          transition[row + static_cast<size_t>(loc(p2, x2))] += per_target;
        }
      }
    }
  }

  // Emissions: the true sub-location is read with sensor_accuracy; the
  // rest of the mass is confused uniformly over the other sub-locations of
  // the same place and the hallway (sensors near passages).
  std::vector<double> emission(
      static_cast<size_t>(total) * static_cast<size_t>(total), 0.0);
  for (int p = 0; p < places; ++p) {
    for (int x = 0; x < k; ++x) {
      const size_t row =
          static_cast<size_t>(loc(p, x)) * static_cast<size_t>(total);
      std::vector<int> confusions;
      for (int x2 = 0; x2 < k; ++x2) {
        if (x2 != x) confusions.push_back(loc(p, x2));
      }
      if (p != hallway) {
        for (int x2 = 0; x2 < k; ++x2) confusions.push_back(loc(hallway, x2));
      }
      if (confusions.empty() || config.sensor_accuracy >= 1.0) {
        emission[row + static_cast<size_t>(loc(p, x))] = 1.0;
      } else {
        emission[row + static_cast<size_t>(loc(p, x))] =
            config.sensor_accuracy;
        for (int c2 : confusions) {
          emission[row + static_cast<size_t>(c2)] +=
              (1.0 - config.sensor_accuracy) /
              static_cast<double>(confusions.size());
        }
      }
    }
  }

  return hmm::Hmm::Create(locations, locations, std::move(initial),
                          std::move(transition), std::move(emission));
}

StatusOr<HospitalScenario> MakeScenario(const HospitalConfig& config, int n,
                                        Rng& rng) {
  auto model = BuildHospitalHmm(config);
  if (!model.ok()) return model.status();
  if (n < 1) return Status::InvalidArgument("trajectory length must be >= 1");
  auto [hidden, observed] = model->Sample(n, rng);
  auto mu = hmm::PosteriorMarkovSequence(*model, observed);
  if (!mu.ok()) return mu.status();
  HospitalScenario out{std::move(model).value(), std::move(hidden),
                       std::move(observed), std::move(mu).value()};
  return out;
}

transducer::Transducer PlaceTracker(const Alphabet& locations,
                                    const HospitalConfig& config) {
  const int places = NumPlaces(config);
  const int hallway = config.num_rooms;
  Alphabet output;
  for (int r = 0; r < config.num_rooms; ++r) {
    output.Intern(std::to_string(r + 1));
  }
  const Symbol hall_sym = output.Intern("H");
  const Symbol lab_sym = output.Intern("L");
  auto place_symbol = [&](int p) {
    if (p < config.num_rooms) return static_cast<Symbol>(p);
    return p == hallway ? hall_sym : lab_sym;
  };
  // Determine the place of each location symbol from its name.
  auto place_of = [&](Symbol s) {
    const std::string& name = locations.Name(s);
    if (name[0] == 'h') return hallway;
    if (name[0] == 'l') return config.num_rooms + 1;
    return std::stoi(name.substr(1, name.size() - 2)) - 1;
  };

  // States: 0 = before any reading, 1+p = currently in place p.
  transducer::Transducer t(locations, output, 1 + places);
  t.SetInitial(0);
  t.SetAllAccepting();
  for (automata::StateId q = 0; q <= places; ++q) {
    for (size_t s = 0; s < locations.size(); ++s) {
      const Symbol sym = static_cast<Symbol>(s);
      const int p = place_of(sym);
      const automata::StateId target = 1 + p;
      Str emit = (q == target) ? Str{} : Str{place_symbol(p)};
      TMS_CHECK(t.AddTransition(q, sym, target, std::move(emit)).ok());
    }
  }
  TMS_CHECK(t.IsDeterministic());
  return t;
}

}  // namespace tms::workload
