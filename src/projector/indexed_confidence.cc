#include "projector/indexed_confidence.h"

#include "common/check.h"
#include "obs/obs.h"

namespace tms::projector {

ContextTables::ContextTables(const markov::MarkovSequence& mu,
                             const automata::Dfa& b, const automata::Dfa& e)
    : n_(mu.length()),
      sigma_(mu.nodes().size()),
      b_eps_(b.AcceptsEmpty()),
      e_eps_(e.AcceptsEmpty()) {
  TMS_OBS_SPAN("projector.context_tables.build");
  TMS_OBS_COUNT("projector.context_tables.builds", 1);
  // Prefix and suffix sweeps each touch σ·|Q| cells per position.
  TMS_OBS_COUNT("projector.context_tables.dp_cells",
                static_cast<int64_t>(n_) * static_cast<int64_t>(sigma_) *
                    (b.num_states() + e.num_states()));
  TMS_CHECK(mu.nodes() == b.alphabet());
  TMS_CHECK(mu.nodes() == e.alphabet());
  const size_t nb = static_cast<size_t>(b.num_states());
  const size_t ne = static_cast<size_t>(e.num_states());

  // Forward over (σ, q_B): fb[σ][q] = Pr(S_[1,t] ends in σ, B reaches q).
  std::vector<double> fb(sigma_ * nb, 0.0);
  prefix_mass_.assign(static_cast<size_t>(n_) * sigma_, 0.0);
  for (size_t s = 0; s < sigma_; ++s) {
    double p0 = mu.Initial(static_cast<Symbol>(s));
    if (p0 <= 0) continue;
    fb[s * nb +
       static_cast<size_t>(b.Next(b.initial(), static_cast<Symbol>(s)))] +=
        p0;
  }
  auto fold_prefix = [&](int t, const std::vector<double>& layer) {
    for (size_t s = 0; s < sigma_; ++s) {
      double acc = 0;
      for (size_t q = 0; q < nb; ++q) {
        if (b.IsAccepting(static_cast<automata::StateId>(q))) {
          acc += layer[s * nb + q];
        }
      }
      prefix_mass_[static_cast<size_t>(t - 1) * sigma_ + s] = acc;
    }
  };
  fold_prefix(1, fb);
  for (int t = 2; t <= n_; ++t) {
    std::vector<double> next(sigma_ * nb, 0.0);
    for (size_t s = 0; s < sigma_; ++s) {
      for (size_t q = 0; q < nb; ++q) {
        double mass = fb[s * nb + q];
        if (mass <= 0) continue;
        for (size_t s2 = 0; s2 < sigma_; ++s2) {
          double step = mu.Transition(t - 1, static_cast<Symbol>(s),
                                      static_cast<Symbol>(s2));
          if (step <= 0) continue;
          next[s2 * nb +
               static_cast<size_t>(b.Next(static_cast<automata::StateId>(q),
                                          static_cast<Symbol>(s2)))] +=
              mass * step;
        }
      }
    }
    fb = std::move(next);
    fold_prefix(t, fb);
  }

  // StartWeight(i, σ).
  start_weight_.assign(static_cast<size_t>(n_) * sigma_, 0.0);
  for (size_t s = 0; s < sigma_; ++s) {
    start_weight_[s] = b_eps_ ? mu.Initial(static_cast<Symbol>(s)) : 0.0;
  }
  for (int i = 2; i <= n_; ++i) {
    for (size_t s = 0; s < sigma_; ++s) {
      double acc = 0;
      for (size_t tau = 0; tau < sigma_; ++tau) {
        double pm = PrefixMass(i - 1, static_cast<Symbol>(tau));
        if (pm <= 0) continue;
        acc += pm * mu.Transition(i - 1, static_cast<Symbol>(tau),
                                  static_cast<Symbol>(s));
      }
      start_weight_[static_cast<size_t>(i - 1) * sigma_ + s] = acc;
    }
  }

  // Backward over (σ, q_E): he[σ][q] = Pr(S_[t+1,n] accepted by E started
  // in q | S_t = σ).
  std::vector<double> he(sigma_ * ne, 0.0);
  suffix_mass_.assign(static_cast<size_t>(n_) * sigma_, 0.0);
  for (size_t s = 0; s < sigma_; ++s) {
    for (size_t q = 0; q < ne; ++q) {
      he[s * ne + q] =
          e.IsAccepting(static_cast<automata::StateId>(q)) ? 1.0 : 0.0;
    }
    suffix_mass_[static_cast<size_t>(n_ - 1) * sigma_ + s] =
        he[s * ne + static_cast<size_t>(e.initial())];
  }
  for (int t = n_ - 1; t >= 1; --t) {
    std::vector<double> prev(sigma_ * ne, 0.0);
    for (size_t s = 0; s < sigma_; ++s) {
      for (size_t q = 0; q < ne; ++q) {
        double acc = 0;
        for (size_t s2 = 0; s2 < sigma_; ++s2) {
          double step = mu.Transition(t, static_cast<Symbol>(s),
                                      static_cast<Symbol>(s2));
          if (step <= 0) continue;
          acc += step *
                 he[s2 * ne +
                    static_cast<size_t>(e.Next(static_cast<automata::StateId>(q),
                                               static_cast<Symbol>(s2)))];
        }
        prev[s * ne + q] = acc;
      }
    }
    he = std::move(prev);
    for (size_t s = 0; s < sigma_; ++s) {
      suffix_mass_[static_cast<size_t>(t - 1) * sigma_ + s] =
          he[s * ne + static_cast<size_t>(e.initial())];
    }
  }

  // Whole-string-as-suffix mass (he now holds t = 1 values; condition on
  // the first symbol via μ_0→ and advance E by it).
  whole_suffix_ = 0.0;
  if (n_ >= 1) {
    for (size_t s = 0; s < sigma_; ++s) {
      double p0 = mu.Initial(static_cast<Symbol>(s));
      if (p0 <= 0) continue;
      automata::StateId q1 = e.Next(e.initial(), static_cast<Symbol>(s));
      if (n_ == 1) {
        whole_suffix_ += p0 * (e.IsAccepting(q1) ? 1.0 : 0.0);
      } else {
        // he currently holds layer t = 1: value given S_1 = σ, E in state q.
        whole_suffix_ += p0 * he[s * ne + static_cast<size_t>(q1)];
      }
    }
  }
}

double ContextTables::PrefixMass(int t, Symbol s) const {
  TMS_DCHECK(t >= 1 && t <= n_);
  return prefix_mass_[static_cast<size_t>(t - 1) * sigma_ +
                      static_cast<size_t>(s)];
}

double ContextTables::StartWeight(int i, Symbol s) const {
  TMS_DCHECK(i >= 1 && i <= n_);
  return start_weight_[static_cast<size_t>(i - 1) * sigma_ +
                       static_cast<size_t>(s)];
}

double ContextTables::EmptyAnswerMass(int i) const {
  if (i < 1 || i > n_ + 1) return 0.0;
  if (i == 1) return b_eps_ ? whole_suffix_ : 0.0;
  double acc = 0;
  for (size_t tau = 0; tau < sigma_; ++tau) {
    double pm = PrefixMass(i - 1, static_cast<Symbol>(tau));
    if (pm <= 0) continue;
    acc += pm * SuffixMass(i - 1, static_cast<Symbol>(tau));
  }
  return acc;
}

double ContextTables::SuffixMass(int t, Symbol s) const {
  TMS_DCHECK(t >= 1 && t <= n_);
  return suffix_mass_[static_cast<size_t>(t - 1) * sigma_ +
                      static_cast<size_t>(s)];
}

StatusOr<IndexedConfidence> IndexedConfidence::Create(
    const markov::MarkovSequence* mu, const SProjector* p) {
  if (mu == nullptr || p == nullptr) {
    return Status::InvalidArgument("IndexedConfidence requires non-null args");
  }
  if (!(mu->nodes() == p->alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and s-projector alphabet differ");
  }
  return IndexedConfidence(mu, p);
}

double IndexedConfidence::Confidence(const IndexedAnswer& answer) const {
  TMS_OBS_COUNT("projector.indexed.confidence_calls", 1);
  const int n = mu_->length();
  const int m = static_cast<int>(answer.output.size());
  const int i = answer.index;
  if (!p_->pattern().Accepts(answer.output)) return 0.0;

  if (m == 0) {
    // s = b·e with |b| = i−1; admissible i ∈ [1, n+1].
    return tables_.EmptyAnswerMass(i);
  }

  if (i < 1 || i + m - 1 > n) return 0.0;
  double p = tables_.StartWeight(i, answer.output[0]);
  for (int d = 1; d < m && p > 0; ++d) {
    p *= mu_->Transition(i + d - 1, answer.output[static_cast<size_t>(d - 1)],
                         answer.output[static_cast<size_t>(d)]);
  }
  if (p <= 0) return 0.0;
  return p * tables_.SuffixMass(i + m - 1,
                                answer.output[static_cast<size_t>(m - 1)]);
}

}  // namespace tms::projector
