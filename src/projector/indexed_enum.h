// Exact ranked enumeration for indexed s-projectors — Theorem 5.7.
//
// The reduction: build a weighted DAG whose source→sink paths are in
// bijection with the indexed answers (o, i) and whose path weight (product
// of probabilities; stored as additive −log costs) equals the confidence:
//
//   source --(i, o_1)--> (i, o_1, q_1) --o_2--> (i+1, o_2, q_2) --…-->
//          (i+m−1, o_m, q_m ∈ F_A) --> sink
//
// Nodes carry the pattern DFA state q_j = δ_A(…) so exactly the o ∈ L(A)
// spell admissible paths; the source edge carries the B-side mass
// StartWeight(i, o_1), internal edges carry μ transitions, and the sink
// edge carries the E-side mass SuffixMass(i+m−1, o_m). Empty-output
// answers (ε, i) become dedicated two-edge source→sink chains. Ranked
// enumeration is then k-best paths (graph/k_best_paths.h), which emits
// answers in exactly nonincreasing confidence with polynomial delay —
// the tractable cell of Table 2.
//
// BuildIndexedDag optionally restricts outputs to an OutputConstraint by
// augmenting nodes with the constraint-DFA state; ImaxEnumerator
// (imax_enum.h) uses that for its Lawler subspaces.

#ifndef TMS_PROJECTOR_INDEXED_ENUM_H_
#define TMS_PROJECTOR_INDEXED_ENUM_H_

#include <memory>
#include <optional>

#include "graph/dag.h"
#include "graph/k_best_paths.h"
#include "markov/markov_sequence.h"
#include "projector/indexed_confidence.h"
#include "projector/sprojector.h"
#include "ranking/prefix_constraint.h"

namespace tms::projector {

/// The Theorem 5.7 DAG together with the metadata needed to decode paths
/// back into indexed answers.
struct IndexedDag {
  graph::WeightedDag dag;
  graph::NodeId source = 0;
  graph::NodeId sink = 0;

  /// Decodes a source→sink path into its answer; the confidence is
  /// exp(−path.cost).
  IndexedAnswer Decode(const graph::Path& path) const;
};

/// Builds the DAG. When `constraint` is non-null, only answers whose
/// output satisfies the constraint correspond to paths.
IndexedDag BuildIndexedDag(const markov::MarkovSequence& mu,
                           const SProjector& p, const ContextTables& tables,
                           const ranking::OutputConstraint* constraint);

/// Streams the answers of [B]↓A[E] over μ in nonincreasing confidence.
class IndexedEnumerator {
 public:
  /// One enumerated indexed answer.
  struct Result {
    IndexedAnswer answer;
    double confidence = 0.0;
  };

  /// Fails on alphabet mismatch.
  static StatusOr<IndexedEnumerator> Create(const markov::MarkovSequence* mu,
                                            const SProjector* p);

  /// The next answer, or nullopt when exhausted.
  std::optional<Result> Next();

 private:
  IndexedEnumerator(const markov::MarkovSequence* mu, const SProjector* p);

  ContextTables tables_;
  std::unique_ptr<IndexedDag> dag_;
  std::unique_ptr<graph::KBestPathsEnumerator> paths_;
};

/// Convenience: the k most probable indexed answers.
std::vector<IndexedEnumerator::Result> TopKIndexed(
    const markov::MarkovSequence& mu, const SProjector& p, int k);

}  // namespace tms::projector

#endif  // TMS_PROJECTOR_INDEXED_ENUM_H_
