#include "projector/indexed_enum.h"

#include <cmath>

#include "common/check.h"

namespace tms::projector {
namespace {

// Edge payload encoding: kind in the top byte, operands below.
enum PayloadKind : int64_t { kStart = 1, kStep = 2, kEnd = 3, kEps = 4 };

int64_t PackStart(int i, Symbol s) {
  return (kStart << 56) | (static_cast<int64_t>(i) << 24) |
         static_cast<int64_t>(s);
}
int64_t PackStep(Symbol s) { return (kStep << 56) | static_cast<int64_t>(s); }
int64_t PackEnd() { return kEnd << 56; }
int64_t PackEps(int i) {
  return (kEps << 56) | static_cast<int64_t>(i);
}

}  // namespace

IndexedAnswer IndexedDag::Decode(const graph::Path& path) const {
  IndexedAnswer out;
  for (graph::EdgeId id : path.edges) {
    int64_t payload = dag.edge(id).payload;
    int64_t kind = payload >> 56;
    switch (kind) {
      case kStart:
        out.index = static_cast<int>((payload >> 24) & 0xffffffffLL);
        out.output.push_back(static_cast<Symbol>(payload & 0xffffffLL));
        break;
      case kStep:
        out.output.push_back(static_cast<Symbol>(payload & 0xffffffLL));
        break;
      case kEps:
        out.index = static_cast<int>(payload & 0xffffffffffffLL);
        break;
      case kEnd:
      default:
        break;
    }
  }
  return out;
}

IndexedDag BuildIndexedDag(const markov::MarkovSequence& mu,
                           const SProjector& p, const ContextTables& tables,
                           const ranking::OutputConstraint* constraint) {
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const automata::Dfa& a = p.pattern();
  const size_t na = static_cast<size_t>(a.num_states());
  automata::Dfa cd = constraint != nullptr
                         ? constraint->ToDfa(p.alphabet())
                         : automata::Dfa::AcceptAll(p.alphabet());
  const size_t nc = static_cast<size_t>(cd.num_states());

  IndexedDag out;
  // Nodes: 0 = source, 1 = sink, then (t, σ, q_A, q_C).
  const int grid = static_cast<int>(static_cast<size_t>(n) * sigma * na * nc);
  out.dag = graph::WeightedDag(2 + grid);
  out.source = 0;
  out.sink = 1;
  auto node = [&](int t, size_t s, size_t qa, size_t qc) {
    return static_cast<graph::NodeId>(
        2 + (((static_cast<size_t>(t - 1)) * sigma + s) * na + qa) * nc + qc);
  };

  // Start edges: occurrence begins at position i with symbol σ.
  for (int i = 1; i <= n; ++i) {
    for (size_t s = 0; s < sigma; ++s) {
      double w = tables.StartWeight(i, static_cast<Symbol>(s));
      if (w <= 0) continue;
      size_t qa = static_cast<size_t>(a.Next(a.initial(),
                                             static_cast<Symbol>(s)));
      size_t qc = static_cast<size_t>(cd.Next(cd.initial(),
                                              static_cast<Symbol>(s)));
      out.dag.AddEdge(out.source, node(i, s, qa, qc), -std::log(w),
                      PackStart(i, static_cast<Symbol>(s)));
    }
  }
  // Internal edges: extend the occurrence.
  for (int t = 1; t < n; ++t) {
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t s2 = 0; s2 < sigma; ++s2) {
        double step = mu.Transition(t, static_cast<Symbol>(s),
                                    static_cast<Symbol>(s2));
        if (step <= 0) continue;
        double cost = -std::log(step);
        for (size_t qa = 0; qa < na; ++qa) {
          size_t qa2 = static_cast<size_t>(
              a.Next(static_cast<automata::StateId>(qa),
                     static_cast<Symbol>(s2)));
          for (size_t qc = 0; qc < nc; ++qc) {
            size_t qc2 = static_cast<size_t>(
                cd.Next(static_cast<automata::StateId>(qc),
                        static_cast<Symbol>(s2)));
            out.dag.AddEdge(node(t, s, qa, qc), node(t + 1, s2, qa2, qc2),
                            cost, PackStep(static_cast<Symbol>(s2)));
          }
        }
      }
    }
  }
  // Sink edges: the occurrence ends at position t.
  for (int t = 1; t <= n; ++t) {
    for (size_t s = 0; s < sigma; ++s) {
      double w = tables.SuffixMass(t, static_cast<Symbol>(s));
      if (w <= 0) continue;
      double cost = -std::log(w);
      for (size_t qa = 0; qa < na; ++qa) {
        if (!a.IsAccepting(static_cast<automata::StateId>(qa))) continue;
        for (size_t qc = 0; qc < nc; ++qc) {
          if (!cd.IsAccepting(static_cast<automata::StateId>(qc))) continue;
          out.dag.AddEdge(node(t, s, qa, qc), out.sink, cost, PackEnd());
        }
      }
    }
  }
  // Empty-output answers (ε, i), i ∈ [1, n+1].
  if (a.AcceptsEmpty() && cd.AcceptsEmpty()) {
    for (int i = 1; i <= n + 1; ++i) {
      double w = tables.EmptyAnswerMass(i);
      if (w <= 0) continue;
      graph::NodeId mid = out.dag.AddNode();
      out.dag.AddEdge(out.source, mid, -std::log(w), PackEps(i));
      out.dag.AddEdge(mid, out.sink, 0.0, PackEnd());
    }
  }
  return out;
}

IndexedEnumerator::IndexedEnumerator(const markov::MarkovSequence* mu,
                                     const SProjector* p)
    : tables_(*mu, p->prefix(), p->suffix()) {
  dag_ = std::make_unique<IndexedDag>(
      BuildIndexedDag(*mu, *p, tables_, nullptr));
  paths_ = std::make_unique<graph::KBestPathsEnumerator>(
      dag_->dag, dag_->source, dag_->sink);
}

StatusOr<IndexedEnumerator> IndexedEnumerator::Create(
    const markov::MarkovSequence* mu, const SProjector* p) {
  if (mu == nullptr || p == nullptr) {
    return Status::InvalidArgument("IndexedEnumerator requires non-null args");
  }
  if (!(mu->nodes() == p->alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and s-projector alphabet differ");
  }
  return IndexedEnumerator(mu, p);
}

std::optional<IndexedEnumerator::Result> IndexedEnumerator::Next() {
  auto path = paths_->Next();
  if (!path.has_value()) return std::nullopt;
  Result out;
  out.answer = dag_->Decode(*path);
  out.confidence = std::exp(-path->cost);
  return out;
}

std::vector<IndexedEnumerator::Result> TopKIndexed(
    const markov::MarkovSequence& mu, const SProjector& p, int k) {
  auto it = IndexedEnumerator::Create(&mu, &p);
  TMS_CHECK(it.ok());
  std::vector<IndexedEnumerator::Result> out;
  for (int i = 0; i < k; ++i) {
    auto result = it->Next();
    if (!result.has_value()) break;
    out.push_back(std::move(*result));
  }
  return out;
}

}  // namespace tms::projector
