#include "projector/evaluator.h"

#include "projector/sprojector_confidence.h"

namespace tms::projector {

StatusOr<SProjectorEvaluator> SProjectorEvaluator::Create(
    const markov::MarkovSequence* mu, const SProjector* p) {
  if (mu == nullptr || p == nullptr) {
    return Status::InvalidArgument(
        "SProjectorEvaluator requires non-null args");
  }
  auto conf = IndexedConfidence::Create(mu, p);
  if (!conf.ok()) return conf.status();
  return SProjectorEvaluator(mu, p, std::move(conf).value());
}

std::vector<IndexedEnumerator::Result> SProjectorEvaluator::TopKIndexed(
    int k) const {
  return projector::TopKIndexed(*mu_, *p_, k);
}

StatusOr<std::vector<SProjectorAnswerInfo>> SProjectorEvaluator::TopK(
    int k, bool with_confidence) const {
  auto it = ImaxEnumerator::Create(mu_, p_);
  if (!it.ok()) return it.status();
  std::vector<SProjectorAnswerInfo> out;
  for (int i = 0; i < k; ++i) {
    auto answer = it->Next();
    if (!answer.has_value()) break;
    SProjectorAnswerInfo info;
    info.output = std::move(answer->output);
    info.imax = answer->score;
    if (with_confidence) {
      auto conf = SProjectorConfidence(*mu_, *p_, info.output);
      if (!conf.ok()) return conf.status();
      info.confidence = *conf;
    }
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<double> SProjectorEvaluator::Confidence(const Str& o) const {
  return SProjectorConfidence(*mu_, *p_, o);
}

double SProjectorEvaluator::IndexedConfidenceOf(
    const IndexedAnswer& answer) const {
  return conf_.Confidence(answer);
}

double SProjectorEvaluator::Imax(const Str& o) const {
  return ImaxOfAnswer(conf_, o);
}

}  // namespace tms::projector
