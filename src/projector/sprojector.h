// Substring projectors (paper Section 5).
//
// An s-projector P = [B]A[E] is given by three DFAs over one alphabet: a
// prefix constraint B, a pattern A, and a suffix constraint E. P transduces
// s into o (s →[P]→ o) iff o ∈ L(A) and s = b·o·e with b ∈ L(B) and
// e ∈ L(E) — it extracts a substring matching A whose surrounding context
// satisfies B and E. A *simple* s-projector [*]A[*] places no constraints.
//
// An s-projector is a special case of a transducer (the paper's "easy
// observation"): ToTransducer() builds the equivalent nondeterministic
// projector that guesses the b/o/e boundaries.
//
// Indexed s-projectors [B]↓A[E] (§5.1) report answers as pairs (o, i)
// where i is the 1-based start position of the extracted occurrence; see
// indexed_confidence.h and indexed_enum.h.

#ifndef TMS_PROJECTOR_SPROJECTOR_H_
#define TMS_PROJECTOR_SPROJECTOR_H_

#include <string_view>

#include "automata/dfa.h"
#include "common/status.h"
#include "transducer/transducer.h"

namespace tms::projector {

/// An answer of an indexed s-projector: the extracted string and the
/// 1-based index of its first symbol within the input.
struct IndexedAnswer {
  Str output;
  int index = 1;

  bool operator==(const IndexedAnswer& other) const {
    return index == other.index && output == other.output;
  }
  bool operator<(const IndexedAnswer& other) const {
    if (index != other.index) return index < other.index;
    return output < other.output;
  }
};

/// An s-projector [B]A[E]. Immutable after construction.
class SProjector {
 public:
  /// Builds [B]A[E]; the three DFAs must share one alphabet.
  static StatusOr<SProjector> Create(automata::Dfa b, automata::Dfa a,
                                     automata::Dfa e);

  /// Builds the simple s-projector [*]A[*].
  static StatusOr<SProjector> Simple(automata::Dfa a);

  /// Builds [B]A[E] from three regular expressions in name-token syntax
  /// (see automata/regex.h).
  static StatusOr<SProjector> FromRegex(const Alphabet& alphabet,
                                        std::string_view b, std::string_view a,
                                        std::string_view e);

  /// As FromRegex, but in character syntax (single-character alphabets),
  /// e.g. FromCharRegex(ab, ".*", "a+", ".*").
  static StatusOr<SProjector> FromCharRegex(const Alphabet& alphabet,
                                            std::string_view b,
                                            std::string_view a,
                                            std::string_view e);

  const automata::Dfa& prefix() const { return b_; }
  const automata::Dfa& pattern() const { return a_; }
  const automata::Dfa& suffix() const { return e_; }
  const Alphabet& alphabet() const { return a_.alphabet(); }

  /// s →[P]→ o: some admissible split exists.
  bool Matches(const Str& s, const Str& o) const;

  /// s →[B]↓A[E]→ (o, i): the split at position i is admissible.
  bool MatchesIndexed(const Str& s, const IndexedAnswer& answer) const;

  /// The equivalent nondeterministic transducer (a projector with
  /// |Q_B| + |Q_A| + |Q_E| states).
  transducer::Transducer ToTransducer() const;

 private:
  SProjector(automata::Dfa b, automata::Dfa a, automata::Dfa e)
      : b_(std::move(b)), a_(std::move(a)), e_(std::move(e)) {}

  automata::Dfa b_;
  automata::Dfa a_;
  automata::Dfa e_;
};

}  // namespace tms::projector

#endif  // TMS_PROJECTOR_SPROJECTOR_H_
