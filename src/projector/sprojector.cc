#include "projector/sprojector.h"

#include "automata/regex.h"
#include "common/check.h"

namespace tms::projector {

StatusOr<SProjector> SProjector::Create(automata::Dfa b, automata::Dfa a,
                                        automata::Dfa e) {
  if (!(b.alphabet() == a.alphabet()) || !(a.alphabet() == e.alphabet())) {
    return Status::InvalidArgument(
        "s-projector components must share one alphabet");
  }
  TMS_RETURN_IF_ERROR(b.Validate());
  TMS_RETURN_IF_ERROR(a.Validate());
  TMS_RETURN_IF_ERROR(e.Validate());
  return SProjector(std::move(b), std::move(a), std::move(e));
}

StatusOr<SProjector> SProjector::Simple(automata::Dfa a) {
  Alphabet alphabet = a.alphabet();
  return Create(automata::Dfa::AcceptAll(alphabet), std::move(a),
                automata::Dfa::AcceptAll(alphabet));
}

StatusOr<SProjector> SProjector::FromRegex(const Alphabet& alphabet,
                                           std::string_view b,
                                           std::string_view a,
                                           std::string_view e) {
  auto bd = automata::CompileRegexToDfa(alphabet, b);
  if (!bd.ok()) return bd.status();
  auto ad = automata::CompileRegexToDfa(alphabet, a);
  if (!ad.ok()) return ad.status();
  auto ed = automata::CompileRegexToDfa(alphabet, e);
  if (!ed.ok()) return ed.status();
  return Create(std::move(bd).value(), std::move(ad).value(),
                std::move(ed).value());
}

StatusOr<SProjector> SProjector::FromCharRegex(const Alphabet& alphabet,
                                               std::string_view b,
                                               std::string_view a,
                                               std::string_view e) {
  auto bd = automata::CompileCharRegexToDfa(alphabet, b);
  if (!bd.ok()) return bd.status();
  auto ad = automata::CompileCharRegexToDfa(alphabet, a);
  if (!ad.ok()) return ad.status();
  auto ed = automata::CompileCharRegexToDfa(alphabet, e);
  if (!ed.ok()) return ed.status();
  return Create(std::move(bd).value(), std::move(ad).value(),
                std::move(ed).value());
}

bool SProjector::Matches(const Str& s, const Str& o) const {
  const int n = static_cast<int>(s.size());
  const int m = static_cast<int>(o.size());
  for (int i = 1; i + m - 1 <= n; ++i) {
    if (MatchesIndexed(s, IndexedAnswer{o, i})) return true;
  }
  return false;
}

bool SProjector::MatchesIndexed(const Str& s,
                                const IndexedAnswer& answer) const {
  const int n = static_cast<int>(s.size());
  const int m = static_cast<int>(answer.output.size());
  const int i = answer.index;
  if (i < 1 || i + m - 1 > n) return false;
  // The occurrence must literally appear at position i.
  for (int d = 0; d < m; ++d) {
    if (s[static_cast<size_t>(i - 1 + d)] !=
        answer.output[static_cast<size_t>(d)]) {
      return false;
    }
  }
  if (!a_.Accepts(answer.output)) return false;
  Str b(s.begin(), s.begin() + (i - 1));
  Str e(s.begin() + (i - 1 + m), s.end());
  return b_.Accepts(b) && e_.Accepts(e);
}

transducer::Transducer SProjector::ToTransducer() const {
  // Phases: [0, nb) = B-states, [nb, nb+na) = A-states,
  // [nb+na, nb+na+ne) = E-states.
  const int nb = b_.num_states();
  const int na = a_.num_states();
  const int ne = e_.num_states();
  const Alphabet& sigma = alphabet();
  transducer::Transducer out(sigma, sigma, nb + na + ne);
  auto bid = [](automata::StateId q) { return q; };
  auto aid = [nb](automata::StateId q) {
    return static_cast<automata::StateId>(nb + q);
  };
  auto eid = [nb, na](automata::StateId q) {
    return static_cast<automata::StateId>(nb + na + q);
  };
  const bool a_eps = a_.AcceptsEmpty();
  const bool e_eps = e_.AcceptsEmpty();

  out.SetInitial(bid(b_.initial()));

  for (automata::StateId q = 0; q < nb; ++q) {
    for (size_t s = 0; s < sigma.size(); ++s) {
      const Symbol sym = static_cast<Symbol>(s);
      // Stay in the prefix phase (emit nothing).
      TMS_CHECK(out.AddTransition(bid(q), sym, bid(b_.Next(q, sym)), {}).ok());
      if (b_.IsAccepting(q)) {
        // The prefix b ends here; this symbol starts the match (emit it).
        TMS_CHECK(out.AddTransition(bid(q), sym,
                                    aid(a_.Next(a_.initial(), sym)), Str{sym})
                      .ok());
        // Or the match is ε and this symbol starts the suffix.
        if (a_eps) {
          TMS_CHECK(out.AddTransition(bid(q), sym,
                                      eid(e_.Next(e_.initial(), sym)), {})
                        .ok());
        }
      }
    }
    // s = b with u = e = ε.
    if (b_.IsAccepting(q) && a_eps && e_eps) out.SetAccepting(bid(q), true);
  }
  for (automata::StateId q = 0; q < na; ++q) {
    for (size_t s = 0; s < sigma.size(); ++s) {
      const Symbol sym = static_cast<Symbol>(s);
      // Continue the match (emit the symbol).
      TMS_CHECK(
          out.AddTransition(aid(q), sym, aid(a_.Next(q, sym)), Str{sym}).ok());
      if (a_.IsAccepting(q)) {
        // The match u ends here; this symbol starts the suffix.
        TMS_CHECK(out.AddTransition(aid(q), sym,
                                    eid(e_.Next(e_.initial(), sym)), {})
                      .ok());
      }
    }
    // s = b·u with e = ε.
    if (a_.IsAccepting(q) && e_eps) out.SetAccepting(aid(q), true);
  }
  for (automata::StateId q = 0; q < ne; ++q) {
    for (size_t s = 0; s < sigma.size(); ++s) {
      const Symbol sym = static_cast<Symbol>(s);
      TMS_CHECK(out.AddTransition(eid(q), sym, eid(e_.Next(q, sym)), {}).ok());
    }
    if (e_.IsAccepting(q)) out.SetAccepting(eid(q), true);
  }
  return out;
}

}  // namespace tms::projector
