// I_max scoring and n-approximate ranked enumeration for s-projectors —
// Proposition 5.9, Lemma 5.10, Theorem 5.2.
//
// For an s-projector answer o, I_max(o) = max_i Pr(S →[B]↓A[E]→ (o, i)) —
// the best *indexed occurrence* of o. Proposition 5.9 bounds
//   I_max(o) ≤ conf(o) ≤ n · I_max(o),
// so enumerating distinct outputs in decreasing I_max (Lemma 5.10) is an
// n-approximate enumeration by confidence (Theorem 5.2) — exponentially
// better than the |Σ|^n ratio available for general transducers.
//
// The poly-delay enumeration combines the Lawler–Murty engine over
// output-prefix constraints with the Theorem 5.7 machinery: the top answer
// of a subspace is the best path of the constraint-augmented indexed DAG.

#ifndef TMS_PROJECTOR_IMAX_ENUM_H_
#define TMS_PROJECTOR_IMAX_ENUM_H_

#include <memory>
#include <optional>
#include <set>

#include "exec/engine_options.h"
#include "markov/markov_sequence.h"
#include "obs/delay.h"
#include "projector/indexed_confidence.h"
#include "projector/indexed_enum.h"
#include "projector/sprojector.h"
#include "ranking/answer_stream.h"
#include "ranking/lawler.h"

namespace tms::projector {

/// I_max(o): the maximum, over admissible indices i, of the indexed
/// confidence of (o, i). Zero iff o is not an answer.
double ImaxOfAnswer(const IndexedConfidence& conf, const Str& o);

/// Streams the distinct outputs of P(μ) in nonincreasing I_max — an
/// n-approximate decreasing-confidence order with polynomial delay.
class ImaxEnumerator : public ranking::AnswerStream {
 public:
  /// Fails on alphabet mismatch. `mu` and `p` are non-owning and must
  /// outlive the enumerator (use WithOwnedInputs otherwise — the uniform
  /// borrow-vs-own contract of ranking/answer_stream.h); the shared solver
  /// state (context tables) is owned and pinned by the solver itself.
  ///
  /// Of EngineOptions this engine uses `pool` and `run`. `pool` solves the
  /// child subspaces of each pop concurrently — the solver only reads the
  /// immutable inputs and tables, and results merge in child order, so
  /// output is byte-identical at every thread count. `run` bounds the run
  /// (deadline / answer cap / work budget / cancellation; see
  /// exec/run_context.h) — a truncated stream is an exact prefix of the
  /// unbounded one. The s-projector DP walks the indexed DAG rather than
  /// transition matrices, so `backend` has no effect here; `optimize` is
  /// likewise ignored — this engine composes no product automaton, so
  /// there is nothing for the pass to prune (optimize/transducer_opt.h).
  static StatusOr<ImaxEnumerator> Create(const markov::MarkovSequence* mu,
                                         const SProjector* p,
                                         const exec::EngineOptions& options);

  /// Deprecated borrow spelling predating EngineOptions.
  static StatusOr<ImaxEnumerator> Create(const markov::MarkovSequence* mu,
                                         const SProjector* p,
                                         exec::ThreadPool* pool = nullptr,
                                         exec::RunContext* run = nullptr);

  /// Takes ownership of copies of the inputs — safe even when the caller's
  /// originals are temporaries or die before the enumerator does.
  static StatusOr<ImaxEnumerator> WithOwnedInputs(
      markov::MarkovSequence mu, SProjector p,
      const exec::EngineOptions& options = {});

  /// The next answer (score = its I_max), or nullopt when exhausted.
  std::optional<ranking::ScoredAnswer> Next() override;

 private:
  struct State;
  ImaxEnumerator(std::shared_ptr<State> state,
                 const exec::EngineOptions& options);

  std::shared_ptr<State> state_;
  std::unique_ptr<ranking::LawlerEnumerator> lawler_;
  obs::TraceContext obs_ctx_{obs::CurrentTraceContext()};
  obs::DelayRecorder delay_{"projector.imax_enum"};
};

/// Convenience: the k outputs with the highest I_max.
std::vector<ranking::ScoredAnswer> TopKByImax(const markov::MarkovSequence& mu,
                                              const SProjector& p, int k);

/// The first strategy the paper describes in the proof of Lemma 5.10:
/// run the Theorem 5.7 indexed enumeration and suppress duplicate output
/// strings. Emits the same (output, I_max) stream as ImaxEnumerator, but
/// only in INCREMENTAL POLYNOMIAL TIME — "a large chunk of duplicates may
/// be encountered", so polynomial delay is not guaranteed. Kept as the
/// ablation baseline for the Lawler-based ImaxEnumerator
/// (bench_sprojector compares them).
class SimpleImaxEnumerator {
 public:
  /// Fails on alphabet mismatch.
  static StatusOr<SimpleImaxEnumerator> Create(
      const markov::MarkovSequence* mu, const SProjector* p);

  /// The next distinct output (score = its I_max), or nullopt.
  std::optional<ranking::ScoredAnswer> Next();

  /// Indexed answers consumed so far (duplicates included) — the
  /// incremental-time cost measure.
  int64_t consumed() const { return consumed_; }

 private:
  explicit SimpleImaxEnumerator(IndexedEnumerator inner)
      : inner_(std::move(inner)) {}

  IndexedEnumerator inner_;
  std::set<Str> seen_;
  int64_t consumed_ = 0;
};

}  // namespace tms::projector

#endif  // TMS_PROJECTOR_IMAX_ENUM_H_
