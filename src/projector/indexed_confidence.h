// Confidence for indexed s-projectors — Theorem 5.8.
//
// For an answer (o, i) of [B]↓A[E], the confidence factors through the
// Markov property as
//   Pr(prefix of length i−1 ∈ L(B), S_i..S_{i+|o|−1} = o,
//      suffix ∈ L(E))
//   = StartWeight(i, o_1) · Π_j μ(o_j, o_{j+1}) · SuffixMass(i+|o|−1, o_m)
// where StartWeight aggregates the B-side forward DP and SuffixMass the
// E-side backward DP. ContextTables precomputes both sides once in
// O(n·|Σ|²·(|Q_B|+|Q_E|)) — the paper's O(n·|Σ|²·|Q|²) — after which each
// answer costs O(|o|).

#ifndef TMS_PROJECTOR_INDEXED_CONFIDENCE_H_
#define TMS_PROJECTOR_INDEXED_CONFIDENCE_H_

#include <vector>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "projector/sprojector.h"

namespace tms::projector {

/// Precomputed forward (B-side) and backward (E-side) probability tables
/// for one (μ, [B]·[E]) pair. Also used to weight the source/sink edges of
/// the Theorem 5.7 DAG (indexed_enum.h).
class ContextTables {
 public:
  ContextTables(const markov::MarkovSequence& mu, const automata::Dfa& b,
                const automata::Dfa& e);

  /// Pr(S_{[1,t]} ∈ L(B) ∧ S_t = σ), for 1 ≤ t ≤ n.
  double PrefixMass(int t, Symbol s) const;

  /// Pr(prefix of length i−1 ∈ L(B) ∧ S_i = σ): the mass entering an
  /// occurrence that starts at position i with first symbol σ (1 ≤ i ≤ n).
  /// For i = 1 this is [ε ∈ L(B)] · μ_0→(σ).
  double StartWeight(int i, Symbol s) const;

  /// Pr(S_{[t+1,n]} ∈ L(E) | S_t = σ), for 1 ≤ t ≤ n
  /// (t = n yields [ε ∈ L(E)]).
  double SuffixMass(int t, Symbol s) const;

  /// Pr(S_{[1,n]} ∈ L(E)) — the whole string as suffix (used by answers
  /// (ε, 1)).
  double WholeStringSuffixMass() const { return whole_suffix_; }

  /// Confidence mass of the empty-output answer (ε, i), i ∈ [1, n+1]:
  /// Pr(prefix of length i−1 ∈ L(B) ∧ suffix from position i ∈ L(E)).
  /// (The pattern-side check ε ∈ L(A) is the caller's.)
  double EmptyAnswerMass(int i) const;

  bool PrefixAcceptsEmpty() const { return b_eps_; }
  bool SuffixAcceptsEmpty() const { return e_eps_; }

  int length() const { return n_; }
  size_t sigma() const { return sigma_; }

 private:
  int n_;
  size_t sigma_;
  bool b_eps_;
  bool e_eps_;
  // prefix_mass_[(t-1) * sigma + s], start_weight_ likewise (i-1),
  // suffix_mass_ likewise (t-1).
  std::vector<double> prefix_mass_;
  std::vector<double> start_weight_;
  std::vector<double> suffix_mass_;
  double whole_suffix_ = 0.0;
};

/// Per-answer confidence computer for an indexed s-projector.
class IndexedConfidence {
 public:
  /// Precomputes the context tables; fails on alphabet mismatch.
  static StatusOr<IndexedConfidence> Create(const markov::MarkovSequence* mu,
                                            const SProjector* p);

  /// Pr(S →[B]↓A[E]→ (o, i)); 0 when (o, i) is not an answer. For o = ε
  /// the admissible indices are 1..n+1 (i−1 prefix symbols, the rest
  /// suffix). Time O(|o|).
  double Confidence(const IndexedAnswer& answer) const;

  const ContextTables& tables() const { return tables_; }

 private:
  IndexedConfidence(const markov::MarkovSequence* mu, const SProjector* p)
      : mu_(mu), p_(p), tables_(*mu, p->prefix(), p->suffix()) {}

  const markov::MarkovSequence* mu_;
  const SProjector* p_;
  ContextTables tables_;
};

}  // namespace tms::projector

#endif  // TMS_PROJECTOR_INDEXED_CONFIDENCE_H_
