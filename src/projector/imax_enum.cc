#include "projector/imax_enum.h"

#include <cmath>

#include "common/check.h"
#include "graph/dag.h"
#include "obs/obs.h"
#include "projector/indexed_enum.h"

namespace tms::projector {

double ImaxOfAnswer(const IndexedConfidence& conf, const Str& o) {
  double best = 0.0;
  const int n = conf.tables().length();
  const int last = o.empty() ? n + 1 : n - static_cast<int>(o.size()) + 1;
  for (int i = 1; i <= last; ++i) {
    best = std::max(best, conf.Confidence(IndexedAnswer{o, i}));
  }
  return best;
}

struct ImaxEnumerator::State {
  // Set only by WithOwnedInputs; `mu` / `p` point here in that case. The
  // State lives on the heap behind a shared_ptr, so moving the enumerator
  // never relocates them.
  std::optional<markov::MarkovSequence> owned_mu;
  std::optional<SProjector> owned_p;

  const markov::MarkovSequence* mu;
  const SProjector* p;
  ContextTables tables;

  State(const markov::MarkovSequence* mu_in, const SProjector* p_in)
      : mu(mu_in), p(p_in), tables(*mu_in, p_in->prefix(), p_in->suffix()) {}

  State(markov::MarkovSequence mu_in, SProjector p_in)
      : owned_mu(std::move(mu_in)),
        owned_p(std::move(p_in)),
        mu(&*owned_mu),
        p(&*owned_p),
        tables(*mu, owned_p->prefix(), owned_p->suffix()) {}
};

ImaxEnumerator::ImaxEnumerator(std::shared_ptr<State> state,
                               const exec::EngineOptions& options)
    : state_(std::move(state)) {
  std::shared_ptr<State> s = state_;
  lawler_ = std::make_unique<ranking::LawlerEnumerator>(
      [s](const ranking::OutputConstraint& c)
          -> std::optional<ranking::ScoredAnswer> {
        TMS_OBS_SPAN("projector.imax_enum.subspace_solve");
        TMS_OBS_COUNT("projector.imax_enum.dag_builds", 1);
#if TMS_OBS_ACTIVE
        const int64_t solve_start_ns = obs::MonotonicNanos();
#endif
        IndexedDag dag = BuildIndexedDag(*s->mu, *s->p, s->tables, &c);
        TMS_OBS_HISTOGRAM("projector.imax_enum.dag_nodes",
                          dag.dag.num_nodes());
        auto path = graph::BestPath(dag.dag, dag.source, dag.sink);
        TMS_OBS_HISTOGRAM("projector.imax_enum.solve_ns",
                          obs::MonotonicNanos() - solve_start_ns);
        if (!path.ok()) return std::nullopt;
        IndexedAnswer answer = dag.Decode(*path);
        return ranking::ScoredAnswer{std::move(answer.output),
                                     std::exp(-path->cost)};
      },
      options.pool, options.run);
}

StatusOr<ImaxEnumerator> ImaxEnumerator::Create(
    const markov::MarkovSequence* mu, const SProjector* p,
    const exec::EngineOptions& options) {
  if (mu == nullptr || p == nullptr) {
    return Status::InvalidArgument("ImaxEnumerator requires non-null args");
  }
  if (!(mu->nodes() == p->alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and s-projector alphabet differ");
  }
  return ImaxEnumerator(std::make_shared<State>(mu, p), options);
}

StatusOr<ImaxEnumerator> ImaxEnumerator::Create(
    const markov::MarkovSequence* mu, const SProjector* p,
    exec::ThreadPool* pool, exec::RunContext* run) {
  exec::EngineOptions options;
  options.pool = pool;
  options.run = run;
  return Create(mu, p, options);
}

StatusOr<ImaxEnumerator> ImaxEnumerator::WithOwnedInputs(
    markov::MarkovSequence mu, SProjector p,
    const exec::EngineOptions& options) {
  if (!(mu.nodes() == p.alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and s-projector alphabet differ");
  }
  return ImaxEnumerator(std::make_shared<State>(std::move(mu), std::move(p)),
                        options);
}

std::optional<ranking::ScoredAnswer> ImaxEnumerator::Next() {
  obs::ScopeAdoption adopt(obs_ctx_);
  auto answer = lawler_->Next();
  if (answer.has_value()) {
    TMS_OBS_COUNT("projector.imax_enum.answers", 1);
    delay_.RecordAnswer();
  }
  return answer;
}

StatusOr<SimpleImaxEnumerator> SimpleImaxEnumerator::Create(
    const markov::MarkovSequence* mu, const SProjector* p) {
  auto inner = IndexedEnumerator::Create(mu, p);
  if (!inner.ok()) return inner.status();
  return SimpleImaxEnumerator(std::move(inner).value());
}

std::optional<ranking::ScoredAnswer> SimpleImaxEnumerator::Next() {
  while (auto result = inner_.Next()) {
    ++consumed_;
    if (seen_.insert(result->answer.output).second) {
      // The first occurrence of an output in the confidence-sorted indexed
      // stream carries its best index, so the score IS I_max(o).
      return ranking::ScoredAnswer{std::move(result->answer.output),
                                   result->confidence};
    }
  }
  return std::nullopt;
}

std::vector<ranking::ScoredAnswer> TopKByImax(const markov::MarkovSequence& mu,
                                              const SProjector& p, int k) {
  auto it = ImaxEnumerator::Create(&mu, &p);
  TMS_CHECK(it.ok());
  std::vector<ranking::ScoredAnswer> out;
  for (int i = 0; i < k; ++i) {
    auto answer = it->Next();
    if (!answer.has_value()) break;
    out.push_back(std::move(*answer));
  }
  return out;
}

}  // namespace tms::projector
