// Evaluation facade for s-projectors, mirroring query::Evaluator.
//
// Binds one (μ, [B]A[E]) pair and exposes the paper's §5 evaluation
// modes: exact ranked indexed evaluation (Thm 5.7/5.8), n-approximate
// distinct-string evaluation by I_max (Thm 5.2) with exact confidences
// attached (Thm 5.5), and single-answer probes.

#ifndef TMS_PROJECTOR_EVALUATOR_H_
#define TMS_PROJECTOR_EVALUATOR_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "projector/imax_enum.h"
#include "projector/indexed_confidence.h"
#include "projector/indexed_enum.h"
#include "projector/sprojector.h"

namespace tms::projector {

/// One evaluated distinct-string answer.
struct SProjectorAnswerInfo {
  Str output;
  double imax = 0.0;        ///< best single-occurrence confidence
  double confidence = 0.0;  ///< exact distinct-string confidence
};

/// Facade over the §5 algorithms for one (μ, P) pair.
class SProjectorEvaluator {
 public:
  /// Fails on alphabet mismatch.
  static StatusOr<SProjectorEvaluator> Create(const markov::MarkovSequence* mu,
                                              const SProjector* p);

  /// Top-k indexed answers (o, i) in EXACT decreasing confidence.
  std::vector<IndexedEnumerator::Result> TopKIndexed(int k) const;

  /// Top-k distinct strings by decreasing I_max; exact confidences
  /// attached when `with_confidence` (Theorem 5.5 — may be expensive for
  /// large suffix constraints).
  StatusOr<std::vector<SProjectorAnswerInfo>> TopK(
      int k, bool with_confidence = true) const;

  /// Exact confidence of one distinct-string answer.
  StatusOr<double> Confidence(const Str& o) const;

  /// Confidence of one indexed answer (o, i).
  double IndexedConfidenceOf(const IndexedAnswer& answer) const;

  /// I_max of one answer (0 if not an answer).
  double Imax(const Str& o) const;

  const markov::MarkovSequence& mu() const { return *mu_; }
  const SProjector& sprojector() const { return *p_; }

 private:
  SProjectorEvaluator(const markov::MarkovSequence* mu, const SProjector* p,
                      IndexedConfidence conf)
      : mu_(mu), p_(p), conf_(std::move(conf)) {}

  const markov::MarkovSequence* mu_;
  const SProjector* p_;
  IndexedConfidence conf_;
};

}  // namespace tms::projector

#endif  // TMS_PROJECTOR_EVALUATOR_H_
