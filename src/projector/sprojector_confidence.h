// Confidence of (non-indexed) s-projector answers — Theorems 5.4 / 5.5.
//
// For [B]A[E], conf(o) = Pr(s = b·o·e for SOME admissible split) — the
// probability of the union over occurrence positions, which is
// FP^{#P}-complete in general (Theorem 5.4). The union is nevertheless a
// *regular* event: s participates iff s ∈ L(B)·{o}·L(E). We therefore
// build the concatenation DFA and integrate the Markov sequence over it:
//
//     conf(o) = Pr(S ∈ L(B · o · E)).
//
// Determinizing the concatenation costs at most 2^{|Q_E|} states in the
// E-part but stays polynomial in |Q_B| and |o| (the state-complexity fact
// from Jirásková the paper invokes) — realizing the Theorem 5.5 bound
// O(n·|o|²·|Σ|²·|Q_B|²·4^{|Q_E|}); the hardness of Theorem 5.4 manifests
// as the subset blowup of the E-side.
//
// AcceptanceProbability() — Pr(S ∈ L(D)) for a DFA D — is exposed on its
// own; it is the Lahar-style Boolean automaton query over a Markov
// sequence and is reused by tests and benches.

#ifndef TMS_PROJECTOR_SPROJECTOR_CONFIDENCE_H_
#define TMS_PROJECTOR_SPROJECTOR_CONFIDENCE_H_

#include "automata/dfa.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "numeric/rational.h"
#include "projector/sprojector.h"

namespace tms::projector {

/// Pr(S ∈ L(dfa)): forward DP in O(n·|Σ|²·|Q|).
double AcceptanceProbability(const markov::MarkovSequence& mu,
                             const automata::Dfa& dfa);

/// Exact-rational Pr(S ∈ L(dfa)); requires mu.has_exact().
numeric::Rational AcceptanceProbabilityExact(const markov::MarkovSequence& mu,
                                             const automata::Dfa& dfa);

/// Statistics of one s-projector confidence computation (exposed for the
/// Theorem 5.5 bench).
struct SProjectorConfidenceStats {
  /// States of the determinized concatenation DFA B·o·E — the quantity
  /// that exhibits the 2^{|Q_E|} growth.
  int concat_dfa_states = 0;
};

/// conf(o) for the s-projector P. `max_dfa_states`, when positive, aborts
/// with OutOfRange once determinization exceeds that many states.
StatusOr<double> SProjectorConfidence(const markov::MarkovSequence& mu,
                                      const SProjector& p, const Str& o,
                                      SProjectorConfidenceStats* stats = nullptr,
                                      int max_dfa_states = 0);

/// Exact-rational variant; requires mu.has_exact().
StatusOr<numeric::Rational> SProjectorConfidenceExact(
    const markov::MarkovSequence& mu, const SProjector& p, const Str& o,
    SProjectorConfidenceStats* stats = nullptr, int max_dfa_states = 0);

}  // namespace tms::projector

#endif  // TMS_PROJECTOR_SPROJECTOR_CONFIDENCE_H_
