#include "projector/sprojector_confidence.h"

#include "automata/ops.h"
#include "common/check.h"
#include "obs/obs.h"

namespace tms::projector {
namespace {

template <typename Value, typename InitFn, typename TransFn>
Value AcceptanceDp(const markov::MarkovSequence& mu, const automata::Dfa& dfa,
                   Value zero, InitFn init, TransFn trans) {
  TMS_CHECK(mu.nodes() == dfa.alphabet());
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(dfa.num_states());
  // cur[(s, q)] = mass of worlds of length t ending in node s with the DFA
  // in state q.
  std::vector<Value> cur(sigma * nq, zero);
  for (size_t s = 0; s < sigma; ++s) {
    Value p0 = init(static_cast<Symbol>(s));
    cur[s * nq +
        static_cast<size_t>(dfa.Next(dfa.initial(), static_cast<Symbol>(s)))] +=
        p0;
  }
  for (int t = 2; t <= n; ++t) {
    std::vector<Value> next(sigma * nq, zero);
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        const Value& mass = cur[s * nq + q];
        if (mass == zero) continue;
        for (size_t s2 = 0; s2 < sigma; ++s2) {
          Value step = trans(t - 1, static_cast<Symbol>(s),
                             static_cast<Symbol>(s2));
          if (step == zero) continue;
          next[s2 * nq + static_cast<size_t>(
                             dfa.Next(static_cast<automata::StateId>(q),
                                      static_cast<Symbol>(s2)))] +=
              mass * step;
        }
      }
    }
    cur = std::move(next);
  }
  Value total = zero;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      if (dfa.IsAccepting(static_cast<automata::StateId>(q))) {
        total += cur[s * nq + q];
      }
    }
  }
  return total;
}

// Builds the determinized concatenation DFA for L(B)·{o}·L(E).
StatusOr<automata::Dfa> ConcatDfa(const SProjector& p, const Str& o,
                                  SProjectorConfidenceStats* stats,
                                  int max_dfa_states) {
  automata::Nfa concat = automata::NfaConcat(
      automata::NfaConcat(p.prefix().ToNfa(),
                          automata::Dfa::ExactString(p.alphabet(), o).ToNfa()),
      p.suffix().ToNfa());
  automata::Dfa dfa = automata::Determinize(concat);
  TMS_OBS_HISTOGRAM("projector.sprojector.concat_dfa_states",
                    dfa.num_states());
  if (stats != nullptr) stats->concat_dfa_states = dfa.num_states();
  if (max_dfa_states > 0 && dfa.num_states() > max_dfa_states) {
    return Status::OutOfRange(
        "s-projector confidence: concatenation DFA exceeded the state "
        "budget (" +
        std::to_string(dfa.num_states()) + " > " +
        std::to_string(max_dfa_states) +
        "); the instance exhibits the 2^{|Q_E|} blowup");
  }
  return dfa;
}

}  // namespace

double AcceptanceProbability(const markov::MarkovSequence& mu,
                             const automata::Dfa& dfa) {
  return AcceptanceDp<double>(
      mu, dfa, 0.0, [&](Symbol s) { return mu.Initial(s); },
      [&](int i, Symbol s, Symbol t) { return mu.Transition(i, s, t); });
}

numeric::Rational AcceptanceProbabilityExact(const markov::MarkovSequence& mu,
                                             const automata::Dfa& dfa) {
  TMS_CHECK(mu.has_exact());
  return AcceptanceDp<numeric::Rational>(
      mu, dfa, numeric::Rational(),
      [&](Symbol s) { return mu.InitialExact(s); },
      [&](int i, Symbol s, Symbol t) { return mu.TransitionExact(i, s, t); });
}

StatusOr<double> SProjectorConfidence(const markov::MarkovSequence& mu,
                                      const SProjector& p, const Str& o,
                                      SProjectorConfidenceStats* stats,
                                      int max_dfa_states) {
  if (!(mu.nodes() == p.alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and s-projector alphabet differ");
  }
  TMS_OBS_SPAN("projector.sprojector.confidence");
  TMS_OBS_COUNT("projector.sprojector.confidence_calls", 1);
  if (!p.pattern().Accepts(o)) return 0.0;
  auto dfa = ConcatDfa(p, o, stats, max_dfa_states);
  if (!dfa.ok()) return dfa.status();
  // The acceptance DP scans σ·|Q| cells per position.
  TMS_OBS_COUNT("projector.sprojector.dp_cells",
                static_cast<int64_t>(mu.length()) *
                    static_cast<int64_t>(mu.nodes().size()) *
                    dfa->num_states());
  return AcceptanceProbability(mu, *dfa);
}

StatusOr<numeric::Rational> SProjectorConfidenceExact(
    const markov::MarkovSequence& mu, const SProjector& p, const Str& o,
    SProjectorConfidenceStats* stats, int max_dfa_states) {
  if (!mu.has_exact()) {
    return Status::FailedPrecondition(
        "exact confidence requires exact probabilities on the Markov "
        "sequence");
  }
  if (!(mu.nodes() == p.alphabet())) {
    return Status::InvalidArgument(
        "Markov sequence node set and s-projector alphabet differ");
  }
  if (!p.pattern().Accepts(o)) return numeric::Rational();
  auto dfa = ConcatDfa(p, o, stats, max_dfa_states);
  if (!dfa.ok()) return dfa.status();
  return AcceptanceProbabilityExact(mu, *dfa);
}

}  // namespace tms::projector
