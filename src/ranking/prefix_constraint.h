// Output-prefix constraints (the paper's "prefix constraints", §4.1–4.2).
//
// Both the unranked poly-delay enumeration (Theorem 4.1) and the Lawler–
// Murty ranked enumeration (Theorem 4.3, Lemma 5.10) partition the space of
// answers by constraints on the *output* string. A constraint
// (w, X, allow_equal) admits exactly the strings o ∈ Δ* such that
//   * w is a prefix of o,
//   * if o = w then allow_equal holds,
//   * if o ≠ w then o[|w|] ∉ X.
//
// This family is closed under the Lawler partition step: removing the top
// answer o* from a constraint's answer set splits the rest into |o*|−|w|+1
// constraints of the same form (PartitionAfter), pairwise disjoint and
// jointly exhaustive — so ranked enumeration needs no duplicate
// suppression. Each constraint is a regular condition on the output and is
// enforced by composing the transducer with ToDfa() (see
// transducer/compose.h), which is how the paper "transform[s] the input
// transducer into a new one".

#ifndef TMS_RANKING_PREFIX_CONSTRAINT_H_
#define TMS_RANKING_PREFIX_CONSTRAINT_H_

#include <set>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::ranking {

/// A constraint on output strings; see the file comment for semantics.
struct OutputConstraint {
  Str prefix;                       ///< forced prefix w
  std::set<Symbol> excluded_next;   ///< X: symbols forbidden right after w
  bool allow_equal = true;          ///< whether o == w itself is admitted

  /// The unconstrained space (admits every string).
  static OutputConstraint All() { return OutputConstraint{}; }

  /// True iff `o` satisfies this constraint.
  bool Admits(const Str& o) const;

  /// Partitions Admits(*this) \ {winner} into child constraints (disjoint,
  /// exhaustive). `winner` must be admitted by *this.
  std::vector<OutputConstraint> PartitionAfter(const Str& winner) const;

  /// A complete DFA over `output_alphabet` accepting exactly the admitted
  /// strings; |w| + 3 states.
  automata::Dfa ToDfa(const Alphabet& output_alphabet) const;

  /// Debug rendering, e.g. "[w=1 2 | X={3} | eq]".
  std::string ToString(const Alphabet& output_alphabet) const;
};

}  // namespace tms::ranking

#endif  // TMS_RANKING_PREFIX_CONSTRAINT_H_
