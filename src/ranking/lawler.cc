#include "ranking/lawler.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace tms::ranking {

LawlerEnumerator::LawlerEnumerator(SubspaceSolver solver,
                                   exec::ThreadPool* pool)
    : solver_(std::move(solver)), pool_(pool) {
  OutputConstraint all = OutputConstraint::All();
  auto best = Solve(all);
  if (best.has_value()) {
    heap_.push_back(Entry{std::move(*best), std::move(all)});
  }
}

std::optional<ScoredAnswer> LawlerEnumerator::Solve(
    const OutputConstraint& constraint) {
  TMS_OBS_COUNT("ranking.lawler.solver_calls", 1);
  auto best = solver_(constraint);
  if (!best.has_value()) {
    TMS_OBS_COUNT("ranking.lawler.empty_subspaces", 1);
    return std::nullopt;
  }
  if (!std::isfinite(best->score)) {
    TMS_OBS_COUNT("ranking.lawler.nonfinite_scores", 1);
    return std::nullopt;
  }
  return best;
}

std::optional<ScoredAnswer> LawlerEnumerator::Next() {
  TMS_OBS_SPAN("ranking.lawler.next");
  if (heap_.empty()) return std::nullopt;
  TMS_OBS_COUNT("ranking.lawler.pops", 1);
  std::pop_heap(heap_.begin(), heap_.end(), EntryLess());
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  std::vector<OutputConstraint> children =
      top.constraint.PartitionAfter(top.answer.output);
  const int64_t fanout = static_cast<int64_t>(children.size());
  // The children are independent solver calls; fan them out, then push the
  // survivors in child order so the heap is the same one the sequential
  // engine builds.
  std::vector<std::optional<ScoredAnswer>> solved;
  if (pool_ != nullptr && fanout > 1) {
    solved = pool_->ParallelMap<std::optional<ScoredAnswer>>(
        fanout, [this, &children](int64_t i) {
          return Solve(children[static_cast<size_t>(i)]);
        });
  } else {
    solved.reserve(children.size());
    for (const OutputConstraint& child : children) {
      solved.push_back(Solve(child));
    }
  }
  int64_t pushed = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!solved[i].has_value()) continue;
    ++pushed;
    heap_.push_back(Entry{std::move(*solved[i]), std::move(children[i])});
    std::push_heap(heap_.begin(), heap_.end(), EntryLess());
  }
  TMS_OBS_COUNT("ranking.lawler.children_pushed", pushed);
  TMS_OBS_HISTOGRAM("ranking.lawler.partition_fanout", fanout);
  TMS_OBS_GAUGE_SET("ranking.lawler.heap_size", heap_.size());
  TMS_OBS_COUNT("ranking.lawler.answers", 1);
  delay_.RecordAnswer();
  // Silence unused warnings in the compiled-out build.
  (void)fanout;
  (void)pushed;
  return std::move(top.answer);
}

}  // namespace tms::ranking
