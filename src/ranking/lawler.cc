#include "ranking/lawler.h"

namespace tms::ranking {

LawlerEnumerator::LawlerEnumerator(SubspaceSolver solver)
    : solver_(std::move(solver)) {
  OutputConstraint all = OutputConstraint::All();
  auto best = solver_(all);
  if (best.has_value()) {
    heap_.push(Entry{std::move(*best), std::move(all)});
  }
}

std::optional<ScoredAnswer> LawlerEnumerator::Next() {
  if (heap_.empty()) return std::nullopt;
  Entry top = heap_.top();
  heap_.pop();
  for (OutputConstraint& child :
       top.constraint.PartitionAfter(top.answer.output)) {
    auto best = solver_(child);
    if (best.has_value()) {
      heap_.push(Entry{std::move(*best), std::move(child)});
    }
  }
  return top.answer;
}

}  // namespace tms::ranking
