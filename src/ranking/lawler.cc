#include "ranking/lawler.h"

#include "obs/obs.h"

namespace tms::ranking {

LawlerEnumerator::LawlerEnumerator(SubspaceSolver solver)
    : solver_(std::move(solver)) {
  OutputConstraint all = OutputConstraint::All();
  TMS_OBS_COUNT("ranking.lawler.solver_calls", 1);
  auto best = solver_(all);
  if (best.has_value()) {
    heap_.push(Entry{std::move(*best), std::move(all)});
  } else {
    TMS_OBS_COUNT("ranking.lawler.empty_subspaces", 1);
  }
}

std::optional<ScoredAnswer> LawlerEnumerator::Next() {
  TMS_OBS_SPAN("ranking.lawler.next");
  if (heap_.empty()) return std::nullopt;
  TMS_OBS_COUNT("ranking.lawler.pops", 1);
  Entry top = heap_.top();
  heap_.pop();
  int64_t children = 0;
  int64_t pushed = 0;
  for (OutputConstraint& child :
       top.constraint.PartitionAfter(top.answer.output)) {
    ++children;
    auto best = solver_(child);
    if (best.has_value()) {
      ++pushed;
      heap_.push(Entry{std::move(*best), std::move(child)});
    }
  }
  TMS_OBS_COUNT("ranking.lawler.solver_calls", children);
  TMS_OBS_COUNT("ranking.lawler.children_pushed", pushed);
  TMS_OBS_COUNT("ranking.lawler.empty_subspaces", children - pushed);
  TMS_OBS_HISTOGRAM("ranking.lawler.partition_fanout", children);
  TMS_OBS_GAUGE_SET("ranking.lawler.heap_size", heap_.size());
  TMS_OBS_COUNT("ranking.lawler.answers", 1);
  delay_.RecordAnswer();
  // Silence unused warnings in the compiled-out build.
  (void)children;
  (void)pushed;
  return top.answer;
}

}  // namespace tms::ranking
