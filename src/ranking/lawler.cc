#include "ranking/lawler.h"

#include <algorithm>
#include <cmath>

#include "exec/fault.h"
#include "obs/obs.h"

namespace tms::ranking {

LawlerEnumerator::LawlerEnumerator(SubspaceSolver solver,
                                   exec::ThreadPool* pool,
                                   exec::RunContext* run)
    : solver_(std::move(solver)),
      pool_(pool),
      run_(run),
      obs_ctx_(obs::CurrentTraceContext()) {
  OutputConstraint all = OutputConstraint::All();
  auto best = Solve(all);
  if (best.has_value()) {
    heap_.push_back(Entry{std::move(*best), std::move(all)});
  }
}

std::optional<ScoredAnswer> LawlerEnumerator::Solve(
    const OutputConstraint& constraint) {
  // Bounded execution: one work unit per subspace solve. A failed charge
  // latches the stop reason in the context; treating the subspace as empty
  // is safe because the stream stops at the next answer boundary anyway.
  if (run_ != nullptr && !run_->ChargeWork()) return std::nullopt;
  if (TMS_FAULT_POINT("lawler.pre_solve")) {
    if (run_ != nullptr) run_->InjectFault("lawler.pre_solve");
    return std::nullopt;
  }
  TMS_OBS_COUNT("ranking.lawler.solver_calls", 1);
  auto best = solver_(constraint);
  if (!best.has_value()) {
    TMS_OBS_COUNT("ranking.lawler.empty_subspaces", 1);
    return std::nullopt;
  }
  if (!std::isfinite(best->score)) {
    TMS_OBS_COUNT("ranking.lawler.nonfinite_scores", 1);
    return std::nullopt;
  }
  return best;
}

std::optional<ScoredAnswer> LawlerEnumerator::Next() {
  obs::ScopeAdoption adopt(obs_ctx_);
  TMS_OBS_SPAN("ranking.lawler.next");
  // Answer boundary: a stopped run returns nullopt forever after, leaving
  // the already-emitted answers an exact prefix of the unbounded stream.
  if (run_ != nullptr && !run_->BeforeAnswer()) return std::nullopt;
  if (heap_.empty()) return std::nullopt;
  TMS_OBS_COUNT("ranking.lawler.pops", 1);
  std::pop_heap(heap_.begin(), heap_.end(), EntryLess());
  Entry top = std::move(heap_.back());
  heap_.pop_back();
  std::vector<OutputConstraint> children =
      top.constraint.PartitionAfter(top.answer.output);
  const int64_t fanout = static_cast<int64_t>(children.size());
  // The children are independent solver calls; fan them out, then push the
  // survivors in child order so the heap is the same one the sequential
  // engine builds.
  std::vector<std::optional<ScoredAnswer>> solved;
  if (pool_ != nullptr && fanout > 1) {
    solved = pool_->ParallelMap<std::optional<ScoredAnswer>>(
        fanout, [this, &children](int64_t i) {
          return Solve(children[static_cast<size_t>(i)]);
        });
  } else {
    solved.reserve(children.size());
    for (const OutputConstraint& child : children) {
      solved.push_back(Solve(child));
    }
  }
#if TMS_OBS_ACTIVE
  const int64_t merge_start_ns = obs::MonotonicNanos();
#endif
  int64_t pushed = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!solved[i].has_value()) continue;
    if (TMS_FAULT_POINT("lawler.pre_heap_push")) {
      // Simulated allocation failure: the child is lost, so the stream
      // past this answer can no longer be trusted — stop the run.
      if (run_ != nullptr) run_->InjectFault("lawler.pre_heap_push");
      continue;
    }
    ++pushed;
    heap_.push_back(Entry{std::move(*solved[i]), std::move(children[i])});
    std::push_heap(heap_.begin(), heap_.end(), EntryLess());
  }
  TMS_OBS_HISTOGRAM("ranking.lawler.merge_ns",
                    obs::MonotonicNanos() - merge_start_ns);
  TMS_OBS_COUNT("ranking.lawler.children_pushed", pushed);
  TMS_OBS_HISTOGRAM("ranking.lawler.partition_fanout", fanout);
  TMS_OBS_GAUGE_SET("ranking.lawler.heap_size", heap_.size());
  TMS_OBS_COUNT("ranking.lawler.answers", 1);
  if (run_ != nullptr) run_->CountAnswer();
  delay_.RecordAnswer();
  // Silence unused warnings in the compiled-out build.
  (void)fanout;
  (void)pushed;
  return std::move(top.answer);
}

}  // namespace tms::ranking
