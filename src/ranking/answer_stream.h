// The common answer-stream interface of the enumeration engines.
//
// Every enumerator in the repository — ranked (EmaxEnumerator,
// ImaxEnumerator, the LawlerEnumerator they wrap) and unranked
// (UnrankedEnumerator) — is a pull stream: repeated Next() calls yield
// answers until nullopt, which is sticky. AnswerStream is that shape as
// an interface, so db::BatchEvaluator, query::Evaluator and tms_cli can
// hold any engine behind one pointer obtained from query::MakeEnumerator
// instead of four hand-rolled call sites.
//
// Stream contract:
//   * Ranked engines emit in nonincreasing score; ties are broken
//     deterministically, so the stream is identical run over run and at
//     any thread count. Unranked engines emit in their documented
//     deterministic order with score 0.0 (no ranking claim).
//   * Under a bounded exec::RunContext the emitted answers are an exact
//     prefix of the unbounded stream (see docs/ROBUSTNESS.md).
//   * Next() is not thread-safe; one consumer at a time.
//
// Borrow-vs-own construction contract (uniform across engines):
//   * Plain constructors / Create() overloads BORROW their model inputs
//     (μ, the transducer or s-projector) by reference: the caller must
//     keep them alive for the engine's lifetime. Everything inside
//     exec::EngineOptions is likewise borrowed.
//   * Every engine also provides WithOwnedInputs(...), which moves copies
//     of the model inputs into the engine's shared state — safe even when
//     the caller's originals are temporaries or die before the stream
//     does. EngineOptions pointers stay borrowed even then.

#ifndef TMS_RANKING_ANSWER_STREAM_H_
#define TMS_RANKING_ANSWER_STREAM_H_

#include <optional>

#include "strings/str.h"

namespace tms::ranking {

/// An enumerated answer with its score (higher = better; 0.0 from
/// unranked engines).
struct ScoredAnswer {
  Str output;
  double score = 0.0;
};

/// Pull-stream interface implemented by all enumeration engines.
class AnswerStream {
 public:
  virtual ~AnswerStream() = default;

  /// The next answer, or nullopt when exhausted (or truncated by the
  /// engine's RunContext); nullopt is sticky.
  virtual std::optional<ScoredAnswer> Next() = 0;
};

}  // namespace tms::ranking

#endif  // TMS_RANKING_ANSWER_STREAM_H_
