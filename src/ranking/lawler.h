// The Lawler–Murty ranked-enumeration engine (paper §4.2, citing Lawler
// [38], Murty [43] and Yen [59]).
//
// Lawler's procedure reduces ranked enumeration to *constrained
// optimization*: maintain a priority queue of disjoint answer subspaces,
// each represented by an OutputConstraint together with its best answer;
// repeatedly pop the globally best answer, emit it, partition its subspace
// around it (OutputConstraint::PartitionAfter), solve each child subspace,
// and push the children back. Scores are nonincreasing because a child's
// answers are a subset of its parent's.
//
// The engine is parameterized by the subspace solver, so the same code
// drives Theorem 4.3 (top answer under E_max via Viterbi on the
// constraint-composed transducer) and Lemma 5.10 (top answer under I_max
// via a constrained best path in the indexed s-projector DAG).

#ifndef TMS_RANKING_LAWLER_H_
#define TMS_RANKING_LAWLER_H_

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "exec/engine_options.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "obs/delay.h"
#include "obs/query_scope.h"
#include "ranking/answer_stream.h"
#include "ranking/prefix_constraint.h"
#include "strings/str.h"

namespace tms::ranking {

/// Solves one subspace: the best answer admitted by the constraint, or
/// nullopt if the subspace is empty. Ties may be broken arbitrarily but
/// deterministically. Scores must be finite; a non-finite score (NaN would
/// violate EntryLess's strict weak ordering and silently corrupt the heap)
/// is rejected at the boundary and the subspace treated as empty, counted
/// by `ranking.lawler.nonfinite_scores`.
using SubspaceSolver =
    std::function<std::optional<ScoredAnswer>(const OutputConstraint&)>;

/// Streams answers in nonincreasing score with one solver call per emitted
/// answer per child subspace (at most |answer|+1 children per emission).
///
/// With a thread pool, the child subspaces of each pop — independent solver
/// calls by construction — are solved concurrently. The solver must then be
/// thread-safe (no shared mutable state across calls); results are merged
/// back in child order, so the heap content after every pop, and therefore
/// the emitted sequence, is identical at every thread count. (That the pop
/// order itself is well-defined follows from EntryLess being a total order:
/// subspaces are disjoint, so outputs are unique and break every score
/// tie.)
///
/// With a RunContext, the run is bounded: every subspace solve charges one
/// work unit, and Next() stops — returning nullopt forever after — once a
/// deadline, the answer cap, the budget, or a cancellation fires. The
/// answers emitted before the stop are a byte-identical prefix of the
/// unbounded stream at every thread count: the answer of a pop is fixed
/// before its children are solved, so a limit firing mid-fanout can only
/// suppress *future* answers, never change the current one (see
/// docs/ROBUSTNESS.md).
class LawlerEnumerator : public AnswerStream {
 public:
  /// `pool` and `run` are optional and non-owning (they must outlive the
  /// enumerator); a null pool means the sequential engine, a null run
  /// means unbounded execution. The constructor itself performs the first
  /// subspace solve, so it already charges (and respects) `run`.
  explicit LawlerEnumerator(SubspaceSolver solver,
                            exec::ThreadPool* pool = nullptr,
                            exec::RunContext* run = nullptr);

  /// As above, drawing pool/run from the shared options shape (cache and
  /// backend do not apply here: the solver captures both).
  LawlerEnumerator(SubspaceSolver solver, const exec::EngineOptions& options)
      : LawlerEnumerator(std::move(solver), options.pool, options.run) {}

  /// The next best answer, or nullopt when the space is exhausted.
  std::optional<ScoredAnswer> Next() override;

 private:
  struct Entry {
    ScoredAnswer answer;
    OutputConstraint constraint;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.answer.score != b.answer.score) {
        return a.answer.score < b.answer.score;  // max-heap on score
      }
      return b.answer.output < a.answer.output;  // deterministic tie-break
    }
  };

  // Runs the solver on one subspace, enforcing the finite-score contract.
  std::optional<ScoredAnswer> Solve(const OutputConstraint& constraint);

  SubspaceSolver solver_;
  exec::ThreadPool* pool_;
  exec::RunContext* run_;
  // Trace context of the constructing thread: Next() re-adopts it, so a
  // stream driven from any thread (or interleaved with other queries'
  // streams on one thread) keeps attributing to its own query.
  obs::TraceContext obs_ctx_;
  // A max-heap under EntryLess, maintained with std::push_heap/pop_heap
  // (rather than std::priority_queue, whose top() is const and would force
  // a deep copy of the answer + constraint on every pop).
  std::vector<Entry> heap_;
  // Inter-answer delay distribution (Theorem 4.3's polynomial-delay claim
  // as measured: histogram `ranking.lawler.delay_ns`).
  obs::DelayRecorder delay_{"ranking.lawler"};
};

}  // namespace tms::ranking

#endif  // TMS_RANKING_LAWLER_H_
