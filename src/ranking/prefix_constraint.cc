#include "ranking/prefix_constraint.h"

#include "common/check.h"

namespace tms::ranking {

bool OutputConstraint::Admits(const Str& o) const {
  if (!IsPrefixOf(prefix, o)) return false;
  if (o.size() == prefix.size()) return allow_equal;
  return excluded_next.find(o[prefix.size()]) == excluded_next.end();
}

std::vector<OutputConstraint> OutputConstraint::PartitionAfter(
    const Str& winner) const {
  TMS_CHECK(Admits(winner));
  std::vector<OutputConstraint> out;
  if (winner.size() == prefix.size()) {
    // winner == w: the rest is everything but equality.
    TMS_CHECK(allow_equal);
    out.push_back(OutputConstraint{prefix, excluded_next, false});
    return out;
  }
  // Deviate immediately after w (or equal w, if that was allowed).
  {
    OutputConstraint child{prefix, excluded_next, allow_equal};
    child.excluded_next.insert(winner[prefix.size()]);
    out.push_back(std::move(child));
  }
  // Agree with winner through position l, deviate at l (0-based), for
  // l = |w|+1 .. |winner|-1; equality with the shorter prefix is allowed
  // (covers answers that are proper prefixes of winner).
  for (size_t l = prefix.size() + 1; l < winner.size(); ++l) {
    OutputConstraint child;
    child.prefix.assign(winner.begin(),
                        winner.begin() + static_cast<long>(l));
    child.excluded_next = {winner[l]};
    child.allow_equal = true;
    out.push_back(std::move(child));
  }
  // Strict extensions of winner.
  out.push_back(OutputConstraint{winner, {}, false});
  return out;
}

automata::Dfa OutputConstraint::ToDfa(const Alphabet& output_alphabet) const {
  const int w = static_cast<int>(prefix.size());
  // States: 0..w = progress through the prefix; w+1 = free; w+2 = dead.
  automata::Dfa out(output_alphabet, w + 3);
  const automata::StateId free_state = static_cast<automata::StateId>(w + 1);
  const automata::StateId dead = static_cast<automata::StateId>(w + 2);
  for (automata::StateId q = 0; q <= dead; ++q) {
    for (size_t d = 0; d < output_alphabet.size(); ++d) {
      out.SetTransition(q, static_cast<Symbol>(d), dead);
    }
  }
  for (int i = 0; i < w; ++i) {
    out.SetTransition(static_cast<automata::StateId>(i),
                      prefix[static_cast<size_t>(i)],
                      static_cast<automata::StateId>(i + 1));
  }
  for (size_t d = 0; d < output_alphabet.size(); ++d) {
    Symbol sym = static_cast<Symbol>(d);
    if (excluded_next.find(sym) == excluded_next.end()) {
      out.SetTransition(static_cast<automata::StateId>(w), sym, free_state);
    }
    out.SetTransition(free_state, sym, free_state);
  }
  out.SetInitial(0);
  out.SetAccepting(static_cast<automata::StateId>(w), allow_equal);
  out.SetAccepting(free_state, true);
  return out;
}

std::string OutputConstraint::ToString(const Alphabet& output_alphabet) const {
  std::string out = "[w=" + FormatStr(output_alphabet, prefix) + " | X={";
  bool first = true;
  for (Symbol s : excluded_next) {
    if (!first) out += ",";
    out += output_alphabet.Name(s);
    first = false;
  }
  out += allow_equal ? "} | eq]" : "} | neq]";
  return out;
}

}  // namespace tms::ranking
