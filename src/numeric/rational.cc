#include "numeric/rational.h"

#include <cmath>

#include "common/check.h"

namespace tms::numeric {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  TMS_CHECK(!den_.IsZero());
  Normalize();
}

void Rational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  num_ /= g;
  den_ /= g;
}

Rational Rational::FromDouble(double value) {
  TMS_CHECK(std::isfinite(value));
  if (value == 0.0) return Rational();
  int exp = 0;
  // mantissa in [0.5, 1); value = mantissa * 2^exp.
  double mantissa = std::frexp(value, &exp);
  // Scale mantissa to a 53-bit integer.
  int64_t scaled = static_cast<int64_t>(std::ldexp(mantissa, 53));
  exp -= 53;
  BigInt num(scaled);
  BigInt den(1);
  const BigInt two(2);
  if (exp >= 0) {
    for (int i = 0; i < exp; ++i) num *= two;
  } else {
    for (int i = 0; i < -exp; ++i) den *= two;
  }
  return Rational(std::move(num), std::move(den));
}

StatusOr<Rational> Rational::FromString(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto num = BigInt::FromString(text);
    if (!num.ok()) return num.status();
    return Rational(std::move(num).value(), BigInt(1));
  }
  auto num = BigInt::FromString(text.substr(0, slash));
  if (!num.ok()) return num.status();
  auto den = BigInt::FromString(text.substr(slash + 1));
  if (!den.ok()) return den.status();
  if (den->IsZero()) return Status::InvalidArgument("zero denominator");
  return Rational(std::move(num).value(), std::move(den).value());
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  TMS_CHECK(!other.IsZero());
  return Rational(num_ * other.den_, den_ * other.num_);
}

int Rational::Compare(const Rational& other) const {
  return (num_ * other.den_).Compare(other.num_ * den_);
}

std::string Rational::ToString() const {
  if (den_ == BigInt(1)) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

double Rational::ToDouble() const {
  // Scale so the quotient fits comfortably in double precision.
  size_t nb = num_.BitLength();
  size_t db = den_.BitLength();
  if (nb < 1000 && db < 1000) {
    return num_.ToDouble() / den_.ToDouble();
  }
  // Shift both down to ~64 significant bits.
  size_t shift = std::max(nb, db) - 64;
  BigInt n = num_, d = den_;
  BigInt divisor(1);
  const BigInt two(2);
  for (size_t i = 0; i < shift; ++i) divisor *= two;
  n /= divisor;
  d /= divisor;
  if (d.IsZero()) d = BigInt(1);
  return n.ToDouble() / d.ToDouble();
}

}  // namespace tms::numeric
