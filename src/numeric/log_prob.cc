#include "numeric/log_prob.h"

namespace tms::numeric {

std::ostream& operator<<(std::ostream& os, LogProb p) {
  return os << p.ToLinear() << " (log " << p.log() << ")";
}

}  // namespace tms::numeric
