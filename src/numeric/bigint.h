// Arbitrary-precision signed integers.
//
// BigInt backs numeric::Rational, which tms uses for *exact* probability
// arithmetic: the paper ("Transducing Markov Sequences", PODS 2010, Section
// 3.2) represents every probability in a Markov sequence as a pair of
// binary-encoded integers. Exact arithmetic is used by the *_exact
// confidence APIs and by the cross-validation tests; the hot paths use
// doubles.
//
// The representation is sign + magnitude, with the magnitude stored as
// base-2^32 digits in little-endian order (no leading zero digit; zero is
// the empty digit vector with sign_ = +1).

#ifndef TMS_NUMERIC_BIGINT_H_
#define TMS_NUMERIC_BIGINT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace tms::numeric {

/// An arbitrary-precision signed integer with value semantics.
class BigInt {
 public:
  /// Zero.
  BigInt() = default;

  /// Conversion from a machine integer.
  BigInt(int64_t value);  // NOLINT(runtime/explicit)

  /// Parses a base-10 string with an optional leading '-'.
  static StatusOr<BigInt> FromString(std::string_view text);

  /// True iff the value is zero.
  bool IsZero() const { return digits_.empty(); }
  /// True iff the value is negative (zero is not negative).
  bool IsNegative() const { return negative_; }

  /// -1, 0, or +1.
  int Sign() const {
    if (IsZero()) return 0;
    return negative_ ? -1 : 1;
  }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncated division (rounds toward zero). Divisor must be nonzero.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend. Divisor must be nonzero.
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  bool operator==(const BigInt& other) const {
    return negative_ == other.negative_ && digits_ == other.digits_;
  }
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Three-way comparison: negative, zero, or positive.
  int Compare(const BigInt& other) const;

  /// Greatest common divisor of the absolute values; Gcd(0, 0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  /// Base-10 representation.
  std::string ToString() const;

  /// Closest double (may overflow to +/-inf for huge values).
  double ToDouble() const;

  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

 private:
  using Digit = uint32_t;
  static constexpr uint64_t kBase = 1ULL << 32;

  // Magnitude helpers (ignore sign).
  static std::vector<Digit> AddMag(const std::vector<Digit>& a,
                                   const std::vector<Digit>& b);
  // Requires |a| >= |b|.
  static std::vector<Digit> SubMag(const std::vector<Digit>& a,
                                   const std::vector<Digit>& b);
  static std::vector<Digit> MulMag(const std::vector<Digit>& a,
                                   const std::vector<Digit>& b);
  static int CompareMag(const std::vector<Digit>& a,
                        const std::vector<Digit>& b);
  // Quotient and remainder of magnitudes; b must be nonzero.
  static void DivModMag(const std::vector<Digit>& a,
                        const std::vector<Digit>& b, std::vector<Digit>* q,
                        std::vector<Digit>* r);
  static void Trim(std::vector<Digit>* v);

  BigInt(bool negative, std::vector<Digit> digits);

  bool negative_ = false;
  std::vector<Digit> digits_;  // little-endian base 2^32; empty == 0
};

inline std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace tms::numeric

#endif  // TMS_NUMERIC_BIGINT_H_
