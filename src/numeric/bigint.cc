#include "numeric/bigint.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace tms::numeric {

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  negative_ = value < 0;
  // Avoid overflow on INT64_MIN by working in unsigned space.
  uint64_t mag =
      negative_ ? ~static_cast<uint64_t>(value) + 1 : static_cast<uint64_t>(value);
  while (mag != 0) {
    digits_.push_back(static_cast<Digit>(mag & 0xffffffffULL));
    mag >>= 32;
  }
}

BigInt::BigInt(bool negative, std::vector<Digit> digits)
    : negative_(negative), digits_(std::move(digits)) {
  Trim(&digits_);
  if (digits_.empty()) negative_ = false;
}

StatusOr<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty integer literal");
  bool negative = false;
  size_t pos = 0;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) {
    return Status::InvalidArgument("integer literal has no digits");
  }
  BigInt out;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("invalid digit in integer literal: " +
                                     std::string(text));
    }
    out = out * ten + BigInt(c - '0');
  }
  if (negative && !out.IsZero()) out.negative_ = true;
  return out;
}

void BigInt::Trim(std::vector<Digit>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}

int BigInt::CompareMag(const std::vector<Digit>& a,
                       const std::vector<Digit>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<BigInt::Digit> BigInt::AddMag(const std::vector<Digit>& a,
                                          const std::vector<Digit>& b) {
  std::vector<Digit> out;
  out.reserve(std::max(a.size(), b.size()) + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<Digit>(sum & 0xffffffffULL));
    carry = sum >> 32;
  }
  if (carry != 0) out.push_back(static_cast<Digit>(carry));
  return out;
}

std::vector<BigInt::Digit> BigInt::SubMag(const std::vector<Digit>& a,
                                          const std::vector<Digit>& b) {
  TMS_DCHECK(CompareMag(a, b) >= 0);
  std::vector<Digit> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow;
    if (i < b.size()) diff -= static_cast<int64_t>(b[i]);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<Digit>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<BigInt::Digit> BigInt::MulMag(const std::vector<Digit>& a,
                                          const std::vector<Digit>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> acc(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      // acc[i+j] < 2^33 here, product < 2^64 - 2^33, so no overflow:
      // we flush acc to < 2^32 after each inner iteration.
      uint64_t cur =
          acc[i + j] + static_cast<uint64_t>(a[i]) * b[j] + carry;
      acc[i + j] = cur & 0xffffffffULL;
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry != 0) {
      uint64_t cur = acc[k] + carry;
      acc[k] = cur & 0xffffffffULL;
      carry = cur >> 32;
      ++k;
    }
  }
  std::vector<Digit> out(acc.size());
  for (size_t i = 0; i < acc.size(); ++i) out[i] = static_cast<Digit>(acc[i]);
  Trim(&out);
  return out;
}

void BigInt::DivModMag(const std::vector<Digit>& a,
                       const std::vector<Digit>& b, std::vector<Digit>* q,
                       std::vector<Digit>* r) {
  TMS_CHECK(!b.empty());
  q->clear();
  r->clear();
  if (CompareMag(a, b) < 0) {
    *r = a;
    return;
  }
  // Long division, one bit at a time (simple and correct; exact arithmetic
  // is off the hot path).
  size_t total_bits = a.size() * 32;
  q->assign(a.size(), 0);
  std::vector<Digit> rem;  // running remainder
  for (size_t bit = total_bits; bit-- > 0;) {
    // rem = rem * 2 + bit(a, bit)
    uint32_t carry = (a[bit / 32] >> (bit % 32)) & 1u;
    for (size_t i = 0; i < rem.size(); ++i) {
      uint32_t next = rem[i] >> 31;
      rem[i] = (rem[i] << 1) | carry;
      carry = next;
    }
    if (carry != 0) rem.push_back(carry);
    if (CompareMag(rem, b) >= 0) {
      rem = SubMag(rem, b);
      (*q)[bit / 32] |= (1u << (bit % 32));
    }
  }
  Trim(q);
  *r = std::move(rem);
  Trim(r);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.IsZero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (negative_ == other.negative_) {
    return BigInt(negative_, AddMag(digits_, other.digits_));
  }
  int cmp = CompareMag(digits_, other.digits_);
  if (cmp == 0) return BigInt();
  if (cmp > 0) return BigInt(negative_, SubMag(digits_, other.digits_));
  return BigInt(other.negative_, SubMag(other.digits_, digits_));
}

BigInt BigInt::operator-(const BigInt& other) const {
  return *this + (-other);
}

BigInt BigInt::operator*(const BigInt& other) const {
  return BigInt(negative_ != other.negative_, MulMag(digits_, other.digits_));
}

BigInt BigInt::operator/(const BigInt& other) const {
  TMS_CHECK(!other.IsZero());
  std::vector<Digit> q, r;
  DivModMag(digits_, other.digits_, &q, &r);
  return BigInt(negative_ != other.negative_, std::move(q));
}

BigInt BigInt::operator%(const BigInt& other) const {
  TMS_CHECK(!other.IsZero());
  std::vector<Digit> q, r;
  DivModMag(digits_, other.digits_, &q, &r);
  return BigInt(negative_, std::move(r));
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMag(digits_, other.digits_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a = a.Abs();
  b = b.Abs();
  while (!b.IsZero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  std::string out;
  std::vector<Digit> mag = digits_;
  const std::vector<Digit> billion = {1000000000u};
  while (!mag.empty()) {
    std::vector<Digit> q, r;
    DivModMag(mag, billion, &q, &r);
    uint32_t chunk = r.empty() ? 0 : r[0];
    for (int i = 0; i < 9; ++i) {
      out.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
    mag = std::move(q);
  }
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

double BigInt::ToDouble() const {
  double out = 0;
  for (size_t i = digits_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(digits_[i]);
  }
  return negative_ ? -out : out;
}

size_t BigInt::BitLength() const {
  if (digits_.empty()) return 0;
  uint32_t top = digits_.back();
  size_t bits = 0;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return (digits_.size() - 1) * 32 + bits;
}

}  // namespace tms::numeric
