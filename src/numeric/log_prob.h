// Log-domain probabilities.
//
// Viterbi-style best-evidence computations (E_max, Section 4.2 of the
// paper) multiply up to n transition probabilities; on long Markov
// sequences this underflows doubles. LogProb stores log(p) and provides
// the max-product semiring operations.

#ifndef TMS_NUMERIC_LOG_PROB_H_
#define TMS_NUMERIC_LOG_PROB_H_

#include <cmath>
#include <limits>
#include <ostream>

#include "common/check.h"

namespace tms::numeric {

/// A probability stored as its natural logarithm. Zero is representable
/// (log = -inf). Values may exceed 1 transiently (e.g. unnormalized
/// weights); this class does not clamp.
class LogProb {
 public:
  /// Probability zero.
  LogProb() : log_(-std::numeric_limits<double>::infinity()) {}

  /// From a linear-domain probability; p must be >= 0 and not NaN
  /// (DCHECKed — a NaN here would otherwise silently become Zero).
  static LogProb FromLinear(double p) {
    TMS_DCHECK(!std::isnan(p) && p >= 0);
    LogProb out;
    out.log_ = p > 0 ? std::log(p) : -std::numeric_limits<double>::infinity();
    return out;
  }

  /// From a value already in log domain.
  static LogProb FromLog(double log_p) {
    LogProb out;
    out.log_ = log_p;
    return out;
  }

  static LogProb Zero() { return LogProb(); }
  static LogProb One() { return FromLog(0.0); }

  double log() const { return log_; }
  double ToLinear() const { return std::exp(log_); }
  bool IsZero() const { return std::isinf(log_) && log_ < 0; }
  bool IsNaN() const { return std::isnan(log_); }

  /// Product of probabilities (sum of logs).
  LogProb operator*(LogProb other) const {
    if (IsZero() || other.IsZero()) return Zero();
    return FromLog(log_ + other.log_);
  }
  LogProb& operator*=(LogProb other) { return *this = *this * other; }

  /// Quotient; other must be nonzero. Zero / anything is Zero (without
  /// the guard, Zero / Zero would evaluate -inf - -inf = NaN).
  LogProb operator/(LogProb other) const {
    if (IsZero()) return Zero();
    return FromLog(log_ - other.log_);
  }

  /// Numerically stable sum of probabilities (log-sum-exp). Infinite
  /// weights (log = +inf, from unnormalized intermediates) stay +inf;
  /// without the guard +inf + +inf would evaluate exp(inf - inf) = NaN.
  LogProb operator+(LogProb other) const {
    if (IsZero()) return other;
    if (other.IsZero()) return *this;
    double hi = log_ > other.log_ ? log_ : other.log_;
    double lo = log_ > other.log_ ? other.log_ : log_;
    if (std::isinf(hi)) return FromLog(hi);  // hi = +inf here
    return FromLog(hi + std::log1p(std::exp(lo - hi)));
  }
  LogProb& operator+=(LogProb other) { return *this = *this + other; }

  bool operator==(LogProb other) const { return log_ == other.log_; }
  bool operator!=(LogProb other) const { return log_ != other.log_; }
  bool operator<(LogProb other) const { return log_ < other.log_; }
  bool operator<=(LogProb other) const { return log_ <= other.log_; }
  bool operator>(LogProb other) const { return log_ > other.log_; }
  bool operator>=(LogProb other) const { return log_ >= other.log_; }

 private:
  double log_;
};

std::ostream& operator<<(std::ostream& os, LogProb p);

}  // namespace tms::numeric

#endif  // TMS_NUMERIC_LOG_PROB_H_
