// Exact rational arithmetic over BigInt.
//
// The paper represents each probability of a Markov sequence as a pair of
// binary-encoded integers (numerator, denominator). Rational implements
// that convention exactly; the *_exact confidence algorithms and the
// ground-truth tests are built on it.

#ifndef TMS_NUMERIC_RATIONAL_H_
#define TMS_NUMERIC_RATIONAL_H_

#include <ostream>
#include <string>

#include "numeric/bigint.h"

namespace tms::numeric {

/// An exact rational number, always stored in lowest terms with a positive
/// denominator.
class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}

  /// From an integer.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT

  /// num / den; den must be nonzero.
  Rational(BigInt num, BigInt den);

  /// num / den as machine integers; den must be nonzero.
  Rational(int64_t num, int64_t den) : Rational(BigInt(num), BigInt(den)) {}

  /// Exact value of a double (every finite double is a dyadic rational).
  static Rational FromDouble(double value);

  /// Parses "a/b" or "a" (base 10).
  static StatusOr<Rational> FromString(std::string_view text);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  int Sign() const { return num_.Sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// Division; other must be nonzero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const { return Compare(other) < 0; }
  bool operator<=(const Rational& other) const { return Compare(other) <= 0; }
  bool operator>(const Rational& other) const { return Compare(other) > 0; }
  bool operator>=(const Rational& other) const { return Compare(other) >= 0; }

  /// Three-way comparison.
  int Compare(const Rational& other) const;

  /// "num/den", or just "num" when den == 1.
  std::string ToString() const;

  /// Closest double.
  double ToDouble() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // > 0 after normalization
};

inline std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.ToString();
}

}  // namespace tms::numeric

#endif  // TMS_NUMERIC_RATIONAL_H_
