// Persisted optimization artifacts: an optimized transducer serialized in
// the io:: text format, fingerprint-bound to the exact source transducer
// it was compiled from.
//
// Format (all '#' lines are comments to io::ParseTransducer, so an
// artifact file is ALSO a valid plain transducer file):
//
//     # tms-opt-artifact v1
//     # source-fp <16 hex digits>   FNV-1a of io::FormatTransducer(source)
//     # body-fp <16 hex digits>     FNV-1a of the body below
//     <io::FormatTransducer of the optimized transducer>
//
// Load-time validation is strict: wrong magic, a source fingerprint that
// does not match the transducer being optimized, a corrupted body, or a
// body that fails Transducer::Validate all reject the artifact with the
// loud `optimize.artifact_rejected` counter — the caller then falls back
// to compiling on the fly (serve/registry.cc), so a stale or truncated
// artifact can never change answers, only cold-start cost.

#ifndef TMS_OPTIMIZE_ARTIFACT_H_
#define TMS_OPTIMIZE_ARTIFACT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "transducer/transducer.h"

namespace tms::optimize {

/// FNV-1a 64-bit, rendered as 16 lowercase hex digits.
std::string Fingerprint(std::string_view bytes);

/// Serializes `optimized` as an artifact bound to `source`.
std::string FormatArtifact(const transducer::Transducer& source,
                           const transducer::Transducer& optimized);

/// Parses and validates an artifact against `source`. Errors: NotFound is
/// never returned here (that is LoadArtifactFile's miss signal); every
/// validation failure is InvalidArgument and counted as
/// `optimize.artifact_rejected` by the caller-facing file API.
StatusOr<transducer::Transducer> ParseArtifact(
    std::string_view text, const transducer::Transducer& source);

/// Writes FormatArtifact(source, optimized) to `path`. Counts
/// `optimize.artifact_saved` on success.
Status SaveArtifactFile(const std::string& path,
                        const transducer::Transducer& source,
                        const transducer::Transducer& optimized);

/// Reads and validates the artifact at `path`. A missing file is a quiet
/// NotFound (cold start, nothing to reject); any other failure counts
/// `optimize.artifact_rejected`; success counts `optimize.artifact_loaded`.
StatusOr<transducer::Transducer> LoadArtifactFile(
    const std::string& path, const transducer::Transducer& source);

}  // namespace tms::optimize

#endif  // TMS_OPTIMIZE_ARTIFACT_H_
