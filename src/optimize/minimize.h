// Hopcroft DFA minimization — the O(|Σ|·n·log n) worklist algorithm.
//
// automata::Minimize is a Moore-style refinement kept for its simplicity
// (and as the differential reference in tests/optimize_property_test.cc);
// this is the Hopcroft construction the offline optimization pass uses:
// inverse-transition splitting driven by a worklist of (block, symbol)
// splitters. (Both halves of every split are re-enqueued — the
// smaller-half-only refinement needs worklist-membership bookkeeping and
// only matters for automata far larger than query automata.)
//
// Determinism contract: the result is renumbered *stably* — equivalence
// classes are ordered by their smallest member in the input's state
// numbering (after dropping unreachable states), and the class of the
// initial state becomes the initial state of the result. Minimal DFAs are
// unique up to isomorphism, so the language is exactly preserved; the
// stable numbering additionally makes the output reproducible across
// runs, which the golden corpus and the equivalence harness rely on.

#ifndef TMS_OPTIMIZE_MINIMIZE_H_
#define TMS_OPTIMIZE_MINIMIZE_H_

#include "automata/dfa.h"

namespace tms::optimize {

/// The minimal complete DFA for L(dfa). Unreachable states are dropped
/// first; the result has the minimum number of states of any complete DFA
/// accepting the same language.
automata::Dfa MinimizeDfa(const automata::Dfa& dfa);

}  // namespace tms::optimize

#endif  // TMS_OPTIMIZE_MINIMIZE_H_
