#include "optimize/minimize.h"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>
#include <vector>

#include "common/check.h"

namespace tms::optimize {

using automata::Dfa;
using automata::StateId;

Dfa MinimizeDfa(const Dfa& dfa) {
  const int sigma = static_cast<int>(dfa.alphabet().size());
  const int n0 = dfa.num_states();

  // Keep only the reachable sub-DFA (it is closed under δ, so it is still
  // complete). `compact[q]` is q's index among reachable states, in the
  // input's ascending state order.
  std::vector<bool> reachable(static_cast<size_t>(n0), false);
  std::deque<StateId> frontier{dfa.initial()};
  reachable[static_cast<size_t>(dfa.initial())] = true;
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop_front();
    for (int s = 0; s < sigma; ++s) {
      StateId q2 = dfa.Next(q, static_cast<Symbol>(s));
      if (!reachable[static_cast<size_t>(q2)]) {
        reachable[static_cast<size_t>(q2)] = true;
        frontier.push_back(q2);
      }
    }
  }
  std::vector<int> compact(static_cast<size_t>(n0), -1);
  std::vector<StateId> original;  // compact index -> input state
  for (StateId q = 0; q < n0; ++q) {
    if (reachable[static_cast<size_t>(q)]) {
      compact[static_cast<size_t>(q)] = static_cast<int>(original.size());
      original.push_back(q);
    }
  }
  const int n = static_cast<int>(original.size());

  // Inverse transitions of the reachable sub-DFA, grouped by (symbol,
  // target): inv[s * n + q2] = the compact states q with δ(q, s) = q2.
  std::vector<std::vector<int>> inv(static_cast<size_t>(sigma) *
                                    static_cast<size_t>(n));
  for (int q = 0; q < n; ++q) {
    for (int s = 0; s < sigma; ++s) {
      int q2 = compact[static_cast<size_t>(
          dfa.Next(original[static_cast<size_t>(q)], static_cast<Symbol>(s)))];
      inv[static_cast<size_t>(s) * static_cast<size_t>(n) +
          static_cast<size_t>(q2)]
          .push_back(q);
    }
  }

  // Hopcroft proper. Blocks are sets of compact states; `block_of[q]`
  // names q's block; the worklist holds (block, symbol) splitters.
  std::vector<int> block_of(static_cast<size_t>(n), 0);
  std::vector<std::set<int>> blocks;
  {
    std::set<int> accepting, rejecting;
    for (int q = 0; q < n; ++q) {
      if (dfa.IsAccepting(original[static_cast<size_t>(q)])) {
        accepting.insert(q);
      } else {
        rejecting.insert(q);
      }
    }
    if (!accepting.empty()) blocks.push_back(std::move(accepting));
    if (!rejecting.empty()) blocks.push_back(std::move(rejecting));
    for (size_t b = 0; b < blocks.size(); ++b) {
      for (int q : blocks[b]) block_of[static_cast<size_t>(q)] =
          static_cast<int>(b);
    }
  }
  std::deque<std::pair<int, int>> worklist;  // (block, symbol)
  {
    // Seeding with the smaller initial block suffices; seeding with both
    // is also correct and keeps the code obviously right.
    for (size_t b = 0; b < blocks.size(); ++b) {
      for (int s = 0; s < sigma; ++s) {
        worklist.emplace_back(static_cast<int>(b), s);
      }
    }
  }
  while (!worklist.empty()) {
    auto [splitter, s] = worklist.front();
    worklist.pop_front();
    // X = the states with a transition on s INTO the splitter block. Taken
    // as a snapshot: blocks[splitter] may be split below, but any block
    // split against a stale X is re-enqueued via the new splitters anyway.
    std::vector<int> x;
    for (int target : blocks[static_cast<size_t>(splitter)]) {
      const std::vector<int>& pre =
          inv[static_cast<size_t>(s) * static_cast<size_t>(n) +
              static_cast<size_t>(target)];
      x.insert(x.end(), pre.begin(), pre.end());
    }
    if (x.empty()) continue;
    // Group X by current block, then split every block that X cuts.
    std::set<int> touched;
    std::vector<std::vector<int>> in_x(blocks.size());
    for (int q : x) {
      int b = block_of[static_cast<size_t>(q)];
      in_x[static_cast<size_t>(b)].push_back(q);
      touched.insert(b);
    }
    for (int b : touched) {
      std::set<int>& blk = blocks[static_cast<size_t>(b)];
      if (in_x[static_cast<size_t>(b)].size() == blk.size()) continue;
      // Split blk into (blk ∩ X) and (blk \ X); the new block gets the
      // smaller half onto the worklist (the half already enqueued keeps
      // working because splitting preserves the union).
      std::set<int> inside(in_x[static_cast<size_t>(b)].begin(),
                           in_x[static_cast<size_t>(b)].end());
      for (int q : inside) blk.erase(q);
      const int nb = static_cast<int>(blocks.size());
      for (int q : inside) block_of[static_cast<size_t>(q)] = nb;
      blocks.push_back(std::move(inside));
      // Enqueue BOTH halves. Hopcroft's smaller-half rule needs worklist
      // membership tracking to stay correct; enqueueing both is always
      // correct, costs at most a constant factor on the automata sizes
      // this pass sees (query automata, not lexica), and keeps the
      // invariant obvious.
      for (int s2 = 0; s2 < sigma; ++s2) {
        worklist.emplace_back(b, s2);
        worklist.emplace_back(nb, s2);
      }
    }
  }

  // Stable quotient: classes ordered by smallest member (in compact order,
  // which is the input's ascending order restricted to reachable states).
  std::vector<int> order(blocks.size());
  for (size_t b = 0; b < blocks.size(); ++b) order[b] = static_cast<int>(b);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return *blocks[static_cast<size_t>(a)].begin() <
           *blocks[static_cast<size_t>(b)].begin();
  });
  std::vector<int> new_id(blocks.size(), -1);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    new_id[static_cast<size_t>(order[rank])] = static_cast<int>(rank);
  }

  Dfa out(dfa.alphabet(), static_cast<int>(blocks.size()));
  for (size_t b = 0; b < blocks.size(); ++b) {
    const int rep = *blocks[b].begin();
    const StateId rep_orig = original[static_cast<size_t>(rep)];
    const StateId id = static_cast<StateId>(new_id[b]);
    out.SetAccepting(id, dfa.IsAccepting(rep_orig));
    for (int s = 0; s < sigma; ++s) {
      int tgt = block_of[static_cast<size_t>(
          compact[static_cast<size_t>(dfa.Next(rep_orig,
                                               static_cast<Symbol>(s)))])];
      out.SetTransition(id, static_cast<Symbol>(s),
                        static_cast<StateId>(new_id[static_cast<size_t>(tgt)]));
    }
  }
  out.SetInitial(static_cast<StateId>(
      new_id[static_cast<size_t>(block_of[static_cast<size_t>(
          compact[static_cast<size_t>(dfa.initial())])])]));
  TMS_CHECK(out.Validate().ok());
  return out;
}

}  // namespace tms::optimize
