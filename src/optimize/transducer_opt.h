// The offline optimization passes over query transducers, and the policy
// deciding when engines run them. Two tiers with different contracts:
//
//  * PruneTransducer — drops states that are unreachable from the initial
//    state or cannot reach an accepting state (the φ = −inf cut of the
//    max-plus weight push, optimize/weight_push.h), plus every edge into a
//    dropped state, and renumbers the survivors MONOTONICALLY. This is the
//    pass behind exec::EngineOptions::optimize, because it is provably
//    byte-exact for the ranked streams: removed accepting cells never hold
//    a finite forward value, kept cells keep their exact values, and the
//    monotone renumbering preserves the ascending (s, q) order of the
//    first-strict-max backtrack scan in query::EmaxContext::TopAnswer —
//    even among exactly tied scores.
//
//  * MinimizeTransducer — prune followed by a bisimulation quotient
//    (largest partition where merged states agree on acceptance and on
//    their (symbol, output, target-class) edge sets). This preserves the
//    transduction relation — the answer SET and every answer's score —
//    but merging may reorder the backtrack scan among EXACTLY tied
//    scores, so it is reserved for the offline artifact path
//    (`tms_cli optimize`, serve/registry precompile) and never enabled by
//    the in-engine knob. See docs/OPTIMIZE.md for the invariant table.
//
// Both passes are deterministic (stable smallest-member renumbering) and
// record the optimize.* metrics — including zero deltas, so the stats-key
// schema is the same whether or not anything was removed.

#ifndef TMS_OPTIMIZE_TRANSDUCER_OPT_H_
#define TMS_OPTIMIZE_TRANSDUCER_OPT_H_

#include "optimize/level.h"
#include "transducer/transducer.h"

namespace tms::optimize {

/// What a pass did, for EXPLAIN surfaces and `tms_cli optimize` output.
struct OptimizeStats {
  int states_before = 0;
  int states_after = 0;
  int edges_before = 0;
  int edges_after = 0;
  int states_unreachable = 0;  ///< dropped: not reachable from initial
  int states_dead = 0;         ///< dropped: reachable but non-co-accessible
  int states_merged = 0;       ///< MinimizeTransducer only
};

/// The reachable ∧ co-accessible sub-transducer, stably renumbered.
/// Stream-byte-exact (see file comment). A transducer with an empty
/// language prunes to a single non-accepting state.
transducer::Transducer PruneTransducer(const transducer::Transducer& t,
                                       OptimizeStats* stats = nullptr);

/// PruneTransducer followed by the bisimulation quotient. Preserves the
/// transduction relation (answer set + scores); may permute enumeration
/// order among exactly tied scores. Idempotent.
transducer::Transducer MinimizeTransducer(const transducer::Transducer& t,
                                          OptimizeStats* stats = nullptr);

/// The engine policy for `level` on `t`: kOff never, kOn always, kAuto
/// optimizes anything non-trivial (>= 2 states — a 1-state machine has
/// nothing to prune and the pass would only cost a copy).
bool ShouldOptimize(Level level, const transducer::Transducer& t);

/// Records the optimize.* metrics for one prune-equivalent pass executed
/// OUTSIDE this module — the fused prune-during-specialization of
/// transducer::CompositionCache computes the same reachable ∧
/// co-accessible cut without materializing the full product, and must
/// report it with the exact key set PruneTransducer would have (zero
/// deltas included; the stats schema cannot depend on the fusion).
void RecordPrunePass(const OptimizeStats& stats, int64_t elapsed_ns);

}  // namespace tms::optimize

#endif  // TMS_OPTIMIZE_TRANSDUCER_OPT_H_
