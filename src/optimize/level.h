// The optimization level every engine entry point understands.
//
// `off` runs queries exactly as written. `on` always runs the offline
// optimization pass (optimize/transducer_opt.h) before composition. `auto`
// lets the engine decide per query; today that means "optimize anything
// non-trivial", because the pass is near-linear and the composed-product
// prune pays for itself after a handful of subspace solves — the level
// exists so a future cost model can say no without an API change.
//
// This header is dependency-free on purpose: exec/engine_options.h embeds
// a Level, and everything from automata to serve includes that.

#ifndef TMS_OPTIMIZE_LEVEL_H_
#define TMS_OPTIMIZE_LEVEL_H_

#include <optional>
#include <string_view>

namespace tms::optimize {

enum class Level {
  kOff,   ///< never optimize
  kAuto,  ///< engine policy (see ShouldOptimize in transducer_opt.h)
  kOn,    ///< always optimize
};

/// "off" / "auto" / "on".
constexpr const char* LevelName(Level level) {
  switch (level) {
    case Level::kOff:
      return "off";
    case Level::kAuto:
      return "auto";
    case Level::kOn:
      return "on";
  }
  return "off";
}

/// Inverse of LevelName; nullopt on anything else.
inline std::optional<Level> ParseLevel(std::string_view s) {
  if (s == "off") return Level::kOff;
  if (s == "auto") return Level::kAuto;
  if (s == "on") return Level::kOn;
  return std::nullopt;
}

}  // namespace tms::optimize

#endif  // TMS_OPTIMIZE_LEVEL_H_
