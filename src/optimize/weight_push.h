// Weight pushing in the max-plus (tropical) semiring — Mohri's
// reweighting, specialized to the log-domain scores this system ranks by.
//
// For an automaton with arc weights w(e), final weights f(q), and
// potentials φ(q) = the best (max-plus) completion weight from q to a
// final state, pushing replaces
//
//     w'(e)  = w(e) + φ(target(e)) − φ(source(e))
//     f'(q)  = f(q) − φ(q)
//     λ'     = λ + φ(initial)
//
// which preserves every accepted path's total weight EXACTLY in exact
// arithmetic (the per-path sum telescopes) and within 1e-12 relative
// error in doubles (documented tolerance, docs/OPTIMIZE.md). After the
// push every co-accessible state has potential 0, every arc weight on the
// co-accessible subgraph is ≤ 0, and the best completion from any state
// is 0 — i.e. the prefix weight of a partial path is an ADMISSIBLE bound
// on any completion, which is what makes pushed weights tight Viterbi/A*
// heuristics.
//
// The engines' query transducers are boolean-weighted (all probability
// mass lives in the Markov sequence), so the engine pipeline consumes
// exactly the degenerate case of this machinery: φ(q) = −inf ⇔ q cannot
// reach a final state ⇔ q is dead — the dead-state prune of
// optimize/transducer_opt.h IS the φ = −inf cut of this push. The general
// numeric form lives here for weighted artifacts and is verified by the
// metamorphic suite (path preservation, zero-potential invariant,
// idempotence) in tests/optimize_equivalence_test.cc.

#ifndef TMS_OPTIMIZE_WEIGHT_PUSH_H_
#define TMS_OPTIMIZE_WEIGHT_PUSH_H_

#include <limits>
#include <vector>

#include "common/status.h"
#include "transducer/transducer.h"

namespace tms::optimize {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// A weighted automaton over the max-plus semiring (log-domain scores:
/// ⊕ = max, ⊗ = +, identity −inf / 0).
struct WeightedAutomaton {
  struct Arc {
    int source = 0;
    int target = 0;
    double weight = 0.0;
  };

  int num_states = 0;
  int initial = 0;
  double initial_weight = 0.0;  ///< λ — weight charged for entering
  std::vector<Arc> arcs;
  /// f(q); kNegInf = non-final.
  std::vector<double> final_weight;

  /// A path's total = λ + Σ w(arc) + f(last); best over accepting paths.
};

/// φ(q) = the max-plus shortest distance from q to a final state (best
/// completion weight), kNegInf for dead states. Bellman–Ford over the
/// reversed arcs; returns an error if relaxation has not converged after
/// num_states rounds (a reachable positive-weight cycle — the pushed
/// automaton would not exist).
StatusOr<std::vector<double>> DistanceToFinal(const WeightedAutomaton& a);

/// Pushes weights toward the initial state (see the file comment). Arcs
/// and final weights of states with φ = kNegInf (dead states) are left
/// untouched — they lie on no accepting path, so no invariant constrains
/// them; callers prune them instead. Fails iff DistanceToFinal does.
Status PushWeights(WeightedAutomaton* a);

/// The boolean-weighted view of a transducer: every arc weight 0, final
/// weight 0 for accepting states and kNegInf otherwise. One arc per
/// transducer edge, in (state, symbol, edge) order.
WeightedAutomaton BooleanWeighted(const transducer::Transducer& t);

}  // namespace tms::optimize

#endif  // TMS_OPTIMIZE_WEIGHT_PUSH_H_
