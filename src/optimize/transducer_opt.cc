#include "optimize/transducer_opt.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "obs/obs.h"
#include "optimize/weight_push.h"

namespace tms::optimize {

using automata::StateId;
using transducer::Edge;
using transducer::Transducer;

namespace {

int CountEdges(const Transducer& t) {
  int edges = 0;
  const int sigma = static_cast<int>(t.input_alphabet().size());
  for (StateId q = 0; q < t.num_states(); ++q) {
    for (int s = 0; s < sigma; ++s) {
      edges += static_cast<int>(t.Next(q, static_cast<Symbol>(s)).size());
    }
  }
  return edges;
}

/// Records the pass's metrics. Every counter and histogram is touched on
/// every pass — zero deltas included — so the stats-key schema does not
/// depend on whether the pass found anything to remove. (Exposed as
/// RecordPrunePass for the fused prune in transducer/composition_cache.cc,
/// which performs a prune-equivalent cut without calling PruneTransducer.)
void RecordPass(const OptimizeStats& stats, int64_t elapsed_ns) {
  TMS_OBS_COUNT("optimize.passes", 1);
  TMS_OBS_COUNT("optimize.states_removed",
                stats.states_unreachable + stats.states_dead);
  TMS_OBS_COUNT("optimize.edges_removed",
                stats.edges_before - stats.edges_after);
  TMS_OBS_COUNT("optimize.states_merged", stats.states_merged);
  TMS_OBS_HISTOGRAM("optimize.optimize_ns", elapsed_ns);
  TMS_OBS_HISTOGRAM("optimize.states_before", stats.states_before);
  TMS_OBS_HISTOGRAM("optimize.states_after", stats.states_after);
  (void)stats;
  (void)elapsed_ns;
}

/// The prune, uninstrumented: MinimizeTransducer runs it as its first
/// stage and must report ONE pass, not two.
Transducer PruneImpl(const Transducer& t, OptimizeStats* stats) {
  const int n = t.num_states();
  const int sigma = static_cast<int>(t.input_alphabet().size());
  stats->states_before = n;
  stats->edges_before = CountEdges(t);

  // Reachability from the initial state.
  std::vector<bool> reachable(static_cast<size_t>(n), false);
  std::deque<StateId> frontier{t.initial()};
  reachable[static_cast<size_t>(t.initial())] = true;
  while (!frontier.empty()) {
    StateId q = frontier.front();
    frontier.pop_front();
    for (int s = 0; s < sigma; ++s) {
      for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
        if (!reachable[static_cast<size_t>(e.target)]) {
          reachable[static_cast<size_t>(e.target)] = true;
          frontier.push_back(e.target);
        }
      }
    }
  }

  // Co-accessibility is the φ > −inf cut of the boolean-weighted max-plus
  // push: φ(q) = 0 iff q reaches an accepting state (weight_push.h).
  StatusOr<std::vector<double>> phi_or = DistanceToFinal(BooleanWeighted(t));
  TMS_CHECK(phi_or.ok());  // boolean weights: no positive cycles exist
  const std::vector<double>& phi = *phi_or;

  // Keep reachable ∧ co-accessible, renumbered monotonically so the
  // ascending-cell backtrack scan order is preserved.
  std::vector<StateId> new_id(static_cast<size_t>(n), -1);
  int kept = 0;
  for (StateId q = 0; q < n; ++q) {
    const bool live =
        reachable[static_cast<size_t>(q)] && phi[static_cast<size_t>(q)] != kNegInf;
    if (live) {
      new_id[static_cast<size_t>(q)] = kept++;
    } else if (!reachable[static_cast<size_t>(q)]) {
      ++stats->states_unreachable;
    } else {
      ++stats->states_dead;
    }
  }

  if (kept == 0) {
    // Empty language (the initial state itself is dead). Canonical empty
    // transducer: one non-accepting state, no edges.
    Transducer out(t.input_alphabet(), t.output_alphabet(), 1);
    stats->states_after = 1;
    stats->edges_after = 0;
    return out;
  }

  Transducer out(t.input_alphabet(), t.output_alphabet(), kept);
  out.SetInitial(new_id[static_cast<size_t>(t.initial())]);
  for (StateId q = 0; q < n; ++q) {
    if (new_id[static_cast<size_t>(q)] < 0) continue;
    out.SetAccepting(new_id[static_cast<size_t>(q)], t.IsAccepting(q));
    for (int s = 0; s < sigma; ++s) {
      for (const Edge& e : t.Next(q, static_cast<Symbol>(s))) {
        if (new_id[static_cast<size_t>(e.target)] < 0) continue;  // dead arc
        TMS_CHECK(out.AddTransition(new_id[static_cast<size_t>(q)],
                                    static_cast<Symbol>(s),
                                    new_id[static_cast<size_t>(e.target)],
                                    e.output)
                      .ok());
      }
    }
  }
  stats->states_after = out.num_states();
  stats->edges_after = CountEdges(out);
  TMS_CHECK(out.Validate().ok());
  return out;
}

/// The bisimulation quotient of an already-pruned transducer. `split`
/// lists classes forced into singletons by emission conflicts (see
/// MinimizeTransducer).
struct Quotient {
  std::vector<int> class_of;           // pruned state -> class id
  std::vector<std::set<int>> classes;  // class id -> members
};

Quotient RefinePartition(const Transducer& t,
                         const std::set<int>& singletons) {
  const int n = t.num_states();
  const int sigma = static_cast<int>(t.input_alphabet().size());
  Quotient q;
  q.class_of.assign(static_cast<size_t>(n), 0);
  // Initial partition: accepting vs non-accepting, with conflict-forced
  // states peeled into singletons up front.
  {
    std::map<std::tuple<bool, bool, int>, int> cls;
    for (StateId s = 0; s < n; ++s) {
      const bool single = singletons.count(static_cast<int>(s)) > 0;
      auto key = std::make_tuple(t.IsAccepting(s), single,
                                 single ? static_cast<int>(s) : -1);
      auto [it, inserted] = cls.emplace(key, static_cast<int>(cls.size()));
      q.class_of[static_cast<size_t>(s)] = it->second;
    }
  }
  // Refine until stable: the signature of a state is its current class
  // plus the set of (symbol, output, class(target)) triples. Outputs are
  // part of the signature, so merged states emit identically edge-for-
  // edge modulo target class. Grouping by (old class, signature) only
  // ever refines the partition, so it is stable exactly when the class
  // count stops growing.
  size_t num_classes =
      q.class_of.empty()
          ? 0
          : static_cast<size_t>(*std::max_element(q.class_of.begin(),
                                                  q.class_of.end())) +
                1;
  for (;;) {
    std::map<std::pair<int, std::set<std::tuple<int, Str, int>>>, int> next;
    std::vector<int> next_class(static_cast<size_t>(n), 0);
    for (StateId s = 0; s < n; ++s) {
      std::set<std::tuple<int, Str, int>> sig;
      for (int sym = 0; sym < sigma; ++sym) {
        for (const Edge& e : t.Next(s, static_cast<Symbol>(sym))) {
          sig.emplace(sym, e.output,
                      q.class_of[static_cast<size_t>(e.target)]);
        }
      }
      auto key = std::make_pair(q.class_of[static_cast<size_t>(s)],
                                std::move(sig));
      auto [it, inserted] = next.emplace(std::move(key),
                                         static_cast<int>(next.size()));
      next_class[static_cast<size_t>(s)] = it->second;
    }
    const size_t next_count = next.size();
    q.class_of = std::move(next_class);
    if (next_count == num_classes) break;
    num_classes = next_count;
  }
  q.classes.assign(num_classes, {});
  for (StateId s = 0; s < n; ++s) {
    q.classes[static_cast<size_t>(q.class_of[static_cast<size_t>(s)])].insert(
        static_cast<int>(s));
  }
  return q;
}

}  // namespace

Transducer PruneTransducer(const Transducer& t, OptimizeStats* stats) {
  Stopwatch sw;
  OptimizeStats local;
  Transducer out = PruneImpl(t, &local);
  RecordPass(local, sw.ElapsedNanos());
  if (stats != nullptr) *stats = local;
  return out;
}

Transducer MinimizeTransducer(const Transducer& t, OptimizeStats* stats) {
  Stopwatch sw;
  OptimizeStats local;
  Transducer pruned = PruneImpl(t, &local);
  const int n = pruned.num_states();
  const int sigma = static_cast<int>(pruned.input_alphabet().size());

  // Bisimulation quotient with an emission-conflict-split loop. A merge of
  // targets q3 ~ q5 is invalid when some source has edges to both on the
  // same symbol with DIFFERENT outputs — the quotient would need two
  // outputs on one (class, symbol, class) triple, which deterministic
  // emission forbids. On conflict the offending target class is split into
  // singletons and refinement reruns; the partition strictly refines each
  // round, so the loop terminates (worst case: all singletons = no merge).
  std::set<int> singletons;
  Quotient q;
  for (;;) {
    q = RefinePartition(pruned, singletons);
    std::set<int> conflicted;
    for (StateId s = 0; s < n; ++s) {
      for (int sym = 0; sym < sigma; ++sym) {
        std::map<int, const Str*> out_by_class;
        for (const Edge& e : pruned.Next(s, static_cast<Symbol>(sym))) {
          const int tc = q.class_of[static_cast<size_t>(e.target)];
          auto [it, inserted] = out_by_class.emplace(tc, &e.output);
          if (!inserted && !(*it->second == e.output)) conflicted.insert(tc);
        }
      }
    }
    if (conflicted.empty()) break;
    for (int c : conflicted) {
      for (int member : q.classes[static_cast<size_t>(c)]) {
        singletons.insert(member);
      }
    }
  }

  // Stable renumbering: classes ordered by smallest member (in the pruned
  // numbering, which is itself monotone in the input numbering).
  std::vector<int> order(q.classes.size());
  for (size_t c = 0; c < q.classes.size(); ++c) order[c] = static_cast<int>(c);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return *q.classes[static_cast<size_t>(a)].begin() <
           *q.classes[static_cast<size_t>(b)].begin();
  });
  std::vector<StateId> new_id(q.classes.size(), -1);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    new_id[static_cast<size_t>(order[rank])] = static_cast<StateId>(rank);
  }

  Transducer out(pruned.input_alphabet(), pruned.output_alphabet(),
                 static_cast<int>(q.classes.size()));
  out.SetInitial(new_id[static_cast<size_t>(
      q.class_of[static_cast<size_t>(pruned.initial())])]);
  for (size_t c = 0; c < q.classes.size(); ++c) {
    const StateId rep = static_cast<StateId>(*q.classes[c].begin());
    out.SetAccepting(new_id[c], pruned.IsAccepting(rep));
    // Merged states share their (symbol, output, target-class) edge sets,
    // so the representative's edges are the class's edges. Duplicate adds
    // of the same triple+output are idempotent in AddTransition.
    for (int sym = 0; sym < sigma; ++sym) {
      for (const Edge& e : pruned.Next(rep, static_cast<Symbol>(sym))) {
        TMS_CHECK(out.AddTransition(
                         new_id[c], static_cast<Symbol>(sym),
                         new_id[static_cast<size_t>(
                             q.class_of[static_cast<size_t>(e.target)])],
                         e.output)
                      .ok());
      }
    }
  }
  TMS_CHECK(out.Validate().ok());

  local.states_merged = n - static_cast<int>(q.classes.size());
  local.states_after = out.num_states();
  local.edges_after = CountEdges(out);
  RecordPass(local, sw.ElapsedNanos());
  if (stats != nullptr) *stats = local;
  return out;
}

bool ShouldOptimize(Level level, const Transducer& t) {
  switch (level) {
    case Level::kOff:
      return false;
    case Level::kOn:
      return true;
    case Level::kAuto:
      return t.num_states() >= 2;
  }
  return false;
}

void RecordPrunePass(const OptimizeStats& stats, int64_t elapsed_ns) {
  RecordPass(stats, elapsed_ns);
}

}  // namespace tms::optimize
