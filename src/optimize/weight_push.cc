#include "optimize/weight_push.h"

#include <cmath>
#include <utility>

namespace tms::optimize {

using automata::StateId;

StatusOr<std::vector<double>> DistanceToFinal(const WeightedAutomaton& a) {
  const size_t n = static_cast<size_t>(a.num_states);
  std::vector<double> phi(n, kNegInf);
  for (size_t q = 0; q < n && q < a.final_weight.size(); ++q) {
    phi[q] = a.final_weight[q];
  }
  // Bellman–Ford over reversed arcs: relax φ(source) against
  // w + φ(target). With n states every simple path is relaxed after n-1
  // rounds; a change in round n means a reachable cycle keeps improving
  // the max — a positive-weight cycle, under which no pushed automaton
  // exists (best completion weights are unbounded).
  for (int round = 0; round < a.num_states; ++round) {
    bool changed = false;
    for (const WeightedAutomaton::Arc& arc : a.arcs) {
      const double via = arc.weight + phi[static_cast<size_t>(arc.target)];
      if (via > phi[static_cast<size_t>(arc.source)]) {
        phi[static_cast<size_t>(arc.source)] = via;
        changed = true;
      }
    }
    if (!changed) return phi;
  }
  // One more pass to distinguish "converged exactly at round n-1" from a
  // genuinely divergent instance.
  for (const WeightedAutomaton::Arc& arc : a.arcs) {
    const double via = arc.weight + phi[static_cast<size_t>(arc.target)];
    if (via > phi[static_cast<size_t>(arc.source)]) {
      return Status::InvalidArgument(
          "weight pushing: positive-weight cycle reaches a final state; "
          "completion weights diverge");
    }
  }
  return phi;
}

Status PushWeights(WeightedAutomaton* a) {
  StatusOr<std::vector<double>> phi_or = DistanceToFinal(*a);
  if (!phi_or.ok()) return phi_or.status();
  const std::vector<double>& phi = *phi_or;

  const double phi_initial = phi[static_cast<size_t>(a->initial)];
  if (phi_initial == kNegInf) {
    // The language is empty: no accepting path constrains anything, so the
    // push is the identity (λ absorbing −inf would poison later pushes).
    return Status::Ok();
  }
  a->initial_weight += phi_initial;
  for (WeightedAutomaton::Arc& arc : a->arcs) {
    const double ps = phi[static_cast<size_t>(arc.source)];
    const double pt = phi[static_cast<size_t>(arc.target)];
    // Dead endpoints (φ = −inf) lie on no accepting path; leave those arcs
    // untouched rather than writing NaNs (−inf − −inf).
    if (ps == kNegInf || pt == kNegInf) continue;
    arc.weight += pt - ps;
  }
  for (size_t q = 0; q < a->final_weight.size(); ++q) {
    if (phi[q] == kNegInf) continue;
    a->final_weight[q] -= phi[q];
  }
  return Status::Ok();
}

WeightedAutomaton BooleanWeighted(const transducer::Transducer& t) {
  WeightedAutomaton a;
  a.num_states = t.num_states();
  a.initial = static_cast<int>(t.initial());
  a.final_weight.assign(static_cast<size_t>(t.num_states()), kNegInf);
  for (StateId q = 0; q < t.num_states(); ++q) {
    if (t.IsAccepting(q)) a.final_weight[static_cast<size_t>(q)] = 0.0;
    for (Symbol s = 0; s < static_cast<Symbol>(t.input_alphabet().size());
         ++s) {
      for (const transducer::Edge& e : t.Next(q, s)) {
        a.arcs.push_back({static_cast<int>(q), static_cast<int>(e.target),
                          0.0});
      }
    }
  }
  return a;
}

}  // namespace tms::optimize
