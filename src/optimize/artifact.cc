#include "optimize/artifact.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <utility>

#include "io/text_format.h"
#include "obs/obs.h"

namespace tms::optimize {

namespace {

constexpr std::string_view kMagic = "# tms-opt-artifact v1";
constexpr std::string_view kSourcePrefix = "# source-fp ";
constexpr std::string_view kBodyPrefix = "# body-fp ";

/// Returns the first line of `text` (without the newline) and advances
/// `text` past it.
std::string_view TakeLine(std::string_view* text) {
  const size_t eol = text->find('\n');
  std::string_view line =
      eol == std::string_view::npos ? *text : text->substr(0, eol);
  *text = eol == std::string_view::npos ? std::string_view()
                                        : text->substr(eol + 1);
  return line;
}

Status Reject(std::string msg) {
  TMS_OBS_COUNT("optimize.artifact_rejected", 1);
  return Status::InvalidArgument("optimize artifact: " + std::move(msg));
}

}  // namespace

std::string Fingerprint(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : bytes) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return std::string(buf);
}

std::string FormatArtifact(const transducer::Transducer& source,
                           const transducer::Transducer& optimized) {
  const std::string body = io::FormatTransducer(optimized);
  std::string out;
  out.reserve(body.size() + 96);
  out.append(kMagic).append("\n");
  out.append(kSourcePrefix)
      .append(Fingerprint(io::FormatTransducer(source)))
      .append("\n");
  out.append(kBodyPrefix).append(Fingerprint(body)).append("\n");
  out.append(body);
  return out;
}

StatusOr<transducer::Transducer> ParseArtifact(
    std::string_view text, const transducer::Transducer& source) {
  std::string_view rest = text;
  if (TakeLine(&rest) != kMagic) return Reject("bad or missing magic line");

  std::string_view source_line = TakeLine(&rest);
  if (source_line.substr(0, kSourcePrefix.size()) != kSourcePrefix) {
    return Reject("missing source-fp line");
  }
  const std::string_view source_fp = source_line.substr(kSourcePrefix.size());
  if (source_fp != Fingerprint(io::FormatTransducer(source))) {
    return Reject("source fingerprint mismatch (stale artifact?)");
  }

  std::string_view body_line = TakeLine(&rest);
  if (body_line.substr(0, kBodyPrefix.size()) != kBodyPrefix) {
    return Reject("missing body-fp line");
  }
  if (body_line.substr(kBodyPrefix.size()) != Fingerprint(rest)) {
    return Reject("body fingerprint mismatch (corrupted artifact)");
  }

  StatusOr<transducer::Transducer> parsed = io::ParseTransducer(rest);
  if (!parsed.ok()) return Reject("body parse: " + parsed.status().message());
  if (Status valid = parsed->Validate(); !valid.ok()) {
    return Reject("body validate: " + valid.message());
  }
  // The artifact must speak the source's alphabets: downstream code swaps
  // it in for the source transducer unconditionally.
  if (!(parsed->input_alphabet() == source.input_alphabet()) ||
      !(parsed->output_alphabet() == source.output_alphabet())) {
    return Reject("alphabet mismatch against source transducer");
  }
  return parsed;
}

Status SaveArtifactFile(const std::string& path,
                        const transducer::Transducer& source,
                        const transducer::Transducer& optimized) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Internal("cannot write artifact: " + path);
  out << FormatArtifact(source, optimized);
  out.close();
  if (!out) return Status::Internal("short write on artifact: " + path);
  TMS_OBS_COUNT("optimize.artifact_saved", 1);
  return Status::Ok();
}

StatusOr<transducer::Transducer> LoadArtifactFile(
    const std::string& path, const transducer::Transducer& source) {
  StatusOr<std::string> text = io::ReadFile(path);
  if (!text.ok()) return text.status();  // quiet NotFound: cold start
  StatusOr<transducer::Transducer> parsed = ParseArtifact(*text, source);
  if (parsed.ok()) TMS_OBS_COUNT("optimize.artifact_loaded", 1);
  return parsed;
}

}  // namespace tms::optimize
