// Binary model snapshots — the "# tms-model v1" format (docs/DISTRIBUTED.md).
//
// A snapshot is a fixed-width little-endian image of a parsed model,
// fingerprinted end to end so that any truncation or bit flip after the
// magic line is rejected loudly (the loader then falls back to the text
// format). Layout:
//
//     "# tms-model v1\n"          15-byte magic (also a valid text comment)
//     u64  fp                     FNV-1a over every byte after this field
//     u8   kind                   1 = markov-sequence, 2 = transducer
//     u8   version                payload layout version (currently 1)
//     u64  source_fp              FNV-1a of the source *text* bytes the
//                                 snapshot was built from (0 = standalone)
//     u64  payload_size
//     payload                     kind-specific, see binary_format.cc
//
// The file must be exactly this long — trailing bytes are corruption.
// All multi-byte integers are little-endian and naturally mmap-able;
// doubles are IEEE-754 bit images, so decode(encode(m)) reproduces the
// exact probabilities and `io::FormatMarkovSequence` output of `m`.
//
// The snapshot *sibling* flow mirrors src/optimize's artifact files: next
// to a text model `m.tms` the loader keeps `m.tms.tmsb`. A sibling whose
// source_fp matches the current text bytes is decoded instead of parsing
// the text (counter io.snapshot_loaded); a stale or corrupt sibling is
// rejected (io.snapshot_rejected) and rebuilt best-effort after the text
// parse (io.snapshot_saved). This is what makes tms_server cold-start
// stop re-parsing text.

#ifndef TMS_IO_BINARY_FORMAT_H_
#define TMS_IO_BINARY_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::io {

/// The snapshot magic line. Starts with '#' so a binary file fed to the
/// text parser reads as a comment followed by garbage — a clean error,
/// never a half-parsed model.
inline constexpr std::string_view kBinaryMagic = "# tms-model v1\n";

/// 64-bit FNV-1a over `bytes` (the raw integer behind
/// optimize::Fingerprint's hex spelling).
uint64_t Fnv1a64(std::string_view bytes);

/// True iff `bytes` starts with the snapshot magic.
bool LooksBinary(std::string_view bytes);

/// Encodes a Markov sequence. Distinct transition steps are stored once
/// with per-index step ids, so a homogeneous length-n snapshot costs one
/// σ² matrix; exact rationals (has_exact()) are preserved as strings.
std::string EncodeMarkovSequence(const markov::MarkovSequence& mu,
                                 uint64_t source_fp = 0);

/// Encodes a transducer (edge insertion order preserved).
std::string EncodeTransducer(const transducer::Transducer& t,
                             uint64_t source_fp = 0);

/// A decoded snapshot: exactly one of the two models is set.
struct DecodedModel {
  uint64_t source_fp = 0;
  std::optional<markov::MarkovSequence> markov;
  std::optional<transducer::Transducer> transducer;
};

/// Decodes a snapshot, verifying the fingerprint first: truncated,
/// extended, or bit-flipped input is InvalidArgument (counted as
/// io.snapshot_rejected), never a mangled model.
StatusOr<DecodedModel> DecodeModel(std::string_view bytes);

/// Where the snapshot sibling of text model `path` lives: `path` + ".tmsb".
std::string SnapshotPath(const std::string& path);

/// Loads a Markov sequence model file through the snapshot flow described
/// above. `path` may itself be a binary snapshot (loaded directly). For a
/// text file, a matching `.tmsb` sibling short-circuits the parse; with
/// `refresh_snapshot`, a missing/stale/corrupt sibling is rewritten
/// best-effort after parsing (failures to write are ignored).
StatusOr<markov::MarkovSequence> LoadMarkovSequenceFile(
    const std::string& path, bool refresh_snapshot);

}  // namespace tms::io

#endif  // TMS_IO_BINARY_FORMAT_H_
