#include "io/binary_format.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "io/text_format.h"
#include "numeric/rational.h"
#include "obs/obs.h"
#include "strings/alphabet.h"

namespace tms::io {

namespace {

constexpr uint8_t kKindMarkov = 1;
constexpr uint8_t kKindTransducer = 2;
constexpr uint8_t kPayloadVersion = 1;

// ---- little-endian byte writer ------------------------------------------

void PutU8(uint8_t v, std::string* out) {
  out->push_back(static_cast<char>(v));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutF64(double v, std::string* out) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits, out);
}

void PutString(std::string_view s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

// ---- bounds-checked reader ----------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view bytes) : rest_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (rest_.size() < 1) return false;
    *v = static_cast<uint8_t>(rest_[0]);
    rest_.remove_prefix(1);
    return true;
  }

  bool ReadU32(uint32_t* v) {
    uint64_t wide;
    if (!ReadLE(4, &wide)) return false;
    *v = static_cast<uint32_t>(wide);
    return true;
  }

  bool ReadU64(uint64_t* v) { return ReadLE(8, v); }

  bool ReadF64(double* v) {
    uint64_t bits;
    if (!ReadLE(8, &bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  // Strings and alphabets are small; cap lengths at what the remaining
  // input could possibly hold so a corrupt length can't trigger a huge
  // allocation before the bounds check fires.
  bool ReadString(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (len > rest_.size()) return false;
    s->assign(rest_.substr(0, len));
    rest_.remove_prefix(len);
    return true;
  }

  bool empty() const { return rest_.empty(); }
  size_t remaining() const { return rest_.size(); }

 private:
  bool ReadLE(int width, uint64_t* v) {
    if (rest_.size() < static_cast<size_t>(width)) return false;
    uint64_t out = 0;
    for (int i = 0; i < width; ++i) {
      out |= static_cast<uint64_t>(static_cast<unsigned char>(rest_[i]))
             << (8 * i);
    }
    rest_.remove_prefix(width);
    *v = out;
    return true;
  }

  std::string_view rest_;
};

Status Reject(std::string msg) {
  TMS_OBS_COUNT("io.snapshot_rejected", 1);
  return Status::InvalidArgument("binary model: " + std::move(msg));
}

void PutAlphabet(const Alphabet& alphabet, std::string* out) {
  PutU32(static_cast<uint32_t>(alphabet.size()), out);
  for (const std::string& name : alphabet.names()) PutString(name, out);
}

bool ReadAlphabet(Reader* r, StatusOr<Alphabet>* alphabet) {
  uint32_t size;
  if (!r->ReadU32(&size)) return false;
  std::vector<std::string> names;
  names.reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    std::string name;
    if (!r->ReadString(&name)) return false;
    names.push_back(std::move(name));
  }
  *alphabet = Alphabet::FromNames(names);
  return true;
}

// Wraps a kind-specific payload in the fingerprinted container.
std::string Seal(uint8_t kind, uint64_t source_fp, std::string payload) {
  std::string body;
  body.reserve(payload.size() + 18);
  PutU8(kind, &body);
  PutU8(kPayloadVersion, &body);
  PutU64(source_fp, &body);
  PutU64(payload.size(), &body);
  body += payload;

  std::string out;
  out.reserve(kBinaryMagic.size() + 8 + body.size());
  out.append(kBinaryMagic);
  PutU64(Fnv1a64(body), &out);
  out += body;
  return out;
}

// ---- Markov sequence payload --------------------------------------------
//
//   alphabet                     (u32 count, strings)
//   u32 length                   n
//   u8  has_exact
//   |Σ| f64                      initial distribution
//   u32 distinct_steps
//   (n-1) u32                    step id per transition index
//   distinct_steps × σ² f64      dense matrices, row-major
//   if has_exact:
//     |Σ| strings                exact initial rationals
//     (n-1) × σ² strings         exact transition rationals, per index

std::string EncodeMarkovPayload(const markov::MarkovSequence& mu) {
  const size_t sigma = mu.nodes().size();
  const int n = mu.length();
  std::string payload;
  PutAlphabet(mu.nodes(), &payload);
  PutU32(static_cast<uint32_t>(n), &payload);
  PutU8(mu.has_exact() ? 1 : 0, &payload);
  for (size_t s = 0; s < sigma; ++s) {
    PutF64(mu.Initial(static_cast<Symbol>(s)), &payload);
  }
  // Distinct steps in first-appearance order, indices mapped to step ids —
  // this is what keeps a homogeneous length-n snapshot at one σ² matrix.
  std::vector<const void*> distinct;
  std::vector<uint32_t> step_of_index(n > 1 ? n - 1 : 0);
  std::vector<int> representative;  // a transition index using each step
  for (int i = 1; i < n; ++i) {
    const void* id = mu.TransitionStepIdentity(i);
    uint32_t step = 0;
    for (; step < distinct.size(); ++step) {
      if (distinct[step] == id) break;
    }
    if (step == distinct.size()) {
      distinct.push_back(id);
      representative.push_back(i);
    }
    step_of_index[i - 1] = step;
  }
  PutU32(static_cast<uint32_t>(distinct.size()), &payload);
  for (uint32_t step : step_of_index) PutU32(step, &payload);
  for (int i : representative) {
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t t = 0; t < sigma; ++t) {
        PutF64(mu.Transition(i, static_cast<Symbol>(s),
                             static_cast<Symbol>(t)),
               &payload);
      }
    }
  }
  if (mu.has_exact()) {
    for (size_t s = 0; s < sigma; ++s) {
      PutString(mu.InitialExact(static_cast<Symbol>(s)).ToString(), &payload);
    }
    for (int i = 1; i < n; ++i) {
      for (size_t s = 0; s < sigma; ++s) {
        for (size_t t = 0; t < sigma; ++t) {
          PutString(mu.TransitionExact(i, static_cast<Symbol>(s),
                                       static_cast<Symbol>(t))
                        .ToString(),
                    &payload);
        }
      }
    }
  }
  return payload;
}

StatusOr<markov::MarkovSequence> DecodeMarkovPayload(Reader* r) {
  StatusOr<Alphabet> alphabet = Status::Internal("unread");
  if (!ReadAlphabet(r, &alphabet)) return Reject("markov payload truncated");
  if (!alphabet.ok()) return Reject("bad alphabet: " +
                                    alphabet.status().ToString());
  const size_t sigma = alphabet->size();
  uint32_t length;
  uint8_t has_exact;
  if (!r->ReadU32(&length) || !r->ReadU8(&has_exact)) {
    return Reject("markov payload truncated");
  }
  if (length == 0) return Reject("zero-length markov sequence");
  std::vector<double> initial(sigma);
  for (double& v : initial) {
    if (!r->ReadF64(&v)) return Reject("markov payload truncated");
  }
  uint32_t distinct;
  if (!r->ReadU32(&distinct)) return Reject("markov payload truncated");
  std::vector<uint32_t> step_of_index(length - 1);
  for (uint32_t& step : step_of_index) {
    if (!r->ReadU32(&step)) return Reject("markov payload truncated");
    if (step >= distinct) return Reject("step id out of range");
  }
  std::vector<std::vector<double>> steps(distinct);
  for (auto& dense : steps) {
    dense.resize(sigma * sigma);
    for (double& v : dense) {
      if (!r->ReadF64(&v)) return Reject("markov payload truncated");
    }
  }
  if (has_exact) {
    std::vector<numeric::Rational> exact_initial;
    exact_initial.reserve(sigma);
    std::string token;
    for (size_t s = 0; s < sigma; ++s) {
      if (!r->ReadString(&token)) return Reject("markov payload truncated");
      auto rat = numeric::Rational::FromString(token);
      if (!rat.ok()) return Reject("bad rational: " + token);
      exact_initial.push_back(*std::move(rat));
    }
    std::vector<std::vector<numeric::Rational>> exact_transitions(length - 1);
    for (auto& matrix : exact_transitions) {
      matrix.reserve(sigma * sigma);
      for (size_t cell = 0; cell < sigma * sigma; ++cell) {
        if (!r->ReadString(&token)) return Reject("markov payload truncated");
        auto rat = numeric::Rational::FromString(token);
        if (!rat.ok()) return Reject("bad rational: " + token);
        matrix.push_back(*std::move(rat));
      }
    }
    return markov::MarkovSequence::CreateExact(*std::move(alphabet),
                                               std::move(exact_initial),
                                               std::move(exact_transitions));
  }
  if (distinct == 1 && length > 1) {
    return markov::MarkovSequence::CreateHomogeneous(
        *std::move(alphabet), std::move(initial), std::move(steps[0]),
        static_cast<int>(length));
  }
  std::vector<std::vector<double>> transitions;
  transitions.reserve(step_of_index.size());
  for (uint32_t step : step_of_index) transitions.push_back(steps[step]);
  return markov::MarkovSequence::Create(*std::move(alphabet),
                                        std::move(initial),
                                        std::move(transitions));
}

// ---- transducer payload -------------------------------------------------
//
//   input alphabet, output alphabet
//   u32 num_states, u32 initial
//   num_states u8                accepting flags
//   u32 num_edges
//   per edge: u32 from, u32 symbol, u32 target, u32 len, len × u32 output

std::string EncodeTransducerPayload(const transducer::Transducer& t) {
  std::string payload;
  PutAlphabet(t.input_alphabet(), &payload);
  PutAlphabet(t.output_alphabet(), &payload);
  PutU32(static_cast<uint32_t>(t.num_states()), &payload);
  PutU32(static_cast<uint32_t>(t.initial()), &payload);
  for (int q = 0; q < t.num_states(); ++q) {
    PutU8(t.IsAccepting(q) ? 1 : 0, &payload);
  }
  std::string edges;
  uint32_t num_edges = 0;
  for (int q = 0; q < t.num_states(); ++q) {
    for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
      for (const transducer::Edge& e : t.Next(q, static_cast<Symbol>(s))) {
        PutU32(static_cast<uint32_t>(q), &edges);
        PutU32(static_cast<uint32_t>(s), &edges);
        PutU32(static_cast<uint32_t>(e.target), &edges);
        PutU32(static_cast<uint32_t>(e.output.size()), &edges);
        for (Symbol o : e.output) PutU32(static_cast<uint32_t>(o), &edges);
        ++num_edges;
      }
    }
  }
  PutU32(num_edges, &payload);
  payload += edges;
  return payload;
}

StatusOr<transducer::Transducer> DecodeTransducerPayload(Reader* r) {
  StatusOr<Alphabet> input = Status::Internal("unread");
  StatusOr<Alphabet> output = Status::Internal("unread");
  if (!ReadAlphabet(r, &input) || !ReadAlphabet(r, &output)) {
    return Reject("transducer payload truncated");
  }
  if (!input.ok()) return Reject("bad input alphabet: " +
                                 input.status().ToString());
  if (!output.ok()) return Reject("bad output alphabet: " +
                                  output.status().ToString());
  uint32_t num_states, initial;
  if (!r->ReadU32(&num_states) || !r->ReadU32(&initial)) {
    return Reject("transducer payload truncated");
  }
  if (initial >= num_states) return Reject("initial state out of range");
  transducer::Transducer t(*std::move(input), *std::move(output),
                           static_cast<int>(num_states));
  t.SetInitial(static_cast<automata::StateId>(initial));
  for (uint32_t q = 0; q < num_states; ++q) {
    uint8_t accepting;
    if (!r->ReadU8(&accepting)) return Reject("transducer payload truncated");
    if (accepting) t.SetAccepting(static_cast<automata::StateId>(q));
  }
  uint32_t num_edges;
  if (!r->ReadU32(&num_edges)) return Reject("transducer payload truncated");
  const size_t sigma = t.input_alphabet().size();
  const size_t omega = t.output_alphabet().size();
  for (uint32_t i = 0; i < num_edges; ++i) {
    uint32_t from, symbol, target, len;
    if (!r->ReadU32(&from) || !r->ReadU32(&symbol) || !r->ReadU32(&target) ||
        !r->ReadU32(&len)) {
      return Reject("transducer payload truncated");
    }
    if (from >= num_states || target >= num_states || symbol >= sigma) {
      return Reject("edge out of range");
    }
    Str out;
    out.reserve(len);
    for (uint32_t j = 0; j < len; ++j) {
      uint32_t o;
      if (!r->ReadU32(&o)) return Reject("transducer payload truncated");
      if (o >= omega) return Reject("edge output symbol out of range");
      out.push_back(static_cast<Symbol>(o));
    }
    Status added = t.AddTransition(static_cast<automata::StateId>(from),
                                   static_cast<Symbol>(symbol),
                                   static_cast<automata::StateId>(target),
                                   std::move(out));
    if (!added.ok()) return Reject("bad edge: " + added.ToString());
  }
  Status valid = t.Validate();
  if (!valid.ok()) return Reject("invalid transducer: " + valid.ToString());
  return t;
}

bool WriteFileBestEffort(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : bytes) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

bool LooksBinary(std::string_view bytes) {
  return bytes.substr(0, kBinaryMagic.size()) == kBinaryMagic;
}

std::string EncodeMarkovSequence(const markov::MarkovSequence& mu,
                                 uint64_t source_fp) {
  return Seal(kKindMarkov, source_fp, EncodeMarkovPayload(mu));
}

std::string EncodeTransducer(const transducer::Transducer& t,
                             uint64_t source_fp) {
  return Seal(kKindTransducer, source_fp, EncodeTransducerPayload(t));
}

StatusOr<DecodedModel> DecodeModel(std::string_view bytes) {
  if (!LooksBinary(bytes)) {
    // Deliberately NOT counted as a rejected snapshot: "not this format
    // at all" is dispatch, not corruption.
    return Status::InvalidArgument("binary model: missing magic");
  }
  Reader header(bytes.substr(kBinaryMagic.size()));
  uint64_t fp;
  if (!header.ReadU64(&fp)) return Reject("truncated header");
  // The fingerprint covers every remaining byte, so any truncation,
  // extension, or single-bit flip past the magic fails here.
  std::string_view body = bytes.substr(kBinaryMagic.size() + 8);
  if (Fnv1a64(body) != fp) return Reject("fingerprint mismatch");

  Reader r(body);
  uint8_t kind, version;
  uint64_t source_fp, payload_size;
  if (!r.ReadU8(&kind) || !r.ReadU8(&version) || !r.ReadU64(&source_fp) ||
      !r.ReadU64(&payload_size)) {
    return Reject("truncated header");
  }
  if (version != kPayloadVersion) return Reject("unsupported version");
  if (payload_size != r.remaining()) return Reject("payload size mismatch");

  DecodedModel model;
  model.source_fp = source_fp;
  if (kind == kKindMarkov) {
    auto mu = DecodeMarkovPayload(&r);
    if (!mu.ok()) return mu.status();
    if (!r.empty()) return Reject("trailing bytes after payload");
    model.markov = *std::move(mu);
    return model;
  }
  if (kind == kKindTransducer) {
    auto t = DecodeTransducerPayload(&r);
    if (!t.ok()) return t.status();
    if (!r.empty()) return Reject("trailing bytes after payload");
    model.transducer = *std::move(t);
    return model;
  }
  return Reject("unknown model kind");
}

std::string SnapshotPath(const std::string& path) { return path + ".tmsb"; }

StatusOr<markov::MarkovSequence> LoadMarkovSequenceFile(
    const std::string& path, bool refresh_snapshot) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();

  if (LooksBinary(*text)) {
    auto decoded = DecodeModel(*text);
    if (!decoded.ok()) return decoded.status();
    if (!decoded->markov) {
      return Status::InvalidArgument(path + ": not a markov-sequence model");
    }
    TMS_OBS_COUNT("io.snapshot_loaded", 1);
    return *std::move(decoded->markov);
  }

  const uint64_t source_fp = Fnv1a64(*text);
  const std::string snapshot_path = SnapshotPath(path);
  StatusOr<std::string> snapshot = ReadFile(snapshot_path);
  if (snapshot.ok() && LooksBinary(*snapshot)) {
    auto decoded = DecodeModel(*snapshot);
    if (decoded.ok() && decoded->markov &&
        decoded->source_fp == source_fp) {
      TMS_OBS_COUNT("io.snapshot_loaded", 1);
      return *std::move(decoded->markov);
    }
    // Stale (source text changed) or corrupt — fall back to the text and
    // rebuild below. Corruption was already counted by DecodeModel; count
    // staleness here so every fallback shows up in io.snapshot_rejected.
    if (decoded.ok()) TMS_OBS_COUNT("io.snapshot_rejected", 1);
  }

  auto mu = ParseMarkovSequence(*text);
  if (!mu.ok()) return mu.status();
  if (refresh_snapshot) {
    if (WriteFileBestEffort(snapshot_path,
                            EncodeMarkovSequence(*mu, source_fp))) {
      TMS_OBS_COUNT("io.snapshot_saved", 1);
    }
  }
  return mu;
}

}  // namespace tms::io
