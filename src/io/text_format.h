// Human-readable text formats for Markov sequences, transducers, and
// s-projectors — the serialization layer behind the tms_cli tool and a
// convenient interchange format for test fixtures.
//
// Markov sequence (probabilities are exact rationals, "7/10" or "1"):
//
//     markov-sequence
//     nodes r1a r1b la
//     length 3
//     initial r1a 7/10 la 3/10
//     transition 1 r1a -> la 9/10 r1a 1/10
//     transition 2 la -> la 1
//     ...
//     end
//
// Unlisted probabilities are zero; every listed distribution must sum to
// exactly 1. Transducer:
//
//     transducer
//     input r1a r1b la
//     output 1 2
//     states 2
//     initial 0
//     accepting 1
//     edge 0 la -> 1 :            # emits ε
//     edge 1 r1a -> 1 : 1         # emits "1"
//     end
//
// s-projector (regexes in the name-token syntax of automata/regex.h):
//
//     s-projector
//     alphabet a b c
//     prefix . *
//     pattern a +
//     suffix . *
//     end
//
// '#' starts a comment; blank lines are ignored.

#ifndef TMS_IO_TEXT_FORMAT_H_
#define TMS_IO_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "projector/sprojector.h"
#include "transducer/transducer.h"

namespace tms::io {

/// Parses a Markov sequence (exact probabilities retained).
StatusOr<markov::MarkovSequence> ParseMarkovSequence(std::string_view text);

/// Parses a transducer.
StatusOr<transducer::Transducer> ParseTransducer(std::string_view text);

/// Parses an s-projector.
StatusOr<projector::SProjector> ParseSProjector(std::string_view text);

/// Serializes a Markov sequence. Uses the exact rationals when available,
/// otherwise the exact dyadic value of each double.
std::string FormatMarkovSequence(const markov::MarkovSequence& mu);

/// Serializes a transducer.
std::string FormatTransducer(const transducer::Transducer& t);

/// Reads a whole file into a string.
StatusOr<std::string> ReadFile(const std::string& path);

/// The format keyword on the first non-comment line ("markov-sequence",
/// "transducer", or "s-projector"), for dispatching.
StatusOr<std::string> DetectFormat(std::string_view text);

}  // namespace tms::io

#endif  // TMS_IO_TEXT_FORMAT_H_
