#include "io/text_format.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "automata/regex.h"
#include "common/check.h"
#include "numeric/rational.h"

namespace tms::io {
namespace {

using numeric::Rational;

// Splits `text` into whitespace-token lines, dropping comments and blanks.
std::vector<std::vector<std::string>> TokenizeLines(std::string_view text) {
  std::vector<std::vector<std::string>> out;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::vector<std::string> parts;
    std::string token;
    while (tokens >> token) parts.push_back(token);
    if (!parts.empty()) out.push_back(std::move(parts));
  }
  return out;
}

Status Expect(bool cond, const std::string& message) {
  if (!cond) return Status::InvalidArgument(message);
  return Status::Ok();
}

StatusOr<int> ParseInt(const std::string& token) {
  try {
    size_t pos = 0;
    int value = std::stoi(token, &pos);
    if (pos != token.size()) {
      return Status::InvalidArgument("invalid integer: " + token);
    }
    return value;
  } catch (...) {
    return Status::InvalidArgument("invalid integer: " + token);
  }
}

// A probability literal: "a/b", an integer, or a decimal like "0.25"
// (decimals are converted to their exact decimal rational).
StatusOr<Rational> ParseProbability(const std::string& token) {
  size_t dot = token.find('.');
  if (dot == std::string::npos) return Rational::FromString(token);
  // <int>.<frac> → (int·10^k + frac) / 10^k.
  std::string digits = token.substr(0, dot) + token.substr(dot + 1);
  auto num = numeric::BigInt::FromString(digits.empty() ? "0" : digits);
  if (!num.ok()) {
    return Status::InvalidArgument("invalid probability literal: " + token);
  }
  numeric::BigInt den(1);
  const numeric::BigInt ten(10);
  for (size_t i = dot + 1; i < token.size(); ++i) den *= ten;
  return Rational(std::move(num).value(), std::move(den));
}

}  // namespace

StatusOr<markov::MarkovSequence> ParseMarkovSequence(std::string_view text) {
  auto lines = TokenizeLines(text);
  TMS_RETURN_IF_ERROR(Expect(
      !lines.empty() && lines[0][0] == "markov-sequence",
      "expected 'markov-sequence' header"));

  Alphabet nodes;
  int length = -1;
  std::vector<Rational> initial;
  std::vector<std::vector<Rational>> transitions;
  bool saw_end = false;

  for (size_t l = 1; l < lines.size(); ++l) {
    const auto& parts = lines[l];
    const std::string& keyword = parts[0];
    if (keyword == "end") {
      saw_end = true;
      TMS_RETURN_IF_ERROR(
          Expect(l + 1 == lines.size(), "content after 'end'"));
      break;
    }
    if (keyword == "nodes") {
      TMS_RETURN_IF_ERROR(Expect(nodes.size() == 0, "duplicate 'nodes'"));
      TMS_RETURN_IF_ERROR(Expect(parts.size() >= 2, "'nodes' needs names"));
      for (size_t i = 1; i < parts.size(); ++i) {
        if (nodes.Contains(parts[i])) {
          return Status::InvalidArgument("duplicate node: " + parts[i]);
        }
        nodes.Intern(parts[i]);
      }
      continue;
    }
    if (keyword == "length") {
      TMS_RETURN_IF_ERROR(Expect(parts.size() == 2, "'length' needs a value"));
      auto n = ParseInt(parts[1]);
      if (!n.ok()) return n.status();
      TMS_RETURN_IF_ERROR(Expect(*n >= 1, "length must be >= 1"));
      length = *n;
      initial.assign(nodes.size(), Rational());
      transitions.assign(static_cast<size_t>(length - 1),
                         std::vector<Rational>(nodes.size() * nodes.size()));
      TMS_RETURN_IF_ERROR(
          Expect(nodes.size() > 0, "'nodes' must precede 'length'"));
      continue;
    }
    if (keyword == "initial") {
      TMS_RETURN_IF_ERROR(Expect(length > 0, "'length' must precede 'initial'"));
      TMS_RETURN_IF_ERROR(Expect(parts.size() % 2 == 1,
                                 "'initial' expects node/prob pairs"));
      for (size_t i = 1; i + 1 < parts.size(); i += 2) {
        auto sym = nodes.Find(parts[i]);
        if (!sym.ok()) return sym.status();
        auto p = ParseProbability(parts[i + 1]);
        if (!p.ok()) return p.status();
        initial[static_cast<size_t>(*sym)] = *p;
      }
      continue;
    }
    if (keyword == "transition") {
      TMS_RETURN_IF_ERROR(
          Expect(length > 0, "'length' must precede 'transition'"));
      TMS_RETURN_IF_ERROR(Expect(parts.size() >= 6 && parts[3] == "->",
                                 "transition syntax: transition i from -> "
                                 "to p [to p ...]"));
      auto step = ParseInt(parts[1]);
      if (!step.ok()) return step.status();
      TMS_RETURN_IF_ERROR(Expect(*step >= 1 && *step < length,
                                 "transition step out of range"));
      auto from = nodes.Find(parts[2]);
      if (!from.ok()) return from.status();
      TMS_RETURN_IF_ERROR(Expect((parts.size() - 4) % 2 == 0,
                                 "transition expects to/prob pairs"));
      auto& matrix = transitions[static_cast<size_t>(*step - 1)];
      for (size_t i = 4; i + 1 < parts.size(); i += 2) {
        auto to = nodes.Find(parts[i]);
        if (!to.ok()) return to.status();
        auto p = ParseProbability(parts[i + 1]);
        if (!p.ok()) return p.status();
        matrix[static_cast<size_t>(*from) * nodes.size() +
               static_cast<size_t>(*to)] = *p;
      }
      continue;
    }
    return Status::InvalidArgument("unknown keyword: " + keyword);
  }
  TMS_RETURN_IF_ERROR(Expect(saw_end, "missing 'end'"));
  TMS_RETURN_IF_ERROR(Expect(length > 0, "missing 'length'"));

  // Rows with no mass at all get a self-loop so unreachable nodes do not
  // fail validation; track whether every distribution sums to exactly 1.
  const Rational one(1);
  bool exact = true;
  {
    Rational sum;
    for (const Rational& p : initial) sum += p;
    if (sum != one) exact = false;
  }
  for (auto& matrix : transitions) {
    for (size_t s = 0; s < nodes.size(); ++s) {
      Rational sum;
      for (size_t t = 0; t < nodes.size(); ++t) {
        sum += matrix[s * nodes.size() + t];
      }
      if (sum.IsZero()) {
        matrix[s * nodes.size() + s] = Rational(1);
      } else if (sum != one) {
        exact = false;
      }
    }
  }
  if (exact) {
    return markov::MarkovSequence::CreateExact(std::move(nodes),
                                               std::move(initial),
                                               std::move(transitions));
  }
  // Sums are off by rounding (e.g. a serialized double-valued sequence):
  // fall back to the tolerance-validated double representation.
  std::vector<double> dinitial(initial.size());
  for (size_t s = 0; s < initial.size(); ++s) {
    dinitial[s] = initial[s].ToDouble();
  }
  std::vector<std::vector<double>> dtransitions(transitions.size());
  for (size_t i = 0; i < transitions.size(); ++i) {
    dtransitions[i].resize(transitions[i].size());
    for (size_t j = 0; j < transitions[i].size(); ++j) {
      dtransitions[i][j] = transitions[i][j].ToDouble();
    }
  }
  return markov::MarkovSequence::Create(std::move(nodes), std::move(dinitial),
                                        std::move(dtransitions));
}

StatusOr<transducer::Transducer> ParseTransducer(std::string_view text) {
  auto lines = TokenizeLines(text);
  TMS_RETURN_IF_ERROR(Expect(!lines.empty() && lines[0][0] == "transducer",
                             "expected 'transducer' header"));

  Alphabet input, output;
  int states = -1;
  int initial = 0;
  std::vector<int> accepting;
  struct PendingEdge {
    int from;
    std::string symbol;
    int to;
    std::vector<std::string> emission;
  };
  std::vector<PendingEdge> edges;
  bool saw_end = false;

  for (size_t l = 1; l < lines.size(); ++l) {
    const auto& parts = lines[l];
    const std::string& keyword = parts[0];
    if (keyword == "end") {
      saw_end = true;
      TMS_RETURN_IF_ERROR(Expect(l + 1 == lines.size(), "content after 'end'"));
      break;
    }
    if (keyword == "input" || keyword == "output") {
      Alphabet& target = keyword == "input" ? input : output;
      for (size_t i = 1; i < parts.size(); ++i) {
        if (target.Contains(parts[i])) {
          return Status::InvalidArgument("duplicate symbol: " + parts[i]);
        }
        target.Intern(parts[i]);
      }
      continue;
    }
    if (keyword == "states") {
      TMS_RETURN_IF_ERROR(Expect(parts.size() == 2, "'states' needs a count"));
      auto n = ParseInt(parts[1]);
      if (!n.ok()) return n.status();
      states = *n;
      continue;
    }
    if (keyword == "initial") {
      TMS_RETURN_IF_ERROR(Expect(parts.size() == 2, "'initial' needs a state"));
      auto q = ParseInt(parts[1]);
      if (!q.ok()) return q.status();
      initial = *q;
      continue;
    }
    if (keyword == "accepting") {
      for (size_t i = 1; i < parts.size(); ++i) {
        auto q = ParseInt(parts[i]);
        if (!q.ok()) return q.status();
        accepting.push_back(*q);
      }
      continue;
    }
    if (keyword == "edge") {
      // edge FROM SYMBOL -> TO : [emission...]
      TMS_RETURN_IF_ERROR(Expect(parts.size() >= 6 && parts[3] == "->" &&
                                     parts[5] == ":",
                                 "edge syntax: edge q sym -> q' : [out...]"));
      auto from = ParseInt(parts[1]);
      if (!from.ok()) return from.status();
      auto to = ParseInt(parts[4]);
      if (!to.ok()) return to.status();
      PendingEdge edge{*from, parts[2], *to, {}};
      for (size_t i = 6; i < parts.size(); ++i) {
        edge.emission.push_back(parts[i]);
      }
      edges.push_back(std::move(edge));
      continue;
    }
    return Status::InvalidArgument("unknown keyword: " + keyword);
  }
  TMS_RETURN_IF_ERROR(Expect(saw_end, "missing 'end'"));
  TMS_RETURN_IF_ERROR(Expect(states >= 1, "missing or invalid 'states'"));
  TMS_RETURN_IF_ERROR(Expect(input.size() > 0, "missing 'input'"));

  transducer::Transducer t(input, output, states);
  if (initial < 0 || initial >= states) {
    return Status::InvalidArgument("initial state out of range");
  }
  t.SetInitial(initial);
  for (int q : accepting) {
    if (q < 0 || q >= states) {
      return Status::InvalidArgument("accepting state out of range");
    }
    t.SetAccepting(q, true);
  }
  for (const PendingEdge& edge : edges) {
    auto sym = input.Find(edge.symbol);
    if (!sym.ok()) return sym.status();
    Str emission;
    for (const std::string& name : edge.emission) {
      auto d = output.Find(name);
      if (!d.ok()) return d.status();
      emission.push_back(*d);
    }
    if (edge.from < 0 || edge.from >= states || edge.to < 0 ||
        edge.to >= states) {
      return Status::InvalidArgument("edge state out of range");
    }
    TMS_RETURN_IF_ERROR(
        t.AddTransition(edge.from, *sym, edge.to, std::move(emission)));
  }
  return t;
}

StatusOr<projector::SProjector> ParseSProjector(std::string_view text) {
  auto lines = TokenizeLines(text);
  TMS_RETURN_IF_ERROR(Expect(!lines.empty() && lines[0][0] == "s-projector",
                             "expected 's-projector' header"));
  Alphabet alphabet;
  std::string prefix = ". *", pattern, suffix = ". *";
  bool saw_pattern = false, saw_end = false;

  auto rejoin = [](const std::vector<std::string>& parts) {
    std::string out;
    for (size_t i = 1; i < parts.size(); ++i) {
      if (i > 1) out += ' ';
      out += parts[i];
    }
    return out;
  };

  for (size_t l = 1; l < lines.size(); ++l) {
    const auto& parts = lines[l];
    const std::string& keyword = parts[0];
    if (keyword == "end") {
      saw_end = true;
      TMS_RETURN_IF_ERROR(Expect(l + 1 == lines.size(), "content after 'end'"));
      break;
    }
    if (keyword == "alphabet") {
      for (size_t i = 1; i < parts.size(); ++i) {
        if (alphabet.Contains(parts[i])) {
          return Status::InvalidArgument("duplicate symbol: " + parts[i]);
        }
        alphabet.Intern(parts[i]);
      }
      continue;
    }
    if (keyword == "prefix") {
      prefix = rejoin(parts);
      continue;
    }
    if (keyword == "pattern") {
      pattern = rejoin(parts);
      saw_pattern = true;
      continue;
    }
    if (keyword == "suffix") {
      suffix = rejoin(parts);
      continue;
    }
    return Status::InvalidArgument("unknown keyword: " + keyword);
  }
  TMS_RETURN_IF_ERROR(Expect(saw_end, "missing 'end'"));
  TMS_RETURN_IF_ERROR(Expect(alphabet.size() > 0, "missing 'alphabet'"));
  TMS_RETURN_IF_ERROR(Expect(saw_pattern, "missing 'pattern'"));
  return projector::SProjector::FromRegex(alphabet, prefix, pattern, suffix);
}

std::string FormatMarkovSequence(const markov::MarkovSequence& mu) {
  std::ostringstream out;
  out << "markov-sequence\nnodes";
  for (const std::string& name : mu.nodes().names()) out << ' ' << name;
  out << "\nlength " << mu.length() << "\ninitial";
  auto rational_of = [&](double value, const Rational* exact) {
    return exact != nullptr ? *exact : Rational::FromDouble(value);
  };
  for (size_t s = 0; s < mu.nodes().size(); ++s) {
    Symbol sym = static_cast<Symbol>(s);
    if (mu.Initial(sym) <= 0) continue;
    const Rational* exact =
        mu.has_exact() ? &mu.InitialExact(sym) : nullptr;
    out << ' ' << mu.nodes().Name(sym) << ' '
        << rational_of(mu.Initial(sym), exact).ToString();
  }
  out << '\n';
  for (int i = 1; i < mu.length(); ++i) {
    for (size_t s = 0; s < mu.nodes().size(); ++s) {
      Symbol from = static_cast<Symbol>(s);
      bool any = false;
      std::ostringstream row;
      for (size_t u = 0; u < mu.nodes().size(); ++u) {
        Symbol to = static_cast<Symbol>(u);
        if (mu.Transition(i, from, to) <= 0) continue;
        const Rational* exact =
            mu.has_exact() ? &mu.TransitionExact(i, from, to) : nullptr;
        row << ' ' << mu.nodes().Name(to) << ' '
            << rational_of(mu.Transition(i, from, to), exact).ToString();
        any = true;
      }
      if (any) {
        out << "transition " << i << ' ' << mu.nodes().Name(from) << " ->"
            << row.str() << '\n';
      }
    }
  }
  out << "end\n";
  return out.str();
}

std::string FormatTransducer(const transducer::Transducer& t) {
  std::ostringstream out;
  out << "transducer\ninput";
  for (const std::string& name : t.input_alphabet().names()) {
    out << ' ' << name;
  }
  out << "\noutput";
  for (const std::string& name : t.output_alphabet().names()) {
    out << ' ' << name;
  }
  out << "\nstates " << t.num_states() << "\ninitial " << t.initial()
      << "\naccepting";
  for (automata::StateId q = 0; q < t.num_states(); ++q) {
    if (t.IsAccepting(q)) out << ' ' << q;
  }
  out << '\n';
  for (automata::StateId q = 0; q < t.num_states(); ++q) {
    for (size_t s = 0; s < t.input_alphabet().size(); ++s) {
      for (const transducer::Edge& e : t.Next(q, static_cast<Symbol>(s))) {
        out << "edge " << q << ' '
            << t.input_alphabet().Name(static_cast<Symbol>(s)) << " -> "
            << e.target << " :";
        for (Symbol d : e.output) {
          out << ' ' << t.output_alphabet().Name(d);
        }
        out << '\n';
      }
    }
  }
  out << "end\n";
  return out.str();
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

StatusOr<std::string> DetectFormat(std::string_view text) {
  auto lines = TokenizeLines(text);
  if (lines.empty()) return Status::InvalidArgument("empty input");
  const std::string& keyword = lines[0][0];
  if (keyword == "markov-sequence" || keyword == "transducer" ||
      keyword == "s-projector") {
    return keyword;
  }
  return Status::InvalidArgument("unknown format: " + keyword);
}

}  // namespace tms::io
