// Markov sequences — the paper's data model (Section 3.1).
//
// A Markov sequence μ[n] over a finite set Σ of state nodes consists of an
// initial distribution μ_0→ : Σ → [0,1] and, for each 1 ≤ i < n, a
// transition function μ_i→ : Σ×Σ → [0,1] whose rows sum to one. μ defines
// the probability space (Σ^n, p) with
//     p(s) = μ_0→(s_1) · Π_{i=1}^{n-1} μ_i→(s_i, s_{i+1}).      (Eq. 1)
//
// Transitions are *time-inhomogeneous* (one matrix per index), exactly as
// in the paper: the representation of μ[n] "consists of a transition matrix
// for each index 1 ≤ i < n, and an array for μ_0→" (Section 3.2).
//
// Probabilities are doubles on the hot path. A MarkovSequence can
// additionally carry exact rational probabilities (the paper's
// numerator/denominator convention); the *_exact query algorithms and the
// ground-truth tests use those.

#ifndef TMS_MARKOV_MARKOV_SEQUENCE_H_
#define TMS_MARKOV_MARKOV_SEQUENCE_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "numeric/log_prob.h"
#include "numeric/rational.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::markov {

/// An immutable Markov sequence. Use MarkovSequenceBuilder (builder.h) for
/// convenient construction with named nodes, or Create() with raw vectors.
class MarkovSequence {
 public:
  /// Creates a validated Markov sequence.
  ///
  /// `initial` has |Σ| entries summing to 1. `transitions` has n-1
  /// matrices; matrix i-1 is μ_i→, stored row-major (|Σ|·|Σ| entries, row =
  /// source node), every row summing to 1. Tolerance for sums is 1e-9.
  static StatusOr<MarkovSequence> Create(
      Alphabet nodes, std::vector<double> initial,
      std::vector<std::vector<double>> transitions);

  /// As Create(), but from exact rationals; the double representation is
  /// derived and exact probabilities are retained (has_exact() == true).
  /// Distribution sums must be exactly 1.
  static StatusOr<MarkovSequence> CreateExact(
      Alphabet nodes, std::vector<numeric::Rational> initial,
      std::vector<std::vector<numeric::Rational>> transitions);

  /// The node set Σ_μ.
  const Alphabet& nodes() const { return nodes_; }

  /// The length n of the random string.
  int length() const { return length_; }

  /// μ_0→(s).
  double Initial(Symbol s) const;

  /// μ_i→(s, t) for 1 ≤ i ≤ n-1.
  double Transition(int i, Symbol s, Symbol t) const;

  /// p(s) per Eq. 1; s must have length n.
  double WorldProbability(const Str& s) const;

  /// p(s) in the log domain (underflow-safe for large n).
  numeric::LogProb WorldLogProbability(const Str& s) const;

  /// True iff exact rational probabilities are available.
  bool has_exact() const { return exact_initial_.has_value(); }

  /// Exact μ_0→(s); requires has_exact().
  const numeric::Rational& InitialExact(Symbol s) const;

  /// Exact μ_i→(s, t); requires has_exact().
  const numeric::Rational& TransitionExact(int i, Symbol s, Symbol t) const;

  /// Exact p(s); requires has_exact().
  numeric::Rational WorldProbabilityExact(const Str& s) const;

  /// Marginal distribution Pr(S_i = ·) for 1 ≤ i ≤ n (forward recursion).
  std::vector<double> Marginal(int i) const;

  /// Number of strings with nonzero probability (may be exponential in n;
  /// counted exactly with BigInt arithmetic).
  numeric::BigInt CountSupportWorlds() const;

 private:
  MarkovSequence() = default;

  size_t TransIndex(int i, Symbol s, Symbol t) const;

  Alphabet nodes_;
  int length_ = 0;
  std::vector<double> initial_;
  // transitions_[i-1] is μ_i→ row-major.
  std::vector<std::vector<double>> transitions_;
  std::optional<std::vector<numeric::Rational>> exact_initial_;
  std::optional<std::vector<std::vector<numeric::Rational>>>
      exact_transitions_;
};

}  // namespace tms::markov

#endif  // TMS_MARKOV_MARKOV_SEQUENCE_H_
