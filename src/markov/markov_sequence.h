// Markov sequences — the paper's data model (Section 3.1).
//
// A Markov sequence μ[n] over a finite set Σ of state nodes consists of an
// initial distribution μ_0→ : Σ → [0,1] and, for each 1 ≤ i < n, a
// transition function μ_i→ : Σ×Σ → [0,1] whose rows sum to one. μ defines
// the probability space (Σ^n, p) with
//     p(s) = μ_0→(s_1) · Π_{i=1}^{n-1} μ_i→(s_i, s_{i+1}).      (Eq. 1)
//
// Transitions are *time-inhomogeneous* (one matrix per index), exactly as
// in the paper: the representation of μ[n] "consists of a transition matrix
// for each index 1 ≤ i < n, and an array for μ_0→" (Section 3.2).
//
// Storage: each matrix lives in a shared, immutable TransitionStep —
// dense row-major plus CSR views of the strictly positive entries (and of
// the transpose) when the matrix is sparse enough to profit
// (kernels::kSparseBuildMaxDensity). Consecutive identical matrices share
// one step, and CreateHomogeneous() shares a single step across all n-1
// indices, so a length-4096 homogeneous sequence over |Σ|=1024 costs one
// σ² matrix, not 4095. Engines read matrices through TransitionView(i)
// (a kernels::MatrixRef: dense or CSR behind one dispatch point) instead
// of copying rows into temporaries.
//
// Probabilities are doubles on the hot path. A MarkovSequence can
// additionally carry exact rational probabilities (the paper's
// numerator/denominator convention); the *_exact query algorithms and the
// ground-truth tests use those.

#ifndef TMS_MARKOV_MARKOV_SEQUENCE_H_
#define TMS_MARKOV_MARKOV_SEQUENCE_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "kernels/sparse.h"
#include "numeric/log_prob.h"
#include "numeric/rational.h"
#include "strings/alphabet.h"
#include "strings/str.h"

namespace tms::markov {

/// One immutable, validated transition matrix μ_i→ with its sparse views.
/// Shared (shared_ptr) between the indices that use the same matrix and
/// between copies of a MarkovSequence.
struct TransitionStep {
  std::vector<double> dense;  // σ×σ row-major
  // CSR over the strictly positive entries (row = source node, columns
  // ascending) and of the transpose (row = target node); built iff
  // has_sparse.
  std::vector<int32_t> row_off, col_idx;
  std::vector<double> val;
  std::vector<int32_t> t_row_off, t_col_idx;
  std::vector<double> t_val;
  size_t sigma = 0;
  size_t nnz = 0;
  double density = 1.0;
  bool has_sparse = false;

  /// The matrix behind one dispatch point (dense always, CSR iff built).
  kernels::MatrixRef View() const;

  /// Builds a step from a validated σ×σ matrix; CSR views are added when
  /// density <= kernels::kSparseBuildMaxDensity.
  static std::shared_ptr<const TransitionStep> Build(
      std::vector<double> dense, size_t sigma);
};

/// An immutable Markov sequence. Use MarkovSequenceBuilder (builder.h) for
/// convenient construction with named nodes, or Create() with raw vectors.
class MarkovSequence {
 public:
  /// Creates a validated Markov sequence.
  ///
  /// `initial` has |Σ| entries summing to 1. `transitions` has n-1
  /// matrices; matrix i-1 is μ_i→, stored row-major (|Σ|·|Σ| entries, row =
  /// source node), every row summing to 1. Tolerance for sums is 1e-9.
  /// Consecutive identical matrices are stored once.
  static StatusOr<MarkovSequence> Create(
      Alphabet nodes, std::vector<double> initial,
      std::vector<std::vector<double>> transitions);

  /// A *time-homogeneous* sequence of length `length`: the single σ×σ
  /// `transition` matrix is validated once and shared by every index
  /// 1 ≤ i < length (O(σ²) storage regardless of n — the large-alphabet /
  /// long-sequence regime the sparse backend targets).
  static StatusOr<MarkovSequence> CreateHomogeneous(
      Alphabet nodes, std::vector<double> initial,
      std::vector<double> transition, int length);

  /// As Create(), but from exact rationals; the double representation is
  /// derived and exact probabilities are retained (has_exact() == true).
  /// Distribution sums must be exactly 1.
  static StatusOr<MarkovSequence> CreateExact(
      Alphabet nodes, std::vector<numeric::Rational> initial,
      std::vector<std::vector<numeric::Rational>> transitions);

  /// The node set Σ_μ.
  const Alphabet& nodes() const { return nodes_; }

  /// The length n of the random string.
  int length() const { return length_; }

  /// μ_0→(s).
  double Initial(Symbol s) const;

  /// μ_i→(s, t) for 1 ≤ i ≤ n-1.
  double Transition(int i, Symbol s, Symbol t) const;

  /// The matrix μ_i→ (1 ≤ i ≤ n-1) behind one dispatch point: dense
  /// row-major always, CSR views of the positive entries when built.
  /// The view borrows the sequence's storage — valid while μ lives.
  kernels::MatrixRef TransitionView(int i) const;

  /// Identity of the step storage behind μ_i→: equal pointers ⇔ the same
  /// shared matrix. Engines key per-step precomputation on this so a
  /// homogeneous length-n sequence costs one table, not n-1.
  const void* TransitionStepIdentity(int i) const;

  /// Mean density (positive entries / σ²) over the *distinct* transition
  /// matrices; 1.0 when n == 1. Input to kernels::ChooseBackend.
  double TransitionDensity() const { return density_; }

  /// True iff every distinct transition matrix carries CSR views (and
  /// n > 1) — the has_sparse input to kernels::ChooseBackend.
  bool HasSparseTransitions() const { return all_sparse_; }

  /// p(s) per Eq. 1; s must have length n.
  double WorldProbability(const Str& s) const;

  /// p(s) in the log domain (underflow-safe for large n).
  numeric::LogProb WorldLogProbability(const Str& s) const;

  /// True iff exact rational probabilities are available.
  bool has_exact() const { return exact_initial_.has_value(); }

  /// Exact μ_0→(s); requires has_exact().
  const numeric::Rational& InitialExact(Symbol s) const;

  /// Exact μ_i→(s, t); requires has_exact().
  const numeric::Rational& TransitionExact(int i, Symbol s, Symbol t) const;

  /// Exact p(s); requires has_exact().
  numeric::Rational WorldProbabilityExact(const Str& s) const;

  /// Marginal distribution Pr(S_i = ·) for 1 ≤ i ≤ n (forward recursion).
  std::vector<double> Marginal(int i) const;

  /// Number of strings with nonzero probability (may be exponential in n;
  /// counted exactly with BigInt arithmetic).
  numeric::BigInt CountSupportWorlds() const;

 private:
  MarkovSequence() = default;

  size_t TransIndex(int i, Symbol s, Symbol t) const;
  const TransitionStep& Step(int i) const;
  void FinishSteps();  // fills density_ / all_sparse_ from steps_

  Alphabet nodes_;
  int length_ = 0;
  std::vector<double> initial_;
  // steps_[i-1] is μ_i→; consecutive equal matrices share one step.
  std::vector<std::shared_ptr<const TransitionStep>> steps_;
  double density_ = 1.0;
  bool all_sparse_ = false;
  std::optional<std::vector<numeric::Rational>> exact_initial_;
  std::optional<std::vector<std::vector<numeric::Rational>>>
      exact_transitions_;
};

}  // namespace tms::markov

#endif  // TMS_MARKOV_MARKOV_SEQUENCE_H_
