#include "markov/condition.h"

#include <string>

#include "common/check.h"

namespace tms::markov {

Str ConditionedSequence::ProjectWorld(const Str& lifted) const {
  Str out;
  out.reserve(lifted.size());
  for (Symbol s : lifted) {
    out.push_back(base_symbol[static_cast<size_t>(s)]);
  }
  return out;
}

StatusOr<transducer::Transducer> ConditionedSequence::LiftTransducer(
    const transducer::Transducer& t) const {
  if (!(t.input_alphabet() == original_nodes)) {
    return Status::InvalidArgument(
        "transducer input alphabet does not match the original node set");
  }
  transducer::Transducer out(mu.nodes(), t.output_alphabet(), t.num_states());
  out.SetInitial(t.initial());
  for (automata::StateId q = 0; q < t.num_states(); ++q) {
    if (t.IsAccepting(q)) out.SetAccepting(q, true);
    for (size_t lifted_sym = 0; lifted_sym < mu.nodes().size();
         ++lifted_sym) {
      Symbol original = base_symbol[lifted_sym];
      for (const transducer::Edge& e : t.Next(q, original)) {
        TMS_RETURN_IF_ERROR(out.AddTransition(
            q, static_cast<Symbol>(lifted_sym), e.target, e.output));
      }
    }
  }
  return out;
}

StatusOr<ConditionedSequence> ConditionOnAcceptance(const MarkovSequence& mu,
                                                    const automata::Dfa& dfa) {
  if (!(mu.nodes() == dfa.alphabet())) {
    return Status::InvalidArgument(
        "DFA alphabet does not match the Markov sequence node set");
  }
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(dfa.num_states());

  // Backward masses h[t][(s, q)] = Pr(S_[t+1,n] drives q into F | S_t = s)
  // for t = 1..n (h[n] = acceptance indicator).
  std::vector<std::vector<double>> h(
      static_cast<size_t>(n) + 1, std::vector<double>(sigma * nq, 0.0));
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      h[static_cast<size_t>(n)][s * nq + q] =
          dfa.IsAccepting(static_cast<automata::StateId>(q)) ? 1.0 : 0.0;
    }
  }
  for (int t = n - 1; t >= 1; --t) {
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        double acc = 0;
        for (size_t u = 0; u < sigma; ++u) {
          double step = mu.Transition(t, static_cast<Symbol>(s),
                                      static_cast<Symbol>(u));
          if (step <= 0) continue;
          size_t q2 = static_cast<size_t>(
              dfa.Next(static_cast<automata::StateId>(q),
                       static_cast<Symbol>(u)));
          acc += step * h[static_cast<size_t>(t + 1)][u * nq + q2];
        }
        h[static_cast<size_t>(t)][s * nq + q] = acc;
      }
    }
  }

  // Event probability Z = Σ_s μ0(s) · h_1(s, δ(q0, s)).
  double z = 0;
  for (size_t s = 0; s < sigma; ++s) {
    double p0 = mu.Initial(static_cast<Symbol>(s));
    if (p0 <= 0) continue;
    size_t q1 = static_cast<size_t>(
        dfa.Next(dfa.initial(), static_cast<Symbol>(s)));
    z += p0 * h[1][s * nq + q1];
  }
  if (!(z > 0)) {
    return Status::FailedPrecondition(
        "the conditioning event has probability zero");
  }

  // Lifted alphabet: (node, DFA state) pairs.
  Alphabet lifted;
  std::vector<Symbol> base_symbol;
  for (size_t s = 0; s < sigma; ++s) {
    for (size_t q = 0; q < nq; ++q) {
      lifted.Intern(mu.nodes().Name(static_cast<Symbol>(s)) + "@" +
                    std::to_string(q));
      base_symbol.push_back(static_cast<Symbol>(s));
    }
  }
  auto lifted_id = [nq](size_t s, size_t q) { return s * nq + q; };
  const size_t lifted_count = sigma * nq;

  std::vector<double> initial(lifted_count, 0.0);
  for (size_t s = 0; s < sigma; ++s) {
    double p0 = mu.Initial(static_cast<Symbol>(s));
    if (p0 <= 0) continue;
    size_t q1 = static_cast<size_t>(
        dfa.Next(dfa.initial(), static_cast<Symbol>(s)));
    double mass = p0 * h[1][s * nq + q1] / z;
    if (mass > 0) initial[lifted_id(s, q1)] = mass;
  }

  std::vector<std::vector<double>> transitions(
      static_cast<size_t>(n - 1),
      std::vector<double>(lifted_count * lifted_count, 0.0));
  for (int t = 1; t < n; ++t) {
    auto& matrix = transitions[static_cast<size_t>(t - 1)];
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        const size_t row = lifted_id(s, q);
        double denom = h[static_cast<size_t>(t)][s * nq + q];
        double row_sum = 0;
        if (denom > 0) {
          for (size_t u = 0; u < sigma; ++u) {
            double step = mu.Transition(t, static_cast<Symbol>(s),
                                        static_cast<Symbol>(u));
            if (step <= 0) continue;
            size_t q2 = static_cast<size_t>(
                dfa.Next(static_cast<automata::StateId>(q),
                         static_cast<Symbol>(u)));
            double mass =
                step * h[static_cast<size_t>(t + 1)][u * nq + q2] / denom;
            if (mass > 0) {
              matrix[row * lifted_count + lifted_id(u, q2)] = mass;
              row_sum += mass;
            }
          }
        }
        if (row_sum > 0) {
          // Normalize away floating-point drift.
          for (size_t col = 0; col < lifted_count; ++col) {
            matrix[row * lifted_count + col] /= row_sum;
          }
        } else {
          matrix[row * lifted_count + row] = 1.0;  // dead lifted state
        }
      }
    }
  }

  auto lifted_mu = MarkovSequence::Create(lifted, std::move(initial),
                                          std::move(transitions));
  if (!lifted_mu.ok()) return lifted_mu.status();
  ConditionedSequence out{std::move(lifted_mu).value(),
                          std::move(base_symbol), mu.nodes(), z};
  return out;
}

}  // namespace tms::markov
