#include "markov/builder.h"

#include "common/check.h"

namespace tms::markov {

MarkovSequenceBuilder::MarkovSequenceBuilder(
    const std::vector<std::string>& node_names, int length)
    : length_(length) {
  auto alphabet = Alphabet::FromNames(node_names);
  if (!alphabet.ok()) {
    deferred_error_ = alphabet.status();
    return;
  }
  if (length < 1) {
    deferred_error_ =
        Status::InvalidArgument("Markov sequence length must be >= 1");
    return;
  }
  nodes_ = std::move(alphabet).value();
  initial_.assign(nodes_.size(), numeric::Rational());
  transitions_.assign(
      static_cast<size_t>(length - 1),
      std::vector<numeric::Rational>(nodes_.size() * nodes_.size()));
}

Symbol MarkovSequenceBuilder::MustFind(const std::string& name) const {
  auto sym = nodes_.Find(name);
  TMS_CHECK(sym.ok());
  return *sym;
}

MarkovSequenceBuilder& MarkovSequenceBuilder::SetInitial(
    const std::string& node, numeric::Rational p) {
  if (!deferred_error_.ok()) return *this;
  if (!nodes_.Contains(node)) {
    deferred_error_ = Status::NotFound("unknown node: " + node);
    return *this;
  }
  initial_[static_cast<size_t>(MustFind(node))] = std::move(p);
  return *this;
}

MarkovSequenceBuilder& MarkovSequenceBuilder::SetTransition(
    int i, const std::string& from, const std::string& to,
    numeric::Rational p) {
  if (!deferred_error_.ok()) return *this;
  if (i < 1 || i >= length_) {
    deferred_error_ = Status::OutOfRange("transition index out of range: " +
                                         std::to_string(i));
    return *this;
  }
  if (!nodes_.Contains(from) || !nodes_.Contains(to)) {
    deferred_error_ = Status::NotFound("unknown node in transition: " + from +
                                       " -> " + to);
    return *this;
  }
  size_t idx = static_cast<size_t>(MustFind(from)) * nodes_.size() +
               static_cast<size_t>(MustFind(to));
  transitions_[static_cast<size_t>(i - 1)][idx] = std::move(p);
  return *this;
}

MarkovSequenceBuilder& MarkovSequenceBuilder::SetAllTransitions(
    const std::string& from, const std::string& to, numeric::Rational p) {
  for (int i = 1; i < length_; ++i) SetTransition(i, from, to, p);
  return *this;
}

StatusOr<MarkovSequence> MarkovSequenceBuilder::Build() const {
  if (!deferred_error_.ok()) return deferred_error_;
  return MarkovSequence::CreateExact(nodes_, initial_, transitions_);
}

}  // namespace tms::markov
