// Possible-world utilities: exhaustive enumeration (the brute-force ground
// truth used by tests and baseline benchmarks) and sampling.

#ifndef TMS_MARKOV_WORLD_ITER_H_
#define TMS_MARKOV_WORLD_ITER_H_

#include <functional>

#include "common/rng.h"
#include "markov/markov_sequence.h"
#include "numeric/rational.h"
#include "strings/str.h"

namespace tms::markov {

/// Invokes `fn(world, probability)` for every string of Σ^n with p > 0, in
/// lexicographic order of node ids. Exponential in n; intended for ground
/// truth on small instances and for the "possible worlds" baseline.
void ForEachWorld(const MarkovSequence& mu,
                  const std::function<void(const Str&, double)>& fn);

/// Exact-arithmetic variant; requires mu.has_exact().
void ForEachWorldExact(
    const MarkovSequence& mu,
    const std::function<void(const Str&, const numeric::Rational&)>& fn);

/// Draws one world according to p (ancestral sampling).
Str SampleWorld(const MarkovSequence& mu, Rng& rng);

/// The most probable world and its probability (Viterbi over μ alone).
std::pair<Str, double> MostLikelyWorld(const MarkovSequence& mu);

/// The k most probable worlds in nonincreasing probability (fewer if the
/// support is smaller), via k-best paths over the chain trellis — the
/// same Lawler/Eppstein machinery Theorem 5.7 uses, applied to μ alone.
std::vector<std::pair<Str, double>> TopKWorlds(const MarkovSequence& mu,
                                               int k);

}  // namespace tms::markov

#endif  // TMS_MARKOV_WORLD_ITER_H_
