// Convenience builder for Markov sequences with named nodes.

#ifndef TMS_MARKOV_BUILDER_H_
#define TMS_MARKOV_BUILDER_H_

#include <string>
#include <vector>

#include "markov/markov_sequence.h"
#include "numeric/rational.h"

namespace tms::markov {

/// Builds a MarkovSequence incrementally by node name. Unset probabilities
/// default to zero; Build() validates that every distribution sums to 1
/// (exactly, since entries are rationals).
///
///   MarkovSequenceBuilder b({"r1a", "r1b", "la"}, /*length=*/3);
///   b.SetInitial("r1a", {7, 10});
///   b.SetTransition(1, "r1a", "la", {9, 10});
///   ...
///   auto mu = b.Build();   // StatusOr<MarkovSequence>, has_exact() == true
class MarkovSequenceBuilder {
 public:
  /// A builder over the given node names (must be distinct) for a sequence
  /// of the given length (≥ 1).
  MarkovSequenceBuilder(const std::vector<std::string>& node_names,
                        int length);

  /// Sets μ_0→(node) = p. Returns *this for chaining.
  MarkovSequenceBuilder& SetInitial(const std::string& node,
                                    numeric::Rational p);

  /// Sets μ_i→(from, to) = p for 1 ≤ i < length. Returns *this.
  MarkovSequenceBuilder& SetTransition(int i, const std::string& from,
                                       const std::string& to,
                                       numeric::Rational p);

  /// Sets μ_i→(from, to) = p for every step i simultaneously
  /// (time-homogeneous shorthand). Returns *this.
  MarkovSequenceBuilder& SetAllTransitions(const std::string& from,
                                           const std::string& to,
                                           numeric::Rational p);

  /// Validates and builds (exact rationals retained).
  StatusOr<MarkovSequence> Build() const;

  const Alphabet& nodes() const { return nodes_; }

 private:
  Symbol MustFind(const std::string& name) const;

  Alphabet nodes_;
  int length_;
  std::vector<numeric::Rational> initial_;
  std::vector<std::vector<numeric::Rational>> transitions_;
  Status deferred_error_;
};

}  // namespace tms::markov

#endif  // TMS_MARKOV_BUILDER_H_
