#include "markov/markov_sequence.h"

#include <cmath>

#include "common/check.h"

namespace tms::markov {
namespace {

constexpr double kSumTolerance = 1e-9;

Status CheckDistribution(const std::vector<double>& row, const char* what) {
  double sum = 0;
  for (double p : row) {
    if (!(p >= 0.0) || p > 1.0 + kSumTolerance) {
      return Status::InvalidArgument(std::string(what) +
                                     " contains a probability outside [0,1]");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > kSumTolerance) {
    return Status::InvalidArgument(std::string(what) +
                                   " does not sum to 1 (sum=" +
                                   std::to_string(sum) + ")");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<MarkovSequence> MarkovSequence::Create(
    Alphabet nodes, std::vector<double> initial,
    std::vector<std::vector<double>> transitions) {
  const size_t sigma = nodes.size();
  if (sigma == 0) {
    return Status::InvalidArgument("Markov sequence needs at least one node");
  }
  if (initial.size() != sigma) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  TMS_RETURN_IF_ERROR(CheckDistribution(initial, "initial distribution"));
  for (size_t i = 0; i < transitions.size(); ++i) {
    if (transitions[i].size() != sigma * sigma) {
      return Status::InvalidArgument("transition matrix " + std::to_string(i + 1) +
                                     " has wrong size");
    }
    for (size_t s = 0; s < sigma; ++s) {
      std::vector<double> row(transitions[i].begin() + static_cast<long>(s * sigma),
                              transitions[i].begin() + static_cast<long>((s + 1) * sigma));
      TMS_RETURN_IF_ERROR(CheckDistribution(
          row, ("transition matrix " + std::to_string(i + 1) + " row " +
                nodes.Name(static_cast<Symbol>(s)))
                   .c_str()));
    }
  }
  MarkovSequence out;
  out.nodes_ = std::move(nodes);
  out.length_ = static_cast<int>(transitions.size()) + 1;
  out.initial_ = std::move(initial);
  out.transitions_ = std::move(transitions);
  return out;
}

StatusOr<MarkovSequence> MarkovSequence::CreateExact(
    Alphabet nodes, std::vector<numeric::Rational> initial,
    std::vector<std::vector<numeric::Rational>> transitions) {
  const size_t sigma = nodes.size();
  if (sigma == 0) {
    return Status::InvalidArgument("Markov sequence needs at least one node");
  }
  if (initial.size() != sigma) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  const numeric::Rational one(1);
  auto check_exact_row = [&](const numeric::Rational* row,
                             const char* what) -> Status {
    numeric::Rational sum;
    for (size_t t = 0; t < sigma; ++t) {
      if (row[t].Sign() < 0 || row[t] > one) {
        return Status::InvalidArgument(
            std::string(what) + " contains a probability outside [0,1]");
      }
      sum += row[t];
    }
    if (sum != one) {
      return Status::InvalidArgument(std::string(what) +
                                     " does not sum to exactly 1");
    }
    return Status::Ok();
  };
  TMS_RETURN_IF_ERROR(
      check_exact_row(initial.data(), "initial distribution"));
  for (size_t i = 0; i < transitions.size(); ++i) {
    if (transitions[i].size() != sigma * sigma) {
      return Status::InvalidArgument("transition matrix " +
                                     std::to_string(i + 1) + " has wrong size");
    }
    for (size_t s = 0; s < sigma; ++s) {
      TMS_RETURN_IF_ERROR(check_exact_row(
          transitions[i].data() + s * sigma,
          ("transition matrix " + std::to_string(i + 1)).c_str()));
    }
  }
  std::vector<double> dinitial(sigma);
  for (size_t s = 0; s < sigma; ++s) dinitial[s] = initial[s].ToDouble();
  std::vector<std::vector<double>> dtrans(transitions.size());
  for (size_t i = 0; i < transitions.size(); ++i) {
    dtrans[i].resize(sigma * sigma);
    for (size_t j = 0; j < sigma * sigma; ++j) {
      dtrans[i][j] = transitions[i][j].ToDouble();
    }
  }
  MarkovSequence out;
  out.nodes_ = std::move(nodes);
  out.length_ = static_cast<int>(transitions.size()) + 1;
  out.initial_ = std::move(dinitial);
  out.transitions_ = std::move(dtrans);
  out.exact_initial_ = std::move(initial);
  out.exact_transitions_ = std::move(transitions);
  return out;
}

double MarkovSequence::Initial(Symbol s) const {
  TMS_DCHECK(nodes_.IsValid(s));
  return initial_[static_cast<size_t>(s)];
}

size_t MarkovSequence::TransIndex(int i, Symbol s, Symbol t) const {
  TMS_DCHECK(i >= 1 && i < length_);
  TMS_DCHECK(nodes_.IsValid(s) && nodes_.IsValid(t));
  (void)i;
  return static_cast<size_t>(s) * nodes_.size() + static_cast<size_t>(t);
}

double MarkovSequence::Transition(int i, Symbol s, Symbol t) const {
  return transitions_[static_cast<size_t>(i - 1)][TransIndex(i, s, t)];
}

double MarkovSequence::WorldProbability(const Str& s) const {
  TMS_CHECK_EQ(static_cast<int>(s.size()), length_);
  double p = Initial(s[0]);
  for (int i = 1; i < length_ && p > 0; ++i) {
    p *= Transition(i, s[static_cast<size_t>(i - 1)],
                    s[static_cast<size_t>(i)]);
  }
  return p;
}

numeric::LogProb MarkovSequence::WorldLogProbability(const Str& s) const {
  TMS_CHECK_EQ(static_cast<int>(s.size()), length_);
  numeric::LogProb p = numeric::LogProb::FromLinear(Initial(s[0]));
  for (int i = 1; i < length_ && !p.IsZero(); ++i) {
    p *= numeric::LogProb::FromLinear(Transition(
        i, s[static_cast<size_t>(i - 1)], s[static_cast<size_t>(i)]));
  }
  return p;
}

const numeric::Rational& MarkovSequence::InitialExact(Symbol s) const {
  TMS_CHECK(has_exact());
  TMS_DCHECK(nodes_.IsValid(s));
  return (*exact_initial_)[static_cast<size_t>(s)];
}

const numeric::Rational& MarkovSequence::TransitionExact(int i, Symbol s,
                                                         Symbol t) const {
  TMS_CHECK(has_exact());
  return (*exact_transitions_)[static_cast<size_t>(i - 1)][TransIndex(i, s, t)];
}

numeric::Rational MarkovSequence::WorldProbabilityExact(const Str& s) const {
  TMS_CHECK(has_exact());
  TMS_CHECK_EQ(static_cast<int>(s.size()), length_);
  numeric::Rational p = InitialExact(s[0]);
  for (int i = 1; i < length_ && !p.IsZero(); ++i) {
    p *= TransitionExact(i, s[static_cast<size_t>(i - 1)],
                         s[static_cast<size_t>(i)]);
  }
  return p;
}

std::vector<double> MarkovSequence::Marginal(int i) const {
  TMS_CHECK(i >= 1 && i <= length_);
  std::vector<double> cur = initial_;
  for (int step = 1; step < i; ++step) {
    std::vector<double> next(nodes_.size(), 0.0);
    for (size_t s = 0; s < nodes_.size(); ++s) {
      if (cur[s] == 0) continue;
      for (size_t t = 0; t < nodes_.size(); ++t) {
        next[t] += cur[s] * Transition(step, static_cast<Symbol>(s),
                                       static_cast<Symbol>(t));
      }
    }
    cur = std::move(next);
  }
  return cur;
}

numeric::BigInt MarkovSequence::CountSupportWorlds() const {
  std::vector<numeric::BigInt> count(nodes_.size());
  for (size_t s = 0; s < nodes_.size(); ++s) {
    if (initial_[s] > 0) count[s] = numeric::BigInt(1);
  }
  for (int i = 1; i < length_; ++i) {
    std::vector<numeric::BigInt> next(nodes_.size());
    for (size_t s = 0; s < nodes_.size(); ++s) {
      if (count[s].IsZero()) continue;
      for (size_t t = 0; t < nodes_.size(); ++t) {
        if (Transition(i, static_cast<Symbol>(s), static_cast<Symbol>(t)) >
            0) {
          next[t] += count[s];
        }
      }
    }
    count = std::move(next);
  }
  numeric::BigInt total;
  for (const numeric::BigInt& c : count) total += c;
  return total;
}

}  // namespace tms::markov
