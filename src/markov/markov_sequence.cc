#include "markov/markov_sequence.h"

#include <cmath>

#include "common/check.h"

namespace tms::markov {
namespace {

constexpr double kSumTolerance = 1e-9;

// Validates one distribution in place (no row copy — the korder lifted
// construction validates σ^k rows and used to copy each one).
Status CheckDistribution(const double* row, size_t n, const char* what) {
  double sum = 0;
  for (size_t j = 0; j < n; ++j) {
    const double p = row[j];
    if (!(p >= 0.0) || p > 1.0 + kSumTolerance) {
      return Status::InvalidArgument(std::string(what) +
                                     " contains a probability outside [0,1]");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > kSumTolerance) {
    return Status::InvalidArgument(std::string(what) +
                                   " does not sum to 1 (sum=" +
                                   std::to_string(sum) + ")");
  }
  return Status::Ok();
}

Status CheckTransitionMatrix(const std::vector<double>& matrix, size_t sigma,
                             const Alphabet& nodes, size_t index) {
  if (matrix.size() != sigma * sigma) {
    return Status::InvalidArgument("transition matrix " +
                                   std::to_string(index + 1) +
                                   " has wrong size");
  }
  for (size_t s = 0; s < sigma; ++s) {
    TMS_RETURN_IF_ERROR(CheckDistribution(
        matrix.data() + s * sigma, sigma,
        ("transition matrix " + std::to_string(index + 1) + " row " +
         nodes.Name(static_cast<Symbol>(s)))
            .c_str()));
  }
  return Status::Ok();
}

}  // namespace

kernels::MatrixRef TransitionStep::View() const {
  kernels::MatrixRef out;
  out.dense = kernels::Matrix<double>(const_cast<double*>(dense.data()),
                                      sigma, sigma);
  out.density = density;
  out.has_sparse = has_sparse;
  if (has_sparse) {
    out.csr = {row_off.data(), col_idx.data(), val.data(), sigma, sigma, nnz};
    out.csr_t = {t_row_off.data(), t_col_idx.data(), t_val.data(), sigma,
                 sigma, nnz};
  }
  return out;
}

std::shared_ptr<const TransitionStep> TransitionStep::Build(
    std::vector<double> dense, size_t sigma) {
  auto step = std::make_shared<TransitionStep>();
  step->sigma = sigma;
  step->dense = std::move(dense);
  size_t nnz = 0;
  for (double v : step->dense) {
    if (v > 0.0) ++nnz;
  }
  step->nnz = nnz;
  step->density = sigma == 0
                      ? 1.0
                      : static_cast<double>(nnz) /
                            static_cast<double>(sigma * sigma);
  if (step->density <= kernels::kSparseBuildMaxDensity) {
    kernels::BuildCsr(step->dense.data(), sigma, sigma, &step->row_off,
                      &step->col_idx, &step->val);
    kernels::BuildCsrTranspose(step->dense.data(), sigma, sigma,
                               &step->t_row_off, &step->t_col_idx,
                               &step->t_val);
    step->has_sparse = true;
  }
  return step;
}

void MarkovSequence::FinishSteps() {
  double total = 0.0;
  size_t distinct = 0;
  bool all_sparse = !steps_.empty();
  const TransitionStep* prev = nullptr;
  for (const auto& step : steps_) {
    if (step.get() == prev) continue;
    prev = step.get();
    ++distinct;
    total += step->density;
    all_sparse = all_sparse && step->has_sparse;
  }
  density_ = distinct == 0 ? 1.0 : total / static_cast<double>(distinct);
  all_sparse_ = all_sparse;
}

StatusOr<MarkovSequence> MarkovSequence::Create(
    Alphabet nodes, std::vector<double> initial,
    std::vector<std::vector<double>> transitions) {
  const size_t sigma = nodes.size();
  if (sigma == 0) {
    return Status::InvalidArgument("Markov sequence needs at least one node");
  }
  if (initial.size() != sigma) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  TMS_RETURN_IF_ERROR(
      CheckDistribution(initial.data(), sigma, "initial distribution"));
  for (size_t i = 0; i < transitions.size(); ++i) {
    TMS_RETURN_IF_ERROR(
        CheckTransitionMatrix(transitions[i], sigma, nodes, i));
  }
  MarkovSequence out;
  out.nodes_ = std::move(nodes);
  out.length_ = static_cast<int>(transitions.size()) + 1;
  out.initial_ = std::move(initial);
  out.steps_.reserve(transitions.size());
  for (auto& matrix : transitions) {
    // Share the storage of consecutive identical matrices (homogeneous
    // models round-tripped through the inhomogeneous representation).
    if (!out.steps_.empty() && out.steps_.back()->dense == matrix) {
      out.steps_.push_back(out.steps_.back());
      continue;
    }
    out.steps_.push_back(TransitionStep::Build(std::move(matrix), sigma));
  }
  out.FinishSteps();
  return out;
}

StatusOr<MarkovSequence> MarkovSequence::CreateHomogeneous(
    Alphabet nodes, std::vector<double> initial,
    std::vector<double> transition, int length) {
  const size_t sigma = nodes.size();
  if (sigma == 0) {
    return Status::InvalidArgument("Markov sequence needs at least one node");
  }
  if (length < 1) {
    return Status::InvalidArgument("length must be at least 1");
  }
  if (initial.size() != sigma) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  TMS_RETURN_IF_ERROR(
      CheckDistribution(initial.data(), sigma, "initial distribution"));
  if (length > 1) {
    TMS_RETURN_IF_ERROR(CheckTransitionMatrix(transition, sigma, nodes, 0));
  }
  MarkovSequence out;
  out.nodes_ = std::move(nodes);
  out.length_ = length;
  out.initial_ = std::move(initial);
  if (length > 1) {
    auto step = TransitionStep::Build(std::move(transition), sigma);
    out.steps_.assign(static_cast<size_t>(length - 1), step);
  }
  out.FinishSteps();
  return out;
}

StatusOr<MarkovSequence> MarkovSequence::CreateExact(
    Alphabet nodes, std::vector<numeric::Rational> initial,
    std::vector<std::vector<numeric::Rational>> transitions) {
  const size_t sigma = nodes.size();
  if (sigma == 0) {
    return Status::InvalidArgument("Markov sequence needs at least one node");
  }
  if (initial.size() != sigma) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  const numeric::Rational one(1);
  auto check_exact_row = [&](const numeric::Rational* row,
                             const char* what) -> Status {
    numeric::Rational sum;
    for (size_t t = 0; t < sigma; ++t) {
      if (row[t].Sign() < 0 || row[t] > one) {
        return Status::InvalidArgument(
            std::string(what) + " contains a probability outside [0,1]");
      }
      sum += row[t];
    }
    if (sum != one) {
      return Status::InvalidArgument(std::string(what) +
                                     " does not sum to exactly 1");
    }
    return Status::Ok();
  };
  TMS_RETURN_IF_ERROR(
      check_exact_row(initial.data(), "initial distribution"));
  for (size_t i = 0; i < transitions.size(); ++i) {
    if (transitions[i].size() != sigma * sigma) {
      return Status::InvalidArgument("transition matrix " +
                                     std::to_string(i + 1) + " has wrong size");
    }
    for (size_t s = 0; s < sigma; ++s) {
      TMS_RETURN_IF_ERROR(check_exact_row(
          transitions[i].data() + s * sigma,
          ("transition matrix " + std::to_string(i + 1)).c_str()));
    }
  }
  std::vector<double> dinitial(sigma);
  for (size_t s = 0; s < sigma; ++s) dinitial[s] = initial[s].ToDouble();
  MarkovSequence out;
  out.nodes_ = std::move(nodes);
  out.length_ = static_cast<int>(transitions.size()) + 1;
  out.initial_ = std::move(dinitial);
  out.steps_.reserve(transitions.size());
  for (const auto& matrix : transitions) {
    std::vector<double> dmatrix(sigma * sigma);
    for (size_t j = 0; j < sigma * sigma; ++j) dmatrix[j] = matrix[j].ToDouble();
    if (!out.steps_.empty() && out.steps_.back()->dense == dmatrix) {
      out.steps_.push_back(out.steps_.back());
      continue;
    }
    out.steps_.push_back(TransitionStep::Build(std::move(dmatrix), sigma));
  }
  out.FinishSteps();
  out.exact_initial_ = std::move(initial);
  out.exact_transitions_ = std::move(transitions);
  return out;
}

double MarkovSequence::Initial(Symbol s) const {
  TMS_DCHECK(nodes_.IsValid(s));
  return initial_[static_cast<size_t>(s)];
}

size_t MarkovSequence::TransIndex(int i, Symbol s, Symbol t) const {
  TMS_DCHECK(i >= 1 && i < length_);
  TMS_DCHECK(nodes_.IsValid(s) && nodes_.IsValid(t));
  (void)i;
  return static_cast<size_t>(s) * nodes_.size() + static_cast<size_t>(t);
}

const TransitionStep& MarkovSequence::Step(int i) const {
  TMS_DCHECK(i >= 1 && i < length_);
  return *steps_[static_cast<size_t>(i - 1)];
}

double MarkovSequence::Transition(int i, Symbol s, Symbol t) const {
  return Step(i).dense[TransIndex(i, s, t)];
}

kernels::MatrixRef MarkovSequence::TransitionView(int i) const {
  return Step(i).View();
}

const void* MarkovSequence::TransitionStepIdentity(int i) const {
  TMS_DCHECK(i >= 1 && i < length_);
  return steps_[static_cast<size_t>(i - 1)].get();
}

double MarkovSequence::WorldProbability(const Str& s) const {
  TMS_CHECK_EQ(static_cast<int>(s.size()), length_);
  double p = Initial(s[0]);
  for (int i = 1; i < length_ && p > 0; ++i) {
    p *= Transition(i, s[static_cast<size_t>(i - 1)],
                    s[static_cast<size_t>(i)]);
  }
  return p;
}

numeric::LogProb MarkovSequence::WorldLogProbability(const Str& s) const {
  TMS_CHECK_EQ(static_cast<int>(s.size()), length_);
  numeric::LogProb p = numeric::LogProb::FromLinear(Initial(s[0]));
  for (int i = 1; i < length_ && !p.IsZero(); ++i) {
    p *= numeric::LogProb::FromLinear(Transition(
        i, s[static_cast<size_t>(i - 1)], s[static_cast<size_t>(i)]));
  }
  return p;
}

const numeric::Rational& MarkovSequence::InitialExact(Symbol s) const {
  TMS_CHECK(has_exact());
  TMS_DCHECK(nodes_.IsValid(s));
  return (*exact_initial_)[static_cast<size_t>(s)];
}

const numeric::Rational& MarkovSequence::TransitionExact(int i, Symbol s,
                                                         Symbol t) const {
  TMS_CHECK(has_exact());
  return (*exact_transitions_)[static_cast<size_t>(i - 1)][TransIndex(i, s, t)];
}

numeric::Rational MarkovSequence::WorldProbabilityExact(const Str& s) const {
  TMS_CHECK(has_exact());
  TMS_CHECK_EQ(static_cast<int>(s.size()), length_);
  numeric::Rational p = InitialExact(s[0]);
  for (int i = 1; i < length_ && !p.IsZero(); ++i) {
    p *= TransitionExact(i, s[static_cast<size_t>(i - 1)],
                         s[static_cast<size_t>(i)]);
  }
  return p;
}

std::vector<double> MarkovSequence::Marginal(int i) const {
  TMS_CHECK(i >= 1 && i <= length_);
  const size_t sigma = nodes_.size();
  std::vector<double> cur = initial_;
  for (int step = 1; step < i; ++step) {
    std::vector<double> next(sigma, 0.0);
    const TransitionStep& m = Step(step);
    for (size_t s = 0; s < sigma; ++s) {
      if (cur[s] == 0) continue;
      if (m.has_sparse) {
        // Only the strictly positive entries contribute; the skipped
        // terms are exact zeros, so the sums are bitwise unchanged.
        for (int32_t e = m.row_off[s]; e < m.row_off[s + 1]; ++e) {
          next[static_cast<size_t>(m.col_idx[e])] += cur[s] * m.val[e];
        }
      } else {
        const double* row = m.dense.data() + s * sigma;
        for (size_t t = 0; t < sigma; ++t) next[t] += cur[s] * row[t];
      }
    }
    cur = std::move(next);
  }
  return cur;
}

numeric::BigInt MarkovSequence::CountSupportWorlds() const {
  const size_t sigma = nodes_.size();
  std::vector<numeric::BigInt> count(sigma);
  for (size_t s = 0; s < sigma; ++s) {
    if (initial_[s] > 0) count[s] = numeric::BigInt(1);
  }
  for (int i = 1; i < length_; ++i) {
    std::vector<numeric::BigInt> next(sigma);
    const TransitionStep& m = Step(i);
    for (size_t s = 0; s < sigma; ++s) {
      if (count[s].IsZero()) continue;
      if (m.has_sparse) {
        // The CSR pattern is exactly the > 0 support.
        for (int32_t e = m.row_off[s]; e < m.row_off[s + 1]; ++e) {
          next[static_cast<size_t>(m.col_idx[e])] += count[s];
        }
      } else {
        const double* row = m.dense.data() + s * sigma;
        for (size_t t = 0; t < sigma; ++t) {
          if (row[t] > 0) next[t] += count[s];
        }
      }
    }
    count = std::move(next);
  }
  numeric::BigInt total;
  for (const numeric::BigInt& c : count) total += c;
  return total;
}

}  // namespace tms::markov
