#include "markov/korder.h"

#include <cmath>
#include <set>

#include "common/check.h"
#include "kernels/dense.h"
#include "kernels/kernels.h"
#include "kernels/semiring.h"

namespace tms::markov {
namespace {

constexpr double kTol = 1e-9;

// The history at the next step: append s, keep the last `order` symbols.
Str NextHistory(const Str& history, Symbol s, int order) {
  Str out = history;
  out.push_back(s);
  if (static_cast<int>(out.size()) > order) {
    out.erase(out.begin(),
              out.end() - static_cast<long>(order));
  }
  return out;
}

std::string HistoryName(const Alphabet& nodes, const Str& h) {
  std::string out;
  for (size_t i = 0; i < h.size(); ++i) {
    if (i > 0) out += "·";
    out += nodes.Name(h[i]);
  }
  return out;
}

}  // namespace

StatusOr<KOrderMarkovSequence> KOrderMarkovSequence::Create(
    Alphabet nodes, int order, std::vector<double> initial,
    std::vector<ConditionalRows> transitions) {
  const size_t sigma = nodes.size();
  if (sigma == 0) {
    return Status::InvalidArgument("k-order sequence needs nodes");
  }
  if (order < 1) return Status::InvalidArgument("order must be >= 1");
  if (initial.size() != sigma) {
    return Status::InvalidArgument("initial distribution has wrong size");
  }
  double sum = 0;
  for (double p : initial) {
    if (!(p >= 0)) {
      return Status::InvalidArgument("negative initial probability");
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > kTol) {
    return Status::InvalidArgument("initial distribution does not sum to 1");
  }

  const int n = static_cast<int>(transitions.size()) + 1;

  // Walk the reachable histories layer by layer and validate their rows.
  std::set<Str> reachable;
  for (size_t s = 0; s < sigma; ++s) {
    if (initial[s] > 0) reachable.insert({static_cast<Symbol>(s)});
  }
  for (int i = 1; i < n; ++i) {
    const ConditionalRows& rows = transitions[static_cast<size_t>(i - 1)];
    std::set<Str> next;
    for (const Str& h : reachable) {
      auto it = rows.find(h);
      if (it == rows.end()) {
        return Status::InvalidArgument(
            "missing conditional row at step " + std::to_string(i) +
            " for history " + HistoryName(nodes, h));
      }
      const std::vector<double>& row = it->second;
      if (row.size() != sigma) {
        return Status::InvalidArgument("conditional row has wrong size");
      }
      double row_sum = 0;
      for (size_t s = 0; s < sigma; ++s) {
        if (!(row[s] >= 0)) {
          return Status::InvalidArgument("negative conditional probability");
        }
        row_sum += row[s];
      }
      if (std::abs(row_sum - 1.0) > kTol) {
        return Status::InvalidArgument(
            "conditional row does not sum to 1 at step " + std::to_string(i) +
            " for history " + HistoryName(nodes, h));
      }
      for (size_t s = 0; s < sigma; ++s) {
        if (row[s] > 0) {
          next.insert(NextHistory(h, static_cast<Symbol>(s), order));
        }
      }
    }
    reachable = std::move(next);
  }

  KOrderMarkovSequence out;
  out.nodes_ = std::move(nodes);
  out.order_ = order;
  out.length_ = n;
  out.initial_ = std::move(initial);
  out.transitions_ = std::move(transitions);
  return out;
}

double KOrderMarkovSequence::WorldProbability(const Str& world) const {
  TMS_CHECK_EQ(static_cast<int>(world.size()), length_);
  double p = initial_[static_cast<size_t>(world[0])];
  Str history = {world[0]};
  for (int i = 1; i < length_ && p > 0; ++i) {
    const ConditionalRows& rows = transitions_[static_cast<size_t>(i - 1)];
    auto it = rows.find(history);
    if (it == rows.end()) return 0.0;
    p *= it->second[static_cast<size_t>(world[static_cast<size_t>(i)])];
    history = NextHistory(history, world[static_cast<size_t>(i)], order_);
  }
  return p;
}

StatusOr<KOrderMarkovSequence::FirstOrder>
KOrderMarkovSequence::ToFirstOrder() const {
  const size_t sigma = nodes_.size();

  // Lifted node set: every history of length ≤ order that can occur at
  // any step (we enumerate all — bounded by Σ + Σ² + … + Σ^k — so one
  // alphabet serves every layer).
  Alphabet lifted;
  std::vector<Str> histories;
  std::vector<Symbol> last_symbol;
  {
    std::vector<Str> layer;
    for (size_t s = 0; s < sigma; ++s) layer.push_back({static_cast<Symbol>(s)});
    for (int len = 1; len <= order_; ++len) {
      for (const Str& h : layer) {
        lifted.Intern(HistoryName(nodes_, h));
        histories.push_back(h);
        last_symbol.push_back(h.back());
      }
      if (len == order_) break;
      std::vector<Str> next;
      for (const Str& h : layer) {
        for (size_t s = 0; s < sigma; ++s) {
          Str h2 = h;
          h2.push_back(static_cast<Symbol>(s));
          next.push_back(std::move(h2));
        }
      }
      layer = std::move(next);
    }
  }
  const size_t lifted_count = histories.size();
  auto lifted_id = [&](const Str& h) {
    return *lifted.Find(HistoryName(nodes_, h));
  };

  std::vector<double> lifted_initial(lifted_count, 0.0);
  for (size_t s = 0; s < sigma; ++s) {
    lifted_initial[static_cast<size_t>(lifted_id({static_cast<Symbol>(s)}))] =
        initial_[s];
  }

  std::vector<std::vector<double>> lifted_transitions(
      static_cast<size_t>(length_ - 1),
      std::vector<double>(lifted_count * lifted_count, 0.0));
  std::vector<double> row_sums(lifted_count);
  kernels::Vector<double> row_sums_v(row_sums.data(), lifted_count);
  for (int i = 1; i < length_; ++i) {
    auto& matrix = lifted_transitions[static_cast<size_t>(i - 1)];
    const ConditionalRows& rows = transitions_[static_cast<size_t>(i - 1)];
    for (size_t hid = 0; hid < lifted_count; ++hid) {
      const Str& h = histories[hid];
      auto it = rows.find(h);
      if (it != rows.end()) {
        for (size_t s = 0; s < sigma; ++s) {
          double p = it->second[s];
          if (p <= 0) continue;
          Str h2 = NextHistory(h, static_cast<Symbol>(s), order_);
          matrix[hid * lifted_count +
                 static_cast<size_t>(lifted_id(h2))] = p;
        }
      } else {
        // History unreachable at this step: arbitrary valid row.
        matrix[hid * lifted_count + hid] = 1.0;
      }
    }
    // Detect rows that got no mass (unreachable histories whose source row
    // was all-zero) in one dense pass. The entries are nonnegative, so
    // "sum == 0" is independent of accumulation order and the blocked
    // RowReduce is safe to use for the test.
    kernels::Matrix<double> matrix_m(matrix.data(), lifted_count,
                                     lifted_count);
    kernels::RowReduce<kernels::Real>(matrix_m, &row_sums_v);
    for (size_t hid = 0; hid < lifted_count; ++hid) {
      if (row_sums[hid] == 0) matrix[hid * lifted_count + hid] = 1.0;
    }
  }

  auto mu = MarkovSequence::Create(lifted, std::move(lifted_initial),
                                   std::move(lifted_transitions));
  if (!mu.ok()) return mu.status();

  FirstOrder out{std::move(mu).value(), std::move(last_symbol), nodes_};
  return out;
}

StatusOr<transducer::Transducer>
KOrderMarkovSequence::FirstOrder::LiftTransducer(
    const transducer::Transducer& t) const {
  if (!(t.input_alphabet() == original_nodes)) {
    return Status::InvalidArgument(
        "transducer input alphabet does not match the original node set");
  }
  transducer::Transducer out(mu.nodes(), t.output_alphabet(),
                             t.num_states());
  out.SetInitial(t.initial());
  for (automata::StateId q = 0; q < t.num_states(); ++q) {
    if (t.IsAccepting(q)) out.SetAccepting(q, true);
    for (size_t lifted_sym = 0; lifted_sym < mu.nodes().size();
         ++lifted_sym) {
      Symbol original = last_symbol[lifted_sym];
      for (const transducer::Edge& e : t.Next(q, original)) {
        TMS_RETURN_IF_ERROR(out.AddTransition(
            q, static_cast<Symbol>(lifted_sym), e.target, e.output));
      }
    }
  }
  return out;
}

Str KOrderMarkovSequence::FirstOrder::ProjectWorld(const Str& lifted) const {
  Str out;
  out.reserve(lifted.size());
  for (Symbol s : lifted) out.push_back(last_symbol[static_cast<size_t>(s)]);
  return out;
}

}  // namespace tms::markov
