// k-order Markov sequences (paper footnote 3: "all our results generalize
// to k-order Markov sequences, provided that k is fixed").
//
// A k-order Markov sequence conditions each node on the previous
// min(i−1, k) nodes. KOrderMarkovSequence stores the conditional
// distributions keyed by history; ToFirstOrder() performs the standard
// order reduction — nodes of the first-order chain are histories
// (strings of length ≤ k over Σ), with Pr preserved world-for-world —
// and LiftTransducer() rewrites any transducer over Σ to read the lifted
// history symbols, so every algorithm in query/ and projector/ applies to
// k-order data unchanged, realizing the footnote.

#ifndef TMS_MARKOV_KORDER_H_
#define TMS_MARKOV_KORDER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "markov/markov_sequence.h"
#include "strings/alphabet.h"
#include "strings/str.h"
#include "transducer/transducer.h"

namespace tms::markov {

/// A validated k-order Markov sequence over a finite node set.
class KOrderMarkovSequence {
 public:
  /// One conditional row: given `history` (the last min(i−1, k) nodes at
  /// step i), the distribution over the next node.
  using ConditionalRows = std::map<Str, std::vector<double>>;

  /// Creates a k-order sequence of length n.
  ///
  /// `initial` is the distribution of S_1 (|Σ| entries). `transitions`
  /// has n−1 entries; entry i−1 holds the conditionals for step i → i+1,
  /// keyed by histories of length min(i, k). Every *reachable* history
  /// must have a row that sums to 1 (tolerance 1e-9); unreachable
  /// histories may be omitted.
  static StatusOr<KOrderMarkovSequence> Create(
      Alphabet nodes, int order, std::vector<double> initial,
      std::vector<ConditionalRows> transitions);

  const Alphabet& nodes() const { return nodes_; }
  int order() const { return order_; }
  int length() const { return length_; }

  /// Pr of a full world (0 if any needed conditional row is absent).
  double WorldProbability(const Str& world) const;

  /// The order-reduction result.
  struct FirstOrder {
    /// The lifted chain; its node names are '·'-joined histories
    /// (e.g. "a·b" is the history [a, b]).
    MarkovSequence mu;
    /// For each lifted node, the original node it ends with.
    std::vector<Symbol> last_symbol;
    /// The original node alphabet.
    Alphabet original_nodes;

    /// Rewrites a transducer over the original alphabet to the lifted
    /// alphabet (each lifted symbol behaves as its last original node).
    /// Answers and confidences are preserved exactly.
    StatusOr<transducer::Transducer> LiftTransducer(
        const transducer::Transducer& t) const;

    /// Projects a lifted world back to the original node string.
    Str ProjectWorld(const Str& lifted) const;
  };

  /// The equivalent first-order Markov sequence (node set = reachable
  /// histories of length ≤ k; world probabilities preserved under
  /// ProjectWorld, which is a bijection on supports).
  StatusOr<FirstOrder> ToFirstOrder() const;

 private:
  KOrderMarkovSequence() = default;

  Alphabet nodes_;
  int order_ = 1;
  int length_ = 1;
  std::vector<double> initial_;
  std::vector<ConditionalRows> transitions_;
};

}  // namespace tms::markov

#endif  // TMS_MARKOV_KORDER_H_
