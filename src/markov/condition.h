// Conditioning a Markov sequence on a regular event.
//
// Example 3.4 of the paper conditions the query on side knowledge ("we
// know the cart was not contaminated in its first visit to the lab").
// This module makes such knowledge first-class: given μ and a DFA event
// E ⊆ Σ^n, it builds the posterior distribution Pr(S = · | S ∈ L(E)).
// That posterior is not Markov over Σ, but it IS Markov over the pairs
// (node, DFA state): with q_t = δ(q0, S_[1,t]) and the backward
// acceptance masses h_t(s, q) = Pr(S_[t+1,n] drives q into F | S_t = s),
//
//   Pr(S_{t+1} = u | S_t = s, q_t = q, accept)
//       = μ_t→(s, u) · h_{t+1}(u, δ(q, u)) / h_t(s, q).
//
// ConditionOnAcceptance() returns that lifted chain plus the projection
// back to Σ and a transducer-lifting helper, so every query algorithm
// applies to conditioned data unchanged (the same device korder.h uses).

#ifndef TMS_MARKOV_CONDITION_H_
#define TMS_MARKOV_CONDITION_H_

#include <vector>

#include "automata/dfa.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "transducer/transducer.h"

namespace tms::markov {

/// The posterior chain Pr(S = · | S ∈ L(E)) in lifted form.
struct ConditionedSequence {
  /// The lifted chain over (node, DFA-state) pairs (names "s@q").
  MarkovSequence mu;
  /// For each lifted symbol, the original node it stands for.
  std::vector<Symbol> base_symbol;
  /// The original node alphabet.
  Alphabet original_nodes;
  /// Pr(S ∈ L(E)) under the unconditioned μ.
  double event_probability = 0.0;

  /// Projects a lifted world back to the original node string.
  Str ProjectWorld(const Str& lifted) const;

  /// Rewrites a transducer over the original alphabet to read lifted
  /// symbols (answers and conditional confidences are preserved exactly).
  StatusOr<transducer::Transducer> LiftTransducer(
      const transducer::Transducer& t) const;
};

/// Builds the conditioned chain. Fails on alphabet mismatch or when the
/// event has probability 0.
StatusOr<ConditionedSequence> ConditionOnAcceptance(const MarkovSequence& mu,
                                                    const automata::Dfa& dfa);

}  // namespace tms::markov

#endif  // TMS_MARKOV_CONDITION_H_
