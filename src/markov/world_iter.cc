#include "markov/world_iter.h"

#include <cmath>

#include "common/check.h"
#include "graph/k_best_paths.h"

namespace tms::markov {
namespace {

void ForEachWorldRec(const MarkovSequence& mu, Str* prefix, double p,
                     const std::function<void(const Str&, double)>& fn) {
  const int i = static_cast<int>(prefix->size());
  if (i == mu.length()) {
    fn(*prefix, p);
    return;
  }
  for (size_t t = 0; t < mu.nodes().size(); ++t) {
    const Symbol sym = static_cast<Symbol>(t);
    double step =
        (i == 0) ? mu.Initial(sym) : mu.Transition(i, prefix->back(), sym);
    if (step <= 0) continue;
    prefix->push_back(sym);
    ForEachWorldRec(mu, prefix, p * step, fn);
    prefix->pop_back();
  }
}

void ForEachWorldExactRec(
    const MarkovSequence& mu, Str* prefix, const numeric::Rational& p,
    const std::function<void(const Str&, const numeric::Rational&)>& fn) {
  const int i = static_cast<int>(prefix->size());
  if (i == mu.length()) {
    fn(*prefix, p);
    return;
  }
  for (size_t t = 0; t < mu.nodes().size(); ++t) {
    const Symbol sym = static_cast<Symbol>(t);
    numeric::Rational step = (i == 0)
                                 ? mu.InitialExact(sym)
                                 : mu.TransitionExact(i, prefix->back(), sym);
    if (step.IsZero()) continue;
    prefix->push_back(sym);
    ForEachWorldExactRec(mu, prefix, p * step, fn);
    prefix->pop_back();
  }
}

}  // namespace

void ForEachWorld(const MarkovSequence& mu,
                  const std::function<void(const Str&, double)>& fn) {
  Str prefix;
  prefix.reserve(static_cast<size_t>(mu.length()));
  ForEachWorldRec(mu, &prefix, 1.0, fn);
}

void ForEachWorldExact(
    const MarkovSequence& mu,
    const std::function<void(const Str&, const numeric::Rational&)>& fn) {
  TMS_CHECK(mu.has_exact());
  Str prefix;
  prefix.reserve(static_cast<size_t>(mu.length()));
  ForEachWorldExactRec(mu, &prefix, numeric::Rational(1), fn);
}

Str SampleWorld(const MarkovSequence& mu, Rng& rng) {
  Str out;
  out.reserve(static_cast<size_t>(mu.length()));
  std::vector<double> weights(mu.nodes().size());
  for (int i = 0; i < mu.length(); ++i) {
    for (size_t t = 0; t < mu.nodes().size(); ++t) {
      const Symbol sym = static_cast<Symbol>(t);
      weights[t] =
          (i == 0) ? mu.Initial(sym) : mu.Transition(i, out.back(), sym);
    }
    out.push_back(static_cast<Symbol>(rng.Categorical(weights)));
  }
  return out;
}

std::pair<Str, double> MostLikelyWorld(const MarkovSequence& mu) {
  const size_t sigma = mu.nodes().size();
  const int n = mu.length();
  // best[t] = max probability of a prefix ending in node t; back[i][t] = arg.
  std::vector<double> best(sigma);
  std::vector<std::vector<Symbol>> back(
      static_cast<size_t>(n), std::vector<Symbol>(sigma, -1));
  for (size_t t = 0; t < sigma; ++t) best[t] = mu.Initial(static_cast<Symbol>(t));
  for (int i = 1; i < n; ++i) {
    std::vector<double> next(sigma, 0.0);
    for (size_t s = 0; s < sigma; ++s) {
      if (best[s] <= 0) continue;
      for (size_t t = 0; t < sigma; ++t) {
        double cand = best[s] * mu.Transition(i, static_cast<Symbol>(s),
                                              static_cast<Symbol>(t));
        if (cand > next[t]) {
          next[t] = cand;
          back[static_cast<size_t>(i)][t] = static_cast<Symbol>(s);
        }
      }
    }
    best = std::move(next);
  }
  size_t argmax = 0;
  for (size_t t = 1; t < sigma; ++t) {
    if (best[t] > best[argmax]) argmax = t;
  }
  Str world(static_cast<size_t>(n));
  world[static_cast<size_t>(n - 1)] = static_cast<Symbol>(argmax);
  for (int i = n - 1; i >= 1; --i) {
    world[static_cast<size_t>(i - 1)] =
        back[static_cast<size_t>(i)][static_cast<size_t>(world[static_cast<size_t>(i)])];
  }
  return {world, best[argmax]};
}

}  // namespace tms::markov

namespace tms::markov {

std::vector<std::pair<Str, double>> TopKWorlds(const MarkovSequence& mu,
                                               int k) {
  TMS_CHECK(k >= 0);
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  // Trellis DAG: 0 = source, 1 = sink, 2 + (t-1)·|Σ| + s = node s at t.
  graph::WeightedDag dag(2 + n * static_cast<int>(sigma));
  auto node = [&](int t, size_t s) {
    return static_cast<graph::NodeId>(2 + (t - 1) * static_cast<int>(sigma) +
                                      static_cast<int>(s));
  };
  for (size_t s = 0; s < sigma; ++s) {
    double p = mu.Initial(static_cast<Symbol>(s));
    if (p > 0) {
      dag.AddEdge(0, node(1, s), -std::log(p), static_cast<int64_t>(s));
    }
  }
  for (int t = 1; t < n; ++t) {
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t u = 0; u < sigma; ++u) {
        double p = mu.Transition(t, static_cast<Symbol>(s),
                                 static_cast<Symbol>(u));
        if (p > 0) {
          dag.AddEdge(node(t, s), node(t + 1, u), -std::log(p),
                      static_cast<int64_t>(u));
        }
      }
    }
  }
  for (size_t s = 0; s < sigma; ++s) {
    dag.AddEdge(node(n, s), 1, 0.0, -1);
  }

  std::vector<std::pair<Str, double>> out;
  graph::KBestPathsEnumerator it(dag, 0, 1);
  for (int i = 0; i < k; ++i) {
    auto path = it.Next();
    if (!path.has_value()) break;
    Str world;
    world.reserve(static_cast<size_t>(n));
    for (graph::EdgeId id : path->edges) {
      int64_t payload = dag.edge(id).payload;
      if (payload >= 0) world.push_back(static_cast<Symbol>(payload));
    }
    out.emplace_back(std::move(world), std::exp(-path->cost));
  }
  return out;
}

}  // namespace tms::markov
