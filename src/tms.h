// Umbrella header: everything a downstream user of tms needs.
//
//   #include "tms.h"
//
// pulls in the data model (Markov sequences, k-order variants,
// conditioning), the query model (transducers, s-projectors), every
// evaluation algorithm of the paper, the Lahar-style collection layer,
// serialization, and the workload generators. Individual headers remain
// the preferred includes inside the library itself.

#ifndef TMS_TMS_H_
#define TMS_TMS_H_

// Substrates.
#include "automata/dfa.h"          // IWYU pragma: export
#include "automata/nfa.h"          // IWYU pragma: export
#include "automata/ops.h"          // IWYU pragma: export
#include "automata/regex.h"        // IWYU pragma: export
#include "common/rng.h"            // IWYU pragma: export
#include "common/status.h"         // IWYU pragma: export
#include "graph/dag.h"             // IWYU pragma: export
#include "graph/k_best_paths.h"    // IWYU pragma: export
#include "numeric/bigint.h"        // IWYU pragma: export
#include "numeric/log_prob.h"      // IWYU pragma: export
#include "numeric/rational.h"      // IWYU pragma: export
#include "strings/alphabet.h"      // IWYU pragma: export
#include "strings/str.h"           // IWYU pragma: export

// Data model.
#include "hmm/hmm.h"               // IWYU pragma: export
#include "hmm/translate.h"         // IWYU pragma: export
#include "markov/builder.h"        // IWYU pragma: export
#include "markov/condition.h"      // IWYU pragma: export
#include "markov/korder.h"         // IWYU pragma: export
#include "markov/markov_sequence.h"  // IWYU pragma: export
#include "markov/world_iter.h"     // IWYU pragma: export

// Query model.
#include "projector/sprojector.h"  // IWYU pragma: export
#include "transducer/classes.h"    // IWYU pragma: export
#include "transducer/compose.h"    // IWYU pragma: export
#include "transducer/transducer.h" // IWYU pragma: export

// Evaluation.
#include "projector/evaluator.h"   // IWYU pragma: export
#include "projector/imax_enum.h"   // IWYU pragma: export
#include "projector/indexed_confidence.h"  // IWYU pragma: export
#include "projector/indexed_enum.h"        // IWYU pragma: export
#include "projector/sprojector_confidence.h"  // IWYU pragma: export
#include "query/approx.h"          // IWYU pragma: export
#include "query/confidence.h"      // IWYU pragma: export
#include "query/confidence_exact.h"  // IWYU pragma: export
#include "query/emax.h"            // IWYU pragma: export
#include "query/emax_enum.h"       // IWYU pragma: export
#include "query/evaluator.h"       // IWYU pragma: export
#include "query/membership.h"      // IWYU pragma: export
#include "query/top_confidence.h"  // IWYU pragma: export
#include "query/unranked_enum.h"   // IWYU pragma: export

// Database layer, serialization, workloads.
#include "db/collection.h"         // IWYU pragma: export
#include "db/event_query.h"        // IWYU pragma: export
#include "io/text_format.h"        // IWYU pragma: export
#include "workload/bio.h"          // IWYU pragma: export
#include "workload/hospital.h"     // IWYU pragma: export
#include "workload/random_models.h"  // IWYU pragma: export
#include "workload/running_example.h"  // IWYU pragma: export
#include "workload/text.h"         // IWYU pragma: export

#endif  // TMS_TMS_H_
