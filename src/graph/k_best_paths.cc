#include "graph/k_best_paths.h"

#include <algorithm>

#include "common/check.h"

namespace tms::graph {

KBestPathsEnumerator::KBestPathsEnumerator(const WeightedDag& dag,
                                           NodeId source, NodeId sink)
    : dag_(dag), sink_(sink) {
  auto dist = dag.MinCostToSink(sink);
  TMS_CHECK(dist.ok());  // acyclicity is a precondition
  to_sink_ = std::move(dist).value();
  double h0 = to_sink_[static_cast<size_t>(source)];
  if (h0 == WeightedDag::kInf) {
    exhausted_ = true;
    return;
  }
  frontier_.push(Partial{h0, 0.0, source, -1});
}

void KBestPathsEnumerator::ExpandUntilSinkOnTop() {
  while (!frontier_.empty() && frontier_.top().node != sink_) {
    Partial cur = frontier_.top();
    frontier_.pop();
    for (EdgeId id : dag_.OutEdges(cur.node)) {
      const DagEdge& e = dag_.edge(id);
      double h = to_sink_[static_cast<size_t>(e.to)];
      if (h == WeightedDag::kInf) continue;
      arena_.push_back(ArenaEntry{id, cur.arena});
      Partial next;
      next.g = cur.g + e.cost;
      next.f = next.g + h;
      next.node = e.to;
      next.arena = static_cast<int32_t>(arena_.size()) - 1;
      frontier_.push(next);
    }
  }
}

Path KBestPathsEnumerator::Reconstruct(const Partial& p) const {
  Path out;
  out.cost = p.g;
  for (int32_t idx = p.arena; idx >= 0;
       idx = arena_[static_cast<size_t>(idx)].parent) {
    out.edges.push_back(arena_[static_cast<size_t>(idx)].edge);
  }
  std::reverse(out.edges.begin(), out.edges.end());
  return out;
}

std::optional<Path> KBestPathsEnumerator::Next() {
  if (exhausted_) return std::nullopt;
  ExpandUntilSinkOnTop();
  if (frontier_.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  Partial top = frontier_.top();
  frontier_.pop();
  return Reconstruct(top);
}

std::optional<double> KBestPathsEnumerator::PeekCost() {
  if (exhausted_) return std::nullopt;
  ExpandUntilSinkOnTop();
  if (frontier_.empty()) {
    exhausted_ = true;
    return std::nullopt;
  }
  return frontier_.top().g;
}

std::vector<Path> KBestPaths(const WeightedDag& dag, NodeId source,
                             NodeId sink, int k) {
  KBestPathsEnumerator it(dag, source, sink);
  std::vector<Path> out;
  for (int i = 0; i < k; ++i) {
    auto path = it.Next();
    if (!path.has_value()) break;
    out.push_back(std::move(*path));
  }
  return out;
}

}  // namespace tms::graph
