// Edge-weighted directed acyclic graphs.
//
// The substrate for Theorem 5.7: ranked enumeration for indexed
// s-projectors reduces to enumerating the source→sink paths of an
// edge-weighted DAG in increasing weight (the paper cites Eppstein [14]).
// Costs are additive doubles; probability products are mapped to costs via
// cost = −log p, so min-cost paths are max-probability answers.

#ifndef TMS_GRAPH_DAG_H_
#define TMS_GRAPH_DAG_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"

namespace tms::graph {

/// Node and edge ids are dense ints.
using NodeId = int32_t;
using EdgeId = int32_t;

/// An edge with an additive cost and an opaque payload for callers (the
/// indexed-s-projector enumeration stores emitted symbols / indices there).
struct DagEdge {
  NodeId from = 0;
  NodeId to = 0;
  double cost = 0.0;
  int64_t payload = 0;
};

/// A directed graph intended to be acyclic; acyclicity is verified by
/// TopologicalOrder() and required by the path algorithms.
class WeightedDag {
 public:
  explicit WeightedDag(int num_nodes = 0);

  NodeId AddNode();

  /// Adds an edge and returns its id. Parallel edges are allowed (they
  /// represent distinct answers in the s-projector reduction).
  EdgeId AddEdge(NodeId from, NodeId to, double cost, int64_t payload = 0);

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const DagEdge& edge(EdgeId id) const;
  const std::vector<EdgeId>& OutEdges(NodeId v) const;

  /// A topological order, or an error if the graph has a cycle.
  StatusOr<std::vector<NodeId>> TopologicalOrder() const;

  /// For every node v, the minimum cost of a v→sink path
  /// (+inf where no path exists; 0 at the sink). Requires acyclicity.
  StatusOr<std::vector<double>> MinCostToSink(NodeId sink) const;

  /// The number of source→sink paths (can be huge; exact BigInt-free count
  /// capped at 2^63-1, saturating).
  StatusOr<int64_t> CountPaths(NodeId source, NodeId sink) const;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

 private:
  std::vector<DagEdge> edges_;
  std::vector<std::vector<EdgeId>> out_;
};

/// A complete source→sink path: edge ids in order plus the total cost.
struct Path {
  std::vector<EdgeId> edges;
  double cost = 0.0;
};

/// The single minimum-cost source→sink path, if any.
StatusOr<Path> BestPath(const WeightedDag& dag, NodeId source, NodeId sink);

}  // namespace tms::graph

#endif  // TMS_GRAPH_DAG_H_
