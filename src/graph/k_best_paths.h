// Incremental enumeration of source→sink paths in nondecreasing cost.
//
// This is the engine behind Theorem 5.7 (exact ranked enumeration for
// indexed s-projectors). The implementation is a lazy best-first search
// over the prefix tree of paths with the *exact* completion heuristic
// h(v) = min-cost(v → sink), precomputed by one backward DAG sweep. With an
// exact heuristic, partial paths pop from the frontier in the order of the
// best complete path extending them, so complete paths emerge in exactly
// nondecreasing total cost.
//
// Complexity: amortized O(out-degree · log F) heap work per emitted path
// (F = frontier size); every popped partial path is a prefix of some
// eventually-emitted path, so the total number of pops for the first k
// paths is at most k·L (L = max path length). The frontier grows with the
// number of emitted answers — the paper's polynomial-space variant (via
// Eppstein's implicit heap [14]) trades this for a more intricate
// structure; see DESIGN.md.

#ifndef TMS_GRAPH_K_BEST_PATHS_H_
#define TMS_GRAPH_K_BEST_PATHS_H_

#include <optional>
#include <queue>
#include <vector>

#include "graph/dag.h"

namespace tms::graph {

/// Streams source→sink paths of a DAG in nondecreasing cost. The DAG must
/// outlive the enumerator and must not change during enumeration.
class KBestPathsEnumerator {
 public:
  KBestPathsEnumerator(const WeightedDag& dag, NodeId source, NodeId sink);

  /// The next cheapest path, or nullopt when exhausted. Paths with equal
  /// cost are emitted in an arbitrary (deterministic) order.
  std::optional<Path> Next();

  /// Peek at the cost of the next path without consuming it.
  std::optional<double> PeekCost();

 private:
  struct Partial {
    double f = 0.0;        // cost so far + exact completion heuristic
    double g = 0.0;        // cost so far
    NodeId node = 0;
    int32_t arena = -1;    // index of last edge record in arena_, -1 = none
  };
  struct ArenaEntry {
    EdgeId edge;
    int32_t parent;
  };
  struct PartialGreater {
    bool operator()(const Partial& a, const Partial& b) const {
      return a.f > b.f;
    }
  };

  void ExpandUntilSinkOnTop();
  Path Reconstruct(const Partial& p) const;

  const WeightedDag& dag_;
  NodeId sink_;
  std::vector<double> to_sink_;  // exact heuristic
  std::vector<ArenaEntry> arena_;
  std::priority_queue<Partial, std::vector<Partial>, PartialGreater> frontier_;
  bool exhausted_ = false;
};

/// Convenience: the k cheapest paths (fewer if the DAG has fewer).
std::vector<Path> KBestPaths(const WeightedDag& dag, NodeId source,
                             NodeId sink, int k);

}  // namespace tms::graph

#endif  // TMS_GRAPH_K_BEST_PATHS_H_
