#include "graph/dag.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace tms::graph {

WeightedDag::WeightedDag(int num_nodes) {
  TMS_CHECK(num_nodes >= 0);
  out_.assign(static_cast<size_t>(num_nodes), {});
}

NodeId WeightedDag::AddNode() {
  out_.emplace_back();
  return static_cast<NodeId>(out_.size()) - 1;
}

EdgeId WeightedDag::AddEdge(NodeId from, NodeId to, double cost,
                            int64_t payload) {
  TMS_CHECK(from >= 0 && from < num_nodes());
  TMS_CHECK(to >= 0 && to < num_nodes());
  EdgeId id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(DagEdge{from, to, cost, payload});
  out_[static_cast<size_t>(from)].push_back(id);
  return id;
}

const DagEdge& WeightedDag::edge(EdgeId id) const {
  TMS_CHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[static_cast<size_t>(id)];
}

const std::vector<EdgeId>& WeightedDag::OutEdges(NodeId v) const {
  TMS_CHECK(v >= 0 && v < num_nodes());
  return out_[static_cast<size_t>(v)];
}

StatusOr<std::vector<NodeId>> WeightedDag::TopologicalOrder() const {
  std::vector<int> indegree(static_cast<size_t>(num_nodes()), 0);
  for (const DagEdge& e : edges_) ++indegree[static_cast<size_t>(e.to)];
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (indegree[static_cast<size_t>(v)] == 0) ready.push(v);
  }
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(num_nodes()));
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (EdgeId id : out_[static_cast<size_t>(v)]) {
      NodeId to = edges_[static_cast<size_t>(id)].to;
      if (--indegree[static_cast<size_t>(to)] == 0) ready.push(to);
    }
  }
  if (order.size() != static_cast<size_t>(num_nodes())) {
    return Status::FailedPrecondition("graph contains a cycle");
  }
  return order;
}

StatusOr<std::vector<double>> WeightedDag::MinCostToSink(NodeId sink) const {
  TMS_CHECK(sink >= 0 && sink < num_nodes());
  auto order = TopologicalOrder();
  if (!order.ok()) return order.status();
  std::vector<double> dist(static_cast<size_t>(num_nodes()), kInf);
  dist[static_cast<size_t>(sink)] = 0.0;
  // Process in reverse topological order so successors are final.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    NodeId v = *it;
    for (EdgeId id : out_[static_cast<size_t>(v)]) {
      const DagEdge& e = edges_[static_cast<size_t>(id)];
      double cand = e.cost + dist[static_cast<size_t>(e.to)];
      if (cand < dist[static_cast<size_t>(v)]) {
        dist[static_cast<size_t>(v)] = cand;
      }
    }
  }
  return dist;
}

StatusOr<int64_t> WeightedDag::CountPaths(NodeId source, NodeId sink) const {
  auto order = TopologicalOrder();
  if (!order.ok()) return order.status();
  constexpr int64_t kCap = std::numeric_limits<int64_t>::max();
  std::vector<int64_t> count(static_cast<size_t>(num_nodes()), 0);
  count[static_cast<size_t>(sink)] = 1;
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    NodeId v = *it;
    if (v == sink) continue;
    int64_t total = 0;
    for (EdgeId id : out_[static_cast<size_t>(v)]) {
      int64_t c = count[static_cast<size_t>(edges_[static_cast<size_t>(id)].to)];
      if (c > kCap - total) {
        total = kCap;
        break;
      }
      total += c;
    }
    count[static_cast<size_t>(v)] = total;
  }
  return count[static_cast<size_t>(source)];
}

StatusOr<Path> BestPath(const WeightedDag& dag, NodeId source, NodeId sink) {
  auto dist = dag.MinCostToSink(sink);
  if (!dist.ok()) return dist.status();
  if ((*dist)[static_cast<size_t>(source)] == WeightedDag::kInf) {
    return Status::NotFound("no source->sink path");
  }
  Path out;
  NodeId v = source;
  while (v != sink) {
    EdgeId best = -1;
    double best_cost = WeightedDag::kInf;
    for (EdgeId id : dag.OutEdges(v)) {
      const DagEdge& e = dag.edge(id);
      double cand = e.cost + (*dist)[static_cast<size_t>(e.to)];
      if (cand < best_cost) {
        best_cost = cand;
        best = id;
      }
    }
    TMS_CHECK(best >= 0);
    out.edges.push_back(best);
    out.cost += dag.edge(best).cost;
    v = dag.edge(best).to;
  }
  return out;
}

}  // namespace tms::graph
