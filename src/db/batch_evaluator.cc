#include "db/batch_evaluator.h"

#include <string>
#include <utility>

#include "exec/fault.h"
#include "obs/obs.h"
#include "query/evaluator.h"

namespace tms::db {

BatchEvaluator::BatchEvaluator(const SequenceCollection* collection,
                               const transducer::Transducer* t,
                               Options options)
    : collection_(collection),
      t_(t),
      options_(options),
      cache_(std::make_unique<transducer::CompositionCache>(
          t, options.cache_max_bytes)),
      owned_pool_(options.pool != nullptr
                      ? nullptr
                      : std::make_unique<exec::ThreadPool>(
                            options.threads > 1 ? options.threads - 1 : 0)) {}

StatusOr<BatchEvaluator> BatchEvaluator::Create(
    const SequenceCollection* collection, const transducer::Transducer* t,
    Options options) {
  if (collection == nullptr || t == nullptr) {
    return Status::InvalidArgument("BatchEvaluator requires non-null args");
  }
  if (!(t->input_alphabet() == collection->nodes())) {
    return Status::InvalidArgument(
        "transducer input alphabet does not match the collection");
  }
  return BatchEvaluator(collection, t, options);
}

StatusOr<std::vector<SequenceCollection::Row>>
BatchEvaluator::TopKPerSequence(int k, bool with_confidence) {
  TMS_OBS_SPAN("db.batch.topk");
  const std::vector<std::string> keys = collection_->Keys();  // sorted
  struct PerSequence {
    Status status;  // default OK
    std::vector<query::AnswerInfo> answers;
  };
  // One item per sequence; each evaluation only reads its own μ, the
  // shared transducer, and the thread-safe composition cache. The answer
  // parallelism inside each evaluation stays off (no nested pool) — the
  // batch dimension already saturates the workers.
  std::vector<PerSequence> solved =
      pool()->ParallelMap<PerSequence>(
          static_cast<int64_t>(keys.size()),
          [this, k, with_confidence, &keys](int64_t i) {
            PerSequence out;
            auto mu = collection_->Get(keys[static_cast<size_t>(i)]);
            if (!mu.ok()) {
              out.status = mu.status();
              return out;
            }
            auto eval = query::Evaluator::Create(*mu, t_);
            if (!eval.ok()) {
              out.status = eval.status();
              return out;
            }
            query::Evaluator::Execution execution;
            execution.cache = cache_.get();
            execution.backend = options_.backend;
            execution.optimize = options_.optimize;
            eval->set_execution(execution);
            auto topk = eval->TopK(k, with_confidence);
            if (!topk.ok()) {
              out.status = topk.status();
              return out;
            }
            out.answers = std::move(*topk);
            TMS_OBS_COUNT("db.batch.sequences", 1);
            return out;
          });
  // Deterministic merge: key order, then per-sequence rank order —
  // exactly the rows the sequential loop produces.
  std::vector<SequenceCollection::Row> rows;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!solved[i].status.ok()) return solved[i].status;
    for (query::AnswerInfo& info : solved[i].answers) {
      rows.push_back(SequenceCollection::Row{keys[i], std::move(info)});
    }
  }
  TMS_OBS_COUNT("db.batch.answers", static_cast<int64_t>(rows.size()));
  return rows;
}

std::vector<BatchEvaluator::SequenceResult> BatchEvaluator::EvaluateAll(
    int k, bool with_confidence) {
  TMS_OBS_SPAN("db.batch.evaluate_all");
  const std::vector<std::string> keys = collection_->Keys();  // sorted
  exec::RunContext* batch_run = options_.run;
  std::vector<SequenceResult> results = pool()->ParallelMap<SequenceResult>(
      static_cast<int64_t>(keys.size()),
      [this, k, with_confidence, &keys, batch_run](int64_t i) {
        SequenceResult out;
        out.key = keys[static_cast<size_t>(i)];
        if (TMS_FAULT_POINT("batch.pre_sequence")) {
          out.status = Status::Internal(
              "injected resource failure at batch.pre_sequence");
          TMS_OBS_COUNT("db.batch.failures", 1);
          return out;
        }
        // A child stream shares the batch deadline / budget / cancel
        // token but owns its answer count and stop reason, so each
        // sequence reports its own truncation. The parent's answer cap is
        // inherited as a PER-SEQUENCE cap (top-k per sequence, not k
        // answers across the whole batch).
        exec::RunContext child;
        exec::RunContext* run = nullptr;
        if (batch_run != nullptr) {
          child = batch_run->Child(batch_run->max_answers());
          run = &child;
        }
        auto mu = collection_->Get(out.key);
        if (!mu.ok()) {
          out.status = mu.status();
          TMS_OBS_COUNT("db.batch.failures", 1);
          return out;
        }
        auto eval = query::Evaluator::Create(*mu, t_);
        if (!eval.ok()) {
          out.status = eval.status();
          TMS_OBS_COUNT("db.batch.failures", 1);
          return out;
        }
        query::Evaluator::Execution execution;
        execution.cache = cache_.get();
        execution.run = run;
        execution.backend = options_.backend;
        execution.optimize = options_.optimize;
        eval->set_execution(execution);
        auto topk = eval->TopK(k, with_confidence);
        if (!topk.ok()) {
          out.status = topk.status();
          TMS_OBS_COUNT("db.batch.failures", 1);
          return out;
        }
        out.answers = std::move(*topk);
        if (run != nullptr) {
          out.status = run->status();
          out.truncated = run->truncated();
          out.reason = run->stop_reason();
          if (out.truncated) TMS_OBS_COUNT("db.batch.truncated", 1);
        }
        TMS_OBS_COUNT("db.batch.sequences", 1);
        return out;
      });
  return results;
}

}  // namespace tms::db
