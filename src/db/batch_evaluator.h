// Batched query evaluation over a SequenceCollection.
//
// Runs one transducer query against every Markov sequence of a collection,
// fanning the per-sequence evaluations across an exec::ThreadPool. Two
// properties make the fan-out worthwhile and safe:
//   * the sequences are independent — each evaluation reads only its own
//     μ, the shared (immutable) transducer, and the shared composition
//     cache;
//   * the composed transducers depend only on (transducer, constraint),
//     never on μ, so one CompositionCache serves the whole batch: after
//     the first sequence warms it, the remaining evaluations skip their
//     composition work entirely (watch `cache.hits` climb).
//
// Results are merged in collection key order (then per-sequence rank
// order), so the output is byte-identical to SequenceCollection's
// sequential TopKPerSequence at every thread count.

#ifndef TMS_DB_BATCH_EVALUATOR_H_
#define TMS_DB_BATCH_EVALUATOR_H_

#include <vector>

#include "common/status.h"
#include "db/collection.h"
#include "exec/run_context.h"
#include "kernels/backend.h"
#include "exec/thread_pool.h"
#include "optimize/level.h"
#include "transducer/composition_cache.h"
#include "transducer/transducer.h"

namespace tms::db {

/// One query (transducer) bound to one collection, with an owned thread
/// pool and composition cache. The collection and transducer are
/// non-owning and must outlive the evaluator; the collection must not be
/// mutated while a batch runs.
class BatchEvaluator {
 public:
  struct Options {
    /// Total evaluation concurrency (worker threads + the calling
    /// thread); values ≤ 1 run sequentially on the caller. Ignored when
    /// `pool` is set.
    int threads = 1;
    /// Optional, non-owning: run the batch on this shared pool instead of
    /// an owned one. Several BatchEvaluators (several concurrent queries)
    /// can then share one set of workers; per-query observability stays
    /// separable because every ParallelFor batch carries its opener's
    /// obs::QueryScope context.
    exec::ThreadPool* pool = nullptr;
    /// Budget of the shared composition cache.
    size_t cache_max_bytes = transducer::CompositionCache::kDefaultMaxBytes;
    /// Optional, non-owning. Bounds the whole batch: the deadline, work
    /// budget, and cancel token are shared across every sequence (one
    /// global pool), while each sequence evaluates under its own
    /// `run->Child()` stream so truncation is reported per sequence.
    /// Only EvaluateAll consumes it; TopKPerSequence ignores it (its
    /// first-error contract predates bounded execution).
    exec::RunContext* run = nullptr;
    /// Kernel path of every per-sequence DP (kernels/backend.h). Results
    /// are byte-identical either way; auto picks per sequence density.
    kernels::BackendChoice backend = kernels::BackendChoice::kAuto;
    /// Offline optimization level for every per-sequence engine
    /// (optimize/transducer_opt.h). The shared composition cache keys
    /// optimized and unoptimized products separately, so mixed batches
    /// stay correct; answer streams are identical at every level.
    optimize::Level optimize = optimize::Level::kAuto;
  };

  /// Outcome of one sequence in an EvaluateAll batch.
  struct SequenceResult {
    std::string key;
    /// OK when the evaluation ran to completion or stopped at a
    /// client-requested answer cap; a structured error
    /// (kDeadlineExceeded / kBudgetExhausted / kCancelled / input errors)
    /// otherwise. A non-OK status never aborts the batch — the remaining
    /// sequences still evaluate (or report the same shared-limit status).
    Status status;
    /// True when `answers` is a proper prefix of the sequence's full
    /// ranked stream because a limit fired; `reason` says which one.
    bool truncated = false;
    exec::StopReason reason = exec::StopReason::kNone;
    /// The answers produced before the stop — always a byte-identical
    /// prefix of the unbounded stream, possibly empty.
    std::vector<query::AnswerInfo> answers;
  };

  /// Fails if the transducer's input alphabet differs from the
  /// collection's node alphabet.
  static StatusOr<BatchEvaluator> Create(const SequenceCollection* collection,
                                         const transducer::Transducer* t,
                                         Options options);
  static StatusOr<BatchEvaluator> Create(const SequenceCollection* collection,
                                         const transducer::Transducer* t) {
    return Create(collection, t, Options());
  }

  /// Per-sequence top-k answers by E_max (confidences attached when
  /// `with_confidence`), evaluated concurrently and merged in key order.
  /// Aborts on the first per-sequence error (legacy contract); use
  /// EvaluateAll for error isolation and bounded execution.
  StatusOr<std::vector<SequenceCollection::Row>> TopKPerSequence(
      int k, bool with_confidence = true);

  /// Like TopKPerSequence, but failure-isolating: one sequence failing —
  /// bad input, an injected fault, or a shared limit firing mid-batch —
  /// produces a non-OK SequenceResult::status for that sequence while the
  /// batch itself always completes. Results come back in key order. An
  /// empty collection yields an empty vector, not an error.
  std::vector<SequenceResult> EvaluateAll(int k, bool with_confidence = true);

  int threads() const { return options_.threads; }
  transducer::CompositionCache::Stats cache_stats() const {
    return cache_->stats();
  }

 private:
  BatchEvaluator(const SequenceCollection* collection,
                 const transducer::Transducer* t, Options options);

  // The pool batches run on: the shared Options::pool when set, else the
  // owned one.
  exec::ThreadPool* pool() {
    return options_.pool != nullptr ? options_.pool : owned_pool_.get();
  }

  const SequenceCollection* collection_;
  const transducer::Transducer* t_;
  Options options_;
  // unique_ptr so BatchEvaluator stays movable (StatusOr needs that);
  // the cache is created in the constructor and never null, the owned
  // pool is null when Options::pool supplies an external one.
  std::unique_ptr<transducer::CompositionCache> cache_;
  std::unique_ptr<exec::ThreadPool> owned_pool_;
};

}  // namespace tms::db

#endif  // TMS_DB_BATCH_EVALUATOR_H_
