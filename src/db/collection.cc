#include "db/collection.h"

#include <algorithm>

#include "projector/sprojector_confidence.h"
#include "query/confidence.h"
#include "query/emax_enum.h"

namespace tms::db {

Status SequenceCollection::Insert(const std::string& key,
                                  markov::MarkovSequence mu) {
  if (!(mu.nodes() == nodes_)) {
    return Status::InvalidArgument(
        "sequence node set does not match the collection alphabet");
  }
  sequences_.insert_or_assign(key, std::move(mu));
  return Status::Ok();
}

bool SequenceCollection::Erase(const std::string& key) {
  return sequences_.erase(key) > 0;
}

std::vector<std::string> SequenceCollection::Keys() const {
  std::vector<std::string> out;
  out.reserve(sequences_.size());
  for (const auto& [key, mu] : sequences_) out.push_back(key);
  return out;
}

StatusOr<const markov::MarkovSequence*> SequenceCollection::Get(
    const std::string& key) const {
  auto it = sequences_.find(key);
  if (it == sequences_.end()) {
    return Status::NotFound("no sequence under key: " + key);
  }
  return &it->second;
}

StatusOr<std::vector<SequenceCollection::Row>>
SequenceCollection::TopKPerSequence(const transducer::Transducer& t,
                                    int k) const {
  if (!(t.input_alphabet() == nodes_)) {
    return Status::InvalidArgument(
        "transducer input alphabet does not match the collection");
  }
  std::vector<Row> out;
  for (const auto& [key, mu] : sequences_) {
    auto eval = query::Evaluator::Create(&mu, &t);
    if (!eval.ok()) return eval.status();
    auto topk = eval->TopK(k);
    if (!topk.ok()) return topk.status();
    for (query::AnswerInfo& info : *topk) {
      out.push_back(Row{key, std::move(info)});
    }
  }
  return out;
}

StatusOr<std::vector<std::pair<std::string, double>>>
SequenceCollection::AcceptanceByKey(const automata::Dfa& dfa) const {
  if (!(dfa.alphabet() == nodes_)) {
    return Status::InvalidArgument(
        "DFA alphabet does not match the collection");
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, mu] : sequences_) {
    out.emplace_back(key, projector::AcceptanceProbability(mu, dfa));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

StatusOr<std::vector<std::pair<std::string, double>>>
SequenceCollection::RankSequencesByAnswer(const transducer::Transducer& t,
                                          const Str& o) const {
  if (!(t.input_alphabet() == nodes_)) {
    return Status::InvalidArgument(
        "transducer input alphabet does not match the collection");
  }
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, mu] : sequences_) {
    auto conf = query::Confidence(mu, t, o);
    if (!conf.ok()) return conf.status();
    out.emplace_back(key, *conf);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace tms::db
