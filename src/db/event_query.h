// Lahar-style event queries.
//
// Lahar's original query class (paper §6: "queries are essentially linear
// DFAs… at each time period it returns the probability that it is
// evaluated to true") asks, per time step, for the probability that an
// event pattern has been observed. This module provides that per-time
// probability series for a single sequence and across a collection.

#ifndef TMS_DB_EVENT_QUERY_H_
#define TMS_DB_EVENT_QUERY_H_

#include <map>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "common/status.h"
#include "db/collection.h"
#include "markov/markov_sequence.h"

namespace tms::db {

/// series[t-1] = Pr(S_[1,t] ∈ L(dfa)) for t = 1..n — the probability that
/// the event pattern has matched by time t. O(n·|Σ|²·|Q|).
std::vector<double> PrefixAcceptanceSeries(const markov::MarkovSequence& mu,
                                           const automata::Dfa& dfa);

/// series[t-1] = Pr(∃ t' ≤ t with S_[1,t'] ∈ L(dfa)): the event has FIRED
/// at or before time t (monotone nondecreasing). Computed by absorbing the
/// DFA's accepting states first. O(n·|Σ|²·|Q|).
std::vector<double> EventFiredSeries(const markov::MarkovSequence& mu,
                                     const automata::Dfa& dfa);

/// The fired-series for every sequence of a collection.
StatusOr<std::map<std::string, std::vector<double>>> CollectionEventSeries(
    const SequenceCollection& collection, const automata::Dfa& dfa);

}  // namespace tms::db

#endif  // TMS_DB_EVENT_QUERY_H_
