#include "db/event_query.h"

#include "common/check.h"

namespace tms::db {
namespace {

// Forward mass over (node, DFA state); `absorb` keeps runs in accepting
// states once reached (for the "fired by time t" semantics).
std::vector<double> SeriesImpl(const markov::MarkovSequence& mu,
                               const automata::Dfa& dfa, bool absorb) {
  TMS_CHECK(mu.nodes() == dfa.alphabet());
  const int n = mu.length();
  const size_t sigma = mu.nodes().size();
  const size_t nq = static_cast<size_t>(dfa.num_states());

  auto next_state = [&](size_t q, Symbol u) {
    if (absorb && dfa.IsAccepting(static_cast<automata::StateId>(q))) {
      return q;  // accepting states absorb: once fired, always fired
    }
    return static_cast<size_t>(
        dfa.Next(static_cast<automata::StateId>(q), u));
  };

  std::vector<double> series;
  series.reserve(static_cast<size_t>(n));
  std::vector<double> cur(sigma * nq, 0.0);
  for (size_t s = 0; s < sigma; ++s) {
    double p0 = mu.Initial(static_cast<Symbol>(s));
    if (p0 <= 0) continue;
    // The empty prefix never counts as a firing, so the first symbol
    // always advances from the initial state (no absorption yet).
    cur[s * nq +
        static_cast<size_t>(dfa.Next(dfa.initial(), static_cast<Symbol>(s)))] +=
        p0;
  }
  auto accepting_mass = [&]() {
    double total = 0;
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        if (dfa.IsAccepting(static_cast<automata::StateId>(q))) {
          total += cur[s * nq + q];
        }
      }
    }
    return total;
  };
  series.push_back(accepting_mass());
  for (int t = 2; t <= n; ++t) {
    std::vector<double> next(sigma * nq, 0.0);
    for (size_t s = 0; s < sigma; ++s) {
      for (size_t q = 0; q < nq; ++q) {
        double mass = cur[s * nq + q];
        if (mass <= 0) continue;
        for (size_t u = 0; u < sigma; ++u) {
          double step = mu.Transition(t - 1, static_cast<Symbol>(s),
                                      static_cast<Symbol>(u));
          if (step <= 0) continue;
          next[u * nq + next_state(q, static_cast<Symbol>(u))] += mass * step;
        }
      }
    }
    cur = std::move(next);
    series.push_back(accepting_mass());
  }
  return series;
}

}  // namespace

std::vector<double> PrefixAcceptanceSeries(const markov::MarkovSequence& mu,
                                           const automata::Dfa& dfa) {
  return SeriesImpl(mu, dfa, /*absorb=*/false);
}

std::vector<double> EventFiredSeries(const markov::MarkovSequence& mu,
                                     const automata::Dfa& dfa) {
  return SeriesImpl(mu, dfa, /*absorb=*/true);
}

StatusOr<std::map<std::string, std::vector<double>>> CollectionEventSeries(
    const SequenceCollection& collection, const automata::Dfa& dfa) {
  if (!(dfa.alphabet() == collection.nodes())) {
    return Status::InvalidArgument(
        "DFA alphabet does not match the collection");
  }
  std::map<std::string, std::vector<double>> out;
  for (const std::string& key : collection.Keys()) {
    auto mu = collection.Get(key);
    if (!mu.ok()) return mu.status();
    out[key] = EventFiredSeries(**mu, dfa);
  }
  return out;
}

}  // namespace tms::db
