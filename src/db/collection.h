// A Lahar-style collection of Markov sequences.
//
// The paper situates itself inside Lahar, "a Markov-sequence database that
// supports query processing over a collection of Markov sequences", and
// studies the single-sequence core. SequenceCollection supplies the thin
// database layer around that core: named sequences sharing one node
// alphabet, per-sequence transducer evaluation, collection-wide Boolean
// automaton queries (Lahar's original query class — the probability that
// a DFA accepts), and cross-sequence ranking.

#ifndef TMS_DB_COLLECTION_H_
#define TMS_DB_COLLECTION_H_

#include <map>
#include <string>
#include <vector>

#include "automata/dfa.h"
#include "common/status.h"
#include "markov/markov_sequence.h"
#include "query/evaluator.h"
#include "transducer/transducer.h"

namespace tms::db {

/// A named collection of Markov sequences over one shared node alphabet
/// (e.g. one sequence per tracked RFID object).
class SequenceCollection {
 public:
  /// A collection whose members must use exactly this node alphabet.
  explicit SequenceCollection(Alphabet nodes) : nodes_(std::move(nodes)) {}

  /// Inserts (or replaces) a sequence under `key`. Fails on alphabet
  /// mismatch. Sequences may have different lengths.
  Status Insert(const std::string& key, markov::MarkovSequence mu);

  /// Removes a sequence; false if absent.
  bool Erase(const std::string& key);

  const Alphabet& nodes() const { return nodes_; }
  size_t size() const { return sequences_.size(); }
  std::vector<std::string> Keys() const;

  /// The sequence under `key`.
  StatusOr<const markov::MarkovSequence*> Get(const std::string& key) const;

  /// One (key, answer) result row.
  struct Row {
    std::string key;
    query::AnswerInfo answer;
  };

  /// Evaluates a transducer on every sequence and returns the per-sequence
  /// top-k answers by E_max, with confidences.
  StatusOr<std::vector<Row>> TopKPerSequence(const transducer::Transducer& t,
                                             int k) const;

  /// Lahar-style Boolean query: Pr(S ∈ L(dfa)) for every sequence, sorted
  /// by decreasing probability.
  StatusOr<std::vector<std::pair<std::string, double>>> AcceptanceByKey(
      const automata::Dfa& dfa) const;

  /// Cross-sequence ranking: the k (key, answer) pairs with the highest
  /// confidence for a given answer string — "which cart most likely took
  /// route o?".
  StatusOr<std::vector<std::pair<std::string, double>>> RankSequencesByAnswer(
      const transducer::Transducer& t, const Str& o) const;

 private:
  Alphabet nodes_;
  std::map<std::string, markov::MarkovSequence> sequences_;
};

}  // namespace tms::db

#endif  // TMS_DB_COLLECTION_H_
