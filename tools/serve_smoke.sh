#!/bin/sh
# End-to-end smoke test for tms_server (docs/SERVING.md), run by the
# `serve` stage of tools/ci_verify.sh and registered as the `serve_smoke`
# ctest:
#
#   1. start tms_server on an ephemeral port (--port-file) with the
#      sample hospital model;
#   2. GET /healthz must answer "ok";
#   3. GET /metrics must parse as Prometheus text exposition;
#   4. POST /query/hospital must stream answer lines that are
#      byte-identical, in order, to the `results` array of
#      `tms_cli topk --stats=json` for the same model and query, and end
#      with a {"done":true,...} footer;
#   5. SIGTERM must drain the server cleanly (exit 0).
#
#   tools/serve_smoke.sh <tms_server-binary> <tms_cli-binary> <data-dir>
set -eu

SERVER="$1"
CLI="$2"
DATA="$3"

WORK=$(mktemp -d)
trap 'status=$?; kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"; exit $status' EXIT INT TERM

MODEL="$DATA/hospital.tms"
QUERY="$DATA/place_tracker.tms"

"$SERVER" --port-file="$WORK/port" hospital="$MODEL" 2>"$WORK/server.log" &
SERVER_PID=$!

# Wait for the port file (the server writes it once listening).
tries=0
while [ ! -s "$WORK/port" ]; do
  tries=$((tries + 1))
  [ "$tries" -le 100 ] || { echo "server never started"; cat "$WORK/server.log" >&2; exit 1; }
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died at startup"; cat "$WORK/server.log" >&2; exit 1; }
  sleep 0.1
done
PORT=$(cat "$WORK/port")
BASE="http://127.0.0.1:$PORT"
echo "==> [serve] tms_server up on port $PORT"

echo "==> [serve] GET /healthz"
[ "$(curl -sf "$BASE/healthz")" = "ok" ] || { echo "healthz mismatch" >&2; exit 1; }

echo "==> [serve] GET /metrics parses as Prometheus text"
curl -sf "$BASE/metrics" >"$WORK/metrics"
python3 - "$WORK/metrics" <<'EOF'
import re, sys
lines = open(sys.argv[1]).read().splitlines()
seen = 0
for line in lines:
    if not line or line.startswith("#"):
        if line.startswith("#"):
            assert re.match(r"^# TYPE \S+ (counter|gauge|histogram)$", line), line
        continue
    assert re.match(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+$", line), line
    seen += 1
if lines:
    assert seen > 0, "no samples"
    print(f"    {seen} samples, all well-formed")
else:
    # -DTMS_OBS=OFF builds expose an empty (but valid) exposition.
    print("    empty exposition (obs compiled out)")
EOF

echo "==> [serve] POST /query/hospital streams byte-identical answers"
"$CLI" topk "$MODEL" "$QUERY" 3 --stats=json >"$WORK/cli.json"
curl -sf --data-binary "@$QUERY" "$BASE/query/hospital?k=3" >"$WORK/stream"
python3 - "$WORK/cli.json" "$WORK/stream" <<'EOF'
import json, sys
cli_doc = open(sys.argv[1]).read()
lines = [l for l in open(sys.argv[2]).read().splitlines() if l]
assert len(lines) >= 2, f"expected answers + footer, got {lines}"
footer = json.loads(lines[-1])
assert footer.get("done") is True, footer
assert footer["exec"]["reason"] == "NONE", footer
answers = lines[:-1]
assert len(answers) == 3, f"expected 3 answers, got {len(answers)}"
# Byte-identity, in order: every streamed answer line must appear
# verbatim in the CLI's JSON document (its results array is built by the
# same serializer), at strictly increasing offsets.
pos = -1
for line in answers:
    found = cli_doc.find(line)
    assert found >= 0, f"not in CLI output: {line}"
    assert found > pos, f"out of order: {line}"
    pos = found
print(f"    {len(answers)} answer lines byte-identical and in order")
EOF

echo "==> [serve] truncation footer carries the stop reason"
curl -sf --data-binary "@$QUERY" "$BASE/query/hospital?k=3&max_answers=1" >"$WORK/truncated"
python3 - "$WORK/truncated" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
assert len(lines) == 2, lines
footer = json.loads(lines[-1])
assert footer["exec"]["reason"] == "ANSWER_CAP", footer
assert footer["exec"]["truncated"] is True, footer
EOF

echo "==> [serve] SIGTERM drains cleanly"
kill -TERM "$SERVER_PID"
status=0
wait "$SERVER_PID" || status=$?
[ "$status" -eq 0 ] || { echo "server exit status $status" >&2; cat "$WORK/server.log" >&2; exit 1; }
grep -q "drained, exiting" "$WORK/server.log" || { echo "no drain message" >&2; cat "$WORK/server.log" >&2; exit 1; }
SERVER_PID=""

echo "==> [serve] smoke passed"
