#!/bin/sh
# End-to-end smoke test for the scatter/gather path (docs/DISTRIBUTED.md),
# run by the `dist` stage of tools/ci_verify.sh and registered as the
# `dist_smoke` ctest:
#
#   1. start three single-model workers plus one worker holding all three
#      models; `tms_cli dist` against the 3-worker topology must produce
#      row bytes identical to the 1-worker topology (shard-count
#      independence, end to end over real sockets);
#   2. restart one worker with TMS_FAULT_INJECT="dist.mid_stream:exit:2"
#      so it crashes (std::_Exit, no flush) while streaming its second
#      row: the merge must keep that shard's clean one-row prefix, the
#      survivors' full streams, and the {"done":true,...} footer must
#      report exactly that shard as failed with accurate per-shard answer
#      counts;
#   3. a worker killed with SIGKILL *before* the query degrades coverage
#      the same way — the coordinator exits 0 with the survivors' rows.
#
#   tools/dist_smoke.sh <tms_server-binary> <tms_cli-binary> <data-dir>
set -eu

SERVER="$1"
CLI="$2"
DATA="$3"

WORK=$(mktemp -d)
PIDS=""
cleanup() {
  status=$?
  for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
  exit $status
}
trap cleanup EXIT INT TERM

# Three models that shard across workers: copies of the sample hospital
# model under distinct names, so every worker can answer the same query
# and the merged keys are unambiguous.
for m in a b c; do cp "$DATA/hospital.tms" "$WORK/$m.tms"; done
QUERY="$DATA/place_tracker.tms"
K=3

# start_worker <port-file-suffix> [env VAR=VAL] -- model=path...
start_worker() {
  suffix="$1"; shift
  env_assign=""
  if [ "$1" != "--" ]; then env_assign="$1"; shift; fi
  shift  # the --
  if [ -n "$env_assign" ]; then
    env "$env_assign" "$SERVER" --port-file="$WORK/port.$suffix" "$@" \
      2>"$WORK/server.$suffix.log" &
  else
    "$SERVER" --port-file="$WORK/port.$suffix" "$@" \
      2>"$WORK/server.$suffix.log" &
  fi
  PIDS="$PIDS $!"
  eval "PID_$suffix=$!"
}

wait_port() {
  suffix="$1"
  tries=0
  while [ ! -s "$WORK/port.$suffix" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || {
      echo "worker $suffix never started" >&2
      cat "$WORK/server.$suffix.log" >&2
      exit 1
    }
    sleep 0.1
  done
  eval "PORT_$suffix=$(cat "$WORK/port.$suffix")"
}

start_worker all -- a="$WORK/a.tms" b="$WORK/b.tms" c="$WORK/c.tms"
start_worker w1 -- a="$WORK/a.tms"
start_worker w2 -- b="$WORK/b.tms"
start_worker w3 -- c="$WORK/c.tms"
wait_port all; wait_port w1; wait_port w2; wait_port w3
echo "==> [dist] workers up: all=$PORT_all w1=$PORT_w1 w2=$PORT_w2 w3=$PORT_w3"

echo "==> [dist] 3-worker merge is byte-identical to the 1-worker stream"
"$CLI" dist "$QUERY" "$K" --workers="127.0.0.1:$PORT_all" \
  >"$WORK/one.out" 2>"$WORK/one.err"
"$CLI" dist "$QUERY" "$K" \
  --workers="127.0.0.1:$PORT_w1,127.0.0.1:$PORT_w2,127.0.0.1:$PORT_w3" \
  >"$WORK/three.out" 2>"$WORK/three.err"
# The per-shard solo streams double as references for the fault drills.
"$CLI" dist "$QUERY" "$K" --workers="127.0.0.1:$PORT_w2" >"$WORK/solo2.out"
python3 - "$WORK/one.out" "$WORK/three.out" <<'EOF'
import json, sys
def load(path):
    lines = [l for l in open(path).read().splitlines() if l]
    footer = json.loads(lines[-1])
    assert footer.get("done") is True, footer
    return lines[:-1], footer
one_rows, one_footer = load(sys.argv[1])
three_rows, three_footer = load(sys.argv[2])
assert one_rows, "no merged rows"
assert one_rows == three_rows, (
    f"row streams differ:\n1-worker: {one_rows}\n3-worker: {three_rows}")
assert len(one_footer["shards"]) == 1 and len(three_footer["shards"]) == 3
for c in one_footer["shards"] + three_footer["shards"]:
    assert c["complete"] is True, c
assert sum(c["answers"] for c in three_footer["shards"]) == len(three_rows)
print(f"    {len(one_rows)} rows byte-identical across topologies")
EOF

echo "==> [dist] worker crashing mid-stream leaves a clean prefix + coverage"
# Replace worker 2 with one armed to _Exit(17) while writing its 2nd row.
eval "kill \$PID_w2" 2>/dev/null || true
start_worker w2f "TMS_FAULT_INJECT=dist.mid_stream:exit:2" -- b="$WORK/b.tms"
wait_port w2f
"$CLI" dist "$QUERY" "$K" \
  --workers="127.0.0.1:$PORT_w1,127.0.0.1:$PORT_w2f,127.0.0.1:$PORT_w3" \
  >"$WORK/fault.out" 2>"$WORK/fault.err"
python3 - "$WORK/fault.out" "$WORK/three.out" "$WORK/solo2.out" <<'EOF'
import json, sys
def load(path):
    lines = [l for l in open(path).read().splitlines() if l]
    return lines[:-1], json.loads(lines[-1])
rows, footer = load(sys.argv[1])
full_rows, _ = load(sys.argv[2])
solo2_rows, _ = load(sys.argv[3])
shards = footer["shards"]
assert len(shards) == 3, footer
assert shards[0]["complete"] and shards[2]["complete"], footer
dead = shards[1]
assert dead["complete"] is False and "error" in dead, dead
# The crash hit while writing row 2: exactly the one-row clean prefix
# survives, in its correct merged rank position.
assert dead["answers"] == 1, dead
got2 = [r for r in rows if json.loads(r)["key"] == "b"]
assert got2 == solo2_rows[:1], (got2, solo2_rows[:1])
# Survivors are untouched: dropping the dead shard's rows from the full
# 3-worker stream must reproduce the survivors' merged order exactly.
assert [r for r in rows if json.loads(r)["key"] != "b"] == \
       [r for r in full_rows if json.loads(r)["key"] != "b"]
assert sum(c["answers"] for c in shards) == len(rows)
print(f"    clean prefix of 1 row kept, {len(rows)} rows total, "
      f"footer error: {dead['error']!r}")
EOF
grep -q "shard 1 failed" "$WORK/fault.err" || {
  echo "coordinator stderr missing the failed-shard note" >&2
  cat "$WORK/fault.err" >&2
  exit 1
}

echo "==> [dist] worker dead before the query degrades coverage, exit 0"
eval "kill -9 \$PID_w3" 2>/dev/null || true
eval "wait \$PID_w3" 2>/dev/null || true
"$CLI" dist "$QUERY" "$K" \
  --workers="127.0.0.1:$PORT_w1,127.0.0.1:$PORT_w3" \
  >"$WORK/dead.out" 2>"$WORK/dead.err"
python3 - "$WORK/dead.out" <<'EOF'
import json, sys
lines = [l for l in open(sys.argv[1]).read().splitlines() if l]
footer = json.loads(lines[-1])
shards = footer["shards"]
assert shards[0]["complete"] is True, shards
assert shards[1]["complete"] is False and shards[1]["answers"] == 0, shards
keys = {json.loads(r)["key"] for r in lines[:-1]}
assert keys == {"a"}, keys
print(f"    survivor kept {len(lines) - 1} rows; dead shard reported")
EOF

echo "==> [dist] smoke passed"
