// Regenerates the committed golden-corpus data files under
// tests/golden/data/ (see tools/check_golden.sh). The corpus covers the
// generated workloads — the paper's running example and the bio motif
// workload — serialized through io/ so the CLI replays them exactly; the
// hospital workloads (transducer and s-projector) reuse the files in
// examples/data/. The OCR text workload cannot join the corpus: its
// alphabet contains a space-named symbol, which the whitespace-delimited
// text format cannot round-trip. Seeds are fixed: regenerating must be a
// deliberate act that also regenerates the golden outputs.
//
// usage: make_golden_data <output-dir>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "io/text_format.h"
#include "workload/bio.h"
#include "workload/running_example.h"

namespace {

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  TMS_CHECK(out.good());
  out << content;
  out.close();
  TMS_CHECK(out.good());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_golden_data <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];

  // The paper's running example (Figures 1 and 2).
  WriteFile(dir + "/fig1.tms",
            tms::io::FormatMarkovSequence(tms::workload::Figure1Sequence()));
  WriteFile(dir + "/fig2_query.tms",
            tms::io::FormatTransducer(tms::workload::Figure2Transducer()));

  // Bio motif occurrences in a decoded profile-HMM posterior.
  tms::Rng bio_rng(7);
  tms::workload::MotifConfig config;
  auto scenario = tms::workload::MakeMotifScenario(config, 12, bio_rng);
  TMS_CHECK(scenario.ok());
  WriteFile(dir + "/motif.tms",
            tms::io::FormatMarkovSequence(scenario.value().mu));
  auto motif = tms::workload::MotifExtractor(config);
  TMS_CHECK(motif.ok());
  WriteFile(dir + "/motif_query.tms",
            tms::io::FormatTransducer(motif.value().ToTransducer()));

  std::printf("wrote golden corpus data to %s\n", dir.c_str());
  return 0;
}
