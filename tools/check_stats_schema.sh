#!/bin/sh
# Golden-schema check for `tms_cli --stats=json` and `tms_cli explain`.
#
# Runs a fixed bounded top-k over the sample data and compares the SET OF
# JSON KEYS in the emitted document against tests/golden/
# stats_json_schema.golden; then runs `explain` with --stats=json and
# compares its key set against tests/golden/explain_json_schema.golden.
# Keys — "command", "results", "exec", "explain", every metric name, the
# histogram and report field names — are deterministic for a fixed
# command; metric VALUES (timings, histogram buckets) are not, so only
# the keys are golden. A failure means the machine-readable schema
# changed: downstream dashboards parse it, so either fix the regression
# or update the goldens deliberately:
#
#   TMS_UPDATE_GOLDEN=1 tools/check_stats_schema.sh \
#       <tms_cli> <data> <golden> <explain-golden>
#
# A MISSING golden file is a hard failure, never a skip: a schema check
# that silently passes because its baseline vanished is worse than no
# check at all.
#
# usage: check_stats_schema.sh <path-to-tms_cli> <data-dir> <golden-file>
#            <explain-golden-file>
set -eu

CLI="$1"
DATA="$2"
GOLDEN="$3"
EXPLAIN_GOLDEN="$4"

json_keys() {
  grep -o '"[^"]*":' | LC_ALL=C sort -u
}

# fail_missing <golden-path>: refuse to "pass" against a baseline that
# does not exist.
fail_missing() {
  echo "MISSING golden file: $1" >&2
  echo "a missing golden is an error, not a skip" >&2
  echo "generate it deliberately with TMS_UPDATE_GOLDEN=1 $0 $CLI $DATA $GOLDEN $EXPLAIN_GOLDEN" >&2
  exit 1
}

check_keys() { # keys golden label
  keys="$1"; golden="$2"; label="$3"
  if [ -n "${TMS_UPDATE_GOLDEN:-}" ]; then
    printf '%s\n' "$keys" > "$golden"
    echo "updated $golden"
    return 0
  fi
  [ -f "$golden" ] || fail_missing "$golden"
  if ! printf '%s\n' "$keys" | diff -u "$golden" -; then
    echo "$label key set diverged from $golden" >&2
    echo "regenerate deliberately with TMS_UPDATE_GOLDEN=1 $0 $CLI $DATA $GOLDEN $EXPLAIN_GOLDEN" >&2
    exit 1
  fi
}

# --max-answers makes the run bounded so the "exec" field and the
# exec.budget.* counters appear in the document.
STATS_OUT=$("$CLI" topk "$DATA/hospital.tms" "$DATA/place_tracker.tms" 3 \
            --max-answers=2 --stats=json)
check_keys "$(printf '%s' "$STATS_OUT" | json_keys)" "$GOLDEN" "stats=json"

# The explain report: bounded as well (--budget) so the exec section of
# the report carries a real stop reason and budget consumption. Only the
# "explain" object is schema-checked — the surrounding document is
# already covered above, and its metric key set varies with the engine
# instrumentation, not with the explain schema.
EXPLAIN_OUT=$("$CLI" explain "$DATA/hospital.tms" "$DATA/place_tracker.tms" 3 \
              --budget=100000 --stats=json)
EXPLAIN_OBJ=$(printf '%s' "$EXPLAIN_OUT" \
              | sed -n 's/.*"explain":{\(.*\)}},"metrics".*/\1/p')
if [ -z "$EXPLAIN_OBJ" ]; then
  echo "tms_cli explain --stats=json emitted no \"explain\" object" >&2
  exit 1
fi
check_keys "$(printf '%s' "$EXPLAIN_OBJ" | json_keys)" "$EXPLAIN_GOLDEN" \
           "explain"
