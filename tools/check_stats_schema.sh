#!/bin/sh
# Golden-schema check for `tms_cli --stats=json`.
#
# Runs a fixed bounded top-k over the sample data and compares the SET OF
# JSON KEYS in the emitted document against tests/golden/
# stats_json_schema.golden. Keys — "command", "results", "exec", every
# metric name, the histogram field names — are deterministic for a fixed
# command; metric VALUES (timings, histogram buckets) are not, so only the
# keys are golden. A failure means the machine-readable schema changed:
# downstream dashboards parse it, so either fix the regression or update
# the golden deliberately:
#
#   TMS_UPDATE_GOLDEN=1 tools/check_stats_schema.sh <tms_cli> <data> <golden>
#
# usage: check_stats_schema.sh <path-to-tms_cli> <data-dir> <golden-file>
set -eu

CLI="$1"
DATA="$2"
GOLDEN="$3"

# --max-answers makes the run bounded so the "exec" field and the
# exec.budget.* counters appear in the document.
OUT=$("$CLI" topk "$DATA/hospital.tms" "$DATA/place_tracker.tms" 3 \
      --max-answers=2 --stats=json)

KEYS=$(printf '%s' "$OUT" | grep -o '"[^"]*":' | LC_ALL=C sort -u)

if [ -n "${TMS_UPDATE_GOLDEN:-}" ]; then
  printf '%s\n' "$KEYS" > "$GOLDEN"
  echo "updated $GOLDEN"
  exit 0
fi

if ! printf '%s\n' "$KEYS" | diff -u "$GOLDEN" -; then
  echo "stats=json key set diverged from $GOLDEN" >&2
  echo "regenerate deliberately with TMS_UPDATE_GOLDEN=1 $0 $*" >&2
  exit 1
fi
