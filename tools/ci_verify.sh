#!/bin/sh
# One-command CI verification (docs/ROBUSTNESS.md):
#
#   1. tier-1: default build, full test suite + explicit `ctest -L obs`
#              and `ctest -L optimize` passes (the per-query observability
#              and optimization-equivalence suites must be present, not
#              silently undiscovered)
#   2. asan:   ASan+UBSan build, `ctest -L robustness` + `-L concurrency`
#              + `-L serve` + `-L optimize` (the server's socket/thread
#              machinery and the optimization passes run under the
#              sanitizers too)
#   3. tsan:   TSan build,       `ctest -L robustness` + `-L concurrency`
#   4. off:    -DTMS_OBS=OFF -DTMS_FAULTS=OFF build (everything compiled
#              out), full test suite — proves the zero-overhead surface
#              builds and behaves
#   5. serve:  `ctest -L serve` in the default build — the serving unit +
#              integration suites plus the serve_smoke end-to-end script
#              (ephemeral-port tms_server: healthz, /metrics parse, one
#              streamed query byte-compared against tms_cli, clean
#              SIGTERM drain)
#   6. dist:   `ctest -L dist` in the default build — the shard-equivalence
#              + fault suites plus the dist_smoke end-to-end script
#              (real workers on ephemeral ports, topology byte-identity,
#              an injected mid-stream crash, a dead worker)
#   7. bench:  enumeration + kernel bench reports
#              (BENCH_enumeration_delay.json, BENCH_enumeration_emax.json,
#              BENCH_twostep_vs_ranked.json, BENCH_sparse_scaling.json,
#              BENCH_optimize.json, BENCH_shard_merge.json)
#              emitted to build/bench-json/ and checked non-empty, plus the
#              per-query explain sidecar
#              (BENCH_enumeration_delay_explain.json); set
#              TMS_UPDATE_BASELINES=1 to refresh bench/baselines/
#
# Build trees are reused across runs (build/, build-asan/, build-tsan/,
# build-off/ under the repo root), so incremental invocations are cheap.
# Pass a stage name (tier1 | asan | tsan | off | serve | dist | bench) to
# run just that stage; default is all seven.
#
#   tools/ci_verify.sh            # everything
#   tools/ci_verify.sh tsan       # just the TSan stage
#   TMS_UPDATE_BASELINES=1 tools/ci_verify.sh bench   # refresh baselines
#
# Every randomized suite honors TMS_TEST_SEED, and a failing test prints
# its seed — export TMS_TEST_SEED to replay a CI failure locally.
set -eu

ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
STAGE="${1:-all}"
JOBS="${TMS_CI_JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_stage() {
  # run_stage <name> <build-dir> <ctest-args...> -- <cmake-args...>
  name="$1"; dir="$2"; shift 2
  ctest_args=""
  while [ $# -gt 0 ] && [ "$1" != "--" ]; do
    ctest_args="$ctest_args $1"; shift
  done
  [ $# -gt 0 ] && shift  # drop the --
  echo "==> [$name] configure + build ($dir)"
  cmake -B "$dir" -S "$ROOT" "$@" >/dev/null
  cmake --build "$dir" -j "$JOBS"
  echo "==> [$name] ctest$ctest_args"
  # shellcheck disable=SC2086  # ctest_args is intentionally word-split
  (cd "$dir" && ctest --output-on-failure -j "$JOBS" $ctest_args)
}

case "$STAGE" in
  tier1|all)
    run_stage tier1 "$ROOT/build" --
    # The obs label must match a non-empty suite: a refactor that breaks
    # test discovery would otherwise pass tier-1 by running nothing.
    echo "==> [tier1] ctest -L obs (must be non-empty)"
    (cd "$ROOT/build" &&
     ctest --output-on-failure -j "$JOBS" -L obs --no-tests=error)
    # Likewise the optimize label: the differential equivalence harness is
    # the acceptance test of the optimization pass — it running zero tests
    # must fail, not pass.
    echo "==> [tier1] ctest -L optimize (must be non-empty)"
    (cd "$ROOT/build" &&
     ctest --output-on-failure -j "$JOBS" -L optimize --no-tests=error)
    # And the dist label: the shard-equivalence harness is the acceptance
    # test of the scatter/gather path.
    echo "==> [tier1] ctest -L dist (must be non-empty)"
    (cd "$ROOT/build" &&
     ctest --output-on-failure -j "$JOBS" -L dist --no-tests=error)
    ;;
esac
case "$STAGE" in
  asan|all)
    run_stage asan "$ROOT/build-asan" \
      -L "robustness|concurrency|serve|optimize|dist" -- \
      -DTMS_SANITIZE=address,undefined
    ;;
esac
case "$STAGE" in
  tsan|all)
    run_stage tsan "$ROOT/build-tsan" -L "robustness|concurrency" -- \
      -DTMS_SANITIZE=thread
    ;;
esac
case "$STAGE" in
  off|all)
    # Everything observability- and fault-related compiled out: the
    # TMS_OBS_* macros, QueryScope, the flight recorder, and the fault
    # points must vanish without breaking any engine, and the full suite
    # must still pass (the obs suites compile to empty TUs).
    run_stage off "$ROOT/build-off" -- \
      -DTMS_OBS=OFF -DTMS_FAULTS=OFF
    ;;
esac
case "$STAGE" in
  serve|all)
    # The serving layer end to end in the default build: unit +
    # integration suites and the serve_smoke script (the label must be
    # non-empty — a discovery regression must not pass silently).
    run_stage serve "$ROOT/build" -L serve --no-tests=error --
    ;;
esac
case "$STAGE" in
  dist|all)
    # The sharded batch path end to end in the default build: the
    # differential shard-equivalence + fault suites plus the dist_smoke
    # script (real workers, topology byte-identity, injected mid-stream
    # crash, dead worker).
    run_stage dist "$ROOT/build" -L dist --no-tests=error --
    ;;
esac
case "$STAGE" in
  bench|all)
    BENCHES="bench_enumeration_delay bench_enumeration_emax \
             bench_twostep_vs_ranked bench_sparse_scaling bench_optimize \
             bench_shard_merge"
    echo "==> [bench] configure + build ($ROOT/build)"
    cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
    # shellcheck disable=SC2086
    cmake --build "$ROOT/build" -j "$JOBS" --target $BENCHES
    OUT="$ROOT/build/bench-json"
    mkdir -p "$OUT"
    for b in $BENCHES; do
      echo "==> [bench] $b"
      (cd "$ROOT/build" &&
       TMS_BENCH_JSON_DIR="$OUT" "./bench/$b" >/dev/null)
      json="$OUT/BENCH_${b#bench_}.json"
      [ -s "$json" ] || { echo "bench report missing: $json" >&2; exit 1; }
    done
    explain_json="$OUT/BENCH_enumeration_delay_explain.json"
    [ -s "$explain_json" ] ||
      { echo "bench explain sidecar missing: $explain_json" >&2; exit 1; }
    if [ -n "${TMS_UPDATE_BASELINES:-}" ]; then
      cp "$OUT"/BENCH_*.json "$ROOT/bench/baselines/"
      echo "==> [bench] baselines refreshed in bench/baselines/"
    fi
    ;;
esac
case "$STAGE" in
  tier1|asan|tsan|off|serve|dist|bench|all) ;;
  *)
    echo "usage: $0 [tier1|asan|tsan|off|serve|dist|bench|all]" >&2
    exit 2
    ;;
esac

echo "==> ci_verify: all requested stages passed"
