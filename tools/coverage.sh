#!/bin/sh
# Line-coverage sweep for the test suite (docs/TESTING.md).
#
# Configures a gcov-instrumented build (-DTMS_COVERAGE=ON, Debug so
# inlining doesn't merge lines), runs the full ctest suite, then
# aggregates per-directory line coverage for src/. No gcovr/lcov
# dependency: the summary lines of `gcov -n` are parsed directly. A
# source file touched by several translation units (headers, the dual-TU
# test binaries) is deduplicated by taking its best-covered instance.
#
# usage: tools/coverage.sh [build-dir]   (default: <repo>/build-cov)
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-$ROOT/build-cov}
Q="'"

cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Debug -DTMS_COVERAGE=ON \
      >/dev/null
cmake --build "$BUILD" -j"$(nproc)" >/dev/null
find "$BUILD" -name '*.gcda' -delete
(cd "$BUILD" && ctest -j"$(nproc)" --output-on-failure >/dev/null)

# `gcov -n -r -s $ROOT` prints, per source file reached from a .gcda:
#   File 'src/query/emax.cc'
#   Lines executed:97.37% of 152
# -r keeps only files under $ROOT (drops the standard library and gtest).
find "$BUILD" -name '*.gcda' | while read -r gcda; do
  (cd "$BUILD" && gcov -n -r -s "$ROOT" "$gcda" 2>/dev/null)
done | awk -v q="$Q" '
  # Dedupe by file: best-covered instance wins.
  /^File / { f = $0; sub(/^File /, "", f); gsub(q, "", f); next }
  /^Lines executed:/ && f ~ /^src\// {
    s = $0; sub(/^Lines executed:/, "", s); split(s, a, "% of ")
    c = a[1] / 100 * a[2]
    if (!(f in tot) || c > hit[f]) { tot[f] = a[2]; hit[f] = c }
  }
  END { for (k in tot) printf "%s %d %.2f\n", k, tot[k], hit[k] }
' | awk '
  # Roll files up into their directories.
  { d = $1; sub(/\/[^\/]*$/, "", d); tot[d] += $2; hit[d] += $3 }
  END { for (k in tot) printf "%s %d %.2f\n", k, tot[k], hit[k] }
' | sort | awk '
  BEGIN { printf "%-22s %9s %9s %8s\n", "directory", "lines", "covered",
          "pct" }
  {
    printf "%-22s %9d %9d %7.1f%%\n", $1, $2, $3 + 0.5, 100 * $3 / $2
    gt += $2; gh += $3
  }
  END { printf "%-22s %9d %9d %7.1f%%\n", "TOTAL src/", gt, gh + 0.5,
        100 * gh / gt }'
