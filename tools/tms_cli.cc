// tms_cli — command-line query runner over the text formats of io/.
//
//   tms_cli topk  <sequence-file> <query-file> [k]
//       Top-k answers by decreasing E_max, with confidences (transducer
//       queries), or by decreasing I_max with exact confidences
//       (s-projector queries).
//   tms_cli conf  <sequence-file> <query-file> <output-symbol>...
//       Confidence (and E_max) of one answer.
//   tms_cli enum  <sequence-file> <query-file> [limit]
//       Unranked enumeration (Theorem 4.1), up to `limit` answers.
//   tms_cli show  <file>
//       Parse a model/query file and print its canonical form.
//
// Sequence files use the `markov-sequence` format; query files use
// `transducer` or `s-projector` (see src/io/text_format.h). Sample files
// live in examples/data/.

#include <cstdio>
#include <cstring>
#include <string>

#include "io/text_format.h"
#include "projector/imax_enum.h"
#include "projector/sprojector_confidence.h"
#include "query/evaluator.h"
#include "query/unranked_enum.h"

namespace {

using namespace tms;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tms_cli topk <sequence> <query> [k]\n"
               "       tms_cli conf <sequence> <query> <output-symbol>...\n"
               "       tms_cli enum <sequence> <query> [limit]\n"
               "       tms_cli show <file>\n");
  return 2;
}

StatusOr<markov::MarkovSequence> LoadSequence(const std::string& path) {
  auto text = io::ReadFile(path);
  if (!text.ok()) return text.status();
  return io::ParseMarkovSequence(*text);
}

struct Query {
  // Exactly one is set.
  std::optional<transducer::Transducer> transducer;
  std::optional<projector::SProjector> sprojector;
};

StatusOr<Query> LoadQuery(const std::string& path) {
  auto text = io::ReadFile(path);
  if (!text.ok()) return text.status();
  auto format = io::DetectFormat(*text);
  if (!format.ok()) return format.status();
  Query out;
  if (*format == "transducer") {
    auto t = io::ParseTransducer(*text);
    if (!t.ok()) return t.status();
    out.transducer = std::move(t).value();
    return out;
  }
  if (*format == "s-projector") {
    auto p = io::ParseSProjector(*text);
    if (!p.ok()) return p.status();
    out.sprojector = std::move(p).value();
    return out;
  }
  return Status::InvalidArgument("query file must be a transducer or an "
                                 "s-projector, got: " + *format);
}

int RunTopK(const std::string& seq_path, const std::string& query_path,
            int k) {
  auto mu = LoadSequence(seq_path);
  if (!mu.ok()) return Fail(mu.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  if (query->transducer.has_value()) {
    auto eval = query::Evaluator::Create(&*mu, &*query->transducer);
    if (!eval.ok()) return Fail(eval.status());
    auto topk = eval->TopK(k);
    if (!topk.ok()) return Fail(topk.status());
    std::printf("%-30s %-14s %-14s\n", "answer", "E_max", "confidence");
    for (const query::AnswerInfo& info : *topk) {
      std::printf("%-30s %-14.6g %-14.6g\n",
                  FormatStr(query->transducer->output_alphabet(),
                            info.output).c_str(),
                  info.emax, info.confidence);
    }
    return 0;
  }
  auto it = projector::ImaxEnumerator::Create(&*mu, &*query->sprojector);
  if (!it.ok()) return Fail(it.status());
  std::printf("%-30s %-14s %-14s\n", "answer", "I_max", "confidence");
  for (int i = 0; i < k; ++i) {
    auto answer = it->Next();
    if (!answer.has_value()) break;
    auto conf = projector::SProjectorConfidence(*mu, *query->sprojector,
                                                answer->output);
    if (!conf.ok()) return Fail(conf.status());
    std::printf("%-30s %-14.6g %-14.6g\n",
                FormatStr(query->sprojector->alphabet(),
                          answer->output).c_str(),
                answer->score, *conf);
  }
  return 0;
}

int RunConf(const std::string& seq_path, const std::string& query_path,
            int argc, char** argv, int first_symbol_arg) {
  auto mu = LoadSequence(seq_path);
  if (!mu.ok()) return Fail(mu.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  const Alphabet& delta = query->transducer.has_value()
                              ? query->transducer->output_alphabet()
                              : query->sprojector->alphabet();
  Str o;
  for (int i = first_symbol_arg; i < argc; ++i) {
    auto sym = delta.Find(argv[i]);
    if (!sym.ok()) return Fail(sym.status());
    o.push_back(*sym);
  }

  if (query->transducer.has_value()) {
    auto eval = query::Evaluator::Create(&*mu, &*query->transducer);
    if (!eval.ok()) return Fail(eval.status());
    auto conf = eval->Confidence(o);
    if (!conf.ok()) return Fail(conf.status());
    auto emax = eval->Emax(o);
    std::printf("confidence %.10g\n", *conf);
    std::printf("E_max      %.10g\n", emax.has_value() ? *emax : 0.0);
    return 0;
  }
  auto conf = projector::SProjectorConfidence(*mu, *query->sprojector, o);
  if (!conf.ok()) return Fail(conf.status());
  auto computer = projector::IndexedConfidence::Create(&*mu,
                                                       &*query->sprojector);
  if (!computer.ok()) return Fail(computer.status());
  std::printf("confidence %.10g\n", *conf);
  std::printf("I_max      %.10g\n",
              projector::ImaxOfAnswer(*computer, o));
  return 0;
}

int RunEnum(const std::string& seq_path, const std::string& query_path,
            int limit) {
  auto mu = LoadSequence(seq_path);
  if (!mu.ok()) return Fail(mu.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  transducer::Transducer t = query->transducer.has_value()
                                 ? std::move(*query->transducer)
                                 : query->sprojector->ToTransducer();
  query::UnrankedEnumerator it(*mu, t);
  int count = 0;
  while (count < limit) {
    auto answer = it.Next();
    if (!answer.has_value()) break;
    std::printf("%s\n", FormatStr(t.output_alphabet(), *answer).c_str());
    ++count;
  }
  std::fprintf(stderr, "%d answer(s)\n", count);
  return 0;
}

int RunShow(const std::string& path) {
  auto text = io::ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  auto format = io::DetectFormat(*text);
  if (!format.ok()) return Fail(format.status());
  if (*format == "markov-sequence") {
    auto mu = io::ParseMarkovSequence(*text);
    if (!mu.ok()) return Fail(mu.status());
    std::fputs(io::FormatMarkovSequence(*mu).c_str(), stdout);
    return 0;
  }
  if (*format == "transducer") {
    auto t = io::ParseTransducer(*text);
    if (!t.ok()) return Fail(t.status());
    std::fputs(io::FormatTransducer(*t).c_str(), stdout);
    return 0;
  }
  auto p = io::ParseSProjector(*text);
  if (!p.ok()) return Fail(p.status());
  std::printf("s-projector over %zu symbols: |Q_B|=%d |Q_A|=%d |Q_E|=%d\n",
              p->alphabet().size(), p->prefix().num_states(),
              p->pattern().num_states(), p->suffix().num_states());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  if (command == "show") return RunShow(argv[2]);
  if (argc < 4) return Usage();
  if (command == "topk") {
    int k = argc >= 5 ? std::atoi(argv[4]) : 10;
    if (k <= 0) return Usage();
    return RunTopK(argv[2], argv[3], k);
  }
  if (command == "conf") {
    return RunConf(argv[2], argv[3], argc, argv, 4);
  }
  if (command == "enum") {
    int limit = argc >= 5 ? std::atoi(argv[4]) : 100;
    if (limit <= 0) return Usage();
    return RunEnum(argv[2], argv[3], limit);
  }
  return Usage();
}
