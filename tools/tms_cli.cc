// tms_cli — command-line query runner over the text formats of io/.
//
//   tms_cli topk  <sequence-file> <query-file> [k]
//       Top-k answers by decreasing E_max, with confidences (transducer
//       queries), or by decreasing I_max with exact confidences
//       (s-projector queries).
//   tms_cli conf  <sequence-file> <query-file> <output-symbol>...
//       Confidence (and E_max) of one answer.
//   tms_cli enum  <sequence-file> <query-file> [limit]
//       Unranked enumeration (Theorem 4.1), up to `limit` answers.
//   tms_cli batch <query-file> <k> <sequence-file>...
//       One query across many sequences (db::BatchEvaluator): per-sequence
//       top-k answers by E_max, keyed by sequence file. With --threads=N
//       the sequences are evaluated concurrently; output is identical at
//       every thread count. With --shards=N the collection is partitioned
//       into N shards evaluated independently and k-way-merged back into
//       ONE globally ranked stream (docs/DISTRIBUTED.md); the merged
//       stream is byte-identical at every shard count (--shards=1 is the
//       single-process reference ordering).
//   tms_cli dist <query-file> <k> --workers=host:port[,host:port...]
//       Scatter/gather across running tms_server workers: POSTs the query
//       to every worker's /batch endpoint (worker i = shard i), k-way
//       merges the ranked NDJSON streams, and prints the merged rows
//       verbatim followed by a {"done":true,"shards":[...]} coverage
//       footer. A dead or truncated worker degrades coverage, never the
//       ordering of the surviving rows.
//   tms_cli explain <sequence-file> <query-file> [k]
//       EXPLAIN ANALYZE for a top-k run: executes the query under a
//       per-query obs::QueryScope and prints the cost report (phase
//       breakdown, per-answer delay, cache hit rate, kernel backend
//       traffic, composed-automaton sizes, budget/deadline consumption)
//       instead of the answers. With --stats=json the report is the
//       "explain" field of the JSON document.
//   tms_cli optimize <query-file> [artifact-out]
//       Offline optimization (docs/OPTIMIZE.md): prune + minimize the
//       transducer query and write a fingerprinted artifact (default
//       <query-file>.opt) that tms_server loads at registry precompile.
//       Prints the before/after state and edge counts.
//   tms_cli show  <file>
//       Parse a model/query file and print its canonical form.
//
// Execution flags (see docs/CONCURRENCY.md, docs/ROBUSTNESS.md):
//   --threads=N      total evaluation concurrency (default 1). `topk` solves
//                    Lawler child subspaces in parallel; `batch` spreads
//                    sequences across threads.
//   --deadline-ms=N  stop the run N milliseconds after it starts, at the
//                    next answer boundary.
//   --max-answers=N  stop after N emitted answers (per sequence in batch).
//   --budget=N       work-unit budget (subspace solves / oracle calls),
//                    shared across the whole command.
//   --backend=dense|sparse|auto
//                    kernel path of the DP layers (default auto: sparse
//                    when the transition matrices are sparse enough, see
//                    docs/SPARSE.md). Output is byte-identical across
//                    backends; only the running time changes.
//   --optimize=off|auto|on
//                    offline optimization of the query automata before
//                    composition (default auto, see docs/OPTIMIZE.md).
//                    Like --backend this is a performance knob only:
//                    answer streams are byte-identical at every level.
// The answers printed under any of these limits are always an exact prefix
// of the unbounded output. A truncated run still exits 0: the stop reason
// goes to stderr (human mode) or the "exec" field (--stats=json).
//
// Observability flags (any command, see docs/OBSERVABILITY.md):
//   --stats        after the command, dump the metrics registry to stderr
//                  (Prometheus text exposition).
//   --stats=json   emit ONE machine-readable JSON document on stdout:
//                  {"command":..., "results":..., "metrics":...} — the
//                  human tables are suppressed so stdout is valid JSON.
//   --stats=prom   emit the Prometheus text exposition on stdout instead
//                  of the human tables.
//   --trace=FILE   collect trace spans and write Chrome-trace JSON to
//                  FILE (open in chrome://tracing or Perfetto).
//   --explain      append the per-query explain report to any command
//                  (stderr in human mode, "explain" field of --stats=json).
//   --flight-dump=off|stderr|FILE
//                  where a truncation flight-recorder dump goes (see
//                  docs/OBSERVABILITY.md). Default: stderr, unless the
//                  TMS_FLIGHT_DUMP environment variable already chose.
//
// Sequence files use the `markov-sequence` format; query files use
// `transducer` or `s-projector` (see src/io/text_format.h). Sample files
// live in examples/data/.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/parse.h"
#include "db/batch_evaluator.h"
#include "db/collection.h"
#include "dist/client.h"
#include "dist/coordinator.h"
#include "dist/sharded_batch.h"
#include "exec/run_context.h"
#include "exec/thread_pool.h"
#include "io/text_format.h"
#include "kernels/backend.h"
#include "obs/explain.h"
#include "obs/obs.h"
#include "optimize/artifact.h"
#include "optimize/level.h"
#include "optimize/transducer_opt.h"
#include "projector/imax_enum.h"
#include "projector/sprojector_confidence.h"
#include "query/engine_factory.h"
#include "query/evaluator.h"
#include "serve/wire.h"

namespace {

using namespace tms;

enum class StatsMode { kNone, kText, kJson, kProm };

struct ObsOptions {
  StatsMode stats = StatsMode::kNone;
  std::string trace_path;
  bool explain = false;
  std::string flight_dump;  // "" = default, "off", "stderr", or a path
};

// --threads=N: total evaluation concurrency. The pool gets N-1 workers;
// the calling thread is the Nth lane (exec::ThreadPool semantics), so
// N <= 1 means no pool at all — the plain sequential engine.
struct ExecOptions {
  int threads = 1;
  // --shards=N for `batch`: 0 = flag absent (classic per-sequence
  // output); >= 1 = sharded evaluation with a globally ranked merge.
  int shards = 0;
  // --workers=host:port,... for `dist`.
  std::string workers;
  // -1 = unbounded (flag absent).
  int64_t deadline_ms = -1;
  int64_t max_answers = -1;
  int64_t budget = -1;
  // --backend=dense|sparse|auto: kernel path of every DP underneath.
  // Output is byte-identical across backends (docs/SPARSE.md).
  kernels::BackendChoice backend = kernels::BackendChoice::kAuto;
  // --optimize=off|auto|on: offline optimization of the query automata
  // (docs/OPTIMIZE.md). Byte-identical output at every level.
  optimize::Level optimize = optimize::Level::kAuto;

  exec::ThreadPool* MakePool() {
    if (threads > 1 && pool_ == nullptr) {
      pool_ = std::make_unique<exec::ThreadPool>(threads - 1);
    }
    return pool_.get();
  }

  // The full engine-options bundle the enumeration engines consume.
  exec::EngineOptions MakeEngineOptions() {
    exec::EngineOptions options;
    options.pool = MakePool();
    options.run = MakeRun();
    options.backend = backend;
    options.optimize = optimize;
    return options;
  }

  // The run context already created by MakeRun, or null — for the explain
  // report, which must not conjure a context the command never had.
  const exec::RunContext* PeekRun() const { return run_.get(); }

  // The run context, or null when no limit flag was given (engines treat
  // null as unbounded and skip every check).
  exec::RunContext* MakeRun() {
    if (run_ == nullptr &&
        (deadline_ms >= 0 || max_answers >= 0 || budget >= 0)) {
      run_ = std::make_unique<exec::RunContext>();
      if (deadline_ms >= 0) run_->set_deadline_after_ms(deadline_ms);
      if (max_answers >= 0) run_->set_max_answers(max_answers);
      if (budget >= 0) run_->set_work_budget(budget);
    }
    return run_.get();
  }

 private:
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<exec::RunContext> run_;
};

// Machine-readable results accumulator for --stats=json: the command
// fills `results` with one JSON value (object or array).
struct CliOutput {
  bool json = false;
  std::string results;
  std::string exec_json;     // the "exec" field of --stats=json, or empty
  std::string explain_json;  // the "explain" field of --stats=json, or empty
};

// The wire spellings (StopReasonName / ExecJson / AppendAnswerJson) are
// shared with tms_server — serve/wire.h — so a streamed /query response
// stays byte-identical to the CLI's --stats=json results by construction.
using serve::AppendAnswerJson;
using serve::ExecJson;
using serve::StopReasonName;

// After a bounded command: stash the outcome for EmitStats and, in human
// mode, tell the user on stderr why the output is short.
void ReportRun(const exec::RunContext* run, CliOutput* out) {
  if (run == nullptr) return;
  out->exec_json = ExecJson(run->status(), run->stop_reason(),
                            run->answers_emitted(), run->work_charged());
  if (!out->json && run->truncated()) {
    std::fprintf(stderr, "truncated (%s) after %lld answer(s), %lld work\n",
                 StopReasonName(run->stop_reason()),
                 static_cast<long long>(run->answers_emitted()),
                 static_cast<long long>(run->work_charged()));
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tms_cli topk <sequence> <query> [k]\n"
               "       tms_cli conf <sequence> <query> <output-symbol>...\n"
               "       tms_cli enum <sequence> <query> [limit]\n"
               "       tms_cli batch <query> <k> <sequence>...\n"
               "       tms_cli dist <query> <k> "
               "--workers=host:port[,host:port...]\n"
               "       tms_cli explain <sequence> <query> [k]\n"
               "       tms_cli optimize <query> [artifact-out]\n"
               "       tms_cli show <file>\n"
               "flags: --threads=N | --shards=N | --deadline-ms=N | "
               "--max-answers=N | --budget=N |\n"
               "       --backend=dense|sparse|auto | --optimize=off|auto|on "
               "|\n"
               "       --stats | --stats=json | --stats=prom | --trace=FILE |\n"
               "       --explain | --flight-dump=off|stderr|FILE\n");
  return 2;
}

StatusOr<markov::MarkovSequence> LoadSequence(const std::string& path) {
  auto text = io::ReadFile(path);
  if (!text.ok()) return text.status();
  return io::ParseMarkovSequence(*text);
}

struct Query {
  // Exactly one is set.
  std::optional<transducer::Transducer> transducer;
  std::optional<projector::SProjector> sprojector;
};

StatusOr<Query> LoadQuery(const std::string& path) {
  auto text = io::ReadFile(path);
  if (!text.ok()) return text.status();
  auto format = io::DetectFormat(*text);
  if (!format.ok()) return format.status();
  Query out;
  if (*format == "transducer") {
    auto t = io::ParseTransducer(*text);
    if (!t.ok()) return t.status();
    out.transducer = std::move(t).value();
    return out;
  }
  if (*format == "s-projector") {
    auto p = io::ParseSProjector(*text);
    if (!p.ok()) return p.status();
    out.sprojector = std::move(p).value();
    return out;
  }
  return Status::InvalidArgument("query file must be a transducer or an "
                                 "s-projector, got: " + *format);
}

int RunTopK(const std::string& seq_path, const std::string& query_path,
            int k, ExecOptions* exec, CliOutput* out) {
  auto mu = LoadSequence(seq_path);
  if (!mu.ok()) return Fail(mu.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  out->results = "[";
  bool first = true;
  if (query->transducer.has_value()) {
    auto eval = query::Evaluator::Create(&*mu, &*query->transducer);
    if (!eval.ok()) return Fail(eval.status());
    eval->set_execution(exec->MakeEngineOptions());
    auto topk = eval->TopK(k);
    if (!topk.ok()) return Fail(topk.status());
    if (!out->json) {
      std::printf("%-30s %-14s %-14s\n", "answer", "E_max", "confidence");
    }
    for (const query::AnswerInfo& info : *topk) {
      std::string answer = FormatStr(query->transducer->output_alphabet(),
                                     info.output);
      if (out->json) {
        if (!first) out->results += ',';
        first = false;
        AppendAnswerJson(answer, "emax", info.emax, info.confidence,
                         &out->results);
      } else {
        std::printf("%-30s %-14.6g %-14.6g\n", answer.c_str(), info.emax,
                    info.confidence);
      }
    }
    out->results += ']';
    ReportRun(exec->MakeRun(), out);
    return 0;
  }
  auto it = query::MakeEnumerator(*mu, *query->sprojector,
                                  exec->MakeEngineOptions());
  if (!it.ok()) return Fail(it.status());
  if (!out->json) {
    std::printf("%-30s %-14s %-14s\n", "answer", "I_max", "confidence");
  }
  for (int i = 0; i < k; ++i) {
    auto answer = (*it)->Next();
    if (!answer.has_value()) break;
    auto conf = projector::SProjectorConfidence(*mu, *query->sprojector,
                                                answer->output);
    if (!conf.ok()) return Fail(conf.status());
    std::string formatted = FormatStr(query->sprojector->alphabet(),
                                      answer->output);
    if (out->json) {
      if (!first) out->results += ',';
      first = false;
      AppendAnswerJson(formatted, "imax", answer->score, *conf,
                       &out->results);
    } else {
      std::printf("%-30s %-14.6g %-14.6g\n", formatted.c_str(),
                  answer->score, *conf);
    }
  }
  out->results += ']';
  ReportRun(exec->MakeRun(), out);
  return 0;
}

int RunConf(const std::string& seq_path, const std::string& query_path,
            const std::vector<std::string>& symbols, CliOutput* out) {
  auto mu = LoadSequence(seq_path);
  if (!mu.ok()) return Fail(mu.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  const Alphabet& delta = query->transducer.has_value()
                              ? query->transducer->output_alphabet()
                              : query->sprojector->alphabet();
  Str o;
  for (const std::string& symbol : symbols) {
    auto sym = delta.Find(symbol);
    if (!sym.ok()) return Fail(sym.status());
    o.push_back(*sym);
  }

  double confidence = 0.0;
  const char* score_key = nullptr;
  double score = 0.0;
  if (query->transducer.has_value()) {
    auto eval = query::Evaluator::Create(&*mu, &*query->transducer);
    if (!eval.ok()) return Fail(eval.status());
    auto conf = eval->Confidence(o);
    if (!conf.ok()) return Fail(conf.status());
    auto emax = eval->Emax(o);
    confidence = *conf;
    score_key = "emax";
    score = emax.has_value() ? *emax : 0.0;
  } else {
    auto conf = projector::SProjectorConfidence(*mu, *query->sprojector, o);
    if (!conf.ok()) return Fail(conf.status());
    auto computer = projector::IndexedConfidence::Create(&*mu,
                                                         &*query->sprojector);
    if (!computer.ok()) return Fail(computer.status());
    confidence = *conf;
    score_key = "imax";
    score = projector::ImaxOfAnswer(*computer, o);
  }
  if (out->json) {
    out->results = "{\"confidence\":";
    obs::AppendJsonNumber(confidence, &out->results);
    out->results += ",\"";
    out->results += score_key;
    out->results += "\":";
    obs::AppendJsonNumber(score, &out->results);
    out->results += '}';
  } else {
    std::printf("confidence %.10g\n", confidence);
    std::printf("%-10s %.10g\n",
                std::strcmp(score_key, "emax") == 0 ? "E_max" : "I_max",
                score);
  }
  return 0;
}

int RunEnum(const std::string& seq_path, const std::string& query_path,
            int limit, ExecOptions* exec, CliOutput* out) {
  auto mu = LoadSequence(seq_path);
  if (!mu.ok()) return Fail(mu.status());
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());

  transducer::Transducer t = query->transducer.has_value()
                                 ? std::move(*query->transducer)
                                 : query->sprojector->ToTransducer();
  auto it = query::MakeEnumerator(query::EnumeratorKind::kUnranked, *mu, t,
                                  exec->MakeEngineOptions());
  if (!it.ok()) return Fail(it.status());
  int count = 0;
  out->results = "[";
  while (count < limit) {
    auto answer = (*it)->Next();
    if (!answer.has_value()) break;
    std::string formatted = FormatStr(t.output_alphabet(), answer->output);
    if (out->json) {
      if (count > 0) out->results += ',';
      out->results += '"';
      obs::AppendJsonEscaped(formatted, &out->results);
      out->results += '"';
    } else {
      std::printf("%s\n", formatted.c_str());
    }
    ++count;
  }
  out->results += ']';
  if (!out->json) std::fprintf(stderr, "%d answer(s)\n", count);
  ReportRun(exec->MakeRun(), out);
  return 0;
}

int RunBatch(const std::string& query_path,
             const std::vector<std::string>& seq_paths, int k,
             ExecOptions* exec, CliOutput* out) {
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());
  // BatchEvaluator ranks by E_max, so an s-projector query runs as its
  // equivalent transducer.
  transducer::Transducer t = query->transducer.has_value()
                                 ? std::move(*query->transducer)
                                 : query->sprojector->ToTransducer();
  db::SequenceCollection collection(t.input_alphabet());
  for (const std::string& path : seq_paths) {
    auto mu = LoadSequence(path);
    if (!mu.ok()) return Fail(mu.status());
    Status st = collection.Insert(path, std::move(*mu));
    if (!st.ok()) return Fail(st);
  }
  if (exec->shards > 0) {
    // Sharded evaluation with a globally ranked k-way merge
    // (docs/DISTRIBUTED.md). --shards=1 is the single-process reference
    // ordering; every other shard count must reproduce it byte for byte.
    dist::ShardedBatchOptions sharded_options;
    sharded_options.shards = exec->shards;
    sharded_options.threads = exec->threads;
    sharded_options.run = exec->MakeRun();
    sharded_options.backend = exec->backend;
    sharded_options.optimize = exec->optimize;
    auto sharded = dist::EvaluateSharded(collection, t, k, sharded_options);
    if (!sharded.ok()) return Fail(sharded.status());
    out->results = "{\"rows\":[";
    bool first = true;
    if (!out->json) {
      std::printf("%-30s %-30s %-14s %-14s\n", "sequence", "answer", "E_max",
                  "confidence");
    }
    for (const dist::RankedRow& row : sharded->rows) {
      const std::string answer =
          FormatStr(t.output_alphabet(), row.answer.output);
      if (out->json) {
        if (!first) out->results += ',';
        first = false;
        serve::AppendBatchRowJson(row.key, answer, row.answer.emax,
                                  row.answer.confidence, &out->results);
      } else {
        std::printf("%-30s %-30s %-14.6g %-14.6g\n", row.key.c_str(),
                    answer.c_str(), row.answer.emax, row.answer.confidence);
      }
    }
    out->results += "],\"coverage\":";
    out->results += dist::CoverageJson(sharded->coverage);
    out->results += '}';
    if (!out->json) {
      for (const dist::ShardCoverage& c : sharded->coverage) {
        if (c.failed) {
          std::fprintf(stderr, "shard %d failed: %s\n", c.shard_id,
                       c.status.ToString().c_str());
        } else if (c.truncated) {
          std::fprintf(stderr, "shard %d truncated (%s)\n", c.shard_id,
                       StopReasonName(c.reason));
        }
      }
    }
    if (sharded_options.run != nullptr) {
      (void)sharded_options.run->StopRequested();
    }
    ReportRun(exec->PeekRun(), out);
    return 0;
  }

  db::BatchEvaluator::Options options;
  options.threads = exec->threads;
  options.run = exec->MakeRun();
  options.backend = exec->backend;
  options.optimize = exec->optimize;
  auto batch = db::BatchEvaluator::Create(&collection, &t, options);
  if (!batch.ok()) return Fail(batch.status());

  if (options.run != nullptr) {
    // Bounded batch: failure-isolating per-sequence evaluation. Each
    // sequence reports its own status/truncation; the batch never aborts.
    std::vector<db::BatchEvaluator::SequenceResult> results =
        batch->EvaluateAll(k);
    out->results = "[";
    bool first_seq = true;
    if (!out->json) {
      std::printf("%-30s %-30s %-14s %-14s\n", "sequence", "answer", "E_max",
                  "confidence");
    }
    for (const db::BatchEvaluator::SequenceResult& r : results) {
      if (out->json) {
        if (!first_seq) out->results += ',';
        first_seq = false;
        out->results += "{\"sequence\":\"";
        obs::AppendJsonEscaped(r.key, &out->results);
        out->results += "\",\"exec\":";
        out->results += ExecJson(r.status, r.reason,
                                 static_cast<int64_t>(r.answers.size()), 0);
        out->results += ",\"answers\":[";
        bool first = true;
        for (const query::AnswerInfo& info : r.answers) {
          if (!first) out->results += ',';
          first = false;
          AppendAnswerJson(FormatStr(t.output_alphabet(), info.output), "emax",
                           info.emax, info.confidence, &out->results);
        }
        out->results += "]}";
        continue;
      }
      for (const query::AnswerInfo& info : r.answers) {
        std::printf("%-30s %-30s %-14.6g %-14.6g\n", r.key.c_str(),
                    FormatStr(t.output_alphabet(), info.output).c_str(),
                    info.emax, info.confidence);
      }
      if (!r.status.ok()) {
        std::fprintf(stderr, "%s: %s\n", r.key.c_str(),
                     r.status.ToString().c_str());
      } else if (r.truncated) {
        std::fprintf(stderr, "%s: truncated after %zu answer(s)\n",
                     r.key.c_str(), r.answers.size());
      }
    }
    out->results += ']';
    // Fold any shared limit (deadline / budget / cancel) into the parent
    // stream so the top-level exec report reflects it; per-sequence answer
    // caps stay per sequence.
    (void)options.run->StopRequested();
    ReportRun(options.run, out);
    return 0;
  }

  auto rows = batch->TopKPerSequence(k);
  if (!rows.ok()) return Fail(rows.status());

  out->results = "[";
  bool first = true;
  if (!out->json) {
    std::printf("%-30s %-30s %-14s %-14s\n", "sequence", "answer", "E_max",
                "confidence");
  }
  for (const db::SequenceCollection::Row& row : *rows) {
    std::string answer = FormatStr(t.output_alphabet(), row.answer.output);
    if (out->json) {
      if (!first) out->results += ',';
      first = false;
      out->results += "{\"sequence\":\"";
      obs::AppendJsonEscaped(row.key, &out->results);
      out->results += "\",";
      // Reuse the answer fields of AppendAnswerJson minus its braces.
      std::string answer_json;
      AppendAnswerJson(answer, "emax", row.answer.emax, row.answer.confidence,
                       &answer_json);
      out->results += answer_json.substr(1);
    } else {
      std::printf("%-30s %-30s %-14.6g %-14.6g\n", row.key.c_str(),
                  answer.c_str(), row.answer.emax, row.answer.confidence);
    }
  }
  out->results += ']';
  return 0;
}

// Scatter/gather against running tms_server workers: worker i is shard i.
// Merged rows are the workers' verbatim NDJSON line bytes; the footer
// carries per-shard coverage. A dead worker degrades coverage, never the
// ordering of the surviving rows — and the command still exits 0 (the
// caller reads completeness from the footer, like any truncated run).
int RunDist(const std::string& query_path, int k, ExecOptions* exec,
            CliOutput* out) {
  if (exec->workers.empty()) {
    std::fprintf(stderr,
                 "error: dist requires --workers=host:port[,host:port...]\n");
    return 2;
  }
  auto workers = dist::ParseWorkerList(exec->workers);
  if (!workers.ok()) return Fail(workers.status());
  auto body = io::ReadFile(query_path);
  if (!body.ok()) return Fail(body.status());

  dist::CoordinatorOptions options;
  options.params = "k=" + std::to_string(k);
  if (exec->deadline_ms >= 0) {
    options.params += "&deadline_ms=" + std::to_string(exec->deadline_ms);
  }
  if (exec->max_answers >= 0) {
    options.params += "&max_answers=" + std::to_string(exec->max_answers);
  }
  if (exec->budget >= 0) {
    options.params += "&budget=" + std::to_string(exec->budget);
  }
  if (exec->backend != kernels::BackendChoice::kAuto) {
    options.params +=
        std::string("&backend=") + kernels::BackendChoiceName(exec->backend);
  }
  if (exec->optimize != optimize::Level::kAuto) {
    options.params +=
        std::string("&optimize=") + optimize::LevelName(exec->optimize);
  }

  dist::DistOutcome outcome =
      dist::ScatterGather(*workers, *body, options,
                          [](const std::string& line) {
                            std::fwrite(line.data(), 1, line.size(), stdout);
                            std::fputc('\n', stdout);
                            return true;
                          });
  std::string footer = "{\"done\":true,\"shards\":";
  footer += dist::CoverageJson(outcome.coverage);
  footer += '}';
  std::printf("%s\n", footer.c_str());
  std::fflush(stdout);
  for (const dist::ShardCoverage& c : outcome.coverage) {
    if (c.failed) {
      std::fprintf(stderr, "shard %d failed: %s\n", c.shard_id,
                   c.status.ToString().c_str());
    } else if (c.truncated) {
      std::fprintf(stderr, "shard %d truncated (%s)\n", c.shard_id,
                   StopReasonName(c.reason));
    }
  }
  if (out->json) {
    // The merged rows already streamed to stdout; the JSON results field
    // only summarizes.
    out->results = "{\"answers\":" + std::to_string(outcome.answers) +
                   ",\"coverage\":" + dist::CoverageJson(outcome.coverage) +
                   '}';
  }
  return 0;
}

int RunShow(const std::string& path, CliOutput* out) {
  auto text = io::ReadFile(path);
  if (!text.ok()) return Fail(text.status());
  auto format = io::DetectFormat(*text);
  if (!format.ok()) return Fail(format.status());
  if (out->json) {
    out->results = "{\"format\":\"";
    obs::AppendJsonEscaped(*format, &out->results);
    out->results += "\"}";
  }
  if (*format == "markov-sequence") {
    auto mu = io::ParseMarkovSequence(*text);
    if (!mu.ok()) return Fail(mu.status());
    if (!out->json) std::fputs(io::FormatMarkovSequence(*mu).c_str(), stdout);
    return 0;
  }
  if (*format == "transducer") {
    auto t = io::ParseTransducer(*text);
    if (!t.ok()) return Fail(t.status());
    if (!out->json) std::fputs(io::FormatTransducer(*t).c_str(), stdout);
    return 0;
  }
  auto p = io::ParseSProjector(*text);
  if (!p.ok()) return Fail(p.status());
  if (!out->json) {
    std::printf("s-projector over %zu symbols: |Q_B|=%d |Q_A|=%d |Q_E|=%d\n",
                p->alphabet().size(), p->prefix().num_states(),
                p->pattern().num_states(), p->suffix().num_states());
  }
  return 0;
}

// Offline optimization: prune + minimize the transducer query and persist
// the result as a fingerprinted artifact (optimize/artifact.h) that the
// server's registry precompile loads at cold start.
int RunOptimize(const std::string& query_path, const std::string& out_path,
                CliOutput* out) {
  auto query = LoadQuery(query_path);
  if (!query.ok()) return Fail(query.status());
  if (!query->transducer.has_value()) {
    return Fail(Status::InvalidArgument(
        "optimize expects a transducer query; s-projectors compose no "
        "product automaton and have nothing to optimize"));
  }
  const transducer::Transducer& t = *query->transducer;
  optimize::OptimizeStats stats;
  transducer::Transducer optimized = optimize::MinimizeTransducer(t, &stats);
  Status saved = optimize::SaveArtifactFile(out_path, t, optimized);
  if (!saved.ok()) return Fail(saved);
  if (out->json) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"artifact\":\"%s\",\"states_before\":%d,"
                  "\"states_after\":%d,\"edges_before\":%d,"
                  "\"edges_after\":%d,\"states_unreachable\":%d,"
                  "\"states_dead\":%d,\"states_merged\":%d}",
                  out_path.c_str(), stats.states_before, stats.states_after,
                  stats.edges_before, stats.edges_after,
                  stats.states_unreachable, stats.states_dead,
                  stats.states_merged);
    out->results = buf;
  } else {
    std::printf("optimized %s -> %s\n", query_path.c_str(), out_path.c_str());
    std::printf("  states: %d -> %d (unreachable %d, dead %d, merged %d)\n",
                stats.states_before, stats.states_after,
                stats.states_unreachable, stats.states_dead,
                stats.states_merged);
    std::printf("  edges:  %d -> %d\n", stats.edges_before, stats.edges_after);
  }
  return 0;
}

// Parses the value part of `--flag=N` as a nonnegative integer; false on
// empty, non-digit, or overflowing input (atoll would silently read "abc"
// as 0, turning a typo into a budget of zero).
bool ParseFlagValue(const std::string& arg, size_t prefix_len, int64_t* out) {
  return ParseNonNegInt64(std::string_view(arg).substr(prefix_len), out);
}

// A positional count argument (`k`, `limit`): strictly positive, int-sized.
// A garbage or nonpositive value is a usage error with its own message —
// atoi would have read it as 0 and silently produced zero answers.
bool ParseCountArg(const char* what, const std::string& arg, int* out) {
  if (ParsePositiveInt(arg, out)) return true;
  std::fprintf(stderr, "error: %s must be a positive integer, got '%s'\n",
               what, arg.c_str());
  return false;
}

// Strips --stats/--trace/--threads flags from args; returns false on a
// malformed flag.
bool ParseObsFlags(std::vector<std::string>* args, ObsOptions* opts,
                   ExecOptions* exec) {
  std::vector<std::string> rest;
  for (const std::string& arg : *args) {
    if (arg == "--stats") {
      opts->stats = StatsMode::kText;
    } else if (arg == "--stats=json") {
      opts->stats = StatsMode::kJson;
    } else if (arg == "--stats=prom") {
      opts->stats = StatsMode::kProm;
    } else if (arg.rfind("--trace=", 0) == 0) {
      opts->trace_path = arg.substr(std::strlen("--trace="));
      if (opts->trace_path.empty()) return false;
    } else if (arg == "--explain") {
      opts->explain = true;
    } else if (arg.rfind("--flight-dump=", 0) == 0) {
      opts->flight_dump = arg.substr(std::strlen("--flight-dump="));
      if (opts->flight_dump.empty()) return false;
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!ParsePositiveInt(
              std::string_view(arg).substr(std::strlen("--shards=")),
              &exec->shards)) {
        std::fprintf(stderr, "error: invalid --shards value in '%s'\n",
                     arg.c_str());
        return false;
      }
    } else if (arg.rfind("--workers=", 0) == 0) {
      exec->workers = arg.substr(std::strlen("--workers="));
      if (exec->workers.empty()) return false;
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Through the checked parser like every other numeric flag:
      // "--threads=abc" used to atoi to 0 and fall out as a bare usage
      // error; garbage, zero and negatives are rejected uniformly now.
      if (!ParsePositiveInt(
              std::string_view(arg).substr(std::strlen("--threads=")),
              &exec->threads)) {
        std::fprintf(stderr, "error: invalid --threads value in '%s'\n",
                     arg.c_str());
        return false;
      }
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      if (!ParseFlagValue(arg, std::strlen("--deadline-ms="),
                          &exec->deadline_ms)) {
        return false;
      }
    } else if (arg.rfind("--max-answers=", 0) == 0) {
      if (!ParseFlagValue(arg, std::strlen("--max-answers="),
                          &exec->max_answers)) {
        return false;
      }
    } else if (arg.rfind("--budget=", 0) == 0) {
      if (!ParseFlagValue(arg, std::strlen("--budget="), &exec->budget)) {
        return false;
      }
    } else if (arg.rfind("--backend=", 0) == 0) {
      auto choice =
          kernels::ParseBackendChoice(arg.substr(std::strlen("--backend=")));
      if (!choice.has_value()) return false;
      exec->backend = *choice;
    } else if (arg.rfind("--optimize=", 0) == 0) {
      auto level =
          optimize::ParseLevel(arg.substr(std::strlen("--optimize=")));
      if (!level.has_value()) {
        std::fprintf(stderr, "error: invalid --optimize value in '%s'\n",
                     arg.c_str());
        return false;
      }
      exec->optimize = *level;
    } else if (arg.rfind("--stats", 0) == 0 || arg.rfind("--trace", 0) == 0 ||
               arg.rfind("--threads", 0) == 0 ||
               arg.rfind("--shards", 0) == 0 ||
               arg.rfind("--workers", 0) == 0 ||
               arg.rfind("--deadline-ms", 0) == 0 ||
               arg.rfind("--max-answers", 0) == 0 ||
               arg.rfind("--budget", 0) == 0 ||
               arg.rfind("--backend", 0) == 0 ||
               arg.rfind("--optimize", 0) == 0 ||
               arg.rfind("--explain", 0) == 0 ||
               arg.rfind("--flight-dump", 0) == 0) {
      return false;
    } else {
      rest.push_back(arg);
    }
  }
  *args = std::move(rest);
  return true;
}

void EmitStats(const std::string& command, const ObsOptions& opts,
               const CliOutput& out) {
  if (opts.stats == StatsMode::kNone && opts.trace_path.empty()) return;
  obs::RegistrySnapshot snapshot = obs::Registry::Global().Snapshot();
  switch (opts.stats) {
    case StatsMode::kNone:
      break;
    case StatsMode::kText:
      std::fputs(obs::PrometheusText(snapshot).c_str(), stderr);
      break;
    case StatsMode::kProm:
      std::fputs(obs::PrometheusText(snapshot).c_str(), stdout);
      break;
    case StatsMode::kJson: {
      std::string doc = "{\"command\":\"";
      obs::AppendJsonEscaped(command, &doc);
      doc += "\",\"results\":";
      doc += out.results.empty() ? "null" : out.results;
      if (!out.exec_json.empty()) {
        doc += ",\"exec\":";
        doc += out.exec_json;
      }
      if (!out.explain_json.empty()) {
        // ExplainJson returns {"explain":{...}}; splice the key-value
        // pair into this document rather than nesting it twice.
        doc += ',';
        doc += out.explain_json.substr(1, out.explain_json.size() - 2);
      }
      doc += ",\"metrics\":";
      doc += obs::RegistryJson(snapshot);
      doc += "}\n";
      std::fputs(doc.c_str(), stdout);
      break;
    }
  }
  if (!opts.trace_path.empty()) {
    std::string trace = obs::Tracer::Global().ChromeTraceJson();
    std::FILE* f = std::fopen(opts.trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write trace to %s\n",
                   opts.trace_path.c_str());
    } else {
      std::fputs(trace.c_str(), f);
      std::fclose(f);
    }
  }
}

}  // namespace

// Configures where a truncation flight dump goes: the --flight-dump flag
// wins, then the TMS_FLIGHT_DUMP environment variable (already parsed by
// the recorder at startup), then the CLI default of stderr — a truncated
// CLI run should be post-mortem-debuggable out of the box.
void ConfigureFlightSink(const ObsOptions& opts) {
  using Sink = obs::FlightRecorder::Sink;
  if (!opts.flight_dump.empty()) {
    if (opts.flight_dump == "off") {
      obs::FlightRecorder::Global().SetDumpSink(Sink::kNone);
    } else if (opts.flight_dump == "stderr") {
      obs::FlightRecorder::Global().SetDumpSink(Sink::kStderr);
    } else {
      obs::FlightRecorder::Global().SetDumpSink(Sink::kFile,
                                                opts.flight_dump);
    }
  } else if (std::getenv("TMS_FLIGHT_DUMP") == nullptr) {
    obs::FlightRecorder::Global().SetDumpSink(Sink::kStderr);
  }
}

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  ObsOptions opts;
  ExecOptions exec;
  if (!ParseObsFlags(&args, &opts, &exec)) return Usage();
  if (opts.stats != StatsMode::kNone) obs::SetEnabled(true);
  if (!opts.trace_path.empty()) {
    obs::SetEnabled(true);
    obs::SetTracingEnabled(true);
  }
  ConfigureFlightSink(opts);

  if (args.size() < 2) return Usage();
  const std::string command = args[0];
  // `explain` is `topk` executed for its cost report: the answers are
  // computed (EXPLAIN ANALYZE semantics — real execution, real numbers)
  // but only the report is printed.
  const bool explain_command = command == "explain";
  const bool want_explain = explain_command || opts.explain;
  if (want_explain) obs::SetEnabled(true);

  CliOutput out;
  out.json = opts.stats == StatsMode::kJson;

  int code = 2;
  {
    // Every command runs as one query: its metrics accumulate in the
    // scope's registry (as well as the global one) and spans opened on
    // pool workers parent under this scope's root span.
    obs::QueryScope scope(command);
    const int64_t query_start_ns = obs::MonotonicNanos();
    // The explain command computes answers but never prints them; routing
    // them through the JSON accumulator (discarded unless --stats=json)
    // suppresses the human tables.
    const bool suppress_tables = explain_command && !out.json;
    if (suppress_tables) out.json = true;
    if (command == "show") {
      code = RunShow(args[1], &out);
    } else if (command == "optimize") {
      const std::string artifact =
          args.size() >= 3 ? args[2] : args[1] + ".opt";
      code = RunOptimize(args[1], artifact, &out);
    } else if (args.size() < 3) {
      return Usage();
    } else if (command == "topk" || explain_command) {
      int k = 10;
      if (args.size() >= 4 && !ParseCountArg("k", args[3], &k)) return Usage();
      code = RunTopK(args[1], args[2], k, &exec, &out);
    } else if (command == "batch") {
      int k = 0;
      if (!ParseCountArg("k", args[2], &k)) return Usage();
      if (args.size() < 4) return Usage();
      code = RunBatch(args[1],
                      std::vector<std::string>(args.begin() + 3, args.end()),
                      k, &exec, &out);
    } else if (command == "dist") {
      int k = 0;
      if (!ParseCountArg("k", args[2], &k)) return Usage();
      code = RunDist(args[1], k, &exec, &out);
    } else if (command == "conf") {
      code = RunConf(args[1], args[2],
                     std::vector<std::string>(args.begin() + 3, args.end()),
                     &out);
    } else if (command == "enum") {
      int limit = 100;
      if (args.size() >= 4 && !ParseCountArg("limit", args[3], &limit)) {
        return Usage();
      }
      code = RunEnum(args[1], args[2], limit, &exec, &out);
    } else {
      return Usage();
    }
    if (suppress_tables) out.json = false;

    if (code == 0 && want_explain) {
      obs::ExplainInput input;
      input.query = command;
      input.query_id = scope.query_id();
      input.duration_ns = obs::MonotonicNanos() - query_start_ns;
      input.threads = exec.threads;
      input.backend = kernels::BackendChoiceName(exec.backend);
      input.stats = scope.Snapshot();
      if (const exec::RunContext* run = exec.PeekRun()) {
        input.stop_reason = StopReasonName(run->stop_reason());
        input.answers = run->answers_emitted();
        input.work_charged = run->work_charged();
      }
      input.budget = exec.budget;
      input.deadline_ms = static_cast<double>(exec.deadline_ms);
      if (out.json) {
        out.explain_json = obs::ExplainJson(input);
      } else {
        // The explain command's report IS the output (stdout); as a flag
        // on another command it is diagnostics (stderr).
        std::fputs(obs::ExplainText(input).c_str(),
                   explain_command ? stdout : stderr);
      }
    }
  }
  EmitStats(command, opts, out);
  return code;
}
