#!/bin/sh
# End-to-end golden regression corpus.
#
# Six workloads (hospital transducer, hospital s-projector, the paper's
# running example, bio motif, plus the hospital and bio-motif workloads
# replayed with --optimize=on) are replayed through the CLI; for each,
# BOTH the ranked answer stream (full stdout, byte-compared) and the
# --stats=json KEY SET are pinned against tests/golden/. The two
# optimization-enabled cases must ALSO byte-match their unoptimized
# twins: the optimize pass is stream-exact (docs/OPTIMIZE.md). Answer streams are deterministic because
# the max-plus kernel paths are bit-exact and ties break identically at
# any thread count; metric values are not deterministic, so only the JSON
# keys are golden (the check_stats_schema.sh convention).
#
# A divergence means user-visible output changed: either fix the
# regression or regenerate deliberately:
#
#   TMS_UPDATE_GOLDEN=1 tools/check_golden.sh <tms_cli> <repo-root>
#
# The generated data files under tests/golden/data/ are committed; rebuild
# them (new seeds/workload changes) with tools/make_golden_data, then
# regenerate the outputs.
#
# usage: check_golden.sh <path-to-tms_cli> <repo-root>
set -eu

CLI="$1"
ROOT="$2"
DATA="$ROOT/examples/data"
GDATA="$ROOT/tests/golden/data"
GOLD="$ROOT/tests/golden"

# A missing golden file is a hard failure, never a skip (same contract
# as tools/check_stats_schema.sh).
require_golden() {
  if [ ! -f "$1" ]; then
    echo "MISSING golden file: $1" >&2
    echo "a missing golden is an error, not a skip" >&2
    echo "generate it deliberately with TMS_UPDATE_GOLDEN=1 $0 $CLI $ROOT" >&2
    exit 1
  fi
}

check_case() { # name sequence query k [extra-flag]
  name="$1"; seq="$2"; query="$3"; k="$4"; extra="${5:-}"
  out=$("$CLI" topk "$seq" "$query" "$k" $extra)
  keys=$("$CLI" topk "$seq" "$query" "$k" $extra --stats=json \
         | grep -o '"[^"]*":' | LC_ALL=C sort -u)
  if [ -n "${TMS_UPDATE_GOLDEN:-}" ]; then
    printf '%s\n' "$out" > "$GOLD/${name}_topk.golden"
    printf '%s\n' "$keys" > "$GOLD/${name}_stats_keys.golden"
    echo "updated $name"
    return 0
  fi
  require_golden "$GOLD/${name}_topk.golden"
  require_golden "$GOLD/${name}_stats_keys.golden"
  if ! printf '%s\n' "$out" | diff -u "$GOLD/${name}_topk.golden" -; then
    echo "golden answer stream diverged: $name" >&2
    echo "regenerate deliberately with TMS_UPDATE_GOLDEN=1 $0 $CLI $ROOT" >&2
    exit 1
  fi
  if ! printf '%s\n' "$keys" | diff -u "$GOLD/${name}_stats_keys.golden" -; then
    echo "golden stats key set diverged: $name" >&2
    echo "regenerate deliberately with TMS_UPDATE_GOLDEN=1 $0 $CLI $ROOT" >&2
    exit 1
  fi
}

check_case hospital "$DATA/hospital.tms" "$DATA/place_tracker.tms" 5
check_case hospital_sproj "$DATA/hospital.tms" "$DATA/lab_visit.tms" 5
check_case running_example "$GDATA/fig1.tms" "$GDATA/fig2_query.tms" 5
check_case bio_motif "$GDATA/motif.tms" "$GDATA/motif_query.tms" 5
check_case hospital_opt "$DATA/hospital.tms" "$DATA/place_tracker.tms" 5 \
  --optimize=on
check_case bio_motif_opt "$GDATA/motif.tms" "$GDATA/motif_query.tms" 5 \
  --optimize=on

# The optimized streams must be byte-identical to their unoptimized
# twins — not merely self-consistent. A diff here means the pass changed
# user-visible bytes, which it promises never to do.
if [ -z "${TMS_UPDATE_GOLDEN:-}" ]; then
  for pair in "hospital hospital_opt" "bio_motif bio_motif_opt"; do
    base=${pair% *}; opt=${pair#* }
    if ! cmp -s "$GOLD/${base}_topk.golden" "$GOLD/${opt}_topk.golden"; then
      echo "optimized golden stream differs from unoptimized: $opt" >&2
      exit 1
    fi
  done
fi

# Neither the thread count nor the kernel backend may change the answer
# stream: the max-plus kernels are exact at any concurrency, and the
# sparse CSR path skips only ⊕-identity entries of the dense reduction
# order (kernels/sparse.h), so --backend=sparse and --backend=auto must
# reproduce the dense bytes at every thread count.
t1=$("$CLI" topk "$DATA/hospital.tms" "$DATA/place_tracker.tms" 10 \
     --threads=1)
for th in 1 2 8; do
  for be in dense sparse auto; do
    for op in on off; do
      tn=$("$CLI" topk "$DATA/hospital.tms" "$DATA/place_tracker.tms" 10 \
           --threads=$th --backend=$be --optimize=$op)
      if [ "$t1" != "$tn" ]; then
        echo "answer stream diverged at --threads=$th --backend=$be" \
             "--optimize=$op" >&2
        exit 1
      fi
    done
  done
done

[ -n "${TMS_UPDATE_GOLDEN:-}" ] || echo "golden corpus OK"
