// tms_server — long-lived HTTP server streaming ranked answers.
//
//   tms_server [flags] <name>=<sequence-file>...
//
// Loads every named model once at startup (serve/registry.h), then
// answers queries over a minimal HTTP/1.1 interface (serve/server.h):
//
//   GET  /healthz          liveness probe
//   GET  /metrics          Prometheus text exposition (docs/OBSERVABILITY.md)
//   GET  /models           the registered model names
//   POST /query/<name>     body = transducer or s-projector text format;
//                          response = chunked NDJSON, one ranked answer
//                          per line as the enumerator emits it, then a
//                          {"done":true,"exec":{...}} footer with the
//                          structured stop reason.
//
// Flags:
//   --port=N            TCP port (default 0 = kernel-assigned ephemeral)
//   --host=ADDR         bind address (default 127.0.0.1)
//   --threads=N         total engine concurrency shared by all queries
//                       (one exec::ThreadPool for the whole server)
//   --max-inflight=N    admission limit; excess queries get 429
//   --max-connections=N open-connection cap; excess connections get 503
//   --backend=dense|sparse|auto  default kernel backend (per-request
//                       ?backend= overrides)
//   --optimize=off|auto|on  default query-automaton optimization level
//                       (per-request ?optimize= overrides; byte-identical
//                       streams at any level, docs/OPTIMIZE.md)
//   --precompile=<model>:<name>=<query-file>  optimize the transducer
//                       query offline at startup and serve it by name via
//                       ?precompiled=<name> with an empty body; the
//                       optimized machine persists as <query-file>.opt and
//                       later cold starts load the artifact directly
//                       (fingerprint-checked; corrupt artifacts recompile
//                       with a loud optimize.artifact_rejected). May
//                       repeat.
//   --port-file=PATH    write the bound port to PATH once listening
//                       (scripts bind port 0 and read this back)
//
// SIGINT/SIGTERM drain gracefully: stop accepting, cancel every in-flight
// stream at its next answer boundary (CANCELLED footer), join, exit 0.
// See docs/SERVING.md.

#include <signal.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/parse.h"
#include "exec/fault.h"
#include "kernels/backend.h"
#include "optimize/level.h"
#include "obs/obs.h"
#include "serve/registry.h"
#include "serve/server.h"

namespace {

using namespace tms;

int Usage() {
  std::fprintf(
      stderr,
      "usage: tms_server [--port=N] [--host=ADDR] [--threads=N]\n"
      "                  [--max-inflight=N] [--max-connections=N]\n"
      "                  [--backend=dense|sparse|auto] "
      "[--optimize=off|auto|on]\n"
      "                  [--precompile=<model>:<name>=<query-file>]...\n"
      "                  [--port-file=PATH] <name>=<sequence-file>...\n");
  return 2;
}

bool ParseIntFlag(const char* what, std::string_view value, int64_t lo,
                  int64_t hi, int* out) {
  int64_t parsed = 0;
  if (!ParseNonNegInt64(value, &parsed) || parsed < lo || parsed > hi) {
    std::fprintf(stderr,
                 "error: invalid %s value '%.*s' (expected integer in "
                 "[%lld, %lld])\n",
                 what, static_cast<int>(value.size()), value.data(),
                 static_cast<long long>(lo), static_cast<long long>(hi));
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  std::string port_file;
  std::vector<std::pair<std::string, std::string>> model_specs;
  // (model, name, query-file) triples from --precompile flags.
  std::vector<std::array<std::string, 3>> precompile_specs;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string_view view = arg;
    if (view.rfind("--port=", 0) == 0) {
      if (!ParseIntFlag("--port", view.substr(7), 0, 65535, &options.port)) {
        return Usage();
      }
    } else if (view.rfind("--host=", 0) == 0) {
      options.host = std::string(view.substr(7));
    } else if (view.rfind("--threads=", 0) == 0) {
      if (!ParseIntFlag("--threads", view.substr(10), 1, 1024,
                        &options.threads)) {
        return Usage();
      }
    } else if (view.rfind("--max-inflight=", 0) == 0) {
      if (!ParseIntFlag("--max-inflight", view.substr(15), 0, 1 << 20,
                        &options.max_inflight)) {
        return Usage();
      }
    } else if (view.rfind("--max-connections=", 0) == 0) {
      if (!ParseIntFlag("--max-connections", view.substr(18), 1, 1 << 20,
                        &options.max_connections)) {
        return Usage();
      }
    } else if (view.rfind("--backend=", 0) == 0) {
      auto choice =
          kernels::ParseBackendChoice(std::string(view.substr(10)));
      if (!choice.has_value()) {
        std::fprintf(stderr, "error: invalid --backend value in '%s'\n",
                     arg.c_str());
        return Usage();
      }
      options.backend = *choice;
    } else if (view.rfind("--optimize=", 0) == 0) {
      auto level = optimize::ParseLevel(view.substr(11));
      if (!level.has_value()) {
        std::fprintf(stderr, "error: invalid --optimize value in '%s'\n",
                     arg.c_str());
        return Usage();
      }
      options.optimize = *level;
    } else if (view.rfind("--precompile=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--precompile="));
      const size_t colon = spec.find(':');
      const size_t eq = spec.find('=', colon == std::string::npos ? 0 : colon);
      if (colon == std::string::npos || eq == std::string::npos ||
          colon == 0 || eq <= colon + 1 || eq + 1 == spec.size()) {
        std::fprintf(stderr,
                     "error: --precompile spec must be "
                     "<model>:<name>=<query-file>, got '%s'\n",
                     arg.c_str());
        return Usage();
      }
      precompile_specs.push_back({spec.substr(0, colon),
                                  spec.substr(colon + 1, eq - colon - 1),
                                  spec.substr(eq + 1)});
    } else if (view.rfind("--port-file=", 0) == 0) {
      port_file = std::string(view.substr(12));
    } else if (view.rfind("--", 0) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage();
    } else {
      const size_t eq = arg.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
        std::fprintf(stderr,
                     "error: model spec must be <name>=<file>, got '%s'\n",
                     arg.c_str());
        return Usage();
      }
      model_specs.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    }
  }
  if (model_specs.empty()) {
    std::fprintf(stderr, "error: at least one <name>=<sequence-file> model "
                         "is required\n");
    return Usage();
  }

  // A server is an observability consumer by definition: /metrics is an
  // endpoint, so the registry must be recording.
  obs::SetEnabled(true);

#if TMS_FAULTS_ACTIVE
  // Fault-testing builds honor TMS_FAULT_INJECT ("point:kind:nth[;...]")
  // so robustness harnesses (tools/dist_smoke.sh) can kill a worker
  // mid-stream without patching the binary.
  exec::FaultInjector::Global().ArmFromEnv();
#endif

  auto registry = serve::ModelRegistry::Load(model_specs);
  if (!registry.ok()) {
    std::fprintf(stderr, "error: %s\n", registry.status().ToString().c_str());
    return 1;
  }
  for (const std::string& name : registry->Names()) {
    std::fprintf(stderr, "loaded model '%s'\n", name.c_str());
  }
  for (const auto& spec : precompile_specs) {
    Status st = registry->Precompile(spec[0], spec[1], spec[2],
                                     options.optimize);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "precompiled query '%s:%s' from %s\n",
                 spec[0].c_str(), spec[1].c_str(), spec[2].c_str());
  }

  // Block the termination signals BEFORE any thread exists so every
  // thread inherits the mask and sigwait below is the only receiver.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  serve::HttpServer server(std::move(*registry), options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write --port-file=%s\n",
                   port_file.c_str());
      server.Shutdown();
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }
  std::fprintf(stderr, "tms_server listening on %s:%d\n",
               options.host.c_str(), server.port());
  std::fflush(stderr);

  int sig = 0;
  sigwait(&sigs, &sig);
  std::fprintf(stderr, "received %s, draining\n",
               sig == SIGTERM ? "SIGTERM" : "SIGINT");
  server.Shutdown();
  std::fprintf(stderr, "drained, exiting\n");
  return 0;
}
