// RFID tracking: the paper's motivating Lahar scenario at realistic size.
//
// Simulates a hospital floor (rooms / hallway / lab with sub-locations and
// noisy sensors), runs the HMM→posterior translation on a sampled
// observation stream, and queries the resulting Markov sequence with a
// Figure-2-style place tracker: "which sequence of places did the crash
// cart visit?" — ranked by E_max with confidences attached.

#include <cstdio>

#include "common/rng.h"
#include "hmm/translate.h"
#include "query/evaluator.h"
#include "workload/hospital.h"

int main() {
  using namespace tms;

  workload::HospitalConfig config;
  config.num_rooms = 2;
  config.locs_per_place = 2;
  config.sensor_accuracy = 0.75;

  Rng rng(2026);
  const int n = 24;
  auto scenario = workload::MakeScenario(config, n, rng);
  if (!scenario.ok()) {
    std::printf("error: %s\n", scenario.status().ToString().c_str());
    return 1;
  }

  std::printf("Simulated %d time steps over %zu locations\n", n,
              scenario->model.states().size());
  std::printf("true locations : %s\n",
              FormatStr(scenario->model.states(),
                        scenario->true_locations).c_str());
  std::printf("sensor readings: %s\n",
              FormatStr(scenario->model.observations(),
                        scenario->observations).c_str());
  std::printf("observation log-likelihood: %.3f\n",
              hmm::ObservationLogLikelihood(scenario->model,
                                            scenario->observations));

  // Query: the place tracker (emits a place symbol on every place change).
  transducer::Transducer tracker =
      workload::PlaceTracker(scenario->model.states(), config);

  auto eval = query::Evaluator::Create(&scenario->mu, &tracker);
  if (!eval.ok()) {
    std::printf("error: %s\n", eval.status().ToString().c_str());
    return 1;
  }
  auto topk = eval->TopK(8);
  if (!topk.ok()) {
    std::printf("error: %s\n", topk.status().ToString().c_str());
    return 1;
  }

  auto true_route = tracker.TransduceDeterministic(scenario->true_locations);
  std::printf("\ntrue place route: %s\n",
              FormatStr(tracker.output_alphabet(), *true_route).c_str());

  std::printf("\nTop-%zu place routes by E_max, with confidence:\n",
              topk->size());
  for (size_t i = 0; i < topk->size(); ++i) {
    const query::AnswerInfo& info = (*topk)[i];
    bool is_truth = info.output == *true_route;
    std::printf("  %2zu. %-30s E_max=%-10.4g conf=%-10.4g%s\n", i + 1,
                FormatStr(tracker.output_alphabet(), info.output).c_str(),
                info.emax, info.confidence, is_truth ? "   <-- truth" : "");
  }
  return 0;
}
