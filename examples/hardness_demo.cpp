// Hardness demo: why ranked enumeration by confidence is intractable.
//
// Generates the Theorem 4.5 device from a max-3-DNF formula: a FIXED
// one-state deterministic projector over Σ = {0,1,a,b} and a Markov
// sequence whose answers are assignments with
//     conf(o_x) = #satisfied-clauses(x) · base.
// The E_max heuristic (Theorem 4.3's best tractable order) scores every
// satisfying assignment identically, so its top answer can be a factor
// OPT worse than the confidence optimum — and concatenating copies
// amplifies that gap exponentially (the paper's 2^{n^{1-δ}} lower bound).

#include <cstdio>

#include "common/rng.h"
#include "query/confidence.h"
#include "query/emax.h"
#include "reductions/max3dnf.h"

int main() {
  using namespace tms;
  using reductions::Dnf3Formula;

  Rng rng(42);
  Dnf3Formula formula = Dnf3Formula::Random(/*num_vars=*/6,
                                            /*num_clauses=*/5, rng);
  int opt = formula.BruteForceOptimum();
  std::printf("max-3-DNF instance: %d variables, %zu clauses, OPT = %d\n",
              formula.num_vars, formula.clauses.size(), opt);

  for (int copies : {1, 2, 3}) {
    auto instance = reductions::Max3DnfToProjector(formula, copies);
    if (!instance.ok()) {
      std::printf("error: %s\n", instance.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\ncopies=%d  (n = %d, fixed projector: |Σ|=4, |Q|=1)\n", copies,
        instance->mu.length());

    // The E_max-top answer (tractable, Theorem 4.3).
    auto emax_top = query::TopAnswerByEmax(instance->mu, instance->t);
    auto emax_conf =
        query::Confidence(instance->mu, instance->t, emax_top->output);
    auto decoded =
        reductions::DecodeAssignments(*instance, emax_top->output,
                                      formula.num_vars);
    int emax_sat = formula.CountSatisfied((*decoded)[0]);

    // The true confidence optimum (intractable in general; here we know
    // it analytically: (OPT · base)^copies).
    double best_conf = 1.0;
    for (int c = 0; c < copies; ++c) best_conf *= opt * instance->base_mass;

    std::printf("  E_max-top answer : satisfies %d/%zu clauses (copy 1), "
                "conf = %.3e\n",
                emax_sat, formula.clauses.size(), *emax_conf);
    std::printf("  confidence optimum: conf = %.3e\n", best_conf);
    std::printf("  approximation gap : %.2fx\n", best_conf / *emax_conf);
  }

  std::printf(
      "\nThe gap grows exponentially with the number of copies — matching "
      "the paper's\nresult that no sub-exponential approximation of the "
      "top answer is tractable\n(Theorems 4.4 and 4.5).\n");
  return 0;
}
