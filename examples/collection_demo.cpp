// Collection demo: the Lahar setting — a database of Markov sequences,
// one per tracked object, queried with one transducer.
//
// Builds a small fleet of crash carts (each an independent HMM-posterior
// Markov sequence over the same hospital floor), then runs:
//   * per-cart top-k place routes (transducer evaluation per sequence),
//   * a Lahar-style Boolean query — "probability the cart ever entered
//     the lab" — ranked across the collection,
//   * cross-sequence ranking for a specific route.

#include <cstdio>

#include "automata/regex.h"
#include "common/rng.h"
#include "db/collection.h"
#include "workload/hospital.h"

int main() {
  using namespace tms;

  workload::HospitalConfig config;
  config.num_rooms = 2;
  config.locs_per_place = 1;

  auto hmm = workload::BuildHospitalHmm(config);
  if (!hmm.ok()) {
    std::printf("error: %s\n", hmm.status().ToString().c_str());
    return 1;
  }
  db::SequenceCollection carts(hmm->states());

  Rng rng(99);
  const int kCarts = 5;
  const int n = 12;
  for (int i = 0; i < kCarts; ++i) {
    auto scenario = workload::MakeScenario(config, n, rng);
    if (!scenario.ok()) {
      std::printf("error: %s\n", scenario.status().ToString().c_str());
      return 1;
    }
    Status st = carts.Insert("cart" + std::to_string(i),
                             std::move(scenario->mu));
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("collection: %zu carts, %d time steps each, %zu locations\n",
              carts.size(), n, carts.nodes().size());

  // Per-cart top routes.
  transducer::Transducer tracker =
      workload::PlaceTracker(carts.nodes(), config);
  auto rows = carts.TopKPerSequence(tracker, 2);
  if (!rows.ok()) {
    std::printf("error: %s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("\nTop-2 place routes per cart (E_max order, confidences):\n");
  for (const auto& row : *rows) {
    std::printf("  %-7s %-24s conf=%.4f\n", row.key.c_str(),
                FormatStr(tracker.output_alphabet(),
                          row.answer.output).c_str(),
                row.answer.confidence);
  }

  // Boolean Lahar query: ever in the lab?
  auto lab_dfa = automata::CompileRegexToDfa(carts.nodes(),
                                             ". * la . *");
  if (!lab_dfa.ok()) {
    std::printf("error: %s\n", lab_dfa.status().ToString().c_str());
    return 1;
  }
  auto lab_ranked = carts.AcceptanceByKey(*lab_dfa);
  std::printf("\nPr(cart ever entered the lab), ranked:\n");
  for (const auto& [key, p] : *lab_ranked) {
    std::printf("  %-7s %.4f\n", key.c_str(), p);
  }

  // Which cart most likely went hallway -> room 1 (route "H 1...")?
  Str route = *ParseStr(tracker.output_alphabet(), "H 1");
  auto by_route = carts.RankSequencesByAnswer(tracker, route);
  std::printf("\nPr(route = \"H 1\") per cart, ranked:\n");
  for (const auto& [key, p] : *by_route) {
    std::printf("  %-7s %.4f\n", key.c_str(), p);
  }
  return 0;
}
