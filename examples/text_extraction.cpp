// Text extraction with s-projectors (Example 5.1).
//
// Simulates an OCR read of a form line containing "name:<name> " and
// extracts the name with the s-projector [".*name:"]["[a-z,]+"][" .*"].
// Demonstrates the two §5 evaluation modes:
//   * indexed s-projector: EXACT ranked enumeration of occurrences (o, i)
//     in decreasing confidence (Theorem 5.7) with per-answer confidence
//     (Theorem 5.8);
//   * plain s-projector: distinct extracted strings in decreasing I_max —
//     an n-approximate confidence order (Theorem 5.2) — with exact
//     confidences from the concatenation-DFA algorithm (Theorem 5.5).

#include <cstdio>

#include "common/rng.h"
#include "projector/imax_enum.h"
#include "projector/indexed_enum.h"
#include "projector/sprojector_confidence.h"
#include "workload/text.h"

int main() {
  using namespace tms;

  Rng rng(7);
  std::string truth = workload::MakeFormLine("hillary", 28, rng);
  std::printf("ground-truth line : \"%s\"\n", truth.c_str());

  workload::OcrConfig ocr;
  ocr.char_accuracy = 0.9;
  ocr.confusion_spread = 1;
  auto mu = workload::OcrSequence(truth, ocr);
  if (!mu.ok()) {
    std::printf("error: %s\n", mu.status().ToString().c_str());
    return 1;
  }
  std::printf("OCR model         : %d positions, %.0f%% per-char accuracy\n",
              mu->length(), ocr.char_accuracy * 100);

  auto extractor = workload::NameExtractor();
  if (!extractor.ok()) {
    std::printf("error: %s\n", extractor.status().ToString().c_str());
    return 1;
  }

  // Indexed: top occurrences (o, i) in exact decreasing confidence.
  std::printf("\nTop-5 indexed answers (o, i) — exact order, Theorem 5.7:\n");
  auto results = projector::TopKIndexed(*mu, *extractor, 5);
  for (size_t r = 0; r < results.size(); ++r) {
    std::printf("  %zu. \"%s\" @ %-3d conf=%.6f\n", r + 1,
                FormatStrCompact(extractor->alphabet(),
                                 results[r].answer.output).c_str(),
                results[r].answer.index, results[r].confidence);
  }

  // Distinct strings by I_max, with exact confidence attached.
  std::printf(
      "\nTop-5 distinct extractions — I_max order (Theorem 5.2), with "
      "exact confidence (Theorem 5.5):\n");
  auto imax_it = projector::ImaxEnumerator::Create(&*mu, &*extractor);
  if (!imax_it.ok()) {
    std::printf("error: %s\n", imax_it.status().ToString().c_str());
    return 1;
  }
  for (int r = 0; r < 5; ++r) {
    auto answer = imax_it->Next();
    if (!answer.has_value()) break;
    auto conf =
        projector::SProjectorConfidence(*mu, *extractor, answer->output);
    std::printf("  %d. \"%s\"  I_max=%.6f  conf=%.6f\n", r + 1,
                FormatStrCompact(extractor->alphabet(),
                                 answer->output).c_str(),
                answer->score, conf.ok() ? *conf : -1.0);
  }
  return 0;
}
