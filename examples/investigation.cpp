// Contamination investigation: conditioning and event queries.
//
// The paper's running scenario: "we identify that the particular cart is
// contaminated… we know the cart was not contaminated in its first visit
// to the lab" (Example 3.4). This example takes that story further with
// the library's conditioning and event-query layers:
//   1. the per-time probability that the cart has visited the lab
//      (Lahar's event-series query),
//   2. conditioning the Markov sequence on hindsight knowledge — "the cart
//      ended up in Room 2" — and re-running the Figure 2 place query on
//      the conditioned posterior,
//   3. the exact confidence-optimal route before and after conditioning,
//      with the branch-and-bound certificate.

#include <cstdio>

#include "automata/regex.h"
#include "db/event_query.h"
#include "markov/condition.h"
#include "query/evaluator.h"
#include "query/top_confidence.h"
#include "workload/running_example.h"

int main() {
  using namespace tms;

  markov::MarkovSequence mu = workload::Figure1Sequence();
  transducer::Transducer fig2 = workload::Figure2Transducer();

  // 1. Event series: Pr(cart has visited the lab by time t).
  auto lab_visit =
      automata::CompileRegexToDfa(mu.nodes(), ". * ( la | lb ) . *");
  if (!lab_visit.ok()) {
    std::printf("error: %s\n", lab_visit.status().ToString().c_str());
    return 1;
  }
  auto series = db::EventFiredSeries(mu, *lab_visit);
  std::printf("Pr(cart visited the lab by time t):\n  t : ");
  for (size_t t = 0; t < series.size(); ++t) std::printf("%7zu", t + 1);
  std::printf("\n  Pr: ");
  for (double p : series) std::printf("%7.4f", p);
  std::printf("\n");

  // 2. Condition on "the cart ended in Room 2".
  auto ends_r2 =
      automata::CompileRegexToDfa(mu.nodes(), ". * ( r2a | r2b )");
  auto conditioned = markov::ConditionOnAcceptance(mu, *ends_r2);
  if (!conditioned.ok()) {
    std::printf("error: %s\n", conditioned.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPr(cart ended in Room 2) = %.4f\n",
              conditioned->event_probability);

  auto lifted = conditioned->LiftTransducer(fig2);
  auto eval_prior = query::Evaluator::Create(&mu, &fig2);
  auto eval_posterior =
      query::Evaluator::Create(&conditioned->mu, &*lifted);
  auto prior = eval_prior->TopK(3);
  auto posterior = eval_posterior->TopK(3);

  std::printf("\n%-34s %-30s\n", "top routes (unconditioned)",
              "top routes (given: ended in Room 2)");
  for (size_t i = 0; i < 3; ++i) {
    std::string left = i < prior->size()
                           ? FormatStrCompact(fig2.output_alphabet(),
                                              (*prior)[i].output) +
                                 "  conf=" +
                                 std::to_string((*prior)[i].confidence)
                           : "";
    std::string right =
        i < posterior->size()
            ? FormatStrCompact(fig2.output_alphabet(),
                               (*posterior)[i].output) +
                  "  conf=" + std::to_string((*posterior)[i].confidence)
            : "";
    std::printf("%-34s %-30s\n", left.c_str(), right.c_str());
  }

  // 3. Exact confidence-optimal route with certificate (both worlds).
  auto best_prior = query::TopAnswerByConfidence(mu, fig2);
  auto best_posterior =
      query::TopAnswerByConfidence(conditioned->mu, *lifted);
  std::printf("\nconfidence-optimal route, unconditioned : %s (conf=%.4f, "
              "%s, %lld answers explored)\n",
              FormatStrCompact(fig2.output_alphabet(),
                               best_prior->output).c_str(),
              best_prior->confidence,
              best_prior->certified_optimal ? "certified" : "uncertified",
              static_cast<long long>(best_prior->answers_explored));
  std::printf("confidence-optimal route, conditioned   : %s (conf=%.4f, "
              "%s, %lld answers explored)\n",
              FormatStrCompact(fig2.output_alphabet(),
                               best_posterior->output).c_str(),
              best_posterior->confidence,
              best_posterior->certified_optimal ? "certified" : "uncertified",
              static_cast<long long>(best_posterior->answers_explored));
  return 0;
}
