// Quickstart: the paper's running example, end to end.
//
// Builds the Figure 1 Markov sequence and the Figure 2 transducer,
// reproduces Table 1, and runs the three evaluation modes: unranked
// enumeration (Theorem 4.1), ranked enumeration by E_max (Theorem 4.3),
// and per-answer confidence (Theorem 4.6).

#include <cstdio>

#include "markov/markov_sequence.h"
#include "query/evaluator.h"
#include "strings/str.h"
#include "workload/running_example.h"

int main() {
  using namespace tms;

  // The data: Figure 1's hospital-RFID Markov sequence μ[5] over six
  // location nodes (exact rational probabilities).
  markov::MarkovSequence mu = workload::Figure1Sequence();
  std::printf("Markov sequence μ[%d] over %zu nodes\n", mu.length(),
              mu.nodes().size());

  // The query: Figure 2's transducer — after the cart's first visit to
  // the lab, emit the room number whenever a room is entered.
  transducer::Transducer fig2 = workload::Figure2Transducer();

  // Table 1: random strings, their probabilities, and their outputs.
  std::printf("\nTable 1 — random strings and their output\n");
  std::printf("%-4s %-24s %-12s %s\n", "", "value", "probability", "output");
  for (const workload::Table1Row& row : workload::Table1Rows()) {
    Str world = *ParseStr(mu.nodes(), row.world);
    auto output = fig2.TransduceDeterministic(world);
    std::printf("%-4s %-24s %-12.4f %s\n", row.name, row.world,
                mu.WorldProbability(world),
                output.has_value()
                    ? FormatStrCompact(fig2.output_alphabet(), *output).c_str()
                    : "N/A");
  }

  // Query evaluation: top-3 answers by decreasing E_max, with confidences.
  auto eval = query::Evaluator::Create(&mu, &fig2);
  if (!eval.ok()) {
    std::printf("error: %s\n", eval.status().ToString().c_str());
    return 1;
  }
  auto topk = eval->TopK(3);
  std::printf("\nTop-3 answers by E_max (Theorem 4.3), with confidence:\n");
  for (const query::AnswerInfo& info : *topk) {
    std::printf("  %-8s E_max=%.4f  conf=%.4f\n",
                FormatStrCompact(fig2.output_alphabet(), info.output).c_str(),
                info.emax, info.confidence);
  }

  // All answers, unranked (Theorem 4.1).
  auto all = eval->EvaluateTwoStep();
  std::printf("\nAll %zu answers (unranked enumeration, Theorem 4.1):\n",
              all->size());
  for (const query::AnswerInfo& info : *all) {
    std::printf("  %-8s conf=%.4f\n",
                FormatStrCompact(fig2.output_alphabet(), info.output).c_str(),
                info.confidence);
  }
  return 0;
}
