// Speech decoding: phoneme lattices as Markov sequences.
//
// The paper's introduction lists speech as a core application: "the
// observations are acoustic signals, and the hidden states are sequences
// of words or phonemes". This example builds a toy phoneme HMM for a
// two-word vocabulary ("go", "no" — phonemes g/n/oh plus silence),
// decodes a noisy utterance into a posterior Markov sequence over
// phonemes, and queries it with a word-segmenting transducer that emits a
// word symbol per recognized phoneme group — ranked transcription with
// confidences, the paper's semantics end to end.

#include <cstdio>

#include "common/rng.h"
#include "hmm/translate.h"
#include "query/evaluator.h"

int main() {
  using namespace tms;

  // Phoneme HMM: states {sil, g, n, oh}; acoustic observations are 6
  // coarse signal classes with overlapping emissions (g and n confusable).
  Alphabet phonemes = *Alphabet::FromNames({"sil", "g", "n", "oh"});
  Alphabet acoustics =
      *Alphabet::FromNames({"quiet", "burst1", "burst2", "nasal", "vowel1",
                            "vowel2"});
  // Transition structure: sil -> {sil, g, n}; g/n -> oh; oh -> {oh, sil}.
  std::vector<double> transition = {
      // sil    g     n     oh
      0.5, 0.25, 0.25, 0.0,   // from sil
      0.0, 0.2, 0.0, 0.8,     // from g (may stretch)
      0.0, 0.0, 0.2, 0.8,     // from n
      0.3, 0.0, 0.0, 0.7,     // from oh
  };
  std::vector<double> emission = {
      // quiet burst1 burst2 nasal vowel1 vowel2
      0.8, 0.05, 0.05, 0.05, 0.025, 0.025,  // sil
      0.05, 0.5, 0.3, 0.15, 0.0, 0.0,       // g  (bursty, some nasal leak)
      0.05, 0.2, 0.15, 0.6, 0.0, 0.0,       // n  (nasal, confusable with g)
      0.0, 0.0, 0.0, 0.0, 0.55, 0.45,       // oh
  };
  auto hmm = hmm::Hmm::Create(phonemes, acoustics, {1.0, 0.0, 0.0, 0.0},
                              transition, emission);
  if (!hmm.ok()) {
    std::printf("error: %s\n", hmm.status().ToString().c_str());
    return 1;
  }

  // Simulate an utterance: silence, "go", silence, "no", silence.
  Rng rng(7);
  auto [true_phonemes, observed] = hmm->Sample(16, rng);
  std::printf("true phonemes : %s\n",
              FormatStr(phonemes, true_phonemes).c_str());
  std::printf("acoustic frames: %s\n",
              FormatStr(acoustics, observed).c_str());

  auto mu = hmm::PosteriorMarkovSequence(*hmm, observed);
  if (!mu.ok()) {
    std::printf("error: %s\n", mu.status().ToString().c_str());
    return 1;
  }

  // Word segmenter: emits "GO" when a g→oh group completes, "NO" for
  // n→oh. States: 0 = idle/sil, 1 = saw g, 2 = saw n, 3 = in oh.
  Alphabet words = *Alphabet::FromNames({"GO", "NO"});
  transducer::Transducer segmenter(phonemes, words, 5);
  segmenter.SetInitial(0);
  segmenter.SetAllAccepting();
  const Symbol sil = 0, g = 1, nn = 2, oh = 3;
  auto add = [&](automata::StateId from, Symbol s, automata::StateId to,
                 Str emit) {
    Status st = segmenter.AddTransition(from, s, to, std::move(emit));
    if (!st.ok()) std::printf("edge error: %s\n", st.ToString().c_str());
  };
  // idle
  add(0, sil, 0, {});
  add(0, g, 1, {});
  add(0, nn, 2, {});
  add(0, oh, 0, {});  // stray vowel: ignore
  // after g
  add(1, g, 1, {});
  add(1, oh, 3, {0});  // "GO"
  add(1, sil, 0, {});
  add(1, nn, 2, {});
  // after n
  add(2, nn, 2, {});
  add(2, oh, 4, {1});  // "NO"
  add(2, sil, 0, {});
  add(2, g, 1, {});
  // inside the vowel of GO (state 3) / NO (state 4)
  for (automata::StateId q : {3, 4}) {
    add(q, oh, q, {});
    add(q, sil, 0, {});
    add(q, g, 1, {});
    add(q, nn, 2, {});
  }

  auto eval = query::Evaluator::Create(&*mu, &segmenter);
  if (!eval.ok()) {
    std::printf("error: %s\n", eval.status().ToString().c_str());
    return 1;
  }
  auto topk = eval->TopK(5);
  auto true_words = segmenter.TransduceDeterministic(true_phonemes);
  std::printf("\ntrue transcription: %s\n",
              FormatStr(words, *true_words).c_str());
  std::printf("\nTop-%zu transcriptions (E_max order, confidences):\n",
              topk->size());
  for (size_t i = 0; i < topk->size(); ++i) {
    const query::AnswerInfo& info = (*topk)[i];
    std::printf("  %zu. %-16s E_max=%-10.4g conf=%-10.4g%s\n", i + 1,
                FormatStr(words, info.output).c_str(), info.emax,
                info.confidence,
                info.output == *true_words ? "  <-- truth" : "");
  }
  return 0;
}
